// Ablation: QR-CHK checkpoint cost model.
//
// The paper reports QR-CHK ~16 % BELOW flat nesting, blaming checkpoint
// granularity, while also reporting checkpoint *creation* costs only ~6 %.
// In our simulation the protocol mechanics alone (Rqv early aborts +
// partial resume) make fine-grained checkpointing BEAT flat nesting; the
// paper's ordering emerges only once the implementation costs of their
// continuation machinery (snapshot copies growing with the data-set,
// continuation restore on a patched research JVM) are charged.  This bench
// sweeps both knobs so the crossover is visible; EXPERIMENTS.md discusses
// the calibration.
#include <cstdio>

#include "bench/bench_util.h"

using namespace qrdtm;
using namespace qrdtm::bench;

int main() {
  std::printf(
      "Ablation: QR-CHK throughput delta vs flat as checkpoint costs vary\n"
      "(create/object charged at every checkpoint; restore charged per "
      "partial rollback)\n");

  const std::uint32_t per_obj_us[] = {0, 100, 250, 500, 800};
  const std::uint32_t restore_ms[] = {0, 50, 200};

  for (const std::string& app : {std::string("bank"), std::string("slist")}) {
    // Flat baseline once per app.
    ExperimentConfig base;
    base.app = app;
    base.mode = core::NestingMode::kFlat;
    base.params.read_ratio = 0.2;
    base.params.num_objects = default_objects(app);
    base.duration = point_duration();
    base.seed = 51;
    auto flat = run_experiment(base);
    warn_if_corrupt(flat, app);

    std::vector<ExperimentConfig> configs;
    for (std::uint32_t r : restore_ms) {
      for (std::uint32_t p : per_obj_us) {
        ExperimentConfig cfg = base;
        cfg.mode = core::NestingMode::kCheckpoint;
        cfg.chk_create_cost_per_obj = sim::usec(p);
        cfg.chk_restore_cost = sim::msec(r);
        configs.push_back(cfg);
      }
    }
    auto results = run_sweep(configs);

    print_header("CHK cost ablation: " + app + "  (flat baseline " +
                     fmt(flat.throughput, 0) + " txn/s)",
                 "restore\\create   0us    100us    250us    500us    800us");
    std::size_t i = 0;
    for (std::uint32_t r : restore_ms) {
      std::printf("%5ums      ", r);
      for (std::size_t p = 0; p < std::size(per_obj_us); ++p) {
        warn_if_corrupt(results[i], app);
        std::printf(" %s%%",
                    fmt(pct_change(results[i].throughput, flat.throughput), 7)
                        .c_str());
        ++i;
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\ntakeaway: with cheap checkpoints (top-left) partial rollback BEATS "
      "flat nesting;\nthe paper's ordering (CHK below flat) needs the "
      "bottom-right cost regime.\n");
  return 0;
}
