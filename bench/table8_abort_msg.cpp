// Reproduces paper Fig. 8 (the table): percentage change in abort rate and
// in messages exchanged for QR-CN and QR-CHK relative to flat nesting, per
// benchmark.
//
// Paper shape: QR-CN reduces both aborts and messages (negative deltas,
// strongest for SList/Hashmap, weakest for Bank); QR-CHK increases both
// (positive deltas).  Rates are normalised per committed transaction so
// runs of different lengths compare meaningfully.
#include <cstdio>

#include "bench/bench_util.h"

using namespace qrdtm;
using namespace qrdtm::bench;

int main() {
  std::printf(
      "Fig. 8 (table) reproduction: abort-rate and message deltas vs flat\n"
      "13-node cluster, 8 clients, 3 nested calls, 20%% reads\n"
      "(abort rate = aborts/commit; msgs = messages/commit)\n");

  print_header("Fig 8",
               "bench      CN-abort%%  CHK-abort%%   CN-msg%%   CHK-msg%%");

  for (const std::string& app : paper_apps()) {
    std::vector<ExperimentConfig> configs;
    for (core::NestingMode mode : paper_modes()) {
      ExperimentConfig cfg;
      cfg.app = app;
      cfg.mode = mode;
      cfg.params.read_ratio = 0.2;
      cfg.params.nested_calls = 3;
      cfg.params.num_objects = default_objects(app);
      cfg.duration = point_duration();
      cfg.seed = 45;
      configs.push_back(cfg);
    }
    auto results = run_sweep(configs);
    const auto& flat = results[0];
    const auto& cn = results[1];
    const auto& chk = results[2];
    for (const auto* r : {&flat, &cn, &chk}) {
      warn_if_corrupt(*r, app);
    }
    std::printf("%-10s %s %s %s %s\n", app.c_str(),
                fmt(pct_change(cn.abort_rate(), flat.abort_rate()), 10).c_str(),
                fmt(pct_change(chk.abort_rate(), flat.abort_rate()), 11).c_str(),
                fmt(pct_change(cn.messages_per_commit(),
                               flat.messages_per_commit()),
                    9)
                    .c_str(),
                fmt(pct_change(chk.messages_per_commit(),
                               flat.messages_per_commit()),
                    10)
                    .c_str());
  }
  std::printf(
      "\npaper reference (Fig. 8): CN abort/msg deltas negative "
      "(-18..-56%% / -22..-52%%),\nCHK deltas positive (+11..+23%% / "
      "+15..+26%%)\n");
  return 0;
}
