#include "bench/harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <thread>

#include "common/check.h"

namespace qrdtm::bench {

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  core::ClusterConfig cc;
  cc.num_nodes = cfg.num_nodes;
  cc.seed = cfg.seed;
  cc.runtime.mode = cfg.mode;
  cc.runtime.chk_threshold = cfg.chk_threshold;
  cc.runtime.chk_create_cost = cfg.chk_create_cost;
  cc.runtime.chk_create_cost_per_obj = cfg.chk_create_cost_per_obj;
  cc.runtime.chk_restore_cost = cfg.chk_restore_cost;
  cc.runtime.ct_retry_backoff = cfg.ct_retry_backoff;
  cc.runtime.batch_window = cfg.batch_window;
  cc.runtime.batch_max_txns = cfg.batch_max_txns;
  cc.quorum = cfg.quorum;
  cc.tree_read_level = cfg.tree_read_level;
  cc.num_shards = cfg.num_shards;
  cc.cohort_size = std::min(cfg.cohort_size, cfg.num_nodes);
  if (cfg.link_latency != 0) cc.link_latency = cfg.link_latency;
  if (cfg.service_time != 0) cc.service_time = cfg.service_time;

  core::Cluster cluster(cc);
  if (cfg.trace != nullptr) cluster.set_trace_recorder(cfg.trace);

  // Fig. 10: fail-stop nodes before the workload starts; clients run on
  // survivors only.
  std::vector<net::NodeId> alive;
  for (net::NodeId n = 0; n < cfg.num_nodes; ++n) alive.push_back(n);
  for (std::uint32_t f = 0; f < cfg.failures; ++f) {
    // Kill from the high end so node 0 (tree root / checker host) survives.
    net::NodeId victim = static_cast<net::NodeId>(cfg.num_nodes - 1 - f);
    cluster.kill_node(victim);
    alive.pop_back();
  }
  QRDTM_CHECK(!alive.empty());

  // Churn: restart the victims mid-run.  recover_node runs the catch-up
  // protocol, so quorums shrink back toward the failure-free configuration
  // in the second half of the run.
  if (cfg.recover_at > 0 && cfg.failures > 0) {
    std::vector<net::NodeId> victims;
    for (std::uint32_t f = 0; f < cfg.failures; ++f) {
      victims.push_back(static_cast<net::NodeId>(cfg.num_nodes - 1 - f));
    }
    cluster.simulator().schedule_at(cfg.recover_at, [&cluster, victims] {
      for (net::NodeId v : victims) cluster.recover_node(v);
    });
  }

  auto app = apps::make_app(cfg.app);
  Rng setup_rng(cfg.seed * 7919 + 13);
  apps::WorkloadParams params = cfg.params;
  app->setup(cluster, params, setup_rng);

  // Placement: round-robin over every live node, or -- when client_nodes is
  // set -- over just the first client_nodes live nodes (so QR-Q batches can
  // actually form; a node with one client only ever batches one txn).
  const std::size_t spread =
      cfg.client_nodes > 0
          ? std::min<std::size_t>(cfg.client_nodes, alive.size())
          : alive.size();
  for (std::uint32_t i = 0; i < cfg.clients; ++i) {
    net::NodeId node = alive[i % spread];
    cluster.spawn_loop_client(node, [&app, params](Rng& rng) {
      return app->make_txn(params, rng);
    });
  }

  // Coordinator churn: rotate kill+restart cycles over the client-hosting
  // nodes, so commit rounds keep dying inside the vote->confirm window and
  // the in-doubt machinery (decision re-drive, termination) is on the
  // commit-latency critical path.
  if (cfg.coordinator_kill_period > 0) {
    std::vector<net::NodeId> coords;
    for (std::size_t i = 0; i < spread; ++i) {
      if (alive[i] != 0) coords.push_back(alive[i]);  // 0 hosts the checker
    }
    std::size_t next = 0;
    for (sim::Tick at = cfg.coordinator_kill_period;
         !coords.empty() && at + cfg.coordinator_down_for < cfg.duration;
         at += cfg.coordinator_kill_period) {
      const net::NodeId victim = coords[next++ % coords.size()];
      cluster.simulator().schedule_at(at, [&cluster, victim] {
        if (cluster.network().alive(victim)) cluster.kill_node(victim);
      });
      cluster.simulator().schedule_at(
          at + cfg.coordinator_down_for,
          [&cluster, victim] { cluster.recover_node(victim); });
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();
  cluster.run_for(cfg.duration);
  const auto wall_end = std::chrono::steady_clock::now();

  ExperimentResult res;
  res.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  res.events_executed = cluster.simulator().events_executed();
  res.commits = cluster.metrics().commits;
  res.root_aborts = cluster.metrics().root_aborts;
  res.ct_aborts = cluster.metrics().ct_aborts;
  res.partial_rollbacks = cluster.metrics().partial_rollbacks;
  res.checkpoints = cluster.metrics().checkpoints_created;
  res.vote_aborts = cluster.metrics().vote_aborts;
  res.validation_failures = cluster.metrics().validation_failures;
  res.read_messages = cluster.metrics().read_messages;
  res.commit_messages = cluster.metrics().commit_messages;
  res.node_recoveries = cluster.metrics().node_recoveries;
  res.batches = cluster.metrics().batches_committed;
  res.speculation_rollbacks = cluster.metrics().speculation_rollbacks;
  res.batch_read_hits = cluster.metrics().batch_read_hits;
  res.throughput = cluster.metrics().throughput(cluster.duration());
  res.latency = cluster.merged_latency();
  if (cfg.collect_per_node_latency) {
    res.node_latency.reserve(cfg.num_nodes);
    for (net::NodeId n = 0; n < cfg.num_nodes; ++n) {
      res.node_latency.push_back(cluster.node_latency(n));
    }
  }

  // Quiesce and verify the structure's integrity invariants: a protocol
  // bug that corrupts a data structure must fail the benchmark loudly.
  cluster.run_to_completion();
  bool ok = false;
  cluster.spawn_client(alive[0], app->make_checker(&ok));
  cluster.run_to_completion();
  res.invariants_ok = ok;
  return res;
}

std::vector<ExperimentResult> run_sweep(
    const std::vector<ExperimentConfig>& configs) {
  std::vector<ExperimentResult> results(configs.size());
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned workers =
      std::min<unsigned>(hw, static_cast<unsigned>(configs.size()));
  if (workers <= 1) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      results[i] = run_experiment(configs[i]);
    }
    return results;
  }
  std::mutex mu;
  std::size_t next = 0;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        std::size_t idx;
        {
          std::scoped_lock lock(mu);
          if (next >= configs.size()) return;
          idx = next++;
        }
        results[idx] = run_experiment(configs[idx]);
      }
    });
  }
  for (auto& t : pool) t.join();
  return results;
}

std::vector<core::NestingMode> paper_modes() {
  return {core::NestingMode::kFlat, core::NestingMode::kClosed,
          core::NestingMode::kCheckpoint};
}

std::vector<core::NestingMode> all_modes() {
  auto modes = paper_modes();
  modes.push_back(core::NestingMode::kQueued);
  return modes;
}

std::vector<std::string> paper_apps() {
  return {"bank", "hashmap", "slist", "rbtree", "vacation"};
}

std::uint32_t default_objects(const std::string& app) {
  if (app == "bank") return 64;       // moderate account contention
  if (app == "hashmap") return 96;    // 8 buckets -> ~12-entry chains
  if (app == "slist") return 128;     // long search paths
  if (app == "rbtree") return 128;
  if (app == "bst") return 128;
  if (app == "vacation") return 24;   // hot resources per table
  return 64;
}

void print_header(const std::string& title, const std::string& columns) {
  std::printf("\n=== %s ===\n%s\n", title.c_str(), columns.c_str());
}

std::string fmt(double v, int width, int precision) {
  char buf[64];
  if (std::isnan(v)) {
    // Undefined ratios (e.g. abort rate or pct_change with a zero
    // denominator) print as "n/a", never as a misleading number.
    std::snprintf(buf, sizeof(buf), "%*s", width, "n/a");
  } else {
    std::snprintf(buf, sizeof(buf), "%*.*f", width, precision, v);
  }
  return buf;
}

}  // namespace qrdtm::bench
