// Shared experiment harness for the paper-reproduction benchmarks.
//
// One experiment point = one deterministic simulation: build a cluster,
// seed the app, run closed-loop clients for a fixed simulated duration,
// then drain in-flight transactions and verify the app's integrity
// invariants.  Sweeps fan points out over a thread pool (one Simulator per
// point; nothing is shared between threads).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "apps/app.h"
#include "core/cluster.h"

namespace qrdtm::bench {

struct ExperimentConfig {
  std::string app = "bank";
  core::NestingMode mode = core::NestingMode::kFlat;
  apps::WorkloadParams params;

  std::uint32_t num_nodes = 13;
  std::uint32_t clients = 8;  // closed-loop clients, spread over nodes
  std::uint64_t seed = 1;
  sim::Tick duration = sim::sec(60);

  core::QuorumKind quorum = core::QuorumKind::kTree;
  std::uint32_t tree_read_level = 1;
  /// kSharded only (see ClusterConfig): cohort count and replicas per
  /// cohort for partial replication.
  std::uint32_t num_shards = 16;
  std::uint32_t cohort_size = 13;
  std::uint32_t failures = 0;  // nodes killed before the run (Fig. 10)
  /// Churn: restart every pre-killed node at this tick via
  /// Cluster::recover_node (anti-entropy catch-up + quorum re-admission).
  /// 0 = killed nodes stay dead for the whole run.
  sim::Tick recover_at = 0;

  /// QR-CHK knobs (ignored by other modes); defaults from RuntimeConfig.
  std::uint32_t chk_threshold = 1;
  sim::Tick chk_create_cost = core::RuntimeConfig{}.chk_create_cost;
  sim::Tick chk_create_cost_per_obj =
      core::RuntimeConfig{}.chk_create_cost_per_obj;
  sim::Tick chk_restore_cost = core::RuntimeConfig{}.chk_restore_cost;

  /// Closed-nesting retry pause (default from RuntimeConfig).
  sim::Tick ct_retry_backoff = core::RuntimeConfig{}.ct_retry_backoff;

  /// QR-Q knobs (ignored by other modes); defaults from RuntimeConfig.
  sim::Tick batch_window = core::RuntimeConfig{}.batch_window;
  std::uint32_t batch_max_txns = core::RuntimeConfig{}.batch_max_txns;

  /// Concentrate the closed-loop clients on the first `client_nodes` nodes
  /// instead of spreading them round-robin over every live node (0 = spread,
  /// the historical default).  Batching only amortises quorum traffic when a
  /// node submits several transactions per window, so contention benchmarks
  /// comparing kQueued against the per-transaction modes co-locate clients.
  std::uint32_t client_nodes = 0;

  /// Coordinator churn (Fig. 10 coord column): every period, fail-stop one
  /// client-hosting node -- killing whatever 2PC rounds it is coordinating
  /// mid-flight -- and restart it `coordinator_down_for` later (decision
  /// re-drive + termination resolve the orphans, DESIGN.md §17).  Victims
  /// rotate round-robin over the client nodes except node 0, which hosts
  /// the integrity checker.  0 = off.
  sim::Tick coordinator_kill_period = 0;
  sim::Tick coordinator_down_for = sim::msec(500);

  /// Network overrides (0 = ClusterConfig defaults).
  sim::Tick link_latency = 0;
  sim::Tick service_time = 0;

  /// Optional qrdtm-trace recorder attached to the cluster for this point
  /// (nullptr = tracing off, the default).  Sweeps that trace must run one
  /// point per recorder.
  core::TraceRecorder* trace = nullptr;

  /// Also capture each node's individual latency histograms in
  /// ExperimentResult::node_latency (off by default: the merged view is
  /// enough for most tables and the copies are ~30 KiB per node).
  bool collect_per_node_latency = false;
};

struct ExperimentResult {
  double throughput = 0;  // committed root transactions / simulated second
  std::uint64_t commits = 0;
  std::uint64_t root_aborts = 0;
  std::uint64_t ct_aborts = 0;
  std::uint64_t partial_rollbacks = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t vote_aborts = 0;
  std::uint64_t validation_failures = 0;
  std::uint64_t read_messages = 0;
  std::uint64_t commit_messages = 0;
  std::uint64_t node_recoveries = 0;
  std::uint64_t batches = 0;                // committed batches (kQueued)
  std::uint64_t speculation_rollbacks = 0;  // discarded batch rounds
  std::uint64_t batch_read_hits = 0;        // reads served from batch cache
  bool invariants_ok = false;

  /// Cluster-merged latency histograms (always collected -- recording is
  /// allocation-free arithmetic inside the runtimes).
  core::LatencyMetrics latency;
  /// Per-node histograms, filled only when
  /// ExperimentConfig::collect_per_node_latency is set.
  std::vector<core::LatencyMetrics> node_latency;

  /// Kernel-side cost of the point: host wall-clock for the workload phase
  /// (excludes the quiesce/checker runs) and simulator events executed,
  /// giving an events/sec figure comparable across kernel changes.
  double wall_seconds = 0;
  std::uint64_t events_executed = 0;
  double events_per_sec() const {
    return wall_seconds > 0 ? static_cast<double>(events_executed) /
                                  wall_seconds
                            : 0.0;
  }

  /// Mirrors core::Metrics::total_aborts(): under kQueued the unit of abort
  /// is a discarded batch round (speculation_rollbacks), not a root retry.
  std::uint64_t total_aborts() const {
    return root_aborts + ct_aborts + partial_rollbacks + speculation_rollbacks;
  }
  std::uint64_t total_messages() const {
    return read_messages + commit_messages;
  }
  /// Aborts per commit; NaN with no commits (undefined ratio -- fmt()
  /// renders it as "n/a").
  double abort_rate() const {
    return commits ? static_cast<double>(total_aborts()) /
                         static_cast<double>(commits)
                   : std::numeric_limits<double>::quiet_NaN();
  }
  /// Messages per commit (normalising message counts across modes whose
  /// runs commit different transaction counts in the same duration).
  double messages_per_commit() const {
    return commits ? static_cast<double>(total_messages()) /
                         static_cast<double>(commits)
                   : 0.0;
  }
};

/// Run one experiment point (deterministic in cfg.seed).
ExperimentResult run_experiment(const ExperimentConfig& cfg);

/// Run every point, parallelising across hardware threads; results are in
/// input order regardless of scheduling.
std::vector<ExperimentResult> run_sweep(
    const std::vector<ExperimentConfig>& configs);

/// The three execution models in the paper's reporting order.
std::vector<core::NestingMode> paper_modes();

/// paper_modes() plus kQueued (QR-Q, queue-oriented speculative batching).
std::vector<core::NestingMode> all_modes();

/// Fig. 5-8 benchmark list (bst is Fig. 10 only).
std::vector<std::string> paper_apps();

/// Default population per app, tuned so the default client count generates
/// the paper's "moderate to high contention" regime.
std::uint32_t default_objects(const std::string& app);

/// Pretty-print helpers shared by the figure binaries.
void print_header(const std::string& title, const std::string& columns);
std::string fmt(double v, int width = 9, int precision = 1);

}  // namespace qrdtm::bench
