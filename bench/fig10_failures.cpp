// Reproduces paper Fig. 10: QR-DTM throughput under increasing node
// failures for Hashmap, BST and Vacation.
//
// Setup mirrors the paper: 28 nodes; initially every node is assigned a
// read quorum of a single node; each failure grows the read quorum by one
// (FlatFailureAwareProvider).  Paper shape: throughput first *rises* with a
// few failures (the single-node read quorum is a service hotspot; larger
// rotated quorums spread the load) and then degrades gracefully as quorum
// fan-out dominates.
//
// The extra vac+churn column replays the vacation point with the failed
// nodes *restarting* halfway through the run (Cluster::recover_node:
// anti-entropy catch-up, then quorum re-admission), so its throughput sits
// between the stay-dead vacation column and the failure-free row.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"

using namespace qrdtm;
using namespace qrdtm::bench;

int main() {
  std::printf(
      "Fig. 10 reproduction: throughput under node failures\n"
      "28 nodes, failure-aware flat quorums (|RQ| = failures + 1)\n");

  const std::vector<std::string> apps = {"hashmap", "bst", "vacation"};
  const std::uint32_t kNodes = 28;

  std::vector<ExperimentConfig> configs;
  for (std::uint32_t failures = 0; failures <= 8; ++failures) {
    for (const std::string& app : apps) {
      ExperimentConfig cfg;
      cfg.app = app;
      cfg.mode = core::NestingMode::kClosed;
      cfg.quorum = core::QuorumKind::kFlatFailureAware;
      cfg.num_nodes = kNodes;
      cfg.failures = failures;
      cfg.clients = 40;  // saturating client population on survivors
      cfg.params.read_ratio = 0.8;
      cfg.params.nested_calls = 3;
      cfg.params.num_objects = 4 * default_objects(app);
      // The hotspot effect needs a realistic per-message service time on
      // the single shared read-quorum node (request processing incl. the
      // group-communication stack on the paper's 1.9 GHz Opterons).
      cfg.service_time = sim::msec(2);
      cfg.duration = std::min(point_duration(), sim::sec(120));
      cfg.seed = 47;
      configs.push_back(cfg);
      if (app == "vacation") {
        // Churn variant: same point, but the victims restart mid-run.
        cfg.recover_at = cfg.duration / 2;
        configs.push_back(cfg);
        // Coordinator-churn variant: on top of the restarts, keep killing
        // client-hosting nodes mid-2PC so orphaned commits must resolve
        // via decision re-drive / cooperative termination (DESIGN.md §17);
        // the column tracks the commit-latency p99 that machinery costs.
        cfg.coordinator_kill_period = cfg.duration / 8;
        cfg.coordinator_down_for = sim::msec(500);
        configs.push_back(cfg);
      }
    }
  }
  const std::size_t stride = apps.size() + 2;
  auto results = run_sweep(configs);

  print_header("Fig 10",
               "failed   hashmap       bst   vacation  vac+churn  vac+coord "
               " coord-p99-ms");
  for (std::uint32_t failures = 0; failures <= 8; ++failures) {
    const auto* row = &results[failures * stride];
    for (std::size_t a = 0; a < apps.size(); ++a) {
      warn_if_corrupt(row[a], apps[a]);
    }
    warn_if_corrupt(row[3], "vacation+churn");
    warn_if_corrupt(row[4], "vacation+coord-churn");
    const double coord_p99_ms =
        static_cast<double>(row[4].latency.commit_latency.percentile(99)) /
        static_cast<double>(sim::msec(1));
    std::printf("%6u %s %s %s %s %s %s\n", failures,
                fmt(row[0].throughput).c_str(), fmt(row[1].throughput).c_str(),
                fmt(row[2].throughput, 10).c_str(),
                fmt(row[3].throughput, 10).c_str(),
                fmt(row[4].throughput, 10).c_str(),
                fmt(coord_p99_ms, 13, 2).c_str());
  }
  std::printf(
      "\npaper reference: throughput rises for the first few failures "
      "(load-balancing\nacross the grown read quorum), then degrades "
      "gracefully beyond ~4 failures.\nvac+coord additionally kills a "
      "coordinator every duration/8; its p99 commit\nlatency absorbs the "
      "in-doubt resolution rounds (DESIGN.md §17).\n");
  return 0;
}
