// Reproduces paper Fig. 9 (a, b): QR-DTM vs HyFlow (TFA) vs Decent-STM on
// the Bank benchmark under high contention (50 % reads) and low contention
// (90 % reads), sweeping the cluster size.
//
// Paper shape: HyFlow > QR-DTM > Decent-STM.  HyFlow wins because its
// single-copy unicast requests averaged ~5 ms on the testbed vs ~30 ms for
// QR-DTM's JGroups multicast (but it cannot survive failures); Decent-STM
// loses to QR-DTM because its snapshot algorithm carries higher overhead.
// The latency asymmetry is reproduced by configuration (unicast baselines
// run on 2 ms links, QR-DTM on its default 12 ms multicast-class links);
// Decent's snapshot overhead is the calibrated `snapshot_compute` cost.
#include <algorithm>
#include <cstdio>

#include "baselines/decent.h"
#include "baselines/tfa.h"
#include "bench/bench_util.h"
#include "common/serde.h"

using namespace qrdtm;
using namespace qrdtm::bench;

namespace {

constexpr std::uint32_t kAccounts = 16;
constexpr std::uint32_t kOpsPerTxn = 3;
const sim::Tick kOpCompute = sim::usec(200);

Bytes enc_i64(std::int64_t v) {
  Writer w;
  w.i64(v);
  return std::move(w).take();
}

std::int64_t dec_i64(const Bytes& b) {
  Reader r(b);
  return r.i64();
}

struct BankOp {
  bool is_read;
  std::size_t a, b;
  std::int64_t amount;
};

std::vector<BankOp> draw_plan(Rng& rng, double read_ratio) {
  std::vector<BankOp> plan;
  for (std::uint32_t i = 0; i < kOpsPerTxn; ++i) {
    BankOp op;
    op.is_read = rng.chance(read_ratio);
    op.a = rng.below(kAccounts);
    op.b = rng.below(kAccounts - 1);
    if (op.b >= op.a) ++op.b;
    op.amount = rng.range(1, 10);
    plan.push_back(op);
  }
  return plan;
}

/// Throughput plus commit-latency percentiles (ms) for one system point.
struct SystemPoint {
  double tput = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

SystemPoint from_latency(double tput, const core::LatencyMetrics& lat) {
  return SystemPoint{
      tput, sim::to_seconds(lat.commit_latency.percentile(50)) * 1e3,
      sim::to_seconds(lat.commit_latency.percentile(99)) * 1e3};
}

SystemPoint run_qr(std::uint32_t nodes, double ratio, std::uint64_t seed,
                   core::NestingMode mode) {
  ExperimentConfig cfg;
  cfg.app = "bank";
  cfg.mode = mode;  // kFlat = plain QR, as compared in the paper
  cfg.params.read_ratio = ratio;
  cfg.params.nested_calls = kOpsPerTxn;
  cfg.params.num_objects = kAccounts;
  cfg.num_nodes = nodes;
  cfg.clients = nodes;  // one client per node ...
  if (mode == core::NestingMode::kQueued) {
    // ... except QR-Q, whose batches only form with several clients per
    // node: same client count, co-located on a quarter of the cluster.
    cfg.client_nodes = std::max(1u, nodes / 4);
  }
  cfg.duration = point_duration();
  cfg.seed = seed;
  auto res = run_experiment(cfg);
  warn_if_corrupt(res, "qr bank");
  return from_latency(res.throughput, res.latency);
}

SystemPoint run_tfa(std::uint32_t nodes, double ratio, std::uint64_t seed) {
  baselines::TfaConfig cfg;
  cfg.num_nodes = nodes;
  cfg.seed = seed;
  baselines::TfaCluster c(cfg);
  std::vector<core::ObjectId> accounts;
  for (std::uint32_t i = 0; i < kAccounts; ++i) {
    accounts.push_back(c.seed_new_object(enc_i64(1000)));
  }
  for (std::uint32_t n = 0; n < nodes; ++n) {
    c.spawn_loop_client(n, [&, ratio](Rng& rng) -> baselines::TfaBody {
      auto plan = draw_plan(rng, ratio);
      // `c` must be by-reference (the cluster is not copyable) and outlives
      // every transaction body: run_for() drains all clients before `c`
      // leaves this scope.  qrdtm-lint: allow(coro-ref-capture)
      return [&c, plan, accounts](baselines::TfaTxn& t) -> sim::Task<void> {
        for (const BankOp& op : plan) {
          if (op.is_read) {
            (void)co_await t.read(accounts[op.a]);
            (void)co_await t.read(accounts[op.b]);
          } else {
            std::int64_t f = dec_i64(co_await t.read_for_write(accounts[op.a]));
            std::int64_t g = dec_i64(co_await t.read_for_write(accounts[op.b]));
            t.write(accounts[op.a], enc_i64(f - op.amount));
            t.write(accounts[op.b], enc_i64(g + op.amount));
          }
          co_await c.simulator().delay(kOpCompute);
        }
      };
    });
  }
  c.run_for(point_duration());
  return from_latency(c.metrics().throughput(c.duration()), c.latency());
}

SystemPoint run_decent(std::uint32_t nodes, double ratio, std::uint64_t seed) {
  baselines::DecentConfig cfg;
  cfg.num_nodes = nodes;
  cfg.seed = seed;
  baselines::DecentCluster c(cfg);
  std::vector<core::ObjectId> accounts;
  for (std::uint32_t i = 0; i < kAccounts; ++i) {
    accounts.push_back(c.seed_new_object(enc_i64(1000)));
  }
  for (std::uint32_t n = 0; n < nodes; ++n) {
    c.spawn_loop_client(n, [&, ratio](Rng& rng) -> baselines::DecentBody {
      auto plan = draw_plan(rng, ratio);
      // Same lifetime argument as run_tfa above: run_for() drains the
      // clients before `c` dies.  qrdtm-lint: allow(coro-ref-capture)
      return [&c, plan, accounts](baselines::DecentTxn& t) -> sim::Task<void> {
        for (const BankOp& op : plan) {
          if (op.is_read) {
            (void)co_await t.read(accounts[op.a]);
            (void)co_await t.read(accounts[op.b]);
          } else {
            std::int64_t f = dec_i64(co_await t.read_for_write(accounts[op.a]));
            std::int64_t g = dec_i64(co_await t.read_for_write(accounts[op.b]));
            t.write(accounts[op.a], enc_i64(f - op.amount));
            t.write(accounts[op.b], enc_i64(g + op.amount));
          }
          co_await c.simulator().delay(kOpCompute);
        }
      };
    });
  }
  c.run_for(point_duration());
  if (std::getenv("QRDTM_FIG9_DEBUG")) {
    const auto& m = c.metrics();
    std::printf("  [decent n=%u] commits=%lu aborts=%lu vote_ab=%lu snap_fail=%lu rd=%lu cm=%lu\n",
                nodes, (unsigned long)m.commits, (unsigned long)m.root_aborts,
                (unsigned long)m.vote_aborts, (unsigned long)m.validation_failures,
                (unsigned long)m.read_messages, (unsigned long)m.commit_messages);
  }
  return from_latency(c.metrics().throughput(c.duration()), c.latency());
}

void panel(const char* title, double ratio) {
  print_header(title,
               "nodes   QR-DTM  p50(ms)  p99(ms)     QR-Q  p50(ms)  p99(ms)"
               "  HyFlow(TFA)  p50(ms)  p99(ms)  Decent-STM  p50(ms)"
               "  p99(ms)");
  for (std::uint32_t nodes : {4u, 8u, 13u, 20u, 28u, 40u}) {
    SystemPoint qr = run_qr(nodes, ratio, 46, core::NestingMode::kFlat);
    SystemPoint qq = run_qr(nodes, ratio, 46, core::NestingMode::kQueued);
    SystemPoint tfa = run_tfa(nodes, ratio, 46);
    SystemPoint dec = run_decent(nodes, ratio, 46);
    std::printf("%5u %s %s %s %s %s %s %s %s %s %s %s %s\n", nodes,
                fmt(qr.tput).c_str(), fmt(qr.p50_ms, 8).c_str(),
                fmt(qr.p99_ms, 8).c_str(), fmt(qq.tput, 8).c_str(),
                fmt(qq.p50_ms, 8).c_str(), fmt(qq.p99_ms, 8).c_str(),
                fmt(tfa.tput, 12).c_str(),
                fmt(tfa.p50_ms, 8).c_str(), fmt(tfa.p99_ms, 8).c_str(),
                fmt(dec.tput, 11).c_str(), fmt(dec.p50_ms, 8).c_str(),
                fmt(dec.p99_ms, 8).c_str());
  }
}

}  // namespace

int main() {
  std::printf(
      "Fig. 9 reproduction: QR-DTM vs HyFlow (TFA) vs Decent-STM, Bank\n"
      "expected ordering (paper): HyFlow > QR-DTM > Decent-STM\n");
  panel("Fig 9a: Bank, 50% read / 50% write (high contention)", 0.5);
  panel("Fig 9b: Bank, 90% read / 10% write (low contention)", 0.9);
  return 0;
}
