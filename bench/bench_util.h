// Small shared helpers for the figure-reproduction binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/harness.h"
#include "common/stats.h"

namespace qrdtm::bench {

/// Simulated duration per experiment point; QRDTM_FAST=1 shrinks it for
/// smoke runs (CI / quick iteration).
inline sim::Tick point_duration() {
  const char* fast = std::getenv("QRDTM_FAST");
  return (fast && fast[0] == '1') ? sim::sec(20) : sim::sec(300);
}

inline const char* mode_label(core::NestingMode m) {
  switch (m) {
    case core::NestingMode::kFlat:
      return "flat(QR)";
    case core::NestingMode::kClosed:
      return "closed(QR-CN)";
    case core::NestingMode::kCheckpoint:
      return "chk(QR-CHK)";
    case core::NestingMode::kQueued:
      return "queued(QR-Q)";
  }
  return "?";
}

inline void warn_if_corrupt(const ExperimentResult& r, const std::string& tag) {
  if (!r.invariants_ok) {
    std::printf("!! INVARIANT VIOLATION in %s\n", tag.c_str());
  }
}

}  // namespace qrdtm::bench
