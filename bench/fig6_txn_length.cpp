// Reproduces paper Fig. 6 (a-e): throughput vs transaction length (number
// of nested calls per root transaction, 1..5) for the five benchmarks.
//
// Paper shape: closed nesting's advantage grows with transaction length --
// longer transactions have more pre-conflict work for a partial abort to
// save.
#include <cstdio>

#include "bench/bench_util.h"

using namespace qrdtm;
using namespace qrdtm::bench;

int main() {
  std::printf(
      "Fig. 6 reproduction: throughput (txn/s) vs nested calls per "
      "transaction\n13-node cluster, 8 clients, 20%% read workload\n");

  for (const std::string& app : paper_apps()) {
    std::vector<ExperimentConfig> configs;
    for (std::uint32_t calls = 1; calls <= 5; ++calls) {
      for (core::NestingMode mode : paper_modes()) {
        ExperimentConfig cfg;
        cfg.app = app;
        cfg.mode = mode;
        cfg.params.read_ratio = 0.2;
        cfg.params.nested_calls = calls;
        cfg.params.num_objects = default_objects(app);
        cfg.duration = point_duration();
        cfg.seed = 43;
        configs.push_back(cfg);
      }
    }
    auto results = run_sweep(configs);

    print_header("Fig 6: " + app,
                 "calls   flat(QR)  closed(CN)  chk(CHK)   CN-gain%  "
                 "CHK-delta%");
    for (std::uint32_t calls = 1; calls <= 5; ++calls) {
      std::size_t i = calls - 1;
      const auto& flat = results[i * 3 + 0];
      const auto& cn = results[i * 3 + 1];
      const auto& chk = results[i * 3 + 2];
      for (const auto* r : {&flat, &cn, &chk}) {
        warn_if_corrupt(*r, app);
      }
      std::printf("%5u %s %s %s  %s %s\n", calls,
                  fmt(flat.throughput).c_str(), fmt(cn.throughput, 11).c_str(),
                  fmt(chk.throughput).c_str(),
                  fmt(pct_change(cn.throughput, flat.throughput)).c_str(),
                  fmt(pct_change(chk.throughput, flat.throughput), 11).c_str());
    }
  }
  return 0;
}
