// Reproduces paper Fig. 7 (a-e): throughput vs number of objects.
//
// Paper shape: growing the population *increases* contention for SList and
// Hashmap (longer chains / search paths -> larger overlapping read-sets)
// and *decreases* it for Bank, RBTree and Vacation (accesses spread over
// more objects); closed nesting's lead widens wherever contention rises.
#include <cstdio>

#include "bench/bench_util.h"

using namespace qrdtm;
using namespace qrdtm::bench;

int main() {
  std::printf(
      "Fig. 7 reproduction: throughput (txn/s) vs number of objects\n"
      "13-node cluster, 8 clients, 3 nested calls, 20%% reads\n");

  const std::uint32_t sizes[] = {8, 16, 32, 64, 128};

  for (const std::string& app : paper_apps()) {
    std::vector<ExperimentConfig> configs;
    for (std::uint32_t size : sizes) {
      for (core::NestingMode mode : paper_modes()) {
        ExperimentConfig cfg;
        cfg.app = app;
        cfg.mode = mode;
        cfg.params.read_ratio = 0.2;
        cfg.params.nested_calls = 3;
        cfg.params.num_objects = size;
        cfg.duration = point_duration();
        cfg.seed = 44;
        configs.push_back(cfg);
      }
    }
    auto results = run_sweep(configs);

    print_header("Fig 7: " + app,
                 "objs    flat(QR)  closed(CN)  chk(CHK)   CN-gain%  "
                 "CHK-delta%");
    for (std::size_t i = 0; i < std::size(sizes); ++i) {
      const auto& flat = results[i * 3 + 0];
      const auto& cn = results[i * 3 + 1];
      const auto& chk = results[i * 3 + 2];
      for (const auto* r : {&flat, &cn, &chk}) {
        warn_if_corrupt(*r, app);
      }
      std::printf("%5u %s %s %s  %s %s\n", sizes[i],
                  fmt(flat.throughput).c_str(), fmt(cn.throughput, 11).c_str(),
                  fmt(chk.throughput).c_str(),
                  fmt(pct_change(cn.throughput, flat.throughput)).c_str(),
                  fmt(pct_change(chk.throughput, flat.throughput), 11).c_str());
    }
  }
  return 0;
}
