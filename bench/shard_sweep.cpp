// Sharded-cohort scaling sweep: shard count x cross-shard ratio x Zipf
// skew on a 512-node cluster.
//
// Under full replication (1 shard) every commit funnels through the single
// cohort's 13 replicas, so adding nodes adds nothing: the cohort's service
// capacity is the ceiling.  Sharding hashes objects over S cohorts, each
// with its own tree quorum over 13 nodes, so single-cohort transactions
// from different shards proceed through disjoint replicas in parallel and
// throughput rises with S.  Cross-shard transactions pay one 2PC vote
// round over the UNION of the touched cohorts' write quorums -- a modest
// tax at a 10% cross ratio, which the sweep quantifies.  Zipf skew bounds
// the win: the hottest keys hash to a handful of cohorts no matter how
// many exist.
//
// Acceptance (exit code): at cross-shard ratios 0 and 0.1 with uniform
// access, throughput must increase strictly with shard count; under heavy
// skew (0.9) the 64-shard point must still beat full replication.
//
// Writes machine-readable results to BENCH_shard.json (or argv[1]).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/cluster.h"

using namespace qrdtm;
using namespace qrdtm::bench;

namespace {

constexpr std::uint32_t kNodes = 512;
constexpr std::uint32_t kCohortSize = 13;
constexpr std::uint32_t kClients = 256;
constexpr std::uint32_t kObjects = 4096;
const std::uint32_t kShards[] = {1, 4, 16, 64};
const double kCrossRatios[] = {0.0, 0.1};
const double kSkews[] = {0.0, 0.9};

// Shorter than point_duration(): a 512-node saturated cluster burns far
// more events per simulated second than the 13-node figure benches.
sim::Tick sweep_duration() {
  const char* fast = std::getenv("QRDTM_FAST");
  return (fast && fast[0] == '1') ? sim::sec(5) : sim::sec(30);
}

// Inverse-CDF Zipf sampler over ranks 1..n: p(rank) ~ 1/rank^theta.
// theta = 0 degenerates to uniform.
class ZipfSampler {
 public:
  ZipfSampler(std::uint32_t n, double theta) : cdf_(n) {
    double sum = 0.0;
    for (std::uint32_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cdf_[i] = sum;
    }
    for (double& v : cdf_) v /= sum;
  }

  std::uint32_t sample(Rng& rng) const {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::uint32_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

struct Point {
  std::uint32_t shards;
  double cross_ratio;
  double skew;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t cross_rounds = 0;
  double throughput = 0.0;
};

Point run_point(std::uint32_t shards, double cross_ratio, double skew,
                sim::Tick duration) {
  core::ClusterConfig cfg;
  cfg.num_nodes = kNodes;
  cfg.seed = 7;
  cfg.quorum = core::QuorumKind::kSharded;
  cfg.num_shards = shards;
  cfg.cohort_size = kCohortSize;
  // A saturation regime: per-message service time dominates, so the one
  // cohort of the unsharded cluster is the bottleneck sharding removes.
  cfg.service_time = sim::msec(1);
  cfg.link_latency = sim::msec(2);
  cfg.link_jitter = sim::msec(1);
  core::Cluster c(cfg);

  std::vector<core::ObjectId> objs;
  objs.reserve(kObjects);
  for (std::uint32_t i = 0; i < kObjects; ++i) {
    objs.push_back(c.seed_new_object(core::Bytes{1}));
  }
  const ZipfSampler zipf(kObjects, skew);

  auto bump = [](core::Txn& t, core::ObjectId id) -> sim::Task<void> {
    core::Bytes b = co_await t.read_for_write(id);
    b[0] += 1;
    t.write(id, b);
  };
  for (std::uint32_t i = 0; i < kClients; ++i) {
    const net::NodeId node = static_cast<net::NodeId>(
        (static_cast<std::uint64_t>(i) * kNodes) / kClients);
    c.spawn_loop_client(node, [&, cross_ratio](Rng& rng) -> core::TxnBody {
      const core::ObjectId a = objs[zipf.sample(rng)];
      if (rng.chance(cross_ratio)) {
        const core::ObjectId b = objs[zipf.sample(rng)];
        return [a, b, bump](core::Txn& t) -> sim::Task<void> {
          co_await bump(t, a);
          if (b != a) co_await bump(t, b);
        };
      }
      return [a, bump](core::Txn& t) -> sim::Task<void> {
        co_await bump(t, a);
      };
    });
  }

  c.run_for(duration);
  c.run_to_completion();

  Point p;
  p.shards = shards;
  p.cross_ratio = cross_ratio;
  p.skew = skew;
  p.commits = c.metrics().commits;
  p.aborts = c.metrics().total_aborts();
  p.cross_rounds = c.metrics().cross_shard_rounds;
  p.throughput = static_cast<double>(p.commits) / sim::to_seconds(duration);
  return p;
}

bool write_json(const std::string& path, const std::vector<Point>& points,
                sim::Tick duration) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"shard_sweep\",\n"
               "  \"nodes\": %u,\n"
               "  \"cohort_size\": %u,\n"
               "  \"clients\": %u,\n"
               "  \"objects\": %u,\n"
               "  \"sim_seconds\": %.1f,\n"
               "  \"points\": [\n",
               kNodes, kCohortSize, kClients, kObjects,
               sim::to_seconds(duration));
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(f,
                 "    {\"shards\": %u, \"cross_ratio\": %.2f, "
                 "\"skew\": %.2f, \"commits\": %llu, "
                 "\"commits_per_sec\": %.2f, \"aborts\": %llu, "
                 "\"cross_shard_rounds\": %llu}%s\n",
                 p.shards, p.cross_ratio, p.skew,
                 static_cast<unsigned long long>(p.commits), p.throughput,
                 static_cast<unsigned long long>(p.aborts),
                 static_cast<unsigned long long>(p.cross_rounds),
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_shard.json";
  const sim::Tick duration = sweep_duration();

  std::printf(
      "Sharded-cohort scaling: %u nodes, %u-replica cohorts, %u clients\n"
      "shards {1,4,16,64} x cross-shard ratio {0,0.1} x Zipf skew {0,0.9}\n",
      kNodes, kCohortSize, kClients);

  std::vector<Point> points;
  bool criterion_ok = true;
  for (double skew : kSkews) {
    for (double ratio : kCrossRatios) {
      print_header("cross=" + std::to_string(ratio) +
                       " skew=" + std::to_string(skew),
                   "shards    txn/s   commits  cross-rounds  ab/cmt");
      std::vector<Point> series;
      for (std::uint32_t shards : kShards) {
        Point p = run_point(shards, ratio, skew, duration);
        std::printf("%6u %s %9llu %13llu %s\n", p.shards,
                    fmt(p.throughput).c_str(),
                    static_cast<unsigned long long>(p.commits),
                    static_cast<unsigned long long>(p.cross_rounds),
                    fmt(p.commits ? static_cast<double>(p.aborts) /
                                        static_cast<double>(p.commits)
                                  : 0.0,
                        8, 2)
                        .c_str());
        series.push_back(p);
        points.push_back(p);
      }
      if (skew == 0.0) {
        // Uniform access: every extra shard must buy real throughput.
        for (std::size_t i = 1; i < series.size(); ++i) {
          if (series[i].throughput <= series[i - 1].throughput) {
            std::printf("  -> FAIL: %u shards not faster than %u\n",
                        series[i].shards, series[i - 1].shards);
            criterion_ok = false;
          }
        }
      } else {
        // Heavy skew: the hot keys' cohorts cap the win, but sharding must
        // still beat full replication.
        if (series.back().throughput <= series.front().throughput) {
          std::printf("  -> FAIL: %u shards not faster than %u under skew\n",
                      series.back().shards, series.front().shards);
          criterion_ok = false;
        }
      }
    }
  }

  if (!write_json(json_path, points, duration)) return 2;
  std::printf("\nwrote %zu points -> %s\ncriterion: %s\n", points.size(),
              json_path.c_str(), criterion_ok ? "PASS" : "FAIL");
  return criterion_ok ? 0 : 1;
}
