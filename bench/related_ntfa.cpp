// Related-work reproduction: closed nesting on the single-copy TFA model
// (N-TFA) vs closed nesting on replicated QR (QR-CN).
//
// The paper positions its contribution against N-TFA (§VII): "The work
// reports 2% average performance benefit for closed nesting compared to
// flat nesting (and 84% speedup in certain cases)" -- far below QR-CN's
// 53 % average.  The structural reason falls out of the protocols: TFA
// reads are cheap unicasts and validation only piggybacks on *clock-skew*
// forwarding, so partial aborts have little to save; QR reads are expensive
// quorum multicasts validated on every read, so saving re-reads pays much
// more.  This bench reproduces that contrast on the same Bank workload.
#include <cstdio>

#include "baselines/tfa.h"
#include "bench/bench_util.h"
#include "common/serde.h"

using namespace qrdtm;
using namespace qrdtm::bench;

namespace {

constexpr std::uint32_t kAccounts = 64;
constexpr std::uint32_t kOpsPerTxn = 3;

Bytes enc_i64(std::int64_t v) {
  Writer w;
  w.i64(v);
  return std::move(w).take();
}

std::int64_t dec_i64(const Bytes& b) {
  Reader r(b);
  return r.i64();
}

double run_tfa(bool nested, double ratio) {
  baselines::TfaConfig cfg;
  cfg.num_nodes = 13;
  cfg.seed = 71;
  cfg.closed_nesting = nested;
  baselines::TfaCluster c(cfg);
  std::vector<core::ObjectId> accounts;
  for (std::uint32_t i = 0; i < kAccounts; ++i) {
    accounts.push_back(c.seed_new_object(enc_i64(1000)));
  }
  for (std::uint32_t n = 0; n < 8; ++n) {
    c.spawn_loop_client(n, [&, ratio](Rng& rng) -> baselines::TfaBody {
      struct Op {
        bool is_read;
        std::size_t a, b;
      };
      std::vector<Op> plan;
      for (std::uint32_t i = 0; i < kOpsPerTxn; ++i) {
        Op op;
        op.is_read = rng.chance(ratio);
        op.a = rng.below(kAccounts);
        op.b = rng.below(kAccounts - 1);
        if (op.b >= op.a) ++op.b;
        plan.push_back(op);
      }
      // `c` is by-reference (non-copyable cluster) and outlives the body:
      // run_for() drains all clients first.  qrdtm-lint: allow(coro-ref-capture)
      return [&c, plan, accounts](baselines::TfaTxn& t) -> sim::Task<void> {
        for (const Op& op : plan) {
          // The nested-transaction lambda is consumed inside this directly
          // co_awaited t.nested() call, so the by-reference captures (op,
          // accounts) are alive for the whole nested transaction.
          // qrdtm-lint: allow(coro-ref-capture)
          co_await t.nested([&](baselines::TfaTxn& ct) -> sim::Task<void> {
            if (op.is_read) {
              (void)co_await ct.read(accounts[op.a]);
              (void)co_await ct.read(accounts[op.b]);
            } else {
              std::int64_t f =
                  dec_i64(co_await ct.read_for_write(accounts[op.a]));
              std::int64_t g =
                  dec_i64(co_await ct.read_for_write(accounts[op.b]));
              ct.write(accounts[op.a], enc_i64(f - 1));
              ct.write(accounts[op.b], enc_i64(g + 1));
            }
            co_await c.simulator().delay(sim::usec(200));
          });
        }
      };
    });
  }
  c.run_for(point_duration());
  return c.metrics().throughput(c.duration());
}

double run_qr(core::NestingMode mode, double ratio) {
  ExperimentConfig cfg;
  cfg.app = "bank";
  cfg.mode = mode;
  cfg.params.read_ratio = ratio;
  cfg.params.nested_calls = kOpsPerTxn;
  cfg.params.num_objects = kAccounts;
  cfg.duration = point_duration();
  cfg.seed = 71;
  auto res = run_experiment(cfg);
  warn_if_corrupt(res, "qr bank");
  return res.throughput;
}

}  // namespace

int main() {
  std::printf(
      "Related work: closed-nesting gains on single-copy TFA (N-TFA) vs "
      "replicated QR (QR-CN)\nBank, 13 nodes, 8 clients; paper context: "
      "N-TFA reported ~2%% average gains vs QR-CN's 53%%\n");
  print_header("closed-nesting gain by substrate",
               "read%   TFA-flat  N-TFA   gain%    QR-flat  QR-CN   gain%");
  for (double ratio : {0.2, 0.5, 0.8}) {
    double tfa_flat = run_tfa(false, ratio);
    double ntfa = run_tfa(true, ratio);
    double qr_flat = run_qr(core::NestingMode::kFlat, ratio);
    double qr_cn = run_qr(core::NestingMode::kClosed, ratio);
    std::printf("%5.0f %s %s %s %s %s %s\n", ratio * 100,
                fmt(tfa_flat, 9).c_str(), fmt(ntfa, 7).c_str(),
                fmt(pct_change(ntfa, tfa_flat), 7).c_str(),
                fmt(qr_flat, 10).c_str(), fmt(qr_cn, 7).c_str(),
                fmt(pct_change(qr_cn, qr_flat), 7).c_str());
  }
  std::printf(
      "\ntakeaway: partial aborts pay proportionally to what a retry "
      "re-buys; TFA's cheap\nunicast reads leave closed nesting little to "
      "save, QR's quorum reads a lot.\n");
  return 0;
}
