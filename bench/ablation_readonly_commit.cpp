// Ablation: QR-CN's zero-message read-only commit.
//
// Rqv lets a read-only root transaction commit locally (paper §III-A).
// This sweep isolates that optimisation's contribution to QR-CN's gains by
// disabling it (read-only roots then validate via 2PC like flat QR): the
// delta grows with the read ratio and explains why our short-transaction
// benchmarks peak at read-heavy workloads (EXPERIMENTS.md, deviation 4).
#include <cstdio>

#include "bench/bench_util.h"

using namespace qrdtm;
using namespace qrdtm::bench;

int main() {
  std::printf(
      "Ablation: QR-CN read-only local commit (13 nodes, 8 clients, bank)\n");

  const double ratios[] = {0.2, 0.5, 0.8, 1.0};

  print_header("bank", "read%   flat     CN(no-RO-opt)  CN(full)   "
                       "opt-share-of-gain");
  for (double ratio : ratios) {
    std::vector<ExperimentConfig> configs;
    for (int variant = 0; variant < 3; ++variant) {
      ExperimentConfig cfg;
      cfg.app = "bank";
      cfg.mode = variant == 0 ? core::NestingMode::kFlat
                              : core::NestingMode::kClosed;
      cfg.params.read_ratio = ratio;
      cfg.params.num_objects = default_objects("bank");
      cfg.duration = point_duration();
      cfg.seed = 55;
      configs.push_back(cfg);
    }
    auto results = run_sweep(configs);
    // variant 1 = CN without the optimisation: rerun with the knob off.
    ExperimentConfig no_opt = configs[1];
    // The harness routes RuntimeConfig knobs we expose; this one needs a
    // direct run since it is not part of ExperimentConfig:
    auto run_no_opt = [&no_opt]() {
      core::ClusterConfig cc;
      cc.num_nodes = no_opt.num_nodes;
      cc.seed = no_opt.seed;
      cc.runtime.mode = core::NestingMode::kClosed;
      cc.runtime.cn_local_readonly_commit = false;
      core::Cluster cluster(cc);
      auto app = apps::make_app(no_opt.app);
      Rng setup(no_opt.seed * 7919 + 13);
      auto params = no_opt.params;
      app->setup(cluster, params, setup);
      for (std::uint32_t i = 0; i < no_opt.clients; ++i) {
        cluster.spawn_loop_client(i % cc.num_nodes,
                                  [&app, params](Rng& rng) {
                                    return app->make_txn(params, rng);
                                  });
      }
      cluster.run_for(no_opt.duration);
      return cluster.metrics().throughput(cluster.duration());
    };

    double flat = results[0].throughput;
    double cn_full = results[2].throughput;
    double cn_no_opt = run_no_opt();
    double gain_full = cn_full - flat;
    double share = gain_full > 0 ? 100.0 * (cn_full - cn_no_opt) / gain_full
                                 : 0.0;
    std::printf("%5.0f %s %s %s %s%%\n", ratio * 100, fmt(flat, 7).c_str(),
                fmt(cn_no_opt, 13).c_str(), fmt(cn_full, 9).c_str(),
                fmt(share, 14, 0).c_str());
  }
  std::printf(
      "\ntakeaway: at 100%% reads essentially the whole CN gain is the "
      "saved commit round;\nat write-heavy ratios the gain comes from "
      "partial aborts instead.\n");
  return 0;
}
