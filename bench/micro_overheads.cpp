// Micro-benchmarks (google-benchmark): substrate hot paths plus the
// paper's standalone checkpoint-creation overhead measurement (§VI-C:
// "checkpoint creation ... has only 6 % overhead compared to flat
// nesting", measured with conflicts excluded).
#include <benchmark/benchmark.h>

#include "apps/app.h"
#include "bench/harness.h"
#include "common/serde.h"
#include "core/wire.h"
#include "quorum/quorum.h"
#include "sim/simulator.h"
#include "sim/task.h"
#include "store/replica_store.h"

namespace {

using namespace qrdtm;

void BM_SerdeEncodeReadRequest(benchmark::State& state) {
  core::ReadRequest req;
  req.root = 42;
  req.mode = core::NestingMode::kClosed;
  req.object = 7;
  for (int i = 0; i < state.range(0); ++i) {
    req.dataset.push_back(core::DataSetEntry{
        static_cast<core::ObjectId>(i), 3, 42, 1, 2});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(req.encode());
  }
}
BENCHMARK(BM_SerdeEncodeReadRequest)->Arg(4)->Arg(32)->Arg(256);

void BM_SerdeDecodeReadRequest(benchmark::State& state) {
  core::ReadRequest req;
  req.root = 42;
  req.mode = core::NestingMode::kClosed;
  req.object = 7;
  for (int i = 0; i < state.range(0); ++i) {
    req.dataset.push_back(core::DataSetEntry{
        static_cast<core::ObjectId>(i), 3, 42, 1, 2});
  }
  Bytes wire = req.encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ReadRequest::decode(wire));
  }
}
BENCHMARK(BM_SerdeDecodeReadRequest)->Arg(4)->Arg(32)->Arg(256);

void BM_TreeQuorumConstruction(benchmark::State& state) {
  quorum::TreeQuorumProvider::Config cfg;
  cfg.num_nodes = static_cast<std::uint32_t>(state.range(0));
  cfg.read_level = 1;
  cfg.same_for_all = false;
  quorum::TreeQuorumProvider q(cfg);
  net::NodeId node = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.read_quorum(node));
    benchmark::DoNotOptimize(q.write_quorum(node));
    node = (node + 1) % cfg.num_nodes;
  }
}
BENCHMARK(BM_TreeQuorumConstruction)->Arg(13)->Arg(40)->Arg(121);

void BM_ReplicaStoreApply(benchmark::State& state) {
  store::ReplicaStore s;
  Bytes data(64, 0xAB);
  store::Version v = 1;
  for (auto _ : state) {
    s.apply(1 + (v % 1024), v, data);
    ++v;
  }
}
BENCHMARK(BM_ReplicaStoreApply);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator s;
    int counter = 0;
    for (int i = 0; i < 10000; ++i) {
      s.schedule_at(static_cast<sim::Tick>(i), [&counter] { ++counter; });
    }
    s.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventThroughput);

/// Paper §VI-C: checkpoint-creation overhead with conflicts excluded.  One
/// client (zero contention), identical workload, QR-CHK vs flat QR; the
/// counter reports the relative slowdown (paper: ~6 %).
void BM_CheckpointCreationOverhead(benchmark::State& state) {
  double overhead_pct = 0;
  for (auto _ : state) {
    auto run_mode = [&](core::NestingMode mode) {
      bench::ExperimentConfig cfg;
      cfg.app = "bank";  // the paper's macro-benchmark scale (~6 objects/txn)
      cfg.mode = mode;
      cfg.clients = 1;  // no contention: isolates creation cost
      cfg.params.read_ratio = 0.2;
      cfg.params.num_objects = 64;
      cfg.params.nested_calls = 3;
      cfg.chk_threshold = 1;
      cfg.duration = sim::sec(20);
      cfg.seed = 48;
      return bench::run_experiment(cfg);
    };
    auto flat = run_mode(core::NestingMode::kFlat);
    auto chk = run_mode(core::NestingMode::kCheckpoint);
    overhead_pct = 100.0 * (flat.throughput - chk.throughput) /
                   flat.throughput;
    benchmark::DoNotOptimize(overhead_pct);
  }
  state.counters["overhead_pct"] = overhead_pct;
}
BENCHMARK(BM_CheckpointCreationOverhead)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
