// Hot-path microbenchmarks for the simulation substrate itself: raw kernel
// event throughput, RPC round-trips, and Rqv remote reads as the carried
// data-set grows.  These are the three paths every experiment in the
// reproduction funnels through; BENCH_kernel.json (emitted by qrdtm_run
// --bench-json and by --benchmark_out here) tracks their trajectory across
// perf PRs.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/cluster.h"
#include "net/latency.h"
#include "net/network.h"
#include "net/rpc.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace qrdtm {
namespace {

// ----------------------------------------------------------------- kernel

/// Self-rescheduling timer chain: one live event at a time, so this measures
/// pure schedule+fire cost (pool hit, heap push/pop, callable dispatch).
struct Chain {
  sim::Simulator* s;
  std::uint64_t left;
  void operator()() {
    if (left-- > 1) s->schedule_after(1, *this);
  }
};

void BM_KernelEventChain(benchmark::State& state) {
  constexpr std::uint64_t kEvents = 1 << 17;
  for (auto _ : state) {
    sim::Simulator s;
    s.schedule_after(1, Chain{&s, kEvents});
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kEvents));
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.items_processed()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KernelEventChain);

/// Wide heap: many pending events at once (the steady state of a cluster
/// with in-flight messages), exercising sift-up/down under load.
void BM_KernelEventHeap(benchmark::State& state) {
  constexpr std::uint64_t kPending = 4096;
  constexpr std::uint64_t kRounds = 64;
  for (auto _ : state) {
    sim::Simulator s;
    // Seed kPending staggered chains; each reschedules itself kRounds times.
    for (std::uint64_t i = 0; i < kPending; ++i) {
      s.schedule_at(1 + (i * 2654435761u) % 100000, Chain{&s, kRounds});
    }
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPending * kRounds));
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(state.items_processed()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KernelEventHeap);

// -------------------------------------------------------------------- rpc

void BM_RpcRoundTrip(benchmark::State& state) {
  constexpr std::uint64_t kCalls = 4096;
  sim::Simulator s;
  net::Network net(s, std::make_unique<net::UniformLatency>(sim::usec(10), 0),
                   /*seed=*/7, /*service_time=*/sim::usec(1));
  net::RpcEndpoint client(s, net);
  net::RpcEndpoint server(s, net);
  server.register_service(
      42, [](net::NodeId, const Bytes& req) -> std::optional<Bytes> {
        return req;  // echo
      });
  for (auto _ : state) {
    s.spawn([](net::RpcEndpoint* cl, net::NodeId dst) -> sim::Task<void> {
      Bytes req{1, 2, 3, 4, 5, 6, 7, 8};
      for (std::uint64_t i = 0; i < kCalls; ++i) {
        auto fut = cl->call(dst, 42, req, sim::sec(1));
        net::RpcResult res = co_await fut;
        benchmark::DoNotOptimize(res.ok);
      }
    }(&client, server.id()));
    s.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kCalls));
  state.counters["rpc_per_sec"] = benchmark::Counter(
      static_cast<double>(state.items_processed()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RpcRoundTrip);

// -------------------------------------------------------- Rqv remote reads

/// Remote reads under QR-CN while the transaction's data-set grows to the
/// given size: every read ships the full data-set (Rqv), so per-read cost is
/// dominated by data-set collection + encoding.
void BM_ReadWithDataSet(benchmark::State& state) {
  const std::uint32_t dataset = static_cast<std::uint32_t>(state.range(0));
  core::ClusterConfig cc;
  cc.num_nodes = 4;
  cc.runtime.mode = core::NestingMode::kClosed;
  cc.link_latency = sim::usec(10);
  cc.link_jitter = 0;
  cc.service_time = sim::usec(1);
  core::Cluster cluster(cc);
  std::vector<core::ObjectId> ids;
  ids.reserve(dataset);
  for (std::uint32_t i = 0; i < dataset; ++i) {
    ids.push_back(cluster.seed_new_object(Bytes(16, 0xAB)));
  }
  for (auto _ : state) {
    // `ids` outlives the coroutine: run_to_completion() below drains the
    // client before the next iteration, and copying the dataset per spawn
    // would distort this allocation-free microbenchmark.
    // qrdtm-lint: allow(coro-ref-capture)
    cluster.spawn_client(0, [&ids](core::Txn& t) -> sim::Task<void> {
      for (core::ObjectId id : ids) {
        Bytes b = co_await t.read(id);
        benchmark::DoNotOptimize(b.size());
      }
    });
    cluster.run_to_completion();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dataset));
  state.counters["reads_per_sec"] = benchmark::Counter(
      static_cast<double>(state.items_processed()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ReadWithDataSet)->Arg(4)->Arg(32)->Arg(128);

}  // namespace
}  // namespace qrdtm

BENCHMARK_MAIN();
