// Reproduces paper Fig. 5 (a-e): throughput of flat nesting (QR), closed
// nesting (QR-CN) and checkpointing (QR-CHK) as the read workload varies
// from 0 % to 100 %, for Bank, Hashmap, SList, RBTree and Vacation.
//
// Paper shape to reproduce: closed nesting outperforms flat everywhere,
// with the largest gap at write-heavy workloads (gap narrows as reads
// dominate); checkpointing trails flat nesting.
//
// A fourth series adds this repo's QR-Q extension (queued speculative batch
// commit).  Its points run with clients co-located on 4 nodes -- batches
// only form when a node submits several transactions per window, so the
// spread placement the paper modes use would degenerate QR-Q to flat plus
// formation-window latency.  See bench/contention_modes.cpp for the
// like-for-like four-mode comparison.
#include <cstdio>

#include "bench/bench_util.h"

using namespace qrdtm;
using namespace qrdtm::bench;

int main() {
  std::printf(
      "Fig. 5 reproduction: throughput (txn/s) vs read workload\n"
      "13-node ternary-tree quorum cluster, %u clients, 3 nested calls\n",
      8u);

  const double ratios[] = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};

  for (const std::string& app : paper_apps()) {
    std::vector<ExperimentConfig> configs;
    const auto modes = all_modes();
    for (double ratio : ratios) {
      for (core::NestingMode mode : modes) {
        ExperimentConfig cfg;
        cfg.app = app;
        cfg.mode = mode;
        cfg.params.read_ratio = ratio;
        cfg.params.nested_calls = 3;
        cfg.params.num_objects = default_objects(app);
        cfg.duration = point_duration();
        cfg.seed = 42;
        if (mode == core::NestingMode::kQueued) cfg.client_nodes = 4;
        configs.push_back(cfg);
      }
    }
    auto results = run_sweep(configs);

    print_header("Fig 5: " + app,
                 "read%   flat(QR)  closed(CN)  chk(CHK)  queued(Q)"
                 "   CN-gain%  CHK-delta%");
    for (std::size_t i = 0; i < std::size(ratios); ++i) {
      const auto& flat = results[i * modes.size() + 0];
      const auto& cn = results[i * modes.size() + 1];
      const auto& chk = results[i * modes.size() + 2];
      const auto& q = results[i * modes.size() + 3];
      for (const auto* r : {&flat, &cn, &chk, &q}) {
        warn_if_corrupt(*r, app);
      }
      std::printf("%5.0f %s %s %s %s  %s %s\n", ratios[i] * 100,
                  fmt(flat.throughput).c_str(), fmt(cn.throughput, 11).c_str(),
                  fmt(chk.throughput).c_str(), fmt(q.throughput, 10).c_str(),
                  fmt(pct_change(cn.throughput, flat.throughput)).c_str(),
                  fmt(pct_change(chk.throughput, flat.throughput), 11).c_str());
    }
  }
  return 0;
}
