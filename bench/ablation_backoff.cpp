// Ablation: closed-nested retry backoff.
//
// An aborted CT that retries immediately usually runs straight back into
// the conflicting committer's protection window (one commit round trip);
// waiting too long wastes the partial-abort advantage.  This sweep shows
// the contention-manager trade-off.
#include <cstdio>

#include "bench/bench_util.h"

using namespace qrdtm;
using namespace qrdtm::bench;

int main() {
  std::printf(
      "Ablation: CT retry backoff under QR-CN (13 nodes, 8 clients, 20%% "
      "reads)\n");

  const std::uint32_t backoffs_ms[] = {0, 5, 15, 30, 60};

  for (const std::string& app :
       {std::string("hashmap"), std::string("slist")}) {
    std::vector<ExperimentConfig> configs;
    for (std::uint32_t ms : backoffs_ms) {
      ExperimentConfig cfg;
      cfg.app = app;
      cfg.mode = core::NestingMode::kClosed;
      cfg.params.read_ratio = 0.2;
      cfg.params.num_objects = default_objects(app);
      cfg.ct_retry_backoff = sim::msec(ms);
      cfg.duration = point_duration();
      cfg.seed = 53;
      configs.push_back(cfg);
    }
    auto results = run_sweep(configs);

    print_header("CT backoff ablation: " + app,
                 "backoff    txn/s   ct-retries/commit");
    for (std::size_t i = 0; i < results.size(); ++i) {
      warn_if_corrupt(results[i], app);
      double retries =
          results[i].commits
              ? static_cast<double>(results[i].ct_aborts) /
                    static_cast<double>(results[i].commits)
              : 0.0;
      std::printf("%4ums %s %s\n", backoffs_ms[i],
                  fmt(results[i].throughput).c_str(),
                  fmt(retries, 14, 2).c_str());
    }
  }
  return 0;
}
