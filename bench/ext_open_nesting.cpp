// Extension benchmark: open nesting (QR-ON) vs closed nesting (QR-CN) vs
// flat (QR) on the Hashmap benchmark.
//
// The paper defers open nesting to related work (TFA-ON, which reported
// ~30 % average gains over flat on the single-copy model).  QR-ON commits
// each data-structure operation globally as it completes, guarded by
// per-key abstract locks, so a root never aborts on memory-level conflicts
// in *completed* operations -- at the price of per-operation commit rounds,
// lock traffic, and compensations when a root does abort.
#include <cstdio>

#include "apps/hashmap.h"
#include "bench/bench_util.h"

using namespace qrdtm;
using namespace qrdtm::bench;

namespace {

struct Row {
  double tput = 0;
  double aborts_per_commit = 0;
  double msgs_per_commit = 0;
  bool ok = false;
};

Row run(core::NestingMode mode, bool open, double ratio,
        std::uint32_t objects) {
  core::ClusterConfig cc;
  cc.num_nodes = 13;
  cc.seed = 91;
  cc.runtime.mode = mode;
  core::Cluster cluster(cc);
  apps::HashmapApp app;
  apps::WorkloadParams params;
  params.read_ratio = ratio;
  params.nested_calls = 3;
  params.num_objects = objects;
  Rng setup(91);
  app.setup(cluster, params, setup);

  for (net::NodeId n = 0; n < 8; ++n) {
    cluster.spawn_loop_client(n, [&app, params, open](Rng& rng) {
      return open ? app.make_txn_open(params, rng)
                  : app.make_txn(params, rng);
    });
  }
  cluster.run_for(point_duration());

  Row row;
  const auto& m = cluster.metrics();
  row.tput = m.throughput(cluster.duration());
  row.aborts_per_commit =
      m.commits ? static_cast<double>(m.total_aborts()) /
                      static_cast<double>(m.commits)
                : 0;
  row.msgs_per_commit = m.commits ? static_cast<double>(m.total_messages()) /
                                        static_cast<double>(m.commits)
                                  : 0;
  cluster.run_to_completion();
  bool ok = false;
  cluster.spawn_client(0, app.make_checker(&ok));
  cluster.run_to_completion();
  row.ok = ok;
  return row;
}

}  // namespace

int main() {
  std::printf(
      "Extension: open nesting (QR-ON) vs closed (QR-CN) vs flat (QR)\n"
      "hashmap, 13 nodes, 8 clients, 3 ops/txn; TFA-ON context: ~30%% over "
      "flat\n");

  for (std::uint32_t objects : {48u, 96u}) {
    print_header(
        "hashmap, " + std::to_string(objects) + " keys",
        "read%     flat      CN      ON    CN-gain%  ON-gain%   ON-msg/c");
    for (double ratio : {0.2, 0.5, 0.8}) {
      Row flat = run(core::NestingMode::kFlat, false, ratio, objects);
      Row cn = run(core::NestingMode::kClosed, false, ratio, objects);
      Row on = run(core::NestingMode::kFlat, true, ratio, objects);
      for (const Row* r : {&flat, &cn, &on}) {
        if (!r->ok) std::printf("!! INVARIANT VIOLATION\n");
      }
      std::printf("%5.0f %s %s %s %s %s %s\n", ratio * 100,
                  fmt(flat.tput, 8).c_str(), fmt(cn.tput, 7).c_str(),
                  fmt(on.tput, 7).c_str(),
                  fmt(pct_change(cn.tput, flat.tput), 9).c_str(),
                  fmt(pct_change(on.tput, flat.tput), 9).c_str(),
                  fmt(on.msgs_per_commit, 10).c_str());
    }
  }
  std::printf(
      "\ntakeaway: open nesting eliminates cross-operation false conflicts "
      "(aborts confined\nto one operation) but pays per-operation commit "
      "rounds and abstract-lock traffic.\n");
  return 0;
}
