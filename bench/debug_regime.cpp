// Scratch diagnostic (not a paper figure): prints the full metric breakdown
// per (app, mode) at the Fig. 8 operating point, for calibration work.
#include <cstdio>

#include "bench/bench_util.h"

using namespace qrdtm;
using namespace qrdtm::bench;

int main(int argc, char** argv) {
  const std::string app = argc > 1 ? argv[1] : "bank";
  double ratio = argc > 2 ? std::atof(argv[2]) : 0.2;
  for (core::NestingMode mode : paper_modes()) {
    ExperimentConfig cfg;
    cfg.app = app;
    cfg.mode = mode;
    cfg.params.read_ratio = ratio;
    cfg.params.nested_calls = argc > 4 ? std::atoi(argv[4]) : 3;
    cfg.params.num_objects = argc > 3 ? std::atoi(argv[3]) : default_objects(app);
    cfg.duration = sim::sec(120);
    cfg.clients = argc > 5 ? std::atoi(argv[5]) : 8;
    if (const char* bo = std::getenv("QRDTM_CT_BACKOFF_MS")) cfg.ct_retry_backoff = sim::msec(std::atof(bo));
    if (const char* rc = std::getenv("QRDTM_RESTORE_MS")) cfg.chk_restore_cost = sim::msec(std::atof(rc));
    if (const char* cc2 = std::getenv("QRDTM_PEROBJ_US")) cfg.chk_create_cost_per_obj = sim::usec(std::atof(cc2));
    cfg.seed = 42;
    auto r = run_experiment(cfg);
    std::printf(
        "%-14s tput=%7.1f commits=%6lu root_ab=%5lu ct_ab=%5lu proll=%5lu "
        "chks=%6lu vote_ab=%5lu rqv_fail=%5lu rd_msg=%7lu cm_msg=%7lu ab/c=%.2f msg/c=%.1f ok=%d\n",
        mode_label(mode), r.throughput, (unsigned long)r.commits,
        (unsigned long)r.root_aborts, (unsigned long)r.ct_aborts,
        (unsigned long)r.partial_rollbacks, (unsigned long)r.checkpoints, (unsigned long)r.vote_aborts,
        (unsigned long)r.validation_failures,
        (unsigned long)r.read_messages, (unsigned long)r.commit_messages,
        r.abort_rate(), r.messages_per_commit(), r.invariants_ok ? 1 : 0);
  }
  return 0;
}
