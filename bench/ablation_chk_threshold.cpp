// Ablation: checkpoint granularity (QR-CHK threshold).
//
// The paper attributes QR-CHK's losses to "the fine granularity of
// checkpoints which results in [a] large number of unnecessary partial
// aborts" (§VI-C).  This sweep varies the creation threshold (objects per
// checkpoint): threshold 1 = a checkpoint after every object (the paper's
// fine-grained setting), larger thresholds approach flat nesting (few
// rollback points, rollbacks discard more).
#include <cstdio>

#include "bench/bench_util.h"

using namespace qrdtm;
using namespace qrdtm::bench;

int main() {
  std::printf(
      "Ablation: QR-CHK checkpoint threshold (objects per checkpoint)\n"
      "13 nodes, 8 clients, 20%% reads; delta vs flat nesting\n");

  const std::uint32_t thresholds[] = {1, 2, 4, 8, 16};

  for (const std::string& app : {std::string("bank"), std::string("slist")}) {
    ExperimentConfig base;
    base.app = app;
    base.mode = core::NestingMode::kFlat;
    base.params.read_ratio = 0.2;
    base.params.num_objects = default_objects(app);
    base.duration = point_duration();
    base.seed = 54;
    auto flat = run_experiment(base);
    warn_if_corrupt(flat, app);

    std::vector<ExperimentConfig> configs;
    for (std::uint32_t th : thresholds) {
      ExperimentConfig cfg = base;
      cfg.mode = core::NestingMode::kCheckpoint;
      cfg.chk_threshold = th;
      configs.push_back(cfg);
    }
    auto results = run_sweep(configs);

    print_header("CHK threshold ablation: " + app + "  (flat baseline " +
                     fmt(flat.throughput, 0) + " txn/s)",
                 "threshold   txn/s   delta%%   chk/commit  rollbacks/commit");
    for (std::size_t i = 0; i < std::size(thresholds); ++i) {
      warn_if_corrupt(results[i], app);
      const auto& r = results[i];
      double chks = r.commits ? static_cast<double>(r.checkpoints) /
                                    static_cast<double>(r.commits)
                              : 0.0;
      double rolls = r.commits ? static_cast<double>(r.partial_rollbacks) /
                                     static_cast<double>(r.commits)
                               : 0.0;
      std::printf("%6u %s %s %s %s\n", thresholds[i],
                  fmt(r.throughput, 10).c_str(),
                  fmt(pct_change(r.throughput, flat.throughput), 8).c_str(),
                  fmt(chks, 11, 1).c_str(), fmt(rolls, 13, 2).c_str());
    }
  }
  std::printf(
      "\ntakeaway: finer checkpoints mean more (and deeper-reaching) "
      "snapshot copies per\ntransaction and more rollback events; coarser "
      "ones discard more work per rollback.\n");
  return 0;
}
