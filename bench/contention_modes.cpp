// Mode-comparison contention sweep: flat (QR), closed (QR-CN), checkpoint
// (QR-CHK) and queued (QR-Q, speculative batch commit) on hot-key Bank and
// Hashmap workloads, shrinking the object population so every transaction
// fights over fewer and fewer keys.
//
// Expected shape: the per-transaction modes collapse as contention rises
// (abort/backoff cycles burn quorum round trips), while QR-Q's batch
// planner turns contention into locality -- co-submitted transactions on
// the same node share one quorum fetch per hot key and commit through one
// 2PC round per batch, so at the hottest point queued shows strictly
// higher throughput and a strictly lower abort rate than flat and closed.
//
// All four modes run the same placement (clients co-located on
// kClientNodes nodes): batching only amortises traffic a node actually
// submits, and co-location is the regime the comparison is about.
//
// Writes machine-readable results (commits/sec, abort rate, commit p50/p99
// per mode x app x population) to BENCH_modes.json (or argv[1]) for CI
// artifacts.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

using namespace qrdtm;
using namespace qrdtm::bench;

namespace {

constexpr std::uint32_t kClients = 8;
constexpr std::uint32_t kClientNodes = 2;
const std::uint32_t kPopulations[] = {64, 32, 16, 8};  // hot -> hottest

struct Point {
  std::string app;
  core::NestingMode mode;
  std::uint32_t objects;
  ExperimentResult res;
};

double p_ms(const ExperimentResult& r, int pct) {
  return sim::to_seconds(r.latency.commit_latency.percentile(pct)) * 1e3;
}

double commits_per_sec(const ExperimentResult& r) { return r.throughput; }

bool write_json(const std::string& path, const std::vector<Point>& points,
                sim::Tick duration) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"contention_modes\",\n"
               "  \"clients\": %u,\n"
               "  \"client_nodes\": %u,\n"
               "  \"sim_seconds\": %.1f,\n"
               "  \"points\": [\n",
               kClients, kClientNodes, sim::to_seconds(duration));
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    const ExperimentResult& r = p.res;
    std::fprintf(
        f,
        "    {\"app\": \"%s\", \"mode\": \"%s\", \"objects\": %u, "
        "\"commits\": %llu, \"commits_per_sec\": %.2f, "
        "\"aborts\": %llu, \"abort_rate\": %.4f, "
        "\"batches\": %llu, \"speculation_rollbacks\": %llu, "
        "\"batch_read_hits\": %llu, \"messages_per_commit\": %.2f, "
        "\"commit_p50_ms\": %.1f, \"commit_p99_ms\": %.1f, "
        "\"invariants_ok\": %s}%s\n",
        p.app.c_str(), core::to_string(p.mode), p.objects,
        static_cast<unsigned long long>(r.commits), commits_per_sec(r),
        static_cast<unsigned long long>(r.total_aborts()),
        r.commits ? r.abort_rate() : 0.0,
        static_cast<unsigned long long>(r.batches),
        static_cast<unsigned long long>(r.speculation_rollbacks),
        static_cast<unsigned long long>(r.batch_read_hits),
        r.messages_per_commit(), p_ms(r, 50), p_ms(r, 99),
        r.invariants_ok ? "true" : "false",
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_modes.json";
  const sim::Tick duration = point_duration();
  const auto modes = all_modes();

  std::printf(
      "Mode comparison under contention: QR / QR-CN / QR-CHK / QR-Q\n"
      "13-node tree quorum, %u clients on %u nodes, 20%% reads, "
      "population sweep 64 -> 8\n",
      kClients, kClientNodes);

  std::vector<Point> points;
  bool criterion_ok = true;
  for (const std::string& app : {std::string("bank"), std::string("hashmap")}) {
    std::vector<ExperimentConfig> configs;
    for (std::uint32_t objects : kPopulations) {
      for (core::NestingMode mode : modes) {
        ExperimentConfig cfg;
        cfg.app = app;
        cfg.mode = mode;
        cfg.params.read_ratio = 0.2;
        cfg.params.nested_calls = 3;
        cfg.params.num_objects = objects;
        cfg.clients = kClients;
        cfg.client_nodes = kClientNodes;
        cfg.duration = duration;
        cfg.seed = 42;
        configs.push_back(cfg);
      }
    }
    auto results = run_sweep(configs);

    print_header(
        "contention: " + app,
        "objs   mode          txn/s   ab/cmt  p50(ms)  p99(ms)  msg/cmt");
    std::size_t idx = 0;
    for (std::uint32_t objects : kPopulations) {
      const ExperimentResult* flat = nullptr;
      const ExperimentResult* closed = nullptr;
      const ExperimentResult* queued = nullptr;
      for (core::NestingMode mode : modes) {
        const ExperimentResult& r = results[idx++];
        warn_if_corrupt(r, app + "/" + core::to_string(mode));
        std::printf("%4u   %-11s %s %s %s %s %s\n", objects, mode_label(mode),
                    fmt(r.throughput).c_str(), fmt(r.abort_rate(), 8, 2).c_str(),
                    fmt(p_ms(r, 50), 8).c_str(), fmt(p_ms(r, 99), 8).c_str(),
                    fmt(r.messages_per_commit(), 8).c_str());
        points.push_back({app, mode, objects, r});
        if (mode == core::NestingMode::kFlat) flat = &r;
        if (mode == core::NestingMode::kClosed) closed = &r;
        if (mode == core::NestingMode::kQueued) queued = &r;
      }
      // Acceptance check at the hottest point: QR-Q must beat both
      // per-transaction baselines on throughput AND abort rate.
      if (objects == kPopulations[std::size(kPopulations) - 1]) {
        const bool ok = queued->throughput > flat->throughput &&
                        queued->throughput > closed->throughput &&
                        queued->abort_rate() < flat->abort_rate() &&
                        queued->abort_rate() < closed->abort_rate();
        std::printf("  -> hottest point (%u objects): QR-Q %s flat+closed "
                    "on throughput and abort rate\n",
                    objects, ok ? "beats" : "DOES NOT beat");
        criterion_ok = criterion_ok && ok;
      }
    }
  }

  if (!write_json(json_path, points, duration)) return 2;
  std::printf("\nwrote %zu points -> %s\n", points.size(), json_path.c_str());
  return criterion_ok ? 0 : 1;
}
