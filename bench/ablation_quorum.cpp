// Ablation: quorum construction.
//
// QR's performance depends on the quorum shapes: the tree protocol's read
// quorums are much smaller than majorities (2 vs 7 on 13 nodes), trading
// read cost against fault tolerance; the read level trades quorum size
// against how high in the tree the load concentrates.
#include <cstdio>

#include "bench/bench_util.h"

using namespace qrdtm;
using namespace qrdtm::bench;

namespace {

ExperimentConfig base_cfg(const std::string& app) {
  ExperimentConfig cfg;
  cfg.app = app;
  cfg.mode = core::NestingMode::kClosed;
  cfg.params.read_ratio = 0.2;
  cfg.params.num_objects = default_objects(app);
  cfg.duration = point_duration();
  cfg.seed = 52;
  return cfg;
}

}  // namespace

int main() {
  std::printf(
      "Ablation: quorum construction under QR-CN (13 nodes, 8 clients)\n");

  for (const std::string& app : {std::string("bank"), std::string("slist")}) {
    std::vector<ExperimentConfig> configs;
    std::vector<std::string> labels;

    for (std::uint32_t level : {0u, 1u, 2u}) {
      ExperimentConfig cfg = base_cfg(app);
      cfg.quorum = core::QuorumKind::kTree;
      cfg.tree_read_level = level;
      configs.push_back(cfg);
      labels.push_back("tree level " + std::to_string(level));
    }
    {
      ExperimentConfig cfg = base_cfg(app);
      cfg.quorum = core::QuorumKind::kMajority;
      configs.push_back(cfg);
      labels.push_back("majority");
    }

    auto results = run_sweep(configs);
    print_header("Quorum ablation: " + app,
                 "construction      txn/s   msgs/commit   aborts/commit");
    for (std::size_t i = 0; i < results.size(); ++i) {
      warn_if_corrupt(results[i], app);
      std::printf("%-15s %s %s %s\n", labels[i].c_str(),
                  fmt(results[i].throughput).c_str(),
                  fmt(results[i].messages_per_commit(), 13).c_str(),
                  fmt(results[i].abort_rate(), 15, 2).c_str());
    }
  }
  std::printf(
      "\ntakeaway: smaller read quorums are faster and cheaper in messages "
      "(level 0 reads are\nsingle-member and root-local) but concentrate "
      "load and risk on one node -- Fig. 10's\nhotspot; the paper's level-1 "
      "setup trades a second member for read fault tolerance.\nMajorities "
      "pay ~3x more read messages for the same write-quorum size.\n");
  return 0;
}
