// Lightweight runtime checking macros used throughout qrdtm.
//
// QRDTM_CHECK is always on (protocol invariants must hold in release builds
// too -- a silently corrupted replica is worse than a crash).  QRDTM_DCHECK
// compiles away in NDEBUG builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace qrdtm {

/// Thrown when an internal invariant is violated.  Tests catch this to
/// assert that misuse is detected; production callers should treat it as a
/// bug in qrdtm or in the calling code.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::string full = std::string("QRDTM_CHECK failed: ") + expr + " at " +
                     file + ":" + std::to_string(line);
  if (!msg.empty()) full += " -- " + msg;
  throw InvariantError(full);
}

}  // namespace qrdtm

#define QRDTM_CHECK(expr)                                             \
  do {                                                                \
    if (!(expr)) ::qrdtm::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define QRDTM_CHECK_MSG(expr, msg)                                      \
  do {                                                                  \
    if (!(expr)) ::qrdtm::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define QRDTM_DCHECK(expr) ((void)0)
#else
#define QRDTM_DCHECK(expr) QRDTM_CHECK(expr)
#endif
