// Byte-buffer alias used as the wire and object-data representation.
//
// qrdtm hand-rolls its RPC payloads and replicated object contents as flat
// byte strings (see serde.h).  Object copies are passed around by value
// (CP.31: pass small amounts of data between contexts by value) which makes
// the replica stores trivially free of aliasing bugs.
#pragma once

#include <cstdint>
#include <vector>

namespace qrdtm {

using Bytes = std::vector<std::uint8_t>;

}  // namespace qrdtm
