// Small statistics helpers used by the benchmark harnesses and metrics.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/check.h"

namespace qrdtm {

/// Streaming mean/variance/min/max accumulator (Welford).
class Summary {
 public:
  void add(double x) {
    ++n_;
    double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Reservoir-free exact percentile helper: collects samples, sorts on query.
/// Only used by benches/tests where sample counts are modest.
class Percentiles {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  /// p in [0, 100].
  double percentile(double p) {
    QRDTM_CHECK(!samples_.empty());
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  std::size_t count() const { return samples_.size(); }

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

/// Percentage change of `x` relative to baseline `base` (paper Fig. 8 rows).
/// A zero baseline makes the comparison undefined: report NaN rather than a
/// misleading "no change" (printers render it as "n/a"; see bench::fmt).
inline double pct_change(double x, double base) {
  if (base == 0.0) return std::numeric_limits<double>::quiet_NaN();
  return 100.0 * (x - base) / base;
}

}  // namespace qrdtm
