// Allocation-recycling primitives for the hot paths.
//
// The simulation substrate (event kernel, RPC layer, wire encoding) aims for
// zero steady-state heap allocation: after a short warm-up every per-event /
// per-message allocation is served from a free list instead of the global
// heap.  Two building blocks live here:
//
//   * BufferPool    -- recycles Bytes buffers (wire payloads).  A released
//     buffer keeps its capacity, so a warm pool serves every encode without
//     touching the allocator.  One pool per Network; all nodes of a
//     simulation share it (the simulation is single-threaded).
//   * PoolAllocator -- a std-compatible allocator backed by a per-type,
//     per-thread free list.  Used for the Promise shared state (one per RPC)
//     and the transaction read/write-set map nodes (one per fetched object).
//     Thread-local is the right scope: sweeps parallelise across Simulators,
//     one per thread, and a thread's free list survives across experiment
//     points.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

#include "common/bytes.h"

namespace qrdtm {

/// Recycles Bytes buffers.  acquire() returns an empty buffer that keeps the
/// capacity it had when released, so steady-state encode paths never grow.
class BufferPool {
 public:
  Bytes acquire(std::size_t reserve_hint = 0) {
    Bytes b;
    if (!free_.empty()) {
      b = std::move(free_.back());
      free_.pop_back();
      b.clear();
    }
    if (reserve_hint > b.capacity()) b.reserve(reserve_hint);
    return b;
  }

  /// Hand a buffer back.  Cheap to call with a moved-from or tiny buffer;
  /// those are dropped rather than pooled.
  void release(Bytes&& b) {
    if (b.capacity() == 0) return;
    if (free_.size() < kMaxPooled) {
      free_.push_back(std::move(b));
    }
  }

  std::size_t pooled() const { return free_.size(); }

 private:
  // Enough for every in-flight payload of a large cluster; beyond this,
  // buffers are simply freed.
  static constexpr std::size_t kMaxPooled = 1024;
  std::vector<Bytes> free_;
};

/// std allocator recycling single-object allocations through a per-type
/// thread-local free list.  Array allocations fall through to the heap.
template <class T>
class PoolAllocator {
 public:
  using value_type = T;

  PoolAllocator() noexcept = default;
  template <class U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    // Recycled blocks come back through a plain `::operator new(size)`, so a
    // type needing over-alignment would be constructed misaligned (UB).
    static_assert(alignof(T) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
                  "PoolAllocator serves default-aligned types only");
    if (n == 1) {
      auto& fl = freelist();
      if (!fl.empty()) {
        void* p = fl.back();
        fl.pop_back();
        return static_cast<T*>(p);
      }
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    if (n == 1) {
      auto& fl = freelist();
      if (fl.size() < kMaxPooled) {
        fl.push_back(p);
        return;
      }
    }
    ::operator delete(p);
  }

  template <class U>
  bool operator==(const PoolAllocator<U>&) const noexcept {
    return true;
  }

 private:
  static constexpr std::size_t kMaxPooled = 4096;
  // The cache owns its blocks: they must go back to operator delete at
  // thread exit, or every pooled block shows up as a leak (LeakSanitizer
  // flags them once the vector's storage is torn down).
  struct FreeList {
    std::vector<void*> blocks;
    ~FreeList() {
      for (void* p : blocks) ::operator delete(p);
    }
  };
  static std::vector<void*>& freelist() {
    static thread_local FreeList fl;
    return fl.blocks;
  }
};

}  // namespace qrdtm
