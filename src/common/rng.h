// Deterministic pseudo-random number generation.
//
// Every simulation owns exactly one Rng seeded from its config; derived
// streams (per client, per app) are split off with Rng::split so that two
// experiment points with the same seed replay identically regardless of how
// other components consume randomness.  The core generator is xoshiro256**
// seeded via splitmix64 -- small, fast, and reproducible across platforms
// (std::mt19937 distributions are not bit-portable across libstdc++
// versions, which would break golden-value tests).
#pragma once

#include <cstdint>

#include "common/check.h"

namespace qrdtm {

inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  /// Uniform 64-bit value (xoshiro256**).
  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    QRDTM_DCHECK(bound > 0);
    // Debiased multiply-shift (Lemire).
    while (true) {
      std::uint64_t x = next();
      __uint128_t m = static_cast<__uint128_t>(x) * bound;
      std::uint64_t lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    QRDTM_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Derive an independent child stream; deterministic in (parent state
  /// consumed, salt).
  Rng split(std::uint64_t salt) {
    std::uint64_t seed = next() ^ (salt * 0x9e3779b97f4a7c15ULL);
    return Rng(seed);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace qrdtm
