// Hand-rolled wire format: a bounds-checked little-endian reader/writer pair.
//
// All qrdtm RPC payloads and replicated object values are encoded with these
// primitives.  The format is deliberately simple:
//   * fixed-width little-endian integers (u8/u16/u32/u64, i64),
//   * doubles as their IEEE-754 bit pattern,
//   * strings and byte blobs as u32 length + raw bytes,
//   * vectors as u32 count + elements.
// Decoding is fully bounds-checked and throws SerdeError on malformed input
// (a replica must never crash on a corrupt message).
#pragma once

#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"

namespace qrdtm {

class SerdeError : public std::runtime_error {
 public:
  explicit SerdeError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only encoder.
class Writer {
 public:
  Writer() = default;

  /// Adopt `reuse` as the backing buffer (cleared, capacity retained).  Pair
  /// with a BufferPool to encode without allocating in steady state.
  explicit Writer(Bytes reuse) : buf_(std::move(reuse)) { buf_.clear(); }

  /// Pre-size the buffer for an encode of known (or estimated) size.
  void reserve(std::size_t n) { buf_.reserve(n); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void blob(const Bytes& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  /// Raw append without a length prefix (for nested pre-encoded sections).
  void raw(const Bytes& b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

  Bytes take() && { return std::move(buf_); }
  const Bytes& bytes() const { return buf_; }
  std::size_t size() const { return buf_.size(); }

 private:
  template <class T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  Bytes buf_;
};

/// Bounds-checked decoder over a borrowed buffer.  The buffer must outlive
/// the Reader.
class Reader {
 public:
  explicit Reader(const Bytes& buf) : buf_(buf.data()), size_(buf.size()) {}
  Reader(const std::uint8_t* data, std::size_t size)
      : buf_(data), size_(size) {}

  std::uint8_t u8() {
    need(1);
    return buf_[pos_++];
  }
  std::uint16_t u16() { return get_le<std::uint16_t>(); }
  std::uint32_t u32() { return get_le<std::uint32_t>(); }
  std::uint64_t u64() { return get_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool boolean() { return u8() != 0; }

  double f64() {
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string str() {
    std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(buf_ + pos_), n);
    pos_ += n;
    return s;
  }

  Bytes blob() {
    std::uint32_t n = u32();
    need(n);
    Bytes b(buf_ + pos_, buf_ + pos_ + n);
    pos_ += n;
    return b;
  }

  bool done() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

  /// Throws unless the whole buffer was consumed; call at the end of a
  /// message decode to catch trailing-garbage bugs.
  void expect_done() const {
    if (!done()) throw SerdeError("trailing bytes after decode");
  }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) throw SerdeError("buffer underflow");
  }
  template <class T>
  T get_le() {
    need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(buf_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  const std::uint8_t* buf_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Encode a vector with a u32 count prefix using a per-element encoder.
template <class T, class EncodeFn>
void encode_vec(Writer& w, const std::vector<T>& v, EncodeFn&& enc) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const T& e : v) enc(w, e);
}

/// Decode a vector written by encode_vec.  The element decoder returns T.
template <class T, class DecodeFn>
std::vector<T> decode_vec(Reader& r, DecodeFn&& dec) {
  std::uint32_t n = r.u32();
  // Guard against absurd counts from corrupt input before reserving.
  if (n > r.remaining()) throw SerdeError("vector count exceeds buffer");
  std::vector<T> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(dec(r));
  return v;
}

}  // namespace qrdtm
