#include "quorum/quorum.h"

#include <algorithm>

#include "common/check.h"

namespace qrdtm::quorum {

bool intersects(const std::vector<NodeId>& a, const std::vector<NodeId>& b) {
  for (NodeId x : a) {
    if (std::find(b.begin(), b.end(), x) != b.end()) return true;
  }
  return false;
}

// ---------------------------------------------------------------- tree

TreeQuorumProvider::TreeQuorumProvider(Config cfg) : cfg_(cfg) {
  QRDTM_CHECK(cfg_.num_nodes >= 1);
  QRDTM_CHECK(cfg_.degree >= 2);
  dead_.assign(cfg_.num_nodes, false);
  // Height of the complete d-ary tree holding num_nodes nodes.
  std::uint32_t h = 0;
  std::uint64_t level_start = 0, level_size = 1;
  while (level_start + level_size < cfg_.num_nodes) {
    level_start += level_size;
    level_size *= cfg_.degree;
    ++h;
  }
  height_ = h;
  QRDTM_CHECK_MSG(cfg_.read_level <= height_,
                  "read_level deeper than the tree");
}

std::vector<NodeId> TreeQuorumProvider::children(NodeId v) const {
  std::vector<NodeId> out;
  out.reserve(cfg_.degree);
  for (std::uint32_t i = 1; i <= cfg_.degree; ++i) {
    std::uint64_t c = static_cast<std::uint64_t>(v) * cfg_.degree + i;
    if (c < cfg_.num_nodes) out.push_back(static_cast<NodeId>(c));
  }
  return out;
}

namespace {
std::uint64_t next_salt(std::uint64_t salt, NodeId v) {
  return salt * 6364136223846793005ULL + v + 1442695040888963407ULL;
}
}  // namespace

void TreeQuorumProvider::read_rec(NodeId v, std::uint32_t level,
                                  std::uint64_t salt,
                                  std::vector<NodeId>& out) const {
  auto kids = children(v);
  if (level == 0 || kids.empty()) {
    if (alive(v)) {
      out.push_back(v);
      return;
    }
    // Classic substitution: a dead read-quorum member is replaced by a
    // majority of its children's read quorums.
    if (kids.empty()) {
      throw QuorumUnavailable("dead leaf cannot be substituted");
    }
    level = 1;  // fall through to take a majority of children
  }

  const std::size_t m = kids.size() / 2 + 1;
  std::size_t got = 0;
  const std::size_t start = salt % kids.size();
  for (std::size_t i = 0; i < kids.size() && got < m; ++i) {
    NodeId c = kids[(start + i) % kids.size()];
    std::vector<NodeId> sub;
    try {
      read_rec(c, level - 1, next_salt(salt, c), sub);
    } catch (const QuorumUnavailable&) {
      continue;
    }
    out.insert(out.end(), sub.begin(), sub.end());
    ++got;
  }
  if (got < m) {
    throw QuorumUnavailable("cannot form read majority at node " +
                            std::to_string(v));
  }
}

void TreeQuorumProvider::write_rec(NodeId v, std::uint64_t salt,
                                   std::vector<NodeId>& out) const {
  if (!alive(v)) {
    throw QuorumUnavailable("write quorum member " + std::to_string(v) +
                            " is dead");
  }
  out.push_back(v);
  auto kids = children(v);
  if (kids.empty()) return;

  const std::size_t m = kids.size() / 2 + 1;
  std::size_t got = 0;
  const std::size_t start = salt % kids.size();
  for (std::size_t i = 0; i < kids.size() && got < m; ++i) {
    NodeId c = kids[(start + i) % kids.size()];
    std::vector<NodeId> sub;
    try {
      write_rec(c, next_salt(salt, c), sub);
    } catch (const QuorumUnavailable&) {
      continue;
    }
    out.insert(out.end(), sub.begin(), sub.end());
    ++got;
  }
  if (got < m) {
    throw QuorumUnavailable("cannot form write majority under node " +
                            std::to_string(v));
  }
}

std::vector<NodeId> TreeQuorumProvider::cohort_read_quorum(
    NodeId node, std::uint32_t) const {
  std::vector<NodeId> out;
  std::uint64_t salt = cfg_.same_for_all ? 0 : node + 1;
  read_rec(0, cfg_.read_level, salt, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<NodeId> TreeQuorumProvider::cohort_write_quorum(
    NodeId node, std::uint32_t) const {
  std::vector<NodeId> out;
  std::uint64_t salt = cfg_.same_for_all ? 0 : node + 1;
  write_rec(0, salt, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void TreeQuorumProvider::on_failure(NodeId dead) {
  QRDTM_CHECK(dead < dead_.size());
  dead_[dead] = true;
  bump_generation();
}

void TreeQuorumProvider::on_recovery(NodeId node) {
  QRDTM_CHECK(node < dead_.size());
  if (dead_[node]) {
    dead_[node] = false;
    bump_generation();
  }
}

// ---------------------------------------------------------------- majority

MajorityQuorumProvider::MajorityQuorumProvider(std::uint32_t num_nodes,
                                               bool same_for_all)
    : n_(num_nodes), same_for_all_(same_for_all) {
  QRDTM_CHECK(n_ >= 1);
  dead_.assign(n_, false);
}

std::vector<NodeId> MajorityQuorumProvider::pick(NodeId node,
                                                 std::size_t count) const {
  std::vector<NodeId> live;
  live.reserve(n_);
  for (NodeId i = 0; i < n_; ++i) {
    if (!dead_[i]) live.push_back(i);
  }
  if (live.size() < count) {
    throw QuorumUnavailable("not enough live nodes for a majority");
  }
  std::vector<NodeId> out;
  out.reserve(count);
  std::size_t start = same_for_all_ ? 0 : node % live.size();
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(live[(start + i) % live.size()]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> MajorityQuorumProvider::cohort_read_quorum(
    NodeId node, std::uint32_t) const {
  return pick(node, n_ / 2 + 1);
}

std::vector<NodeId> MajorityQuorumProvider::cohort_write_quorum(
    NodeId node, std::uint32_t) const {
  return pick(node, n_ / 2 + 1);
}

void MajorityQuorumProvider::on_failure(NodeId dead) {
  QRDTM_CHECK(dead < dead_.size());
  dead_[dead] = true;
  bump_generation();
}

void MajorityQuorumProvider::on_recovery(NodeId node) {
  QRDTM_CHECK(node < dead_.size());
  if (dead_[node]) {
    dead_[node] = false;
    bump_generation();
  }
}

// ---------------------------------------------------------------- flat/fig10

FlatFailureAwareProvider::FlatFailureAwareProvider(std::uint32_t num_nodes)
    : n_(num_nodes) {
  QRDTM_CHECK(n_ >= 1);
  dead_.assign(n_, false);
}

std::vector<NodeId> FlatFailureAwareProvider::cohort_read_quorum(
    NodeId node, std::uint32_t) const {
  std::vector<NodeId> live;
  live.reserve(n_);
  for (NodeId i = 0; i < n_; ++i) {
    if (!dead_[i]) live.push_back(i);
  }
  const std::size_t want = failures_ + 1;
  if (live.size() < want) {
    throw QuorumUnavailable("fewer live nodes than failures+1");
  }
  // Paper §VI-D: "initially, a read quorum consisting of a single node is
  // assigned to all the nodes" -- the same node, which makes it a service
  // hotspot.  Once failures grow the quorum, assignments rotate per client
  // node and "the workload is balanced across the read quorum nodes".
  std::vector<NodeId> out;
  out.reserve(want);
  const std::size_t start = failures_ == 0 ? 0 : node % live.size();
  for (std::size_t i = 0; i < want; ++i) {
    out.push_back(live[(start + i) % live.size()]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> FlatFailureAwareProvider::cohort_write_quorum(
    NodeId, std::uint32_t) const {
  std::vector<NodeId> live;
  live.reserve(n_);
  for (NodeId i = 0; i < n_; ++i) {
    if (!dead_[i]) live.push_back(i);
  }
  if (live.empty()) throw QuorumUnavailable("all nodes dead");
  return live;
}

void FlatFailureAwareProvider::on_failure(NodeId dead) {
  QRDTM_CHECK(dead < dead_.size());
  if (!dead_[dead]) {
    dead_[dead] = true;
    ++failures_;
    bump_generation();
  }
}

void FlatFailureAwareProvider::on_recovery(NodeId node) {
  QRDTM_CHECK(node < dead_.size());
  if (dead_[node]) {
    dead_[node] = false;
    QRDTM_CHECK(failures_ > 0);
    --failures_;
    bump_generation();
  }
}

// ---------------------------------------------------------------- sharded

ShardedQuorumProvider::ShardedQuorumProvider(Config cfg)
    : cfg_(cfg), map_(cfg.num_shards) {
  QRDTM_CHECK(cfg_.num_shards >= 1);
  QRDTM_CHECK(cfg_.cohort_size >= 1);
  QRDTM_CHECK(cfg_.cohort_size <= cfg_.num_nodes);
  inner_.reserve(cfg_.num_shards);
  for (std::uint32_t c = 0; c < cfg_.num_shards; ++c) {
    if (cfg_.inner == Inner::kTree) {
      TreeQuorumProvider::Config tc;
      tc.num_nodes = cfg_.cohort_size;
      tc.degree = cfg_.tree_degree;
      tc.read_level = cfg_.tree_read_level;
      tc.same_for_all = cfg_.same_for_all;
      inner_.push_back(std::make_unique<TreeQuorumProvider>(tc));
    } else {
      inner_.push_back(std::make_unique<MajorityQuorumProvider>(
          cfg_.cohort_size, cfg_.same_for_all));
    }
  }
}

std::vector<NodeId> ShardedQuorumProvider::cohort_read_quorum(
    NodeId node, std::uint32_t cohort) const {
  QRDTM_CHECK(cohort < cfg_.num_shards);
  std::vector<NodeId> local =
      inner_[cohort]->cohort_read_quorum(local_salt(node, cohort), 0);
  for (NodeId& v : local) v = to_global(cohort, v);
  std::sort(local.begin(), local.end());
  return local;
}

std::vector<NodeId> ShardedQuorumProvider::cohort_write_quorum(
    NodeId node, std::uint32_t cohort) const {
  QRDTM_CHECK(cohort < cfg_.num_shards);
  std::vector<NodeId> local =
      inner_[cohort]->cohort_write_quorum(local_salt(node, cohort), 0);
  for (NodeId& v : local) v = to_global(cohort, v);
  std::sort(local.begin(), local.end());
  return local;
}

void ShardedQuorumProvider::on_failure(NodeId dead) {
  QRDTM_CHECK(dead < cfg_.num_nodes);
  for (std::uint32_t c = 0; c < cfg_.num_shards; ++c) {
    if (!member_of(dead, c)) continue;
    const NodeId local = static_cast<NodeId>(
        (dead + cfg_.num_nodes - cohort_start(c)) % cfg_.num_nodes);
    inner_[c]->on_failure(local);
  }
  bump_generation();
}

void ShardedQuorumProvider::on_recovery(NodeId node) {
  QRDTM_CHECK(node < cfg_.num_nodes);
  for (std::uint32_t c = 0; c < cfg_.num_shards; ++c) {
    if (!member_of(node, c)) continue;
    const NodeId local = static_cast<NodeId>(
        (node + cfg_.num_nodes - cohort_start(c)) % cfg_.num_nodes);
    inner_[c]->on_recovery(local);
  }
  bump_generation();
}

std::vector<std::uint32_t> ShardedQuorumProvider::node_cohorts(
    NodeId node) const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t c = 0; c < cfg_.num_shards; ++c) {
    if (member_of(node, c)) out.push_back(c);
  }
  return out;
}

}  // namespace qrdtm::quorum
