// Quorum providers for the QR replication protocol.
//
// QR's correctness rests on two properties (paper §II):
//   (Q1) every read quorum intersects every write quorum, and
//   (Q2) every pair of write quorums intersects.
// Q1 gives 1-copy equivalence on reads (some read-quorum member saw the last
// commit); Q2 serialises writers (the 2PC vote at the intersection node
// detects protected/newer objects).
//
// Since the sharded-cohort refactor both properties are *per cohort*: a
// deterministic CohortMap hashes every ObjectId to one of S shards, each
// shard owning its own quorum structure over a subset of nodes.  The classic
// fully-replicated providers are the degenerate single-cohort case (every
// object in cohort 0, every node a replica).
//
// Four providers are implemented:
//   * TreeQuorumProvider     -- Agrawal & El Abbadi's tree quorum protocol on
//     a logical ternary tree (the paper's configuration, Fig. 3).  A read
//     quorum is a majority of children at one level; a write quorum is a
//     majority of children at *every* level (rooted).
//   * MajorityQuorumProvider -- plain majorities, used for ablation.
//   * FlatFailureAwareProvider -- the Fig. 10 configuration: a read quorum of
//     (failures + 1) live nodes assigned round-robin per client node, with
//     the write quorum being all live nodes.
//   * ShardedQuorumProvider  -- S cohorts of `cohort_size` consecutive nodes
//     (mod n), each running an inner tree or majority provider over its
//     members; objects hash to cohorts via CohortMap.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/message.h"
#include "store/object.h"

namespace qrdtm::quorum {

using net::NodeId;

/// Thrown when no quorum can be formed from the live nodes.
class QuorumUnavailable : public std::runtime_error {
 public:
  explicit QuorumUnavailable(const std::string& what)
      : std::runtime_error(what) {}
};

/// Deterministic object -> shard map: a splitmix64 finalizer over the id,
/// reduced mod S.  Pure function of (id, S), so every node agrees without
/// coordination and the map survives membership changes unchanged.
class CohortMap {
 public:
  explicit CohortMap(std::uint32_t num_shards) : num_shards_(num_shards) {}

  std::uint32_t num_shards() const { return num_shards_; }

  std::uint32_t shard_of(store::ObjectId id) const {
    return static_cast<std::uint32_t>(mix(id) % num_shards_);
  }

  /// splitmix64 finalizer: avalanches sequential ids (seed_new_object hands
  /// out 1,2,3,...) so shard populations stay balanced.
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

 private:
  std::uint32_t num_shards_;
};

class QuorumProvider {
 public:
  virtual ~QuorumProvider() = default;

  /// The read quorum designated to transactions running on `node` for
  /// objects in `cohort`.  Single-cohort providers ignore the cohort.
  virtual std::vector<NodeId> cohort_read_quorum(NodeId node,
                                                 std::uint32_t cohort)
      const = 0;

  /// The write quorum designated to transactions running on `node` for
  /// objects in `cohort`.
  virtual std::vector<NodeId> cohort_write_quorum(NodeId node,
                                                  std::uint32_t cohort)
      const = 0;

  /// Inform the provider of a fail-stop so later quorums avoid the node.
  virtual void on_failure(NodeId dead) = 0;

  /// Re-admit a previously failed node.  Callers must only invoke this once
  /// the node has caught up (Cluster::recover_node's anti-entropy pull):
  /// re-admitting a stale replica would let a read quorum observe versions
  /// older than the last commit, breaking the Q1 argument.  No-op for a node
  /// that was never reported failed.
  virtual void on_recovery(NodeId node) = 0;

  /// Number of quorum cohorts (shards).  1 = classic full replication.
  virtual std::uint32_t num_cohorts() const { return 1; }

  /// The cohort an object's replicas live in.
  virtual std::uint32_t cohort_of(store::ObjectId) const { return 0; }

  /// Whether `node` holds a replica of `id` (i.e. is a member of the
  /// object's cohort).  Fully-replicated providers replicate everywhere.
  virtual bool replicates(NodeId, store::ObjectId) const { return true; }

  /// The cohorts `node` is a replica member of, ascending.
  virtual std::vector<std::uint32_t> node_cohorts(NodeId) const {
    return {0};
  }

  /// Object-addressed convenience wrappers over the cohort primitives.
  std::vector<NodeId> read_quorum(NodeId node, store::ObjectId id) const {
    return cohort_read_quorum(node, cohort_of(id));
  }
  std::vector<NodeId> write_quorum(NodeId node, store::ObjectId id) const {
    return cohort_write_quorum(node, cohort_of(id));
  }

  /// Legacy single-cohort signatures: cohort 0.  Exact pre-shard behaviour
  /// for the classic providers; kept for tests and single-cohort callers.
  std::vector<NodeId> read_quorum(NodeId node) const {
    return cohort_read_quorum(node, 0);
  }
  std::vector<NodeId> write_quorum(NodeId node) const {
    return cohort_write_quorum(node, 0);
  }

  /// Monotone counter advanced on every membership change.  Quorums are a
  /// pure function of the live set, so clients may cache a computed quorum
  /// for as long as generation() holds still (TxnRuntime does, keyed on
  /// (generation, cohort)).
  std::uint64_t generation() const { return generation_; }

 protected:
  void bump_generation() { ++generation_; }

 private:
  std::uint64_t generation_ = 0;
};

/// Logical complete d-ary tree over nodes 0..n-1 (node 0 = root, children of
/// i are d*i+1 .. d*i+d).
class TreeQuorumProvider final : public QuorumProvider {
 public:
  struct Config {
    std::uint32_t num_nodes = 13;
    std::uint32_t degree = 3;
    /// Tree level whose members form read quorums (0 = root only).  The
    /// paper's Fig. 3 example uses level 1 (majority of the root's
    /// children).
    std::uint32_t read_level = 1;
    /// If true every node gets the same quorums (the paper's experimental
    /// setting); otherwise the majority choices rotate with the node id to
    /// spread load.
    bool same_for_all = true;
  };

  explicit TreeQuorumProvider(Config cfg);

  std::vector<NodeId> cohort_read_quorum(NodeId node,
                                         std::uint32_t cohort) const override;
  std::vector<NodeId> cohort_write_quorum(NodeId node,
                                          std::uint32_t cohort) const override;
  void on_failure(NodeId dead) override;
  void on_recovery(NodeId node) override;

  std::uint32_t height() const { return height_; }

 private:
  std::vector<NodeId> children(NodeId v) const;
  bool alive(NodeId v) const { return !dead_[v]; }

  /// Collect a read quorum for the subtree at v: either descend to `level`
  /// below, or fall back on deeper levels when members are dead.
  void read_rec(NodeId v, std::uint32_t level, std::uint64_t salt,
                std::vector<NodeId>& out) const;

  /// Collect a rooted write quorum for the subtree at v.
  void write_rec(NodeId v, std::uint64_t salt, std::vector<NodeId>& out) const;

  Config cfg_;
  std::uint32_t height_;
  std::vector<bool> dead_;
};

/// Simple majority quorums: both read and write quorums are any
/// floor(n/2)+1 live nodes; selection rotates with the node id.
class MajorityQuorumProvider final : public QuorumProvider {
 public:
  MajorityQuorumProvider(std::uint32_t num_nodes, bool same_for_all = true);

  std::vector<NodeId> cohort_read_quorum(NodeId node,
                                         std::uint32_t cohort) const override;
  std::vector<NodeId> cohort_write_quorum(NodeId node,
                                          std::uint32_t cohort) const override;
  void on_failure(NodeId dead) override;
  void on_recovery(NodeId node) override;

 private:
  std::vector<NodeId> pick(NodeId node, std::size_t count) const;

  std::uint32_t n_;
  bool same_for_all_;
  std::vector<bool> dead_;
};

/// Fig. 10 policy: |read quorum| = failures+1 live nodes (round-robin per
/// client node), write quorum = all live nodes.  Intersection is immediate
/// since every read quorum is a subset of the write quorum.
class FlatFailureAwareProvider final : public QuorumProvider {
 public:
  explicit FlatFailureAwareProvider(std::uint32_t num_nodes);

  std::vector<NodeId> cohort_read_quorum(NodeId node,
                                         std::uint32_t cohort) const override;
  std::vector<NodeId> cohort_write_quorum(NodeId node,
                                          std::uint32_t cohort) const override;
  void on_failure(NodeId dead) override;
  void on_recovery(NodeId node) override;

  std::uint32_t failures() const { return failures_; }

 private:
  std::uint32_t n_;
  std::uint32_t failures_ = 0;
  std::vector<bool> dead_;
};

/// Sharded partial replication: S cohorts, cohort c owning the
/// `cohort_size` consecutive nodes (mod n) starting at c*n/S, each cohort
/// running its own inner tree or majority provider over its members.  An
/// object's replicas are exactly its cohort's members; cross-shard
/// transactions span several cohorts' write quorums through the ordinary
/// 2PC path.  Q1/Q2 hold per cohort because the inner providers guarantee
/// them over the member set.
class ShardedQuorumProvider final : public QuorumProvider {
 public:
  enum class Inner { kTree, kMajority };

  struct Config {
    std::uint32_t num_nodes = 512;
    std::uint32_t num_shards = 16;
    /// Replicas per cohort.  13 mirrors the paper's cluster; cohorts may
    /// overlap when num_shards * cohort_size > num_nodes.
    std::uint32_t cohort_size = 13;
    Inner inner = Inner::kTree;
    std::uint32_t tree_degree = 3;
    std::uint32_t tree_read_level = 1;
    bool same_for_all = true;
  };

  explicit ShardedQuorumProvider(Config cfg);

  std::vector<NodeId> cohort_read_quorum(NodeId node,
                                         std::uint32_t cohort) const override;
  std::vector<NodeId> cohort_write_quorum(NodeId node,
                                          std::uint32_t cohort) const override;
  void on_failure(NodeId dead) override;
  void on_recovery(NodeId node) override;

  std::uint32_t num_cohorts() const override { return cfg_.num_shards; }
  std::uint32_t cohort_of(store::ObjectId id) const override {
    return map_.shard_of(id);
  }
  bool replicates(NodeId node, store::ObjectId id) const override {
    return member_of(node, map_.shard_of(id));
  }
  std::vector<std::uint32_t> node_cohorts(NodeId node) const override;

  /// First (global) node of cohort c's member window.
  NodeId cohort_start(std::uint32_t c) const {
    return static_cast<NodeId>(static_cast<std::uint64_t>(c) *
                               cfg_.num_nodes / cfg_.num_shards);
  }
  bool member_of(NodeId node, std::uint32_t c) const {
    const std::uint32_t off =
        (node + cfg_.num_nodes - cohort_start(c)) % cfg_.num_nodes;
    return off < cfg_.cohort_size;
  }
  const CohortMap& map() const { return map_; }
  const Config& config() const { return cfg_; }

 private:
  NodeId to_global(std::uint32_t c, NodeId local) const {
    return static_cast<NodeId>((cohort_start(c) + local) % cfg_.num_nodes);
  }
  /// The local id used to salt quorum rotation for `node` inside cohort c:
  /// its member offset when it is a member, a stable hash of the node id
  /// otherwise (non-members still get deterministic, spread-out quorums).
  NodeId local_salt(NodeId node, std::uint32_t c) const {
    const std::uint32_t off =
        (node + cfg_.num_nodes - cohort_start(c)) % cfg_.num_nodes;
    return static_cast<NodeId>(off < cfg_.cohort_size
                                   ? off
                                   : node % cfg_.cohort_size);
  }

  Config cfg_;
  CohortMap map_;
  std::vector<std::unique_ptr<QuorumProvider>> inner_;
};

/// Returns true iff the two node sets share at least one member.
bool intersects(const std::vector<NodeId>& a, const std::vector<NodeId>& b);

}  // namespace qrdtm::quorum
