// Quorum providers for the QR replication protocol.
//
// QR's correctness rests on two properties (paper §II):
//   (Q1) every read quorum intersects every write quorum, and
//   (Q2) every pair of write quorums intersects.
// Q1 gives 1-copy equivalence on reads (some read-quorum member saw the last
// commit); Q2 serialises writers (the 2PC vote at the intersection node
// detects protected/newer objects).
//
// Three providers are implemented:
//   * TreeQuorumProvider     -- Agrawal & El Abbadi's tree quorum protocol on
//     a logical ternary tree (the paper's configuration, Fig. 3).  A read
//     quorum is a majority of children at one level; a write quorum is a
//     majority of children at *every* level (rooted).
//   * MajorityQuorumProvider -- plain majorities, used for ablation.
//   * FlatFailureAwareProvider -- the Fig. 10 configuration: a read quorum of
//     (failures + 1) live nodes assigned round-robin per client node, with
//     the write quorum being all live nodes.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/message.h"

namespace qrdtm::quorum {

using net::NodeId;

/// Thrown when no quorum can be formed from the live nodes.
class QuorumUnavailable : public std::runtime_error {
 public:
  explicit QuorumUnavailable(const std::string& what)
      : std::runtime_error(what) {}
};

class QuorumProvider {
 public:
  virtual ~QuorumProvider() = default;

  /// The read quorum designated to transactions running on `node`.
  virtual std::vector<NodeId> read_quorum(NodeId node) const = 0;

  /// The write quorum designated to transactions running on `node`.
  virtual std::vector<NodeId> write_quorum(NodeId node) const = 0;

  /// Inform the provider of a fail-stop so later quorums avoid the node.
  virtual void on_failure(NodeId dead) = 0;

  /// Re-admit a previously failed node.  Callers must only invoke this once
  /// the node has caught up (Cluster::recover_node's anti-entropy pull):
  /// re-admitting a stale replica would let a read quorum observe versions
  /// older than the last commit, breaking the Q1 argument.  No-op for a node
  /// that was never reported failed.
  virtual void on_recovery(NodeId node) = 0;

  /// Monotone counter advanced on every membership change.  Quorums are a
  /// pure function of the live set, so clients may cache a computed quorum
  /// for as long as generation() holds still (TxnRuntime does).
  std::uint64_t generation() const { return generation_; }

 protected:
  void bump_generation() { ++generation_; }

 private:
  std::uint64_t generation_ = 0;
};

/// Logical complete d-ary tree over nodes 0..n-1 (node 0 = root, children of
/// i are d*i+1 .. d*i+d).
class TreeQuorumProvider final : public QuorumProvider {
 public:
  struct Config {
    std::uint32_t num_nodes = 13;
    std::uint32_t degree = 3;
    /// Tree level whose members form read quorums (0 = root only).  The
    /// paper's Fig. 3 example uses level 1 (majority of the root's
    /// children).
    std::uint32_t read_level = 1;
    /// If true every node gets the same quorums (the paper's experimental
    /// setting); otherwise the majority choices rotate with the node id to
    /// spread load.
    bool same_for_all = true;
  };

  explicit TreeQuorumProvider(Config cfg);

  std::vector<NodeId> read_quorum(NodeId node) const override;
  std::vector<NodeId> write_quorum(NodeId node) const override;
  void on_failure(NodeId dead) override;
  void on_recovery(NodeId node) override;

  std::uint32_t height() const { return height_; }

 private:
  std::vector<NodeId> children(NodeId v) const;
  bool alive(NodeId v) const { return !dead_[v]; }

  /// Collect a read quorum for the subtree at v: either descend to `level`
  /// below, or fall back on deeper levels when members are dead.
  void read_rec(NodeId v, std::uint32_t level, std::uint64_t salt,
                std::vector<NodeId>& out) const;

  /// Collect a rooted write quorum for the subtree at v.
  void write_rec(NodeId v, std::uint64_t salt, std::vector<NodeId>& out) const;

  Config cfg_;
  std::uint32_t height_;
  std::vector<bool> dead_;
};

/// Simple majority quorums: both read and write quorums are any
/// floor(n/2)+1 live nodes; selection rotates with the node id.
class MajorityQuorumProvider final : public QuorumProvider {
 public:
  MajorityQuorumProvider(std::uint32_t num_nodes, bool same_for_all = true);

  std::vector<NodeId> read_quorum(NodeId node) const override;
  std::vector<NodeId> write_quorum(NodeId node) const override;
  void on_failure(NodeId dead) override;
  void on_recovery(NodeId node) override;

 private:
  std::vector<NodeId> pick(NodeId node, std::size_t count) const;

  std::uint32_t n_;
  bool same_for_all_;
  std::vector<bool> dead_;
};

/// Fig. 10 policy: |read quorum| = failures+1 live nodes (round-robin per
/// client node), write quorum = all live nodes.  Intersection is immediate
/// since every read quorum is a subset of the write quorum.
class FlatFailureAwareProvider final : public QuorumProvider {
 public:
  explicit FlatFailureAwareProvider(std::uint32_t num_nodes);

  std::vector<NodeId> read_quorum(NodeId node) const override;
  std::vector<NodeId> write_quorum(NodeId node) const override;
  void on_failure(NodeId dead) override;
  void on_recovery(NodeId node) override;

  std::uint32_t failures() const { return failures_; }

 private:
  std::uint32_t n_;
  std::uint32_t failures_ = 0;
  std::vector<bool> dead_;
};

/// Returns true iff the two node sets share at least one member.
bool intersects(const std::vector<NodeId>& a, const std::vector<NodeId>& b);

}  // namespace qrdtm::quorum
