#include "core/batch.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "core/faultpoint.h"
#include "core/history.h"
#include "store/commit_log.h"

namespace qrdtm::core {

BatchPlanner::BatchPlanner(TxnRuntime& rt)
    : rt_(rt), order_rng_(rt.rng().split(0x5155)) {}

sim::Future<bool> BatchPlanner::submit(TxnBody body,
                                       std::uint32_t max_attempts) {
  Pending p{std::move(body), sim::Promise<bool>(rt_.simulator()), max_attempts,
            rt_.simulator().now()};
  sim::Future<bool> fut = p.done.future();
  pending_.push_back(std::move(p));
  if (!loop_active_) {
    loop_active_ = true;
    rt_.simulator().spawn(run_loop());
  }
  return fut;
}

bool BatchPlanner::lookup(ObjectId id, ObjectCopy* out) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) return false;
  const BatchObject& bo = it->second;
  *out = ObjectCopy{id, bo.base + bo.steps, bo.data};
  return true;
}

void BatchPlanner::admit(const ObjectCopy& fetched) {
  auto [it, inserted] = objects_.try_emplace(fetched.id);
  QRDTM_CHECK_MSG(inserted, "object admitted to the batch cache twice");
  BatchObject& bo = it->second;
  bo.base = fetched.version;
  bo.base_data = fetched.data;
  bo.data = fetched.data;
  bo.fetched = true;
  order_.push_back(fetched.id);
}

sim::Task<void> BatchPlanner::run_loop() {
  // Formation window: let concurrent submitters on this node join the first
  // batch.  Later batches form from whatever queued while the previous one
  // executed -- those members already waited at least a batch's worth.
  if (rt_.config().batch_window > 0) {
    co_await rt_.simulator().delay(rt_.config().batch_window);
  }
  while (!pending_.empty()) {
    const std::size_t n =
        std::min<std::size_t>(pending_.size(), rt_.config().batch_max_txns);
    std::vector<Pending> batch;
    batch.reserve(n);
    std::move(pending_.begin(),
              pending_.begin() + static_cast<std::ptrdiff_t>(n),
              std::back_inserter(batch));
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(n));
    // Seeded batch order (Fisher-Yates): deterministic per run, independent
    // of the runtime's workload RNG stream.
    for (std::size_t i = batch.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(order_rng_.below(i));
      std::swap(batch[i - 1], batch[j]);
    }
    co_await run_batch(std::move(batch));
  }
  loop_active_ = false;
}

void BatchPlanner::absorb(Txn& txn, std::vector<CommittedTxn>* records) {
  CommittedTxn rec;
  if (records != nullptr) {
    rec.txn = txn.scope_id_;
    rec.node = rt_.node();
    rec.reads.reserve(txn.readset_.size());
    // Collect-then-sort: recorded order is by object id regardless of the
    // sets' hash order.  qrdtm-lint: allow(det-unordered-iter)
    for (const auto& [id, oc] : txn.readset_) {
      rec.reads.push_back(HistoryRead{id, oc.copy.version});
    }
    std::sort(rec.reads.begin(), rec.reads.end(),
              [](const HistoryRead& a, const HistoryRead& b) {
                return a.id < b.id;
              });
  }
  // The write fold mutates the queue cache, so it must run in a fixed
  // order; collect-then-sort the ids first.
  std::vector<ObjectId> wids;
  wids.reserve(txn.writeset_.size());
  // qrdtm-lint: allow(det-unordered-iter)
  for (const auto& [id, oc] : txn.writeset_) wids.push_back(id);
  std::sort(wids.begin(), wids.end());
  for (ObjectId id : wids) {
    const OwnedCopy& oc = txn.writeset_.find(id)->second;
    auto [it, inserted] = objects_.try_emplace(id);
    BatchObject& bo = it->second;
    if (inserted) {
      // Created inside the batch: base version 0, nothing fetched.
      order_.push_back(id);
    }
    // Sequential speculation: the member acquired the copy at the current
    // speculative head.
    QRDTM_DCHECK(oc.copy.version == bo.base + bo.steps);
    if (records != nullptr) {
      rec.writes.push_back(HistoryWrite{id, oc.copy.version,
                                        oc.copy.version + 1, oc.copy.data});
    }
    ++bo.steps;
    bo.data = oc.copy.data;
    bo.written = true;
  }
  if (records != nullptr) records->push_back(std::move(rec));
}

void BatchPlanner::rollback_cache(const std::vector<ObjectId>& stale) {
  // An empty stale set means the round failed without a diagnosis (dead
  // member, syncing replica): invalidate everything.
  if (stale.empty()) {
    objects_.clear();
    order_.clear();
    return;
  }
  std::vector<ObjectId> keep;
  keep.reserve(order_.size());
  for (ObjectId id : order_) {
    BatchObject& bo = objects_[id];
    if (!bo.fetched || std::binary_search(stale.begin(), stale.end(), id)) {
      // Stale queues are re-fetched on next touch; created objects get
      // fresh ids when the bodies re-execute.
      objects_.erase(id);
      continue;
    }
    bo.steps = 0;
    bo.written = false;
    bo.data = bo.base_data;
    keep.push_back(id);
  }
  order_ = std::move(keep);
}

sim::Task<bool> BatchPlanner::commit_round(TxnId batch_id,
                                           std::vector<ObjectId>* stale) {
  BatchCommitRequest req;
  req.batch = batch_id;
  for (ObjectId id : order_) {
    const BatchObject& bo = objects_.find(id)->second;
    if (bo.written) {
      req.writeset.push_back(BatchWriteEntry{id, bo.base, bo.steps, bo.data});
    } else {
      req.readset.push_back(CommitReadEntry{id, bo.base});
    }
  }
  const sim::Tick commit_start = rt_.simulator().now();

  // Copy of the memoised quorum: the confirm must reach the same members
  // the request went to even if a failure regenerates the cache mid-round.
  // order_ holds every batch object (reads and writes), so the union spans
  // all touched cohorts.
  std::vector<net::NodeId> wq;
  try {
    wq = rt_.union_write_quorum(order_);
  } catch (AbortException&) {
    // Unformable quorum under a zombie coordinator: infrastructure
    // failure, re-fetch everything on the next round.
    stale->clear();
    co_return false;
  } catch (const quorum::QuorumUnavailable&) {
    // Live coordinator but too many members down mid-chaos: equally
    // transient, same recovery -- retry once membership heals.
    stale->clear();
    co_return false;
  }
  ++rt_.metrics().commit_requests;
  rt_.metrics().commit_messages += wq.size();
  Writer reqw(rt_.rpc_.acquire_buffer(msg::kBatchCommitRequest));
  req.encode_into(reqw);
  Bytes reqbytes = std::move(reqw).take();
  if (rt_.tracer_ != nullptr) rt_.rpc_.set_trace_context(batch_id);
  auto futures = rt_.rpc_.multicast(wq, msg::kBatchCommitRequest, reqbytes,
                                    rt_.config().rpc_timeout);
  if (rt_.tracer_ != nullptr) rt_.rpc_.set_trace_context(0);
  rt_.rpc_.release_buffer(std::move(reqbytes));

  bool all_commit = true;
  for (auto& f : futures) {
    net::RpcResult res = co_await f;
    rt_.report_rpc_outcome(res.from, res.ok);
    if (!res.ok) {
      all_commit = false;  // dead or unreachable member counts as abort
      continue;
    }
    BatchVoteResponse vote = BatchVoteResponse::decode(res.payload);
    rt_.rpc_.release_buffer(std::move(res.payload));
    if (!vote.commit) {
      all_commit = false;
      stale->insert(stale->end(), vote.stale.begin(), vote.stale.end());
    }
  }
  std::sort(stale->begin(), stale->end());
  stale->erase(std::unique(stale->begin(), stale->end()), stale->end());

  // With no writes nothing was protected and nothing is applied: the vote
  // alone validates the read bases, so the confirm round is skipped.
  const std::uint64_t nwrites = req.writeset.size();
  if (!req.writeset.empty()) {
    BatchCommitConfirm confirm;
    confirm.batch = batch_id;
    confirm.commit = all_commit;
    confirm.writeset = std::move(req.writeset);
    Writer cw(rt_.rpc_.acquire_buffer(msg::kBatchCommitConfirm));
    confirm.encode_into(cw);
    Bytes encoded = std::move(cw).take();

    // Durable decision record before any confirm leaves, same contract as
    // the per-transaction path (DESIGN.md §17); one decision covers the
    // whole batch.
    const bool log_decision = rt_.local_log_ != nullptr;
    if (log_decision) {
      const FaultAction at_decision =
          rt_.faults_ != nullptr
              ? rt_.faults_->fire(fp::kDecisionBeforeLog, rt_.node())
              : FaultAction::kNone;
      if (at_decision == FaultAction::kPanic) {
        // Crashed before the decision was durable: no confirm leaves and
        // the batch must not succeed -- members retry (and stall against
        // the dead node) while the prepared replicas presumed-abort.
        rt_.rpc_.release_buffer(std::move(encoded));
        stale->clear();
        co_return false;
      }
      if (at_decision != FaultAction::kSkip) {
        store::Decision d;
        d.epoch = rt_.rpc_.network().epoch(rt_.node());
        d.commit = all_commit;
        d.confirm_kind = msg::kBatchCommitConfirm;
        d.members.assign(wq.begin(), wq.end());
        d.payload = encoded;
        rt_.local_log_->append_decision(batch_id, std::move(d));
      }
    }

    rt_.metrics().commit_messages += wq.size();
    if (rt_.tracer_ != nullptr) rt_.rpc_.set_trace_context(batch_id);
    bool died_mid_broadcast = false;
    for (net::NodeId n : wq) {
      if (rt_.faults_ != nullptr &&
          rt_.faults_->fire(fp::kConfirmPartial, rt_.node()) ==
              FaultAction::kPanic) {
        died_mid_broadcast = true;
      }
      Bytes copy = rt_.rpc_.acquire_buffer(msg::kBatchCommitConfirm);
      copy.assign(encoded.begin(), encoded.end());
      rt_.rpc_.notify(n, msg::kBatchCommitConfirm, std::move(copy));
    }
    if (rt_.tracer_ != nullptr) rt_.rpc_.set_trace_context(0);
    rt_.rpc_.release_buffer(std::move(encoded));
    if (log_decision && !died_mid_broadcast) {
      rt_.local_log_->settle_decision(batch_id);
    }

    // One commit-settle per *batch*: the confirm-propagation charge is paid
    // once for the whole cohort, not once per member transaction.
    if (rt_.config().commit_settle > 0) {
      co_await rt_.simulator().delay(rt_.config().commit_settle);
    }
  }

  if (rt_.tracer_ != nullptr) {
    rt_.tracer_->span(TraceKind::kCommit2pc, rt_.node(), batch_id,
                      commit_start, rt_.simulator().now(), nwrites,
                      /*local=*/0);
  }
  co_return all_commit;
}

sim::Task<void> BatchPlanner::run_batch(std::vector<Pending> batch) {
  // A bounded member caps the whole batch's rounds; an unlimited member
  // (max_attempts 0) lifts the cap.
  std::uint32_t budget = 0;
  bool unlimited = false;
  for (const Pending& p : batch) {
    if (p.max_attempts == 0) unlimited = true;
    budget = std::max(budget, p.max_attempts);
  }

  const sim::Tick exec_start = rt_.simulator().now();
  for (const Pending& p : batch) {
    rt_.latency_.batch_wait.record(exec_start - p.enqueue_tick);
  }

  HistoryRecorder* rec = rt_.recorder_;
  std::vector<CommittedTxn> records;
  for (std::uint32_t attempt = 0;; ++attempt) {
    const TxnId batch_id = rt_.next_scope_id();
    records.clear();
    bool exec_ok = true;
    std::string exec_abort_reason;
    for (Pending& p : batch) {
      Txn txn(rt_, nullptr);
      txn.batch_ = this;
      try {
        co_await p.body(txn);
      } catch (AbortException& a) {
        // Infrastructure abort (unreachable quorum, step guard): no replica
        // state to diagnose, so the whole round restarts from fresh fetches.
        exec_ok = false;
        exec_abort_reason = a.reason;
      } catch (const quorum::QuorumUnavailable& e) {
        // Live member, quorum transiently unformable mid-chaos: same
        // restart-from-fresh-fetches treatment as an infrastructure abort.
        exec_ok = false;
        exec_abort_reason = e.what();
      }
      if (!exec_ok) break;
      absorb(txn, rec != nullptr ? &records : nullptr);
    }

    bool committed = false;
    std::vector<ObjectId> stale;
    if (exec_ok) {
      if (objects_.empty()) {
        // Nothing read or written by any member: local commit, no messages.
        rt_.metrics().local_commits += batch.size();
        committed = true;
      } else {
        committed = co_await commit_round(batch_id, &stale);
        if (!committed) ++rt_.metrics().vote_aborts;
      }
    }

    if (committed) {
      const sim::Tick now = rt_.simulator().now();
      rt_.metrics().commits += batch.size();
      ++rt_.metrics().batches_committed;
      rt_.latency_.batch_size.record(
          static_cast<sim::Tick>(batch.size()));
      for (Pending& p : batch) {
        rt_.latency_.commit_latency.record(now - p.enqueue_tick);
        p.done.set(true);
      }
      if (rec != nullptr) {
        for (CommittedTxn& r : records) {
          r.commit_tick = now;
          rec->record_commit(std::move(r));
        }
        rec->record_batch(now, rt_.node(), batch_id, batch.size());
      }
      if (rt_.tracer_ != nullptr) {
        rt_.tracer_->span(TraceKind::kBatch, rt_.node(), batch_id, exec_start,
                          now, batch.size(), attempt + 1);
        for (const Pending& p : batch) {
          rt_.tracer_->span(TraceKind::kTxn, rt_.node(), batch_id,
                            p.enqueue_tick, now, attempt + 1);
        }
      }
      objects_.clear();
      order_.clear();
      co_return;
    }

    // Speculation rollback: the round's speculative state is discarded and
    // only the stale queues are re-fetched on the next attempt.
    ++rt_.metrics().speculation_rollbacks;
    const sim::Tick abort_tick = rt_.simulator().now();
    if (rec != nullptr) {
      rec->record_abort(abort_tick, rt_.node(), batch_id,
                        exec_ok ? "batch speculation rollback"
                                : exec_abort_reason);
    }
    if (rt_.tracer_ != nullptr) {
      rt_.tracer_->instant(TraceKind::kAbort, rt_.node(), batch_id, abort_tick,
                           attempt + 1);
    }
    rollback_cache(exec_ok ? stale : std::vector<ObjectId>{});

    if (!unlimited && attempt + 1 >= budget) {
      for (Pending& p : batch) p.done.set(false);
      objects_.clear();
      order_.clear();
      co_return;
    }
    co_await rt_.backoff(attempt + 1, batch_id);
    rt_.latency_.retry_gap.record(rt_.simulator().now() - abort_tick);
  }
}

}  // namespace qrdtm::core
