// QR-family wire messages (read / commit-request / confirm) and their serde.
//
// ReadRequest doubles as the Rqv validation carrier: under QR-CN / QR-CHK it
// ships the requesting transaction's entire data-set (read-set + write-set,
// including every ancestor's) so the replica can validate incrementally
// before serving the object (paper Alg. 1, 2, 4).  Under flat QR the
// data-set is empty and replicas skip validation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/serde.h"
#include "core/types.h"
#include "net/message.h"

namespace qrdtm::core {

namespace msg {
// Message kinds (0x01xx = QR family).
constexpr net::MsgKind kRead = 0x0101;
constexpr net::MsgKind kCommitRequest = 0x0102;
constexpr net::MsgKind kCommitConfirm = 0x0103;  // one-way, commit or abort
constexpr net::MsgKind kSyncPull = 0x0104;       // recovery anti-entropy
constexpr net::MsgKind kBatchCommitRequest = 0x0105;  // QR-Q: batch 2PC vote
constexpr net::MsgKind kBatchCommitConfirm = 0x0106;  // QR-Q: one-way confirm
constexpr net::MsgKind kTxnStatusRequest = 0x0107;    // termination: one-way
constexpr net::MsgKind kTxnStatusResponse = 0x0108;   // termination: one-way
}  // namespace msg

/// One validated object in the requester's data-set.
struct DataSetEntry {
  ObjectId id = 0;
  Version version = 0;
  /// QR-CN: the scope (root or CT) that owns the copy, and its depth in the
  /// nesting hierarchy (0 = root).  The replica reports the *shallowest*
  /// invalid owner as abortClosed (paper Alg. 1 line 9-10).
  TxnId owner = 0;
  std::uint32_t owner_depth = 0;
  /// QR-CHK: checkpoint epoch current when the copy was fetched.  The
  /// replica reports the *minimum* invalid epoch as abortChk (Alg. 4).
  ChkEpoch owner_chk = 0;
};

struct ReadRequest {
  TxnId root = 0;  // root transaction id (PR/PW bookkeeping key)
  NestingMode mode = NestingMode::kFlat;
  ObjectId object = 0;
  bool for_write = false;
  std::vector<DataSetEntry> dataset;  // empty under flat QR

  Bytes encode() const;
  void encode_into(Writer& w) const;
  static ReadRequest decode(const Bytes& b);
};

/// Encode a ReadRequest straight from its fields, with the data-set borrowed
/// rather than copied into a ReadRequest struct first.  This is the hot read
/// path: under QR-CN / QR-CHK every remote read ships the root's full
/// data-set (Rqv), so avoiding the intermediate vector copy matters.
void encode_read_request(Writer& w, TxnId root, NestingMode mode,
                         ObjectId object, bool for_write,
                         const std::vector<DataSetEntry>& dataset);

enum class ReadStatus : std::uint8_t {
  kOk = 0,       // copy attached (version may be 0 if replica never saw it)
  kMissing = 1,  // replica has no copy (stale replica or unknown object)
  kAbort = 2     // Rqv validation failed; abort info attached
};

struct ReadResponse {
  ReadStatus status = ReadStatus::kMissing;
  Version version = 0;
  Bytes data;
  // Abort info (status == kAbort):
  TxnId abort_scope = 0;
  std::uint32_t abort_depth = 0;
  ChkEpoch abort_chk = 0;

  Bytes encode() const;
  void encode_into(Writer& w) const;
  static ReadResponse decode(const Bytes& b);
};

/// One read-set entry validated at commit time.
struct CommitReadEntry {
  ObjectId id = 0;
  Version version = 0;
};

/// One write-set entry: `base` is the version the writer read; the committed
/// version becomes base+1 (globally fresh by Q1 -- see qr_server.cpp).
struct CommitWriteEntry {
  ObjectId id = 0;
  Version base = 0;
  Bytes data;
};

struct CommitRequest {
  TxnId txn = 0;
  std::vector<CommitReadEntry> readset;
  std::vector<CommitWriteEntry> writeset;

  Bytes encode() const;
  void encode_into(Writer& w) const;
  static CommitRequest decode(const Bytes& b);
};

struct VoteResponse {
  bool commit = false;

  Bytes encode() const;
  void encode_into(Writer& w) const;
  static VoteResponse decode(const Bytes& b);
};

/// One committed copy shipped during recovery catch-up.
struct SyncEntry {
  ObjectId id = 0;
  Version version = 0;
  Bytes data;
};

/// Per-object bound in a SyncPullRequest: "I already hold `id` at `version`".
struct SyncBound {
  ObjectId id = 0;
  Version version = 0;
};

/// Recovery anti-entropy pull.  `have` lists the puller's post-log-replay
/// versions, ids ascending, so the server ships only strictly-newer copies
/// (the version-bounded delta).  An empty `have` requests the full store --
/// the pre-commit-log behaviour, still used when durable logging is off or
/// the local log was unusable.  (An empty *payload* on the wire is treated
/// the same, for compatibility with the PR-5 request format.)
struct SyncPullRequest {
  std::vector<SyncBound> have;

  Bytes encode() const;
  void encode_into(Writer& w) const;
  static SyncPullRequest decode(const Bytes& b);
};

/// Reply to a kSyncPull: the serving replica's committed copies that are
/// strictly newer than the requester's bounds (all of them when no bounds
/// were given), ids ascending.  The recovering node installs each entry
/// through ReplicaStore::apply, which keeps only strictly-newer copies, so
/// merging pulls from a whole read quorum is order-independent.  `ok` is
/// false while the *server* is itself still syncing -- a catching-up replica
/// must not seed another one.  `total_objects` is the size of the server's
/// committed store, letting the puller report delta-vs-full metrics.
struct SyncPullResponse {
  bool ok = false;
  std::uint64_t total_objects = 0;
  std::vector<SyncEntry> entries;

  Bytes encode() const;
  void encode_into(Writer& w) const;
  static SyncPullResponse decode(const Bytes& b);
};

/// One collapsed per-object queue in a QR-Q batch commit: the batch read
/// `base` through a read quorum and speculatively absorbed `steps` writes,
/// of which `data` is the final value.  The replica validates `base` like a
/// CommitWriteEntry and applies version base+steps at confirm -- one wire
/// entry and one protection per object regardless of how many transactions
/// in the batch wrote it.
struct BatchWriteEntry {
  ObjectId id = 0;
  Version base = 0;
  std::uint32_t steps = 0;  // speculative writes absorbed (>= 1)
  Bytes data;               // value after the last write in queue order
};

/// QR-Q batch 2PC vote request: one protected write-set push for the whole
/// batch.  `readset` holds objects the batch only read (one entry per
/// object, at the quorum-fetched base version); written objects are
/// validated through their BatchWriteEntry base.
struct BatchCommitRequest {
  TxnId batch = 0;  // batch id (protection/bookkeeping key, like a txn id)
  std::vector<CommitReadEntry> readset;
  std::vector<BatchWriteEntry> writeset;

  Bytes encode() const;
  void encode_into(Writer& w) const;
  static BatchCommitRequest decode(const Bytes& b);
};

/// Reply to a batch vote.  On an abort vote `stale` names every entry that
/// failed validation on this replica, so the coordinator invalidates (and
/// re-fetches) only those queues before re-speculating -- the targeted
/// rollback that keeps QR-Q's retry cost near zero under contention.
struct BatchVoteResponse {
  bool commit = false;
  std::vector<ObjectId> stale;

  Bytes encode() const;
  void encode_into(Writer& w) const;
  static BatchVoteResponse decode(const Bytes& b);
};

/// One-way confirm for a batch commit round; applies base+steps per object
/// (commit) or just unprotects (abort).
struct BatchCommitConfirm {
  TxnId batch = 0;
  bool commit = false;
  std::vector<BatchWriteEntry> writeset;

  Bytes encode() const;
  void encode_into(Writer& w) const;
  static BatchCommitConfirm decode(const Bytes& b);
};

/// What a peer knows about a transaction's 2PC outcome, in answer to a
/// TxnStatusRequest during cooperative termination (DESIGN.md §17).
enum class TxnStatus : std::uint8_t {
  kUnknown = 0,    // no decision record, no prepare: never heard of it (or
                   // already settled and garbage-collected)
  kCommitted = 1,  // applied it, or holds a commit decision / confirm record
  kAborted = 2,    // holds an abort decision
  kPrepared = 3    // voted yes and still holds the prepared protection
};

/// One-way in-doubt query sent by a replica whose prepared protection
/// outlived its lease: "what happened to txn?".  Sent to the coordinator and
/// the write-quorum peers; answered with a TxnStatusResponse notify (both
/// directions are one-way so a dead peer just never answers).
struct TxnStatusRequest {
  TxnId txn = 0;

  Bytes encode() const;
  void encode_into(Writer& w) const;
  static TxnStatusRequest decode(const Bytes& b);
};

/// One-way answer to a TxnStatusRequest.  `epoch` is the responder's current
/// liveness epoch: the inquirer compares a coordinator's epoch against the
/// epoch it recorded at vote time to distinguish "same incarnation, still
/// deciding" (wait) from "restarted with no decision on disk" (the
/// presumed-abort precondition).
struct TxnStatusResponse {
  TxnId txn = 0;
  TxnStatus status = TxnStatus::kUnknown;
  std::uint32_t epoch = 0;

  Bytes encode() const;
  void encode_into(Writer& w) const;
  static TxnStatusResponse decode(const Bytes& b);
};

/// One-way confirm broadcast to the write quorum after gathering votes.
struct CommitConfirm {
  TxnId txn = 0;
  bool commit = false;  // false = abort: just unprotect + drop bookkeeping
  std::vector<CommitWriteEntry> writeset;  // applied as version base+1

  Bytes encode() const;
  void encode_into(Writer& w) const;
  static CommitConfirm decode(const Bytes& b);
};

}  // namespace qrdtm::core
