// qrdtm-trace: deterministic observability for the simulated protocols.
//
// Two complementary facilities, both stamped exclusively with simulator
// ticks (never the host clock -- the det-wall-clock rule applies here too):
//
//   * LatencyHistogram / LatencyMetrics -- fixed-bucket log-scale
//     histograms for the latency distributions the paper's argument is
//     about (commit latency, read RTT, backoff waits, abort-to-retry
//     gaps).  Recording is branch-light integer math into a fixed
//     std::array: no allocation ever, no sort on query, so the histograms
//     can live on the per-event hot path without perturbing the
//     AllocRegression tests.  Percentiles are resolved by a cumulative
//     scan over the buckets (O(buckets), query-time only).
//
//   * TraceRecorder -- structured spans (one per root transaction, with
//     child spans for CT scopes, checkpoint create/rollback, read-quorum
//     fetches, 2PC rounds, and backoff waits) plus instant events for
//     replica-side handling.  Attached via Cluster::set_trace_recorder the
//     same way HistoryRecorder is; a null recorder costs one pointer test
//     per site, so runs with tracing off stay bit-identical to the
//     determinism goldens.  Export is Chrome trace-event JSON ("X"
//     complete events), loadable directly in Perfetto (ui.perfetto.dev).
//
// The histogram bucket scheme is HDR-style: values below 2^kSubBits are
// exact; above that, each power-of-two octave is split into 2^kSubBits
// linear sub-buckets, bounding the relative error of any reported
// percentile by 2^-kSubBits (6.25 % at kSubBits = 4).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "core/types.h"
#include "net/message.h"
#include "sim/simulator.h"

namespace qrdtm::core {

class LatencyHistogram {
 public:
  static constexpr std::uint32_t kSubBits = 4;
  static constexpr std::uint32_t kSub = 1u << kSubBits;  // sub-buckets/octave
  static constexpr std::uint32_t kOctaves = 64 - kSubBits;
  static constexpr std::uint32_t kBuckets = kSub + kOctaves * kSub;

  /// O(1), allocation-free; safe on the per-event hot path.
  void record(sim::Tick v) {
    ++counts_[bucket_index(v)];
    ++count_;
    sum_ += v;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  std::uint64_t count() const { return count_; }
  sim::Tick min() const { return count_ ? min_ : 0; }
  sim::Tick max() const { return count_ ? max_ : 0; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  /// Value at percentile `p` in [0, 100]: the upper edge of the bucket
  /// holding the rank-p sample, clamped to the exact observed [min, max].
  /// 0 when empty.
  sim::Tick percentile(double p) const;

  /// Pointwise sum (merging per-node histograms into a cluster view).
  void merge(const LatencyHistogram& other);

  /// Exact-state equality; the determinism tests assert two same-seed runs
  /// produce identical histograms.
  bool operator==(const LatencyHistogram&) const = default;

  /// Bucket index for `v` (exposed for the bucket-boundary unit tests).
  static std::uint32_t bucket_index(sim::Tick v) {
    if (v < kSub) return static_cast<std::uint32_t>(v);
    const std::uint32_t o =
        static_cast<std::uint32_t>(std::bit_width(v)) - 1;  // v in [2^o, 2^o+1)
    const std::uint32_t sub =
        static_cast<std::uint32_t>(v >> (o - kSubBits)) & (kSub - 1);
    return kSub + (o - kSubBits) * kSub + sub;
  }

  /// Inclusive upper edge of bucket `idx` (the representative value
  /// percentile() reports).
  static sim::Tick bucket_upper(std::uint32_t idx) {
    if (idx < kSub) return idx;
    const std::uint32_t o = (idx - kSub) / kSub + kSubBits;
    const std::uint32_t sub = (idx - kSub) % kSub;
    const sim::Tick width = sim::Tick{1} << (o - kSubBits);
    return (sim::Tick{1} << o) + (sub + 1) * width - 1;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  sim::Tick min_ = ~sim::Tick{0};
  sim::Tick max_ = 0;
};

/// The distributions every runtime tracks (per node in the QR family, per
/// cluster in the baselines).  The two batch histograms are only populated
/// under kQueued; `batch_size` records transaction counts, not ticks (the
/// bucket scheme is unit-agnostic).
struct LatencyMetrics {
  LatencyHistogram commit_latency;  // root txn start -> commit done
  LatencyHistogram read_rtt;        // read-quorum fetch round trip
  LatencyHistogram backoff_wait;    // drawn root-retry backoff waits
  LatencyHistogram retry_gap;       // root abort -> next attempt starts
  LatencyHistogram batch_size;      // QR-Q: transactions per committed batch
  LatencyHistogram batch_wait;      // QR-Q: enqueue -> batch execution start

  void merge(const LatencyMetrics& o) {
    commit_latency.merge(o.commit_latency);
    read_rtt.merge(o.read_rtt);
    backoff_wait.merge(o.backoff_wait);
    retry_gap.merge(o.retry_gap);
    batch_size.merge(o.batch_size);
    batch_wait.merge(o.batch_wait);
  }

  bool operator==(const LatencyMetrics&) const = default;
};

/// Span / instant-event vocabulary.  Kinds carry their Perfetto name and
/// category; extra context rides in two generic u64 args (see arg-name
/// table in trace.cpp).
enum class TraceKind : std::uint8_t {
  kTxn = 0,      // whole root transaction (first attempt -> commit)
  kAttempt,      // one attempt of a root transaction
  kCtScope,      // QR-CN closed-nested scope execution
  kChkCreate,    // QR-CHK checkpoint creation (cost charge)
  kChkRollback,  // QR-CHK partial rollback (restore cost)
  kReadFetch,    // read-quorum fetch (multicast + gather)
  kCommit2pc,    // 2PC commit round (request + votes + confirm settle)
  kBackoff,      // randomized retry backoff wait (root or CT)
  kServerRead,   // instant: replica served/validated a read
  kServerVote,   // instant: replica voted on a commit request
  kAbort,        // instant: root abort decided
  kBatch,        // QR-Q batch: execution start -> commit (a0 = size,
                 // a1 = 2PC attempts)
};

struct TraceSpan {
  TraceKind kind = TraceKind::kTxn;
  net::NodeId node = 0;
  TxnId txn = 0;  // root transaction id (Perfetto thread lane)
  sim::Tick start = 0;
  sim::Tick end = 0;
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;

  bool operator==(const TraceSpan&) const = default;
};

struct TraceInstant {
  TraceKind kind = TraceKind::kServerRead;
  net::NodeId node = 0;
  TxnId txn = 0;
  sim::Tick at = 0;
  std::uint64_t a0 = 0;

  bool operator==(const TraceInstant&) const = default;
};

/// Append-only span sink for one simulation.  Attach with
/// Cluster::set_trace_recorder (or the baselines' set_trace_recorder)
/// before running; nullptr = tracing off (the default, and the
/// configuration the determinism goldens are recorded under).
class TraceRecorder {
 public:
  void span(TraceKind kind, net::NodeId node, TxnId txn, sim::Tick start,
            sim::Tick end, std::uint64_t a0 = 0, std::uint64_t a1 = 0) {
    spans_.push_back(TraceSpan{kind, node, txn, start, end, a0, a1});
  }

  void instant(TraceKind kind, net::NodeId node, TxnId txn, sim::Tick at,
               std::uint64_t a0 = 0) {
    instants_.push_back(TraceInstant{kind, node, txn, at, a0});
  }

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const std::vector<TraceInstant>& instants() const { return instants_; }
  bool empty() const { return spans_.empty() && instants_.empty(); }

  void clear() {
    spans_.clear();
    instants_.clear();
  }

  /// Chrome trace-event JSON (https://ui.perfetto.dev loads it as-is):
  /// pid = node, tid = root transaction, "X" complete events with
  /// microsecond timestamps, plus process_name metadata per node.
  std::string chrome_trace_json() const;

  /// Write chrome_trace_json() to `path`.  Returns false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;

 private:
  std::vector<TraceSpan> spans_;
  std::vector<TraceInstant> instants_;
};

}  // namespace qrdtm::core
