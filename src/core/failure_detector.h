// Timeout-based fail-stop detector.
//
// The paper's failure experiment assumes failures are known to the quorum
// policy ("with each failed node, the size of the read quorum increases by
// one").  This component closes the loop: transaction runtimes report every
// RPC outcome, and after `threshold` consecutive timeouts from one node the
// detector declares it suspected and informs the quorum provider, which
// routes subsequent quorums around it.
//
// A single successful reply resets the node's counter, so transient
// congestion (queueing near the RPC timeout) does not trip the detector
// unless it is persistent.  False suspicion of a live node is safe for
// consistency -- quorums merely stop using it -- but wastes capacity, so
// suspicion is rescindable: a successful reply from a suspected node
// (possible while in-flight requests still target it) clears the suspicion
// and fires the rescind callback so the quorum provider re-admits it.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <unordered_map>

#include "net/message.h"

namespace qrdtm::core {

class FailureDetector {
 public:
  using SuspectCallback = std::function<void(net::NodeId)>;

  /// `threshold` consecutive timeouts suspect a node; `on_suspect` fires
  /// once per suspect transition, `on_rescind` once per rescind transition
  /// (a node that flaps fires both repeatedly, once per flap).
  FailureDetector(std::uint32_t threshold, SuspectCallback on_suspect,
                  SuspectCallback on_rescind = {})
      : threshold_(threshold),
        on_suspect_(std::move(on_suspect)),
        on_rescind_(std::move(on_rescind)) {}

  void report_timeout(net::NodeId node) {
    if (suspected_.contains(node)) return;
    if (++consecutive_timeouts_[node] >= threshold_) {
      suspected_.insert(node);
      consecutive_timeouts_.erase(node);
      if (on_suspect_) on_suspect_(node);
    }
  }

  void report_success(net::NodeId node) {
    consecutive_timeouts_.erase(node);
    if (suspected_.erase(node) > 0) {
      // The node answered: it was falsely suspected (its state is intact,
      // it never restarted), so re-admission needs no catch-up.
      if (on_rescind_) on_rescind_(node);
    }
  }

  /// Drop all detector state for `node` without firing callbacks.  Used by
  /// Cluster::recover_node, which drives provider re-admission itself once
  /// the catch-up pull completes.
  void forget(net::NodeId node) {
    consecutive_timeouts_.erase(node);
    suspected_.erase(node);
  }

  bool is_suspected(net::NodeId node) const {
    return suspected_.contains(node);
  }

  std::size_t suspected_count() const { return suspected_.size(); }

 private:
  std::uint32_t threshold_;
  SuspectCallback on_suspect_;
  SuspectCallback on_rescind_;
  std::unordered_map<net::NodeId, std::uint32_t> consecutive_timeouts_;
  std::set<net::NodeId> suspected_;
};

}  // namespace qrdtm::core
