#include "core/txn.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"
#include "core/backoff.h"
#include "core/batch.h"
#include "core/history.h"
#include "store/commit_log.h"

namespace qrdtm::core {

namespace {
constexpr std::uint32_t kDepthMax = std::numeric_limits<std::uint32_t>::max();
constexpr ChkEpoch kChkMax = std::numeric_limits<ChkEpoch>::max();
}  // namespace

// ------------------------------------------------------------------ Txn

Txn::Txn(TxnRuntime& rt, Txn* parent)
    : rt_(rt),
      parent_(parent),
      scope_id_(rt.next_scope_id()),
      depth_(parent ? parent->depth_ + 1 : 0),
      dataset_mark_(parent ? parent->root().dataset_cache_.size() : 0) {}

Rng& Txn::rng() { return rt_.rng(); }

Txn& Txn::root() {
  Txn* t = this;
  while (t->parent_ != nullptr) t = t->parent_;
  return *t;
}

const Txn& Txn::root() const {
  const Txn* t = this;
  while (t->parent_ != nullptr) t = t->parent_;
  return *t;
}

Txn::OpToken Txn::begin_op() {
  Txn& r = root();
  const std::uint64_t idx = r.op_seq_++;
  if (++r.ops_this_attempt_ > rt_.config().max_ops_per_attempt) {
    ++rt_.metrics().step_guard_trips;
    throw AbortException{AbortTarget::kRoot, r.scope_id_, 0, "step guard"};
  }
  const bool replay = idx < r.replay_until_;
  if (rt_.config().mode == NestingMode::kCheckpoint && !replay) {
    QRDTM_CHECK_MSG(r.op_log_.size() == idx,
                    "op log out of sync with op sequence");
    r.op_log_.emplace_back();
  }
  return OpToken{idx, replay};
}

bool Txn::in_fast_forward() const {
  const Txn& r = root();
  return r.op_seq_ < r.replay_until_;
}

void Txn::log_op(const OpToken& token, Bytes data, ObjectId created) {
  if (rt_.config().mode != NestingMode::kCheckpoint) return;
  Txn& r = root();
  QRDTM_CHECK(token.idx < r.op_log_.size());
  r.op_log_[token.idx] = OpRecord{std::move(data), created};
}

const OwnedCopy* Txn::find_local(ObjectId id, bool* from_writeset) const {
  for (const Txn* t = this; t != nullptr; t = t->parent_) {
    if (auto it = t->writeset_.find(id); it != t->writeset_.end()) {
      if (from_writeset) *from_writeset = true;
      return &it->second;
    }
    if (auto it = t->readset_.find(id); it != t->readset_.end()) {
      if (from_writeset) *from_writeset = false;
      return &it->second;
    }
  }
  return nullptr;
}

sim::Task<ObjectCopy> Txn::quorum_fetch(ObjectId id, bool for_write) {
  const RuntimeConfig& cfg = rt_.config();
  Txn& r = root();

  // Encode straight from the root's materialised data-set into a pooled
  // buffer: no ReadRequest struct, no per-fetch data-set rebuild.
  // Only the Rqv modes ship the data-set; flat QR and QR-Q validate at
  // commit time (per transaction and per batch respectively).
  static const std::vector<DataSetEntry> kNoDataSet;
  const std::vector<DataSetEntry>& ds =
      cfg.mode == NestingMode::kClosed || cfg.mode == NestingMode::kCheckpoint
          ? dataset()
          : kNoDataSet;
  Writer w(rt_.rpc_.acquire_buffer(msg::kRead));
  encode_read_request(w, r.scope_id_, cfg.mode, id, for_write, ds);

  const auto& rq = rt_.read_quorum(id);
  ++rt_.metrics().remote_reads;
  rt_.metrics().read_messages += rq.size();

  Bytes encoded = std::move(w).take();
  const sim::Tick fetch_start = rt_.simulator().now();
  // Stamp the span context right before the sends; multicast issues them
  // without suspending, so no other client on this shared endpoint can
  // interleave and be mis-attributed.
  if (rt_.tracer_ != nullptr) rt_.rpc_.set_trace_context(r.scope_id_);
  auto futures = rt_.rpc_.multicast(rq, msg::kRead, encoded, cfg.rpc_timeout);
  if (rt_.tracer_ != nullptr) rt_.rpc_.set_trace_context(0);
  rt_.rpc_.release_buffer(std::move(encoded));

  bool have_best = false;
  ObjectCopy best;
  bool have_abort = false;
  TxnId abort_scope = 0;
  std::uint32_t abort_depth = kDepthMax;
  ChkEpoch abort_chk = kChkMax;
  std::size_t ok_replies = 0;

  for (auto& f : futures) {
    net::RpcResult res = co_await f;
    rt_.report_rpc_outcome(res.from, res.ok);
    if (!res.ok) continue;  // dead member or lost reply
    ++ok_replies;
    ReadResponse resp = ReadResponse::decode(res.payload);
    rt_.rpc_.release_buffer(std::move(res.payload));
    switch (resp.status) {
      case ReadStatus::kAbort:
        have_abort = true;
        if (cfg.mode == NestingMode::kClosed) {
          // Combine across replies: shallowest owner wins; the "conflict on
          // the fetched object itself" sentinel (scope 0 / depth max) only
          // applies when no data-set entry was invalid anywhere.
          if (resp.abort_depth < abort_depth ||
              (abort_depth == kDepthMax && abort_scope == 0)) {
            abort_depth = resp.abort_depth;
            abort_scope = resp.abort_scope;
          }
        } else {
          abort_chk = std::min(abort_chk, resp.abort_chk);
        }
        break;
      case ReadStatus::kOk:
        if (!have_best || resp.version > best.version) {
          best = ObjectCopy{id, resp.version, std::move(resp.data)};
          have_best = true;
        }
        break;
      case ReadStatus::kMissing:
        break;
    }
  }

  // Record the fetch before the abort checks so aborted fetches still count
  // toward read RTT (they cost the same wall-clock round trip).
  rt_.latency_.read_rtt.record(rt_.simulator().now() - fetch_start);
  if (rt_.tracer_ != nullptr) {
    rt_.tracer_->span(TraceKind::kReadFetch, rt_.node(), r.scope_id_,
                      fetch_start, rt_.simulator().now(), id, ok_replies);
  }

  if (have_abort) {
    ++rt_.metrics().validation_failures;
    if (cfg.mode == NestingMode::kClosed) {
      const TxnId target = abort_scope == 0 ? scope_id_ : abort_scope;
      throw AbortException{AbortTarget::kScope, target, 0, "rqv"};
    }
    if (cfg.mode == NestingMode::kCheckpoint) {
      const ChkEpoch target = std::min(abort_chk, r.epoch_);
      throw AbortException{AbortTarget::kCheckpoint, r.scope_id_, target,
                           "rqv"};
    }
    throw AbortException{AbortTarget::kRoot, r.scope_id_, 0, "rqv"};
  }
  if (ok_replies == 0) {
    throw AbortException{AbortTarget::kRoot, r.scope_id_, 0,
                         "read quorum unreachable"};
  }
  if (ok_replies < futures.size()) {
    // Strict gather: quorum intersection (Q1) only covers this fetch if
    // EVERY read-quorum member answered -- the member whose reply was lost
    // (dropped message, mid-fetch kill) may be exactly the one holding the
    // newest version, and a partial snapshot could commit unvalidated under
    // QR-CN's local read-only commit.  Abort and retry against the (possibly
    // reconfigured) quorum.
    throw AbortException{AbortTarget::kRoot, r.scope_id_, 0,
                         "read quorum incomplete"};
  }
  if (!have_best) {
    // No live replica holds the object: either a stale pointer chased by a
    // zombie flat transaction, or a data-structure bug.  Abort and retry.
    throw AbortException{AbortTarget::kRoot, r.scope_id_, 0,
                         "object missing on read quorum"};
  }
  co_return best;
}

sim::Task<ObjectCopy> Txn::acquire_copy(ObjectId id, bool for_write) {
  BatchPlanner* bp = root().batch_;
  if (bp != nullptr) {
    ObjectCopy cached;
    if (bp->lookup(id, &cached)) {
      // Served at the speculative head: one quorum fetch covers every later
      // touch of this object by any batch member.
      ++rt_.metrics().batch_read_hits;
      co_return cached;
    }
    ObjectCopy c = co_await quorum_fetch(id, for_write);
    bp->admit(c);
    co_return c;
  }
  co_return co_await quorum_fetch(id, for_write);
}

sim::Task<void> Txn::after_fetch_chk() {
  Txn& r = root();
  if (++r.objs_since_chk_ < rt_.config().chk_threshold) co_return;
  // Automatic checkpoint: charge creation cost (fixed + per snapshotted
  // object), snapshot the data-set and the execution cursor, open a new
  // epoch.
  const sim::Tick chk_start = rt_.simulator().now();
  const sim::Tick cost =
      rt_.config().chk_create_cost +
      rt_.config().chk_create_cost_per_obj *
          static_cast<sim::Tick>(r.readset_.size() + r.writeset_.size());
  if (cost > 0) {
    co_await rt_.simulator().delay(cost);
  }
  if (rt_.tracer_ != nullptr) {
    rt_.tracer_->span(TraceKind::kChkCreate, rt_.node(), r.scope_id_,
                      chk_start, rt_.simulator().now(), r.epoch_ + 1,
                      r.readset_.size() + r.writeset_.size());
  }
  ++r.epoch_;
  Snapshot s;
  s.epoch = r.epoch_;
  s.op_cursor = r.op_seq_;
  s.objs_since_chk = 0;
  s.dataset_len = r.dataset_cache_.size();
  s.readset = r.readset_;
  s.writeset = r.writeset_;
  r.checkpoints_.push_back(std::move(s));
  r.objs_since_chk_ = 0;
  ++rt_.metrics().checkpoints_created;
}

sim::Task<Bytes> Txn::read(ObjectId id) {
  QRDTM_CHECK_MSG(id != store::kNullObject, "read of null object id");
  const OpToken op = begin_op();
  if (op.replay) {
    // Fast-forward: the restored snapshot already contains this operation's
    // effects; just reproduce its result.
    co_return root().op_log_[op.idx].data;
  }
  if (const OwnedCopy* c = find_local(id, nullptr)) {
    ++rt_.metrics().local_read_hits;
    log_op(op, c->copy.data, store::kNullObject);
    co_return c->copy.data;
  }
  ObjectCopy c = co_await acquire_copy(id, /*for_write=*/false);
  Bytes data = c.data;
  const Version ver = c.version;
  const ChkEpoch chk = root().epoch_;
  readset_[id] = OwnedCopy{std::move(c), scope_id_, depth_, chk};
  dataset_append(id, ver, chk);
  log_op(op, data, store::kNullObject);
  if (rt_.config().mode == NestingMode::kCheckpoint) {
    co_await after_fetch_chk();
  }
  co_return data;
}

sim::Task<Bytes> Txn::read_for_write(ObjectId id) {
  QRDTM_CHECK_MSG(id != store::kNullObject, "write of null object id");
  const OpToken op = begin_op();
  if (op.replay) {
    co_return root().op_log_[op.idx].data;
  }
  if (auto it = writeset_.find(id); it != writeset_.end()) {
    ++rt_.metrics().local_read_hits;
    log_op(op, it->second.copy.data, store::kNullObject);
    co_return it->second.copy.data;
  }
  bool from_writeset = false;
  if (const OwnedCopy* c = find_local(id, &from_writeset)) {
    // Local upgrade / copy-on-write from an ancestor scope.  The base
    // version (and the QR-CHK fetch epoch) travel with the copy so commit
    // and rollback semantics are unchanged.
    OwnedCopy mine = *c;
    const bool same_scope = mine.owner == scope_id_;
    mine.owner = scope_id_;
    mine.owner_depth = depth_;
    ++rt_.metrics().local_read_hits;
    Bytes data = mine.copy.data;
    log_op(op, data, store::kNullObject);
    // A same-scope upgrade (read then read_for_write) already has its
    // data-set entry with the same id/version/owner; re-appending would
    // duplicate it.  Cross-scope upgrades append under the new owner (the
    // duplicate that leaves after a CT merge is compacted there).
    if (!same_scope) {
      dataset_append(id, mine.copy.version, mine.owner_chk);
    }
    writeset_[id] = std::move(mine);
    co_return data;
  }
  ObjectCopy c = co_await acquire_copy(id, /*for_write=*/true);
  Bytes data = c.data;
  const Version ver = c.version;
  const ChkEpoch chk = root().epoch_;
  writeset_[id] = OwnedCopy{std::move(c), scope_id_, depth_, chk};
  dataset_append(id, ver, chk);
  log_op(op, data, store::kNullObject);
  if (rt_.config().mode == NestingMode::kCheckpoint) {
    co_await after_fetch_chk();
  }
  co_return data;
}

void Txn::write(ObjectId id, Bytes data) {
  if (in_fast_forward()) {
    // Re-executed pre-checkpoint code: the restored snapshot already holds
    // this write's effect.
    return;
  }
  auto it = writeset_.find(id);
  QRDTM_CHECK_MSG(it != writeset_.end(),
                  "write() requires read_for_write() or create() first");
  it->second.copy.data = std::move(data);
}

ObjectId Txn::create(Bytes data) {
  const OpToken op = begin_op();
  Txn& r = root();
  if (op.replay) {
    return r.op_log_[op.idx].created;  // snapshot already holds the object
  }
  ObjectId id = rt_.allocate_object_id();
  log_op(op, Bytes{}, id);
  writeset_[id] = OwnedCopy{ObjectCopy{id, 0, std::move(data)}, scope_id_,
                            depth_, r.epoch_};
  dataset_append(id, 0, r.epoch_);
  return id;
}

sim::Task<void> Txn::compute(sim::Tick cost) {
  const OpToken op = begin_op();
  if (!op.replay && cost > 0) {
    co_await rt_.simulator().delay(cost);
  }
}

sim::Task<void> Txn::nested(TxnBody body) {
  if (rt_.config().mode != NestingMode::kClosed) {
    // Flat nesting ignores inner transactions; QR-CHK transactions are flat
    // with checkpoints (paper §IV-A).
    co_await body(*this);
    co_return;
  }
  for (;;) {
    Txn child(rt_, this);
    const sim::Tick scope_start = rt_.simulator().now();
    bool retry = false;
    bool do_propagate = false;
    AbortException propagate;
    try {
      co_await body(child);
    } catch (AbortException& a) {
      if (a.target == AbortTarget::kScope && a.scope_id == child.scope_id_) {
        retry = true;  // abortClosed names this CT: retry just this scope
      } else {
        propagate = a;  // abortClosed is an ancestor: keep unwinding
        do_propagate = true;
      }
    }
    if (rt_.tracer_ != nullptr) {
      rt_.tracer_->span(TraceKind::kCtScope, rt_.node(), root().scope_id_,
                        scope_start, rt_.simulator().now(), child.scope_id_,
                        retry || do_propagate ? 0 : 1);
    }
    if (do_propagate) {
      // The child's sets die with it; drop its materialised entries before
      // unwinding (ancestor frames truncate their own marks in turn).
      dataset_truncate(child.dataset_mark_);
      throw propagate;
    }
    if (retry) {
      dataset_truncate(child.dataset_mark_);
      ++rt_.metrics().ct_aborts;
      if (HistoryRecorder* rec = rt_.history_recorder()) {
        rec->record_abort(rt_.simulator().now(), rt_.node(), child.scope_id_,
                          "ct retry (abortClosed)");
      }
      const sim::Tick base = rt_.config().ct_retry_backoff;
      if (base > 0) {
        const sim::Tick wait = base / 2 + rt_.rng().below(base);
        rt_.latency_.backoff_wait.record(wait);
        const sim::Tick wait_start = rt_.simulator().now();
        co_await rt_.simulator().delay(wait);
        if (rt_.tracer_ != nullptr) {
          rt_.tracer_->span(TraceKind::kBackoff, rt_.node(), root().scope_id_,
                            wait_start, rt_.simulator().now(), 0);
        }
      }
      continue;  // paper: retry T_closed from its beginning
    }
    child.merge_into_parent();  // commitCT (Alg. 3): local, zero messages
    co_return;
  }
}

sim::Task<void> Txn::open_nested(OpenOp op) {
  QRDTM_CHECK_MSG(parent_ == nullptr,
                  "open_nested is only valid at root depth");
  QRDTM_CHECK_MSG(rt_.config().mode != NestingMode::kCheckpoint,
                  "open nesting cannot compose with checkpoint replay");
  QRDTM_CHECK_MSG(rt_.config().mode != NestingMode::kQueued,
                  "open nesting cannot compose with batched speculation");
  // Deterministic per-operation lock order; cross-operation cycles are
  // broken by acquire_abstract_lock's bounded retries (root abort +
  // compensation).
  std::sort(op.locks.begin(), op.locks.end());
  op.locks.erase(std::unique(op.locks.begin(), op.locks.end()),
                 op.locks.end());
  for (AbstractLockId lock : op.locks) {
    co_await rt_.acquire_abstract_lock(*this, lock);
  }
  // The body is an independent transaction: it commits globally NOW, while
  // this root is still running (the defining property of open nesting).
  bool ok = co_await rt_.run_txn_impl(op.body, 0, /*count_commit=*/false);
  QRDTM_CHECK(ok);
  ++rt_.metrics().open_commits;
  if (op.compensation) {
    open_log_.push_back(std::move(op.compensation));
  }
}

void Txn::merge_into_parent() {
  QRDTM_CHECK(parent_ != nullptr);
  // Ownership transfers to the parent: a later conflict on these objects
  // must abort the parent, since this CT no longer exists (Alg. 3).
  // Visit order does not matter: the merge is a keyed overwrite into the
  // parent's maps, so the result is identical under any iteration order.
  // qrdtm-lint: allow(det-unordered-iter)
  for (auto& [id, oc] : readset_) {
    oc.owner = parent_->scope_id_;
    oc.owner_depth = parent_->depth_;
    parent_->readset_[id] = std::move(oc);
  }
  // Keyed overwrite as above.  qrdtm-lint: allow(det-unordered-iter)
  for (auto& [id, oc] : writeset_) {
    oc.owner = parent_->scope_id_;
    oc.owner_depth = parent_->depth_;
    parent_->writeset_[id] = std::move(oc);
  }
  readset_.clear();
  writeset_.clear();
  // Re-home this scope's materialised entries (everything appended since the
  // scope opened, including already-merged grandchildren's).
  auto& cache = root().dataset_cache_;
  for (std::size_t i = dataset_mark_; i < cache.size(); ++i) {
    cache[i].owner = parent_->scope_id_;
    cache[i].owner_depth = parent_->depth_;
  }
  // Compact duplicates: a CT upgrade of an object already in an ancestor's
  // set appended a second entry for the same id, now identical in role to
  // the ancestor's.  Keep the ancestor's (shallower) entry -- when the
  // object is invalid, every scope holding it is doomed and abortClosed
  // must name the shallowest one.
  if (dataset_mark_ > 0) {
    std::size_t out = dataset_mark_;
    for (std::size_t i = dataset_mark_; i < cache.size(); ++i) {
      bool dup = false;
      for (std::size_t j = 0; j < dataset_mark_; ++j) {
        if (cache[j].id == cache[i].id) {
          dup = true;
          break;
        }
      }
      if (!dup) {
        if (out != i) cache[out] = std::move(cache[i]);
        ++out;
      }
    }
    cache.resize(out);
  }
}

void Txn::reset_scope() {
  readset_.clear();
  writeset_.clear();
  dataset_truncate(dataset_mark_);
}

void Txn::reset_full() {
  QRDTM_CHECK(parent_ == nullptr);
  QRDTM_CHECK_MSG(open_log_.empty() && held_locks_.empty(),
                  "open-nesting state must be settled before a reset");
  readset_.clear();
  writeset_.clear();
  dataset_cache_.clear();
  checkpoints_.clear();
  op_log_.clear();
  epoch_ = 0;
  objs_since_chk_ = 0;
  op_seq_ = 0;
  replay_until_ = 0;
  ops_this_attempt_ = 0;
}

void Txn::rollback_to(ChkEpoch epoch) {
  QRDTM_CHECK(parent_ == nullptr);
  QRDTM_CHECK_MSG(epoch >= 1, "rollback to epoch 0 is a full abort");
  while (!checkpoints_.empty() && checkpoints_.back().epoch > epoch) {
    checkpoints_.pop_back();
  }
  QRDTM_CHECK_MSG(
      !checkpoints_.empty() && checkpoints_.back().epoch == epoch,
      "rollback target checkpoint not found");
  const Snapshot& s = checkpoints_.back();
  readset_ = s.readset;
  writeset_ = s.writeset;
  dataset_cache_.resize(s.dataset_len);
  epoch_ = s.epoch;
  objs_since_chk_ = s.objs_since_chk;
  replay_until_ = s.op_cursor;
  // Drop log entries from the abandoned suffix; the replay's fresh
  // execution appends new ones from the cursor on.
  op_log_.resize(s.op_cursor);
  op_seq_ = 0;
  ops_this_attempt_ = 0;
}

// ------------------------------------------------------------ TxnRuntime

TxnRuntime::TxnRuntime(net::RpcEndpoint& rpc, quorum::QuorumProvider& quorums,
                       Metrics& metrics, RuntimeConfig config,
                       std::uint64_t seed)
    : rpc_(rpc),
      quorums_(quorums),
      metrics_(metrics),
      config_(config),
      rng_(seed),
      // Scope ids are node-prefixed so ids never collide across nodes; id 0
      // is reserved as the "current scope" sentinel in abort replies.
      next_scope_id_((static_cast<TxnId>(rpc.id()) + 1) << 40) {
  if (config_.mode == NestingMode::kQueued) {
    planner_ = std::make_unique<BatchPlanner>(*this);
  }
}

TxnRuntime::~TxnRuntime() = default;

const std::vector<net::NodeId>& TxnRuntime::cohort_read_quorum(
    std::uint32_t cohort) {
  if (rq_cache_.size() < quorums_.num_cohorts()) {
    rq_cache_.resize(quorums_.num_cohorts());
  }
  CohortQuorum& q = rq_cache_[cohort];
  const std::uint64_t g = quorums_.generation();
  if (q.gen != g) {
    // A zombie coroutine (the requester was killed mid-transaction, so the
    // provider no longer routes under it) turns an unformable quorum into
    // an infrastructure abort: bounded retry loops absorb it, and the next
    // cross-epoch send would drop anyway.  A *live* requester keeps the
    // original contract and sees QuorumUnavailable directly.
    try {
      q.nodes = quorums_.cohort_read_quorum(node(), cohort);
    } catch (const quorum::QuorumUnavailable& e) {
      if (!rpc_.network().alive(node())) {
        throw AbortException{AbortTarget::kRoot, 0, 0, e.what()};
      }
      throw;
    }
    q.gen = g;
  }
  return q.nodes;
}

const std::vector<net::NodeId>& TxnRuntime::cohort_write_quorum(
    std::uint32_t cohort) {
  if (wq_cache_.size() < quorums_.num_cohorts()) {
    wq_cache_.resize(quorums_.num_cohorts());
  }
  CohortQuorum& q = wq_cache_[cohort];
  const std::uint64_t g = quorums_.generation();
  if (q.gen != g) {
    // Same zombie-only infrastructure-abort conversion as
    // cohort_read_quorum.
    try {
      q.nodes = quorums_.cohort_write_quorum(node(), cohort);
    } catch (const quorum::QuorumUnavailable& e) {
      if (!rpc_.network().alive(node())) {
        throw AbortException{AbortTarget::kRoot, 0, 0, e.what()};
      }
      throw;
    }
    q.gen = g;
  }
  return q.nodes;
}

const std::vector<net::NodeId>& TxnRuntime::read_quorum(ObjectId id) {
  return cohort_read_quorum(quorums_.cohort_of(id));
}

std::vector<net::NodeId> TxnRuntime::union_write_quorum(
    const std::vector<ObjectId>& ids) {
  const std::uint32_t n = quorums_.num_cohorts();
  // Single cohort: the exact pre-shard behaviour (a copy of the one write
  // quorum), no per-id hashing.
  if (n <= 1) return cohort_write_quorum(0);
  std::vector<bool> seen(n, false);
  std::uint32_t distinct = 0;
  std::vector<net::NodeId> out;
  for (ObjectId id : ids) {
    const std::uint32_t c = quorums_.cohort_of(id);
    if (seen[c]) continue;
    seen[c] = true;
    ++distinct;
    const auto& wq = cohort_write_quorum(c);
    out.insert(out.end(), wq.begin(), wq.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (distinct > 1) ++metrics_.cross_shard_rounds;
  return out;
}

ObjectId TxnRuntime::allocate_object_id() {
  return ((static_cast<ObjectId>(rpc_.id()) + 1) << 40) |
         (0x8000000000ULL + next_object_seq_++);
}

sim::Task<void> TxnRuntime::run_transaction(TxnBody body) {
  bool ok = co_await run_txn_impl(std::move(body), 0, /*count_commit=*/true);
  QRDTM_CHECK(ok);
}

sim::Task<bool> TxnRuntime::run_txn_impl(TxnBody body,
                                         std::uint32_t max_attempts,
                                         bool count_commit) {
  if (config_.mode == NestingMode::kQueued) {
    // QR-Q: hand the body to the batch planner; it executes as a member of
    // a speculative batch and commits through the batch 2PC round.
    QRDTM_CHECK_MSG(count_commit,
                    "open-nested side transactions cannot run under kQueued");
    co_return co_await planner_->submit(std::move(body), max_attempts);
  }
  Txn root(*this, nullptr);
  const sim::Tick txn_start = simulator().now();
  std::uint32_t attempt = 0;
  for (;;) {
    const sim::Tick attempt_start = simulator().now();
    bool committed = false;
    bool aborted = false;
    AbortException abort;
    try {
      co_await body(root);
      co_await commit_root(root);
      committed = true;
    } catch (AbortException& a) {
      abort = a;
      aborted = true;
    } catch (const quorum::QuorumUnavailable& e) {
      // A live requester that cannot form a quorum mid-chaos: bounded
      // callers (the fuzz harness, QR-Q batch members) treat it as one
      // failed attempt and retry after membership heals.  Unbounded
      // clients keep the raw error -- a permanently lost quorum must
      // surface, not spin forever (Failures.WholeReadQuorumDead...).
      if (max_attempts == 0) throw;
      abort = AbortException{AbortTarget::kRoot, root.scope_id_, 0, e.what()};
      aborted = true;
    }
    if (tracer_ != nullptr) {
      tracer_->span(TraceKind::kAttempt, node(), root.scope_id_, attempt_start,
                    simulator().now(), attempt + 1, committed ? 1 : 0);
    }
    if (committed) {
      const sim::Tick now = simulator().now();
      latency_.commit_latency.record(now - txn_start);
      if (tracer_ != nullptr) {
        tracer_->span(TraceKind::kTxn, node(), root.scope_id_, txn_start, now,
                      attempt + 1);
      }
      if (recorder_ != nullptr) record_commit_history(root);
      co_await finish_open(root, /*committed=*/true);
      if (count_commit) ++metrics_.commits;
      co_return true;
    }
    QRDTM_CHECK(aborted);
    const sim::Tick abort_tick = simulator().now();
    if (tracer_ != nullptr) {
      tracer_->instant(TraceKind::kAbort, node(), root.scope_id_, abort_tick,
                       attempt + 1);
    }

    if (config_.mode == NestingMode::kCheckpoint &&
        abort.target == AbortTarget::kCheckpoint) {
      const ChkEpoch target = std::min(abort.chk, root.epoch_);
      if (target >= 1) {
        // Partial rollback: restore the checkpoint and resume (replay).
        // Restoring the saved continuation + transaction copy costs time.
        ++metrics_.partial_rollbacks;
        if (recorder_ != nullptr) {
          recorder_->record_rollback(simulator().now(), node(),
                                     root.scope_id_, target);
        }
        root.rollback_to(target);
        if (config_.chk_restore_cost > 0) {
          co_await rpc_.simulator().delay(config_.chk_restore_cost);
        }
        if (tracer_ != nullptr) {
          tracer_->span(TraceKind::kChkRollback, node(), root.scope_id_,
                        abort_tick, simulator().now(), target);
        }
        continue;
      }
      // Rolling back to the start is a full abort.
    }

    ++metrics_.root_aborts;
    if (recorder_ != nullptr) {
      recorder_->record_abort(simulator().now(), node(), root.scope_id_,
                              abort.reason);
    }
    // QR-ON: undo globally-committed open-nested work before retrying.
    co_await finish_open(root, /*committed=*/false);
    root.reset_full();
    ++attempt;
    if (max_attempts != 0 && attempt >= max_attempts) co_return false;
    co_await backoff(attempt, root.scope_id_);
    latency_.retry_gap.record(simulator().now() - abort_tick);
  }
}

void TxnRuntime::record_commit_history(const Txn& root) {
  CommittedTxn rec;
  rec.txn = root.scope_id_;
  rec.node = node();
  rec.commit_tick = simulator().now();
  rec.reads.reserve(root.readset_.size());
  // Collect-then-sort: the recorded order is by object id regardless of the
  // sets' hash order.  qrdtm-lint: allow(det-unordered-iter)
  for (const auto& [id, oc] : root.readset_) {
    rec.reads.push_back(HistoryRead{id, oc.copy.version});
  }
  rec.writes.reserve(root.writeset_.size());
  // Sorted below as well.  qrdtm-lint: allow(det-unordered-iter)
  for (const auto& [id, oc] : root.writeset_) {
    // QR installs base+1 (see QrServer::handle_commit_confirm).
    rec.writes.push_back(
        HistoryWrite{id, oc.copy.version, oc.copy.version + 1, oc.copy.data});
  }
  std::sort(rec.reads.begin(), rec.reads.end(),
            [](const HistoryRead& a, const HistoryRead& b) { return a.id < b.id; });
  std::sort(
      rec.writes.begin(), rec.writes.end(),
      [](const HistoryWrite& a, const HistoryWrite& b) { return a.id < b.id; });
  recorder_->record_commit(std::move(rec));
}

sim::Task<void> TxnRuntime::acquire_abstract_lock(Txn& root,
                                                  AbstractLockId lock) {
  if (std::find(root.held_locks_.begin(), root.held_locks_.end(), lock) !=
      root.held_locks_.end()) {
    co_return;  // already held by this root (reentrant)
  }
  const net::NodeId home = lock_home(lock, rpc_.network().num_nodes());
  for (std::uint32_t attempt = 0;; ++attempt) {
    Writer w(rpc_.acquire_buffer(msg::kLockAcquire));
    w.u64(lock);
    w.u64(root.scope_id_);
    ++metrics_.lock_messages;
    auto res = co_await rpc_.call(home, msg::kLockAcquire,
                                  std::move(w).take(), config_.rpc_timeout);
    report_rpc_outcome(home, res.ok);
    if (res.ok) {
      Reader r(res.payload);
      const bool granted = r.boolean();
      rpc_.release_buffer(std::move(res.payload));
      if (granted) {
        root.held_locks_.push_back(lock);
        co_return;
      }
    }
    ++metrics_.lock_conflicts;
    if (attempt + 1 >= config_.max_lock_attempts) {
      // Could not get the lock: break the (potential) cross-root cycle by
      // aborting this root, which compensates and releases what it holds.
      throw AbortException{AbortTarget::kRoot, root.scope_id_, 0,
                           "abstract lock conflict"};
    }
    co_await backoff(attempt + 1, root.scope_id_);
  }
}

sim::Task<void> TxnRuntime::finish_open(Txn& root, bool committed) {
  if (root.open_log_.empty() && root.held_locks_.empty()) co_return;
  if (!committed) {
    // Undo committed open-nested bodies, newest first.  Compensations are
    // independent committed transactions; they must not use open_nested
    // themselves (no recursion).
    for (auto it = root.open_log_.rbegin(); it != root.open_log_.rend();
         ++it) {
      bool ok = co_await run_txn_impl(*it, 0, /*count_commit=*/false);
      QRDTM_CHECK(ok);
      ++metrics_.compensations_run;
    }
  }
  for (AbstractLockId lock : root.held_locks_) {
    Writer w(rpc_.acquire_buffer(msg::kLockRelease));
    w.u64(lock);
    w.u64(root.scope_id_);
    ++metrics_.lock_messages;
    rpc_.notify(lock_home(lock, rpc_.network().num_nodes()),
                msg::kLockRelease, std::move(w).take());
  }
  root.open_log_.clear();
  root.held_locks_.clear();
}

sim::Task<void> TxnRuntime::commit_root(Txn& root) {
  // An empty transaction (no reads, no writes) has nothing to validate.
  if (root.writeset_.empty() && root.readset_.empty()) {
    ++metrics_.local_commits;
    if (tracer_ != nullptr) {
      tracer_->span(TraceKind::kCommit2pc, node(), root.scope_id_,
                    simulator().now(), simulator().now(), 0, /*local=*/1);
    }
    co_return;
  }
  // Rqv makes read-only commits free under QR-CN (paper §III-A); flat QR
  // and QR-CHK always run the 2PC (QR-CHK commit "exactly the same as flat",
  // §IV-A).
  if (root.writeset_.empty() && config_.mode == NestingMode::kClosed &&
      config_.cn_local_readonly_commit) {
    ++metrics_.local_commits;
    if (tracer_ != nullptr) {
      tracer_->span(TraceKind::kCommit2pc, node(), root.scope_id_,
                    simulator().now(), simulator().now(), 0, /*local=*/1);
    }
    co_return;
  }
  const sim::Tick commit_start = simulator().now();

  CommitRequest req;
  req.txn = root.scope_id_;
  req.readset.reserve(root.readset_.size());
  // qrdtm-lint: allow(det-unordered-iter)
  for (const auto& [id, oc] : root.readset_) {
    req.readset.push_back(CommitReadEntry{id, oc.copy.version});
  }
  req.writeset.reserve(root.writeset_.size());
  // qrdtm-lint: allow(det-unordered-iter)
  for (const auto& [id, oc] : root.writeset_) {
    req.writeset.push_back(CommitWriteEntry{id, oc.copy.version, oc.copy.data});
  }
  // The sets come straight out of hash maps: fix the wire order so the
  // encoded request bytes (and the order replicas walk the entries in when
  // voting and applying) are identical across standard-library hash
  // implementations.
  std::sort(req.readset.begin(), req.readset.end(),
            [](const CommitReadEntry& a, const CommitReadEntry& b) {
              return a.id < b.id;
            });
  std::sort(req.writeset.begin(), req.writeset.end(),
            [](const CommitWriteEntry& a, const CommitWriteEntry& b) {
              return a.id < b.id;
            });

  // Copy of the memoised quorum: a failure mid-commit may regenerate the
  // cache while we await votes, and the confirm must reach the same members
  // the request went to.  The multicast spans the write quorums of every
  // cohort the transaction touched -- the read-set cohorts included, since
  // read validation only happens on nodes replicating those objects.
  std::vector<ObjectId> touched;
  touched.reserve(req.readset.size() + req.writeset.size());
  for (const CommitReadEntry& e : req.readset) touched.push_back(e.id);
  for (const CommitWriteEntry& e : req.writeset) touched.push_back(e.id);
  const std::vector<net::NodeId> wq = union_write_quorum(touched);
  ++metrics_.commit_requests;
  metrics_.commit_messages += wq.size();
  Writer reqw(rpc_.acquire_buffer(msg::kCommitRequest));
  req.encode_into(reqw);
  Bytes reqbytes = std::move(reqw).take();
  if (tracer_ != nullptr) rpc_.set_trace_context(root.scope_id_);
  auto futures =
      rpc_.multicast(wq, msg::kCommitRequest, reqbytes, config_.rpc_timeout);
  if (tracer_ != nullptr) rpc_.set_trace_context(0);
  rpc_.release_buffer(std::move(reqbytes));

  bool all_commit = true;
  for (auto& f : futures) {
    net::RpcResult res = co_await f;
    report_rpc_outcome(res.from, res.ok);
    if (!res.ok) {
      all_commit = false;  // dead or unreachable member counts as abort
      continue;
    }
    if (!VoteResponse::decode(res.payload).commit) all_commit = false;
    rpc_.release_buffer(std::move(res.payload));
  }

  // The canonical checkpoint/recovery race window: votes are gathered (the
  // write quorum has protected + durably prepared the write-set) but the
  // confirm has not been sent.  Tests park the coordinator here, cut
  // checkpoints / crash replicas, then resume (fp::kCommitBeforeConfirm).
  if (faults_ != nullptr &&
      faults_->fire(fp::kCommitBeforeConfirm, node()) == FaultAction::kSuspend) {
    co_await faults_->suspend(fp::kCommitBeforeConfirm, node());
  }

  // The confirm goes out either way: voters that protected the write-set
  // must release it on abort.
  CommitConfirm confirm;
  confirm.txn = req.txn;
  confirm.commit = all_commit;
  confirm.writeset = std::move(req.writeset);
  Writer cw(rpc_.acquire_buffer(msg::kCommitConfirm));
  confirm.encode_into(cw);
  Bytes encoded = std::move(cw).take();

  // Durable decision record (DESIGN.md §17): the outcome -- commit AND
  // abort, so termination rounds get authoritative abort answers too -- is
  // on the local WAL BEFORE any confirm leaves this node.  A coordinator
  // restart therefore proves: no decision in the log => no confirm was ever
  // sent => in-doubt replicas may presumed-abort safely.  Read-only rounds
  // (empty writeset) take no protections and log nothing.
  const bool log_decision = local_log_ != nullptr && !confirm.writeset.empty();
  if (log_decision) {
    const FaultAction at_decision =
        faults_ != nullptr ? faults_->fire(fp::kDecisionBeforeLog, node())
                           : FaultAction::kNone;
    if (at_decision == FaultAction::kPanic) {
      // Crashed before the decision was durable: no confirm leaves, the
      // attempt must not be recorded as a commit (the prepared replicas
      // will presumed-abort it once the restarted coordinator answers).
      rpc_.release_buffer(std::move(encoded));
      throw AbortException{AbortTarget::kRoot, root.scope_id_, 0,
                           "coordinator crashed before decision log"};
    }
    if (at_decision != FaultAction::kSkip) {
      // kSkip = the --break-termination canary: confirms go out with no
      // durable decision, so a restart presumed-aborts an acked commit.
      store::Decision d;
      d.epoch = rpc_.network().epoch(node());
      d.commit = all_commit;
      d.confirm_kind = msg::kCommitConfirm;
      d.members.assign(wq.begin(), wq.end());
      d.payload = encoded;
      local_log_->append_decision(req.txn, std::move(d));
    }
  }

  metrics_.commit_messages += wq.size();
  if (tracer_ != nullptr) rpc_.set_trace_context(root.scope_id_);
  bool died_mid_broadcast = false;
  for (net::NodeId n : wq) {
    // Coordinator crash after a strict subset of the confirms left the node
    // (arm with delay_fires=K to let K members hear the outcome).  The dead
    // node's remaining sends are cut at the network, so just keep looping.
    if (faults_ != nullptr &&
        faults_->fire(fp::kConfirmPartial, node()) == FaultAction::kPanic) {
      died_mid_broadcast = true;
    }
    Bytes copy = rpc_.acquire_buffer(msg::kCommitConfirm);
    copy.assign(encoded.begin(), encoded.end());
    rpc_.notify(n, msg::kCommitConfirm, std::move(copy));
  }
  if (tracer_ != nullptr) rpc_.set_trace_context(0);
  rpc_.release_buffer(std::move(encoded));
  // The broadcast completed in this incarnation: stop re-driving it.  A
  // coordinator that died mid-broadcast must NOT settle -- recovery replays
  // the decision and re-sends (receivers dedupe duplicates).
  if (log_decision && !died_mid_broadcast) {
    local_log_->settle_decision(req.txn);
  }

  // Charge the one-way confirm propagation (paper: commit-confirm cost is
  // the distance to the write quorum).  This also keeps the client's next
  // attempt from racing its own confirms.
  if (config_.commit_settle > 0) {
    co_await rpc_.simulator().delay(config_.commit_settle);
  }

  if (tracer_ != nullptr) {
    tracer_->span(TraceKind::kCommit2pc, node(), root.scope_id_, commit_start,
                  simulator().now(), root.writeset_.size(), /*local=*/0);
  }

  if (!all_commit) {
    ++metrics_.vote_aborts;
    throw AbortException{AbortTarget::kRoot, root.scope_id_, 0,
                         "commit vote failed"};
  }
}

sim::Task<void> TxnRuntime::backoff(std::uint32_t attempt, TxnId txn) {
  const sim::Tick wait = draw_backoff_wait(config_.backoff_base,
                                           config_.backoff_cap, attempt, rng_);
  latency_.backoff_wait.record(wait);
  if (wait > 0) {
    const sim::Tick start = simulator().now();
    co_await rpc_.simulator().delay(wait);
    if (tracer_ != nullptr) {
      tracer_->span(TraceKind::kBackoff, node(), txn, start, simulator().now(),
                    attempt);
    }
  }
}

}  // namespace qrdtm::core
