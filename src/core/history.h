// Recorded transaction histories and a 1-copy serializability checker.
//
// Every committed transaction's observable behaviour -- the (object, version)
// pairs it read, the versions it installed, and the order it committed in --
// is appended to a HistoryRecorder by the runtimes (QR family and both
// baselines).  check_history() then decides, from the record alone, whether
// the run is explainable as a serial execution against a single-copy store:
//
//   1. Version chains.  Seeds and committed writes are assembled into one
//      totally-ordered chain per object.  Installing a version twice, or
//      installing over a base that is not the chain predecessor (a lost
//      update), is an immediate violation -- this is the first-committer-wins
//      property quorum intersection (Q2) enforces.
//   2. Read validity.  Every read version must exist in its object's chain
//      (no phantom or torn versions ever escaped a replica).
//   3. MVSG acyclicity.  A multi-version serialization graph is built over
//      the committed transactions: wr (installer -> reader of the version),
//      ww (installer -> installer of the successor version) and rw (reader of
//      a version -> installer of its successor) edges.  The history is
//      1-copy serializable iff this graph is acyclic [Bernstein-Goodman];
//      a cycle is extracted and printed as the counterexample.  A committed
//      scope that observed a mixed snapshot (object A before writer W,
//      object B after W) shows up as the 2-cycle reader -> W -> reader.
//   4. Certifying replay.  A topological order of the MVSG is replayed
//      against a sequential reference store; every read must return exactly
//      the version the transaction recorded.  This re-derives the 1-copy
//      equivalent order explicitly (defence in depth over step 3) and yields
//      the expected final store state.
//
// Two strictness levels: kSerializable runs all four steps and is the
// contract for the QR family and TFA.  kSnapshotReads runs steps 1-2 only --
// DecentSTM provides snapshot isolation, which permits write skew (an MVSG
// cycle of rw edges) by design, but still forbids lost updates and phantom
// versions.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/types.h"
#include "net/message.h"
#include "sim/simulator.h"

namespace qrdtm::core {

struct HistoryRead {
  ObjectId id = 0;
  Version version = 0;
};

struct HistoryWrite {
  ObjectId id = 0;
  Version base = 0;       // version observed before writing (0 = created)
  Version installed = 0;  // version the commit installed
  Bytes data;
};

/// One committed transaction, as recorded at its commit point.
struct CommittedTxn {
  TxnId txn = 0;            // protocol-level id (printing only)
  net::NodeId node = 0;     // committing client's node
  sim::Tick commit_tick = 0;
  Version snapshot = 0;     // SI snapshot pin (DecentSTM); 0 = not used
  std::vector<HistoryRead> reads;    // sorted by object id
  std::vector<HistoryWrite> writes;  // sorted by object id
};

/// Non-commit events kept for trace dumps (aborts, partial rollbacks,
/// injected faults, QR-Q batch boundaries).  They carry no weight in the
/// checker: a batched history is certified from the per-transaction commit
/// records alone, the boundary events just make the dump legible.
struct HistoryEvent {
  enum class Kind : std::uint8_t { kAbort, kRollback, kFault, kBatch };
  Kind kind = Kind::kAbort;
  sim::Tick tick = 0;
  net::NodeId node = 0;
  TxnId txn = 0;
  std::string detail;
};

/// Append-only record of one simulation's transactional behaviour.  One
/// recorder serves a whole cluster (the DES is single-threaded); attach it
/// before seeding so initial versions are captured.
class HistoryRecorder {
 public:
  void record_seed(ObjectId id, Version version, const Bytes& data) {
    // Every node seeds the same object; record it once.
    if (seeds_.find(id) == seeds_.end()) seeds_.emplace(id, SeedEntry{version, data});
  }

  void record_commit(CommittedTxn txn) { committed_.push_back(std::move(txn)); }

  void record_abort(sim::Tick tick, net::NodeId node, TxnId txn,
                    std::string detail) {
    events_.push_back(HistoryEvent{HistoryEvent::Kind::kAbort, tick, node, txn,
                                   std::move(detail)});
  }

  void record_rollback(sim::Tick tick, net::NodeId node, TxnId txn,
                       ChkEpoch target);

  /// QR-Q: mark a committed batch's boundary.  The member transactions'
  /// commit records immediately precede this event, in queue order.
  void record_batch(sim::Tick tick, net::NodeId node, TxnId batch,
                    std::size_t size);

  void record_fault(sim::Tick tick, std::string detail) {
    events_.push_back(HistoryEvent{HistoryEvent::Kind::kFault, tick,
                                   net::kNoNode, 0, std::move(detail)});
  }

  struct SeedEntry {
    Version version = 0;
    Bytes data;
  };

  const std::map<ObjectId, SeedEntry>& seeds() const { return seeds_; }
  const std::vector<CommittedTxn>& committed() const { return committed_; }
  const std::vector<HistoryEvent>& events() const { return events_; }

  void clear() {
    seeds_.clear();
    committed_.clear();
    events_.clear();
  }

  /// Human-readable trace: seeds, then commits and events.  This is the
  /// counterexample artifact the fuzz driver writes next to a violation.
  std::string dump() const;

  /// Write dump() to `path`.  Returns false on I/O failure.
  bool dump_to_file(const std::string& path) const;

 private:
  std::map<ObjectId, SeedEntry> seeds_;
  std::vector<CommittedTxn> committed_;
  std::vector<HistoryEvent> events_;
};

enum class CheckLevel : std::uint8_t {
  kSerializable,   // chains + reads + MVSG acyclicity + certifying replay
  kSnapshotReads,  // chains + reads only (SI baselines: write skew is legal)
};

struct CheckResult {
  bool ok = true;
  std::string report;        // empty when ok; counterexample text otherwise
  std::size_t committed = 0; // transactions checked
  /// Reference-store contents after the certifying replay (kSerializable
  /// only): the state any 1-copy execution of the history must end in.
  std::map<ObjectId, HistoryRecorder::SeedEntry> final_state;
};

/// Check a recorded history.  Pure function of the record: deterministic,
/// no simulator access.
CheckResult check_history(const HistoryRecorder& history, CheckLevel level);

}  // namespace qrdtm::core
