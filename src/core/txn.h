// Client-side transaction runtime for QR (flat), QR-CN (closed nesting) and
// QR-CHK (checkpointing).
//
// A transaction body is a coroutine `sim::Task<void>(Txn&)`.  The runtime
// re-invokes the body on retry, so bodies must be deterministic given the
// values they read (draw all workload randomness *before* starting the
// transaction and capture it).
//
//   * Flat (QR): reads fetch through the read quorum with no validation;
//     conflicts surface at the 2PC commit against the write quorum, and any
//     abort restarts the whole body.
//   * Closed nesting (QR-CN): `Txn::nested(body)` opens a closed-nested
//     scope.  Every remote read carries the full data-set for Rqv; an abort
//     reply names the shallowest invalid scope (abortClosed), which the
//     runtime unwinds to by exception and retries -- deeper scopes retry
//     without disturbing their parents, and a CT commit is a local merge.
//     Read-only roots and CTs commit with zero messages.
//   * Checkpointing (QR-CHK): the runtime auto-creates a checkpoint each
//     time `chk_threshold` new objects entered the data-set.  An Rqv abort
//     names abortChk, the minimum invalid checkpoint epoch; the runtime
//     restores that snapshot and *replays* the body: operations before the
//     checkpoint's cursor are served from the snapshot (no messages, no
//     compute charge), which reproduces continuation-resume cost (see
//     DESIGN.md substitution table).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "core/abstract_locks.h"
#include "core/failure_detector.h"
#include "core/faultpoint.h"
#include "core/metrics.h"
#include "core/trace.h"
#include "core/types.h"
#include "core/wire.h"
#include "net/rpc.h"
#include "quorum/quorum.h"
#include "sim/task.h"

namespace qrdtm::store {
class CommitLog;
}  // namespace qrdtm::store

namespace qrdtm::core {

class HistoryRecorder;

struct RuntimeConfig {
  NestingMode mode = NestingMode::kFlat;
  sim::Tick rpc_timeout = sim::msec(500);
  /// Randomised exponential backoff applied on full (root) aborts.
  sim::Tick backoff_base = sim::msec(1);
  sim::Tick backoff_cap = sim::msec(32);
  /// Pause before retrying an aborted closed-nested scope.  A conflicting
  /// committer holds its write-set protected for roughly one commit round
  /// trip; retrying sooner just burns read rounds against its protection.
  sim::Tick ct_retry_backoff = sim::msec(15);
  /// QR-CN: let read-only root transactions commit locally (zero messages),
  /// the Rqv guarantee of paper §III-A.  Off = validate via 2PC like flat;
  /// bench/ablation_readonly_commit isolates this optimisation's share of
  /// QR-CN's gains at read-heavy workloads.
  bool cn_local_readonly_commit = true;
  /// One-way confirm-propagation time charged to the committing client
  /// (paper §V: "commit confirm cost is equal to its distance from [the]
  /// write quorum").  Without it a client's next transaction races its own
  /// in-flight confirms and self-aborts.  Cluster derives the default from
  /// the link latency.
  sim::Tick commit_settle = 0;
  /// QR-CHK: objects added to the data-set between automatic checkpoints.
  std::uint32_t chk_threshold = 1;
  /// QR-CHK checkpoint-creation cost: fixed part plus a per-object part
  /// covering the snapshot copy of the read/write sets (the paper's
  /// implementation captures a Java Continuation *and* a transaction copy
  /// per checkpoint, so creation cost grows with the data-set).  The
  /// defaults are calibrated so a conflict-free run shows the paper's ~6 %
  /// creation overhead (bench/micro_overheads.cpp).
  /// Calibration (see EXPERIMENTS.md): with 500 us/object, a Bank-sized
  /// transaction (~6 objects) pays ~5 % creation overhead -- the paper's
  /// independently-measured "only 6 % overhead" -- while long transactions
  /// (SList, ~40 objects) pay quadratically more, reproducing the paper's
  /// "fine granularity of checkpoints" penalty.
  sim::Tick chk_create_cost = sim::usec(200);
  sim::Tick chk_create_cost_per_obj = sim::usec(500);
  /// QR-CHK: cost of restoring a checkpoint (continuation + transaction
  /// copy) on partial rollback.  The paper's implementation restores Java
  /// Continuation objects plus a transaction deep-copy on a patched
  /// research JVM (MLVM); 200 ms is calibrated so QR-CHK lands in the
  /// paper's reported band (~16 % below flat nesting).
  /// bench/ablation_chk_costs sweeps both knobs to show the crossover.
  sim::Tick chk_restore_cost = sim::msec(200);
  /// Zombie-execution guard: a single attempt performing more operations
  /// than this aborts (flat QR can read inconsistent snapshots and chase
  /// stale pointers; see DESIGN.md).
  std::uint32_t max_ops_per_attempt = 100000;
  /// QR-ON: abstract-lock acquisition attempts before the root aborts (and
  /// compensates) to break potential cross-root lock-order cycles.
  std::uint32_t max_lock_attempts = 8;
  /// QR-Q (kQueued): batch formation window -- how long the planner waits
  /// after the first enqueue for concurrent submitters on the node to join
  /// the batch.  Roughly one quorum round trip amortizes best: the batch
  /// saves more fetches than the wait costs.
  sim::Tick batch_window = sim::msec(10);
  /// QR-Q: transactions per batch cap (bounds speculative state and the
  /// blast radius of one rollback).
  std::uint32_t batch_max_txns = 32;
  /// Commit-log tail bound, in bytes: a replica whose record tail outgrows
  /// this takes a checkpoint cut right after the append (amortised O(1):
  /// each cut folds the tail into the image).  Without it the tail grows
  /// without bound in a healthy long run -- nothing cuts between
  /// recoveries and chaos-scheduled cuts.  0 disables the auto-cut.
  std::size_t log_max_tail_bytes = std::size_t{1} << 20;
};

class BatchPlanner;
class Txn;
class TxnRuntime;

// Constructed once per transaction attempt (not per event/message), so the
// possible one-time allocation is outside the per-event hot path.
// qrdtm-lint: allow(hot-std-function)
using TxnBody = std::function<sim::Task<void>(Txn&)>;

/// One open-nested operation (QR-ON, an extension beyond the paper
/// following TFA-ON's model -- see DESIGN.md §6).  The body runs as an
/// independent transaction and commits *globally* before the enclosing
/// root does; `locks` name the semantic entities it touches (held by the
/// root until it finishes), and `compensation` undoes the body's effect if
/// the root later aborts.
struct OpenOp {
  std::vector<AbstractLockId> locks;
  TxnBody body;
  TxnBody compensation;  // may be empty for read-only operations
};

/// A transaction-local object entry (member of a read- or write-set).
struct OwnedCopy {
  ObjectCopy copy;       // id, version (write-set: base version), data
  TxnId owner = 0;       // scope that fetched it (QR-CN)
  std::uint32_t owner_depth = 0;
  ChkEpoch owner_chk = 0;  // epoch current at fetch (QR-CHK)
};

/// One transaction scope: the root transaction, or a closed-nested scope.
/// Scopes form a parent chain; the data-set of a scope is its own sets plus
/// all ancestors' (paper getDataSet).
class Txn {
 public:
  Txn(TxnRuntime& rt, Txn* parent);

  Txn(const Txn&) = delete;
  Txn& operator=(const Txn&) = delete;

  // ----- user operations -------------------------------------------------

  /// Read an object (checkParent first, then the read quorum).  Returns the
  /// object payload.  Throws AbortException on conflict.
  sim::Task<Bytes> read(ObjectId id);

  /// Acquire a writable copy (read-quorum fetch registering the transaction
  /// as a potential writer), returning the current payload.  A copy already
  /// in scope is upgraded locally.
  sim::Task<Bytes> read_for_write(ObjectId id);

  /// Buffer a new value for an object previously acquired with
  /// read_for_write (or created).  Purely local.
  void write(ObjectId id, Bytes data);

  /// Create a new object (fresh id, version 0 base); becomes visible to
  /// other transactions at commit.
  ObjectId create(Bytes data);

  /// Charge `cost` of application compute to the transaction (skipped while
  /// fast-forwarding a checkpoint replay).
  sim::Task<void> compute(sim::Tick cost);

  /// Run `body` as a closed-nested transaction under QR-CN; under flat and
  /// checkpointing modes the scope is flattened into this one (paper: flat
  /// nesting ignores inner transactions; QR-CHK transactions are flat with
  /// checkpoints).
  sim::Task<void> nested(TxnBody body);

  /// Run an open-nested operation (QR-ON): acquire its abstract locks, run
  /// and globally commit its body, and register its compensation with this
  /// root.  Only valid at root depth and outside checkpointing mode (a
  /// replayed partial rollback would re-commit the body).  Throws
  /// AbortException on unresolvable lock conflicts (the root retries after
  /// compensating earlier operations).
  sim::Task<void> open_nested(OpenOp op);

  // ----- introspection ---------------------------------------------------

  TxnId scope_id() const { return scope_id_; }
  std::uint32_t depth() const { return depth_; }
  bool is_root() const { return parent_ == nullptr; }
  TxnRuntime& runtime() { return rt_; }
  /// Workload randomness helper (deterministic per node).
  Rng& rng();

  std::size_t readset_size() const { return readset_.size(); }
  std::size_t writeset_size() const { return writeset_.size(); }
  ChkEpoch current_epoch() const { return epoch_; }
  std::uint64_t checkpoints_taken() const { return checkpoints_.size(); }

  /// The root's materialised Rqv data-set (what remote reads ship), exposed
  /// for tests asserting its shape (e.g. entry uniqueness after CT merges).
  const std::vector<DataSetEntry>& dataset_entries() const {
    return root().dataset_cache_;
  }

 private:
  friend class TxnRuntime;
  friend class BatchPlanner;

  struct Snapshot {
    ChkEpoch epoch = 0;
    std::uint64_t op_cursor = 0;  // op_seq at creation (replay fast-forward)
    std::uint32_t objs_since_chk = 0;
    std::size_t dataset_len = 0;  // materialised data-set length at creation
    std::unordered_map<ObjectId, OwnedCopy> readset;
    std::unordered_map<ObjectId, OwnedCopy> writeset;
  };

  /// QR-CHK replay support: the result of every operation is logged by op
  /// index.  When a rollback replays the body, operations below the
  /// checkpoint's cursor return their logged results and mutate nothing --
  /// the snapshot already contains all their effects -- which reproduces
  /// continuation-resume semantics exactly (no double-applied writes, no
  /// divergent reads).
  struct OpRecord {
    Bytes data;                             // read / read_for_write result
    ObjectId created = store::kNullObject;  // create() result
  };

  struct OpToken {
    std::uint64_t idx = 0;
    bool replay = false;  // fast-forwarding below replay_until_
  };

  /// Root-level operation bookkeeping (shared by all scopes of a tree).
  Txn& root();
  const Txn& root() const;

  /// Look up an object in this scope and its ancestors.  Returns nullptr if
  /// absent; `from_writeset` reports which set matched.
  const OwnedCopy* find_local(ObjectId id, bool* from_writeset) const;

  /// The full data-set (root..self) for Rqv.  Maintained incrementally on
  /// the root as objects enter the sets, so shipping it with every remote
  /// read is O(1) instead of an O(data-set) rebuild per fetch.
  const std::vector<DataSetEntry>& dataset() const {
    return root().dataset_cache_;
  }

  /// Record a set insertion in the root's materialised data-set.
  void dataset_append(ObjectId id, Version version, ChkEpoch chk) {
    root().dataset_cache_.push_back(
        DataSetEntry{id, version, scope_id_, depth_, chk});
  }

  /// Drop materialised entries appended at or after `len` (scope abort,
  /// checkpoint rollback, full reset).
  void dataset_truncate(std::size_t len) {
    Txn& r = root();
    QRDTM_DCHECK(len <= r.dataset_cache_.size());
    r.dataset_cache_.resize(len);
  }

  /// Fetch from the read quorum with Rqv; inserts into this scope's set.
  sim::Task<ObjectCopy> quorum_fetch(ObjectId id, bool for_write);

  /// quorum_fetch with the QR-Q batch cache in front: under kQueued the
  /// root's planner serves repeat touches locally at the speculative head
  /// and admits first touches after their (single) quorum fetch.
  sim::Task<ObjectCopy> acquire_copy(ObjectId id, bool for_write);

  /// QR-CHK: bump counters after a fetch and create a checkpoint when the
  /// threshold is crossed.
  sim::Task<void> after_fetch_chk();

  /// Count an operation; throws when the step guard trips.  Reports the op
  /// index and whether it falls inside a replay fast-forward window.
  OpToken begin_op();

  /// True while re-executing code between fast-forwarded operations; such
  /// code's writes were already captured by the restored snapshot.
  bool in_fast_forward() const;

  /// Store an operation result in the root's op log (QR-CHK only).
  void log_op(const OpToken& token, Bytes data, ObjectId created);

  void merge_into_parent();
  void reset_scope();       // discard this scope's sets (CT retry)
  void reset_full();        // root: discard everything (full abort)
  void rollback_to(ChkEpoch epoch);  // QR-CHK partial rollback

  TxnRuntime& rt_;
  Txn* parent_;
  TxnId scope_id_;
  std::uint32_t depth_;

  std::unordered_map<ObjectId, OwnedCopy> readset_;
  std::unordered_map<ObjectId, OwnedCopy> writeset_;

  /// Index into the root's dataset_cache_ at which this scope's entries
  /// start; everything at or beyond it is truncated if this scope aborts.
  std::size_t dataset_mark_ = 0;

  // --- root-only state ---
  /// QR-Q: set by the BatchPlanner while this root executes as a batch
  /// member; routes acquire_copy through the batch queue cache.
  BatchPlanner* batch_ = nullptr;
  /// Materialised Rqv data-set: one entry per set insertion anywhere in the
  /// scope tree, appended on fetch/create, owner-patched on CT merge, and
  /// truncated on scope abort / checkpoint rollback.  Entry order differs
  /// from a root->self set walk (it is chronological); that is harmless,
  /// replica validation is per-entry and order-independent (qr_server
  /// combines via shallowest-depth / min-epoch).  Object ids are unique:
  /// same-scope upgrades skip the re-append and merge_into_parent compacts
  /// the duplicate a CT upgrade of an ancestor's object would otherwise
  /// leave (keeping the ancestor's entry -- the shallowest owner is the
  /// scope abortClosed must name).
  std::vector<DataSetEntry> dataset_cache_;
  /// QR-ON: compensations for globally-committed open-nested bodies (run in
  /// reverse order if this root aborts) and the abstract locks held.
  std::vector<TxnBody> open_log_;
  std::vector<AbstractLockId> held_locks_;

  std::uint64_t op_seq_ = 0;
  std::uint64_t replay_until_ = 0;  // ops below this index are fast-forwarded
  std::uint64_t ops_this_attempt_ = 0;
  ChkEpoch epoch_ = 0;
  std::uint32_t objs_since_chk_ = 0;
  std::vector<Snapshot> checkpoints_;
  std::vector<OpRecord> op_log_;
};

/// Per-node client runtime: runs complete transactions with retry, 2PC
/// commit, and the mode-specific partial-abort handling.
class TxnRuntime {
 public:
  TxnRuntime(net::RpcEndpoint& rpc, quorum::QuorumProvider& quorums,
             Metrics& metrics, RuntimeConfig config, std::uint64_t seed);
  ~TxnRuntime();

  /// Execute `body` as one root transaction, retrying until it commits.
  /// Under kQueued the body is enqueued with this node's batch planner and
  /// commits as part of a speculative batch.
  sim::Task<void> run_transaction(TxnBody body);

  /// Execute and give up after `max_attempts` full aborts (0 = unlimited).
  /// Returns true on commit.
  sim::Task<bool> run_transaction_bounded(TxnBody body,
                                          std::uint32_t max_attempts) {
    return run_txn_impl(std::move(body), max_attempts,
                        /*count_commit=*/true);
  }

  /// Attach a timeout-based failure detector; every quorum RPC outcome is
  /// reported to it (nullptr = detection off).
  void set_failure_detector(FailureDetector* fd) { failure_detector_ = fd; }

  /// Attach a history recorder capturing every root commit's read/write
  /// versions plus abort and rollback events (nullptr = recording off).
  void set_history_recorder(HistoryRecorder* rec) { recorder_ = rec; }
  HistoryRecorder* history_recorder() { return recorder_; }

  /// Attach a trace recorder capturing structured spans (root transactions,
  /// attempts, CT scopes, checkpoints, quorum fetches, 2PC rounds) stamped
  /// with simulator ticks.  nullptr = tracing off: every site is a single
  /// pointer test and the simulated schedule is bit-identical.
  void set_trace_recorder(TraceRecorder* tracer) { tracer_ = tracer; }
  TraceRecorder* trace_recorder() { return tracer_; }

  /// Attach the fault-point registry so tests can steer the coordinator
  /// (e.g. suspend between gathering votes and sending the confirm --
  /// fp::kCommitBeforeConfirm).  nullptr = all points unarmed; the site is
  /// a pointer test plus one branch, so goldens are unaffected.
  void set_fault_points(FaultPointRegistry* faults) { faults_ = faults; }
  FaultPointRegistry* fault_points() { return faults_; }

  /// Always-on latency histograms for this node's client (commit latency,
  /// read RTT, backoff waits, abort-to-retry gaps).  Pure arithmetic on
  /// values the runtime already computes, so it cannot perturb the
  /// simulation.
  const LatencyMetrics& latency() const { return latency_; }

  const RuntimeConfig& config() const { return config_; }
  net::NodeId node() const { return rpc_.id(); }
  Metrics& metrics() { return metrics_; }
  Rng& rng() { return rng_; }
  sim::Simulator& simulator() { return rpc_.simulator(); }

  /// Allocate a globally unique object id (node-prefixed, no coordination).
  ObjectId allocate_object_id();

  /// QR-Q batch planner (nullptr unless config.mode == kQueued).
  BatchPlanner* planner() { return planner_.get(); }

  /// Attach the co-located replica's commit log so 2PC decisions are made
  /// durable before any confirm leaves this node (DESIGN.md §17).  nullptr
  /// (standalone rigs, durable logging off) = the pre-decision-record
  /// behaviour: confirms go out with no recovery re-drive.
  void set_local_log(store::CommitLog* log) { local_log_ = log; }
  store::CommitLog* local_log() { return local_log_; }

 private:
  friend class Txn;
  friend class BatchPlanner;

  TxnId next_scope_id() { return next_scope_id_++; }

  /// Shared driver behind run_transaction{,_bounded} and the QR-ON side
  /// transactions (open bodies / compensations, which must not inflate the
  /// root-commit count).
  sim::Task<bool> run_txn_impl(TxnBody body, std::uint32_t max_attempts,
                               bool count_commit);

  void report_rpc_outcome(net::NodeId member, bool ok) {
    if (failure_detector_ == nullptr) return;
    if (ok) {
      failure_detector_->report_success(member);
    } else {
      failure_detector_->report_timeout(member);
    }
  }

  /// Two-phase commit of the root scope against the write quorum.  Commits
  /// locally (no messages) for read-only roots under QR-CN.
  sim::Task<void> commit_root(Txn& root);

  /// QR-ON: after the root commits, release its abstract locks; after a
  /// root abort, run the registered compensations (reverse order, each as
  /// an independent committed transaction) and then release.
  sim::Task<void> finish_open(Txn& root, bool committed);

  /// Acquire one abstract lock at its home with bounded retries.
  sim::Task<void> acquire_abstract_lock(Txn& root, AbstractLockId lock);

  sim::Task<void> backoff(std::uint32_t attempt, TxnId txn);

  /// Append the committed root's observable behaviour to the recorder.
  void record_commit_history(const Txn& root);

  /// Memoised quorums, keyed on (generation, cohort): providers derive
  /// them deterministically from the live set, so recompute only when the
  /// provider's generation() moves (fail-stop / recovery).  The reference
  /// stays valid until the next call for the same cohort; commit paths
  /// that span suspension points take a copy.
  const std::vector<net::NodeId>& cohort_read_quorum(std::uint32_t cohort);
  const std::vector<net::NodeId>& cohort_write_quorum(std::uint32_t cohort);

  /// The read quorum for `id`'s cohort (single-cohort providers: cohort 0,
  /// the exact pre-shard quorum).
  const std::vector<net::NodeId>& read_quorum(ObjectId id);

  /// Sorted union of the write quorums of every cohort touched by `ids`.
  /// Returns a fresh copy (commit paths suspend while awaiting votes) and
  /// counts a cross-shard round when more than one cohort is involved.
  std::vector<net::NodeId> union_write_quorum(const std::vector<ObjectId>& ids);

  net::RpcEndpoint& rpc_;
  quorum::QuorumProvider& quorums_;
  Metrics& metrics_;
  std::unique_ptr<BatchPlanner> planner_;  // kQueued only
  store::CommitLog* local_log_ = nullptr;  // co-located replica's WAL
  FailureDetector* failure_detector_ = nullptr;
  HistoryRecorder* recorder_ = nullptr;
  TraceRecorder* tracer_ = nullptr;
  FaultPointRegistry* faults_ = nullptr;
  LatencyMetrics latency_;
  RuntimeConfig config_;
  Rng rng_;
  TxnId next_scope_id_;
  std::uint64_t next_object_seq_ = 1;

  struct CohortQuorum {
    std::uint64_t gen = ~0ULL;
    std::vector<net::NodeId> nodes;
  };
  std::vector<CohortQuorum> rq_cache_, wq_cache_;  // indexed by cohort
};

}  // namespace qrdtm::core
