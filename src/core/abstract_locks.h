// Abstract locks for open nesting (QR-ON).
//
// Open-nested transactions commit globally before their parent does, so
// memory-level validation can no longer protect the parent's semantics.
// Following TFA-ON (Turcu & Ravindran, SYSTOR'12 -- the open-nesting system
// the paper's related work cites), semantic isolation comes from *abstract
// locks*: an open-nested operation acquires a lock naming the semantic
// entity it touches (e.g. a hashmap key), holds it until the ROOT commits
// or is compensated, and thereby keeps other roots from observing or
// mutating the entity's intermediate state.
//
// Locks are distributed: lock ids hash to a home node whose LockManager
// arbitrates acquisition.  Acquisition is reentrant per root transaction.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "core/types.h"
#include "net/rpc.h"

namespace qrdtm::core {

using AbstractLockId = std::uint64_t;

namespace msg {
constexpr net::MsgKind kLockAcquire = 0x0110;
constexpr net::MsgKind kLockRelease = 0x0111;  // one-way
}  // namespace msg

/// Server-side lock table; one per node, arbitrating the lock ids homed
/// there.
class LockManager {
 public:
  explicit LockManager(net::RpcEndpoint& rpc);

  bool is_held(AbstractLockId lock) const { return holders_.contains(lock); }
  TxnId holder_of(AbstractLockId lock) const {
    auto it = holders_.find(lock);
    return it == holders_.end() ? 0 : it->second;
  }
  std::size_t held_count() const { return holders_.size(); }

 private:
  Bytes handle_acquire(const Bytes& req);
  void handle_release(const Bytes& req);

  std::map<AbstractLockId, TxnId> holders_;  // lock -> root transaction
};

/// Client helper: the home node arbitrating `lock` in an `n`-node cluster.
net::NodeId lock_home(AbstractLockId lock, std::uint32_t num_nodes);

}  // namespace qrdtm::core
