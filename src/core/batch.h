// QR-Q batch planner: queue-oriented speculative batch commit (kQueued).
//
// Q-Store-style execution (see PAPERS.md and DESIGN.md §13): instead of
// paying a full quorum round trip and abort/backoff cycle per transaction,
// the planner collects the transactions a node submits over a deterministic
// formation window, assigns them a seeded batch order, and executes them
// *speculatively* against a per-object queue cache:
//
//   * The first touch of an object fetches it once through the read quorum
//     (flat-style, no Rqv) and admits it to the batch cache; every later
//     touch by any member -- read or write -- is a local cache hit.  Hot
//     keys cost one quorum fetch per batch instead of one per transaction.
//   * Writes are absorbed in queue order: member i+1 reads member i's
//     speculative value, so intra-batch read-write conflicts are resolved
//     by ordering instead of abort+retry (Atomic RMI 2's a-priori order).
//   * The whole batch commits through one 2PC round against the write
//     quorum: one protected write-set push per cohort carrying, per object,
//     the quorum base version, the number of speculative steps, and the
//     final value (wire.h BatchWriteEntry).  Replicas apply base+steps.
//   * A failed vote names the stale objects; the planner drops only those
//     queues, re-fetches them on next touch, re-executes the bodies from
//     the refreshed cache (local, near-zero message cost) and re-votes.
//     One speculation_rollback is counted per discarded round.
//
// The planner is per-node (owned by the TxnRuntime) and purely
// deterministic: batch order comes from a seeded RNG split off the
// runtime's stream, and all waiting is simulated time.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "core/txn.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace qrdtm::core {

struct CommittedTxn;

class BatchPlanner {
 public:
  explicit BatchPlanner(TxnRuntime& rt);

  BatchPlanner(const BatchPlanner&) = delete;
  BatchPlanner& operator=(const BatchPlanner&) = delete;

  /// Enqueue one transaction body for the next batch.  The returned future
  /// resolves true when the batch containing the body commits, false when
  /// the member's attempt budget (`max_attempts`, 0 = unlimited) is
  /// exhausted by speculation rollbacks.
  sim::Future<bool> submit(TxnBody body, std::uint32_t max_attempts);

  /// Batch-cache read for an executing member: fills `out` with the current
  /// speculative copy (version = quorum base + absorbed writes).  False when
  /// the object is not cached yet (the caller quorum-fetches and admits).
  bool lookup(ObjectId id, ObjectCopy* out) const;

  /// Admit a quorum-fetched copy as a new per-object queue.
  void admit(const ObjectCopy& fetched);

  /// Transactions waiting for the next batch (test observability).
  std::size_t pending() const { return pending_.size(); }

 private:
  struct Pending {
    TxnBody body;
    sim::Promise<bool> done;
    std::uint32_t max_attempts = 0;
    sim::Tick enqueue_tick = 0;
  };

  /// One per-object queue, collapsed: the quorum base plus the speculative
  /// head after `steps` absorbed writes.
  struct BatchObject {
    Version base = 0;
    std::uint32_t steps = 0;  // writes absorbed this round
    Bytes base_data;          // value at `base` (restored on rollback)
    Bytes data;               // current speculative value
    bool written = false;
    bool fetched = false;  // false = created inside the batch
  };

  /// Formation/execution loop: waits one window, then drains pending
  /// transactions batch by batch until none remain.
  sim::Task<void> run_loop();

  /// Execute `batch` speculatively and commit it through batch 2PC,
  /// retrying on rollback; resolves every member's promise.
  sim::Task<void> run_batch(std::vector<Pending> batch);

  /// One batch 2PC round.  Returns true on commit; on abort fills `stale`
  /// with the union of replica-reported stale ids (empty = diagnose
  /// nothing, invalidate everything).
  sim::Task<bool> commit_round(TxnId batch_id, std::vector<ObjectId>* stale);

  /// Fold one executed member's sets into the queue cache (and, when a
  /// recorder is attached, into the member's pending commit record).
  void absorb(Txn& txn, std::vector<CommittedTxn>* records);

  /// Roll the cache back after a failed round: drop stale and created
  /// entries, restore the rest to their quorum base.
  void rollback_cache(const std::vector<ObjectId>& stale);

  TxnRuntime& rt_;
  Rng order_rng_;  // batch-order shuffle; split off the runtime stream
  std::vector<Pending> pending_;
  bool loop_active_ = false;

  std::unordered_map<ObjectId, BatchObject> objects_;
  std::vector<ObjectId> order_;  // cache admission order (deterministic)
};

}  // namespace qrdtm::core
