// Cluster -- the public facade of qrdtm.
//
// A Cluster assembles one simulated QR-DTM deployment: the DES kernel, the
// network (latency model + per-node service queues), one replica server and
// one transaction runtime per node, and the quorum provider.  It is the
// entry point examples and benchmarks use:
//
//   core::ClusterConfig cfg;
//   cfg.runtime.mode = core::NestingMode::kClosed;
//   core::Cluster cluster(cfg);
//   auto acct = cluster.seed_new_object(encode_account(100));
//   cluster.spawn_client(0, [&](core::Txn& t) -> sim::Task<void> { ... });
//   cluster.run_for(sim::sec(10));
//   std::cout << cluster.metrics().throughput(cluster.duration());
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/abstract_locks.h"
#include "core/failure_detector.h"
#include "core/metrics.h"
#include "core/qr_server.h"
#include "core/txn.h"
#include "net/network.h"
#include "net/rpc.h"
#include "quorum/quorum.h"
#include "sim/simulator.h"

namespace qrdtm::core {

enum class QuorumKind {
  kTree,              // Agrawal-El Abbadi ternary tree (paper default)
  kMajority,          // plain majorities (ablation)
  kFlatFailureAware,  // Fig. 10 policy
  kSharded,           // partial replication over quorum cohorts
};

struct ClusterConfig {
  std::uint32_t num_nodes = 13;
  std::uint64_t seed = 1;

  RuntimeConfig runtime;

  QuorumKind quorum = QuorumKind::kTree;
  std::uint32_t tree_degree = 3;
  std::uint32_t tree_read_level = 1;
  bool same_quorums_for_all = true;  // the paper's experimental setting

  /// kSharded only: cohort count (objects hash to cohorts via CohortMap)
  /// and replicas per cohort.  Each cohort runs its own inner tree (the
  /// default) or majority quorum structure over `cohort_size` consecutive
  /// nodes; an object lives on exactly its cohort's members.
  std::uint32_t num_shards = 16;
  std::uint32_t cohort_size = 13;
  /// kSharded only: use majority quorums inside each cohort instead of the
  /// ternary tree (no single root, so any minority of a cohort can die
  /// without losing its write quorum -- what the chaos fuzzer wants).
  bool sharded_majority_inner = false;

  /// One-way link latency and jitter.  The default reproduces the paper's
  /// testbed: ~30 ms observed round trip for a (multicast) remote request.
  sim::Tick link_latency = sim::msec(12);
  sim::Tick link_jitter = sim::msec(5);
  /// cc DTM assumes a metric-space network (paper §I).  When true, nodes
  /// are placed on a unit square and one-way latency is
  /// link_latency + distance * metric_scale (+ jitter) instead of uniform.
  bool metric_space = false;
  sim::Tick metric_scale = sim::msec(20);
  /// Per-message processing time at a replica (drives the Fig. 10 hotspot
  /// behaviour).
  sim::Tick service_time = sim::usec(60);

  /// Timeout-based failure detection: after this many consecutive RPC
  /// timeouts from one node, quorums reconfigure around it.  0 disables
  /// detection (the paper's experiments assume failures are known; see
  /// kill_node).  Suspicion is rescindable: a successful reply from a
  /// suspected node re-admits it (no catch-up needed -- it never lost
  /// state).
  std::uint32_t failure_detection_threshold = 0;

  /// Coordinator-liveness lease on 2PC protections: a replica sheds a
  /// protection held longer than this (its coordinator died between vote
  /// and confirm) instead of wedging later writers forever.  The check is
  /// lazy tick arithmetic on the conflict path, so the default costs
  /// nothing in healthy runs -- a legitimate vote->confirm gap is bounded
  /// by one one-way latency plus queueing, orders of magnitude below this.
  /// 0 disables shedding.
  sim::Tick protection_lease = sim::sec(5);

  /// Test-only: replicas vote commit without validating (see
  /// QrServer::set_validation_disabled_for_test).  The fuzz harness uses it
  /// to prove the history checker catches serializability violations.
  bool test_skip_commit_validation = false;

  /// Per-node durable commit/checkpoint logging (store::CommitLog).  On
  /// (default): a crash wipes the replica's whole in-memory store, recovery
  /// replays the local log and anti-entropy pulls only a version-bounded
  /// delta.  Off: the PR-5 model -- committed versions survive the crash
  /// in place and recovery full-pulls a read quorum.
  bool durable_log = true;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // ----- setup ------------------------------------------------------------

  /// Install an object replica on every node that replicates it (every
  /// node under full replication; the object's cohort members under
  /// kSharded), bypassing the protocol.  Call before running.
  void seed_object(ObjectId id, const Bytes& data, Version version = 1);

  /// Allocate a fresh setup-time id and seed it everywhere.
  ObjectId seed_new_object(const Bytes& data);

  /// Attach a history recorder to every runtime (and future seed_object
  /// calls).  Attach before seeding so initial versions are captured;
  /// nullptr detaches.
  void set_history_recorder(HistoryRecorder* recorder);

  /// Attach a trace recorder (qrdtm-trace) to every runtime and replica
  /// server; nullptr detaches (the default -- tracing off keeps the
  /// simulated schedule bit-identical to the determinism goldens).
  void set_trace_recorder(TraceRecorder* tracer);

  // ----- running work -----------------------------------------------------

  /// Spawn a client process on `node` that runs `body` as one transaction
  /// (with retry until commit) and then terminates.
  void spawn_client(net::NodeId node, TxnBody body);

  /// Spawn a closed-loop client on `node`: repeatedly draws a transaction
  /// body from `factory` and commits it, with `think_time` between
  /// transactions, until the simulation deadline.
  using BodyFactory = std::function<TxnBody(Rng&)>;
  void spawn_loop_client(net::NodeId node, BodyFactory factory,
                         sim::Tick think_time = 0);

  /// Run the simulation for `duration` simulated time and mark it stopping
  /// (loop clients wind down afterwards).
  void run_for(sim::Tick duration);

  /// Run for `duration` WITHOUT stopping loop clients -- for sampling state
  /// between phases (e.g. injected failures).
  void advance_for(sim::Tick duration);

  /// Drain every pending event (used by setup-free unit tests).
  void run_to_completion();

  // ----- fault injection --------------------------------------------------

  /// Fail-stop `node`.  With `notify_provider` (the paper §VI-D model)
  /// quorums reconfigure immediately; without it the failure is silent and
  /// must be discovered by the timeout-based failure detector (if enabled).
  void kill_node(net::NodeId node, bool notify_provider = true);

  /// Restart a killed node and bring it back into service:
  ///   1. revive the network endpoint (a fresh incarnation: pre-crash
  ///      traffic is dropped by the liveness-epoch check),
  ///   2. crash-wipe the replica: under durable logging the whole in-memory
  ///      store is lost and rebuilt by replaying the node's commit log
  ///      (image + tail, fp::kRecoverySkipReplay skips it); without it only
  ///      volatile 2PC state (protections, PR/PW) is wiped and committed
  ///      versions survive in place,
  ///   3. mark the replica *syncing* (it refuses reads/votes), and
  ///   4. spawn an anti-entropy catch-up: pull from a full read quorum of
  ///      live nodes -- version-bounded (the request carries the replayed
  ///      versions, peers ship only strictly-newer copies) under durable
  ///      logging, the full store otherwise -- install strictly-newer
  ///      versions, cut a post-sync checkpoint so the delta is durable,
  ///      then re-admit the node via QuorumProvider::on_recovery.
  /// Ordering matters for safety: by Q1 some read-quorum member holds every
  /// committed version, so once the pull completes the rejoining replica is
  /// current and may count toward quorums again; re-admitting before the
  /// pull could hand a read quorum a stale copy.  No-op on a live node.
  void recover_node(net::NodeId node);

  /// Take a checkpoint cut on `node`'s commit log (compact image, discard
  /// tail, carry in-flight prepares).  Chaos schedules and tests drive
  /// cuts; nothing cuts automatically.  No-op on a dead node.
  void cut_checkpoint(net::NodeId node);

  /// Nodes the timeout-based detector has suspected so far (0 when
  /// detection is disabled).
  std::size_t suspected_nodes() const;

  // ----- accessors ----------------------------------------------------------

  sim::Simulator& simulator() { return sim_; }
  net::Network& network() { return *net_; }
  /// The cluster-wide fault-point registry (core/faultpoint.h), already
  /// attached to every server and runtime; its panic handler is wired to
  /// kill_node.  Arm points here, then resume() suspended coroutines.
  FaultPointRegistry& fault_points() { return faults_; }
  quorum::QuorumProvider& quorums() { return *quorums_; }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }
  TxnRuntime& runtime(net::NodeId node);
  QrServer& server(net::NodeId node);
  LockManager& lock_manager(net::NodeId node);

  /// Cluster-wide latency view: every node's always-on histograms merged
  /// (commit latency, read RTT, backoff waits, retry gaps).
  LatencyMetrics merged_latency() const;
  /// One node's latency histograms.
  const LatencyMetrics& node_latency(net::NodeId node) const;
  std::uint32_t num_nodes() const { return cfg_.num_nodes; }
  const ClusterConfig& config() const { return cfg_; }

  /// Simulated time consumed by run_for calls so far.
  sim::Tick duration() const { return sim_.now(); }

 private:
  sim::Task<void> recover_task(net::NodeId node);

  ClusterConfig cfg_;
  sim::Simulator sim_;
  FaultPointRegistry faults_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<quorum::QuorumProvider> quorums_;
  Metrics metrics_;
  std::vector<std::unique_ptr<net::RpcEndpoint>> endpoints_;
  std::vector<std::unique_ptr<QrServer>> servers_;
  std::vector<std::unique_ptr<LockManager>> lock_managers_;
  std::vector<std::unique_ptr<TxnRuntime>> runtimes_;
  std::unique_ptr<FailureDetector> failure_detector_;
  HistoryRecorder* recorder_ = nullptr;
  ObjectId next_setup_id_ = 1;
};

}  // namespace qrdtm::core
