#include "core/history.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <functional>
#include <iterator>
#include <queue>
#include <utility>

namespace qrdtm::core {

namespace {

constexpr std::size_t kInitTxn = ~std::size_t{0};  // seeds' virtual writer

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n), sizeof buf - 1));
}

std::string describe(const std::vector<CommittedTxn>& txns, std::size_t i) {
  if (i == kInitTxn) return "<seed>";
  std::string s;
  const CommittedTxn& t = txns[i];
  appendf(s, "txn #%zu (id 0x%llx, node %u, t=%.3f ms)", i,
          static_cast<unsigned long long>(t.txn), t.node,
          static_cast<double>(t.commit_tick) * 1e-6);
  return s;
}

/// One installed version in an object's chain.
struct ChainEntry {
  std::size_t writer = kInitTxn;  // index into committed(), or kInitTxn
  Version base = 0;
  const Bytes* data = nullptr;
};

}  // namespace

void HistoryRecorder::record_rollback(sim::Tick tick, net::NodeId node,
                                      TxnId txn, ChkEpoch target) {
  std::string detail;
  appendf(detail, "partial rollback to epoch %llu",
          static_cast<unsigned long long>(target));
  events_.push_back(HistoryEvent{HistoryEvent::Kind::kRollback, tick, node,
                                 txn, std::move(detail)});
}

void HistoryRecorder::record_batch(sim::Tick tick, net::NodeId node,
                                   TxnId batch, std::size_t size) {
  std::string detail;
  appendf(detail, "batch committed (%zu txns)", size);
  events_.push_back(HistoryEvent{HistoryEvent::Kind::kBatch, tick, node, batch,
                                 std::move(detail)});
}

std::string HistoryRecorder::dump() const {
  std::string out;
  for (const auto& [id, seed] : seeds_) {
    appendf(out, "seed     o=%llu v=%llu bytes=%zu\n",
            static_cast<unsigned long long>(id),
            static_cast<unsigned long long>(seed.version), seed.data.size());
  }
  // Commits (already in commit-tick order) merged with the event stream.
  std::size_t ci = 0, ei = 0;
  auto emit_commit = [&] {
    const CommittedTxn& t = committed_[ci];
    appendf(out, "[%12.6f ms] commit  #%zu id=0x%llx node=%u",
            static_cast<double>(t.commit_tick) * 1e-6, ci,
            static_cast<unsigned long long>(t.txn), t.node);
    if (t.snapshot != 0) {
      appendf(out, " snap=%llu", static_cast<unsigned long long>(t.snapshot));
    }
    out += " reads{";
    for (const HistoryRead& r : t.reads) {
      appendf(out, " %llu@%llu", static_cast<unsigned long long>(r.id),
              static_cast<unsigned long long>(r.version));
    }
    out += " } writes{";
    for (const HistoryWrite& w : t.writes) {
      appendf(out, " %llu:%llu->%llu", static_cast<unsigned long long>(w.id),
              static_cast<unsigned long long>(w.base),
              static_cast<unsigned long long>(w.installed));
    }
    out += " }\n";
    ++ci;
  };
  auto emit_event = [&] {
    const HistoryEvent& e = events_[ei];
    const char* kind = e.kind == HistoryEvent::Kind::kAbort      ? "abort"
                       : e.kind == HistoryEvent::Kind::kRollback ? "rollbk"
                       : e.kind == HistoryEvent::Kind::kBatch    ? "batch"
                                                                 : "fault";
    appendf(out, "[%12.6f ms] %-7s", static_cast<double>(e.tick) * 1e-6, kind);
    if (e.kind != HistoryEvent::Kind::kFault) {
      appendf(out, " id=0x%llx node=%u", static_cast<unsigned long long>(e.txn),
              e.node);
    }
    appendf(out, " %s\n", e.detail.c_str());
    ++ei;
  };
  while (ci < committed_.size() || ei < events_.size()) {
    if (ei >= events_.size() ||
        (ci < committed_.size() &&
         committed_[ci].commit_tick <= events_[ei].tick)) {
      emit_commit();
    } else {
      emit_event();
    }
  }
  return out;
}

bool HistoryRecorder::dump_to_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = dump();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

CheckResult check_history(const HistoryRecorder& history, CheckLevel level) {
  CheckResult result;
  const std::vector<CommittedTxn>& txns = history.committed();
  result.committed = txns.size();

  auto fail = [&](std::string report) {
    result.ok = false;
    result.report = std::move(report);
    return result;
  };
  auto who = [&](std::size_t i) { return describe(txns, i); };

  // ---- step 1: assemble per-object version chains -------------------------
  std::map<ObjectId, std::map<Version, ChainEntry>> chains;
  for (const auto& [id, seed] : history.seeds()) {
    chains[id][seed.version] = ChainEntry{kInitTxn, 0, &seed.data};
  }
  for (std::size_t i = 0; i < txns.size(); ++i) {
    for (const HistoryWrite& w : txns[i].writes) {
      std::string r;
      if (w.installed == 0) {
        appendf(r, "VIOLATION (null install): %s installed version 0 of o=%llu",
                who(i).c_str(), static_cast<unsigned long long>(w.id));
        return fail(std::move(r));
      }
      auto& chain = chains[w.id];
      if (auto it = chain.find(w.installed); it != chain.end()) {
        appendf(r,
                "VIOLATION (duplicate install): %s and %s both installed "
                "o=%llu v=%llu -- two commits claimed the same version slot",
                who(it->second.writer).c_str(), who(i).c_str(),
                static_cast<unsigned long long>(w.id),
                static_cast<unsigned long long>(w.installed));
        return fail(std::move(r));
      }
      chain[w.installed] = ChainEntry{i, w.base, &w.data};
    }
  }
  // First-committer-wins: every write's base must be the immediate chain
  // predecessor of the version it installed.  A gap means the writer did not
  // observe (and so did not validate against) the latest committed state --
  // the classic lost update.
  for (const auto& [obj, chain] : chains) {
    Version prev = 0;
    for (const auto& [ver, entry] : chain) {
      if (entry.writer == kInitTxn) {
        if (prev != 0) {
          std::string r;
          appendf(r,
                  "VIOLATION (write below seed): o=%llu v=%llu was installed "
                  "below the seed version %llu",
                  static_cast<unsigned long long>(obj),
                  static_cast<unsigned long long>(prev),
                  static_cast<unsigned long long>(ver));
          return fail(std::move(r));
        }
      } else if (entry.base != prev) {
        std::string r;
        appendf(r,
                "VIOLATION (lost update): %s installed o=%llu v=%llu over "
                "base %llu, but the chain predecessor is v=%llu",
                who(entry.writer).c_str(),
                static_cast<unsigned long long>(obj),
                static_cast<unsigned long long>(ver),
                static_cast<unsigned long long>(entry.base),
                static_cast<unsigned long long>(prev));
        if (prev != 0) {
          const ChainEntry& p = chain.at(prev);
          appendf(r, " (installed by %s)", who(p.writer).c_str());
        }
        return fail(std::move(r));
      }
      prev = ver;
    }
  }

  // ---- step 2: every read saw a version that exists -----------------------
  for (std::size_t i = 0; i < txns.size(); ++i) {
    for (const HistoryRead& r : txns[i].reads) {
      const auto cit = chains.find(r.id);
      if (cit == chains.end() || cit->second.find(r.version) == cit->second.end()) {
        std::string msg;
        appendf(msg,
                "VIOLATION (phantom read): %s read o=%llu v=%llu, a version "
                "no seed or committed write ever installed",
                who(i).c_str(), static_cast<unsigned long long>(r.id),
                static_cast<unsigned long long>(r.version));
        return fail(std::move(msg));
      }
      if (level == CheckLevel::kSnapshotReads && txns[i].snapshot != 0 &&
          r.version > txns[i].snapshot) {
        std::string msg;
        appendf(msg,
                "VIOLATION (read above snapshot): %s pinned snapshot %llu but "
                "read o=%llu v=%llu",
                who(i).c_str(),
                static_cast<unsigned long long>(txns[i].snapshot),
                static_cast<unsigned long long>(r.id),
                static_cast<unsigned long long>(r.version));
        return fail(std::move(msg));
      }
    }
  }

  if (level == CheckLevel::kSnapshotReads) return result;

  // ---- step 3: multi-version serialization graph --------------------------
  const std::size_t n = txns.size();
  enum class EdgeType : std::uint8_t { kWr, kWw, kRw };
  struct Edge {
    std::size_t to;
    EdgeType type;
    ObjectId obj;
    Version ver;  // the version the edge is anchored on
  };
  std::vector<std::vector<Edge>> adj(n);
  std::vector<std::size_t> indeg(n, 0);
  auto add_edge = [&](std::size_t from, std::size_t to, EdgeType t,
                      ObjectId obj, Version ver) {
    if (from == kInitTxn || to == kInitTxn || from == to) return;
    adj[from].push_back(Edge{to, t, obj, ver});
    ++indeg[to];
  };

  // Readers per (object, version).  A write's base is an implicit read: the
  // writer observed `base` via read_for_write and its commit validated it.
  std::map<std::pair<ObjectId, Version>, std::vector<std::size_t>> readers;
  for (std::size_t i = 0; i < n; ++i) {
    for (const HistoryRead& r : txns[i].reads) {
      readers[{r.id, r.version}].push_back(i);
    }
    for (const HistoryWrite& w : txns[i].writes) {
      if (w.base == 0) continue;  // create: nothing was observed
      auto& v = readers[{w.id, w.base}];
      if (v.empty() || v.back() != i) v.push_back(i);
    }
  }
  static const std::vector<std::size_t> kNoReaders;
  auto readers_of = [&](ObjectId obj, Version ver) -> const std::vector<std::size_t>& {
    const auto it = readers.find({obj, ver});
    return it == readers.end() ? kNoReaders : it->second;
  };

  for (const auto& [obj, chain] : chains) {
    // wr: installer -> every reader of that version.
    for (const auto& [ver, entry] : chain) {
      for (std::size_t r : readers_of(obj, ver)) {
        add_edge(entry.writer, r, EdgeType::kWr, obj, ver);
      }
    }
    // ww / rw along consecutive chain versions.
    auto it = chain.begin();
    if (it == chain.end()) continue;
    auto next = std::next(it);
    for (; next != chain.end(); ++it, ++next) {
      add_edge(it->second.writer, next->second.writer, EdgeType::kWw, obj,
               it->first);
      for (std::size_t r : readers_of(obj, it->first)) {
        add_edge(r, next->second.writer, EdgeType::kRw, obj, it->first);
      }
    }
  }

  // ---- step 4: topological order (Kahn) + certifying replay ---------------
  std::vector<std::size_t> order;
  order.reserve(n);
  {
    std::priority_queue<std::size_t, std::vector<std::size_t>,
                        std::greater<std::size_t>>
        ready;
    std::vector<std::size_t> left = indeg;
    for (std::size_t i = 0; i < n; ++i) {
      if (left[i] == 0) ready.push(i);
    }
    while (!ready.empty()) {
      const std::size_t i = ready.top();
      ready.pop();
      order.push_back(i);
      for (const Edge& e : adj[i]) {
        if (--left[e.to] == 0) ready.push(e.to);
      }
    }
    if (order.size() != n) {
      // Cycle: extract one from the residual graph (nodes with left > 0).
      std::vector<std::uint8_t> color(n, 0);  // 0 white, 1 on stack, 2 done
      std::vector<std::size_t> stack, cycle;
      std::vector<std::size_t> edge_pos(n, 0);
      for (std::size_t s = 0; s < n && cycle.empty(); ++s) {
        if (left[s] == 0 || color[s] != 0) continue;
        stack.push_back(s);
        color[s] = 1;
        while (!stack.empty() && cycle.empty()) {
          const std::size_t u = stack.back();
          bool advanced = false;
          while (edge_pos[u] < adj[u].size()) {
            const Edge& e = adj[u][edge_pos[u]++];
            if (left[e.to] == 0) continue;  // already serialized: acyclic part
            if (color[e.to] == 1) {
              // Found a back edge: unwind the stack down to e.to.
              auto at = std::find(stack.begin(), stack.end(), e.to);
              cycle.assign(at, stack.end());
              break;
            }
            if (color[e.to] == 0) {
              color[e.to] = 1;
              stack.push_back(e.to);
              advanced = true;
              break;
            }
          }
          if (!cycle.empty()) break;
          if (!advanced && !stack.empty() && stack.back() == u) {
            color[u] = 2;
            stack.pop_back();
          }
        }
      }
      std::string msg =
          "VIOLATION (serialization cycle): no serial order explains these "
          "committed transactions --\n";
      for (std::size_t k = 0; k < cycle.size(); ++k) {
        const std::size_t from = cycle[k];
        const std::size_t to = cycle[(k + 1) % cycle.size()];
        // Find one edge from -> to for the label.
        const Edge* label = nullptr;
        for (const Edge& e : adj[from]) {
          if (e.to == to) {
            label = &e;
            break;
          }
        }
        appendf(msg, "  %s", who(from).c_str());
        if (label != nullptr) {
          const char* t = label->type == EdgeType::kWr   ? "wr"
                          : label->type == EdgeType::kWw ? "ww"
                                                         : "rw";
          appendf(msg, " --%s(o=%llu@v%llu)--> ", t,
                  static_cast<unsigned long long>(label->obj),
                  static_cast<unsigned long long>(label->ver));
        } else {
          msg += " --> ";
        }
        appendf(msg, "%s\n", who(to).c_str());
      }
      return fail(std::move(msg));
    }
  }

  // Replay the topological order against a single sequential store.  Every
  // recorded read must return exactly the current version -- this certifies
  // the order found in step 4 IS a 1-copy serial execution.
  std::map<ObjectId, std::pair<Version, const Bytes*>> ref;
  for (const auto& [id, seed] : history.seeds()) {
    ref[id] = {seed.version, &seed.data};
  }
  auto current_version = [&](ObjectId id) -> Version {
    const auto it = ref.find(id);
    return it == ref.end() ? 0 : it->second.first;
  };
  for (std::size_t i : order) {
    for (const HistoryRead& r : txns[i].reads) {
      if (current_version(r.id) != r.version) {
        std::string msg;
        appendf(msg,
                "VIOLATION (replay mismatch): in the derived serial order, %s "
                "reads o=%llu v=%llu but the reference store holds v=%llu",
                who(i).c_str(), static_cast<unsigned long long>(r.id),
                static_cast<unsigned long long>(r.version),
                static_cast<unsigned long long>(current_version(r.id)));
        return fail(std::move(msg));
      }
    }
    for (const HistoryWrite& w : txns[i].writes) {
      if (current_version(w.id) != w.base) {
        std::string msg;
        appendf(msg,
                "VIOLATION (replay mismatch): in the derived serial order, %s "
                "writes o=%llu over base %llu but the reference store holds "
                "v=%llu",
                who(i).c_str(), static_cast<unsigned long long>(w.id),
                static_cast<unsigned long long>(w.base),
                static_cast<unsigned long long>(current_version(w.id)));
        return fail(std::move(msg));
      }
      ref[w.id] = {w.installed, &w.data};
    }
  }
  for (const auto& [id, entry] : ref) {
    result.final_state[id] =
        HistoryRecorder::SeedEntry{entry.first, *entry.second};
  }
  return result;
}

}  // namespace qrdtm::core
