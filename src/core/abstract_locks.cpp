#include "core/abstract_locks.h"

#include "common/serde.h"

namespace qrdtm::core {

LockManager::LockManager(net::RpcEndpoint& rpc) {
  rpc.register_service(
      msg::kLockAcquire,
      [this](net::NodeId, const Bytes& b) -> std::optional<Bytes> {
        return handle_acquire(b);
      });
  rpc.register_service(
      msg::kLockRelease,
      [this](net::NodeId, const Bytes& b) -> std::optional<Bytes> {
        handle_release(b);
        return std::nullopt;
      });
}

Bytes LockManager::handle_acquire(const Bytes& req) {
  Reader r(req);
  AbstractLockId lock = r.u64();
  TxnId root = r.u64();
  r.expect_done();

  bool granted = false;
  auto it = holders_.find(lock);
  if (it == holders_.end()) {
    holders_[lock] = root;
    granted = true;
  } else if (it->second == root) {
    granted = true;  // reentrant
  }
  Writer w;
  w.boolean(granted);
  return std::move(w).take();
}

void LockManager::handle_release(const Bytes& req) {
  Reader r(req);
  AbstractLockId lock = r.u64();
  TxnId root = r.u64();
  auto it = holders_.find(lock);
  if (it != holders_.end() && it->second == root) {
    holders_.erase(it);
  }
}

net::NodeId lock_home(AbstractLockId lock, std::uint32_t num_nodes) {
  return static_cast<net::NodeId>((lock * 0x9e3779b97f4a7c15ULL >> 33) %
                                  num_nodes);
}

}  // namespace qrdtm::core
