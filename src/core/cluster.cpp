#include "core/cluster.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "core/history.h"
#include "net/latency.h"

namespace qrdtm::core {

Cluster::Cluster(ClusterConfig cfg) : cfg_(cfg) {
  Rng seeder(cfg_.seed);

  faults_.set_simulator(&sim_);
  // A kPanic point is a crash exactly at its protocol boundary.
  faults_.set_panic_handler([this](net::NodeId node) { kill_node(node); });

  // Unless the caller overrode it, charge committing clients the worst-case
  // one-way confirm propagation so back-to-back transactions do not race
  // their own confirms.
  if (cfg_.runtime.commit_settle == 0) {
    cfg_.runtime.commit_settle = cfg_.link_latency + cfg_.link_jitter;
  }

  std::unique_ptr<net::LatencyModel> latency;
  if (cfg_.metric_space) {
    latency = std::make_unique<net::GridLatency>(
        cfg_.num_nodes, cfg_.link_latency, cfg_.metric_scale, seeder.next(),
        cfg_.link_jitter);
  } else {
    latency = std::make_unique<net::UniformLatency>(cfg_.link_latency,
                                                    cfg_.link_jitter);
  }
  net_ = std::make_unique<net::Network>(sim_, std::move(latency),
                                        seeder.next(), cfg_.service_time);

  switch (cfg_.quorum) {
    case QuorumKind::kTree: {
      quorum::TreeQuorumProvider::Config qc;
      qc.num_nodes = cfg_.num_nodes;
      qc.degree = cfg_.tree_degree;
      qc.read_level = cfg_.tree_read_level;
      qc.same_for_all = cfg_.same_quorums_for_all;
      quorums_ = std::make_unique<quorum::TreeQuorumProvider>(qc);
      break;
    }
    case QuorumKind::kMajority:
      quorums_ = std::make_unique<quorum::MajorityQuorumProvider>(
          cfg_.num_nodes, cfg_.same_quorums_for_all);
      break;
    case QuorumKind::kFlatFailureAware:
      quorums_ =
          std::make_unique<quorum::FlatFailureAwareProvider>(cfg_.num_nodes);
      break;
    case QuorumKind::kSharded: {
      quorum::ShardedQuorumProvider::Config sc;
      sc.num_nodes = cfg_.num_nodes;
      sc.num_shards = cfg_.num_shards;
      sc.cohort_size = cfg_.cohort_size;
      sc.inner = cfg_.sharded_majority_inner
                     ? quorum::ShardedQuorumProvider::Inner::kMajority
                     : quorum::ShardedQuorumProvider::Inner::kTree;
      sc.tree_degree = cfg_.tree_degree;
      sc.tree_read_level = cfg_.tree_read_level;
      sc.same_for_all = cfg_.same_quorums_for_all;
      quorums_ = std::make_unique<quorum::ShardedQuorumProvider>(sc);
      break;
    }
  }

  if (cfg_.failure_detection_threshold > 0) {
    failure_detector_ = std::make_unique<FailureDetector>(
        cfg_.failure_detection_threshold,
        [this](net::NodeId suspect) { quorums_->on_failure(suspect); },
        // Rescind: the node answered after all, so it never lost state and
        // can rejoin quorums without a catch-up pull.
        [this](net::NodeId node) { quorums_->on_recovery(node); });
  }

  endpoints_.reserve(cfg_.num_nodes);
  servers_.reserve(cfg_.num_nodes);
  runtimes_.reserve(cfg_.num_nodes);
  for (std::uint32_t i = 0; i < cfg_.num_nodes; ++i) {
    endpoints_.push_back(std::make_unique<net::RpcEndpoint>(sim_, *net_));
    QRDTM_CHECK(endpoints_.back()->id() == i);
    servers_.push_back(std::make_unique<QrServer>(*endpoints_.back()));
    lock_managers_.push_back(
        std::make_unique<LockManager>(*endpoints_.back()));
    runtimes_.push_back(std::make_unique<TxnRuntime>(
        *endpoints_.back(), *quorums_, metrics_, cfg_.runtime,
        seeder.next()));
    runtimes_.back()->set_failure_detector(failure_detector_.get());
    runtimes_.back()->set_fault_points(&faults_);
    servers_.back()->set_protection_lease(cfg_.protection_lease);
    servers_.back()->set_fault_points(&faults_);
    servers_.back()->set_durable_log(cfg_.durable_log);
    servers_.back()->set_quorum_provider(quorums_.get());
    servers_.back()->set_metrics(&metrics_);
    servers_.back()->set_max_tail_bytes(cfg_.runtime.log_max_tail_bytes);
    if (cfg_.durable_log) {
      // Coordinator decision records (DESIGN.md §17) share the co-located
      // replica's WAL, so a node restart recovers both roles together.
      runtimes_.back()->set_local_log(&servers_.back()->commit_log());
    }
    if (cfg_.test_skip_commit_validation) {
      servers_.back()->set_validation_disabled_for_test(true);
    }
  }
}

void Cluster::set_history_recorder(HistoryRecorder* recorder) {
  recorder_ = recorder;
  for (auto& rt : runtimes_) {
    rt->set_history_recorder(recorder);
  }
}

void Cluster::set_trace_recorder(TraceRecorder* tracer) {
  for (auto& rt : runtimes_) {
    rt->set_trace_recorder(tracer);
  }
  for (auto& server : servers_) {
    server->set_trace_recorder(tracer);
  }
}

LatencyMetrics Cluster::merged_latency() const {
  LatencyMetrics merged;
  for (const auto& rt : runtimes_) {
    merged.merge(rt->latency());
  }
  return merged;
}

const LatencyMetrics& Cluster::node_latency(net::NodeId node) const {
  QRDTM_CHECK(node < runtimes_.size());
  return runtimes_[node]->latency();
}

void Cluster::seed_object(ObjectId id, const Bytes& data, Version version) {
  for (auto& server : servers_) {
    // Only the object's replicas hold it (everyone under full replication,
    // the cohort's members under kSharded).  Through the server so the seed
    // lands in the commit log too: a node that crashes before its first
    // checkpoint cut must replay its seeds.
    if (!quorums_->replicates(server->id(), id)) continue;
    server->seed_object(id, data, version);
  }
  if (recorder_ != nullptr) recorder_->record_seed(id, version, data);
}

ObjectId Cluster::seed_new_object(const Bytes& data) {
  ObjectId id = next_setup_id_++;
  seed_object(id, data);
  return id;
}

TxnRuntime& Cluster::runtime(net::NodeId node) {
  QRDTM_CHECK(node < runtimes_.size());
  return *runtimes_[node];
}

QrServer& Cluster::server(net::NodeId node) {
  QRDTM_CHECK(node < servers_.size());
  return *servers_[node];
}

LockManager& Cluster::lock_manager(net::NodeId node) {
  QRDTM_CHECK(node < lock_managers_.size());
  return *lock_managers_[node];
}

void Cluster::spawn_client(net::NodeId node, TxnBody body) {
  TxnRuntime& rt = runtime(node);
  sim_.spawn(rt.run_transaction(std::move(body)));
}

void Cluster::spawn_loop_client(net::NodeId node, BodyFactory factory,
                                sim::Tick think_time) {
  TxnRuntime& rt = runtime(node);
  auto loop = [](Cluster* self, TxnRuntime* rtp, BodyFactory f,
                 sim::Tick think) -> sim::Task<void> {
    Rng& rng = rtp->rng();
    while (!self->sim_.stopping()) {
      TxnBody body = f(rng);
      co_await rtp->run_transaction(std::move(body));
      if (think > 0) co_await self->sim_.delay(think);
    }
  };
  sim_.spawn(loop(this, &rt, std::move(factory), think_time));
}

void Cluster::run_for(sim::Tick duration) {
  sim_.run_until(sim_.now() + duration);
}

void Cluster::advance_for(sim::Tick duration) {
  sim_.advance_to(sim_.now() + duration);
}

void Cluster::run_to_completion() { sim_.run(); }

void Cluster::kill_node(net::NodeId node, bool notify_provider) {
  net_->kill(node);
  if (notify_provider) {
    quorums_->on_failure(node);
  }
}

void Cluster::cut_checkpoint(net::NodeId node) {
  QRDTM_CHECK(node < cfg_.num_nodes);
  if (!net_->alive(node)) return;
  servers_[node]->cut_checkpoint();
  ++metrics_.checkpoint_cuts;
}

void Cluster::recover_node(net::NodeId node) {
  QRDTM_CHECK(node < cfg_.num_nodes);
  if (net_->alive(node)) return;
  net_->revive(node);
  QrServer& server = *servers_[node];
  if (cfg_.durable_log) {
    // Process restart under durable logging: memory is gone wholesale; the
    // commit log is the disk.  Replay it locally -- protections and PR/PW
    // are not logged, so in-flight 2PC bookkeeping stays dead, exactly as
    // before.  fp::kRecoverySkipReplay armed kSkip models a node that lost
    // its disk (the broken-recovery canary): it restarts from nothing.
    if (faults_.fire(fp::kRecoverySkipReplay, node) == FaultAction::kSkip) {
      server.store().clear_all();
    } else {
      metrics_.log_replay_applies += server.replay_commit_log();
      // Coordinator failover half of DESIGN.md §17: confirm broadcasts that
      // were decided but not settled before the crash are re-sent now,
      // at-least-once -- receivers dedupe on (txn, epoch).
      server.redrive_open_decisions();
    }
  } else {
    // PR-5 model: committed versions survive, in-flight 2PC bookkeeping
    // does not.  Protections held here must not resurrect -- their
    // coordinators have long since timed out and moved on.
    server.store().clear_volatile();
  }
  server.set_syncing(true);
  if (failure_detector_) failure_detector_->forget(node);
  sim_.spawn(recover_task(node));
}

sim::Task<void> Cluster::recover_task(net::NodeId node) {
  // Bounded retries: with no live read quorum reachable the node stays
  // syncing (excluded from quorums), which is safe -- just unavailable.
  // Exhausting a whole attempt budget is no longer silent: it counts a
  // recovery_failure, narrates a fuzz event, and schedules another round
  // (bounded too, so a drained run still terminates) -- a churn schedule
  // that starves the first 32 attempts cannot wedge the node permanently.
  constexpr std::uint32_t kAttempts = 32;
  constexpr std::uint32_t kRounds = 8;
  QrServer& server = *servers_[node];
  net::RpcEndpoint& rpc = *endpoints_[node];
  // fp::kRecoverySkipSync armed kSkip re-admits the node on its local
  // replay alone -- no anti-entropy.  Unsafe by design (the node missed
  // every commit since it died): the broken-recovery canary uses it to
  // prove the history checker notices.
  if (faults_.fire(fp::kRecoverySkipSync, node) == FaultAction::kSkip) {
    server.set_syncing(false);
    quorums_->on_recovery(node);
    ++metrics_.node_recoveries;
    co_return;
  }
  // The node catches up cohort by cohort: one pull from each cohort it is
  // a member of (a single pull from cohort 0 under full replication).  An
  // attempt succeeds only when EVERY cohort gathered its full read quorum
  // within that attempt -- freshness per cohort needs the full quorum (by
  // Q1 it intersects every write quorum of the cohort, so some counted
  // member holds each committed version), and demanding it within one
  // attempt keeps the pull-to-readmission staleness window down to the
  // attempt's own round trips.
  const std::vector<std::uint32_t> cohorts = quorums_->node_cohorts(node);
  for (std::uint32_t round = 0;; ++round) {
    for (std::uint32_t attempt = 0; attempt < kAttempts; ++attempt) {
      bool all_current = true;
      for (std::uint32_t cohort : cohorts) {
        std::vector<net::NodeId> peers;
        try {
          peers = quorums_->cohort_read_quorum(node, cohort);
        } catch (const quorum::QuorumUnavailable&) {
        }
        std::erase(peers, node);
        if (peers.empty()) {
          all_current = false;
          continue;
        }
        // Under durable logging the pull is version-bounded: the request
        // carries the replayed store's versions and peers ship only
        // strictly newer copies.  Rebuilt per pull -- earlier partial
        // pulls may have already advanced some objects.  The bounds cover
        // the whole store; peers filter replies down to what this node
        // replicates.
        SyncPullRequest pullreq;
        if (cfg_.durable_log) {
          pullreq.have.reserve(server.store().num_objects());
          // Collect-then-sort below fixes the wire order.
          for (const auto& [id, e] : server.store().entries()) {
            pullreq.have.push_back(SyncBound{id, e.version});
          }
          std::sort(pullreq.have.begin(), pullreq.have.end(),
                    [](const SyncBound& a, const SyncBound& b) {
                      return a.id < b.id;
                    });
        }
        Writer reqw(rpc.acquire_buffer(msg::kSyncPull));
        pullreq.encode_into(reqw);
        Bytes req = std::move(reqw).take();
        auto futures = rpc.multicast(peers, msg::kSyncPull, req,
                                     cfg_.runtime.rpc_timeout);
        rpc.release_buffer(std::move(req));
        std::size_t current = 0;
        for (auto& f : futures) {
          net::RpcResult res = co_await f;
          if (!res.ok) continue;
          SyncPullResponse resp = SyncPullResponse::decode(res.payload);
          rpc.release_buffer(std::move(res.payload));
          if (!resp.ok) continue;  // peer is itself still syncing
          ++current;
          if (cfg_.durable_log) {
            metrics_.recovery_delta_objects += resp.entries.size();
          } else {
            metrics_.recovery_full_objects += resp.entries.size();
          }
          for (SyncEntry& e : resp.entries) {
            // apply() keeps only strictly-newer copies, so merging the
            // whole quorum's stores is order-independent.
            server.store().apply(e.id, e.version, std::move(e.data));
          }
        }
        if (current != futures.size()) all_current = false;
      }
      if (all_current) {
        if (cfg_.durable_log) {
          // Make the pulled delta durable: the next crash replays it from
          // the checkpoint image instead of re-pulling it.
          server.cut_checkpoint();
          ++metrics_.checkpoint_cuts;
        }
        server.set_syncing(false);
        quorums_->on_recovery(node);
        ++metrics_.node_recoveries;
        co_return;
      }
      co_await sim_.delay(cfg_.runtime.rpc_timeout);
    }
    // A whole attempt budget starved out: record it loudly instead of the
    // old silent co_return that left the node syncing forever.
    ++metrics_.recovery_failures;
    if (recorder_ != nullptr) {
      recorder_->record_fault(sim_.now(),
                             "recovery.stalled node=" + std::to_string(node) +
                                 " round=" + std::to_string(round + 1) + "/" +
                                 std::to_string(kRounds));
    }
    if (round + 1 >= kRounds || sim_.stopping()) co_return;
    // Back off a few timeouts before the next round; the partition or kill
    // burst that starved this one usually clears in the meantime.
    co_await sim_.delay(cfg_.runtime.rpc_timeout * 4);
  }
}

std::size_t Cluster::suspected_nodes() const {
  return failure_detector_ ? failure_detector_->suspected_count() : 0;
}

}  // namespace qrdtm::core
