#include "core/wire.h"

namespace qrdtm::core {

namespace {

void encode_entry(Writer& w, const DataSetEntry& e) {
  w.u64(e.id);
  w.u64(e.version);
  w.u64(e.owner);
  w.u32(e.owner_depth);
  w.u64(e.owner_chk);
}

DataSetEntry decode_entry(Reader& r) {
  DataSetEntry e;
  e.id = r.u64();
  e.version = r.u64();
  e.owner = r.u64();
  e.owner_depth = r.u32();
  e.owner_chk = r.u64();
  return e;
}

}  // namespace

Bytes ReadRequest::encode() const {
  Writer w;
  w.u64(root);
  w.u8(static_cast<std::uint8_t>(mode));
  w.u64(object);
  w.boolean(for_write);
  encode_vec(w, dataset, encode_entry);
  return std::move(w).take();
}

ReadRequest ReadRequest::decode(const Bytes& b) {
  Reader r(b);
  ReadRequest req;
  req.root = r.u64();
  req.mode = static_cast<NestingMode>(r.u8());
  req.object = r.u64();
  req.for_write = r.boolean();
  req.dataset = decode_vec<DataSetEntry>(r, decode_entry);
  r.expect_done();
  return req;
}

Bytes ReadResponse::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(status));
  w.u64(version);
  w.blob(data);
  w.u64(abort_scope);
  w.u32(abort_depth);
  w.u64(abort_chk);
  return std::move(w).take();
}

ReadResponse ReadResponse::decode(const Bytes& b) {
  Reader r(b);
  ReadResponse resp;
  resp.status = static_cast<ReadStatus>(r.u8());
  resp.version = r.u64();
  resp.data = r.blob();
  resp.abort_scope = r.u64();
  resp.abort_depth = r.u32();
  resp.abort_chk = r.u64();
  r.expect_done();
  return resp;
}

Bytes CommitRequest::encode() const {
  Writer w;
  w.u64(txn);
  encode_vec(w, readset, [](Writer& w2, const CommitReadEntry& e) {
    w2.u64(e.id);
    w2.u64(e.version);
  });
  encode_vec(w, writeset, [](Writer& w2, const CommitWriteEntry& e) {
    w2.u64(e.id);
    w2.u64(e.base);
    w2.blob(e.data);
  });
  return std::move(w).take();
}

CommitRequest CommitRequest::decode(const Bytes& b) {
  Reader r(b);
  CommitRequest req;
  req.txn = r.u64();
  req.readset = decode_vec<CommitReadEntry>(r, [](Reader& r2) {
    CommitReadEntry e;
    e.id = r2.u64();
    e.version = r2.u64();
    return e;
  });
  req.writeset = decode_vec<CommitWriteEntry>(r, [](Reader& r2) {
    CommitWriteEntry e;
    e.id = r2.u64();
    e.base = r2.u64();
    e.data = r2.blob();
    return e;
  });
  r.expect_done();
  return req;
}

Bytes VoteResponse::encode() const {
  Writer w;
  w.boolean(commit);
  return std::move(w).take();
}

VoteResponse VoteResponse::decode(const Bytes& b) {
  Reader r(b);
  VoteResponse v;
  v.commit = r.boolean();
  r.expect_done();
  return v;
}

Bytes CommitConfirm::encode() const {
  Writer w;
  w.u64(txn);
  w.boolean(commit);
  encode_vec(w, writeset, [](Writer& w2, const CommitWriteEntry& e) {
    w2.u64(e.id);
    w2.u64(e.base);
    w2.blob(e.data);
  });
  return std::move(w).take();
}

CommitConfirm CommitConfirm::decode(const Bytes& b) {
  Reader r(b);
  CommitConfirm c;
  c.txn = r.u64();
  c.commit = r.boolean();
  c.writeset = decode_vec<CommitWriteEntry>(r, [](Reader& r2) {
    CommitWriteEntry e;
    e.id = r2.u64();
    e.base = r2.u64();
    e.data = r2.blob();
    return e;
  });
  r.expect_done();
  return c;
}

}  // namespace qrdtm::core
