#include "core/wire.h"

namespace qrdtm::core {

namespace {

// Exact encoded sizes, used to reserve() writers before encoding so even a
// cold (unpooled) buffer allocates at most once.
constexpr std::size_t kEntryBytes = 8 + 8 + 8 + 4 + 8;      // DataSetEntry
constexpr std::size_t kReadReqHeader = 8 + 1 + 8 + 1 + 4;   // + entries
constexpr std::size_t kReadRespHeader = 1 + 8 + 4 + 8 + 4 + 8;  // + data
constexpr std::size_t kReadEntryBytes = 8 + 8;              // CommitReadEntry
constexpr std::size_t kWriteEntryHeader = 8 + 8 + 4;        // + data

std::size_t writeset_bytes(const std::vector<CommitWriteEntry>& ws) {
  std::size_t n = 4;
  for (const CommitWriteEntry& e : ws) n += kWriteEntryHeader + e.data.size();
  return n;
}

constexpr std::size_t kBatchWriteHeader = 8 + 8 + 4 + 4;  // + data

std::size_t batch_writeset_bytes(const std::vector<BatchWriteEntry>& ws) {
  std::size_t n = 4;
  for (const BatchWriteEntry& e : ws) n += kBatchWriteHeader + e.data.size();
  return n;
}

void encode_batch_write(Writer& w, const BatchWriteEntry& e) {
  w.u64(e.id);
  w.u64(e.base);
  w.u32(e.steps);
  w.blob(e.data);
}

BatchWriteEntry decode_batch_write(Reader& r) {
  BatchWriteEntry e;
  e.id = r.u64();
  e.base = r.u64();
  e.steps = r.u32();
  e.data = r.blob();
  return e;
}

void encode_entry(Writer& w, const DataSetEntry& e) {
  w.u64(e.id);
  w.u64(e.version);
  w.u64(e.owner);
  w.u32(e.owner_depth);
  w.u64(e.owner_chk);
}

DataSetEntry decode_entry(Reader& r) {
  DataSetEntry e;
  e.id = r.u64();
  e.version = r.u64();
  e.owner = r.u64();
  e.owner_depth = r.u32();
  e.owner_chk = r.u64();
  return e;
}

}  // namespace

void encode_read_request(Writer& w, TxnId root, NestingMode mode,
                         ObjectId object, bool for_write,
                         const std::vector<DataSetEntry>& dataset) {
  w.reserve(w.size() + kReadReqHeader + dataset.size() * kEntryBytes);
  w.u64(root);
  w.u8(static_cast<std::uint8_t>(mode));
  w.u64(object);
  w.boolean(for_write);
  encode_vec(w, dataset, encode_entry);
}

void ReadRequest::encode_into(Writer& w) const {
  encode_read_request(w, root, mode, object, for_write, dataset);
}

Bytes ReadRequest::encode() const {
  Writer w;
  encode_into(w);
  return std::move(w).take();
}

ReadRequest ReadRequest::decode(const Bytes& b) {
  Reader r(b);
  ReadRequest req;
  req.root = r.u64();
  req.mode = static_cast<NestingMode>(r.u8());
  req.object = r.u64();
  req.for_write = r.boolean();
  req.dataset = decode_vec<DataSetEntry>(r, decode_entry);
  r.expect_done();
  return req;
}

void ReadResponse::encode_into(Writer& w) const {
  w.reserve(w.size() + kReadRespHeader + data.size());
  w.u8(static_cast<std::uint8_t>(status));
  w.u64(version);
  w.blob(data);
  w.u64(abort_scope);
  w.u32(abort_depth);
  w.u64(abort_chk);
}

Bytes ReadResponse::encode() const {
  Writer w;
  encode_into(w);
  return std::move(w).take();
}

ReadResponse ReadResponse::decode(const Bytes& b) {
  Reader r(b);
  ReadResponse resp;
  resp.status = static_cast<ReadStatus>(r.u8());
  resp.version = r.u64();
  resp.data = r.blob();
  resp.abort_scope = r.u64();
  resp.abort_depth = r.u32();
  resp.abort_chk = r.u64();
  r.expect_done();
  return resp;
}

void CommitRequest::encode_into(Writer& w) const {
  w.reserve(w.size() + 8 + 4 + readset.size() * kReadEntryBytes +
            writeset_bytes(writeset));
  w.u64(txn);
  encode_vec(w, readset, [](Writer& w2, const CommitReadEntry& e) {
    w2.u64(e.id);
    w2.u64(e.version);
  });
  encode_vec(w, writeset, [](Writer& w2, const CommitWriteEntry& e) {
    w2.u64(e.id);
    w2.u64(e.base);
    w2.blob(e.data);
  });
}

Bytes CommitRequest::encode() const {
  Writer w;
  encode_into(w);
  return std::move(w).take();
}

CommitRequest CommitRequest::decode(const Bytes& b) {
  Reader r(b);
  CommitRequest req;
  req.txn = r.u64();
  req.readset = decode_vec<CommitReadEntry>(r, [](Reader& r2) {
    CommitReadEntry e;
    e.id = r2.u64();
    e.version = r2.u64();
    return e;
  });
  req.writeset = decode_vec<CommitWriteEntry>(r, [](Reader& r2) {
    CommitWriteEntry e;
    e.id = r2.u64();
    e.base = r2.u64();
    e.data = r2.blob();
    return e;
  });
  r.expect_done();
  return req;
}

void VoteResponse::encode_into(Writer& w) const { w.boolean(commit); }

Bytes VoteResponse::encode() const {
  Writer w;
  encode_into(w);
  return std::move(w).take();
}

VoteResponse VoteResponse::decode(const Bytes& b) {
  Reader r(b);
  VoteResponse v;
  v.commit = r.boolean();
  r.expect_done();
  return v;
}

void SyncPullRequest::encode_into(Writer& w) const {
  w.reserve(w.size() + 4 + have.size() * 16);
  encode_vec(w, have, [](Writer& w2, const SyncBound& e) {
    w2.u64(e.id);
    w2.u64(e.version);
  });
}

Bytes SyncPullRequest::encode() const {
  Writer w;
  encode_into(w);
  return std::move(w).take();
}

SyncPullRequest SyncPullRequest::decode(const Bytes& b) {
  Reader r(b);
  SyncPullRequest req;
  req.have = decode_vec<SyncBound>(r, [](Reader& r2) {
    SyncBound e;
    e.id = r2.u64();
    e.version = r2.u64();
    return e;
  });
  r.expect_done();
  return req;
}

void SyncPullResponse::encode_into(Writer& w) const {
  std::size_t n = 1 + 8 + 4;
  for (const SyncEntry& e : entries) n += 8 + 8 + 4 + e.data.size();
  w.reserve(w.size() + n);
  w.boolean(ok);
  w.u64(total_objects);
  encode_vec(w, entries, [](Writer& w2, const SyncEntry& e) {
    w2.u64(e.id);
    w2.u64(e.version);
    w2.blob(e.data);
  });
}

Bytes SyncPullResponse::encode() const {
  Writer w;
  encode_into(w);
  return std::move(w).take();
}

SyncPullResponse SyncPullResponse::decode(const Bytes& b) {
  Reader r(b);
  SyncPullResponse resp;
  resp.ok = r.boolean();
  resp.total_objects = r.u64();
  resp.entries = decode_vec<SyncEntry>(r, [](Reader& r2) {
    SyncEntry e;
    e.id = r2.u64();
    e.version = r2.u64();
    e.data = r2.blob();
    return e;
  });
  r.expect_done();
  return resp;
}

void BatchCommitRequest::encode_into(Writer& w) const {
  w.reserve(w.size() + 8 + 4 + readset.size() * kReadEntryBytes +
            batch_writeset_bytes(writeset));
  w.u64(batch);
  encode_vec(w, readset, [](Writer& w2, const CommitReadEntry& e) {
    w2.u64(e.id);
    w2.u64(e.version);
  });
  encode_vec(w, writeset, encode_batch_write);
}

Bytes BatchCommitRequest::encode() const {
  Writer w;
  encode_into(w);
  return std::move(w).take();
}

BatchCommitRequest BatchCommitRequest::decode(const Bytes& b) {
  Reader r(b);
  BatchCommitRequest req;
  req.batch = r.u64();
  req.readset = decode_vec<CommitReadEntry>(r, [](Reader& r2) {
    CommitReadEntry e;
    e.id = r2.u64();
    e.version = r2.u64();
    return e;
  });
  req.writeset = decode_vec<BatchWriteEntry>(r, decode_batch_write);
  r.expect_done();
  return req;
}

void BatchVoteResponse::encode_into(Writer& w) const {
  w.reserve(w.size() + 1 + 4 + stale.size() * 8);
  w.boolean(commit);
  encode_vec(w, stale, [](Writer& w2, ObjectId id) { w2.u64(id); });
}

Bytes BatchVoteResponse::encode() const {
  Writer w;
  encode_into(w);
  return std::move(w).take();
}

BatchVoteResponse BatchVoteResponse::decode(const Bytes& b) {
  Reader r(b);
  BatchVoteResponse v;
  v.commit = r.boolean();
  v.stale = decode_vec<ObjectId>(r, [](Reader& r2) { return r2.u64(); });
  r.expect_done();
  return v;
}

void BatchCommitConfirm::encode_into(Writer& w) const {
  w.reserve(w.size() + 8 + 1 + batch_writeset_bytes(writeset));
  w.u64(batch);
  w.boolean(commit);
  encode_vec(w, writeset, encode_batch_write);
}

Bytes BatchCommitConfirm::encode() const {
  Writer w;
  encode_into(w);
  return std::move(w).take();
}

BatchCommitConfirm BatchCommitConfirm::decode(const Bytes& b) {
  Reader r(b);
  BatchCommitConfirm c;
  c.batch = r.u64();
  c.commit = r.boolean();
  c.writeset = decode_vec<BatchWriteEntry>(r, decode_batch_write);
  r.expect_done();
  return c;
}

void TxnStatusRequest::encode_into(Writer& w) const {
  w.reserve(w.size() + 8);
  w.u64(txn);
}

Bytes TxnStatusRequest::encode() const {
  Writer w;
  encode_into(w);
  return std::move(w).take();
}

TxnStatusRequest TxnStatusRequest::decode(const Bytes& b) {
  Reader r(b);
  TxnStatusRequest req;
  req.txn = r.u64();
  r.expect_done();
  return req;
}

void TxnStatusResponse::encode_into(Writer& w) const {
  w.reserve(w.size() + 8 + 1 + 4);
  w.u64(txn);
  w.u8(static_cast<std::uint8_t>(status));
  w.u32(epoch);
}

Bytes TxnStatusResponse::encode() const {
  Writer w;
  encode_into(w);
  return std::move(w).take();
}

TxnStatusResponse TxnStatusResponse::decode(const Bytes& b) {
  Reader r(b);
  TxnStatusResponse resp;
  resp.txn = r.u64();
  resp.status = static_cast<TxnStatus>(r.u8());
  resp.epoch = r.u32();
  r.expect_done();
  return resp;
}

void CommitConfirm::encode_into(Writer& w) const {
  w.reserve(w.size() + 8 + 1 + writeset_bytes(writeset));
  w.u64(txn);
  w.boolean(commit);
  encode_vec(w, writeset, [](Writer& w2, const CommitWriteEntry& e) {
    w2.u64(e.id);
    w2.u64(e.base);
    w2.blob(e.data);
  });
}

Bytes CommitConfirm::encode() const {
  Writer w;
  encode_into(w);
  return std::move(w).take();
}

CommitConfirm CommitConfirm::decode(const Bytes& b) {
  Reader r(b);
  CommitConfirm c;
  c.txn = r.u64();
  c.commit = r.boolean();
  c.writeset = decode_vec<CommitWriteEntry>(r, [](Reader& r2) {
    CommitWriteEntry e;
    e.id = r2.u64();
    e.base = r2.u64();
    e.data = r2.blob();
    return e;
  });
  r.expect_done();
  return c;
}

}  // namespace qrdtm::core
