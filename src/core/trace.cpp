#include "core/trace.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace qrdtm::core {

sim::Tick LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0;
  if (p <= 0.0) return min();
  if (p >= 100.0) return max();
  // Rank of the requested percentile (1-based, nearest-rank definition).
  std::uint64_t rank = static_cast<std::uint64_t>(
      (p / 100.0) * static_cast<double>(count_) + 0.5);
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t seen = 0;
  for (std::uint32_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      sim::Tick v = bucket_upper(i);
      // The bucket edge may overshoot the true extremes; the exact min/max
      // are tracked, so clamp to them.
      if (v < min_) v = min_;
      if (v > max_) v = max_;
      return v;
    }
  }
  return max();
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (std::uint32_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

namespace {

struct KindInfo {
  const char* name;  // Perfetto slice name
  const char* cat;   // category
  const char* arg0;  // label for a0 (nullptr = omit)
  const char* arg1;  // label for a1 (nullptr = omit)
};

const KindInfo& kind_info(TraceKind k) {
  static const KindInfo kTable[] = {
      {"txn", "txn", "attempts", nullptr},           // kTxn
      {"attempt", "txn", "attempt", "committed"},    // kAttempt
      {"ct_scope", "nesting", "depth", "retries"},   // kCtScope
      {"chk_create", "checkpoint", "epoch", nullptr},    // kChkCreate
      {"chk_rollback", "checkpoint", "epoch", nullptr},  // kChkRollback
      {"read_fetch", "quorum", "object", nullptr},   // kReadFetch
      {"commit_2pc", "commit", "writeset", "local"}, // kCommit2pc
      {"backoff", "retry", "attempt", nullptr},      // kBackoff
      {"server_read", "server", "abort", nullptr},   // kServerRead
      {"server_vote", "server", "commit", nullptr},  // kServerVote
      {"abort", "retry", nullptr, nullptr},          // kAbort
      {"batch", "batch", "size", "attempts"},        // kBatch
  };
  return kTable[static_cast<std::size_t>(k)];
}

void append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

/// Ticks are nanoseconds; trace-event timestamps are microseconds.
void append_us(std::string& out, sim::Tick t) {
  append(out, "%llu.%03u", static_cast<unsigned long long>(t / 1000),
         static_cast<unsigned>(t % 1000));
}

void append_args(std::string& out, const KindInfo& info, std::uint64_t a0,
                 std::uint64_t a1, bool has_a1) {
  out += "\"args\":{";
  bool first = true;
  if (info.arg0 != nullptr) {
    append(out, "\"%s\":%llu", info.arg0, static_cast<unsigned long long>(a0));
    first = false;
  }
  if (has_a1 && info.arg1 != nullptr) {
    append(out, "%s\"%s\":%llu", first ? "" : ",", info.arg1,
           static_cast<unsigned long long>(a1));
  }
  out += "}";
}

}  // namespace

std::string TraceRecorder::chrome_trace_json() const {
  std::string out;
  out.reserve(128 + spans_.size() * 160 + instants_.size() * 140);
  out += "{\"traceEvents\":[\n";
  bool first = true;

  // Per-node process metadata so Perfetto labels the lanes.
  std::vector<net::NodeId> nodes;
  for (const TraceSpan& s : spans_) nodes.push_back(s.node);
  for (const TraceInstant& e : instants_) nodes.push_back(e.node);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  for (net::NodeId n : nodes) {
    append(out,
           "%s{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
           "\"args\":{\"name\":\"node %u\"}}",
           first ? "" : ",\n", n, n);
    first = false;
  }

  for (const TraceSpan& s : spans_) {
    const KindInfo& info = kind_info(s.kind);
    append(out, "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":%u,"
           "\"tid\":%llu,\"ts\":",
           first ? "" : ",\n", info.name, info.cat, s.node,
           static_cast<unsigned long long>(s.txn));
    first = false;
    append_us(out, s.start);
    out += ",\"dur\":";
    append_us(out, s.end - s.start);
    out += ",";
    append_args(out, info, s.a0, s.a1, /*has_a1=*/true);
    out += "}";
  }
  for (const TraceInstant& e : instants_) {
    const KindInfo& info = kind_info(e.kind);
    append(out, "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
           "\"pid\":%u,\"tid\":%llu,\"ts\":",
           first ? "" : ",\n", info.name, info.cat, e.node,
           static_cast<unsigned long long>(e.txn));
    first = false;
    append_us(out, e.at);
    out += ",";
    append_args(out, info, e.a0, 0, /*has_a1=*/false);
    out += "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool TraceRecorder::write_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = chrome_trace_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace qrdtm::core
