// Cluster-wide experiment metrics.
//
// These counters back every number the paper reports: throughput
// (commits / simulated second), abort rates (root + child aborts, partial
// rollbacks), and message counts split into read and commit requests
// (Fig. 8 reports percentage deltas of exactly these two categories).
#pragma once

#include <cstdint>
#include <limits>

#include "sim/simulator.h"

namespace qrdtm::core {

struct Metrics {
  // --- outcomes ---
  std::uint64_t commits = 0;        // root transactions committed
  std::uint64_t root_aborts = 0;    // full aborts (root restarted)
  std::uint64_t ct_aborts = 0;      // QR-CN: closed-nested scope retries
  std::uint64_t partial_rollbacks = 0;  // QR-CHK: rollbacks to a checkpoint
  std::uint64_t local_commits = 0;  // commits that needed no 2PC (Rqv)

  // --- mechanism counters ---
  std::uint64_t remote_reads = 0;      // read requests issued (per quorum op)
  std::uint64_t local_read_hits = 0;   // served from own/ancestor data-set
  std::uint64_t commit_requests = 0;   // 2PC rounds started
  std::uint64_t validation_failures = 0;  // Rqv abort replies received
  std::uint64_t vote_aborts = 0;          // 2PC rounds that lost a vote
  std::uint64_t checkpoints_created = 0;  // QR-CHK
  std::uint64_t step_guard_trips = 0;     // zombie executions cut short

  // --- QR-Q (queued speculative batching) ---
  std::uint64_t batches_committed = 0;     // batch 2PC rounds that committed
  std::uint64_t speculation_rollbacks = 0; // batch rounds aborted + re-run
  std::uint64_t batch_read_hits = 0;       // reads served from the batch cache

  // --- QR-ON (open nesting extension) ---
  // --- recovery (churn experiments) ---
  std::uint64_t node_recoveries = 0;  // replicas that completed catch-up
  /// Objects shipped over the wire by delta-bounded catch-up pulls (the
  /// rejoining node sent post-log-replay version bounds, servers returned
  /// only strictly-newer copies).  Compare against recovery_full_objects:
  /// delta recovery is the point of the commit log, and the test suite
  /// asserts delta << full on the same workload.
  std::uint64_t recovery_delta_objects = 0;
  /// Objects shipped by legacy full-store pulls (no bounds: durable
  /// logging off, or the local log was unusable).
  std::uint64_t recovery_full_objects = 0;
  std::uint64_t log_replay_applies = 0;  // apply ops replayed from local logs
  std::uint64_t checkpoint_cuts = 0;     // commit-log cuts taken cluster-wide
  /// Recovery attempts that exhausted every delta-pull round without
  /// gathering a full read quorum.  The node stays syncing and a re-attempt
  /// is scheduled; a nonzero count under churn is expected, a *growing*
  /// count with no matching node_recoveries means a wedged replica.
  std::uint64_t recovery_failures = 0;
  std::uint64_t log_autocuts = 0;  // checkpoint cuts forced by max_tail_bytes

  // --- cooperative 2PC termination (DESIGN.md §17) ---
  /// In-doubt prepares resolved to commit by a termination round (a peer or
  /// the coordinator supplied the decision, or an applied copy proved it).
  std::uint64_t indoubt_resolved_commit = 0;
  /// In-doubt prepares resolved to abort: an authoritative abort answer, or
  /// presumed-abort after a full round of "no decision + coordinator
  /// restarted into a newer liveness epoch".
  std::uint64_t indoubt_resolved_abort = 0;
  /// TxnStatusRequest rounds issued (each round multicasts one query to the
  /// coordinator and the write-quorum peers, then waits out a backoff).
  std::uint64_t termination_rounds = 0;
  /// Confirms dropped as duplicates by the (txn, epoch) applied-set --
  /// at-least-once retransmission from recovered coordinators and resolving
  /// peers makes these routine, never double-applied.
  std::uint64_t confirm_duplicates = 0;

  // --- sharded cohorts ---
  /// 2PC vote rounds whose read+write set spanned more than one quorum
  /// cohort (the multicast covered several cohorts' write quorums).
  std::uint64_t cross_shard_rounds = 0;

  std::uint64_t open_commits = 0;        // open-nested bodies committed
  std::uint64_t compensations_run = 0;   // undone after a root abort
  std::uint64_t lock_conflicts = 0;      // abstract-lock acquisition retries
  std::uint64_t lock_messages = 0;       // acquire + release traffic

  // --- message counts (paper Fig. 8 categories) ---
  // One multicast to a quorum of size q counts as q messages, matching the
  // paper's JGroups accounting.
  std::uint64_t read_messages = 0;
  std::uint64_t commit_messages = 0;

  /// Every event that discarded work and restarted it.  QR-Q's unit of
  /// abort is a batch 2PC round (one speculation_rollback discards the
  /// whole batch's speculative state), mirroring how a flat abort discards
  /// one transaction's attempt.
  std::uint64_t total_aborts() const {
    return root_aborts + ct_aborts + partial_rollbacks + speculation_rollbacks;
  }
  std::uint64_t total_messages() const {
    return read_messages + commit_messages + lock_messages;
  }

  double throughput(sim::Tick duration) const {
    double s = sim::to_seconds(duration);
    return s > 0 ? static_cast<double>(commits) / s : 0.0;
  }

  /// Aborts per committed transaction (dimensionless abort rate).  With no
  /// commits the ratio is undefined: NaN, never the raw abort count (which
  /// would silently change units in report output -- printers show "n/a").
  double abort_rate() const {
    return commits ? static_cast<double>(total_aborts()) /
                         static_cast<double>(commits)
                   : std::numeric_limits<double>::quiet_NaN();
  }
};

}  // namespace qrdtm::core
