#include "core/faultpoint.h"

#include <algorithm>

#include "common/check.h"

namespace qrdtm {

void FaultPointRegistry::arm(const std::string& name, FaultAction action,
                             net::NodeId node, std::uint32_t uses,
                             std::uint32_t delay_fires) {
  QRDTM_CHECK_MSG(action != FaultAction::kNone, "arm with kNone");
  QRDTM_CHECK_MSG(uses > 0, "arm with zero uses");
  armings_[name] = Arming{action, node, uses, delay_fires};
}

void FaultPointRegistry::disarm(const std::string& name) {
  armings_.erase(name);
}

void FaultPointRegistry::disarm_if_node(const std::string& name,
                                        net::NodeId node) {
  auto it = armings_.find(name);
  if (it != armings_.end() && it->second.node == node) armings_.erase(it);
}

FaultAction FaultPointRegistry::fire(const char* name, net::NodeId node) {
  if (armings_.empty()) return FaultAction::kNone;  // the un-steered fast path
  auto it = armings_.find(name);
  if (it == armings_.end()) return FaultAction::kNone;
  Arming& a = it->second;
  if (a.node != kAnyNode && a.node != node) return FaultAction::kNone;
  if (a.delay > 0) {
    --a.delay;
    return FaultAction::kNone;
  }
  ++hits_[it->first];
  const FaultAction action = a.action;
  if (a.remaining != kUnlimited && --a.remaining == 0) armings_.erase(it);
  if (action == FaultAction::kPanic && panic_) panic_(node);
  return action;
}

sim::Future<bool> FaultPointRegistry::suspend(const std::string& name,
                                              net::NodeId /*node*/) {
  QRDTM_CHECK_MSG(sim_ != nullptr, "suspend without a simulator");
  waiters_.emplace_back(name, sim::Promise<bool>(*sim_));
  return waiters_.back().second.future();
}

std::size_t FaultPointRegistry::resume(const std::string& name) {
  std::size_t released = 0;
  for (auto& [n, p] : waiters_) {
    if (n == name) {
      p.set(true);
      ++released;
    }
  }
  waiters_.erase(std::remove_if(waiters_.begin(), waiters_.end(),
                                [&](const auto& w) { return w.first == name; }),
                 waiters_.end());
  return released;
}

std::size_t FaultPointRegistry::resume_all() {
  std::size_t released = waiters_.size();
  for (auto& [n, p] : waiters_) p.set(true);
  waiters_.clear();
  return released;
}

std::uint64_t FaultPointRegistry::hits(const std::string& name) const {
  auto it = hits_.find(name);
  return it == hits_.end() ? 0 : it->second;
}

std::size_t FaultPointRegistry::suspended(const std::string& name) const {
  std::size_t n = 0;
  for (const auto& [wn, p] : waiters_) {
    if (wn == name) ++n;
  }
  return n;
}

void FaultPointRegistry::reset() {
  armings_.clear();
  hits_.clear();
  waiters_.clear();
}

}  // namespace qrdtm
