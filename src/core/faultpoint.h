// Named fault points: Greengage-style steered fault injection.
//
// Chaos schedules (PR 3/5) find interleavings by seed luck; regression tests
// for a *specific* race need to steer one deterministically.  A fault point
// is a named hook compiled into protocol code at the interesting boundaries
// (commit vote, confirm apply, checkpoint cut, log flush, recovery).  Tests
// arm a point with an action; unarmed points cost one branch and never touch
// the event queue, so determinism goldens are unaffected.
//
// Actions:
//   * kSuspend -- the hitting coroutine parks on a Promise until the test
//     calls resume(name).  Only valid at co_await-capable sites; the site
//     pattern is
//         if (faults && faults->fire(fp::kX, node) == FaultAction::kSuspend)
//           co_await faults->suspend(fp::kX, node);
//   * kPanic   -- the panic handler runs (the Cluster wires it to
//     kill_node), modelling a crash exactly at the boundary.  The site must
//     stop work (drop the message, send no reply) when fire() returns it.
//   * kSkip    -- the site skips the guarded step (e.g. chk.cut.carry: cut a
//     checkpoint WITHOUT carrying in-flight prepares -- the Greengage
//     checkpoint_dtx_info bug; recovery.skip_replay: wipe without replay).
//
// Arming is (name, node, action, uses): `node` targets one node or every
// node (kAnyNode); `uses` makes the point one-shot (default) or N-shot /
// unlimited.  hits(name) counts matched fires for test polling.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/message.h"
#include "sim/sync.h"

namespace qrdtm {

enum class FaultAction : std::uint8_t { kNone, kSuspend, kPanic, kSkip };

/// Fault-point name catalogue.  Keep DESIGN.md §15 in sync.
namespace fp {
/// Coordinator between gathering commit votes and sending CommitConfirm.
inline constexpr const char* kCommitBeforeConfirm = "txn.commit.before_confirm";
/// Replica after validating + protecting a write-set, before the vote reply.
inline constexpr const char* kServerVote = "server.vote";
/// Replica on receiving a CommitConfirm, before applying the writes.
inline constexpr const char* kServerConfirmApply = "server.confirm.apply";
/// Replica about to append a prepare record to the commit log (skip = the
/// vote happens but is never made durable).
inline constexpr const char* kLogPrepare = "log.prepare";
/// Replica about to append a confirm record to the commit log.
inline constexpr const char* kLogConfirm = "log.confirm";
/// Checkpoint cut carrying in-flight prepares (skip = Greengage bug: the
/// cut drops prepared-but-unconfirmed transactions).
inline constexpr const char* kChkCutCarry = "chk.cut.carry";
/// Recovery about to replay the commit log (skip = restart from nothing).
inline constexpr const char* kRecoverySkipReplay = "recovery.skip_replay";
/// Recovery about to run the anti-entropy delta pull (skip = trust the
/// local replay alone).
inline constexpr const char* kRecoverySkipSync = "recovery.skip_sync";
/// Coordinator between resolving the votes and appending the decision
/// record (skip = the --break-termination bug: confirms go out with no
/// durable decision, so a crash-restart presumed-aborts an acked commit).
inline constexpr const char* kDecisionBeforeLog = "server.decision.before_log";
/// Coordinator inside the confirm broadcast loop, once per write-quorum
/// member (panic + delay_fires = crash after a strict subset of the
/// confirms left the node).
inline constexpr const char* kConfirmPartial = "server.confirm.partial";
/// Replica about to multicast a termination-round TxnStatusRequest.
inline constexpr const char* kTermQuery = "term.query";
}  // namespace fp

class FaultPointRegistry {
 public:
  static constexpr std::uint32_t kUnlimited = 0xffffffffu;
  static constexpr net::NodeId kAnyNode = 0xffffffffu;

  /// The simulator is needed to build suspend Promises; the Cluster sets it
  /// at construction.  Registries used only for panic/skip may skip this.
  void set_simulator(sim::Simulator* sim) { sim_ = sim; }

  /// Invoked (with the hitting node) when a kPanic point fires; the Cluster
  /// wires this to kill_node.  Test-setup plumbing, not a hot path.
  // qrdtm-lint: allow(hot-std-function)
  void set_panic_handler(std::function<void(net::NodeId)> handler) {
    panic_ = std::move(handler);
  }

  /// Arm `name`: the next `uses` matching fires return `action`.  One
  /// arming per name; re-arming replaces it.  `delay_fires` lets the first N
  /// matching fires pass through (kNone, not counted as hits) before the
  /// action triggers -- e.g. panic on the (K+1)-th confirm send to model a
  /// coordinator crash after K confirms were already delivered.
  void arm(const std::string& name, FaultAction action, net::NodeId node = kAnyNode,
           std::uint32_t uses = 1, std::uint32_t delay_fires = 0);
  void disarm(const std::string& name);
  /// Disarm `name` only if its current arming targets exactly `node` --
  /// lets a bounded fault window retract an unfired arming without
  /// clobbering a later window that re-armed the same point for another
  /// node.
  void disarm_if_node(const std::string& name, net::NodeId node);

  /// Protocol-side hook.  Returns the armed action (consuming one use) when
  /// `name` is armed for `node`, else kNone.  kPanic additionally invokes
  /// the panic handler before returning.  Unarmed cost: one branch.
  FaultAction fire(const char* name, net::NodeId node);

  /// Park the calling coroutine until resume(name).  Call only after fire()
  /// returned kSuspend.  The future resolves to true (value is a formality:
  /// the simulator has no Promise<void>).
  sim::Future<bool> suspend(const std::string& name, net::NodeId node);

  /// Release every coroutine parked on `name`; returns how many.
  std::size_t resume(const std::string& name);
  std::size_t resume_all();

  bool armed(const std::string& name) const {
    return armings_.find(name) != armings_.end();
  }
  /// Matched fires of `name` since construction (survives disarm).
  std::uint64_t hits(const std::string& name) const;
  /// Coroutines currently parked on `name`.
  std::size_t suspended(const std::string& name) const;

  /// Drop all armings, hit counts and (unreleased) waiters.  Tests only;
  /// never call with coroutines still parked unless tearing down.
  void reset();

 private:
  struct Arming {
    FaultAction action = FaultAction::kNone;
    net::NodeId node = kAnyNode;
    std::uint32_t remaining = 1;
    std::uint32_t delay = 0;  // matching fires to let pass before acting
  };

  sim::Simulator* sim_ = nullptr;
  // Test-setup plumbing, invoked at most once per armed panic.
  // qrdtm-lint: allow(hot-std-function)
  std::function<void(net::NodeId)> panic_;
  std::unordered_map<std::string, Arming> armings_;
  std::unordered_map<std::string, std::uint64_t> hits_;
  // Insertion-ordered so resume() wakes waiters deterministically.
  std::vector<std::pair<std::string, sim::Promise<bool>>> waiters_;
};

}  // namespace qrdtm
