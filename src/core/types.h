// Core transaction types shared by client runtime and replica servers.
#pragma once

#include <cstdint>
#include <string>

#include "store/object.h"

namespace qrdtm::core {

using qrdtm::Bytes;
using store::ObjectCopy;
using store::ObjectId;
using store::TxnId;
using store::Version;

/// Execution model for the transaction runtime (paper §I-A).
enum class NestingMode : std::uint8_t {
  kFlat = 0,    // QR: conflicts detected at commit; full abort
  kClosed = 1,  // QR-CN: Rqv + closed nested transactions (partial abort)
  kCheckpoint = 2,  // QR-CHK: Rqv + automatic checkpoints (partial rollback)
  kQueued = 3,  // QR-Q: queue-ordered speculative batch commit (Q-Store style)
};

inline const char* to_string(NestingMode m) {
  switch (m) {
    case NestingMode::kFlat:
      return "flat";
    case NestingMode::kClosed:
      return "closed";
    case NestingMode::kCheckpoint:
      return "checkpoint";
    case NestingMode::kQueued:
      return "queued";
  }
  return "?";
}

/// Checkpoint epoch (QR-CHK).  Epoch 0 is the transaction start; rollback to
/// 0 is equivalent to a full abort-and-retry.
using ChkEpoch = std::uint64_t;

/// What an abort message asks the runtime to do.
enum class AbortTarget : std::uint8_t {
  kRoot = 0,       // abort the whole (root) transaction
  kScope = 1,      // QR-CN: abort the closed-nested scope `scope_id`
  kCheckpoint = 2  // QR-CHK: roll back to checkpoint `chk`
};

/// Control-flow exception implementing partial aborts, mirroring the Java
/// exception mechanism in the paper (§VI-A): it unwinds through co_await
/// frames until the scope whose id matches `scope_id` catches it.
struct AbortException {
  AbortTarget target = AbortTarget::kRoot;
  TxnId scope_id = 0;    // kScope: closed-nested scope to retry
  ChkEpoch chk = 0;      // kCheckpoint: epoch to roll back to
  std::string reason;
};

}  // namespace qrdtm::core
