#include "core/qr_server.h"

#include <algorithm>
#include <limits>

namespace qrdtm::core {

QrServer::QrServer(net::RpcEndpoint& rpc) : rpc_(rpc), id_(rpc.id()) {
  // Replies are encoded into pooled buffers: in steady state a replica
  // serves reads and votes without touching the allocator.
  rpc.register_service(msg::kRead,
                       [this](net::NodeId, const Bytes& b) -> std::optional<Bytes> {
                         ReadResponse resp = handle_read(ReadRequest::decode(b));
                         if (tracer_ != nullptr) {
                           tracer_->instant(TraceKind::kServerRead, id_,
                                            rpc_.inbound_trace(),
                                            rpc_.simulator().now(),
                                            static_cast<std::uint64_t>(resp.status));
                         }
                         Writer w(rpc_.acquire_buffer(msg::kRead));
                         resp.encode_into(w);
                         return std::move(w).take();
                       });
  rpc.register_service(
      msg::kCommitRequest,
      [this](net::NodeId, const Bytes& b) -> std::optional<Bytes> {
        VoteResponse vote = handle_commit_request(CommitRequest::decode(b));
        if (tracer_ != nullptr) {
          tracer_->instant(TraceKind::kServerVote, id_, rpc_.inbound_trace(),
                           rpc_.simulator().now(), vote.commit ? 1 : 0);
        }
        Writer w(rpc_.acquire_buffer(msg::kCommitRequest));
        vote.encode_into(w);
        return std::move(w).take();
      });
  rpc.register_service(
      msg::kCommitConfirm,
      [this](net::NodeId, const Bytes& b) -> std::optional<Bytes> {
        handle_commit_confirm(CommitConfirm::decode(b));
        return std::nullopt;  // one-way
      });
  rpc.register_service(
      msg::kBatchCommitRequest,
      [this](net::NodeId, const Bytes& b) -> std::optional<Bytes> {
        BatchVoteResponse vote =
            handle_batch_commit_request(BatchCommitRequest::decode(b));
        if (tracer_ != nullptr) {
          tracer_->instant(TraceKind::kServerVote, id_, rpc_.inbound_trace(),
                           rpc_.simulator().now(), vote.commit ? 1 : 0);
        }
        Writer w(rpc_.acquire_buffer(msg::kBatchCommitRequest));
        vote.encode_into(w);
        return std::move(w).take();
      });
  rpc.register_service(
      msg::kBatchCommitConfirm,
      [this](net::NodeId, const Bytes& b) -> std::optional<Bytes> {
        handle_batch_commit_confirm(BatchCommitConfirm::decode(b));
        return std::nullopt;  // one-way
      });
  rpc.register_service(msg::kSyncPull,
                       [this](net::NodeId from, const Bytes& b) -> std::optional<Bytes> {
                         SyncPullResponse resp = handle_sync_pull(from, b);
                         Writer w(rpc_.acquire_buffer(msg::kSyncPull));
                         resp.encode_into(w);
                         return std::move(w).take();
                       });
}

std::uint32_t QrServer::liveness_epoch() const {
  return rpc_.network().epoch(id_);
}

FaultAction QrServer::fault(const char* point) {
  return faults_ ? faults_->fire(point, id_) : FaultAction::kNone;
}

void QrServer::seed_object(ObjectId id, Bytes data, Version version) {
  if (durable_log_) log_.append_apply(id, version, data, liveness_epoch());
  store_.seed(id, std::move(data), version);
}

void QrServer::cut_checkpoint() {
  // fp::kChkCutCarry armed kSkip models the Greengage checkpoint_dtx_info
  // bug: the cut forgets prepared-but-unconfirmed transactions, so a
  // post-cut confirm resolves against nothing and its writes are lost.
  const bool carry = fault(fp::kChkCutCarry) != FaultAction::kSkip;
  log_.cut(store_, liveness_epoch(), carry);
}

std::size_t QrServer::replay_commit_log() {
  store_.clear_all();
  return log_.replay_into(store_);
}

void QrServer::maybe_autocut() {
  if (max_tail_bytes_ == 0 || !durable_log_) return;
  if (log_.tail_bytes() < max_tail_bytes_) return;
  cut_checkpoint();
  ++log_autocuts_;
  if (metrics_ != nullptr) {
    ++metrics_->log_autocuts;
    ++metrics_->checkpoint_cuts;
  }
}

SyncPullResponse QrServer::handle_sync_pull(net::NodeId from,
                                            const Bytes& payload) const {
  SyncPullResponse resp;
  // A replica that is itself catching up must not seed another one: its
  // store can be stale and the puller counts this reply toward a full read
  // quorum (the Q1 freshness argument needs every counted member current).
  resp.ok = !syncing_;
  if (!resp.ok) return resp;
  resp.total_objects = store_.num_objects();
  // The puller's post-replay bounds, ids ascending (empty payload = legacy
  // full pull).  Only strictly-newer copies ship: an object the puller
  // already holds at an equal version is pure wasted transfer.
  std::vector<SyncBound> have;
  if (!payload.empty()) have = SyncPullRequest::decode(payload).have;
  resp.entries.reserve(store_.num_objects());
  // Order fixed by the sort below.
  for (const auto& [id, e] : store_.entries()) {
    // Under sharded cohorts only ship what the puller replicates: seeding a
    // node with foreign-cohort objects would silently grow it back into a
    // full replica (and bloat the transfer the delta bound exists to trim).
    if (quorums_ != nullptr && !quorums_->replicates(from, id)) continue;
    const auto it = std::lower_bound(
        have.begin(), have.end(), id,
        [](const SyncBound& s, ObjectId v) { return s.id < v; });
    const Version bound = (it != have.end() && it->id == id) ? it->version : 0;
    if (e.version > bound) {
      resp.entries.push_back(SyncEntry{.id = id, .version = e.version,
                                       .data = e.data});
    }
  }
  std::sort(resp.entries.begin(), resp.entries.end(),
            [](const SyncEntry& a, const SyncEntry& b) { return a.id < b.id; });
  return resp;
}

bool QrServer::check_protected(ObjectId id, TxnId txn) {
  if (!store_.protected_against(id, txn)) return false;
  if (protection_lease_ > 0 &&
      store_.expire_protection(id, rpc_.simulator().now(),
                               protection_lease_)) {
    // The protector's confirm is overdue by the whole lease: its
    // coordinator is dead (confirms are one-way and prompt).  Shed the
    // protection so this object does not stay unwritable forever.
    ++lease_breaks_;
    return false;
  }
  return true;
}

std::optional<ReadResponse> QrServer::validate(const ReadRequest& req) {
  // No Rqv under flat QR; QR-Q also ships no data-set (batch-cache reads are
  // validated wholesale at the batch vote).
  if (req.mode == NestingMode::kFlat || req.mode == NestingMode::kQueued) {
    return std::nullopt;
  }

  // Closed nesting: the shallowest invalid owner must abort (Alg. 1).
  bool any_invalid = false;
  TxnId abort_scope = 0;
  std::uint32_t abort_depth = std::numeric_limits<std::uint32_t>::max();
  // Checkpointing: the minimum invalid checkpoint epoch (Alg. 4).
  ChkEpoch abort_chk = std::numeric_limits<ChkEpoch>::max();

  for (const DataSetEntry& e : req.dataset) {
    const Version local = store_.version_of(e.id);
    const bool invalid =
        e.version < local || check_protected(e.id, req.root);
    if (!invalid) continue;
    any_invalid = true;
    // Alg. 1 line 8: drop the owner from PR/PW.  Owners are tracked per
    // root transaction on replicas (CTs keep no remote metadata), so the
    // bookkeeping key is the root.
    store_.drop_txn(req.root);
    if (req.mode == NestingMode::kClosed) {
      if (e.owner_depth < abort_depth) {
        abort_depth = e.owner_depth;
        abort_scope = e.owner;
      }
    } else {  // kCheckpoint
      if (e.owner_chk < abort_chk) abort_chk = e.owner_chk;
    }
  }

  if (!any_invalid) return std::nullopt;
  ++validation_failures_;

  ReadResponse resp;
  resp.status = ReadStatus::kAbort;
  if (req.mode == NestingMode::kClosed) {
    resp.abort_scope = abort_scope;
    resp.abort_depth = abort_depth;
  } else {
    resp.abort_chk = abort_chk;
  }
  return resp;
}

ReadResponse QrServer::handle_read(const ReadRequest& req) {
  // While catching up this replica's copies may be stale; kMissing makes the
  // reader lean on the rest of its quorum (Q1 holds -- a syncing node is not
  // yet counted live by the provider, so quorums that include it are larger
  // than needed, never smaller).
  if (syncing_) {
    ReadResponse missing;
    missing.status = ReadStatus::kMissing;
    return missing;
  }

  if (auto abort = validate(req)) return *abort;

  ReadResponse resp;
  const store::ReplicaEntry* e = store_.find(req.object);
  if (e == nullptr) {
    resp.status = ReadStatus::kMissing;
    return resp;
  }
  // A protected object is mid-2PC: its next version is decided but not yet
  // applied.  Under Rqv (QR-CN / QR-CHK) serving the old copy would hand the
  // requester a doomed version, so report a conflict instead (the same rule
  // Alg. 1 applies to data-set entries).  Flat QR has no read-time conflict
  // detection: it serves the current (old) copy and lets the commit-time
  // validation catch the conflict.  QR-Q reads behave like flat -- conflicts
  // surface at the batch vote, where the stale-id reply triggers a targeted
  // re-fetch instead of a read-time abort.
  if ((req.mode == NestingMode::kClosed ||
       req.mode == NestingMode::kCheckpoint) &&
      check_protected(req.object, req.root)) {
    ReadResponse abort;
    abort.status = ReadStatus::kAbort;
    if (req.mode == NestingMode::kClosed) {
      // The conflict is on the object being fetched: the fetching scope
      // itself retries.  The requester maps scope id 0 to "current scope".
      abort.abort_scope = 0;
      abort.abort_depth = std::numeric_limits<std::uint32_t>::max();
    } else if (req.mode == NestingMode::kCheckpoint) {
      abort.abort_chk = std::numeric_limits<ChkEpoch>::max();
    }
    ++validation_failures_;
    return abort;
  }

  resp.status = ReadStatus::kOk;
  resp.version = e->version;
  resp.data = e->data;

  // Alg. 2 line 17-18: PR/PW metadata is kept for root transactions only,
  // which is what lets a CT commit locally.
  if (req.for_write) {
    store_.add_writer(req.object, req.root);
  } else {
    store_.add_reader(req.object, req.root);
  }
  return resp;
}

VoteResponse QrServer::handle_commit_request(const CommitRequest& req) {
  // A syncing replica's versions are untrustworthy in both directions: a
  // stale version would let a conflicting write pass validation.  Abort and
  // let the coordinator retry once the quorum refreshes.
  if (syncing_) return VoteResponse{.commit = false};

  // Decide commit/abort from local object state (paper §II): every read-set
  // version must still be current here, and nothing in either set may be
  // protected by a competing transaction.  The test-only bypass votes
  // commit unconditionally -- the broken protocol the history checker must
  // catch (stale reads and competing writers both slip through).
  if (!skip_commit_validation_) {
    for (const CommitReadEntry& e : req.readset) {
      if (e.version < store_.version_of(e.id) ||
          check_protected(e.id, req.txn)) {
        return VoteResponse{.commit = false};
      }
    }
    for (const CommitWriteEntry& e : req.writeset) {
      if (e.base < store_.version_of(e.id) ||
          check_protected(e.id, req.txn)) {
        return VoteResponse{.commit = false};
      }
    }
  }
  // Commit vote: lock the write-set (paper: object field protected = true).
  // The test-only bypass skips the locks too: with validation off two
  // competing writers may both reach this point, and stacking protections
  // would (rightly) trip the store's single-protector invariant -- the
  // broken protocol must fail by committing conflicting versions, not by
  // crashing the replica.  unprotect() at confirm is a lenient no-op.
  if (!skip_commit_validation_) {
    for (const CommitWriteEntry& e : req.writeset) {
      // A cross-shard commit multicast reaches the union of the touched
      // cohorts' write quorums; each member only locks what it replicates.
      if (!replicated_here(e.id)) continue;
      store_.protect(e.id, req.txn, rpc_.simulator().now());
    }
  }
  // WAL discipline: the vote is durable before the reply leaves the node.
  // Read-only write-sets log nothing (there is nothing to replay).
  if (durable_log_ && !req.writeset.empty() &&
      fault(fp::kLogPrepare) != FaultAction::kSkip) {
    std::vector<store::LoggedWrite> writes;
    writes.reserve(req.writeset.size());
    for (const CommitWriteEntry& e : req.writeset) {
      if (!replicated_here(e.id)) continue;
      writes.push_back(store::LoggedWrite{e.id, e.base, 1, e.data});
    }
    if (!writes.empty()) {
      log_.append_prepare(req.txn, std::move(writes), liveness_epoch());
      maybe_autocut();
    }
  }
  // Crash exactly between the durable vote and the reply (a dead sender's
  // reply is cut at send, so a kPanic here means the coordinator never
  // hears this vote).
  fault(fp::kServerVote);
  return VoteResponse{.commit = true};
}

BatchVoteResponse QrServer::handle_batch_commit_request(
    const BatchCommitRequest& req) {
  // Same rule as the per-transaction vote: a syncing replica's versions are
  // untrustworthy, so abort with no stale report (the coordinator refetches
  // everything when a vote carries no diagnosis).
  if (syncing_) return BatchVoteResponse{.commit = false, .stale = {}};

  BatchVoteResponse resp{.commit = true, .stale = {}};
  // The test-only bypass votes commit unconditionally and takes no
  // protections, exactly like the per-transaction path: the broken protocol
  // must fail by committing conflicting batches, not by crashing a replica.
  if (!skip_commit_validation_) {
    for (const CommitReadEntry& e : req.readset) {
      if (e.version < store_.version_of(e.id) ||
          check_protected(e.id, req.batch)) {
        resp.commit = false;
        resp.stale.push_back(e.id);
      }
    }
    for (const BatchWriteEntry& e : req.writeset) {
      if (e.base < store_.version_of(e.id) ||
          check_protected(e.id, req.batch)) {
        resp.commit = false;
        resp.stale.push_back(e.id);
      }
    }
    if (resp.commit) {
      for (const BatchWriteEntry& e : req.writeset) {
        if (!replicated_here(e.id)) continue;
        store_.protect(e.id, req.batch, rpc_.simulator().now());
      }
    }
  }
  if (resp.commit && durable_log_ && !req.writeset.empty() &&
      fault(fp::kLogPrepare) != FaultAction::kSkip) {
    std::vector<store::LoggedWrite> writes;
    writes.reserve(req.writeset.size());
    for (const BatchWriteEntry& e : req.writeset) {
      if (!replicated_here(e.id)) continue;
      writes.push_back(store::LoggedWrite{e.id, e.base, e.steps, e.data});
    }
    if (!writes.empty()) {
      log_.append_prepare(req.batch, std::move(writes), liveness_epoch());
      maybe_autocut();
    }
  }
  if (resp.commit) fault(fp::kServerVote);
  return resp;
}

void QrServer::handle_batch_commit_confirm(const BatchCommitConfirm& confirm) {
  // Crash (kPanic) or drop (kSkip) exactly at the confirm boundary: the
  // outcome is neither logged nor applied, and the protections stand until
  // the lease sheds them.
  const FaultAction at_apply = fault(fp::kServerConfirmApply);
  if (at_apply == FaultAction::kSkip || at_apply == FaultAction::kPanic) return;
  // WAL discipline: the outcome is durable before it is applied.  Only
  // transactions that logged a local prepare (some write replicated here)
  // need an outcome record.
  bool any_local = false;
  for (const BatchWriteEntry& e : confirm.writeset) {
    if (replicated_here(e.id)) any_local = true;
  }
  if (durable_log_ && any_local &&
      fault(fp::kLogConfirm) != FaultAction::kSkip) {
    log_.append_confirm(confirm.batch, confirm.commit, liveness_epoch());
    maybe_autocut();
  }
  if (confirm.commit) {
    for (const BatchWriteEntry& e : confirm.writeset) {
      if (!replicated_here(e.id)) continue;
      // The batch read `base` through a read quorum (fresh by Q1) and
      // absorbed `steps` speculative writes in queue order; every
      // write-quorum member converges on base+steps with the final value.
      // The intermediate versions exist only in the recorded history, where
      // the checker certifies them as a serial chain.
      store_.unprotect(e.id, confirm.batch);
      store_.apply(e.id, e.base + e.steps, e.data);
    }
  } else {
    for (const BatchWriteEntry& e : confirm.writeset) {
      if (!replicated_here(e.id)) continue;
      store_.unprotect(e.id, confirm.batch);
    }
  }
  store_.drop_txn(confirm.batch);
}

void QrServer::handle_commit_confirm(const CommitConfirm& confirm) {
  // Crash (kPanic) or drop (kSkip) exactly at the confirm boundary.
  const FaultAction at_apply = fault(fp::kServerConfirmApply);
  if (at_apply == FaultAction::kSkip || at_apply == FaultAction::kPanic) return;
  // WAL discipline: the outcome is durable before it is applied.  Only
  // transactions that logged a local prepare (some write replicated here)
  // need an outcome record.
  bool any_local = false;
  for (const CommitWriteEntry& e : confirm.writeset) {
    if (replicated_here(e.id)) any_local = true;
  }
  if (durable_log_ && any_local &&
      fault(fp::kLogConfirm) != FaultAction::kSkip) {
    log_.append_confirm(confirm.txn, confirm.commit, liveness_epoch());
    maybe_autocut();
  }
  if (confirm.commit) {
    for (const CommitWriteEntry& e : confirm.writeset) {
      if (!replicated_here(e.id)) continue;
      // The committed version is base+1.  The writer read `base` through a
      // read quorum, so by Q1 it was the globally newest version; base+1 is
      // therefore fresh, and every write-quorum member converges on it.
      store_.unprotect(e.id, confirm.txn);
      store_.apply(e.id, e.base + 1, e.data);
    }
  } else {
    for (const CommitWriteEntry& e : confirm.writeset) {
      if (!replicated_here(e.id)) continue;
      store_.unprotect(e.id, confirm.txn);
    }
  }
  store_.drop_txn(confirm.txn);
}

}  // namespace qrdtm::core
