#include "core/qr_server.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "core/backoff.h"

namespace qrdtm::core {

namespace {

/// The node that coordinates `txn`.  Transaction/batch ids are drawn from
/// TxnRuntime's scope counter, seeded (node + 1) << 40, so the upper bits
/// name the issuing node.  Returns num_nodes (an invalid id) for ids outside
/// the scheme (e.g. standalone-rig hand-rolled txn ids).
net::NodeId coordinator_of(TxnId txn, std::uint32_t num_nodes) {
  const TxnId hi = txn >> 40;
  if (hi == 0 || hi > num_nodes) return num_nodes;
  return static_cast<net::NodeId>(hi - 1);
}

}  // namespace

QrServer::QrServer(net::RpcEndpoint& rpc) : rpc_(rpc), id_(rpc.id()) {
  // Distinct deterministic jitter stream per replica for the termination
  // backoff (independent of the workload's Rng draws).
  term_rng_ = Rng(0x7e39a1c5u + static_cast<std::uint64_t>(id_) * 0x9e37u);
  // Replies are encoded into pooled buffers: in steady state a replica
  // serves reads and votes without touching the allocator.
  rpc.register_service(msg::kRead,
                       [this](net::NodeId, const Bytes& b) -> std::optional<Bytes> {
                         ReadResponse resp = handle_read(ReadRequest::decode(b));
                         if (tracer_ != nullptr) {
                           tracer_->instant(TraceKind::kServerRead, id_,
                                            rpc_.inbound_trace(),
                                            rpc_.simulator().now(),
                                            static_cast<std::uint64_t>(resp.status));
                         }
                         Writer w(rpc_.acquire_buffer(msg::kRead));
                         resp.encode_into(w);
                         return std::move(w).take();
                       });
  rpc.register_service(
      msg::kCommitRequest,
      [this](net::NodeId, const Bytes& b) -> std::optional<Bytes> {
        VoteResponse vote = handle_commit_request(CommitRequest::decode(b));
        if (tracer_ != nullptr) {
          tracer_->instant(TraceKind::kServerVote, id_, rpc_.inbound_trace(),
                           rpc_.simulator().now(), vote.commit ? 1 : 0);
        }
        Writer w(rpc_.acquire_buffer(msg::kCommitRequest));
        vote.encode_into(w);
        return std::move(w).take();
      });
  rpc.register_service(
      msg::kCommitConfirm,
      [this](net::NodeId, const Bytes& b) -> std::optional<Bytes> {
        handle_commit_confirm(CommitConfirm::decode(b));
        return std::nullopt;  // one-way
      });
  rpc.register_service(
      msg::kBatchCommitRequest,
      [this](net::NodeId, const Bytes& b) -> std::optional<Bytes> {
        BatchVoteResponse vote =
            handle_batch_commit_request(BatchCommitRequest::decode(b));
        if (tracer_ != nullptr) {
          tracer_->instant(TraceKind::kServerVote, id_, rpc_.inbound_trace(),
                           rpc_.simulator().now(), vote.commit ? 1 : 0);
        }
        Writer w(rpc_.acquire_buffer(msg::kBatchCommitRequest));
        vote.encode_into(w);
        return std::move(w).take();
      });
  rpc.register_service(
      msg::kBatchCommitConfirm,
      [this](net::NodeId, const Bytes& b) -> std::optional<Bytes> {
        handle_batch_commit_confirm(BatchCommitConfirm::decode(b));
        return std::nullopt;  // one-way
      });
  rpc.register_service(msg::kSyncPull,
                       [this](net::NodeId from, const Bytes& b) -> std::optional<Bytes> {
                         SyncPullResponse resp = handle_sync_pull(from, b);
                         Writer w(rpc_.acquire_buffer(msg::kSyncPull));
                         resp.encode_into(w);
                         return std::move(w).take();
                       });
  // Cooperative termination: both directions are one-way notifies, so a
  // dead coordinator or peer simply never answers (no RPC timeout to tune).
  rpc.register_service(
      msg::kTxnStatusRequest,
      [this](net::NodeId from, const Bytes& b) -> std::optional<Bytes> {
        handle_txn_status_request(from, TxnStatusRequest::decode(b));
        return std::nullopt;  // answered with a kTxnStatusResponse notify
      });
  rpc.register_service(
      msg::kTxnStatusResponse,
      [this](net::NodeId from, const Bytes& b) -> std::optional<Bytes> {
        handle_txn_status_response(from, TxnStatusResponse::decode(b));
        return std::nullopt;  // one-way
      });
}

std::uint32_t QrServer::liveness_epoch() const {
  return rpc_.network().epoch(id_);
}

FaultAction QrServer::fault(const char* point) {
  return faults_ ? faults_->fire(point, id_) : FaultAction::kNone;
}

void QrServer::seed_object(ObjectId id, Bytes data, Version version) {
  if (durable_log_) log_.append_apply(id, version, data, liveness_epoch());
  store_.seed(id, std::move(data), version);
}

void QrServer::cut_checkpoint() {
  // fp::kChkCutCarry armed kSkip models the Greengage checkpoint_dtx_info
  // bug: the cut forgets prepared-but-unconfirmed transactions, so a
  // post-cut confirm resolves against nothing and its writes are lost.
  const bool carry = fault(fp::kChkCutCarry) != FaultAction::kSkip;
  log_.cut(store_, liveness_epoch(), carry);
}

std::size_t QrServer::replay_commit_log() {
  store_.clear_all();
  // A restart forgets the volatile termination bookkeeping (protections are
  // gone with the store) but rebuilds the confirm applied-set from the log,
  // so re-driven confirms for outcomes this node already applied in a past
  // incarnation stay idempotent at the WAL level (replay pairs them).
  prepared_.clear();
  term_.clear();
  outcomes_.clear();
  return log_.replay_into(store_, &outcomes_);
}

void QrServer::maybe_autocut() {
  if (max_tail_bytes_ == 0 || !durable_log_) return;
  if (log_.tail_bytes() < max_tail_bytes_) return;
  cut_checkpoint();
  ++log_autocuts_;
  if (metrics_ != nullptr) {
    ++metrics_->log_autocuts;
    ++metrics_->checkpoint_cuts;
  }
}

SyncPullResponse QrServer::handle_sync_pull(net::NodeId from,
                                            const Bytes& payload) const {
  SyncPullResponse resp;
  // A replica that is itself catching up must not seed another one: its
  // store can be stale and the puller counts this reply toward a full read
  // quorum (the Q1 freshness argument needs every counted member current).
  resp.ok = !syncing_;
  if (!resp.ok) return resp;
  resp.total_objects = store_.num_objects();
  // The puller's post-replay bounds, ids ascending (empty payload = legacy
  // full pull).  Only strictly-newer copies ship: an object the puller
  // already holds at an equal version is pure wasted transfer.
  std::vector<SyncBound> have;
  if (!payload.empty()) have = SyncPullRequest::decode(payload).have;
  resp.entries.reserve(store_.num_objects());
  // Order fixed by the sort below.
  for (const auto& [id, e] : store_.entries()) {
    // Under sharded cohorts only ship what the puller replicates: seeding a
    // node with foreign-cohort objects would silently grow it back into a
    // full replica (and bloat the transfer the delta bound exists to trim).
    if (quorums_ != nullptr && !quorums_->replicates(from, id)) continue;
    const auto it = std::lower_bound(
        have.begin(), have.end(), id,
        [](const SyncBound& s, ObjectId v) { return s.id < v; });
    const Version bound = (it != have.end() && it->id == id) ? it->version : 0;
    if (e.version > bound) {
      resp.entries.push_back(SyncEntry{.id = id, .version = e.version,
                                       .data = e.data});
    }
  }
  std::sort(resp.entries.begin(), resp.entries.end(),
            [](const SyncEntry& a, const SyncEntry& b) { return a.id < b.id; });
  return resp;
}

bool QrServer::check_protected(ObjectId id, TxnId txn) {
  if (!store_.protected_against(id, txn)) return false;
  if (protection_lease_ > 0) {
    const sim::Tick now = rpc_.simulator().now();
    if (store_.expire_protection(id, now, protection_lease_)) {
      // The protector's confirm is overdue by the whole lease and the vote
      // was never made durable here: shedding cannot lose an acknowledged
      // commit, so free the object for later writers.
      ++lease_breaks_;
      return false;
    }
    // A *prepared* protection (durable yes-vote) may back an acknowledged
    // commit whose coordinator died mid-broadcast.  It must not be shed on
    // a timer; kick off the cooperative termination protocol instead and
    // keep reporting the object as protected until a decision is found.
    if (store_.prepared(id) &&
        store_.lease_expired(id, now, protection_lease_)) {
      if (const store::ReplicaEntry* e = store_.find(id)) {
        start_termination(e->protector);
      }
    }
  }
  return true;
}

std::optional<ReadResponse> QrServer::validate(const ReadRequest& req) {
  // No Rqv under flat QR; QR-Q also ships no data-set (batch-cache reads are
  // validated wholesale at the batch vote).
  if (req.mode == NestingMode::kFlat || req.mode == NestingMode::kQueued) {
    return std::nullopt;
  }

  // Closed nesting: the shallowest invalid owner must abort (Alg. 1).
  bool any_invalid = false;
  TxnId abort_scope = 0;
  std::uint32_t abort_depth = std::numeric_limits<std::uint32_t>::max();
  // Checkpointing: the minimum invalid checkpoint epoch (Alg. 4).
  ChkEpoch abort_chk = std::numeric_limits<ChkEpoch>::max();

  for (const DataSetEntry& e : req.dataset) {
    const Version local = store_.version_of(e.id);
    const bool invalid =
        e.version < local || check_protected(e.id, req.root);
    if (!invalid) continue;
    any_invalid = true;
    // Alg. 1 line 8: drop the owner from PR/PW.  Owners are tracked per
    // root transaction on replicas (CTs keep no remote metadata), so the
    // bookkeeping key is the root.
    store_.drop_txn(req.root);
    if (req.mode == NestingMode::kClosed) {
      if (e.owner_depth < abort_depth) {
        abort_depth = e.owner_depth;
        abort_scope = e.owner;
      }
    } else {  // kCheckpoint
      if (e.owner_chk < abort_chk) abort_chk = e.owner_chk;
    }
  }

  if (!any_invalid) return std::nullopt;
  ++validation_failures_;

  ReadResponse resp;
  resp.status = ReadStatus::kAbort;
  if (req.mode == NestingMode::kClosed) {
    resp.abort_scope = abort_scope;
    resp.abort_depth = abort_depth;
  } else {
    resp.abort_chk = abort_chk;
  }
  return resp;
}

ReadResponse QrServer::handle_read(const ReadRequest& req) {
  // While catching up this replica's copies may be stale; kMissing makes the
  // reader lean on the rest of its quorum (Q1 holds -- a syncing node is not
  // yet counted live by the provider, so quorums that include it are larger
  // than needed, never smaller).
  if (syncing_) {
    ReadResponse missing;
    missing.status = ReadStatus::kMissing;
    return missing;
  }

  if (auto abort = validate(req)) return *abort;

  ReadResponse resp;
  const store::ReplicaEntry* e = store_.find(req.object);
  if (e == nullptr) {
    resp.status = ReadStatus::kMissing;
    return resp;
  }
  // A protected object is mid-2PC: its next version is decided but not yet
  // applied.  Under Rqv (QR-CN / QR-CHK) serving the old copy would hand the
  // requester a doomed version, so report a conflict instead (the same rule
  // Alg. 1 applies to data-set entries).  Flat QR has no read-time conflict
  // detection: it serves the current (old) copy and lets the commit-time
  // validation catch the conflict.  QR-Q reads behave like flat -- conflicts
  // surface at the batch vote, where the stale-id reply triggers a targeted
  // re-fetch instead of a read-time abort.
  if ((req.mode == NestingMode::kClosed ||
       req.mode == NestingMode::kCheckpoint) &&
      check_protected(req.object, req.root)) {
    ReadResponse abort;
    abort.status = ReadStatus::kAbort;
    if (req.mode == NestingMode::kClosed) {
      // The conflict is on the object being fetched: the fetching scope
      // itself retries.  The requester maps scope id 0 to "current scope".
      abort.abort_scope = 0;
      abort.abort_depth = std::numeric_limits<std::uint32_t>::max();
    } else if (req.mode == NestingMode::kCheckpoint) {
      abort.abort_chk = std::numeric_limits<ChkEpoch>::max();
    }
    ++validation_failures_;
    return abort;
  }

  resp.status = ReadStatus::kOk;
  resp.version = e->version;
  resp.data = e->data;

  // Alg. 2 line 17-18: PR/PW metadata is kept for root transactions only,
  // which is what lets a CT commit locally.
  if (req.for_write) {
    store_.add_writer(req.object, req.root);
  } else {
    store_.add_reader(req.object, req.root);
  }
  return resp;
}

VoteResponse QrServer::handle_commit_request(const CommitRequest& req) {
  // A syncing replica's versions are untrustworthy in both directions: a
  // stale version would let a conflicting write pass validation.  Abort and
  // let the coordinator retry once the quorum refreshes.
  if (syncing_) return VoteResponse{.commit = false};

  // Decide commit/abort from local object state (paper §II): every read-set
  // version must still be current here, and nothing in either set may be
  // protected by a competing transaction.  The test-only bypass votes
  // commit unconditionally -- the broken protocol the history checker must
  // catch (stale reads and competing writers both slip through).
  if (!skip_commit_validation_) {
    for (const CommitReadEntry& e : req.readset) {
      if (e.version < store_.version_of(e.id) ||
          check_protected(e.id, req.txn)) {
        return VoteResponse{.commit = false};
      }
    }
    for (const CommitWriteEntry& e : req.writeset) {
      if (e.base < store_.version_of(e.id) ||
          check_protected(e.id, req.txn)) {
        return VoteResponse{.commit = false};
      }
    }
  }
  // Commit vote: lock the write-set (paper: object field protected = true).
  // The test-only bypass skips the locks too: with validation off two
  // competing writers may both reach this point, and stacking protections
  // would (rightly) trip the store's single-protector invariant -- the
  // broken protocol must fail by committing conflicting versions, not by
  // crashing the replica.  unprotect() at confirm is a lenient no-op.
  if (!skip_commit_validation_) {
    for (const CommitWriteEntry& e : req.writeset) {
      // A cross-shard commit multicast reaches the union of the touched
      // cohorts' write quorums; each member only locks what it replicates.
      if (!replicated_here(e.id)) continue;
      store_.protect(e.id, req.txn, rpc_.simulator().now());
    }
  }
  // WAL discipline: the vote is durable before the reply leaves the node.
  // Read-only write-sets log nothing (there is nothing to replay).
  if (durable_log_ && !req.writeset.empty() &&
      fault(fp::kLogPrepare) != FaultAction::kSkip) {
    std::vector<store::LoggedWrite> writes;
    writes.reserve(req.writeset.size());
    for (const CommitWriteEntry& e : req.writeset) {
      if (!replicated_here(e.id)) continue;
      writes.push_back(store::LoggedWrite{e.id, e.base, 1, e.data});
    }
    if (!writes.empty()) {
      // The protection is now prepared-backed: only a confirm or a
      // termination-round decision may release it.  Record the
      // coordinator's liveness epoch as seen at vote time so a later
      // termination round can tell "still deciding" from "restarted".
      for (const store::LoggedWrite& lw : writes) {
        store_.mark_prepared(lw.id, req.txn);
      }
      const net::NodeId coord =
          coordinator_of(req.txn, rpc_.network().num_nodes());
      prepared_[req.txn] = PreparedMeta{
          coord, coord < rpc_.network().num_nodes()
                     ? rpc_.network().epoch(coord)
                     : 0};
      log_.append_prepare(req.txn, std::move(writes), liveness_epoch());
      maybe_autocut();
    }
  }
  // Crash exactly between the durable vote and the reply (a dead sender's
  // reply is cut at send, so a kPanic here means the coordinator never
  // hears this vote).
  fault(fp::kServerVote);
  return VoteResponse{.commit = true};
}

BatchVoteResponse QrServer::handle_batch_commit_request(
    const BatchCommitRequest& req) {
  // Same rule as the per-transaction vote: a syncing replica's versions are
  // untrustworthy, so abort with no stale report (the coordinator refetches
  // everything when a vote carries no diagnosis).
  if (syncing_) return BatchVoteResponse{.commit = false, .stale = {}};

  BatchVoteResponse resp{.commit = true, .stale = {}};
  // The test-only bypass votes commit unconditionally and takes no
  // protections, exactly like the per-transaction path: the broken protocol
  // must fail by committing conflicting batches, not by crashing a replica.
  if (!skip_commit_validation_) {
    for (const CommitReadEntry& e : req.readset) {
      if (e.version < store_.version_of(e.id) ||
          check_protected(e.id, req.batch)) {
        resp.commit = false;
        resp.stale.push_back(e.id);
      }
    }
    for (const BatchWriteEntry& e : req.writeset) {
      if (e.base < store_.version_of(e.id) ||
          check_protected(e.id, req.batch)) {
        resp.commit = false;
        resp.stale.push_back(e.id);
      }
    }
    if (resp.commit) {
      for (const BatchWriteEntry& e : req.writeset) {
        if (!replicated_here(e.id)) continue;
        store_.protect(e.id, req.batch, rpc_.simulator().now());
      }
    }
  }
  if (resp.commit && durable_log_ && !req.writeset.empty() &&
      fault(fp::kLogPrepare) != FaultAction::kSkip) {
    std::vector<store::LoggedWrite> writes;
    writes.reserve(req.writeset.size());
    for (const BatchWriteEntry& e : req.writeset) {
      if (!replicated_here(e.id)) continue;
      writes.push_back(store::LoggedWrite{e.id, e.base, e.steps, e.data});
    }
    if (!writes.empty()) {
      // Same prepared-backing rule as the per-transaction vote: the batch
      // decision covers the whole batch, keyed by its batch id.
      for (const store::LoggedWrite& lw : writes) {
        store_.mark_prepared(lw.id, req.batch);
      }
      const net::NodeId coord =
          coordinator_of(req.batch, rpc_.network().num_nodes());
      prepared_[req.batch] = PreparedMeta{
          coord, coord < rpc_.network().num_nodes()
                     ? rpc_.network().epoch(coord)
                     : 0};
      log_.append_prepare(req.batch, std::move(writes), liveness_epoch());
      maybe_autocut();
    }
  }
  if (resp.commit) fault(fp::kServerVote);
  return resp;
}

void QrServer::handle_batch_commit_confirm(const BatchCommitConfirm& confirm) {
  // At-least-once delivery: recovered coordinators and resolving peers
  // retransmit confirms, so a repeat within the same liveness epoch is
  // counted and dropped, never double-applied.  A live local prepare
  // (protection held / pending log entry) marks the confirm as the outcome
  // of a FRESH 2PC round -- a retried root reuses its id -- so it must be
  // applied, not deduped against the previous round's outcome.
  bool live_prepare = log_.find_pending(confirm.batch) != nullptr;
  for (const BatchWriteEntry& e : confirm.writeset) {
    if (store_.holds_protection(e.id, confirm.batch)) {
      live_prepare = true;
      break;
    }
  }
  if (!live_prepare && confirm_is_duplicate(confirm.batch)) return;
  // Crash (kPanic) or drop (kSkip) exactly at the confirm boundary: the
  // outcome is neither logged nor applied, and the protections stand until
  // the lease sheds them.
  const FaultAction at_apply = fault(fp::kServerConfirmApply);
  if (at_apply == FaultAction::kSkip || at_apply == FaultAction::kPanic) return;
  // WAL discipline: the outcome is durable before it is applied.  Only
  // transactions that logged a local prepare (some write replicated here)
  // need an outcome record.
  bool any_local = false;
  for (const BatchWriteEntry& e : confirm.writeset) {
    if (replicated_here(e.id)) any_local = true;
  }
  if (durable_log_ && any_local &&
      fault(fp::kLogConfirm) != FaultAction::kSkip) {
    log_.append_confirm(confirm.batch, confirm.commit, liveness_epoch());
    maybe_autocut();
  }
  if (confirm.commit) {
    for (const BatchWriteEntry& e : confirm.writeset) {
      if (!replicated_here(e.id)) continue;
      // The batch read `base` through a read quorum (fresh by Q1) and
      // absorbed `steps` speculative writes in queue order; every
      // write-quorum member converges on base+steps with the final value.
      // The intermediate versions exist only in the recorded history, where
      // the checker certifies them as a serial chain.
      store_.unprotect(e.id, confirm.batch);
      store_.apply(e.id, e.base + e.steps, e.data);
    }
  } else {
    for (const BatchWriteEntry& e : confirm.writeset) {
      if (!replicated_here(e.id)) continue;
      store_.unprotect(e.id, confirm.batch);
    }
  }
  store_.drop_txn(confirm.batch);
  record_outcome(confirm.batch, confirm.commit);
}

void QrServer::handle_commit_confirm(const CommitConfirm& confirm) {
  // At-least-once delivery; fresh-round detection as in
  // handle_batch_commit_confirm (a retried root reuses its txn id).
  bool live_prepare = log_.find_pending(confirm.txn) != nullptr;
  for (const CommitWriteEntry& e : confirm.writeset) {
    if (store_.holds_protection(e.id, confirm.txn)) {
      live_prepare = true;
      break;
    }
  }
  if (!live_prepare && confirm_is_duplicate(confirm.txn)) return;
  // Crash (kPanic) or drop (kSkip) exactly at the confirm boundary.
  const FaultAction at_apply = fault(fp::kServerConfirmApply);
  if (at_apply == FaultAction::kSkip || at_apply == FaultAction::kPanic) return;
  // WAL discipline: the outcome is durable before it is applied.  Only
  // transactions that logged a local prepare (some write replicated here)
  // need an outcome record.
  bool any_local = false;
  for (const CommitWriteEntry& e : confirm.writeset) {
    if (replicated_here(e.id)) any_local = true;
  }
  if (durable_log_ && any_local &&
      fault(fp::kLogConfirm) != FaultAction::kSkip) {
    log_.append_confirm(confirm.txn, confirm.commit, liveness_epoch());
    maybe_autocut();
  }
  if (confirm.commit) {
    for (const CommitWriteEntry& e : confirm.writeset) {
      if (!replicated_here(e.id)) continue;
      // The committed version is base+1.  The writer read `base` through a
      // read quorum, so by Q1 it was the globally newest version; base+1 is
      // therefore fresh, and every write-quorum member converges on it.
      store_.unprotect(e.id, confirm.txn);
      store_.apply(e.id, e.base + 1, e.data);
    }
  } else {
    for (const CommitWriteEntry& e : confirm.writeset) {
      if (!replicated_here(e.id)) continue;
      store_.unprotect(e.id, confirm.txn);
    }
  }
  store_.drop_txn(confirm.txn);
  record_outcome(confirm.txn, confirm.commit);
}

bool QrServer::confirm_is_duplicate(TxnId txn) {
  const auto it = outcomes_.find(txn);
  if (it == outcomes_.end() || it->second.first != liveness_epoch()) {
    return false;
  }
  ++confirm_duplicates_;
  if (metrics_ != nullptr) ++metrics_->confirm_duplicates;
  return true;
}

void QrServer::record_outcome(TxnId txn, bool commit) {
  outcomes_[txn] = {liveness_epoch(), commit};
  prepared_.erase(txn);
  term_.erase(txn);
}

void QrServer::start_termination(TxnId txn) {
  if (term_.find(txn) != term_.end()) return;  // already running
  const auto pit = prepared_.find(txn);
  if (pit == prepared_.end()) return;  // no vote metadata (legacy rigs)
  if (quorums_ == nullptr && pit->second.coordinator >=
                                 rpc_.network().num_nodes()) {
    return;  // standalone rig with hand-rolled ids: nobody to ask
  }

  Termination t;
  t.coordinator = pit->second.coordinator;
  t.coord_epoch = pit->second.coord_epoch;
  // Query targets: the coordinator plus the union of the write quorums of
  // every locally-prepared object (under sharded cohorts the in-doubt
  // transaction may span shards; any member of any touched cohort may have
  // applied the commit).  Sorted + deduped for deterministic send order.
  if (t.coordinator < rpc_.network().num_nodes()) {
    t.targets.push_back(t.coordinator);
  }
  if (quorums_ != nullptr) {
    if (const auto* writes = log_.find_pending(txn)) {
      for (const store::LoggedWrite& lw : *writes) {
        // Mid-chaos the provider may be unable to form a quorum (too many
        // members dead or syncing); ask whoever it can name and let the
        // bounded retry rounds pick up the rest after recoveries.
        try {
          for (net::NodeId n : quorums_->write_quorum(id_, lw.id)) {
            t.targets.push_back(n);
          }
        } catch (const quorum::QuorumUnavailable&) {
        }
      }
    }
  }
  std::sort(t.targets.begin(), t.targets.end());
  t.targets.erase(std::unique(t.targets.begin(), t.targets.end()),
                  t.targets.end());
  t.targets.erase(std::remove(t.targets.begin(), t.targets.end(), id_),
                  t.targets.end());
  if (t.targets.empty()) return;

  term_.emplace(txn, std::move(t));
  rpc_.simulator().spawn(termination_task(txn));
}

sim::Task<void> QrServer::termination_task(TxnId txn) {
  // Bounded rounds: on exhaustion the in-flight state is dropped (the
  // protection stays!) so the next conflicting access starts a fresh
  // attempt -- the transaction stays in-doubt rather than guessing.
  constexpr std::uint32_t kMaxRounds = 4;
  for (std::uint32_t round = 1; round <= kMaxRounds; ++round) {
    {
      const auto it = term_.find(txn);
      if (it == term_.end()) co_return;  // resolved meanwhile
      Termination& t = it->second;
      t.round_no_decision.clear();
      t.coord_no_decision_newer = false;
      if (metrics_ != nullptr) ++metrics_->termination_rounds;
      fault(fp::kTermQuery);
      TxnStatusRequest req{txn};
      for (net::NodeId n : t.targets) {
        Writer w(rpc_.acquire_buffer(msg::kTxnStatusRequest));
        req.encode_into(w);
        rpc_.notify(n, msg::kTxnStatusRequest, std::move(w).take());
      }
    }
    co_await rpc_.simulator().delay(termination_timeout_);
    {
      const auto it = term_.find(txn);
      if (it == term_.end()) co_return;  // a response resolved it
      Termination& t = it->second;
      // Presumed-abort needs the FULL round to deny knowledge: every
      // queried peer answered "no decision" AND the coordinator did so from
      // a newer liveness epoch.  Its restart + empty decision log prove no
      // confirm ever left it (decisions are durable before the first
      // confirm), so aborting cannot contradict an acknowledged commit.  A
      // same-epoch coordinator answer of kUnknown means "still deciding":
      // wait.  A dead peer never answers: wait (never guess).
      if (t.coord_no_decision_newer &&
          t.round_no_decision.size() == t.targets.size()) {
        resolve_indoubt(txn, false);
        co_return;
      }
    }
    if (round < kMaxRounds) {
      co_await rpc_.simulator().delay(draw_backoff_wait(
          termination_timeout_, termination_timeout_ * 8, round, term_rng_));
    }
  }
  term_.erase(txn);
}

void QrServer::handle_txn_status_request(net::NodeId from,
                                         const TxnStatusRequest& req) {
  TxnStatusResponse resp;
  resp.txn = req.txn;
  resp.epoch = liveness_epoch();
  const auto oit = outcomes_.find(req.txn);
  if (oit != outcomes_.end()) {
    // Applied here: an applied commit is proof of a commit decision.
    resp.status =
        oit->second.second ? TxnStatus::kCommitted : TxnStatus::kAborted;
  } else if (const auto verdict = log_.decision_verdict(req.txn)) {
    // This node coordinated the transaction and holds the durable decision.
    resp.status = *verdict ? TxnStatus::kCommitted : TxnStatus::kAborted;
  } else if (log_.find_pending(req.txn) != nullptr) {
    resp.status = TxnStatus::kPrepared;
  } else {
    resp.status = TxnStatus::kUnknown;
  }
  Writer w(rpc_.acquire_buffer(msg::kTxnStatusResponse));
  resp.encode_into(w);
  rpc_.notify(from, msg::kTxnStatusResponse, std::move(w).take());
}

void QrServer::handle_txn_status_response(net::NodeId from,
                                          const TxnStatusResponse& resp) {
  const auto it = term_.find(resp.txn);
  if (it == term_.end()) return;  // resolved or never in doubt here
  Termination& t = it->second;
  switch (resp.status) {
    case TxnStatus::kCommitted:
      resolve_indoubt(resp.txn, true);
      return;
    case TxnStatus::kAborted:
      resolve_indoubt(resp.txn, false);
      return;
    case TxnStatus::kPrepared:
    case TxnStatus::kUnknown:
      t.round_no_decision.insert(from);
      // The coordinator answering from a NEWER epoch without a decision --
      // kUnknown or even kPrepared (it may be a quorum member holding its
      // own pending prepare) -- proves it restarted before logging one, so
      // no confirm was ever sent.  Same-epoch kUnknown = still deciding.
      if (from == t.coordinator && resp.epoch > t.coord_epoch) {
        t.coord_no_decision_newer = true;
      }
      return;
  }
}

void QrServer::resolve_indoubt(TxnId txn, bool commit) {
  // Copy the pending writes FIRST: append_confirm settles the pending entry
  // in the log, and the writes live only there.
  std::vector<store::LoggedWrite> writes;
  if (const auto* pending = log_.find_pending(txn)) writes = *pending;
  if (durable_log_ && !writes.empty() &&
      fault(fp::kLogConfirm) != FaultAction::kSkip) {
    log_.append_confirm(txn, commit, liveness_epoch());
    maybe_autocut();
  }
  bool batch = false;
  for (const store::LoggedWrite& lw : writes) {
    if (lw.steps > 1) batch = true;
    store_.unprotect(lw.id, txn);
    if (commit) store_.apply(lw.id, lw.base + lw.steps, lw.data);
  }
  store_.drop_txn(txn);
  if (metrics_ != nullptr) {
    if (commit) {
      ++metrics_->indoubt_resolved_commit;
    } else {
      ++metrics_->indoubt_resolved_abort;
    }
  }

  // Retransmit the confirm to the queried peers before forgetting the
  // termination state: any of them may hold the same in-doubt prepare, and
  // the original coordinator is gone.  At-least-once is safe -- receivers
  // dedupe on (txn, epoch) and apply() keeps only strictly-newer versions.
  // Under sharded cohorts the writeset covers only locally-replicated
  // objects; cross-cohort peers resolve their own shard by querying us (we
  // now answer kCommitted/kAborted from the applied-set).
  const auto it = term_.find(txn);
  if (it != term_.end() && !writes.empty()) {
    const net::MsgKind kind =
        batch ? msg::kBatchCommitConfirm : msg::kCommitConfirm;
    Bytes encoded;
    if (batch) {
      BatchCommitConfirm confirm;
      confirm.batch = txn;
      confirm.commit = commit;
      confirm.writeset.reserve(writes.size());
      for (const store::LoggedWrite& lw : writes) {
        confirm.writeset.push_back(
            BatchWriteEntry{lw.id, lw.base, lw.steps, lw.data});
      }
      Writer w(rpc_.acquire_buffer(kind));
      confirm.encode_into(w);
      encoded = std::move(w).take();
    } else {
      CommitConfirm confirm;
      confirm.txn = txn;
      confirm.commit = commit;
      confirm.writeset.reserve(writes.size());
      for (const store::LoggedWrite& lw : writes) {
        confirm.writeset.push_back(CommitWriteEntry{lw.id, lw.base, lw.data});
      }
      Writer w(rpc_.acquire_buffer(kind));
      confirm.encode_into(w);
      encoded = std::move(w).take();
    }
    if (metrics_ != nullptr) {
      metrics_->commit_messages += it->second.targets.size();
    }
    for (net::NodeId n : it->second.targets) {
      Bytes copy = rpc_.acquire_buffer(kind);
      copy.assign(encoded.begin(), encoded.end());
      rpc_.notify(n, kind, std::move(copy));
    }
    rpc_.release_buffer(std::move(encoded));
  }
  record_outcome(txn, commit);
}

std::size_t QrServer::redrive_open_decisions() {
  // Collect first: settle_decision mutates the map we iterate.
  std::vector<TxnId> txns;
  txns.reserve(log_.open_decisions().size());
  for (const auto& [txn, d] : log_.open_decisions()) txns.push_back(txn);
  for (TxnId txn : txns) {
    const store::Decision& d = log_.open_decisions().at(txn);
    const net::MsgKind kind = d.confirm_kind;
    for (std::uint32_t m : d.members) {
      Bytes copy = rpc_.acquire_buffer(kind);
      copy.assign(d.payload.begin(), d.payload.end());
      rpc_.notify(static_cast<net::NodeId>(m), kind, std::move(copy));
    }
    if (metrics_ != nullptr) metrics_->commit_messages += d.members.size();
    // The broadcast left this (live) node: settle.  A crash during the
    // sends just re-drives again next restart -- receivers dedupe.
    log_.settle_decision(txn);
  }
  return txns.size();
}

}  // namespace qrdtm::core
