// Randomized, fully-replayable fault schedules over the Network chaos hooks.
//
// A FaultSchedule is derived deterministically from (seed, options): the
// same pair always yields the same fail-stop times, message-drop bursts and
// latency spikes, so any fuzz failure replays exactly from its printed seed.
// arm() translates the schedule into simulator events before the run starts:
//
//   * kills   -- fail-stop a node at its scheduled tick (paper §VI-D: the
//                provider is notified so quorums reconfigure; pass
//                kills_notify_provider=false to leave discovery to the
//                timeout-based failure detector),
//   * bursts  -- windows during which request/response messages are dropped
//                with probability drop_prob (one-way notifies are exempt;
//                see Network::set_drop_probability),
//   * spikes  -- windows during which one node's links slow down by
//                spike_extra each way (slow-but-alive: above the RPC timeout
//                this is indistinguishable from a crash to its peers).
//
// Bursts never overlap (each lives in its own slice of the horizon) and at
// most one spike targets a given node, so disarm events cannot clobber a
// later arm event's state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/network.h"
#include "sim/simulator.h"

namespace qrdtm::quorum {
class QuorumProvider;
}

namespace qrdtm::core {

class Cluster;
class HistoryRecorder;

struct ChaosOptions {
  /// Window faults are placed in (schedule nothing past it).
  sim::Tick horizon = sim::sec(10);

  /// Fail-stops: victims drawn (without replacement) from kill_candidates.
  /// Empty candidates = no kills.
  std::uint32_t max_kills = 0;
  std::vector<net::NodeId> kill_candidates;
  bool kills_notify_provider = true;

  std::uint32_t drop_bursts = 0;
  double drop_prob = 0.15;
  sim::Tick burst_len = sim::msec(400);

  std::uint32_t latency_spikes = 0;
  /// Nodes eligible for a spike.  Empty = all nodes.
  std::vector<net::NodeId> spike_candidates;
  sim::Tick spike_extra = sim::msec(700);
  sim::Tick spike_len = sim::msec(600);
};

struct FaultSchedule {
  struct Kill {
    sim::Tick at = 0;
    net::NodeId node = 0;
  };
  struct Burst {
    sim::Tick at = 0;
    sim::Tick len = 0;
    double prob = 0.0;
  };
  struct Spike {
    sim::Tick at = 0;
    sim::Tick len = 0;
    net::NodeId node = 0;
    sim::Tick extra = 0;
  };

  std::vector<Kill> kills;
  std::vector<Burst> bursts;
  std::vector<Spike> spikes;
  bool kills_notify_provider = true;

  /// Derive a schedule from (seed, num_nodes, options).  Pure and
  /// deterministic; the spike candidate pool defaults to all nodes.
  static FaultSchedule generate(std::uint64_t seed, std::uint32_t num_nodes,
                                const ChaosOptions& opts);

  /// Schedule the fault events onto `sim`.  Call before running.  `provider`
  /// (nullable) is notified of kills when kills_notify_provider is set;
  /// `recorder` (nullable) gets a kFault event per transition.
  void arm(sim::Simulator& sim, net::Network& net,
           quorum::QuorumProvider* provider, HistoryRecorder* recorder) const;

  /// Convenience overload for a QR Cluster (kills via Cluster::kill_node).
  void arm(Cluster& cluster, HistoryRecorder* recorder) const;

  bool empty() const {
    return kills.empty() && bursts.empty() && spikes.empty();
  }

  /// One-line-per-event human-readable description.
  std::string describe() const;
};

}  // namespace qrdtm::core
