// Randomized, fully-replayable fault schedules over the Network chaos hooks.
//
// A FaultSchedule is derived deterministically from (seed, options): the
// same pair always yields the same fail-stop times, message-drop bursts and
// latency spikes, so any fuzz failure replays exactly from its printed seed.
// arm() translates the schedule into simulator events before the run starts:
//
//   * kills   -- fail-stop a node at its scheduled tick (paper §VI-D: the
//                provider is notified so quorums reconfigure; pass
//                kills_notify_provider=false to leave discovery to the
//                timeout-based failure detector),
//   * bursts  -- windows during which request/response messages are dropped
//                with probability drop_prob (one-way notifies are exempt;
//                see Network::set_drop_probability),
//   * spikes  -- windows during which one node's links slow down by
//                spike_extra each way (slow-but-alive: above the RPC timeout
//                this is indistinguishable from a crash to its peers),
//   * recovers -- kill->rejoin churn: each kill is paired with a restart
//                recover_after later.  Armed on a Cluster this runs the full
//                recovery path (revive + catch-up + quorum re-admission);
//                armed on a bare Network it only revives the endpoint --
//                state catch-up needs the Cluster overload,
//   * partitions -- windows during which request/response traffic crossing
//                a symmetric cut is dropped (one-way notifies are exempt;
//                see Network::set_partition).
//
// Bursts never overlap (each lives in its own slice of the horizon), same
// for partitions, and at most one spike targets a given node, so disarm
// events cannot clobber a later arm event's state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/network.h"
#include "sim/simulator.h"

namespace qrdtm::quorum {
class QuorumProvider;
}

namespace qrdtm::core {

class Cluster;
class HistoryRecorder;

struct ChaosOptions {
  /// Window faults are placed in (schedule nothing past it).
  sim::Tick horizon = sim::sec(10);

  /// Fail-stops: victims drawn (without replacement) from kill_candidates.
  /// Empty candidates = no kills.
  std::uint32_t max_kills = 0;
  std::vector<net::NodeId> kill_candidates;
  bool kills_notify_provider = true;

  std::uint32_t drop_bursts = 0;
  double drop_prob = 0.15;
  sim::Tick burst_len = sim::msec(400);

  std::uint32_t latency_spikes = 0;
  /// Nodes eligible for a spike.  Empty = all nodes.
  std::vector<net::NodeId> spike_candidates;
  sim::Tick spike_extra = sim::msec(700);
  sim::Tick spike_len = sim::msec(600);

  /// Kill->rejoin churn: pair every kill with a recover this long after it
  /// (plus up to recover_jitter).  0 = killed nodes stay dead (the paper's
  /// one-way fault model).
  sim::Tick recover_after = 0;
  sim::Tick recover_jitter = sim::msec(200);

  /// Symmetric partition windows (one per equal horizon slice, like
  /// bursts).  The minority side is drawn from partition_candidates (empty
  /// = all nodes), sized 1..partition_max_side (0 = up to num_nodes/3).
  std::uint32_t partition_windows = 0;
  sim::Tick partition_len = sim::msec(500);
  std::uint32_t partition_max_side = 0;
  std::vector<net::NodeId> partition_candidates;

  /// Commit-log checkpoint cuts (Cluster::cut_checkpoint) scattered over
  /// the whole horizon on nodes drawn (with replacement) from
  /// cut_candidates (empty = all nodes).  Cuts racing in-flight 2PC are
  /// the point: a cut between a replica's vote and its confirm must carry
  /// the prepare forward, or replay loses the transaction (the fuzz
  /// "torn-checkpoint" flavor).  Only meaningful when armed on a Cluster.
  std::uint32_t checkpoint_cuts = 0;
  std::vector<net::NodeId> cut_candidates;

  /// Orphan-2PC windows (fuzz flavor "orphan-2pc"): steer a coordinator
  /// crash into its vote->confirm window by arming a one-shot kPanic fault
  /// point (fp::kDecisionBeforeLog, or fp::kConfirmPartial with a random
  /// number of confirms already delivered) on a node drawn from
  /// orphan_candidates, leaving prepared protections in-doubt on the write
  /// quorum.  The victim restarts orphan_recover_after (+jitter) later.
  /// Candidates should be the client/coordinator nodes.  Only meaningful
  /// when armed on a Cluster (needs fault points + full recovery).
  std::uint32_t orphan_windows = 0;
  std::vector<net::NodeId> orphan_candidates;
  sim::Tick orphan_recover_after = sim::sec(1);
  sim::Tick orphan_recover_jitter = sim::msec(200);
};

struct FaultSchedule {
  struct Kill {
    sim::Tick at = 0;
    net::NodeId node = 0;
  };
  struct Burst {
    sim::Tick at = 0;
    sim::Tick len = 0;
    double prob = 0.0;
  };
  struct Spike {
    sim::Tick at = 0;
    sim::Tick len = 0;
    net::NodeId node = 0;
    sim::Tick extra = 0;
  };

  struct Recover {
    sim::Tick at = 0;
    net::NodeId node = 0;
  };
  struct Partition {
    sim::Tick at = 0;
    sim::Tick len = 0;
    std::vector<net::NodeId> side;  // one side of the cut
  };
  struct Cut {
    sim::Tick at = 0;
    net::NodeId node = 0;
  };
  struct Orphan {
    sim::Tick at = 0;          // when the kPanic fault point is armed
    net::NodeId node = 0;      // coordinator to crash
    std::uint32_t stage = 0;   // 0 = before decision log; k>=1 = panic on
                               // the k-th confirm send (k-1 delivered)
    sim::Tick recover_at = 0;  // restart (no-op if the point never fired)
  };

  std::vector<Kill> kills;
  std::vector<Burst> bursts;
  std::vector<Spike> spikes;
  std::vector<Recover> recovers;
  std::vector<Partition> partitions;
  std::vector<Cut> cuts;
  std::vector<Orphan> orphans;
  bool kills_notify_provider = true;

  /// Derive a schedule from (seed, num_nodes, options).  Pure and
  /// deterministic; the spike candidate pool defaults to all nodes.
  static FaultSchedule generate(std::uint64_t seed, std::uint32_t num_nodes,
                                const ChaosOptions& opts);

  /// Schedule the fault events onto `sim`.  Call before running.  `provider`
  /// (nullable) is notified of kills when kills_notify_provider is set;
  /// `recorder` (nullable) gets a kFault event per transition.  Recover
  /// events only revive the network endpoint here -- re-admitting a replica
  /// to quorums safely requires the state catch-up that only the Cluster
  /// overload can run, so `provider` is deliberately NOT told about
  /// recoveries by this overload.
  void arm(sim::Simulator& sim, net::Network& net,
           quorum::QuorumProvider* provider, HistoryRecorder* recorder) const;

  /// Overload for a QR Cluster: kills via Cluster::kill_node, recovers via
  /// Cluster::recover_node (full catch-up + quorum re-admission).
  void arm(Cluster& cluster, HistoryRecorder* recorder) const;

  /// Arm only the network-level faults (bursts, spikes, partitions); shared
  /// by both arm() overloads.
  void arm_network_faults(sim::Simulator& sim, net::Network& net,
                          HistoryRecorder* recorder) const;

  bool empty() const {
    return kills.empty() && bursts.empty() && spikes.empty() &&
           recovers.empty() && partitions.empty() && cuts.empty() &&
           orphans.empty();
  }

  /// One-line-per-event human-readable description.
  std::string describe() const;
};

}  // namespace qrdtm::core
