// Randomised exponential backoff, shared by the QR runtime and both
// baselines so every retry loop enforces the same cap semantics.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/rng.h"
#include "sim/simulator.h"

namespace qrdtm::core {

/// Draw the wait before retry `attempt` (1-based).  The window doubles with
/// each attempt up to `cap`; the draw is jittered into [window/2,
/// 1.5*window) so that two clients aborted by the same conflict do not
/// retry in lockstep, then clamped so no wait ever exceeds `cap` (the
/// configured bound is a promise to the workload, not a suggestion --
/// before the clamp, the jitter could overshoot the cap by up to 50 %).
/// Exactly one Rng draw per call, so instrumentation or clamping changes
/// never shift the consumer's random stream.
inline sim::Tick draw_backoff_wait(sim::Tick base, sim::Tick cap,
                                   std::uint32_t attempt, Rng& rng) {
  const std::uint32_t exp = std::min(attempt, 8u);
  const sim::Tick window = std::min(cap, base << exp);
  if (window == 0) return 0;
  const sim::Tick drawn =
      static_cast<sim::Tick>(rng.below(window)) + window / 2;
  return std::min(drawn, cap);
}

}  // namespace qrdtm::core
