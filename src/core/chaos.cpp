#include "core/chaos.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "common/rng.h"
#include "core/cluster.h"
#include "core/faultpoint.h"
#include "core/history.h"
#include "quorum/quorum.h"

namespace qrdtm::core {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n), sizeof buf - 1));
}

/// Draw `count` distinct elements from `pool` (order preserved by draw).
std::vector<net::NodeId> draw_distinct(Rng& rng, std::vector<net::NodeId> pool,
                                       std::uint32_t count) {
  std::vector<net::NodeId> out;
  while (out.size() < count && !pool.empty()) {
    const std::size_t i = static_cast<std::size_t>(rng.below(pool.size()));
    out.push_back(pool[i]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(i));
  }
  return out;
}

}  // namespace

FaultSchedule FaultSchedule::generate(std::uint64_t seed,
                                      std::uint32_t num_nodes,
                                      const ChaosOptions& opts) {
  FaultSchedule s;
  s.kills_notify_provider = opts.kills_notify_provider;
  Rng rng(seed);

  // Kills: distinct victims, times in the middle [0.2h, 0.8h] of the horizon
  // so killed nodes both served traffic before and stay dead after.
  if (opts.max_kills > 0 && !opts.kill_candidates.empty()) {
    const auto victims =
        draw_distinct(rng, opts.kill_candidates, opts.max_kills);
    const sim::Tick lo = opts.horizon / 5;
    const sim::Tick span = opts.horizon - 2 * lo;
    for (net::NodeId v : victims) {
      s.kills.push_back(Kill{lo + rng.below(span > 0 ? span : 1), v});
    }
    std::sort(s.kills.begin(), s.kills.end(),
              [](const Kill& a, const Kill& b) { return a.at < b.at; });
  }

  // Bursts: one per equal slice of the horizon, so they never overlap and
  // the disarm event of one cannot cancel the next one's arm.
  if (opts.drop_bursts > 0 && opts.drop_prob > 0.0) {
    const sim::Tick slice = opts.horizon / opts.drop_bursts;
    for (std::uint32_t b = 0; b < opts.drop_bursts; ++b) {
      const sim::Tick len = std::min(opts.burst_len, slice / 2);
      const sim::Tick room = slice > len ? slice - len : 1;
      s.bursts.push_back(
          Burst{b * slice + rng.below(room), len, opts.drop_prob});
    }
  }

  // Spikes: at most one per node (slowdowns are absolute, not stacked).
  if (opts.latency_spikes > 0) {
    std::vector<net::NodeId> pool = opts.spike_candidates;
    if (pool.empty()) {
      for (net::NodeId n = 0; n < num_nodes; ++n) pool.push_back(n);
    }
    const auto victims = draw_distinct(rng, pool, opts.latency_spikes);
    for (net::NodeId v : victims) {
      const sim::Tick len = std::min(opts.spike_len, opts.horizon / 4);
      const sim::Tick room =
          opts.horizon > len ? opts.horizon - len : 1;
      s.spikes.push_back(Spike{rng.below(room), len, v, opts.spike_extra});
    }
    std::sort(s.spikes.begin(), s.spikes.end(),
              [](const Spike& a, const Spike& b) { return a.at < b.at; });
  }

  // New fault families draw strictly after the original ones, so schedules
  // generated with the legacy options are bit-identical to what this
  // function produced before churn existed.

  // Recovers: one per kill, recover_after (+jitter) later.  May land past
  // the horizon -- churn waves are allowed to finish during the drain.
  if (opts.recover_after > 0) {
    for (const Kill& k : s.kills) {
      const sim::Tick jitter =
          rng.below(opts.recover_jitter > 0 ? opts.recover_jitter : 1);
      s.recovers.push_back(Recover{k.at + opts.recover_after + jitter, k.node});
    }
    std::sort(s.recovers.begin(), s.recovers.end(),
              [](const Recover& a, const Recover& b) { return a.at < b.at; });
  }

  // Partitions: one per equal slice (non-overlapping, like bursts); the
  // minority side is a small distinct draw from the candidate pool.
  if (opts.partition_windows > 0) {
    std::vector<net::NodeId> pool = opts.partition_candidates;
    if (pool.empty()) {
      for (net::NodeId n = 0; n < num_nodes; ++n) pool.push_back(n);
    }
    std::uint32_t max_side = opts.partition_max_side;
    if (max_side == 0) max_side = std::max(1u, num_nodes / 3);
    const sim::Tick slice = opts.horizon / opts.partition_windows;
    for (std::uint32_t w = 0; w < opts.partition_windows; ++w) {
      const sim::Tick len = std::min(opts.partition_len, slice / 2);
      const sim::Tick room = slice > len ? slice - len : 1;
      const std::uint32_t side_size =
          1 + static_cast<std::uint32_t>(rng.below(max_side));
      Partition p;
      p.at = w * slice + rng.below(room);
      p.len = len;
      p.side = draw_distinct(rng, pool, side_size);
      std::sort(p.side.begin(), p.side.end());
      s.partitions.push_back(std::move(p));
    }
  }

  // Checkpoint cuts: scattered over the whole horizon, nodes drawn with
  // replacement (a node may cut several times).  Drawn after every older
  // family so legacy schedules stay bit-identical.
  if (opts.checkpoint_cuts > 0) {
    std::vector<net::NodeId> pool = opts.cut_candidates;
    if (pool.empty()) {
      for (net::NodeId n = 0; n < num_nodes; ++n) pool.push_back(n);
    }
    for (std::uint32_t c = 0; c < opts.checkpoint_cuts; ++c) {
      const sim::Tick at = rng.below(opts.horizon > 0 ? opts.horizon : 1);
      const net::NodeId node =
          pool[static_cast<std::size_t>(rng.below(pool.size()))];
      s.cuts.push_back(Cut{at, node});
    }
    std::sort(s.cuts.begin(), s.cuts.end(),
              [](const Cut& a, const Cut& b) { return a.at < b.at; });
  }

  // Orphan-2PC windows: nodes drawn with replacement (a coordinator may be
  // crashed in several windows across its restarts); times in the middle of
  // the horizon like kills, so prepares exist before and the termination
  // protocol has room to run after.  Drawn after every older family so
  // legacy schedules stay bit-identical.
  if (opts.orphan_windows > 0 && !opts.orphan_candidates.empty()) {
    const sim::Tick lo = opts.horizon / 5;
    const sim::Tick span = opts.horizon - 2 * lo;
    for (std::uint32_t w = 0; w < opts.orphan_windows; ++w) {
      Orphan o;
      o.at = lo + rng.below(span > 0 ? span : 1);
      o.node = opts.orphan_candidates[static_cast<std::size_t>(
          rng.below(opts.orphan_candidates.size()))];
      // stage 0 crashes before the decision record; 1..3 crash after the
      // decision with 0..2 confirms already delivered (a strict subset of
      // any write quorum in the configurations the fuzzer runs).
      o.stage = static_cast<std::uint32_t>(rng.below(4));
      const sim::Tick jitter = rng.below(
          opts.orphan_recover_jitter > 0 ? opts.orphan_recover_jitter : 1);
      o.recover_at = o.at + opts.orphan_recover_after + jitter;
      s.orphans.push_back(o);
    }
    std::sort(s.orphans.begin(), s.orphans.end(),
              [](const Orphan& a, const Orphan& b) { return a.at < b.at; });
  }
  return s;
}

void FaultSchedule::arm(sim::Simulator& sim, net::Network& net,
                        quorum::QuorumProvider* provider,
                        HistoryRecorder* recorder) const {
  const bool notify = kills_notify_provider;
  for (const Kill& k : kills) {
    sim.schedule_at(k.at, [&sim, &net, provider, recorder, k, notify] {
      net.kill(k.node);
      if (notify && provider != nullptr) provider->on_failure(k.node);
      if (recorder != nullptr) {
        std::string d;
        appendf(d, "kill node %u%s", k.node, notify ? "" : " (silent)");
        recorder->record_fault(sim.now(), std::move(d));
      }
    });
  }
  // Endpoint-only revive (see the header): the provider is NOT re-admitting
  // the node here, because without a state catch-up a rejoined stale
  // replica could satisfy quorum intersections with stale data.
  for (const Recover& r : recovers) {
    sim.schedule_at(r.at, [&sim, &net, recorder, r] {
      net.revive(r.node);
      if (recorder != nullptr) {
        std::string d;
        appendf(d, "revive node %u (endpoint only)", r.node);
        recorder->record_fault(sim.now(), std::move(d));
      }
    });
  }
  arm_network_faults(sim, net, recorder);
}

void FaultSchedule::arm_network_faults(sim::Simulator& sim, net::Network& net,
                                       HistoryRecorder* recorder) const {
  for (const Burst& b : bursts) {
    sim.schedule_at(b.at, [&sim, &net, recorder, b] {
      net.set_drop_probability(b.prob);
      if (recorder != nullptr) {
        std::string d;
        appendf(d, "drop burst start p=%.2f len=%.1f ms", b.prob,
                static_cast<double>(b.len) * 1e-6);
        recorder->record_fault(sim.now(), std::move(d));
      }
    });
    sim.schedule_at(b.at + b.len, [&sim, &net, recorder] {
      net.set_drop_probability(0.0);
      if (recorder != nullptr) {
        recorder->record_fault(sim.now(), "drop burst end");
      }
    });
  }
  for (const Spike& sp : spikes) {
    sim.schedule_at(sp.at, [&sim, &net, recorder, sp] {
      net.set_node_slowdown(sp.node, sp.extra);
      if (recorder != nullptr) {
        std::string d;
        appendf(d, "latency spike node %u +%.1f ms len=%.1f ms", sp.node,
                static_cast<double>(sp.extra) * 1e-6,
                static_cast<double>(sp.len) * 1e-6);
        recorder->record_fault(sim.now(), std::move(d));
      }
    });
    sim.schedule_at(sp.at + sp.len, [&sim, &net, recorder, sp] {
      net.set_node_slowdown(sp.node, 0);
      if (recorder != nullptr) {
        std::string d;
        appendf(d, "latency spike end node %u", sp.node);
        recorder->record_fault(sim.now(), std::move(d));
      }
    });
  }
  for (const Partition& p : partitions) {
    // Copied into the event: the schedule object need not outlive the run.
    sim.schedule_at(p.at, [&sim, &net, recorder, p] {
      net.set_partition(p.side);
      if (recorder != nullptr) {
        std::string d;
        appendf(d, "partition start len=%.1f ms side_a=%zu nodes",
                static_cast<double>(p.len) * 1e-6, p.side.size());
        recorder->record_fault(sim.now(), std::move(d));
      }
    });
    sim.schedule_at(p.at + p.len, [&sim, &net, recorder] {
      net.clear_partition();
      if (recorder != nullptr) {
        recorder->record_fault(sim.now(), "partition end");
      }
    });
  }
}

void FaultSchedule::arm(Cluster& cluster, HistoryRecorder* recorder) const {
  sim::Simulator& sim = cluster.simulator();
  const bool notify = kills_notify_provider;
  for (const Kill& k : kills) {
    sim.schedule_at(k.at, [&sim, &cluster, recorder, k, notify] {
      cluster.kill_node(k.node, notify);
      if (recorder != nullptr) {
        std::string d;
        appendf(d, "kill node %u%s", k.node, notify ? "" : " (silent)");
        recorder->record_fault(sim.now(), std::move(d));
      }
    });
  }
  for (const Recover& r : recovers) {
    sim.schedule_at(r.at, [&sim, &cluster, recorder, r] {
      cluster.recover_node(r.node);
      if (recorder != nullptr) {
        std::string d;
        appendf(d, "recover node %u (catch-up)", r.node);
        recorder->record_fault(sim.now(), std::move(d));
      }
    });
  }
  for (const Cut& c : cuts) {
    sim.schedule_at(c.at, [&sim, &cluster, recorder, c] {
      cluster.cut_checkpoint(c.node);
      if (recorder != nullptr) {
        std::string d;
        appendf(d, "checkpoint cut node %u", c.node);
        recorder->record_fault(sim.now(), std::move(d));
      }
    });
  }
  // Orphan-2PC: arm a one-shot kPanic on the victim so its NEXT commit
  // crashes inside the vote->confirm window (the panic handler kills the
  // node); the paired restart runs the full recovery + decision re-drive.
  // Re-arming replaces any earlier unfired window -- a quiet coordinator
  // just hands its crash to the next window's victim.
  for (const Orphan& o : orphans) {
    sim.schedule_at(o.at, [&sim, &cluster, recorder, o] {
      if (o.stage == 0) {
        cluster.fault_points().arm(fp::kDecisionBeforeLog, FaultAction::kPanic,
                                   o.node);
      } else {
        cluster.fault_points().arm(fp::kConfirmPartial, FaultAction::kPanic,
                                   o.node, 1, o.stage - 1);
      }
      if (recorder != nullptr) {
        std::string d;
        appendf(d, "orphan-2pc arm node %u stage=%u", o.node, o.stage);
        recorder->record_fault(sim.now(), std::move(d));
      }
    });
    sim.schedule_at(o.recover_at, [&sim, &cluster, recorder, o] {
      // Close the window: an arming the victim never hit must not linger,
      // or it would kill the node AFTER this recovery and leave it down
      // (a decision record stranded on a dead log blocks in-doubt peers
      // forever -- correctly, but the schedule promised a restart).
      const char* point =
          o.stage == 0 ? fp::kDecisionBeforeLog : fp::kConfirmPartial;
      cluster.fault_points().disarm_if_node(point, o.node);
      const bool was_dead = !cluster.network().alive(o.node);
      cluster.recover_node(o.node);
      if (recorder != nullptr && was_dead) {
        std::string d;
        appendf(d, "orphan-2pc recover node %u (catch-up)", o.node);
        recorder->record_fault(sim.now(), std::move(d));
      }
    });
  }
  arm_network_faults(sim, cluster.network(), recorder);
}

std::string FaultSchedule::describe() const {
  std::string out;
  for (const Kill& k : kills) {
    appendf(out, "  kill  t=%8.1f ms node=%u%s\n",
            static_cast<double>(k.at) * 1e-6, k.node,
            kills_notify_provider ? "" : " (silent)");
  }
  for (const Burst& b : bursts) {
    appendf(out, "  burst t=%8.1f ms len=%.1f ms p=%.2f\n",
            static_cast<double>(b.at) * 1e-6,
            static_cast<double>(b.len) * 1e-6, b.prob);
  }
  for (const Spike& s : spikes) {
    appendf(out, "  spike t=%8.1f ms len=%.1f ms node=%u +%.1f ms\n",
            static_cast<double>(s.at) * 1e-6,
            static_cast<double>(s.len) * 1e-6, s.node,
            static_cast<double>(s.extra) * 1e-6);
  }
  for (const Recover& r : recovers) {
    appendf(out, "  recover t=%8.1f ms node=%u\n",
            static_cast<double>(r.at) * 1e-6, r.node);
  }
  for (const Cut& c : cuts) {
    appendf(out, "  cut   t=%8.1f ms node=%u\n",
            static_cast<double>(c.at) * 1e-6, c.node);
  }
  for (const Orphan& o : orphans) {
    appendf(out,
            "  orphan t=%8.1f ms node=%u stage=%u recover=%.1f ms\n",
            static_cast<double>(o.at) * 1e-6, o.node, o.stage,
            static_cast<double>(o.recover_at) * 1e-6);
  }
  for (const Partition& p : partitions) {
    appendf(out, "  partition t=%8.1f ms len=%.1f ms side_a={",
            static_cast<double>(p.at) * 1e-6,
            static_cast<double>(p.len) * 1e-6);
    for (std::size_t i = 0; i < p.side.size(); ++i) {
      appendf(out, i == 0 ? "%u" : ",%u", p.side[i]);
    }
    out += "}\n";
  }
  return out;
}

}  // namespace qrdtm::core
