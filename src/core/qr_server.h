// QR replica server: the per-node, server-side half of the QR / QR-CN /
// QR-CHK protocols.
//
// All handlers are synchronous local work (validate versions, copy an
// object, vote, apply) -- replicas never block on other nodes, exactly as in
// the paper where the remote side of every operation is a local decision.
//
//   * kRead          -- Rqv validation of the requester's data-set (Alg. 1 /
//     Alg. 4), then serve the local copy (Alg. 2 "Remote"), maintaining
//     PR/PW for root transactions only.
//   * kCommitRequest -- 2PC vote: validate read-set versions and write-set
//     bases, check protection, protect the write-set on a commit vote.
//   * kCommitConfirm -- apply (or roll back) the protected write-set.
//   * kSyncPull      -- recovery catch-up: serve the full committed store to
//     a rejoining replica (Cluster::recover_node's anti-entropy pull).
//
// Protections carry a coordinator-liveness lease: one held longer than the
// lease means the coordinator died between vote and confirm (a confirm is
// one-way and near-immediate), so the replica sheds it lazily on the next
// conflicting read/vote instead of wedging later writers forever.  The check
// is pure tick arithmetic on the conflict path only -- chaos-free runs never
// shed (the default lease far exceeds any legitimate vote->confirm gap) and
// their event schedule is unchanged.
#pragma once

#include <cstdint>

#include "core/metrics.h"
#include "core/trace.h"
#include "core/wire.h"
#include "net/rpc.h"
#include "store/replica_store.h"

namespace qrdtm::core {

class QrServer {
 public:
  /// Wires the three QR services into `rpc`.  The server must outlive the
  /// endpoint's registered handlers (the Cluster owns both).
  explicit QrServer(net::RpcEndpoint& rpc);

  store::ReplicaStore& store() { return store_; }
  const store::ReplicaStore& store() const { return store_; }

  net::NodeId id() const { return id_; }

  /// Number of Rqv validations this replica failed (test observability).
  std::uint64_t validation_failures() const { return validation_failures_; }

  /// Recovery catch-up state.  While syncing, the replica refuses service
  /// (reads answer kMissing, votes abort, sync pulls answer !ok): its store
  /// may be stale, and Q1 only tolerates stale *excluded* replicas.
  void set_syncing(bool syncing) { syncing_ = syncing; }
  bool syncing() const { return syncing_; }

  /// Coordinator-liveness lease on protections; 0 disables shedding.
  void set_protection_lease(sim::Tick lease) { protection_lease_ = lease; }
  sim::Tick protection_lease() const { return protection_lease_; }

  /// Number of protections shed by the lease (test observability).
  std::uint64_t lease_breaks() const { return lease_breaks_; }

  /// Attach a trace recorder; replica-side read/vote instants are tagged
  /// with the requester's span context from the message envelope (nullptr =
  /// tracing off).
  void set_trace_recorder(TraceRecorder* tracer) { tracer_ = tracer; }

  /// Test-only: make this replica vote commit without validating read-set
  /// versions or write protection.  Exists solely to prove the history
  /// checker detects real 1-copy serializability violations (the fuzz
  /// harness's deliberately-broken mode); never set in production paths.
  void set_validation_disabled_for_test(bool disabled) {
    skip_commit_validation_ = disabled;
  }

 private:
  ReadResponse handle_read(const ReadRequest& req);
  VoteResponse handle_commit_request(const CommitRequest& req);
  void handle_commit_confirm(const CommitConfirm& confirm);

  /// QR-Q batch 2PC: validate every read base and write base like the
  /// per-transaction vote, but report the ids that failed so the
  /// coordinator can re-fetch only the stale queues.
  BatchVoteResponse handle_batch_commit_request(const BatchCommitRequest& req);
  void handle_batch_commit_confirm(const BatchCommitConfirm& confirm);

  /// Rqv (Alg. 1 + Alg. 4): returns an abort-carrying response when any
  /// data-set entry is invalid on this replica, nullopt when valid.
  std::optional<ReadResponse> validate(const ReadRequest& req);

  /// protected_against with the coordinator-liveness lease applied: an
  /// expired protection is shed (counted) and reads as unprotected.
  bool check_protected(ObjectId id, TxnId txn);

  SyncPullResponse handle_sync_pull() const;

  net::RpcEndpoint& rpc_;
  net::NodeId id_;
  TraceRecorder* tracer_ = nullptr;
  store::ReplicaStore store_;
  std::uint64_t validation_failures_ = 0;
  std::uint64_t lease_breaks_ = 0;
  sim::Tick protection_lease_ = 0;
  bool syncing_ = false;
  bool skip_commit_validation_ = false;
};

}  // namespace qrdtm::core
