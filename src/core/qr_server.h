// QR replica server: the per-node, server-side half of the QR / QR-CN /
// QR-CHK protocols.
//
// All handlers are synchronous local work (validate versions, copy an
// object, vote, apply) -- replicas never block on other nodes, exactly as in
// the paper where the remote side of every operation is a local decision.
//
//   * kRead          -- Rqv validation of the requester's data-set (Alg. 1 /
//     Alg. 4), then serve the local copy (Alg. 2 "Remote"), maintaining
//     PR/PW for root transactions only.
//   * kCommitRequest -- 2PC vote: validate read-set versions and write-set
//     bases, check protection, protect the write-set on a commit vote.
//   * kCommitConfirm -- apply (or roll back) the protected write-set.
//   * kSyncPull      -- recovery catch-up: serve the full committed store to
//     a rejoining replica (Cluster::recover_node's anti-entropy pull).
//
// Protections carry a coordinator-liveness lease: one held longer than the
// lease means the coordinator died between vote and confirm (a confirm is
// one-way and near-immediate), so the replica sheds it lazily on the next
// conflicting read/vote instead of wedging later writers forever.  The check
// is pure tick arithmetic on the conflict path only -- chaos-free runs never
// shed (the default lease far exceeds any legitimate vote->confirm gap) and
// their event schedule is unchanged.
#pragma once

#include <cstdint>

#include "core/faultpoint.h"
#include "core/metrics.h"
#include "core/trace.h"
#include "core/wire.h"
#include "net/rpc.h"
#include "quorum/quorum.h"
#include "store/commit_log.h"
#include "store/replica_store.h"

namespace qrdtm::core {

class QrServer {
 public:
  /// Wires the three QR services into `rpc`.  The server must outlive the
  /// endpoint's registered handlers (the Cluster owns both).
  explicit QrServer(net::RpcEndpoint& rpc);

  store::ReplicaStore& store() { return store_; }
  const store::ReplicaStore& store() const { return store_; }

  net::NodeId id() const { return id_; }

  /// The per-node durable commit log (the in-sim "disk").  Populated only
  /// while durable logging is on; survives a crash by construction (crash =
  /// wiping the ReplicaStore, never the log).
  store::CommitLog& commit_log() { return log_; }
  const store::CommitLog& commit_log() const { return log_; }

  /// Durable-logging regime.  Off (the pre-commit-log default for
  /// standalone rigs): committed versions survive a crash wholesale and
  /// recovery full-pulls a read quorum.  On (ClusterConfig default): the
  /// store is truly volatile, crashes wipe it, and recovery replays the log
  /// then pulls a version-bounded delta.  Set before seeding.
  void set_durable_log(bool on) { durable_log_ = on; }
  bool durable_log() const { return durable_log_; }

  /// Attach the fault-point registry (nullptr = all points unarmed).
  void set_fault_points(FaultPointRegistry* faults) { faults_ = faults; }

  /// Attach the cluster's quorum provider so the replica knows which
  /// objects it holds (nullptr = full replication, the classic providers).
  /// Under sharded cohorts a commit multicast spans the union of several
  /// cohorts' write quorums, so every recipient filters protect/log/apply
  /// down to the entries it actually replicates.
  void set_quorum_provider(const quorum::QuorumProvider* quorums) {
    quorums_ = quorums;
  }

  /// Attach the cluster-wide metrics sink (nullptr = standalone rig).
  void set_metrics(Metrics* metrics) { metrics_ = metrics; }

  /// Tail-growth bound for the commit log: once the record tail exceeds
  /// this many bytes a checkpoint cut is taken right after the append.
  /// 0 disables the auto-cut (the pre-bound behaviour: the tail grows
  /// without bound until recovery or a chaos-scheduled cut).
  void set_max_tail_bytes(std::size_t bytes) { max_tail_bytes_ = bytes; }
  std::size_t max_tail_bytes() const { return max_tail_bytes_; }

  /// Checkpoint cuts forced by the max_tail_bytes bound on this replica.
  std::uint64_t log_autocuts() const { return log_autocuts_; }

  /// Seed an object at setup time: installs it in the store and, under
  /// durable logging, records it so a crashed node can replay it.
  void seed_object(ObjectId id, Bytes data, Version version = 1);

  /// Take a checkpoint cut on the commit log: snapshot the store image,
  /// carry in-flight prepares (unless fp::kChkCutCarry is armed kSkip --
  /// the Greengage bug), discard the record tail.
  void cut_checkpoint();

  /// Crash recovery, local half: wipe the store and rebuild it from the
  /// commit log.  Returns the number of apply operations replayed.
  std::size_t replay_commit_log();

  /// Number of Rqv validations this replica failed (test observability).
  std::uint64_t validation_failures() const { return validation_failures_; }

  /// Recovery catch-up state.  While syncing, the replica refuses service
  /// (reads answer kMissing, votes abort, sync pulls answer !ok): its store
  /// may be stale, and Q1 only tolerates stale *excluded* replicas.
  void set_syncing(bool syncing) { syncing_ = syncing; }
  bool syncing() const { return syncing_; }

  /// Coordinator-liveness lease on protections; 0 disables shedding.
  void set_protection_lease(sim::Tick lease) { protection_lease_ = lease; }
  sim::Tick protection_lease() const { return protection_lease_; }

  /// Number of protections shed by the lease (test observability).
  std::uint64_t lease_breaks() const { return lease_breaks_; }

  /// Attach a trace recorder; replica-side read/vote instants are tagged
  /// with the requester's span context from the message envelope (nullptr =
  /// tracing off).
  void set_trace_recorder(TraceRecorder* tracer) { tracer_ = tracer; }

  /// Test-only: make this replica vote commit without validating read-set
  /// versions or write protection.  Exists solely to prove the history
  /// checker detects real 1-copy serializability violations (the fuzz
  /// harness's deliberately-broken mode); never set in production paths.
  void set_validation_disabled_for_test(bool disabled) {
    skip_commit_validation_ = disabled;
  }

 private:
  ReadResponse handle_read(const ReadRequest& req);
  VoteResponse handle_commit_request(const CommitRequest& req);
  void handle_commit_confirm(const CommitConfirm& confirm);

  /// QR-Q batch 2PC: validate every read base and write base like the
  /// per-transaction vote, but report the ids that failed so the
  /// coordinator can re-fetch only the stale queues.
  BatchVoteResponse handle_batch_commit_request(const BatchCommitRequest& req);
  void handle_batch_commit_confirm(const BatchCommitConfirm& confirm);

  /// Rqv (Alg. 1 + Alg. 4): returns an abort-carrying response when any
  /// data-set entry is invalid on this replica, nullopt when valid.
  std::optional<ReadResponse> validate(const ReadRequest& req);

  /// protected_against with the coordinator-liveness lease applied: an
  /// expired protection is shed (counted) and reads as unprotected.
  bool check_protected(ObjectId id, TxnId txn);

  SyncPullResponse handle_sync_pull(net::NodeId from,
                                    const Bytes& payload) const;

  /// Whether this node replicates `id` (true under full replication).
  bool replicated_here(ObjectId id) const {
    return quorums_ == nullptr || quorums_->replicates(id_, id);
  }

  /// Cut a checkpoint when the record tail outgrew max_tail_bytes_.
  void maybe_autocut();

  /// The node's current liveness epoch, stamped into every log record so
  /// replay can pair prepares with confirms from the same incarnation.
  std::uint32_t liveness_epoch() const;

  /// fire() on the attached registry, kNone when detached.
  FaultAction fault(const char* point);

  net::RpcEndpoint& rpc_;
  net::NodeId id_;
  TraceRecorder* tracer_ = nullptr;
  FaultPointRegistry* faults_ = nullptr;
  const quorum::QuorumProvider* quorums_ = nullptr;
  Metrics* metrics_ = nullptr;
  store::ReplicaStore store_;
  store::CommitLog log_;
  bool durable_log_ = false;
  std::size_t max_tail_bytes_ = 0;
  std::uint64_t log_autocuts_ = 0;
  std::uint64_t validation_failures_ = 0;
  std::uint64_t lease_breaks_ = 0;
  sim::Tick protection_lease_ = 0;
  bool syncing_ = false;
  bool skip_commit_validation_ = false;
};

}  // namespace qrdtm::core
