// QR replica server: the per-node, server-side half of the QR / QR-CN /
// QR-CHK protocols.
//
// All handlers are synchronous local work (validate versions, copy an
// object, vote, apply) -- replicas never block on other nodes, exactly as in
// the paper where the remote side of every operation is a local decision.
//
//   * kRead          -- Rqv validation of the requester's data-set (Alg. 1 /
//     Alg. 4), then serve the local copy (Alg. 2 "Remote"), maintaining
//     PR/PW for root transactions only.
//   * kCommitRequest -- 2PC vote: validate read-set versions and write-set
//     bases, check protection, protect the write-set on a commit vote.
//   * kCommitConfirm -- apply (or roll back) the protected write-set.
//   * kSyncPull      -- recovery catch-up: serve the full committed store to
//     a rejoining replica (Cluster::recover_node's anti-entropy pull).
//
// Protections carry a coordinator-liveness lease: one held longer than the
// lease means the coordinator died between vote and confirm (a confirm is
// one-way and near-immediate).  Merely-protected entries (no durable
// yes-vote) are still shed lazily on the next conflicting read/vote.
// *Prepared* entries -- the protection backs a WAL prepare -- instead run
// the cooperative termination protocol (DESIGN.md §17): query the
// coordinator and the write-quorum peers with TxnStatusRequest, propagate
// any decision found, and presumed-abort only after a full round of "no
// decision anywhere + coordinator restarted into a newer liveness epoch".
// The check is pure tick arithmetic on the conflict path only -- chaos-free
// runs never shed (the default lease far exceeds any legitimate
// vote->confirm gap) and their event schedule is unchanged.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/faultpoint.h"
#include "core/metrics.h"
#include "core/trace.h"
#include "core/wire.h"
#include "net/rpc.h"
#include "quorum/quorum.h"
#include "sim/task.h"
#include "store/commit_log.h"
#include "store/replica_store.h"

namespace qrdtm::core {

class QrServer {
 public:
  /// Wires the three QR services into `rpc`.  The server must outlive the
  /// endpoint's registered handlers (the Cluster owns both).
  explicit QrServer(net::RpcEndpoint& rpc);

  store::ReplicaStore& store() { return store_; }
  const store::ReplicaStore& store() const { return store_; }

  net::NodeId id() const { return id_; }

  /// The per-node durable commit log (the in-sim "disk").  Populated only
  /// while durable logging is on; survives a crash by construction (crash =
  /// wiping the ReplicaStore, never the log).
  store::CommitLog& commit_log() { return log_; }
  const store::CommitLog& commit_log() const { return log_; }

  /// Durable-logging regime.  Off (the pre-commit-log default for
  /// standalone rigs): committed versions survive a crash wholesale and
  /// recovery full-pulls a read quorum.  On (ClusterConfig default): the
  /// store is truly volatile, crashes wipe it, and recovery replays the log
  /// then pulls a version-bounded delta.  Set before seeding.
  void set_durable_log(bool on) { durable_log_ = on; }
  bool durable_log() const { return durable_log_; }

  /// Attach the fault-point registry (nullptr = all points unarmed).
  void set_fault_points(FaultPointRegistry* faults) { faults_ = faults; }

  /// Attach the cluster's quorum provider so the replica knows which
  /// objects it holds (nullptr = full replication, the classic providers).
  /// Under sharded cohorts a commit multicast spans the union of several
  /// cohorts' write quorums, so every recipient filters protect/log/apply
  /// down to the entries it actually replicates.
  void set_quorum_provider(const quorum::QuorumProvider* quorums) {
    quorums_ = quorums;
  }

  /// Attach the cluster-wide metrics sink (nullptr = standalone rig).
  void set_metrics(Metrics* metrics) { metrics_ = metrics; }

  /// Tail-growth bound for the commit log: once the record tail exceeds
  /// this many bytes a checkpoint cut is taken right after the append.
  /// 0 disables the auto-cut (the pre-bound behaviour: the tail grows
  /// without bound until recovery or a chaos-scheduled cut).
  void set_max_tail_bytes(std::size_t bytes) { max_tail_bytes_ = bytes; }
  std::size_t max_tail_bytes() const { return max_tail_bytes_; }

  /// Checkpoint cuts forced by the max_tail_bytes bound on this replica.
  std::uint64_t log_autocuts() const { return log_autocuts_; }

  /// Seed an object at setup time: installs it in the store and, under
  /// durable logging, records it so a crashed node can replay it.
  void seed_object(ObjectId id, Bytes data, Version version = 1);

  /// Take a checkpoint cut on the commit log: snapshot the store image,
  /// carry in-flight prepares (unless fp::kChkCutCarry is armed kSkip --
  /// the Greengage bug), discard the record tail.
  void cut_checkpoint();

  /// Crash recovery, local half: wipe the store and rebuild it from the
  /// commit log.  Returns the number of apply operations replayed.
  std::size_t replay_commit_log();

  /// Number of Rqv validations this replica failed (test observability).
  std::uint64_t validation_failures() const { return validation_failures_; }

  /// Recovery catch-up state.  While syncing, the replica refuses service
  /// (reads answer kMissing, votes abort, sync pulls answer !ok): its store
  /// may be stale, and Q1 only tolerates stale *excluded* replicas.
  void set_syncing(bool syncing) { syncing_ = syncing; }
  bool syncing() const { return syncing_; }

  /// Coordinator-liveness lease on protections; 0 disables shedding.
  void set_protection_lease(sim::Tick lease) { protection_lease_ = lease; }
  sim::Tick protection_lease() const { return protection_lease_; }

  /// Number of protections shed by the lease (test observability).
  std::uint64_t lease_breaks() const { return lease_breaks_; }

  /// Round-trip budget for one termination round: queries go out, then the
  /// replica waits this long for TxnStatusResponse notifies before
  /// evaluating the presumed-abort rule.  Backoff between rounds draws from
  /// [timeout/2, ...) via core/backoff.h.
  void set_termination_timeout(sim::Tick timeout) {
    termination_timeout_ = timeout;
  }
  sim::Tick termination_timeout() const { return termination_timeout_; }

  /// In-doubt transactions currently running a termination round.
  std::size_t terminations_in_flight() const { return term_.size(); }

  /// Confirms deduplicated by the (txn, epoch) applied-set on this replica.
  std::uint64_t confirm_duplicates() const { return confirm_duplicates_; }

  /// Re-send the confirms of every unsettled decision in the commit log
  /// (Cluster::recover_node calls this after replay: a coordinator that
  /// crashed between decision and broadcast finishes the broadcast in its
  /// new incarnation).  Returns the number of decisions re-driven.
  std::size_t redrive_open_decisions();

  /// Attach a trace recorder; replica-side read/vote instants are tagged
  /// with the requester's span context from the message envelope (nullptr =
  /// tracing off).
  void set_trace_recorder(TraceRecorder* tracer) { tracer_ = tracer; }

  /// Test-only: make this replica vote commit without validating read-set
  /// versions or write protection.  Exists solely to prove the history
  /// checker detects real 1-copy serializability violations (the fuzz
  /// harness's deliberately-broken mode); never set in production paths.
  void set_validation_disabled_for_test(bool disabled) {
    skip_commit_validation_ = disabled;
  }

 private:
  /// Per-prepared-transaction metadata for cooperative termination: who the
  /// coordinator is and what its liveness epoch was when this replica voted
  /// (an epoch bump since then means the coordinator was killed or revived).
  struct PreparedMeta {
    net::NodeId coordinator = 0;
    std::uint32_t coord_epoch = 0;
  };

  /// In-flight termination state for one in-doubt transaction.
  struct Termination {
    net::NodeId coordinator = 0;
    std::uint32_t coord_epoch = 0;  // epoch recorded at vote time
    std::vector<net::NodeId> targets;  // coordinator + union WQ peers, no self
    /// Targets that answered this round without a decision (kUnknown /
    /// kPrepared).  Presumed-abort needs ALL of them to have answered.
    std::set<net::NodeId> round_no_decision;
    /// The coordinator answered without a decision from a NEWER liveness
    /// epoch: it restarted, and its empty decision log proves no confirm
    /// ever left it (decisions are logged before the first confirm).
    bool coord_no_decision_newer = false;
  };

  ReadResponse handle_read(const ReadRequest& req);
  VoteResponse handle_commit_request(const CommitRequest& req);
  void handle_commit_confirm(const CommitConfirm& confirm);

  /// QR-Q batch 2PC: validate every read base and write base like the
  /// per-transaction vote, but report the ids that failed so the
  /// coordinator can re-fetch only the stale queues.
  BatchVoteResponse handle_batch_commit_request(const BatchCommitRequest& req);
  void handle_batch_commit_confirm(const BatchCommitConfirm& confirm);

  /// Rqv (Alg. 1 + Alg. 4): returns an abort-carrying response when any
  /// data-set entry is invalid on this replica, nullopt when valid.
  std::optional<ReadResponse> validate(const ReadRequest& req);

  /// protected_against with the coordinator-liveness lease applied: an
  /// expired merely-protected entry is shed (counted) and reads as
  /// unprotected; an expired *prepared* entry stays protected and kicks off
  /// a termination round for its transaction.
  bool check_protected(ObjectId id, TxnId txn);

  /// True when a confirm for (txn) was already applied in this liveness
  /// epoch; counts the duplicate when so.
  bool confirm_is_duplicate(TxnId txn);
  /// Record the applied outcome for (txn) in this liveness epoch.
  void record_outcome(TxnId txn, bool commit);

  /// Begin cooperative termination for an in-doubt prepared transaction
  /// (no-op when one is already running or metadata is missing).
  void start_termination(TxnId txn);
  /// The driving coroutine: bounded rounds of query -> wait -> evaluate.
  sim::Task<void> termination_task(TxnId txn);
  /// Answer a peer's status query from the applied-set, the decision log,
  /// and the pending prepares -- via a one-way kTxnStatusResponse notify.
  void handle_txn_status_request(net::NodeId from, const TxnStatusRequest& req);
  /// Fold a peer's answer into the in-flight termination state; an
  /// authoritative decision resolves immediately.
  void handle_txn_status_response(net::NodeId from,
                                  const TxnStatusResponse& resp);
  /// Apply the resolved outcome locally (WAL first), then retransmit the
  /// confirm to the write-quorum peers (at-least-once; they dedupe).
  void resolve_indoubt(TxnId txn, bool commit);

  SyncPullResponse handle_sync_pull(net::NodeId from,
                                    const Bytes& payload) const;

  /// Whether this node replicates `id` (true under full replication).
  bool replicated_here(ObjectId id) const {
    return quorums_ == nullptr || quorums_->replicates(id_, id);
  }

  /// Cut a checkpoint when the record tail outgrew max_tail_bytes_.
  void maybe_autocut();

  /// The node's current liveness epoch, stamped into every log record so
  /// replay can pair prepares with confirms from the same incarnation.
  std::uint32_t liveness_epoch() const;

  /// fire() on the attached registry, kNone when detached.
  FaultAction fault(const char* point);

  net::RpcEndpoint& rpc_;
  net::NodeId id_;
  TraceRecorder* tracer_ = nullptr;
  FaultPointRegistry* faults_ = nullptr;
  const quorum::QuorumProvider* quorums_ = nullptr;
  Metrics* metrics_ = nullptr;
  store::ReplicaStore store_;
  store::CommitLog log_;
  bool durable_log_ = false;
  std::size_t max_tail_bytes_ = 0;
  std::uint64_t log_autocuts_ = 0;
  std::uint64_t validation_failures_ = 0;
  std::uint64_t lease_breaks_ = 0;
  sim::Tick protection_lease_ = 0;
  bool syncing_ = false;
  bool skip_commit_validation_ = false;

  // --- cooperative termination state (DESIGN.md §17) ---
  sim::Tick termination_timeout_ = sim::msec(100);
  std::uint64_t confirm_duplicates_ = 0;
  /// Applied 2PC outcomes, keyed txn -> (liveness epoch, commit): the
  /// idempotence set that lets confirms be retransmitted at-least-once.
  /// Rebuilt from the log's confirm records at replay.
  std::unordered_map<TxnId, std::pair<std::uint32_t, bool>> outcomes_;
  /// Prepared (yes-voted, WAL'd) transactions awaiting their confirm.
  std::unordered_map<TxnId, PreparedMeta> prepared_;
  /// In-doubt transactions with a termination round in flight.
  std::unordered_map<TxnId, Termination> term_;
  /// Jitters the between-round backoff; seeded per node so the schedule is
  /// deterministic and distinct across replicas.
  Rng term_rng_{1};
};

}  // namespace qrdtm::core
