// Link-latency models for the simulated metric-space network.
//
// cc DTM assumes communication costs form a metric (paper §I).  We provide:
//   * UniformLatency  -- one base latency for all links, with optional
//     deterministic-seeded jitter.  Matches the paper's testbed description
//     ("average round-trip latency ~30 ms").
//   * GridLatency     -- nodes placed on a 2D grid; latency proportional to
//     Euclidean distance plus a per-hop base.  Used to exercise the
//     metric-space claims (triangle inequality holds by construction).
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "sim/simulator.h"

namespace qrdtm::net {

using NodeId = std::uint32_t;

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  /// One-way latency for a message from `a` to `b`.  `rng` supplies jitter;
  /// implementations must be deterministic given the rng stream.
  virtual sim::Tick one_way(NodeId a, NodeId b, Rng& rng) const = 0;
};

class UniformLatency final : public LatencyModel {
 public:
  /// `base` one-way latency; jitter uniform in [0, jitter].
  explicit UniformLatency(sim::Tick base, sim::Tick jitter = 0)
      : base_(base), jitter_(jitter) {}

  sim::Tick one_way(NodeId a, NodeId b, Rng& rng) const override {
    if (a == b) return sim::usec(1);  // loopback
    sim::Tick j = jitter_ ? rng.below(jitter_ + 1) : 0;
    return base_ + j;
  }

 private:
  sim::Tick base_;
  sim::Tick jitter_;
};

class GridLatency final : public LatencyModel {
 public:
  /// Places `n` nodes deterministically on a unit square (seeded layout);
  /// latency = base + distance * scale (+ jitter).
  GridLatency(std::uint32_t n, sim::Tick base, sim::Tick scale,
              std::uint64_t layout_seed, sim::Tick jitter = 0)
      : base_(base), scale_(scale), jitter_(jitter) {
    Rng layout(layout_seed);
    pos_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      pos_.push_back({layout.uniform(), layout.uniform()});
    }
  }

  sim::Tick one_way(NodeId a, NodeId b, Rng& rng) const override {
    if (a == b) return sim::usec(1);
    QRDTM_CHECK(a < pos_.size() && b < pos_.size());
    double dx = pos_[a].x - pos_[b].x;
    double dy = pos_[a].y - pos_[b].y;
    double dist = std::sqrt(dx * dx + dy * dy);
    sim::Tick j = jitter_ ? rng.below(jitter_ + 1) : 0;
    return base_ + static_cast<sim::Tick>(dist * static_cast<double>(scale_)) +
           j;
  }

 private:
  struct P {
    double x, y;
  };
  sim::Tick base_;
  sim::Tick scale_;
  sim::Tick jitter_;
  std::vector<P> pos_;
};

}  // namespace qrdtm::net
