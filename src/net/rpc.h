// Request/response RPC over the simulated network.
//
// Each node owns one RpcEndpoint.  Server-side protocol logic registers a
// synchronous service per message kind (replica handlers in QR are
// non-blocking: validate, read, vote -- all local work).  Client-side
// transaction runtimes issue `call`s and await the returned futures; quorum
// operations fan a request out to every member and gather all replies
// (multicast-and-gather, the JGroups pattern in the paper).
//
// A call either completes with the response payload or, after `timeout`,
// with ok=false (destination dead or response lost).
//
// Hot-path notes: the in-flight call table is a small flat vector (a client
// has a handful of outstanding RPCs; linear scan + swap-remove beats a hash
// map), services are a flat array indexed by kind, and payload buffers are
// recycled through the network's BufferPool (request payloads after the
// service consumed them, response payloads after the caller decoded them).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "net/network.h"
#include "sim/sync.h"

namespace qrdtm::net {

struct RpcResult {
  bool ok = false;
  NodeId from = kNoNode;
  Bytes payload;
};

class RpcEndpoint {
 public:
  /// A service consumes a request payload and returns a response payload,
  /// or nullopt for one-way messages that take no reply.  Registered once
  /// per node at setup; only invoked on the per-message path.
  using Service =  // qrdtm-lint: allow(hot-std-function)
      std::function<std::optional<Bytes>(NodeId src, const Bytes& req)>;

  /// Creates the endpoint and registers it with the network.
  RpcEndpoint(sim::Simulator& sim, Network& net);

  NodeId id() const { return id_; }
  sim::Simulator& simulator() { return sim_; }
  Network& network() { return net_; }

  void register_service(MsgKind kind, Service service);

  /// Issue a request; the future resolves with the response or with
  /// ok=false after `timeout`.
  sim::Future<RpcResult> call(NodeId dst, MsgKind kind, Bytes req,
                              sim::Tick timeout);

  /// Fire-and-forget one-way message.
  void notify(NodeId dst, MsgKind kind, Bytes payload);

  /// Fan `req` out to every member and return the futures in member order.
  /// Await them all to implement multicast-and-gather.
  std::vector<sim::Future<RpcResult>> multicast(
      const std::vector<NodeId>& members, MsgKind kind, const Bytes& req,
      sim::Tick timeout);

  /// Acquire a pooled payload buffer pre-reserved from the running size
  /// high-watermark for `kind`.
  Bytes acquire_buffer(MsgKind kind) {
    return net_.pool().acquire(net_.payload_size_hint(kind));
  }

  /// Return a consumed payload (e.g. a decoded RpcResult's) to the pool.
  void release_buffer(Bytes&& b) { net_.pool().release(std::move(b)); }

  /// Span context stamped into every outgoing *request* envelope (qrdtm-
  /// trace).  Several client coroutines share one endpoint, so callers set
  /// the context immediately before issuing sends, with no suspension in
  /// between; 0 means untraced.
  void set_trace_context(std::uint64_t ctx) { trace_ctx_ = ctx; }
  std::uint64_t trace_context() const { return trace_ctx_; }

  /// Span context of the request currently being served, valid only inside
  /// a registered service invocation (0 otherwise).  Lets server handlers
  /// tag trace events with the originating root transaction.
  std::uint64_t inbound_trace() const { return inbound_trace_; }

 private:
  void handle(Message&& m);

  struct Pending {
    std::uint64_t rpc_id;
    sim::Promise<RpcResult> promise;
  };

  sim::Simulator& sim_;
  Network& net_;
  NodeId id_;
  std::uint64_t next_rpc_id_ = 1;
  std::uint64_t trace_ctx_ = 0;
  std::uint64_t inbound_trace_ = 0;
  std::array<Service, kMsgKindSpace> services_;
  std::vector<Pending> pending_;
};

}  // namespace qrdtm::net
