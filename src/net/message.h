// Wire-level message envelope.
//
// Every protocol in qrdtm (QR, QR-CN, QR-CHK, TFA, DecentSTM) exchanges
// Message envelopes; the payload is an opaque serde-encoded blob whose
// schema is defined by the protocol's `kind`.  This mirrors the paper's
// JGroups transport: reliable, ordered per link, unicast + multicast.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace qrdtm::net {

using NodeId = std::uint32_t;

constexpr NodeId kNoNode = ~NodeId{0};

/// Protocol-defined message discriminator.  Each protocol reserves a range:
///   0x01xx QR family requests, 0x02xx TFA, 0x03xx DecentSTM.
/// Responses reuse the request kind with the `response` flag set.
using MsgKind = std::uint16_t;

struct Message {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  MsgKind kind = 0;
  bool response = false;
  /// Destination-incarnation stamp: the destination's liveness epoch at send
  /// time (Network bumps a node's epoch on every kill *and* revive).  A
  /// message whose stamp no longer matches at delivery was addressed to a
  /// previous incarnation and is dropped, so reviving a node can never
  /// replay pre-crash traffic.  Sits in what was struct padding, keeping
  /// sizeof(Message) unchanged.
  std::uint32_t dst_epoch = 0;
  std::uint64_t rpc_id = 0;  // request/response correlation
  Bytes payload;
  /// Span context (qrdtm-trace): the root transaction on whose behalf this
  /// message travels, 0 when untraced.  Carried in the envelope -- not the
  /// payload -- so replicas can tag server-side trace events without any
  /// schema change, mirroring how real RPC stacks propagate trace ids in
  /// headers.  NOTE: sizeof(Message) is part of the simulator's inline-
  /// event budget (see Simulator::kInlineBytes) -- growing this struct can
  /// push network deliveries onto the heap path.
  std::uint64_t trace = 0;
};

}  // namespace qrdtm::net
