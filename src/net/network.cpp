#include "net/network.h"

#include <algorithm>
#include <utility>

namespace qrdtm::net {

void Network::send(Message&& m) {
  QRDTM_CHECK_MSG(m.dst < nodes_.size(), "send to unknown node");
  QRDTM_CHECK_MSG(m.src < nodes_.size(), "send from unknown node");
  QRDTM_CHECK_MSG(m.kind < kMsgKindSpace, "message kind out of range");

  ++stats_.sent_total;
  ++stats_.sent_by_kind_[m.kind];
  if (m.payload.size() > payload_hint_[m.kind]) {
    payload_hint_[m.kind] = static_cast<std::uint32_t>(m.payload.size());
  }

  // A dead *sender* cannot emit messages.
  if (!nodes_[m.src].alive) {
    ++stats_.dropped_dead;
    pool_.release(std::move(m.payload));
    return;
  }

  // Chaos drop: only request/response traffic (rpc_id != 0); see the
  // set_drop_probability comment for why one-way notifies are exempt.  The
  // RNG draw is gated on the probability so chaos-free runs consume the
  // same random stream as before the hook existed.
  if (drop_prob_ > 0.0 && m.rpc_id != 0 && rng_.chance(drop_prob_)) {
    ++stats_.dropped_chaos;
    pool_.release(std::move(m.payload));
    return;
  }

  // Partition cut: request/response traffic between the two sides is lost;
  // one-way notifies ride the reliable channel just like chaos drops.
  if (partition_active_ && m.rpc_id != 0 &&
      partition_side_[m.src] != partition_side_[m.dst]) {
    ++stats_.dropped_partition;
    pool_.release(std::move(m.payload));
    return;
  }

  // Stamp the destination's current incarnation: if the destination dies or
  // restarts while this message is in flight, the epoch check at delivery
  // drops it instead of handing pre-crash traffic to the new incarnation.
  m.dst_epoch = nodes_[m.dst].epoch;

  const sim::Tick arrival = sim_.now() + latency_->one_way(m.src, m.dst, rng_) +
                            node_slowdown(m.src) + node_slowdown(m.dst);

  // Reserve the destination's service slot now so FIFO order is decided at
  // send time per arrival; the slot start accounts for queueing behind
  // earlier arrivals.  The message moves through both events; its payload is
  // never copied between send() and the handler.
  sim_.schedule_at(arrival, [this, m = std::move(m)]() mutable {
    NodeState& dst = nodes_[m.dst];
    if (!dst.alive || dst.epoch != m.dst_epoch) {
      ++(dst.alive ? stats_.dropped_stale : stats_.dropped_dead);
      pool_.release(std::move(m.payload));
      return;
    }
    const sim::Tick start = std::max(sim_.now(), dst.busy_until);
    const sim::Tick done = start + service_time_;
    dst.busy_until = done;
    sim_.schedule_at(done, [this, m = std::move(m)]() mutable {
      NodeState& d = nodes_[m.dst];
      if (!d.alive || d.epoch != m.dst_epoch) {
        ++(d.alive ? stats_.dropped_stale : stats_.dropped_dead);
        pool_.release(std::move(m.payload));
        return;
      }
      ++stats_.delivered_total;
      d.handler(std::move(m));
    });
  });
}

}  // namespace qrdtm::net
