// Simulated message-passing network with per-node service queues and
// failure injection.
//
// Delivery pipeline for Network::send(m):
//   now --(one-way link latency)--> arrival at m.dst
//       --(FIFO wait behind earlier messages)--> service start
//       --(service time)--> handler invoked.
// The per-node FIFO service queue models a replica's finite message-handling
// capacity; it is what produces the hotspot -> load-balance -> degradation
// shape of the paper's Fig. 10 (a single-node read quorum saturates).
//
// Failure injection: kill(n) makes node n drop every message addressed to it
// from the kill instant onward (fail-stop).  Messages already handed to a
// dead node are lost; callers recover via RPC timeouts or by reconfiguring
// quorums around known-dead nodes (paper §VI-D).  revive(n) restarts the
// node (Cluster::recover_node layers state catch-up on top); each kill and
// revive bumps the node's liveness epoch, and in-flight messages stamped
// with an older epoch are dropped at delivery -- a revived node never sees
// traffic addressed to its previous incarnation, and the dropped payloads
// go back to the pool.
//
// Partition injection: set_partition(side_a) drops request/response traffic
// crossing the cut (both directions) until clear_partition(); one-way
// notifies are exempt for the same reason as chaos drops (see
// set_drop_probability).
//
// Hot-path notes: messages move (never copy) from send() through the two
// delivery events into the handler, dropped payloads are recycled through
// the network's BufferPool, and per-kind counters/size-hints are flat arrays
// indexed by MsgKind (kind space is bounded, see kMsgKindSpace).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/pool.h"
#include "common/rng.h"
#include "net/latency.h"
#include "net/message.h"
#include "sim/simulator.h"

namespace qrdtm::net {

/// Upper bound (exclusive) on MsgKind values, sized to cover every protocol
/// range (0x01xx QR family, 0x02xx TFA, 0x03xx DecentSTM) with headroom.
/// Keeping the kind space dense lets per-kind state be flat arrays.
constexpr std::size_t kMsgKindSpace = 0x0400;

/// Per-kind and aggregate message counters (paper Fig. 8 reports message
/// deltas; the core metrics map kinds onto read/commit categories).
struct NetStats {
  std::uint64_t sent_total = 0;
  std::uint64_t delivered_total = 0;
  std::uint64_t dropped_dead = 0;
  std::uint64_t dropped_chaos = 0;
  std::uint64_t dropped_stale = 0;      // epoch mismatch (pre-crash traffic)
  std::uint64_t dropped_partition = 0;  // crossed an active partition cut

  std::uint64_t sent_by_kind(MsgKind k) const { return sent_by_kind_[k]; }

  std::array<std::uint64_t, kMsgKindSpace> sent_by_kind_{};
};

class Network {
 public:
  // Constructed once per node at registration, then only *invoked* per
  // delivery -- construction cost never hits the per-message path.
  // qrdtm-lint: allow(hot-std-function)
  using Handler = std::function<void(Message&&)>;

  Network(sim::Simulator& sim, std::unique_ptr<LatencyModel> latency,
          std::uint64_t seed, sim::Tick service_time = sim::usec(50))
      : sim_(sim),
        latency_(std::move(latency)),
        rng_(seed),
        service_time_(service_time) {}

  /// Register a node's message handler.  Node ids must be dense from 0.
  NodeId add_node(Handler h) {
    nodes_.push_back(NodeState{std::move(h), /*alive=*/true,
                               /*busy_until=*/0, /*epoch=*/0});
    alive_dirty_ = true;
    return static_cast<NodeId>(nodes_.size() - 1);
  }

  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }

  bool alive(NodeId n) const {
    QRDTM_CHECK(n < nodes_.size());
    return nodes_[n].alive;
  }

  /// Fail-stop the node.  Idempotent.  The epoch bump makes every message
  /// already in flight toward the node stale, so its queue drains to the
  /// buffer pool instead of lingering until a revive.
  void kill(NodeId n) {
    QRDTM_CHECK(n < nodes_.size());
    if (!nodes_[n].alive) return;
    nodes_[n].alive = false;
    ++nodes_[n].epoch;
    alive_dirty_ = true;
  }

  /// Restart a killed node with a fresh incarnation.  Idempotent.  The
  /// epoch bump guarantees no pre-crash message can be replayed into the
  /// new incarnation; busy_until resets because the restarted replica's
  /// service queue is empty.
  void revive(NodeId n) {
    QRDTM_CHECK(n < nodes_.size());
    if (nodes_[n].alive) return;
    nodes_[n].alive = true;
    ++nodes_[n].epoch;
    nodes_[n].busy_until = 0;
    alive_dirty_ = true;
  }

  /// Liveness-epoch counter for node n (bumped on each kill and revive).
  std::uint32_t epoch(NodeId n) const {
    QRDTM_CHECK(n < nodes_.size());
    return nodes_[n].epoch;
  }

  /// Live node ids, cached between membership changes.  The reference is
  /// invalidated by the next kill/revive/add_node.
  const std::vector<NodeId>& alive_nodes() const {
    if (alive_dirty_) {
      alive_cache_.clear();
      for (NodeId n = 0; n < nodes_.size(); ++n) {
        if (nodes_[n].alive) alive_cache_.push_back(n);
      }
      alive_dirty_ = false;
    }
    return alive_cache_;
  }

  /// Enqueue a message for delivery.  Never blocks the sender (the paper's
  /// JGroups sends are asynchronous; senders wait on replies, not sends).
  void send(Message&& m);

  /// Chaos hook: drop each request/response message (rpc_id != 0) with
  /// probability p.  One-way notifies (rpc_id == 0: commit confirms, lock
  /// releases, baseline writebacks/applies) model JGroups reliable delivery
  /// and are exempt -- callers have no timeout path to recover a lost
  /// notify, whereas dropped RPC traffic is recovered exactly like a dead
  /// member (timeout + retry/abort).  The drop RNG is only consulted while
  /// a probability is set, so chaos-free runs stay bit-identical.
  void set_drop_probability(double p) {
    QRDTM_CHECK_MSG(p >= 0.0 && p < 1.0, "drop probability out of range");
    drop_prob_ = p;
  }
  double drop_probability() const { return drop_prob_; }

  /// Chaos hook: add `extra` one-way latency to every message sent or
  /// received by node n (a slow-but-alive node; 0 restores normal speed).
  /// Slowdowns above the RPC timeout make a live node look dead to its
  /// peers without losing its state -- the false-suspicion scenario.
  void set_node_slowdown(NodeId n, sim::Tick extra) {
    QRDTM_CHECK(n < nodes_.size());
    if (slowdown_.size() < nodes_.size()) slowdown_.resize(nodes_.size(), 0);
    slowdown_[n] = extra;
  }
  sim::Tick node_slowdown(NodeId n) const {
    return n < slowdown_.size() ? slowdown_[n] : 0;
  }

  /// Chaos hook: symmetric partition.  Nodes listed in `side_a` form one
  /// side of the cut, everyone else the other; request/response traffic
  /// crossing the cut is dropped at send time until clear_partition().
  /// One-way notifies are exempt (see set_drop_probability).  The check is
  /// gated on an active partition, so partition-free runs do no per-message
  /// work.
  void set_partition(const std::vector<NodeId>& side_a) {
    partition_side_.assign(nodes_.size(), 0);
    for (NodeId n : side_a) {
      QRDTM_CHECK(n < nodes_.size());
      partition_side_[n] = 1;
    }
    partition_active_ = true;
  }
  void clear_partition() { partition_active_ = false; }
  bool partition_active() const { return partition_active_; }

  const NetStats& stats() const { return stats_; }

  /// Service time charged per handled message at the destination replica.
  sim::Tick service_time() const { return service_time_; }

  /// Shared payload-buffer pool.  Encoders acquire here; consumed payloads
  /// are released back so steady-state traffic does not allocate.
  BufferPool& pool() { return pool_; }

  /// Running high-watermark of payload sizes seen per kind -- used as the
  /// reserve() hint when encoding the next message of that kind.
  std::size_t payload_size_hint(MsgKind k) const {
    return payload_hint_[k];
  }

 private:
  struct NodeState {
    Handler handler;
    bool alive;
    sim::Tick busy_until;
    std::uint32_t epoch;  // incarnation counter; bumped on kill and revive
  };

  sim::Simulator& sim_;
  std::unique_ptr<LatencyModel> latency_;
  Rng rng_;
  sim::Tick service_time_;
  double drop_prob_ = 0.0;
  bool partition_active_ = false;
  std::vector<std::uint8_t> partition_side_;  // sized on set_partition
  std::vector<sim::Tick> slowdown_;  // lazily sized; empty = no slow nodes
  std::vector<NodeState> nodes_;
  NetStats stats_;
  BufferPool pool_;
  std::array<std::uint32_t, kMsgKindSpace> payload_hint_{};
  mutable std::vector<NodeId> alive_cache_;
  mutable bool alive_dirty_ = true;
};

}  // namespace qrdtm::net
