// Simulated message-passing network with per-node service queues and
// failure injection.
//
// Delivery pipeline for Network::send(m):
//   now --(one-way link latency)--> arrival at m.dst
//       --(FIFO wait behind earlier messages)--> service start
//       --(service time)--> handler invoked.
// The per-node FIFO service queue models a replica's finite message-handling
// capacity; it is what produces the hotspot -> load-balance -> degradation
// shape of the paper's Fig. 10 (a single-node read quorum saturates).
//
// Failure injection: kill(n) makes node n drop every message addressed to it
// from the kill instant onward (fail-stop).  Messages already handed to a
// dead node are lost; callers recover via RPC timeouts or by reconfiguring
// quorums around known-dead nodes (paper §VI-D).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "net/latency.h"
#include "net/message.h"
#include "sim/simulator.h"

namespace qrdtm::net {

/// Per-kind and aggregate message counters (paper Fig. 8 reports message
/// deltas; the core metrics map kinds onto read/commit categories).
struct NetStats {
  std::uint64_t sent_total = 0;
  std::uint64_t delivered_total = 0;
  std::uint64_t dropped_dead = 0;
  std::map<MsgKind, std::uint64_t> sent_by_kind;
};

class Network {
 public:
  using Handler = std::function<void(const Message&)>;

  Network(sim::Simulator& sim, std::unique_ptr<LatencyModel> latency,
          std::uint64_t seed, sim::Tick service_time = sim::usec(50))
      : sim_(sim),
        latency_(std::move(latency)),
        rng_(seed),
        service_time_(service_time) {}

  /// Register a node's message handler.  Node ids must be dense from 0.
  NodeId add_node(Handler h) {
    nodes_.push_back(NodeState{std::move(h), /*alive=*/true,
                               /*busy_until=*/0});
    return static_cast<NodeId>(nodes_.size() - 1);
  }

  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }

  bool alive(NodeId n) const {
    QRDTM_CHECK(n < nodes_.size());
    return nodes_[n].alive;
  }

  /// Fail-stop the node.  Idempotent.
  void kill(NodeId n) {
    QRDTM_CHECK(n < nodes_.size());
    nodes_[n].alive = false;
  }

  void revive(NodeId n) {
    QRDTM_CHECK(n < nodes_.size());
    nodes_[n].alive = true;
  }

  std::vector<NodeId> alive_nodes() const {
    std::vector<NodeId> out;
    for (NodeId n = 0; n < nodes_.size(); ++n) {
      if (nodes_[n].alive) out.push_back(n);
    }
    return out;
  }

  /// Enqueue a message for delivery.  Never blocks the sender (the paper's
  /// JGroups sends are asynchronous; senders wait on replies, not sends).
  void send(Message m);

  const NetStats& stats() const { return stats_; }

  /// Service time charged per handled message at the destination replica.
  sim::Tick service_time() const { return service_time_; }

 private:
  struct NodeState {
    Handler handler;
    bool alive;
    sim::Tick busy_until;
  };

  sim::Simulator& sim_;
  std::unique_ptr<LatencyModel> latency_;
  Rng rng_;
  sim::Tick service_time_;
  std::vector<NodeState> nodes_;
  NetStats stats_;
};

}  // namespace qrdtm::net
