#include "net/rpc.h"

#include <utility>

#include "common/check.h"

namespace qrdtm::net {

RpcEndpoint::RpcEndpoint(sim::Simulator& sim, Network& net)
    : sim_(sim), net_(net) {
  id_ = net_.add_node([this](Message&& m) { handle(std::move(m)); });
}

void RpcEndpoint::register_service(MsgKind kind, Service service) {
  QRDTM_CHECK_MSG(kind < kMsgKindSpace, "message kind out of range");
  QRDTM_CHECK_MSG(!services_[kind], "duplicate service registration");
  services_[kind] = std::move(service);
}

sim::Future<RpcResult> RpcEndpoint::call(NodeId dst, MsgKind kind, Bytes req,
                                         sim::Tick timeout) {
  const std::uint64_t rpc_id = next_rpc_id_++;
  sim::Promise<RpcResult> promise(sim_);
  auto future = promise.future();
  pending_.push_back(Pending{rpc_id, promise});

  net_.send(Message{.src = id_,
                    .dst = dst,
                    .kind = kind,
                    .response = false,
                    .rpc_id = rpc_id,
                    .payload = std::move(req),
                    .trace = trace_ctx_});

  sim_.schedule_after(timeout, [this, rpc_id, dst]() {
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].rpc_id != rpc_id) continue;
      pending_[i].promise.try_set(
          RpcResult{.ok = false, .from = dst, .payload = {}});
      pending_[i] = std::move(pending_.back());
      pending_.pop_back();
      return;
    }
    // Not found: already resolved by a response.
  });
  return future;
}

void RpcEndpoint::notify(NodeId dst, MsgKind kind, Bytes payload) {
  net_.send(Message{.src = id_,
                    .dst = dst,
                    .kind = kind,
                    .response = false,
                    .rpc_id = 0,
                    .payload = std::move(payload),
                    .trace = trace_ctx_});
}

std::vector<sim::Future<RpcResult>> RpcEndpoint::multicast(
    const std::vector<NodeId>& members, MsgKind kind, const Bytes& req,
    sim::Tick timeout) {
  std::vector<sim::Future<RpcResult>> futures;
  futures.reserve(members.size());
  for (NodeId m : members) {
    // Per-member copy lands in a pooled buffer, not a fresh allocation.
    Bytes copy = net_.pool().acquire(req.size());
    copy.assign(req.begin(), req.end());
    futures.push_back(call(m, kind, std::move(copy), timeout));
  }
  return futures;
}

void RpcEndpoint::handle(Message&& m) {
  if (m.response) {
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].rpc_id != m.rpc_id) continue;
      pending_[i].promise.try_set(RpcResult{
          .ok = true, .from = m.src, .payload = std::move(m.payload)});
      pending_[i] = std::move(pending_.back());
      pending_.pop_back();
      return;
    }
    // Response raced with (and lost to) its timeout.
    net_.pool().release(std::move(m.payload));
    return;
  }

  QRDTM_CHECK_MSG(m.kind < kMsgKindSpace && services_[m.kind],
                  "no service for message kind");
  inbound_trace_ = m.trace;
  std::optional<Bytes> reply = services_[m.kind](m.src, m.payload);
  inbound_trace_ = 0;
  net_.pool().release(std::move(m.payload));
  if (reply.has_value()) {
    if (m.rpc_id != 0) {
      net_.send(Message{.src = id_,
                        .dst = m.src,
                        .kind = m.kind,
                        .response = true,
                        .rpc_id = m.rpc_id,
                        .payload = std::move(*reply)});
    } else {
      // A one-way notify() handled by a replying service: the reply has no
      // recipient, but its buffer must still go back to the pool or the
      // pool's working set shrinks by one buffer per dropped reply.
      net_.pool().release(std::move(*reply));
    }
  }
}

}  // namespace qrdtm::net
