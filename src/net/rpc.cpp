#include "net/rpc.h"

#include <utility>

#include "common/check.h"

namespace qrdtm::net {

RpcEndpoint::RpcEndpoint(sim::Simulator& sim, Network& net)
    : sim_(sim), net_(net) {
  id_ = net_.add_node([this](const Message& m) { handle(m); });
}

void RpcEndpoint::register_service(MsgKind kind, Service service) {
  QRDTM_CHECK_MSG(!services_.contains(kind), "duplicate service registration");
  services_[kind] = std::move(service);
}

sim::Future<RpcResult> RpcEndpoint::call(NodeId dst, MsgKind kind, Bytes req,
                                         sim::Tick timeout) {
  const std::uint64_t rpc_id = next_rpc_id_++;
  sim::Promise<RpcResult> promise(sim_);
  auto future = promise.future();
  pending_.emplace(rpc_id, promise);

  net_.send(Message{.src = id_,
                    .dst = dst,
                    .kind = kind,
                    .response = false,
                    .rpc_id = rpc_id,
                    .payload = std::move(req)});

  sim_.schedule_after(timeout, [this, rpc_id, dst]() {
    auto it = pending_.find(rpc_id);
    if (it == pending_.end()) return;  // already resolved
    it->second.try_set(RpcResult{.ok = false, .from = dst, .payload = {}});
    pending_.erase(it);
  });
  return future;
}

void RpcEndpoint::notify(NodeId dst, MsgKind kind, Bytes payload) {
  net_.send(Message{.src = id_,
                    .dst = dst,
                    .kind = kind,
                    .response = false,
                    .rpc_id = 0,
                    .payload = std::move(payload)});
}

std::vector<sim::Future<RpcResult>> RpcEndpoint::multicast(
    const std::vector<NodeId>& members, MsgKind kind, const Bytes& req,
    sim::Tick timeout) {
  std::vector<sim::Future<RpcResult>> futures;
  futures.reserve(members.size());
  for (NodeId m : members) {
    futures.push_back(call(m, kind, req, timeout));
  }
  return futures;
}

void RpcEndpoint::handle(const Message& m) {
  if (m.response) {
    auto it = pending_.find(m.rpc_id);
    if (it == pending_.end()) return;  // response raced with timeout
    it->second.try_set(RpcResult{.ok = true, .from = m.src,
                                 .payload = m.payload});
    pending_.erase(it);
    return;
  }

  auto svc = services_.find(m.kind);
  QRDTM_CHECK_MSG(svc != services_.end(), "no service for message kind");
  std::optional<Bytes> reply = svc->second(m.src, m.payload);
  if (reply.has_value() && m.rpc_id != 0) {
    net_.send(Message{.src = id_,
                      .dst = m.src,
                      .kind = m.kind,
                      .response = true,
                      .rpc_id = m.rpc_id,
                      .payload = std::move(*reply)});
  }
}

}  // namespace qrdtm::net
