#include "store/replica_store.h"

#include <utility>

#include "common/check.h"

namespace qrdtm::store {

const ReplicaEntry* ReplicaStore::find(ObjectId id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

ReplicaEntry* ReplicaStore::find_mut(ObjectId id) {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

Version ReplicaStore::version_of(ObjectId id) const {
  const ReplicaEntry* e = find(id);
  return e ? e->version : 0;
}

bool ReplicaStore::protected_against(ObjectId id, TxnId txn) const {
  const ReplicaEntry* e = find(id);
  return e && e->is_protected && e->protector != txn;
}

ReplicaEntry& ReplicaStore::get_or_create(ObjectId id) {
  QRDTM_CHECK_MSG(id != kNullObject, "null object id");
  return entries_[id];
}

void ReplicaStore::seed(ObjectId id, Bytes data, Version version) {
  ReplicaEntry& e = get_or_create(id);
  e.version = version;
  e.data = std::move(data);
  e.is_protected = false;
}

void ReplicaStore::apply(ObjectId id, Version version, Bytes data) {
  ReplicaEntry& e = get_or_create(id);
  if (version > e.version) {
    e.version = version;
    e.data = std::move(data);
  }
}

void ReplicaStore::protect(ObjectId id, TxnId txn, std::uint64_t now) {
  ReplicaEntry& e = get_or_create(id);
  QRDTM_CHECK_MSG(!e.is_protected || e.protector == txn,
                  "protect over another transaction's protection");
  e.is_protected = true;
  e.protector = txn;
  e.protect_tick = now;
}

void ReplicaStore::unprotect(ObjectId id, TxnId txn) {
  ReplicaEntry* e = find_mut(id);
  if (e && e->is_protected && e->protector == txn) {
    e->is_protected = false;
    e->protector = 0;
    e->prepared = false;
  }
}

void ReplicaStore::mark_prepared(ObjectId id, TxnId txn) {
  ReplicaEntry* e = find_mut(id);
  if (e && e->is_protected && e->protector == txn) e->prepared = true;
}

bool ReplicaStore::holds_protection(ObjectId id, TxnId txn) const {
  const ReplicaEntry* e = find(id);
  return e && e->is_protected && e->protector == txn;
}

bool ReplicaStore::prepared(ObjectId id) const {
  const ReplicaEntry* e = find(id);
  return e && e->is_protected && e->prepared;
}

bool ReplicaStore::expire_protection(ObjectId id, std::uint64_t now,
                                     std::uint64_t lease) {
  ReplicaEntry* e = find_mut(id);
  if (!e || !e->is_protected) return false;
  if (e->prepared) return false;  // yes-voted: termination round territory
  if (now < e->protect_tick + lease) return false;
  e->is_protected = false;
  e->protector = 0;
  return true;
}

bool ReplicaStore::lease_expired(ObjectId id, std::uint64_t now,
                                 std::uint64_t lease) const {
  const ReplicaEntry* e = find(id);
  return e && e->is_protected && now >= e->protect_tick + lease;
}

void ReplicaStore::clear_volatile() {
  // Resetting flags entry-by-entry (any order; entries are independent).
  // qrdtm-lint: allow(det-unordered-iter)
  for (auto& [id, e] : entries_) {
    e.is_protected = false;
    e.protector = 0;
    e.protect_tick = 0;
    e.prepared = false;
    e.pr.clear();
    e.pw.clear();
  }
  txn_objects_.clear();
}

void ReplicaStore::clear_all() {
  entries_.clear();
  txn_objects_.clear();
}

void ReplicaStore::add_reader(ObjectId id, TxnId txn) {
  get_or_create(id).pr.insert(txn);
  txn_objects_[txn].insert(id);
}

void ReplicaStore::add_writer(ObjectId id, TxnId txn) {
  get_or_create(id).pw.insert(txn);
  txn_objects_[txn].insert(id);
}

void ReplicaStore::drop_txn(TxnId txn) {
  auto it = txn_objects_.find(txn);
  if (it == txn_objects_.end()) return;
  for (ObjectId id : it->second) {
    if (ReplicaEntry* e = find_mut(id)) {
      e->pr.erase(txn);
      e->pw.erase(txn);
    }
  }
  txn_objects_.erase(it);
}

std::size_t ReplicaStore::tracked_txn_entries() const {
  std::size_t total = 0;
  // Commutative sum: any iteration order yields the same total.
  // qrdtm-lint: allow(det-unordered-iter)
  for (const auto& [id, e] : entries_) {
    total += e.pr.size() + e.pw.size();
  }
  return total;
}

}  // namespace qrdtm::store
