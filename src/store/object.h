// Replicated-object identifiers and copies.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace qrdtm::store {

using ObjectId = std::uint64_t;
using Version = std::uint64_t;
using TxnId = std::uint64_t;

/// Reserved id used by applications as a "null pointer" inside serialized
/// structures (never stored or fetched).
constexpr ObjectId kNullObject = 0;

/// A transaction-local copy of a replicated object, as obtained from a read
/// quorum (version = highest version among replies; data = that copy).
struct ObjectCopy {
  ObjectId id = kNullObject;
  Version version = 0;
  Bytes data;
};

}  // namespace qrdtm::store
