// Per-node versioned object store (one per replica).
//
// In QR every node keeps a copy of every object (paper §III-B property 1),
// though copies may be stale: only the members of the committing write
// quorum receive a new version.  Each entry carries:
//   * version + data    -- the replica's (possibly stale) copy,
//   * protected flag    -- set between a 2PC commit vote and the confirm
//     (the paper's `protected` object field),
//   * PR / PW           -- potential readers / writers lists, bookkeeping
//     consumed by contention management (paper §II).
//
// An object a replica has never heard of behaves as version 0: validation
// treats the replica as maximally stale for it, which is safe (Q1 guarantees
// some quorum member is up to date).
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "store/object.h"

namespace qrdtm::store {

struct ReplicaEntry {
  Version version = 0;
  Bytes data;
  bool is_protected = false;
  TxnId protector = 0;
  /// Simulation tick when the current protection was taken; the coordinator-
  /// liveness lease (QrServer) sheds protections older than the lease.
  std::uint64_t protect_tick = 0;
  /// The protection backs a yes-vote with a durable WAL prepare: the replica
  /// promised to commit.  A lease-expired *prepared* protection must run the
  /// cooperative termination protocol (DESIGN.md §17) instead of being shed
  /// silently -- shedding it could lose an acknowledged commit.
  bool prepared = false;
  std::set<TxnId> pr;  // potential readers
  std::set<TxnId> pw;  // potential writers
};

class ReplicaStore {
 public:
  /// Looks up an entry; nullptr when the replica has no copy.
  const ReplicaEntry* find(ObjectId id) const;
  ReplicaEntry* find_mut(ObjectId id);

  /// The replica's version for validation purposes (0 when absent).
  Version version_of(ObjectId id) const;

  /// True when the object is protected by a transaction other than `txn`.
  bool protected_against(ObjectId id, TxnId txn) const;

  /// Install an initial object at setup time (bypasses the protocol; used
  /// to seed benchmark data structures before the run starts).
  void seed(ObjectId id, Bytes data, Version version = 1);

  /// Apply a committed write: fast-forwards the copy iff `version` is newer
  /// (a stale replica may receive confirms out of order across objects).
  void apply(ObjectId id, Version version, Bytes data);

  /// 2PC vote bookkeeping.  `now` is recorded so the protection can later be
  /// lease-expired if the coordinator dies between vote and confirm.  No
  /// default: a protection stamped `now = 0` looks eternally lease-expired
  /// to expire_protection(), so every caller must name the lease epoch.
  void protect(ObjectId id, TxnId txn, std::uint64_t now);
  /// Clears protection iff held by `txn` (confirms may arrive after a
  /// competing transaction re-protected the object).
  void unprotect(ObjectId id, TxnId txn);

  /// Mark the protection on `id` held by `txn` as backed by a durable
  /// prepare (yes-vote).  No-op if `txn` does not hold the protection.
  void mark_prepared(ObjectId id, TxnId txn);

  /// True when `id` is currently protected BY `txn` (not merely against
  /// it).  Confirm deduplication uses this to tell a fresh 2PC round of a
  /// retried root (live protection -> must apply) from a retransmitted
  /// confirm of an already-settled round (no protection -> drop).
  bool holds_protection(ObjectId id, TxnId txn) const;

  /// True when `id` is protected AND the protection is prepared-backed.
  bool prepared(ObjectId id) const;

  /// Shed the protection on `id` iff it has been held for at least `lease`
  /// ticks -- the coordinator is presumed dead (its confirm would have
  /// arrived long ago).  Returns true when a protection was shed.  Refuses
  /// (returns false) for *prepared* protections: those carry a yes-vote and
  /// may only be released by a confirm or a termination-round decision.
  bool expire_protection(ObjectId id, std::uint64_t now, std::uint64_t lease);

  /// True when `id` holds a protection whose lease has run out (prepared or
  /// not) -- the trigger for a termination round on prepared entries.
  bool lease_expired(ObjectId id, std::uint64_t now, std::uint64_t lease) const;

  /// Wipe all volatile 2PC state (protections, PR/PW lists) while keeping
  /// committed versions.  Models a process restart: the protocol's in-flight
  /// bookkeeping lives in memory, committed data is durable.
  void clear_volatile();

  /// Wipe EVERYTHING, committed versions included.  Models a crash under the
  /// durable-commit-log regime: memory is volatile, the CommitLog is the
  /// disk, and recovery rebuilds the store via CommitLog::replay_into.
  void clear_all();

  /// PR/PW maintenance (root transactions only, paper Alg. 2 line 17-18).
  void add_reader(ObjectId id, TxnId txn);
  void add_writer(ObjectId id, TxnId txn);
  /// Drop `txn` from the PR/PW lists of every object (validation failure,
  /// commit, or abort; paper Alg. 1 line 8).
  void drop_txn(TxnId txn);

  std::size_t num_objects() const { return entries_.size(); }

  /// Total PR+PW membership across all entries (test observability).
  std::size_t tracked_txn_entries() const;

  /// Whole-store view for recovery catch-up serving; iteration order is
  /// unspecified, so consumers building wire payloads must sort by id.
  const std::unordered_map<ObjectId, ReplicaEntry>& entries() const {
    return entries_;
  }

 private:
  ReplicaEntry& get_or_create(ObjectId id);

  std::unordered_map<ObjectId, ReplicaEntry> entries_;
  // Reverse index so drop_txn does not scan the whole store.
  std::unordered_map<TxnId, std::set<ObjectId>> txn_objects_;
};

}  // namespace qrdtm::store
