// Per-node durable commit/checkpoint log (the deterministic in-sim "disk").
//
// PR-5's recovery model assumed committed versions survive a crash wholesale
// (ReplicaStore::clear_volatile keeps them) and re-pulled a FULL read
// quorum's state on every rejoin -- O(store) per restart.  The commit log
// makes durability explicit instead: the replica's in-memory store is truly
// volatile, and what survives a crash is this log -- an append-only record
// stream compacted by periodic checkpoint cuts.  A restarting node replays
// the log locally and then asks its read quorum only for a version-bounded
// delta (SyncPullRequest carries per-object bounds), so anti-entropy ships
// what the node missed while dead, not everything it already has.
//
// Record stream (each record length-prefixed so a torn tail -- a partial
// final record from a crash mid-flush -- is dropped cleanly, never
// misparsed):
//   * apply   {epoch, id, version, data}  -- seeds and direct installs,
//   * prepare {epoch, txn, writes[{id, base, steps, data}]} -- a 2PC commit
//     vote took protections here; the write payload lives ONLY in this
//     record,
//   * confirm {epoch, txn, commit} -- the one-way 2PC outcome.  Deliberately
//     carries no writeset: replay resolves it against the matching prepare,
//     exactly the coupling the Greengage checkpoint_dtx_info bug broke.
//
// A checkpoint cut snapshots the store image, carries forward every
// prepared-but-unconfirmed transaction (the getDtxCheckPointInfo analogue),
// and discards the tail.  If the carry is skipped (the chk.cut.carry fault
// point models the Greengage bug), a confirm logged after the cut references
// an unknown prepare and its writes are silently lost at replay -- which the
// history checker must then catch.
//
// Replay rules (replay_into):
//   1. install the image objects (ReplicaStore::apply, strictly-newer), and
//      remember the carried prepares as pending;
//   2. walk the tail: prepare -> pending, confirm(commit) -> apply each
//      pending write at base+steps, confirm(abort) -> drop the pending
//      entry.  A confirm is honoured only when the pending prepare carries
//      the SAME liveness epoch -- a prepare from incarnation e can only be
//      confirmed in incarnation e (the network drops cross-epoch traffic),
//      so a mismatched pair means a stale record, not a commit;
//   3. prepares still pending at the end are in-doubt: left for the
//      cooperative termination protocol (DESIGN.md §17) to resolve -- a
//      commit decided elsewhere also arrives through the delta pull.
// Replay only ever calls ReplicaStore::apply, so it is idempotent.
//
// Coordinator decisions (PR 10): before any confirm leaves the node, the
// coordinator appends a decision record {txn, commit|abort, encoded confirm,
// members}.  Unsettled decisions are carried across cuts and re-driven after
// a restart (at-least-once delivery; receivers dedupe on (txn, epoch)).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "store/object.h"
#include "store/replica_store.h"

namespace qrdtm::store {

/// One write of a logged prepare: the committed version is base + steps
/// (steps == 1 for a per-transaction 2PC, the queue depth for a QR-Q batch).
struct LoggedWrite {
  ObjectId id = 0;
  Version base = 0;
  std::uint32_t steps = 1;
  Bytes data;
};

/// A coordinator's durable 2PC decision (DESIGN.md §17): written after the
/// votes resolve and BEFORE any confirm leaves the node.  `payload` is the
/// raw encoded confirm (CommitConfirm or BatchCommitConfirm, named by
/// `confirm_kind`), so re-driving after a restart is pure retransmission to
/// `members`.  The invariant this buys: if a restarted coordinator finds no
/// decision for txn in its log, no confirm was ever sent, so presumed-abort
/// by in-doubt replicas can never contradict an acknowledged commit.
struct Decision {
  std::uint32_t epoch = 0;
  bool commit = false;
  std::uint16_t confirm_kind = 0;
  std::vector<std::uint32_t> members;  // write-quorum nodes to (re-)notify
  Bytes payload;                       // encoded confirm message
};

class CommitLog {
 public:
  /// Append a direct install (setup seed or recovery-delta entry made
  /// durable by the post-sync cut).
  void append_apply(ObjectId id, Version version, const Bytes& data,
                    std::uint32_t epoch);

  /// Append a 2PC prepare (commit vote taken, write-set protected).
  void append_prepare(TxnId txn, std::vector<LoggedWrite> writes,
                      std::uint32_t epoch);

  /// Append the one-way 2PC outcome for `txn`.
  void append_confirm(TxnId txn, bool commit, std::uint32_t epoch);

  /// Coordinator side: durably record the 2PC decision for `txn` before any
  /// confirm is sent.  The decision stays "open" (returned by
  /// open_decisions(), carried across checkpoint cuts) until
  /// settle_decision() marks the confirm broadcast complete.
  void append_decision(TxnId txn, Decision d);

  /// The confirm broadcast for `txn` completed in this incarnation; stop
  /// re-driving it.  No record is appended: a crash between the broadcast
  /// and the settle merely re-drives the confirms at-least-once, which the
  /// (txn, epoch) applied-set on the receivers absorbs.
  void settle_decision(TxnId txn);

  /// Decisions whose confirm broadcast has not been settled -- what a
  /// restarted coordinator must re-drive.  Ordered by txn id so re-delivery
  /// is deterministic.
  const std::map<TxnId, Decision>& open_decisions() const {
    return decisions_;
  }

  /// The recorded verdict for `txn`: true = commit, false = abort, nullopt =
  /// this node never logged a decision for it.  Retained after settling --
  /// termination rounds may ask about long-finished transactions.
  std::optional<bool> decision_verdict(TxnId txn) const;

  /// The in-flight (prepared, unconfirmed) writes of `txn`, or nullptr.
  /// A replica resolving an in-doubt transaction to commit applies these.
  const std::vector<LoggedWrite>* find_pending(TxnId txn) const;

  /// Checkpoint cut: replace the image with a snapshot of `store`, carry
  /// the in-flight prepares forward (unless `carry_in_flight` is false --
  /// the Greengage bug), and discard the record tail.
  void cut(const ReplicaStore& store, std::uint32_t epoch,
           bool carry_in_flight = true);

  /// Rebuild `store` from the image + tail per the replay rules above.
  /// Returns the number of apply operations performed on the store.  A torn
  /// trailing record is dropped; a corrupt image voids the whole log.
  /// When `outcomes` is non-null, every honoured confirm record is also
  /// recorded there as txn -> (epoch, commit) so the server can rebuild its
  /// idempotence applied-set across restarts.
  std::size_t replay_into(
      ReplicaStore& store,
      std::unordered_map<TxnId, std::pair<std::uint32_t, bool>>* outcomes =
          nullptr) const;

  // ----- observability ----------------------------------------------------

  /// Durable footprint in bytes (image + tail).
  std::size_t size_bytes() const { return image_.size() + tail_.size(); }
  /// Bytes appended since the last cut (the unbounded part of the
  /// footprint; QrServer's max_tail_bytes auto-cut polices it).
  std::size_t tail_bytes() const { return tail_.size(); }
  /// Records appended since the last cut.
  std::uint64_t tail_records() const { return tail_records_; }
  /// Checkpoint cuts taken over the log's lifetime.
  std::uint64_t cuts() const { return cuts_; }
  /// Upper version bound covered by the log (max version ever recorded).
  Version high_version() const { return high_version_; }
  /// Prepared-but-unconfirmed transactions currently tracked.
  std::size_t in_flight() const { return pending_.size(); }
  bool empty() const { return image_.empty() && tail_.empty(); }

  /// Forget everything (tests only; a real disk does not lose its past).
  void clear();

  /// Simulate a torn write: drop the last `bytes` of the record tail, as a
  /// crash mid-flush would.  Clamped to the tail size.
  void truncate_tail_for_test(std::size_t bytes);

 private:
  struct Pending {
    std::uint32_t epoch = 0;
    std::vector<LoggedWrite> writes;
  };

  Bytes image_;  // checkpoint snapshot: objects + carried prepares/decisions
  Bytes tail_;   // length-prefixed records appended since the cut
  // In-flight prepares, maintained at append time so cut() can carry them.
  // Derived state: a replay of the durable bytes reconstructs it.
  std::unordered_map<TxnId, Pending> pending_;
  // Unsettled coordinator decisions (append_decision without a matching
  // settle_decision), carried across cuts like pending_.
  std::map<TxnId, Decision> decisions_;
  // Every verdict ever logged here, kept after settling so termination
  // queries about old transactions still get an authoritative answer.
  // In-memory only and never carried in the cut image: a fully-settled
  // transaction has no live in-doubt holder left to ask about it, so
  // rebuilding the map from the open decisions after a crash is sufficient
  // -- and the cut image stays bounded by the store size.
  std::unordered_map<TxnId, bool> verdicts_;
  Version high_version_ = 0;
  std::uint64_t tail_records_ = 0;
  std::uint64_t cuts_ = 0;
};

}  // namespace qrdtm::store
