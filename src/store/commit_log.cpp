#include "store/commit_log.h"

#include <algorithm>
#include <utility>

#include "common/serde.h"

namespace qrdtm::store {

namespace {

// Tail record types.
constexpr std::uint8_t kApply = 1;
constexpr std::uint8_t kPrepare = 2;
constexpr std::uint8_t kConfirm = 3;
constexpr std::uint8_t kDecision = 4;

void put_decision(Writer& w, TxnId txn, const Decision& d) {
  w.u32(d.epoch);
  w.u64(txn);
  w.boolean(d.commit);
  w.u16(d.confirm_kind);
  encode_vec(w, d.members, [](Writer& w2, std::uint32_t n) { w2.u32(n); });
  w.blob(d.payload);
}

std::pair<TxnId, Decision> get_decision(Reader& r) {
  Decision d;
  d.epoch = r.u32();
  const TxnId txn = r.u64();
  d.commit = r.boolean();
  d.confirm_kind = r.u16();
  d.members =
      decode_vec<std::uint32_t>(r, [](Reader& r2) { return r2.u32(); });
  d.payload = r.blob();
  return {txn, std::move(d)};
}

void put_write(Writer& w, const LoggedWrite& lw) {
  w.u64(lw.id);
  w.u64(lw.base);
  w.u32(lw.steps);
  w.blob(lw.data);
}

LoggedWrite get_write(Reader& r) {
  LoggedWrite lw;
  lw.id = r.u64();
  lw.base = r.u64();
  lw.steps = r.u32();
  lw.data = r.blob();
  return lw;
}

/// Frame one record: u32 length prefix + payload.  The prefix is what lets
/// replay drop a torn (partially written) final record instead of
/// misparsing it.
void frame(Bytes& tail, const Writer& payload) {
  Writer len;
  len.u32(static_cast<std::uint32_t>(payload.size()));
  tail.insert(tail.end(), len.bytes().begin(), len.bytes().end());
  tail.insert(tail.end(), payload.bytes().begin(), payload.bytes().end());
}

}  // namespace

void CommitLog::append_apply(ObjectId id, Version version, const Bytes& data,
                             std::uint32_t epoch) {
  Writer w;
  w.reserve(1 + 4 + 8 + 8 + 4 + data.size());
  w.u8(kApply);
  w.u32(epoch);
  w.u64(id);
  w.u64(version);
  w.blob(data);
  frame(tail_, w);
  ++tail_records_;
  high_version_ = std::max(high_version_, version);
}

void CommitLog::append_prepare(TxnId txn, std::vector<LoggedWrite> writes,
                               std::uint32_t epoch) {
  Writer w;
  w.u8(kPrepare);
  w.u32(epoch);
  w.u64(txn);
  encode_vec(w, writes, put_write);
  frame(tail_, w);
  ++tail_records_;
  for (const LoggedWrite& lw : writes) {
    high_version_ = std::max(high_version_, lw.base + lw.steps);
  }
  pending_[txn] = Pending{epoch, std::move(writes)};
}

void CommitLog::append_confirm(TxnId txn, bool commit, std::uint32_t epoch) {
  Writer w;
  w.reserve(1 + 4 + 8 + 1);
  w.u8(kConfirm);
  w.u32(epoch);
  w.u64(txn);
  w.boolean(commit);
  frame(tail_, w);
  ++tail_records_;
  pending_.erase(txn);
}

void CommitLog::append_decision(TxnId txn, Decision d) {
  Writer w;
  w.reserve(1 + 4 + 8 + 1 + 2 + 4 + d.members.size() * 4 + 4 +
            d.payload.size());
  w.u8(kDecision);
  // put_decision leads with the epoch, matching the other records' layout.
  put_decision(w, txn, d);
  frame(tail_, w);
  ++tail_records_;
  verdicts_[txn] = d.commit;
  decisions_[txn] = std::move(d);
}

void CommitLog::settle_decision(TxnId txn) { decisions_.erase(txn); }

std::optional<bool> CommitLog::decision_verdict(TxnId txn) const {
  auto it = verdicts_.find(txn);
  if (it == verdicts_.end()) return std::nullopt;
  return it->second;
}

const std::vector<LoggedWrite>* CommitLog::find_pending(TxnId txn) const {
  auto it = pending_.find(txn);
  return it == pending_.end() ? nullptr : &it->second.writes;
}

void CommitLog::cut(const ReplicaStore& store, std::uint32_t epoch,
                    bool carry_in_flight) {
  // Snapshot the committed image, ids ascending (the store map is
  // unordered; the disk bytes must not depend on hash order).
  std::vector<ObjectId> ids;
  ids.reserve(store.num_objects());
  // Collect-then-sort below.  qrdtm-lint: allow(det-unordered-iter)
  for (const auto& [id, e] : store.entries()) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  Writer w;
  w.u32(epoch);
  Version high = high_version_;
  for (ObjectId id : ids) high = std::max(high, store.find(id)->version);
  w.u64(high);
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (ObjectId id : ids) {
    const ReplicaEntry* e = store.find(id);
    w.u64(id);
    w.u64(e->version);
    w.blob(e->data);
  }

  // Carry the in-flight prepares (the getDtxCheckPointInfo analogue): a
  // transaction mid-2PC at cut time will be confirmed AFTER the cut, and
  // its confirm record carries no writeset -- without the carry, replay
  // silently loses the write (the Greengage bug the chk.cut.carry fault
  // point re-creates).
  if (carry_in_flight) {
    std::vector<TxnId> txns;
    txns.reserve(pending_.size());
    // Collect-then-sort below.  qrdtm-lint: allow(det-unordered-iter)
    for (const auto& [txn, p] : pending_) txns.push_back(txn);
    std::sort(txns.begin(), txns.end());
    w.u32(static_cast<std::uint32_t>(txns.size()));
    for (TxnId txn : txns) {
      const Pending& p = pending_.at(txn);
      w.u32(p.epoch);
      w.u64(txn);
      encode_vec(w, p.writes, put_write);
    }
  } else {
    w.u32(0);
  }

  // Carry the unsettled coordinator decisions: a decision whose confirm
  // broadcast has not completed must survive the cut, or a restart after
  // the cut could presumed-abort a transaction whose confirms were already
  // partially delivered.  decisions_ is a std::map, so iteration is already
  // txn-ordered (deterministic disk bytes).
  w.u32(static_cast<std::uint32_t>(decisions_.size()));
  for (const auto& [txn, d] : decisions_) put_decision(w, txn, d);

  image_ = std::move(w).take();
  tail_.clear();
  tail_records_ = 0;
  high_version_ = high;
  ++cuts_;
}

std::size_t CommitLog::replay_into(
    ReplicaStore& store,
    std::unordered_map<TxnId, std::pair<std::uint32_t, bool>>* outcomes)
    const {
  std::size_t applied = 0;
  std::unordered_map<TxnId, Pending> pending;

  if (!image_.empty()) {
    try {
      Reader r(image_);
      r.u32();  // image epoch (observability; not needed to replay)
      r.u64();  // high version bound
      const std::uint32_t nobj = r.u32();
      for (std::uint32_t i = 0; i < nobj; ++i) {
        const ObjectId id = r.u64();
        const Version version = r.u64();
        Bytes data = r.blob();
        store.apply(id, version, std::move(data));
        ++applied;
      }
      const std::uint32_t ncarry = r.u32();
      for (std::uint32_t i = 0; i < ncarry; ++i) {
        Pending p;
        p.epoch = r.u32();
        const TxnId txn = r.u64();
        p.writes = decode_vec<LoggedWrite>(r, get_write);
        pending[txn] = std::move(p);
      }
      // Carried decisions (see cut()).  Nothing to apply here -- the live
      // decisions_/verdicts_ members survive with the log object; parsing
      // keeps the image walk aligned and validates the bytes.  Images cut
      // before the decisions section existed simply end here.
      if (r.remaining() > 0) {
        const std::uint32_t ndec = r.u32();
        for (std::uint32_t i = 0; i < ndec; ++i) get_decision(r);
      }
    } catch (const SerdeError&) {
      // A corrupt image voids the whole log: the tail's confirms would
      // resolve against prepares we may have lost.  The delta pull becomes
      // a full pull, which is safe (just slow).
      return 0;
    }
  }

  Reader r(tail_);
  while (r.remaining() >= 4) {
    const std::uint32_t len = r.u32();
    if (len > r.remaining()) break;  // torn tail: partial record dropped
    Bytes payload(len);
    try {
      // Re-read the framed payload through a bounded sub-reader so a
      // corrupt record cannot consume its successors.
      for (std::uint32_t i = 0; i < len; ++i) payload[i] = r.u8();
      Reader rec(payload);
      const std::uint8_t type = rec.u8();
      const std::uint32_t epoch = rec.u32();
      switch (type) {
        case kApply: {
          const ObjectId id = rec.u64();
          const Version version = rec.u64();
          Bytes data = rec.blob();
          store.apply(id, version, std::move(data));
          ++applied;
          break;
        }
        case kPrepare: {
          const TxnId txn = rec.u64();
          Pending p;
          p.epoch = epoch;
          p.writes = decode_vec<LoggedWrite>(rec, get_write);
          pending[txn] = std::move(p);
          break;
        }
        case kConfirm: {
          const TxnId txn = rec.u64();
          const bool commit = rec.boolean();
          auto it = pending.find(txn);
          // Epoch stamping: a prepare taken in incarnation e can only be
          // confirmed in incarnation e (the network drops cross-epoch
          // traffic), so a mismatched pair is a stale record, not a commit.
          if (it != pending.end() && it->second.epoch == epoch) {
            if (commit) {
              for (const LoggedWrite& lw : it->second.writes) {
                store.apply(lw.id, lw.base + lw.steps, lw.data);
                ++applied;
              }
            }
            pending.erase(it);
            if (outcomes != nullptr) (*outcomes)[txn] = {epoch, commit};
          }
          break;
        }
        case kDecision:
          // Coordinator decision: nothing to apply to the store (its own
          // confirm record, if it is a quorum member, does that).  The
          // decisions_/verdicts_ members survive with the log object and
          // drive the re-delivery (Cluster::recover_node).
          break;
        default:
          break;  // unknown record type: skip (forward compatibility)
      }
    } catch (const SerdeError&) {
      break;  // torn/corrupt record payload: drop it and everything after
    }
  }
  // Whatever is still pending is in-doubt: the crash landed between this
  // node's vote and the coordinator's confirm.  Not applied here -- the
  // termination protocol (DESIGN.md §17) resolves it once the lease runs
  // out, and a commit resolved elsewhere also arrives via the delta pull.
  return applied;
}

void CommitLog::clear() {
  image_.clear();
  tail_.clear();
  pending_.clear();
  decisions_.clear();
  verdicts_.clear();
  high_version_ = 0;
  tail_records_ = 0;
  cuts_ = 0;
}

void CommitLog::truncate_tail_for_test(std::size_t bytes) {
  const std::size_t drop = std::min(bytes, tail_.size());
  tail_.resize(tail_.size() - drop);
}

}  // namespace qrdtm::store
