#include "baselines/decent.h"

#include <algorithm>

#include "common/check.h"
#include "common/serde.h"
#include "core/backoff.h"
#include "core/history.h"
#include "net/latency.h"

namespace qrdtm::baselines {

namespace {

constexpr net::MsgKind kDecentRead = 0x0301;
constexpr net::MsgKind kDecentVote = 0x0302;
constexpr net::MsgKind kDecentApply = 0x0303;  // one-way

}  // namespace

/// Replica node: version histories for the objects it replicates.
///
/// Write locks carry a coordinator-liveness lease: a lock held longer than
/// DecentConfig::lock_lease means the coordinator died between vote and
/// apply, so the replica sheds it on the next conflicting vote instead of
/// leaving the object unwritable forever.  A commit-apply whose transaction
/// no longer holds the lock is dropped -- the lease already presumed that
/// coordinator dead, and appending its version behind a successor's would
/// break the history's timestamp order.
class DecentNode {
 public:
  DecentNode(net::RpcEndpoint& rpc, std::uint32_t history_depth,
             sim::Tick lock_lease)
      : history_depth_(history_depth),
        sim_(rpc.simulator()),
        lock_lease_(lock_lease) {
    rpc.register_service(kDecentRead, [this](net::NodeId, const Bytes& b) {
      return handle_read(b);
    });
    rpc.register_service(kDecentVote, [this](net::NodeId, const Bytes& b) {
      return handle_vote(b);
    });
    rpc.register_service(
        kDecentApply,
        [this](net::NodeId, const Bytes& b) -> std::optional<Bytes> {
          handle_apply(b);
          return std::nullopt;
        });
  }

  void seed(ObjectId id, const Bytes& data) {
    objects_[id].versions = {{1, data}};
    clock_ = std::max<Version>(clock_, 1);
  }

  bool locked(ObjectId id) const {
    auto it = objects_.find(id);
    return it != objects_.end() && it->second.locked_by != 0;
  }
  std::uint64_t lease_breaks() const { return lease_breaks_; }
  std::uint64_t stale_applies() const { return stale_applies_; }

 private:
  struct Entry {
    std::vector<std::pair<Version, Bytes>> versions;  // ascending by ts
    TxnId locked_by = 0;
    sim::Tick locked_at = 0;
  };

  /// Shed a lock whose holder's apply is overdue by the whole lease.
  void shed_stale_lock(Entry& e) {
    if (lock_lease_ == 0 || e.locked_by == 0) return;
    if (sim_.now() < e.locked_at + lock_lease_) return;
    e.locked_by = 0;
    ++lease_breaks_;
  }

  std::optional<Bytes> handle_read(const Bytes& b) {
    Reader r(b);
    ObjectId id = r.u64();
    std::uint64_t snapshot = r.u64();  // 0 = not yet pinned: serve newest

    Writer w;
    auto it = objects_.find(id);
    bool served = false;
    if (it != objects_.end() && !it->second.versions.empty()) {
      const auto& vs = it->second.versions;
      // Newest version with ts <= snapshot (or the newest overall when the
      // snapshot is unpinned).  A pruned history may no longer cover an old
      // snapshot: that is the "snapshot too old" abort.
      for (std::size_t i = vs.size(); i-- > 0;) {
        if (snapshot != 0 && vs[i].first > snapshot) continue;
        w.boolean(true);
        w.u64(vs[i].first);
        w.blob(vs[i].second);
        served = true;
        break;
      }
    }
    if (!served) {
      w.boolean(false);
      w.u64(0);
      w.blob({});
    }
    // The replica's clock (newest commit timestamp it has applied): the
    // first read pins the transaction snapshot to this, so later reads'
    // histories always reach down to it.
    w.u64(clock_);
    return std::move(w).take();
  }

  std::optional<Bytes> handle_vote(const Bytes& b) {
    Reader r(b);
    TxnId txn = r.u64();
    ObjectId id = r.u64();
    Version base = r.u64();
    Entry& e = objects_[id];
    shed_stale_lock(e);
    const Version newest = e.versions.empty() ? 0 : e.versions.back().first;
    // First-committer-wins: a newer committed version (or a competing lock)
    // kills the update.
    bool ok = newest <= base && (e.locked_by == 0 || e.locked_by == txn);
    if (ok) {
      e.locked_by = txn;
      e.locked_at = sim_.now();
    }
    Writer w;
    w.boolean(ok);
    return std::move(w).take();
  }

  void handle_apply(const Bytes& b) {
    Reader r(b);
    TxnId txn = r.u64();
    ObjectId id = r.u64();
    bool commit = r.boolean();
    Version ts = r.u64();
    Bytes data = r.blob();
    auto it = objects_.find(id);
    if (it == objects_.end()) return;
    Entry& e = it->second;
    if (commit && e.locked_by != txn) {
      // The lease shed this writer's lock (and possibly granted it to a
      // successor): appending its version now could land behind a newer
      // timestamp and corrupt the history's ordering invariant.
      ++stale_applies_;
      return;
    }
    if (e.locked_by == txn) e.locked_by = 0;
    if (commit) {
      e.versions.emplace_back(ts, std::move(data));
      clock_ = std::max<Version>(clock_, ts);
      if (e.versions.size() > history_depth_) {
        e.versions.erase(e.versions.begin());
      }
    }
  }

  std::uint32_t history_depth_;
  sim::Simulator& sim_;
  sim::Tick lock_lease_;
  std::uint64_t lease_breaks_ = 0;
  std::uint64_t stale_applies_ = 0;
  Version clock_ = 0;  // newest commit timestamp applied here
  std::map<ObjectId, Entry> objects_;
};

// ------------------------------------------------------------- DecentTxn

sim::Task<Bytes> DecentTxn::read_version(ObjectId id, std::uint64_t snapshot,
                                         bool pin) {
  auto& c = cluster_;
  if (auto it = writeset_.find(id); it != writeset_.end()) {
    ++c.metrics_.local_read_hits;
    co_return it->second.data;
  }
  if (auto it = readset_.find(id); it != readset_.end()) {
    ++c.metrics_.local_read_hits;
    co_return it->second.data;
  }
  Writer w;
  w.u64(id);
  w.u64(snapshot);
  ++c.metrics_.remote_reads;
  // Fault-tolerant decentralized read: gather from the whole replica group
  // and take the newest fitting version (replicas can lag behind).
  const auto replicas = c.replicas_of(id);
  c.metrics_.read_messages += replicas.size();
  auto futures = c.endpoints_[node_]->multicast(
      replicas, kDecentRead, w.bytes(), c.cfg_.rpc_timeout);
  bool found = false;
  Version ts = 0;
  Bytes data;
  Version max_clock = 0;
  for (auto& f : futures) {
    auto res = co_await f;
    if (!res.ok) continue;
    Reader r(res.payload);
    bool has = r.boolean();
    Version vts = r.u64();
    Bytes vdata = r.blob();
    max_clock = std::max(max_clock, static_cast<Version>(r.u64()));
    if (!has) continue;
    if (!found || vts > ts) {
      found = true;
      ts = vts;
      data = std::move(vdata);
    }
  }
  if (!found) {
    // No live replica's history covers the snapshot point.
    ++c.metrics_.validation_failures;
    throw DecentAbort{"snapshot too old for history"};
  }
  // Snapshot-merge bookkeeping (see DecentConfig::snapshot_compute).
  if (c.cfg_.snapshot_compute > 0) {
    co_await c.sim_.delay(c.cfg_.snapshot_compute);
  }
  if (pin && snapshot_ == 0) {
    // Pin the snapshot to the freshest replica clock observed, not the
    // object's own version: a cold object's old version would otherwise
    // pin a point below hot objects' pruned histories ("snapshot too old"
    // livelock).
    snapshot_ = std::max<std::uint64_t>(ts, max_clock);
  }
  readset_[id] = ReadEntry{ts, data};
  co_return data;
}

sim::Task<Bytes> DecentTxn::read(ObjectId id) {
  co_return co_await read_version(id, snapshot_, /*pin=*/true);
}

sim::Task<Bytes> DecentTxn::read_for_write(ObjectId id) {
  // Write intents fetch the *latest* committed version: first-committer-wins
  // validation compares the base against the newest version, so reading an
  // old snapshot version would doom the update (commit-time-locking STMs,
  // DecentSTM included, acquire the freshest copy for writes).
  Bytes data = co_await read_version(id, /*snapshot=*/0, /*pin=*/false);
  writeset_[id] = WriteEntry{readset_.at(id).version, data};
  co_return data;
}

void DecentTxn::write(ObjectId id, Bytes data) {
  auto it = writeset_.find(id);
  QRDTM_CHECK_MSG(it != writeset_.end(),
                  "write() requires read_for_write() first");
  it->second.data = std::move(data);
}

// --------------------------------------------------------- DecentCluster

DecentCluster::DecentCluster(DecentConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  QRDTM_CHECK(cfg_.replication >= 1 && cfg_.replication <= cfg_.num_nodes);
  net_ = std::make_unique<net::Network>(
      sim_,
      std::make_unique<net::UniformLatency>(cfg_.link_latency,
                                            cfg_.link_jitter),
      rng_.next(), cfg_.service_time);
  for (std::uint32_t i = 0; i < cfg_.num_nodes; ++i) {
    endpoints_.push_back(std::make_unique<net::RpcEndpoint>(sim_, *net_));
    nodes_.push_back(std::make_unique<DecentNode>(
        *endpoints_.back(), cfg_.history_depth, cfg_.lock_lease));
  }
}

DecentCluster::~DecentCluster() = default;

bool DecentCluster::object_locked(ObjectId id) const {
  for (net::NodeId rep : replicas_of(id)) {
    if (nodes_[rep]->locked(id)) return true;
  }
  return false;
}

std::uint64_t DecentCluster::lock_lease_breaks() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) total += n->lease_breaks();
  return total;
}

std::vector<net::NodeId> DecentCluster::replicas_of(ObjectId id) const {
  std::vector<net::NodeId> out;
  std::uint64_t h = id * 0x9e3779b97f4a7c15ULL;
  const net::NodeId first =
      static_cast<net::NodeId>((h >> 32) % cfg_.num_nodes);
  for (std::uint32_t i = 0; i < cfg_.replication; ++i) {
    out.push_back((first + i) % cfg_.num_nodes);
  }
  return out;
}

ObjectId DecentCluster::seed_new_object(const Bytes& data) {
  ObjectId id = next_object_id_++;
  for (net::NodeId n : replicas_of(id)) {
    nodes_[n]->seed(id, data);
  }
  if (recorder_ != nullptr) recorder_->record_seed(id, 1, data);
  return id;
}

void DecentCluster::record_commit_history(const DecentTxn& txn,
                                          Version install_ts) {
  core::CommittedTxn rec;
  rec.txn = txn.id_;
  rec.node = txn.node_;
  rec.commit_tick = sim_.now();
  rec.snapshot = txn.snapshot_;
  for (const auto& [id, entry] : txn.readset_) {
    // A written object's read_for_write fetched the *newest* version (it may
    // exceed the pinned snapshot); its base is recorded with the write, so
    // listing it as a snapshot read would be a false positive.
    if (txn.writeset_.count(id) != 0) continue;
    rec.reads.push_back(core::HistoryRead{id, entry.version});
  }
  for (const auto& [id, entry] : txn.writeset_) {
    rec.writes.push_back(
        core::HistoryWrite{id, entry.base, install_ts, entry.data});
  }
  recorder_->record_commit(std::move(rec));
}

sim::Task<bool> DecentCluster::try_commit(DecentTxn& txn) {
  if (txn.writeset_.empty()) {
    // Read-only: every read was served as of the pinned snapshot point, and
    // versions valid at that point stay valid forever (commit timestamps
    // are monotone) -- the snapshot is consistent with no communication.
    ++metrics_.local_commits;
    if (recorder_ != nullptr) record_commit_history(txn, 0);
    co_return true;
  }
  auto* rpc = endpoints_[txn.node_].get();
  // Vote round: lock every replica of every written object.
  struct Voted {
    ObjectId id;
    net::NodeId replica;
  };
  std::vector<Voted> locked;
  bool ok = true;
  Version max_base = 0;
  for (const auto& [id, entry] : txn.writeset_) {
    max_base = std::max(max_base, entry.base);
    for (net::NodeId rep : replicas_of(id)) {
      Writer w;
      w.u64(txn.id_);
      w.u64(id);
      w.u64(entry.base);
      ++metrics_.commit_messages;
      auto res = co_await rpc->call(rep, kDecentVote, std::move(w).take(),
                                    cfg_.rpc_timeout);
      bool yes = false;
      if (res.ok) {
        Reader r(res.payload);
        yes = r.boolean();
      }
      if (!yes) {
        ok = false;
        break;
      }
      locked.push_back(Voted{id, rep});
    }
    if (!ok) break;
  }
  if (cfg_.snapshot_compute > 0) {
    co_await sim_.delay(cfg_.snapshot_compute);
  }

  if (!ok) {
    for (const Voted& v : locked) {
      Writer w;
      w.u64(txn.id_);
      w.u64(v.id);
      w.boolean(false);
      w.u64(0);
      w.blob({});
      ++metrics_.commit_messages;
      rpc->notify(v.replica, kDecentApply, std::move(w).take());
    }
    ++metrics_.vote_aborts;
    co_return false;
  }

  // Apply round.  Commit timestamps come from a monotone source; real
  // DecentSTM derives them from its decentralized consensus -- a global
  // counter is the simulation shortcut (documented in DESIGN.md).
  clock_ = std::max(clock_, static_cast<std::uint64_t>(max_base)) + 1;
  const Version ts = clock_;
  for (const auto& [id, entry] : txn.writeset_) {
    for (net::NodeId rep : replicas_of(id)) {
      Writer w;
      w.u64(txn.id_);
      w.u64(id);
      w.boolean(true);
      w.u64(ts);
      w.blob(entry.data);
      ++metrics_.commit_messages;
      rpc->notify(rep, kDecentApply, std::move(w).take());
    }
  }
  if (recorder_ != nullptr) record_commit_history(txn, ts);
  co_return true;
}

sim::Task<void> DecentCluster::run_transaction(net::NodeId node,
                                               DecentBody body) {
  co_await run_transaction_bounded(node, std::move(body), 0);
}

sim::Task<bool> DecentCluster::run_transaction_bounded(
    net::NodeId node, DecentBody body, std::uint32_t max_attempts) {
  const sim::Tick txn_start = sim_.now();
  std::uint32_t attempt = 0;
  for (;;) {
    DecentTxn txn(*this, node, next_txn_id_++);
    bool aborted = false;
    std::string reason = "vote failed";
    try {
      co_await body(txn);
      ++metrics_.commit_requests;
      if (co_await try_commit(txn)) {
        ++metrics_.commits;
        latency_.commit_latency.record(sim_.now() - txn_start);
        co_return true;
      }
      aborted = true;
    } catch (const DecentAbort& a) {
      reason = a.reason;
      aborted = true;
    }
    QRDTM_CHECK(aborted);
    ++metrics_.root_aborts;
    if (recorder_ != nullptr) {
      recorder_->record_abort(sim_.now(), txn.node_, txn.id_, reason);
    }
    ++attempt;
    if (max_attempts != 0 && attempt >= max_attempts) co_return false;
    const sim::Tick abort_tick = sim_.now();
    const sim::Tick wait = core::draw_backoff_wait(
        cfg_.backoff_base, cfg_.backoff_cap, attempt, rng_);
    latency_.backoff_wait.record(wait);
    if (wait > 0) co_await sim_.delay(wait);
    latency_.retry_gap.record(sim_.now() - abort_tick);
  }
}

void DecentCluster::spawn_client(net::NodeId node, DecentBody body) {
  sim_.spawn(run_transaction(node, std::move(body)));
}

void DecentCluster::spawn_loop_client(net::NodeId node, BodyFactory factory) {
  auto loop = [](DecentCluster* self, net::NodeId n,
                 BodyFactory f) -> sim::Task<void> {
    Rng rng = self->rng_.split(n + 1);
    while (!self->sim_.stopping()) {
      co_await self->run_transaction(n, f(rng));
    }
  };
  sim_.spawn(loop(this, node, std::move(factory)));
}

void DecentCluster::run_for(sim::Tick duration) {
  sim_.run_until(sim_.now() + duration);
}

void DecentCluster::run_to_completion() { sim_.run(); }

}  // namespace qrdtm::baselines
