// TFA baseline: Saad & Ravindran's Transaction Forwarding Algorithm, the
// protocol behind HyFlow (paper §VI-D comparison).
//
// Single-copy model: every object lives at exactly one home node
// (hash-placed); all communication is unicast RPC.  Concurrency control is
// the asynchronous-clock scheme:
//   * each node keeps a local clock, bumped by commits it hosts;
//   * a transaction starts at its node's clock value;
//   * reading an object whose home clock has advanced past the
//     transaction's clock triggers *forwarding*: the read-set is
//     revalidated at the owners and, if intact, the transaction's clock
//     jumps forward; otherwise it aborts;
//   * commit locks the write-set at the owners (vote), revalidates the
//     read-set, then writes back with a fresh timestamp.
//
// TFA cannot tolerate node failures (single copy), but in failure-free runs
// its unicast reads beat QR's multicast quorum reads -- the ordering the
// paper reports (HyFlow > QR-DTM > Decent-STM).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/metrics.h"
#include "core/trace.h"
#include "core/types.h"
#include "net/rpc.h"
#include "sim/task.h"

namespace qrdtm::core {
class HistoryRecorder;
}

namespace qrdtm::baselines {

using core::Bytes;
using core::ObjectId;
using core::TxnId;
using core::Version;

/// Control-flow exception: abort and retry.  `scope` identifies the
/// innermost closed-nested scope that must retry under N-TFA (0 = the whole
/// transaction; scopes are 1-based stack indices).
struct TfaAbort {
  std::string reason;
  std::size_t scope = 0;
};

class TfaNode;
class TfaCluster;
class TfaTxn;

using TfaBody = std::function<sim::Task<void>(TfaTxn&)>;

/// Client-side transaction context.  With TfaConfig::closed_nesting the
/// context implements N-TFA (Turcu, Ravindran & Saad: "On closed nesting in
/// distributed transactional memory"): `nested` opens a closed-nested
/// scope whose read/write sets merge into the parent on success and retry
/// alone when forwarding validation pins the conflict on them.
class TfaTxn {
 public:
  sim::Task<Bytes> read(ObjectId id);
  sim::Task<Bytes> read_for_write(ObjectId id);  // read + intend to write
  void write(ObjectId id, Bytes data);

  /// Closed-nested scope under N-TFA; inlined when closed nesting is off
  /// (flat TFA ignores inner transactions).
  sim::Task<void> nested(TfaBody body);

  TxnId id() const { return id_; }
  std::uint64_t clock() const { return clock_; }
  std::size_t depth() const { return scopes_.size(); }

 private:
  friend class TfaCluster;
  TfaTxn(TfaCluster& cluster, net::NodeId node, TxnId id,
         std::uint64_t start_clock);

  /// Transaction forwarding (the algorithm's namesake): revalidate every
  /// scope's read-set at the owners and advance the clock, or abort the
  /// outermost scope owning an invalid entry.
  sim::Task<void> forward(std::uint64_t to_clock);

  struct ReadEntry {
    Version version;
    Bytes data;
  };
  struct WriteEntry {
    Version base;
    Bytes data;
    bool dirty = false;
  };
  /// One nesting level: scopes_[0] is the root; nested() pushes deeper
  /// levels and merges them down on success.
  struct Scope {
    std::map<ObjectId, ReadEntry> readset;
    std::map<ObjectId, WriteEntry> writeset;
  };

  const ReadEntry* find_read(ObjectId id) const;
  const WriteEntry* find_write(ObjectId id) const;
  Scope& top() { return scopes_.back(); }
  /// Union views used at commit (after merges only the root scope remains).
  const std::map<ObjectId, ReadEntry>& root_readset() const {
    return scopes_.front().readset;
  }
  const std::map<ObjectId, WriteEntry>& root_writeset() const {
    return scopes_.front().writeset;
  }

  TfaCluster& cluster_;
  net::NodeId node_;
  TxnId id_;
  std::uint64_t clock_;
  std::vector<Scope> scopes_;
};

struct TfaConfig {
  std::uint32_t num_nodes = 13;
  std::uint64_t seed = 1;
  /// Unicast one-way link latency (HyFlow's remote requests averaged ~5 ms
  /// round trip on the paper's testbed).
  sim::Tick link_latency = sim::msec(2);
  sim::Tick link_jitter = sim::msec(1);
  sim::Tick service_time = sim::usec(60);
  sim::Tick rpc_timeout = sim::msec(500);
  sim::Tick backoff_base = sim::msec(1);
  sim::Tick backoff_cap = sim::msec(32);
  /// N-TFA: closed-nested scopes with partial abort (off = flat TFA, the
  /// HyFlow baseline the paper compares against).
  bool closed_nesting = false;
  /// Coordinator-liveness lease on home-node locks: a lock outstanding this
  /// long is presumed orphaned (its coordinator died between lock and
  /// writeback/unlock) and is shed on the next conflicting request.  Far
  /// above any legitimate lock->writeback gap, so failure-free runs never
  /// trip it.  0 disables shedding.
  sim::Tick lock_lease = sim::sec(5);
};

/// One simulated TFA deployment (simulator + network + home nodes).
class TfaCluster {
 public:
  explicit TfaCluster(TfaConfig cfg);
  ~TfaCluster();

  TfaCluster(const TfaCluster&) = delete;
  TfaCluster& operator=(const TfaCluster&) = delete;

  /// Install an object at its home node (setup only).
  ObjectId seed_new_object(const Bytes& data);

  void spawn_client(net::NodeId node, TfaBody body);
  using BodyFactory = std::function<TfaBody(Rng&)>;
  void spawn_loop_client(net::NodeId node, BodyFactory factory);

  /// Run one transaction, giving up after `max_attempts` aborts (0 =
  /// unlimited).  Returns true on commit.  Chaos runs still want the bound:
  /// a lock orphaned by a dropped response is only shed after
  /// TfaConfig::lock_lease, and a victim stuck behind it would otherwise
  /// spin in retries for the whole lease window.
  sim::Task<bool> run_transaction_bounded(net::NodeId node, TfaBody body,
                                          std::uint32_t max_attempts);

  /// Record commits/aborts into `rec` (nullptr = off); attach before
  /// seeding.
  void set_history_recorder(core::HistoryRecorder* rec) { recorder_ = rec; }

  void run_for(sim::Tick duration);
  void run_to_completion();

  core::Metrics& metrics() { return metrics_; }
  /// Cluster-wide latency histograms (commit latency, backoff waits, retry
  /// gaps -- TFA reads are unicast, so read_rtt stays empty).
  const core::LatencyMetrics& latency() const { return latency_; }
  net::Network& network() { return *net_; }
  sim::Simulator& simulator() { return sim_; }
  sim::Tick duration() const { return sim_.now(); }
  std::uint32_t num_nodes() const { return cfg_.num_nodes; }
  net::NodeId home_of(ObjectId id) const;

  /// True while `id`'s home node holds a transaction lock on it (test
  /// observability for the lease-shedding path).
  bool object_locked(ObjectId id) const;
  /// Total locks shed by the coordinator-liveness lease, across all nodes.
  std::uint64_t lock_lease_breaks() const;

 private:
  friend class TfaTxn;

  sim::Task<void> run_transaction(net::NodeId node, TfaBody body);
  sim::Task<bool> try_commit(TfaTxn& txn);
  void record_commit_history(const TfaTxn& txn, Version commit_ts);

  TfaConfig cfg_;
  sim::Simulator sim_;
  std::unique_ptr<net::Network> net_;
  std::vector<std::unique_ptr<net::RpcEndpoint>> endpoints_;
  std::vector<std::unique_ptr<TfaNode>> nodes_;
  core::Metrics metrics_;
  core::LatencyMetrics latency_;
  core::HistoryRecorder* recorder_ = nullptr;
  Rng rng_;
  TxnId next_txn_id_ = 1;
  ObjectId next_object_id_ = 1;
};

}  // namespace qrdtm::baselines
