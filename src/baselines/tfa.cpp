#include "baselines/tfa.h"

#include <algorithm>

#include "common/check.h"
#include "common/serde.h"
#include "core/backoff.h"
#include "core/history.h"
#include "net/latency.h"

namespace qrdtm::baselines {

namespace {

constexpr net::MsgKind kTfaRead = 0x0201;
constexpr net::MsgKind kTfaValidate = 0x0202;
constexpr net::MsgKind kTfaLock = 0x0203;
constexpr net::MsgKind kTfaUnlock = 0x0204;     // one-way
constexpr net::MsgKind kTfaWriteback = 0x0205;  // one-way

struct ObjectState {
  Version version = 0;
  Bytes data;
  TxnId locked_by = 0;
  sim::Tick locked_at = 0;
};

}  // namespace

/// Home-node server: owns the single authoritative copy of its objects and
/// the node's TFA clock.
///
/// Locks carry a coordinator-liveness lease: a lock held longer than
/// TfaConfig::lock_lease means the coordinator died mid-commit (its unlock
/// or writeback never arrived), so the home node sheds it on the next
/// conflicting lock/validate instead of leaving the object unwritable
/// forever.  A writeback whose transaction no longer holds the lock is
/// dropped -- the lease already presumed that coordinator dead, and
/// applying its write over a successor's could roll the version backwards.
class TfaNode {
 public:
  TfaNode(net::RpcEndpoint& rpc, sim::Tick lock_lease)
      : id_(rpc.id()), sim_(rpc.simulator()), lock_lease_(lock_lease) {
    rpc.register_service(kTfaRead, [this](net::NodeId, const Bytes& b) {
      return handle_read(b);
    });
    rpc.register_service(kTfaValidate, [this](net::NodeId, const Bytes& b) {
      return handle_validate(b);
    });
    rpc.register_service(kTfaLock, [this](net::NodeId, const Bytes& b) {
      return handle_lock(b);
    });
    rpc.register_service(
        kTfaUnlock, [this](net::NodeId, const Bytes& b) -> std::optional<Bytes> {
          handle_unlock(b);
          return std::nullopt;
        });
    rpc.register_service(
        kTfaWriteback,
        [this](net::NodeId, const Bytes& b) -> std::optional<Bytes> {
          handle_writeback(b);
          return std::nullopt;
        });
  }

  void seed(ObjectId id, const Bytes& data) {
    objects_[id] = ObjectState{1, data, 0, 0};
  }

  std::uint64_t clock() const { return clock_; }
  void advance_clock(std::uint64_t to) { clock_ = std::max(clock_, to); }

  bool locked(ObjectId id) const {
    auto it = objects_.find(id);
    return it != objects_.end() && it->second.locked_by != 0;
  }
  std::uint64_t lease_breaks() const { return lease_breaks_; }
  std::uint64_t stale_writebacks() const { return stale_writebacks_; }

 private:
  /// Shed a lock whose holder's commit is overdue by the whole lease.
  void shed_stale_lock(ObjectState& s) {
    if (lock_lease_ == 0 || s.locked_by == 0) return;
    if (sim_.now() < s.locked_at + lock_lease_) return;
    s.locked_by = 0;
    ++lease_breaks_;
  }

  std::optional<Bytes> handle_read(const Bytes& b) {
    Reader r(b);
    ObjectId id = r.u64();
    Writer w;
    auto it = objects_.find(id);
    if (it == objects_.end()) {
      w.boolean(false);
      w.u64(0);
      w.blob({});
    } else {
      w.boolean(true);
      w.u64(it->second.version);
      w.blob(it->second.data);
    }
    w.u64(clock_);
    return std::move(w).take();
  }

  std::optional<Bytes> handle_validate(const Bytes& b) {
    Reader r(b);
    ObjectId id = r.u64();
    Version version = r.u64();
    TxnId txn = r.u64();
    bool ok = false;
    auto it = objects_.find(id);
    if (it != objects_.end()) {
      shed_stale_lock(it->second);
      ok = it->second.version == version &&
           (it->second.locked_by == 0 || it->second.locked_by == txn);
    }
    Writer w;
    w.boolean(ok);
    return std::move(w).take();
  }

  std::optional<Bytes> handle_lock(const Bytes& b) {
    Reader r(b);
    ObjectId id = r.u64();
    Version base = r.u64();
    TxnId txn = r.u64();
    bool ok = false;
    auto it = objects_.find(id);
    if (it != objects_.end()) shed_stale_lock(it->second);
    if (it == objects_.end() && base == 0) {
      // First write to a transaction-created object: claim it.
      objects_[id] = ObjectState{0, {}, txn, sim_.now()};
      ok = true;
    } else if (it != objects_.end() && it->second.version == base &&
               (it->second.locked_by == 0 || it->second.locked_by == txn)) {
      it->second.locked_by = txn;
      it->second.locked_at = sim_.now();
      ok = true;
    }
    Writer w;
    w.boolean(ok);
    return std::move(w).take();
  }

  void handle_unlock(const Bytes& b) {
    Reader r(b);
    ObjectId id = r.u64();
    TxnId txn = r.u64();
    auto it = objects_.find(id);
    if (it != objects_.end() && it->second.locked_by == txn) {
      it->second.locked_by = 0;
    }
  }

  void handle_writeback(const Bytes& b) {
    Reader r(b);
    ObjectId id = r.u64();
    Version version = r.u64();
    Bytes data = r.blob();
    TxnId txn = r.u64();
    ObjectState& s = objects_[id];
    if (s.locked_by != txn) {
      // The lease shed this writer's lock (and possibly granted it to a
      // successor): its writeback is stale and must not clobber state it
      // no longer owns.
      ++stale_writebacks_;
      return;
    }
    s.version = version;
    s.data = std::move(data);
    s.locked_by = 0;
    clock_ = std::max(clock_, version);
  }

  net::NodeId id_;
  sim::Simulator& sim_;
  sim::Tick lock_lease_;
  std::uint64_t clock_ = 0;
  std::uint64_t lease_breaks_ = 0;
  std::uint64_t stale_writebacks_ = 0;
  std::map<ObjectId, ObjectState> objects_;
};

// --------------------------------------------------------------- TfaTxn

TfaTxn::TfaTxn(TfaCluster& cluster, net::NodeId node, TxnId id,
               std::uint64_t start_clock)
    : cluster_(cluster), node_(node), id_(id), clock_(start_clock) {
  scopes_.emplace_back();  // the root scope
}

const TfaTxn::ReadEntry* TfaTxn::find_read(ObjectId id) const {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    if (auto e = it->readset.find(id); e != it->readset.end()) {
      return &e->second;
    }
  }
  return nullptr;
}

const TfaTxn::WriteEntry* TfaTxn::find_write(ObjectId id) const {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    if (auto e = it->writeset.find(id); e != it->writeset.end()) {
      return &e->second;
    }
  }
  return nullptr;
}

sim::Task<void> TfaTxn::forward(std::uint64_t to_clock) {
  // Revalidate every scope's read-set at the owners; all intact -> jump the
  // transaction clock forward.  Under N-TFA a failure aborts the OUTERMOST
  // scope owning an invalid entry (everything since its start is discarded,
  // like abortClosed in QR-CN).
  auto& c = cluster_;
  std::size_t outermost_invalid = scopes_.size();  // sentinel: none
  for (std::size_t si = 0; si < scopes_.size(); ++si) {
    for (const auto& [id, entry] : scopes_[si].readset) {
      Writer w;
      w.u64(id);
      w.u64(entry.version);
      w.u64(id_);
      ++c.metrics_.read_messages;
      auto res = co_await c.endpoints_[node_]->call(
          c.home_of(id), kTfaValidate, std::move(w).take(),
          c.cfg_.rpc_timeout);
      bool ok = false;
      if (res.ok) {
        Reader r(res.payload);
        ok = r.boolean();
      }
      if (!ok) {
        ++c.metrics_.validation_failures;
        outermost_invalid = std::min(outermost_invalid, si);
        break;  // this scope is doomed; no need to validate more of it
      }
    }
    if (outermost_invalid == 0) break;  // whole transaction doomed
  }
  if (outermost_invalid < scopes_.size()) {
    throw TfaAbort{"forwarding validation failed", outermost_invalid};
  }
  clock_ = std::max(clock_, to_clock);
}

sim::Task<Bytes> TfaTxn::read(ObjectId id) {
  auto& c = cluster_;
  if (const WriteEntry* we = find_write(id)) {
    ++c.metrics_.local_read_hits;
    co_return we->data;
  }
  if (const ReadEntry* re = find_read(id)) {
    ++c.metrics_.local_read_hits;
    co_return re->data;
  }
  Writer w;
  w.u64(id);
  ++c.metrics_.remote_reads;
  ++c.metrics_.read_messages;
  auto res = co_await c.endpoints_[node_]->call(
      c.home_of(id), kTfaRead, std::move(w).take(), c.cfg_.rpc_timeout);
  if (!res.ok) throw TfaAbort{"read timeout", scopes_.size() - 1};
  Reader r(res.payload);
  bool found = r.boolean();
  Version version = r.u64();
  Bytes data = r.blob();
  std::uint64_t home_clock = r.u64();
  if (!found) throw TfaAbort{"object missing", 0};

  if (home_clock > clock_) {
    co_await forward(home_clock);
  }
  top().readset[id] = ReadEntry{version, data};
  co_return data;
}

sim::Task<Bytes> TfaTxn::read_for_write(ObjectId id) {
  Bytes data = co_await read(id);
  // Copy-on-write into the current scope: an aborted scope must be able to
  // discard its buffered writes without touching ancestors.
  if (auto it = top().writeset.find(id); it == top().writeset.end()) {
    Version base;
    if (const WriteEntry* ancestor = find_write(id)) {
      base = ancestor->base;  // keep the original acquisition base
    } else {
      const ReadEntry* re = find_read(id);
      QRDTM_CHECK(re != nullptr);
      base = re->version;
    }
    top().writeset[id] = WriteEntry{base, data, false};
  }
  co_return data;
}

void TfaTxn::write(ObjectId id, Bytes data) {
  auto it = top().writeset.find(id);
  QRDTM_CHECK_MSG(it != top().writeset.end(),
                  "write() requires read_for_write() first (in this scope)");
  it->second.data = std::move(data);
  it->second.dirty = true;
}

sim::Task<void> TfaTxn::nested(TfaBody body) {
  if (!cluster_.cfg_.closed_nesting) {
    co_await body(*this);  // flat TFA ignores inner transactions
    co_return;
  }
  const std::size_t my_index = scopes_.size();
  for (;;) {
    scopes_.emplace_back();
    bool retry = false;
    bool propagate = false;
    TfaAbort saved;
    try {
      co_await body(*this);
    } catch (TfaAbort& a) {
      scopes_.pop_back();  // discard this scope's sets
      if (a.scope == my_index) {
        retry = true;
      } else {
        saved = a;
        propagate = true;
      }
    }
    if (propagate) throw saved;
    if (retry) {
      ++cluster_.metrics_.ct_aborts;
      continue;
    }
    // commitCT: merge this scope into its parent (purely local).
    Scope child = std::move(scopes_.back());
    scopes_.pop_back();
    Scope& parent = scopes_.back();
    for (auto& [id, e] : child.readset) parent.readset[id] = std::move(e);
    for (auto& [id, e] : child.writeset) parent.writeset[id] = std::move(e);
    co_return;
  }
}

// ------------------------------------------------------------ TfaCluster

TfaCluster::TfaCluster(TfaConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  net_ = std::make_unique<net::Network>(
      sim_,
      std::make_unique<net::UniformLatency>(cfg_.link_latency,
                                            cfg_.link_jitter),
      rng_.next(), cfg_.service_time);
  for (std::uint32_t i = 0; i < cfg_.num_nodes; ++i) {
    endpoints_.push_back(std::make_unique<net::RpcEndpoint>(sim_, *net_));
    nodes_.push_back(
        std::make_unique<TfaNode>(*endpoints_.back(), cfg_.lock_lease));
  }
}

bool TfaCluster::object_locked(ObjectId id) const {
  return nodes_[home_of(id)]->locked(id);
}

std::uint64_t TfaCluster::lock_lease_breaks() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) total += n->lease_breaks();
  return total;
}

TfaCluster::~TfaCluster() = default;

net::NodeId TfaCluster::home_of(ObjectId id) const {
  return static_cast<net::NodeId>((id * 0x9e3779b97f4a7c15ULL >> 32) %
                                  cfg_.num_nodes);
}

ObjectId TfaCluster::seed_new_object(const Bytes& data) {
  ObjectId id = next_object_id_++;
  nodes_[home_of(id)]->seed(id, data);
  if (recorder_ != nullptr) recorder_->record_seed(id, 1, data);
  return id;
}

void TfaCluster::record_commit_history(const TfaTxn& txn, Version commit_ts) {
  core::CommittedTxn rec;
  rec.txn = txn.id_;
  rec.node = txn.node_;
  rec.commit_tick = sim_.now();
  rec.snapshot = 0;  // TFA is checked at the serializable level
  for (const auto& [id, entry] : txn.root_readset()) {
    // Written objects' reads are covered by their write base.
    if (txn.root_writeset().contains(id)) continue;
    rec.reads.push_back(core::HistoryRead{id, entry.version});
  }
  for (const auto& [id, entry] : txn.root_writeset()) {
    rec.writes.push_back(
        core::HistoryWrite{id, entry.base, commit_ts, entry.data});
  }
  recorder_->record_commit(std::move(rec));
}

sim::Task<bool> TfaCluster::try_commit(TfaTxn& txn) {
  QRDTM_CHECK_MSG(txn.scopes_.size() == 1,
                  "commit with unmerged nested scopes");
  const auto& readset = txn.root_readset();
  const auto& writeset = txn.root_writeset();
  if (writeset.empty()) {
    // Read-only: every read was (re)validated at its forwarding points;
    // commit needs no communication.
    ++metrics_.local_commits;
    if (recorder_ != nullptr) record_commit_history(txn, 0);
    co_return true;
  }
  auto* rpc = endpoints_[txn.node_].get();
  // Lock phase, in id order (global order prevents lock-order deadlock).
  std::vector<ObjectId> locked;
  bool ok = true;
  for (const auto& [id, entry] : writeset) {
    Writer w;
    w.u64(id);
    w.u64(entry.base);
    w.u64(txn.id_);
    ++metrics_.commit_messages;
    auto res = co_await rpc->call(home_of(id), kTfaLock, std::move(w).take(),
                                  cfg_.rpc_timeout);
    if (!res.ok) {
      ok = false;
      break;
    }
    Reader r(res.payload);
    if (!r.boolean()) {
      ok = false;
      break;
    }
    locked.push_back(id);
  }
  // Read-set validation (entries not being written).
  if (ok) {
    for (const auto& [id, entry] : readset) {
      if (writeset.contains(id)) continue;
      Writer w;
      w.u64(id);
      w.u64(entry.version);
      w.u64(txn.id_);
      ++metrics_.commit_messages;
      auto res = co_await rpc->call(home_of(id), kTfaValidate,
                                    std::move(w).take(), cfg_.rpc_timeout);
      if (!res.ok) {
        ok = false;
        break;
      }
      Reader r(res.payload);
      if (!r.boolean()) {
        ok = false;
        break;
      }
    }
  }
  if (!ok) {
    for (ObjectId id : locked) {
      Writer w;
      w.u64(id);
      w.u64(txn.id_);
      ++metrics_.commit_messages;
      rpc->notify(home_of(id), kTfaUnlock, std::move(w).take());
    }
    ++metrics_.vote_aborts;
    co_return false;
  }
  // Write-back with a fresh timestamp.  The timestamp must exceed every
  // written object's base version, or a later reader could match the old
  // version number against new data (ABA lost update).
  std::uint64_t commit_ts = txn.clock_;
  for (const auto& [id, entry] : writeset) {
    commit_ts = std::max(commit_ts, static_cast<std::uint64_t>(entry.base));
  }
  ++commit_ts;
  for (const auto& [id, entry] : writeset) {
    Writer w;
    w.u64(id);
    w.u64(commit_ts);
    w.blob(entry.data);
    w.u64(txn.id_);
    ++metrics_.commit_messages;
    rpc->notify(home_of(id), kTfaWriteback, std::move(w).take());
  }
  nodes_[txn.node_]->advance_clock(commit_ts);
  if (recorder_ != nullptr) record_commit_history(txn, commit_ts);
  co_return true;
}

sim::Task<void> TfaCluster::run_transaction(net::NodeId node, TfaBody body) {
  co_await run_transaction_bounded(node, std::move(body), 0);
}

sim::Task<bool> TfaCluster::run_transaction_bounded(net::NodeId node,
                                                    TfaBody body,
                                                    std::uint32_t max_attempts) {
  const sim::Tick txn_start = sim_.now();
  std::uint32_t attempt = 0;
  for (;;) {
    TfaTxn txn(*this, node, next_txn_id_++, nodes_[node]->clock());
    bool aborted = false;
    std::string reason = "commit validation failed";
    try {
      co_await body(txn);
      ++metrics_.commit_requests;
      if (co_await try_commit(txn)) {
        ++metrics_.commits;
        latency_.commit_latency.record(sim_.now() - txn_start);
        co_return true;
      }
      aborted = true;
    } catch (const TfaAbort& a) {
      reason = a.reason;
      aborted = true;
    }
    QRDTM_CHECK(aborted);
    ++metrics_.root_aborts;
    if (recorder_ != nullptr) {
      recorder_->record_abort(sim_.now(), txn.node_, txn.id_, reason);
    }
    ++attempt;
    if (max_attempts != 0 && attempt >= max_attempts) co_return false;
    const sim::Tick abort_tick = sim_.now();
    const sim::Tick wait = core::draw_backoff_wait(
        cfg_.backoff_base, cfg_.backoff_cap, attempt, rng_);
    latency_.backoff_wait.record(wait);
    if (wait > 0) co_await sim_.delay(wait);
    latency_.retry_gap.record(sim_.now() - abort_tick);
  }
}

void TfaCluster::spawn_client(net::NodeId node, TfaBody body) {
  sim_.spawn(run_transaction(node, std::move(body)));
}

void TfaCluster::spawn_loop_client(net::NodeId node, BodyFactory factory) {
  auto loop = [](TfaCluster* self, net::NodeId n,
                 BodyFactory f) -> sim::Task<void> {
    Rng rng = self->rng_.split(n + 1);
    while (!self->sim_.stopping()) {
      co_await self->run_transaction(n, f(rng));
    }
  };
  sim_.spawn(loop(this, node, std::move(factory)));
}

void TfaCluster::run_for(sim::Tick duration) {
  sim_.run_until(sim_.now() + duration);
}

void TfaCluster::run_to_completion() { sim_.run(); }

}  // namespace qrdtm::baselines
