// DecentSTM baseline: a decentralized multi-version snapshot STM after
// Bieniusa & Fuhrmann (paper §VI-D comparison).
//
// Model (see DESIGN.md substitutions):
//   * every object is replicated on a fixed replica group (R = 3,
//     hash-placed) and each replica keeps a bounded *version history*;
//   * a transaction's first read pins its snapshot point (the timestamp of
//     the newest version it saw); every later read (unicast to the primary
//     replica) returns the version valid *at that point*, served from the
//     history -- conflicting transactions proceed as long as a consistent
//     snapshot exists, and readers never abort writers;
//   * versions valid at the snapshot point stay valid forever (commit
//     timestamps are monotone), so read-only transactions commit with no
//     communication;
//   * update transactions run first-committer-wins write-write validation:
//     a vote round locks the write-set on every replica of each written
//     object, then an apply round appends the new versions;
//   * the snapshot algorithm's bookkeeping (version-history scans, snapshot
//     merging) is charged as a fixed per-operation compute cost,
//     `snapshot_compute`, calibrated against the paper's observation that
//     DecentSTM's snapshot isolation "has higher overhead than QR-DTM".
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/metrics.h"
#include "core/trace.h"
#include "core/types.h"
#include "net/rpc.h"
#include "sim/task.h"

namespace qrdtm::core {
class HistoryRecorder;
}

namespace qrdtm::baselines {

using core::Bytes;
using core::ObjectId;
using core::TxnId;
using core::Version;

struct DecentAbort {
  std::string reason;
};

class DecentNode;
class DecentCluster;

class DecentTxn {
 public:
  sim::Task<Bytes> read(ObjectId id);
  sim::Task<Bytes> read_for_write(ObjectId id);
  void write(ObjectId id, Bytes data);

  /// Snapshot point pinned by the first read (0 = not yet pinned).
  std::uint64_t snapshot_ts() const { return snapshot_; }

 private:
  friend class DecentCluster;
  DecentTxn(DecentCluster& cluster, net::NodeId node, TxnId id)
      : cluster_(cluster), node_(node), id_(id) {}

  /// Fetch the newest version with ts <= snapshot (0 = newest overall);
  /// optionally pin the transaction snapshot to the returned version.
  sim::Task<Bytes> read_version(ObjectId id, std::uint64_t snapshot, bool pin);

  DecentCluster& cluster_;
  net::NodeId node_;
  TxnId id_;
  std::uint64_t snapshot_ = 0;
  struct ReadEntry {
    Version version;
    Bytes data;
  };
  struct WriteEntry {
    Version base;
    Bytes data;
  };
  std::map<ObjectId, ReadEntry> readset_;
  std::map<ObjectId, WriteEntry> writeset_;
};

using DecentBody = std::function<sim::Task<void>(DecentTxn&)>;

struct DecentConfig {
  std::uint32_t num_nodes = 13;
  std::uint32_t replication = 3;
  std::uint32_t history_depth = 8;
  std::uint64_t seed = 1;
  /// DecentSTM is a replicated DTM: like QR-DTM it pays multicast-class
  /// group-communication latency (the paper's ~5 ms unicast advantage is
  /// HyFlow's single-copy model only).
  sim::Tick link_latency = sim::msec(12);
  sim::Tick link_jitter = sim::msec(5);
  sim::Tick service_time = sim::usec(60);
  sim::Tick rpc_timeout = sim::msec(500);
  /// Snapshot-algorithm bookkeeping charged per remote operation.
  sim::Tick snapshot_compute = sim::msec(15);
  sim::Tick backoff_base = sim::msec(1);
  sim::Tick backoff_cap = sim::msec(32);
  /// Coordinator-liveness lease on replica-side write locks: a lock
  /// outstanding this long is presumed orphaned (its coordinator died
  /// between vote and apply) and is shed on the next conflicting vote.  Far
  /// above any legitimate vote->apply gap, so failure-free runs never trip
  /// it.  0 disables shedding.
  sim::Tick lock_lease = sim::sec(5);
};

class DecentCluster {
 public:
  explicit DecentCluster(DecentConfig cfg);
  ~DecentCluster();

  DecentCluster(const DecentCluster&) = delete;
  DecentCluster& operator=(const DecentCluster&) = delete;

  ObjectId seed_new_object(const Bytes& data);

  void spawn_client(net::NodeId node, DecentBody body);
  using BodyFactory = std::function<DecentBody(Rng&)>;
  void spawn_loop_client(net::NodeId node, BodyFactory factory);

  /// Run one transaction, giving up after `max_attempts` aborts (0 =
  /// unlimited).  Returns true on commit.  Chaos runs still want the bound:
  /// a lock orphaned by a dropped vote response is only shed after
  /// DecentConfig::lock_lease, and a victim stuck behind it would otherwise
  /// spin in retries for the whole lease window.
  sim::Task<bool> run_transaction_bounded(net::NodeId node, DecentBody body,
                                          std::uint32_t max_attempts);

  /// Record commits/aborts into `rec` (nullptr = off); attach before
  /// seeding.
  void set_history_recorder(core::HistoryRecorder* rec) { recorder_ = rec; }

  void run_for(sim::Tick duration);
  void run_to_completion();

  core::Metrics& metrics() { return metrics_; }
  /// Cluster-wide latency histograms (commit latency, backoff waits, retry
  /// gaps; reads are unicast to a primary, so read_rtt stays empty).
  const core::LatencyMetrics& latency() const { return latency_; }
  net::Network& network() { return *net_; }
  sim::Simulator& simulator() { return sim_; }
  sim::Tick duration() const { return sim_.now(); }
  std::uint32_t num_nodes() const { return cfg_.num_nodes; }

  /// Replica group of an object (first member is the read primary).
  std::vector<net::NodeId> replicas_of(ObjectId id) const;

  /// True while any replica of `id` holds a transaction lock on it (test
  /// observability for the lease-shedding path).
  bool object_locked(ObjectId id) const;
  /// Total locks shed by the coordinator-liveness lease, across all nodes.
  std::uint64_t lock_lease_breaks() const;

 private:
  friend class DecentTxn;

  sim::Task<void> run_transaction(net::NodeId node, DecentBody body);
  sim::Task<bool> try_commit(DecentTxn& txn);
  void record_commit_history(const DecentTxn& txn, Version install_ts);

  DecentConfig cfg_;
  sim::Simulator sim_;
  std::unique_ptr<net::Network> net_;
  std::vector<std::unique_ptr<net::RpcEndpoint>> endpoints_;
  std::vector<std::unique_ptr<DecentNode>> nodes_;
  core::Metrics metrics_;
  core::LatencyMetrics latency_;
  core::HistoryRecorder* recorder_ = nullptr;
  Rng rng_;
  TxnId next_txn_id_ = 1;
  ObjectId next_object_id_ = 1;
  std::uint64_t clock_ = 1;  // global timestamp source for commit ids
};

}  // namespace qrdtm::baselines
