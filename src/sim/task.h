// sim::Task<T> -- the coroutine type for simulated processes.
//
// A Task is lazy: nothing runs until it is co_awaited (or handed to
// Simulator::spawn).  When a child task completes, control transfers back to
// the awaiting coroutine via symmetric transfer, so arbitrarily deep
// co_await chains use O(1) native stack.  Exceptions thrown inside a task
// propagate to the awaiter at the co_await expression -- qrdtm's transaction
// runtimes rely on this to unwind nested transaction scopes exactly like the
// paper's Java implementation unwinds with exceptions.
//
// Tasks are move-only owners of their coroutine frame (RAII: the frame is
// destroyed when the Task handle dies, unless the frame already completed
// and was detached by Simulator::spawn's driver).
#pragma once

#include <coroutine>
#include <exception>
#include <utility>
#include <variant>

#include "common/check.h"

namespace qrdtm::sim {

template <class T>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;  // who co_awaits us (may be null)
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <class P>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<P> h) noexcept {
      // Resume the awaiter (symmetric transfer); if nobody awaits us we are
      // a detached driver and just stop here (the driver frees itself).
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace detail

/// Coroutine task producing a value of type T (or void).
template <class T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::variant<std::monostate, T> value;

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <class U>
    void return_value(U&& v) {
      value.template emplace<1>(std::forward<U>(v));
    }
  };

  Task() = default;
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return h_ != nullptr; }

  /// Awaiting a task starts it and suspends the awaiter until completion.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        h.promise().continuation = awaiting;
        return h;  // start the child
      }
      T await_resume() {
        if (h.promise().exception) {
          std::rethrow_exception(h.promise().exception);
        }
        return std::move(std::get<1>(h.promise().value));
      }
    };
    QRDTM_CHECK_MSG(h_ != nullptr, "co_await on empty Task");
    return Awaiter{h_};
  }

  /// Internal: release ownership of the frame (used by Simulator::spawn).
  std::coroutine_handle<promise_type> release() {
    return std::exchange(h_, nullptr);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> h_{};
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return h_ != nullptr; }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        h.promise().continuation = awaiting;
        return h;
      }
      void await_resume() {
        if (h.promise().exception) {
          std::rethrow_exception(h.promise().exception);
        }
      }
    };
    QRDTM_CHECK_MSG(h_ != nullptr, "co_await on empty Task");
    return Awaiter{h_};
  }

  std::coroutine_handle<promise_type> release() {
    return std::exchange(h_, nullptr);
  }

 private:
  explicit Task(std::coroutine_handle<promise_type> h) : h_(h) {}
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> h_{};
};

}  // namespace qrdtm::sim
