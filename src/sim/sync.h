// Synchronisation primitives for simulated processes.
//
//   * Promise<T>/Future<T> -- one-shot value channel.  The consumer
//     co_awaits the Future; the producer (usually a network-delivery event)
//     fulfils the Promise.  Resumption is routed through the event queue at
//     the current tick so wakeup ordering is deterministic and recursion
//     depth stays bounded.
//   * Mailbox<T>  -- unbounded FIFO with awaitable receive.
//   * WaitGroup   -- await completion of N producers (quorum gather).
//
// All of these are single-threaded (one Simulator); they synchronise
// *simulated* concurrency, not OS threads.
#pragma once

#include <coroutine>
#include <deque>
#include <memory>
#include <optional>
#include <utility>

#include "common/check.h"
#include "common/pool.h"
#include "sim/simulator.h"

namespace qrdtm::sim {

template <class T>
class Future;

namespace detail {

template <class T>
struct SharedState {
  Simulator* sim;
  std::optional<T> value;
  std::coroutine_handle<> waiter;
  bool consumed = false;

  void fulfil(T v) {
    QRDTM_CHECK_MSG(!value.has_value(), "promise fulfilled twice");
    value = std::move(v);
    if (waiter) {
      auto h = std::exchange(waiter, nullptr);
      sim->schedule_after(0, [h] { h.resume(); });
    }
  }
};

}  // namespace detail

template <class T>
class Promise {
 public:
  // allocate_shared with a PoolAllocator: the control block + state (one
  // per RPC on the hot path) is recycled through a free list instead of
  // hitting the heap per call.
  explicit Promise(Simulator& sim)
      : state_(std::allocate_shared<detail::SharedState<T>>(
            PoolAllocator<detail::SharedState<T>>{})) {
    state_->sim = &sim;
  }

  Future<T> future() const { return Future<T>(state_); }

  void set(T value) { state_->fulfil(std::move(value)); }

  /// Fulfil unless already fulfilled; returns whether this call won.  Used
  /// to race a response against its timeout.
  bool try_set(T value) {
    if (state_->value.has_value()) return false;
    state_->fulfil(std::move(value));
    return true;
  }

  bool fulfilled() const { return state_->value.has_value(); }

 private:
  std::shared_ptr<detail::SharedState<T>> state_;
};

template <class T>
class Future {
 public:
  Future() = default;

  bool valid() const { return state_ != nullptr; }
  bool ready() const { return state_ && state_->value.has_value(); }

  auto operator co_await() {
    struct Awaiter {
      std::shared_ptr<detail::SharedState<T>> s;
      bool await_ready() const { return s->value.has_value(); }
      void await_suspend(std::coroutine_handle<> h) {
        QRDTM_CHECK_MSG(!s->waiter, "future awaited by two processes");
        s->waiter = h;
      }
      T await_resume() {
        QRDTM_CHECK_MSG(!s->consumed, "future consumed twice");
        s->consumed = true;
        return std::move(*s->value);
      }
    };
    QRDTM_CHECK_MSG(state_ != nullptr, "await on empty future");
    return Awaiter{state_};
  }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<detail::SharedState<T>> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::SharedState<T>> state_;
};

/// Unbounded FIFO channel with awaitable receive (single consumer at a time).
template <class T>
class Mailbox {
 public:
  explicit Mailbox(Simulator& sim) : sim_(&sim) {}

  void push(T v) {
    queue_.push_back(std::move(v));
    if (waiter_) {
      auto h = std::exchange(waiter_, nullptr);
      sim_->schedule_after(0, [h] { h.resume(); });
    }
  }

  std::size_t size() const { return queue_.size(); }

  auto recv() {
    struct Awaiter {
      Mailbox* mb;
      bool await_ready() const { return !mb->queue_.empty(); }
      void await_suspend(std::coroutine_handle<> h) {
        QRDTM_CHECK_MSG(!mb->waiter_, "mailbox has two receivers");
        mb->waiter_ = h;
      }
      T await_resume() {
        QRDTM_CHECK(!mb->queue_.empty());
        T v = std::move(mb->queue_.front());
        mb->queue_.pop_front();
        return v;
      }
    };
    return Awaiter{this};
  }

 private:
  Simulator* sim_;
  std::deque<T> queue_;
  std::coroutine_handle<> waiter_ = nullptr;
};

/// Awaits N completions (e.g. all members of a quorum responding).
class WaitGroup {
 public:
  WaitGroup(Simulator& sim, std::size_t count) : sim_(&sim), pending_(count) {}

  void done() {
    QRDTM_CHECK_MSG(pending_ > 0, "WaitGroup::done past zero");
    if (--pending_ == 0 && waiter_) {
      auto h = std::exchange(waiter_, nullptr);
      sim_->schedule_after(0, [h] { h.resume(); });
    }
  }

  auto wait() {
    struct Awaiter {
      WaitGroup* wg;
      bool await_ready() const { return wg->pending_ == 0; }
      void await_suspend(std::coroutine_handle<> h) {
        QRDTM_CHECK_MSG(!wg->waiter_, "WaitGroup awaited twice");
        wg->waiter_ = h;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Simulator* sim_;
  std::size_t pending_;
  std::coroutine_handle<> waiter_ = nullptr;
};

}  // namespace qrdtm::sim
