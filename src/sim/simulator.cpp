#include "sim/simulator.h"

#include <exception>

#include "sim/task.h"

namespace qrdtm::sim {

namespace {

/// Self-destroying driver coroutine that owns a detached Task's frame.
struct Detached {
  struct promise_type {
    Detached get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }  // drive() never throws
  };
};

}  // namespace

struct SpawnDriver {
  static Detached drive(Simulator* sim, Task<void> task) {
    try {
      co_await std::move(task);
    } catch (...) {
      // Stash the first failure; Simulator::run rethrows it.  A failing
      // process is a bug in the experiment, not a recoverable condition.
      if (!sim->failure_) sim->failure_ = std::current_exception();
    }
  }
};

void Simulator::schedule_at(Tick at, std::function<void()> fn) {
  QRDTM_CHECK_MSG(at >= now_, "cannot schedule into the past");
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

void Simulator::spawn(Task<void> task) {
  SpawnDriver::drive(this, std::move(task));
}

Tick Simulator::run() {
  drain(kNever);
  return now_;
}

Tick Simulator::run_until(Tick deadline) {
  drain(deadline);
  stopping_ = true;
  return now_;
}

Tick Simulator::advance_to(Tick deadline) {
  drain(deadline);
  return now_;
}

void Simulator::drain(Tick deadline) {
  while (!queue_.empty()) {
    if (failure_) {
      auto f = failure_;
      failure_ = nullptr;
      std::rethrow_exception(f);
    }
    const Event& top = queue_.top();
    if (top.at > deadline) break;
    // Move the callback out before popping: running it may push new events
    // and invalidate the reference.
    Tick at = top.at;
    auto fn = std::move(const_cast<Event&>(top).fn);
    queue_.pop();
    now_ = at;
    ++events_executed_;
    fn();
  }
  if (failure_) {
    auto f = failure_;
    failure_ = nullptr;
    std::rethrow_exception(f);
  }
}

}  // namespace qrdtm::sim
