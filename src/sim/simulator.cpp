#include "sim/simulator.h"

#include <exception>

#include "sim/task.h"

namespace qrdtm::sim {

namespace {

/// Self-destroying driver coroutine that owns a detached Task's frame.
struct Detached {
  struct promise_type {
    Detached get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }  // drive() never throws
  };
};

}  // namespace

struct SpawnDriver {
  // Captures the driver's own handle into the simulator's registry without
  // actually suspending (await_suspend returning false resumes in place).
  struct Register {
    Simulator* sim;
    std::size_t* slot;
    bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> h) noexcept {
      *slot = sim->register_driver(h);
      return false;
    }
    void await_resume() const noexcept {}
  };

  static Detached drive(Simulator* sim, Task<void> task) {
    std::size_t slot = 0;
    co_await Register{sim, &slot};
    try {
      co_await std::move(task);
    } catch (...) {
      // Stash the first failure; Simulator::run rethrows it.  A failing
      // process is a bug in the experiment, not a recoverable condition.
      if (!sim->failure_) sim->failure_ = std::current_exception();
    }
    sim->unregister_driver(slot);
  }
};

Simulator::~Simulator() {
  // Destroy detached processes still suspended mid-await (parked past the
  // deadline when the experiment ended).  The driver frame owns its root
  // Task frame, which transitively owns every nested child frame, so one
  // destroy() unwinds the whole chain and releases promise states, wire
  // buffers, and anything else the process still held.
  auto drivers = std::move(drivers_);
  for (auto h : drivers) {
    if (h) h.destroy();
  }
  // Then destroy callables of events still pending, including any the
  // unwind above may have scheduled.  Resume thunks hold raw (non-owning)
  // handles, so discarding them never double-frees a frame.
  for (const HeapEntry& he : heap_) {
    Event& e = event(he.idx());
    e.discard(e);
  }
}

std::size_t Simulator::register_driver(std::coroutine_handle<> h) {
  if (!driver_free_.empty()) {
    const std::size_t slot = driver_free_.back();
    driver_free_.pop_back();
    drivers_[slot] = h;
    return slot;
  }
  drivers_.push_back(h);
  return drivers_.size() - 1;
}

void Simulator::unregister_driver(std::size_t slot) {
  drivers_[slot] = nullptr;
  driver_free_.push_back(slot);
}

void Simulator::grow_pool() {
  QRDTM_CHECK_MSG(chunks_.size() * kChunkSize < (std::size_t{1} << kIdxBits),
                  "event pool exhausted (16.7M in-flight events)");
  const auto base = static_cast<std::uint32_t>(chunks_.size() * kChunkSize);
  chunks_.push_back(std::make_unique<Event[]>(kChunkSize));
  free_.reserve(free_.capacity() + kChunkSize);
  // Hand out low indices first (cosmetic; any order is correct).
  for (std::uint32_t i = kChunkSize; i-- > 0;) free_.push_back(base + i);
}

Simulator::HeapEntry Simulator::heap_pop_min() {
  const HeapEntry min = heap_[0];
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    std::size_t i = 0;
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first_child = i * kHeapArity + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t end =
          first_child + kHeapArity < n ? first_child + kHeapArity : n;
      for (std::size_t c = first_child + 1; c < end; ++c) {
        if (heap_[c].before(heap_[best])) best = c;
      }
      if (!heap_[best].before(last)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return min;
}

void Simulator::spawn(Task<void> task) {
  SpawnDriver::drive(this, std::move(task));
}

Tick Simulator::run() {
  drain(kNever);
  return now_;
}

Tick Simulator::run_until(Tick deadline) {
  drain(deadline);
  stopping_ = true;
  return now_;
}

Tick Simulator::advance_to(Tick deadline) {
  drain(deadline);
  return now_;
}

void Simulator::drain(Tick deadline) {
  while (!heap_.empty()) {
    if (failure_) {
      auto f = failure_;
      failure_ = nullptr;
      std::rethrow_exception(f);
    }
    if (heap_[0].at > deadline) break;
    const HeapEntry he = heap_pop_min();
    Event& e = event(he.idx());
    now_ = he.at;
    ++events_executed_;
    // Free the slot before running: run() first moves the callable out of
    // the slot buffer, so the slot may be re-used by events the callable
    // itself schedules (single-threaded, no race).
    free_.push_back(he.idx());
    e.run(e);
  }
  if (failure_) {
    auto f = failure_;
    failure_ = nullptr;
    std::rethrow_exception(f);
  }
}

}  // namespace qrdtm::sim
