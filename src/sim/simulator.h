// Deterministic discrete-event simulation kernel.
//
// The Simulator owns a time-ordered event queue.  Simulated processes are
// sim::Task coroutines spawned onto the simulator; they advance simulated
// time only by awaiting kernel awaitables (delay, futures fulfilled by
// events).  Determinism guarantees:
//   * ties in event time are broken by insertion sequence number,
//   * all randomness comes from seeded Rng streams,
//   * the kernel itself is single-threaded (one Simulator per experiment
//    point; sweeps parallelise across Simulators, never within one).
//
// Hot-path design (see DESIGN.md "Performance architecture"): events live in
// a free-listed pool of stable slots, each holding a small-buffer-optimised
// callable (coroutine resumes and timer lambdas -- ~all events -- fit
// inline, so scheduling and firing performs no heap allocation in steady
// state), and the ready queue is an indexed d-ary min-heap that sifts 4-byte
// slot indices instead of whole events.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"

namespace qrdtm::sim {

/// Simulated time in nanoseconds.
using Tick = std::uint64_t;

constexpr Tick kNever = ~Tick{0};

constexpr Tick usec(double x) { return static_cast<Tick>(x * 1e3); }
constexpr Tick msec(double x) { return static_cast<Tick>(x * 1e6); }
constexpr Tick sec(double x) { return static_cast<Tick>(x * 1e9); }
constexpr double to_seconds(Tick t) { return static_cast<double>(t) * 1e-9; }

template <class T>
class Task;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  Tick now() const { return now_; }

  /// Schedule `fn` at absolute simulated time `at` (>= now).  Callables up
  /// to kInlineBytes are stored inline in a pooled event slot (no heap
  /// allocation); larger ones fall back to a heap box.
  template <class F>
  void schedule_at(Tick at, F&& fn) {
    QRDTM_CHECK_MSG(at >= now_, "cannot schedule into the past");
    QRDTM_CHECK_MSG(next_seq_ < (std::uint64_t{1} << (64 - kIdxBits)),
                    "event sequence space exhausted");
    using Fn = std::decay_t<F>;
    const std::uint32_t idx = alloc_event();
    Event& e = event(idx);
    const std::uint64_t seq = next_seq_++;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(e.buf)) Fn(std::forward<F>(fn));
      e.run = [](Event& ev) {
        Fn* p = std::launder(reinterpret_cast<Fn*>(ev.buf));
        Fn local(std::move(*p));
        p->~Fn();
        local();
      };
      e.discard = [](Event& ev) {
        std::launder(reinterpret_cast<Fn*>(ev.buf))->~Fn();
      };
    } else {
      // Oversized callable: boxed on the heap (rare; nothing in the
      // repository's hot paths takes this branch -- the AllocRegression
      // tests would catch one).  qrdtm-lint: allow(hot-naked-new)
      auto* boxed = new Fn(std::forward<F>(fn));
      ::new (static_cast<void*>(e.buf)) Fn*(boxed);
      e.run = [](Event& ev) {
        Fn* p = *std::launder(reinterpret_cast<Fn**>(ev.buf));
        Fn local(std::move(*p));
        delete p;
        local();
      };
      e.discard = [](Event& ev) {
        delete *std::launder(reinterpret_cast<Fn**>(ev.buf));
      };
    }
    heap_push(HeapEntry{at, (seq << kIdxBits) | idx});
  }

  /// Schedule `fn` after a relative delay.
  template <class F>
  void schedule_after(Tick delay, F&& fn) {
    schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Start a detached simulated process.  The process begins executing
  /// immediately (until its first suspension).  An exception escaping the
  /// process aborts the simulation: Simulator::run rethrows it.
  void spawn(Task<void> task);

  /// Run until the event queue drains.  Returns final simulated time.
  Tick run();

  /// Run until simulated time reaches `deadline` (events at == deadline are
  /// executed) or the queue drains, whichever is first.  Marks the
  /// simulation as stopping so long-lived processes wind down.
  Tick run_until(Tick deadline);

  /// Like run_until but WITHOUT marking the simulation as stopping: use it
  /// to sample state mid-run (e.g. between injected failures) while
  /// closed-loop clients keep issuing work.
  Tick advance_to(Tick deadline);

  /// Ask long-lived processes to wind down (also set by run_until).
  void request_stop() { stopping_ = true; }

  /// True once run_until passed its deadline (or request_stop was called);
  /// long-lived processes poll this to wind down.
  bool stopping() const { return stopping_; }

  std::uint64_t events_executed() const { return events_executed_; }

  /// Pending (scheduled, not yet fired) events.
  std::size_t events_pending() const { return heap_.size(); }

  /// Awaitable: suspend the current process for `delay` simulated time.
  auto delay(Tick d) {
    struct Awaiter {
      Simulator* sim;
      Tick d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim->schedule_after(d, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

 private:
  /// Inline storage for event callables.  Sized for the largest hot-path
  /// capture: the network delivery closure (Network* + a full Message with
  /// its payload vector and trace context, 64 bytes on LP64 -- an exact
  /// fit, so growing Message again would spill deliveries to the heap and
  /// trip the AllocRegression tests).
  static constexpr std::size_t kInlineBytes = 64;

  // The ordering key (at, seq) lives in the HeapEntry, not here: a slot
  // only stores the callable and its dispatch/teardown thunks.
  struct Event {
    void (*run)(Event&) = nullptr;      // move out, destroy slot copy, invoke
    void (*discard)(Event&) = nullptr;  // destroy without invoking
    alignas(std::max_align_t) unsigned char buf[kInlineBytes];
  };
  // The inline buffer must hold at least a boxed pointer (the oversized
  // fallback stores a Fn* in it) and be max-aligned so any hot-path callable
  // can be placement-constructed without adjustment.
  static_assert(kInlineBytes >= sizeof(void*));
  static_assert(alignof(Event) >= alignof(std::max_align_t));
  static_assert(sizeof(Event::buf) == kInlineBytes);

  // Slots are chunked so they never move: a pool grow allocates a new chunk
  // without relocating live callables.
  static constexpr std::size_t kChunkSize = 256;
  // Heap arity 4: shallower sifts than a binary heap and index-only moves.
  static constexpr std::size_t kHeapArity = 4;

  Event& event(std::uint32_t idx) {
    return chunks_[idx / kChunkSize][idx % kChunkSize];
  }

  // Heap entries carry the ordering key inline so sift comparisons never
  // dereference the event pool (pure in-array compares, no pointer chasing).
  // seq and slot index share one word -- the entry is 16 bytes and passes in
  // registers -- and because seq occupies the high bits, comparing the packed
  // word IS the seq tie-break (seq is unique per event).  24 index bits bound
  // the pool at 16.7M in-flight events and 40 seq bits at ~1.1e12 events per
  // Simulator; both are checked and far beyond any experiment in this repo.
  static constexpr unsigned kIdxBits = 24;
  struct HeapEntry {
    Tick at;
    std::uint64_t seq_idx;  // (seq << kIdxBits) | slot index
    std::uint32_t idx() const {
      return static_cast<std::uint32_t>(seq_idx & ((1u << kIdxBits) - 1));
    }
    bool before(const HeapEntry& o) const {
      return at != o.at ? at < o.at : seq_idx < o.seq_idx;
    }
  };
  // The packed-entry bit math is only sound while the index mask fits an
  // unsigned (no shift past width) and seq has headroom in the high bits;
  // the 16-byte / 8-aligned layout is what keeps sift moves register-sized.
  static_assert(kIdxBits < 32, "index mask (1u << kIdxBits) must not overflow");
  static_assert(kIdxBits < 64, "seq must have high bits left");
  static_assert(sizeof(HeapEntry) == 16 && alignof(HeapEntry) == 8,
                "HeapEntry must stay two registers wide");
  static_assert(std::is_trivially_copyable_v<HeapEntry>);
  static_assert(kChunkSize > 0 &&
                    (std::size_t{1} << kIdxBits) % kChunkSize == 0,
                "chunks must tile the index space exactly");

  // Hot-path helpers are inline: schedule_at instantiates in every caller's
  // TU and must not pay an out-of-line call per event.  Only the cold pool
  // grow and the drain loop live in the .cpp.
  std::uint32_t alloc_event() {
    if (free_.empty()) grow_pool();
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }

  void heap_push(HeapEntry e) {
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) / kHeapArity;
      if (!e.before(heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void grow_pool();
  HeapEntry heap_pop_min();
  void drain(Tick deadline);

  // Detached-process registry (SpawnDriver).  Each spawned driver frame
  // records itself here and clears its slot on normal completion; the
  // destructor destroys whatever is still registered so processes suspended
  // mid-await when the experiment ends do not leak their frames (and
  // everything those frames transitively own: nested Task frames, promise
  // states, wire buffers).
  std::size_t register_driver(std::coroutine_handle<> h);
  void unregister_driver(std::size_t slot);

  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  bool stopping_ = false;
  std::exception_ptr failure_;
  std::vector<std::unique_ptr<Event[]>> chunks_;
  std::vector<std::uint32_t> free_;
  std::vector<HeapEntry> heap_;
  std::vector<std::coroutine_handle<>> drivers_;  // null = slot free
  std::vector<std::size_t> driver_free_;

  friend struct SpawnDriver;
};

}  // namespace qrdtm::sim
