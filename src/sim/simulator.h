// Deterministic discrete-event simulation kernel.
//
// The Simulator owns a time-ordered event queue.  Simulated processes are
// sim::Task coroutines spawned onto the simulator; they advance simulated
// time only by awaiting kernel awaitables (delay, futures fulfilled by
// events).  Determinism guarantees:
//   * ties in event time are broken by insertion sequence number,
//   * all randomness comes from seeded Rng streams,
//   * the kernel itself is single-threaded (one Simulator per experiment
//    point; sweeps parallelise across Simulators, never within one).
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.h"

namespace qrdtm::sim {

/// Simulated time in nanoseconds.
using Tick = std::uint64_t;

constexpr Tick kNever = ~Tick{0};

constexpr Tick usec(double x) { return static_cast<Tick>(x * 1e3); }
constexpr Tick msec(double x) { return static_cast<Tick>(x * 1e6); }
constexpr Tick sec(double x) { return static_cast<Tick>(x * 1e9); }
constexpr double to_seconds(Tick t) { return static_cast<double>(t) * 1e-9; }

template <class T>
class Task;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Tick now() const { return now_; }

  /// Schedule `fn` at absolute simulated time `at` (>= now).
  void schedule_at(Tick at, std::function<void()> fn);

  /// Schedule `fn` after a relative delay.
  void schedule_after(Tick delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Start a detached simulated process.  The process begins executing
  /// immediately (until its first suspension).  An exception escaping the
  /// process aborts the simulation: Simulator::run rethrows it.
  void spawn(Task<void> task);

  /// Run until the event queue drains.  Returns final simulated time.
  Tick run();

  /// Run until simulated time reaches `deadline` (events at == deadline are
  /// executed) or the queue drains, whichever is first.  Marks the
  /// simulation as stopping so long-lived processes wind down.
  Tick run_until(Tick deadline);

  /// Like run_until but WITHOUT marking the simulation as stopping: use it
  /// to sample state mid-run (e.g. between injected failures) while
  /// closed-loop clients keep issuing work.
  Tick advance_to(Tick deadline);

  /// Ask long-lived processes to wind down (also set by run_until).
  void request_stop() { stopping_ = true; }

  /// True once run_until passed its deadline (or request_stop was called);
  /// long-lived processes poll this to wind down.
  bool stopping() const { return stopping_; }

  std::uint64_t events_executed() const { return events_executed_; }

  /// Awaitable: suspend the current process for `delay` simulated time.
  auto delay(Tick d) {
    struct Awaiter {
      Simulator* sim;
      Tick d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sim->schedule_after(d, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

 private:
  struct Event {
    Tick at;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  void drain(Tick deadline);

  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  bool stopping_ = false;
  std::exception_ptr failure_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;

  friend struct SpawnDriver;
};

}  // namespace qrdtm::sim
