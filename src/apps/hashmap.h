// Distributed Hashmap micro-benchmark (paper §VI-C).
//
// Layout: a fixed array of bucket-head objects, each heading a chain of
// entry objects (separate chaining).  Every chain node is its own DTM
// object, so a lookup reads the whole chain prefix -- growing the key
// population at a fixed bucket count lengthens chains, read-sets, and hence
// contention, matching the paper's observation that Hashmap contention
// *increases* with the number of objects (Fig. 7).
//
// Operations: get(k) (read-only), put(k, v) (insert or update),
// remove(k).  Writes split evenly between put and remove so the population
// stays near its seeded size.
#pragma once

#include "apps/app.h"

namespace qrdtm::apps {

class HashmapApp final : public App {
 public:
  explicit HashmapApp(std::uint32_t num_buckets = 8)
      : num_buckets_(num_buckets) {}

  std::string name() const override { return "hashmap"; }
  void setup(Cluster& cluster, const WorkloadParams& params,
             Rng& rng) override;
  TxnBody make_txn(const WorkloadParams& params, Rng& rng) override;
  TxnBody make_checker(bool* ok) override;

  std::uint32_t num_buckets() const { return num_buckets_; }
  std::uint64_t key_space() const { return key_space_; }

  /// One data-structure operation as a nested-transaction body; exposed for
  /// targeted tests.
  enum class OpKind { kGet, kInsert, kRemove };
  static sim::Task<void> run_op(Txn& ct, const std::vector<ObjectId>& buckets,
                                std::uint32_t num_buckets, OpKind kind,
                                std::uint64_t key, std::int64_t value,
                                sim::Tick compute);

  /// Single-operation transaction bodies (tests and examples).
  TxnBody make_op(OpKind kind, std::uint64_t key, std::int64_t value);
  TxnBody make_lookup(std::uint64_t key, std::int64_t* value, bool* found);

  /// Prior state recorded by a mutating operation, consumed by its QR-ON
  /// compensation (valid because the key's abstract lock is held until the
  /// root settles, so nothing else can touch the key in between).
  struct Undo {
    bool mutated = false;
    bool existed = false;
    std::int64_t old_value = 0;
  };

  /// `run_op` variant recording the key's prior state into `undo`.
  static sim::Task<void> run_op_recording(
      Txn& ct, const std::vector<ObjectId>& buckets, std::uint32_t num_buckets,
      OpKind kind, std::uint64_t key, std::int64_t value, sim::Tick compute,
      Undo* undo);

  /// QR-ON workload: each data-structure operation is an open-nested
  /// operation holding the key's abstract lock, with a state-restoring
  /// compensation (extension beyond the paper; see DESIGN.md §6).
  TxnBody make_txn_open(const WorkloadParams& params, Rng& rng);

 private:
  std::uint32_t num_buckets_;
  std::uint64_t key_space_ = 0;
  std::vector<ObjectId> buckets_;
};

}  // namespace qrdtm::apps
