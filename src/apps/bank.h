// Bank (monetary) macro-benchmark, after the application in HyFlow's
// distributed Bank workload (paper §VI-B).
//
// State: `num_objects` account objects, each an i64 balance.
// Operations (one per closed-nested call):
//   * transfer  -- move a fixed amount between two distinct random accounts
//     (read_for_write both, write both);
//   * audit     -- read two random accounts (read-only).
// Invariant: the sum of all balances equals the seeded total.
#pragma once

#include "apps/app.h"

namespace qrdtm::apps {

class BankApp final : public App {
 public:
  std::string name() const override { return "bank"; }
  void setup(Cluster& cluster, const WorkloadParams& params,
             Rng& rng) override;
  TxnBody make_txn(const WorkloadParams& params, Rng& rng) override;
  TxnBody make_checker(bool* ok) override;

  static constexpr std::int64_t kInitialBalance = 1000;

 private:
  std::vector<ObjectId> accounts_;
};

}  // namespace qrdtm::apps
