#include "apps/skiplist.h"

#include <map>
#include <set>

#include "common/check.h"
#include "common/serde.h"

namespace qrdtm::apps {

namespace {

// Node payload: {key, value, height, next[height]}.  The head sentinel uses
// key 0 (workload keys are >= 1) and height kMaxLevel.
struct Node {
  std::uint64_t key = 0;
  std::int64_t value = 0;
  std::vector<ObjectId> next;  // size = height
};

Bytes enc_node(const Node& n) {
  Writer w;
  w.u64(n.key);
  w.i64(n.value);
  w.u32(static_cast<std::uint32_t>(n.next.size()));
  for (ObjectId id : n.next) w.u64(id);
  return std::move(w).take();
}

Node dec_node(const Bytes& b) {
  Reader r(b);
  Node n;
  n.key = r.u64();
  n.value = r.i64();
  std::uint32_t h = r.u32();
  n.next.reserve(h);
  for (std::uint32_t i = 0; i < h; ++i) n.next.push_back(r.u64());
  return n;
}

}  // namespace

std::uint32_t SkipListApp::height_of(std::uint64_t key) {
  std::uint64_t x = key * 0x2545f4914f6cdd1dULL;
  x ^= x >> 29;
  std::uint32_t h = 1;
  while ((x & 1) && h < kMaxLevel) {
    ++h;
    x >>= 1;
  }
  return h;
}

void SkipListApp::setup(Cluster& cluster, const WorkloadParams& params,
                        Rng& rng) {
  QRDTM_CHECK(params.num_objects >= 1);
  key_space_ = static_cast<std::uint64_t>(params.num_objects) * 2;

  std::set<std::uint64_t> keys;
  while (keys.size() < params.num_objects) {
    keys.insert(rng.below(key_space_) + 1);
  }

  // Build back-to-front so next pointers are known at seed time.
  std::vector<ObjectId> level_next(kMaxLevel, store::kNullObject);
  for (auto it = keys.rbegin(); it != keys.rend(); ++it) {
    std::uint32_t h = height_of(*it);
    Node n;
    n.key = *it;
    n.value = static_cast<std::int64_t>(*it);
    n.next.assign(level_next.begin(), level_next.begin() + h);
    ObjectId id = cluster.seed_new_object(enc_node(n));
    for (std::uint32_t l = 0; l < h; ++l) level_next[l] = id;
  }
  Node head;
  head.key = 0;
  head.next = level_next;  // full height
  head_ = cluster.seed_new_object(enc_node(head));
}

sim::Task<void> SkipListApp::run_op(Txn& ct, ObjectId head, OpKind kind,
                                    std::uint64_t key, std::int64_t value,
                                    sim::Tick compute) {
  // Search: collect the predecessor *id* at every level (the classic
  // update[] array), reading each node on the path exactly once remotely
  // (repeat reads hit the transaction-local data-set).
  std::vector<ObjectId> preds(kMaxLevel, head);
  Node head_node = dec_node(co_await ct.read(head));

  ObjectId cur_id = head;
  Node cur = head_node;
  for (std::uint32_t l = kMaxLevel; l-- > 0;) {
    while (l < cur.next.size() && cur.next[l] != store::kNullObject) {
      Node nxt = dec_node(co_await ct.read(cur.next[l]));
      if (nxt.key >= key) break;
      cur_id = cur.next[l];
      cur = nxt;
    }
    preds[l] = cur_id;
  }

  // Candidate at level 0.
  ObjectId cand_id = store::kNullObject;
  Node cand;
  {
    Node pred0 = dec_node(co_await ct.read(preds[0]));
    if (!pred0.next.empty() && pred0.next[0] != store::kNullObject) {
      Node maybe = dec_node(co_await ct.read(pred0.next[0]));
      if (maybe.key == key) {
        cand_id = pred0.next[0];
        cand = maybe;
      }
    }
  }
  const bool found = cand_id != store::kNullObject;
  co_await ct.compute(compute);

  switch (kind) {
    case OpKind::kGet:
      break;
    case OpKind::kInsert: {
      if (found) {
        (void)co_await ct.read_for_write(cand_id);
        cand.value = value;
        ct.write(cand_id, enc_node(cand));
        break;
      }
      const std::uint32_t h = height_of(key);
      // Stage per-predecessor mutations (several levels may share one
      // predecessor object; mutate the staged copy, write once).
      std::map<ObjectId, Node> staged;
      for (std::uint32_t l = 0; l < h; ++l) {
        if (!staged.contains(preds[l])) {
          staged[preds[l]] = dec_node(co_await ct.read_for_write(preds[l]));
        }
      }
      Node fresh;
      fresh.key = key;
      fresh.value = value;
      fresh.next.resize(h);
      for (std::uint32_t l = 0; l < h; ++l) {
        Node& p = staged[preds[l]];
        QRDTM_CHECK(l < p.next.size());
        fresh.next[l] = p.next[l];
      }
      ObjectId fresh_id = ct.create(enc_node(fresh));
      for (std::uint32_t l = 0; l < h; ++l) {
        staged[preds[l]].next[l] = fresh_id;
      }
      for (auto& [id, node] : staged) ct.write(id, enc_node(node));
      break;
    }
    case OpKind::kRemove: {
      if (!found) break;
      std::map<ObjectId, Node> staged;
      const std::uint32_t h = static_cast<std::uint32_t>(cand.next.size());
      for (std::uint32_t l = 0; l < h; ++l) {
        if (!staged.contains(preds[l])) {
          staged[preds[l]] = dec_node(co_await ct.read_for_write(preds[l]));
        }
        Node& p = staged[preds[l]];
        if (l < p.next.size() && p.next[l] == cand_id) {
          p.next[l] = cand.next[l];
        }
      }
      for (auto& [id, node] : staged) ct.write(id, enc_node(node));
      break;
    }
  }
}

TxnBody SkipListApp::make_txn(const WorkloadParams& params, Rng& rng) {
  struct Op {
    OpKind kind;
    std::uint64_t key;
    std::int64_t value;
  };
  std::vector<Op> plan;
  plan.reserve(params.nested_calls);
  for (std::uint32_t i = 0; i < params.nested_calls; ++i) {
    Op op;
    if (rng.chance(params.read_ratio)) {
      op.kind = OpKind::kGet;
    } else {
      op.kind = rng.chance(0.5) ? OpKind::kInsert : OpKind::kRemove;
    }
    op.key = rng.below(key_space_) + 1;
    op.value = rng.range(0, 1 << 20);
    plan.push_back(op);
  }
  const ObjectId head = head_;
  const sim::Tick compute = params.op_compute;

  return [plan = std::move(plan), head, compute](Txn& t) -> sim::Task<void> {
    for (const Op& op : plan) {
      // The [&] lambda coroutine is safe here: nested() takes the closure by
      // value and is co_awaited within the same full expression, so the closure
      // and the by-reference captures (locals of this suspended coroutine
      // frame) both outlive the child.  qrdtm-lint: allow(coro-ref-capture)
      co_await t.nested([&](Txn& ct) -> sim::Task<void> {
        co_await run_op(ct, head, op.kind, op.key, op.value, compute);
      });
    }
  };
}

TxnBody SkipListApp::make_op(OpKind kind, std::uint64_t key,
                             std::int64_t value) {
  const ObjectId head = head_;
  return [head, kind, key, value](Txn& t) -> sim::Task<void> {
    // Safe for the same reason as above.  qrdtm-lint: allow(coro-ref-capture)
    co_await t.nested([&](Txn& ct) -> sim::Task<void> {
      co_await run_op(ct, head, kind, key, value, /*compute=*/0);
    });
  };
}

TxnBody SkipListApp::make_lookup(std::uint64_t key, std::int64_t* value,
                                 bool* found) {
  const ObjectId head = head_;
  return [head, key, value, found](Txn& t) -> sim::Task<void> {
    *found = false;
    Node h = dec_node(co_await t.read(head));
    ObjectId cur = h.next.empty() ? store::kNullObject : h.next[0];
    while (cur != store::kNullObject) {
      Node n = dec_node(co_await t.read(cur));
      if (n.key == key) {
        *found = true;
        *value = n.value;
        break;
      }
      if (n.key > key) break;
      cur = n.next.empty() ? store::kNullObject : n.next[0];
    }
  };
}

TxnBody SkipListApp::make_checker(bool* ok) {
  const ObjectId head = head_;
  return [head, ok](Txn& t) -> sim::Task<void> {
    *ok = true;
    // Level-0 list must be strictly sorted; every higher level must be a
    // subsequence of level 0.
    std::set<std::uint64_t> level0;
    Node h = dec_node(co_await t.read(head));
    std::uint64_t last = 0;
    ObjectId cur = h.next.empty() ? store::kNullObject : h.next[0];
    std::size_t steps = 0;
    while (cur != store::kNullObject) {
      Node n = dec_node(co_await t.read(cur));
      if (n.key <= last) *ok = false;
      last = n.key;
      level0.insert(n.key);
      if (++steps > 1000000) {
        *ok = false;
        break;
      }
      cur = n.next.empty() ? store::kNullObject : n.next[0];
    }
    for (std::uint32_t l = 1; l < SkipListApp::kMaxLevel; ++l) {
      std::uint64_t prev = 0;
      ObjectId c = l < h.next.size() ? h.next[l] : store::kNullObject;
      std::size_t lsteps = 0;
      while (c != store::kNullObject) {
        Node n = dec_node(co_await t.read(c));
        if (n.key <= prev || !level0.contains(n.key)) *ok = false;
        prev = n.key;
        if (++lsteps > 1000000) {
          *ok = false;
          break;
        }
        c = l < n.next.size() ? n.next[l] : store::kNullObject;
      }
    }
  };
}

}  // namespace qrdtm::apps
