#include "apps/rbtree.h"

#include <functional>
#include <map>
#include <set>

#include "common/check.h"
#include "common/serde.h"

namespace qrdtm::apps {

namespace {

constexpr std::uint8_t kBlack = 0;
constexpr std::uint8_t kRed = 1;

struct Node {
  std::uint64_t key = 0;
  std::int64_t value = 0;
  std::uint8_t color = kBlack;
  ObjectId left = store::kNullObject;
  ObjectId right = store::kNullObject;
  ObjectId parent = store::kNullObject;
  bool deleted = false;
};

Bytes enc_node(const Node& n) {
  Writer w;
  w.u64(n.key);
  w.i64(n.value);
  w.u8(n.color);
  w.u64(n.left);
  w.u64(n.right);
  w.u64(n.parent);
  w.boolean(n.deleted);
  return std::move(w).take();
}

Node dec_node(const Bytes& b) {
  Reader r(b);
  Node n;
  n.key = r.u64();
  n.value = r.i64();
  n.color = r.u8();
  n.left = r.u64();
  n.right = r.u64();
  n.parent = r.u64();
  n.deleted = r.boolean();
  return n;
}

Bytes enc_holder(ObjectId root) {
  Writer w;
  w.u64(root);
  return std::move(w).take();
}

ObjectId dec_holder(const Bytes& b) {
  Reader r(b);
  return r.u64();
}

/// Operation-local view of the tree: every object is fetched once, mutated
/// in place, and dirty nodes are written back in a single flush.
struct TreeCache {
  Txn& ct;
  ObjectId holder;
  ObjectId root = store::kNullObject;
  bool root_dirty = false;
  std::map<ObjectId, Node> nodes{};
  std::set<ObjectId> dirty{};

  sim::Task<void> load_root() {
    root = dec_holder(co_await ct.read(holder));
  }

  sim::Task<Node*> get(ObjectId id) {
    if (id == store::kNullObject) co_return nullptr;
    auto it = nodes.find(id);
    if (it == nodes.end()) {
      it = nodes.emplace(id, dec_node(co_await ct.read(id))).first;
    }
    co_return &it->second;
  }

  Node& at(ObjectId id) {
    auto it = nodes.find(id);
    QRDTM_CHECK_MSG(it != nodes.end(), "node not loaded");
    return it->second;
  }

  void mark(ObjectId id) { dirty.insert(id); }

  void set_root(ObjectId id) {
    root = id;
    root_dirty = true;
  }

  ObjectId add_fresh(const Node& n) {
    ObjectId id = ct.create(enc_node(n));
    nodes[id] = n;
    dirty.insert(id);
    return id;
  }

  sim::Task<void> flush() {
    for (ObjectId id : dirty) {
      (void)co_await ct.read_for_write(id);  // local upgrade / write-set hit
      ct.write(id, enc_node(at(id)));
    }
    if (root_dirty) {
      (void)co_await ct.read_for_write(holder);
      ct.write(holder, enc_holder(root));
    }
  }
};

/// CLRS left rotation around x; loads y = x.right (must be non-nil).
sim::Task<void> left_rotate(TreeCache& c, ObjectId x_id) {
  Node& x = c.at(x_id);
  ObjectId y_id = x.right;
  Node* y = co_await c.get(y_id);
  QRDTM_CHECK(y != nullptr);
  x.right = y->left;
  if (y->left != store::kNullObject) {
    Node* yl = co_await c.get(y->left);
    yl->parent = x_id;
    c.mark(y->left);
  }
  y->parent = x.parent;
  if (x.parent == store::kNullObject) {
    c.set_root(y_id);
  } else {
    Node& p = c.at(x.parent);
    if (p.left == x_id) {
      p.left = y_id;
    } else {
      p.right = y_id;
    }
    c.mark(x.parent);
  }
  y->left = x_id;
  x.parent = y_id;
  c.mark(x_id);
  c.mark(y_id);
}

/// CLRS right rotation around x; loads y = x.left (must be non-nil).
sim::Task<void> right_rotate(TreeCache& c, ObjectId x_id) {
  Node& x = c.at(x_id);
  ObjectId y_id = x.left;
  Node* y = co_await c.get(y_id);
  QRDTM_CHECK(y != nullptr);
  x.left = y->right;
  if (y->right != store::kNullObject) {
    Node* yr = co_await c.get(y->right);
    yr->parent = x_id;
    c.mark(y->right);
  }
  y->parent = x.parent;
  if (x.parent == store::kNullObject) {
    c.set_root(y_id);
  } else {
    Node& p = c.at(x.parent);
    if (p.left == x_id) {
      p.left = y_id;
    } else {
      p.right = y_id;
    }
    c.mark(x.parent);
  }
  y->right = x_id;
  x.parent = y_id;
  c.mark(x_id);
  c.mark(y_id);
}

/// CLRS RB-INSERT-FIXUP starting at the (red) node z.
sim::Task<void> insert_fixup(TreeCache& c, ObjectId z_id) {
  while (true) {
    Node& z = c.at(z_id);
    if (z.parent == store::kNullObject) break;
    Node* p = co_await c.get(z.parent);
    if (p->color != kRed) break;
    // Grandparent exists: the root is black, so a red parent is not root.
    ObjectId gp_id = p->parent;
    Node* gp = co_await c.get(gp_id);
    QRDTM_CHECK(gp != nullptr);
    if (z.parent == gp->left) {
      ObjectId uncle_id = gp->right;
      Node* uncle = co_await c.get(uncle_id);
      if (uncle != nullptr && uncle->color == kRed) {
        p->color = kBlack;
        uncle->color = kBlack;
        gp->color = kRed;
        c.mark(z.parent);
        c.mark(uncle_id);
        c.mark(gp_id);
        z_id = gp_id;
      } else {
        if (z_id == p->right) {
          z_id = z.parent;
          co_await left_rotate(c, z_id);
        }
        Node& z2 = c.at(z_id);
        Node& p2 = c.at(z2.parent);
        p2.color = kBlack;
        Node& gp2 = c.at(p2.parent);
        gp2.color = kRed;
        c.mark(z2.parent);
        c.mark(p2.parent);
        co_await right_rotate(c, p2.parent);
      }
    } else {  // mirror image
      ObjectId uncle_id = gp->left;
      Node* uncle = co_await c.get(uncle_id);
      if (uncle != nullptr && uncle->color == kRed) {
        p->color = kBlack;
        uncle->color = kBlack;
        gp->color = kRed;
        c.mark(z.parent);
        c.mark(uncle_id);
        c.mark(gp_id);
        z_id = gp_id;
      } else {
        if (z_id == p->left) {
          z_id = z.parent;
          co_await right_rotate(c, z_id);
        }
        Node& z2 = c.at(z_id);
        Node& p2 = c.at(z2.parent);
        p2.color = kBlack;
        Node& gp2 = c.at(p2.parent);
        gp2.color = kRed;
        c.mark(z2.parent);
        c.mark(p2.parent);
        co_await left_rotate(c, p2.parent);
      }
    }
  }
  if (c.root != store::kNullObject) {
    Node& r = c.at(c.root);
    if (r.color != kBlack) {
      r.color = kBlack;
      c.mark(c.root);
    }
  }
}

}  // namespace

void RbTreeApp::setup(Cluster& cluster, const WorkloadParams& params,
                      Rng& rng) {
  QRDTM_CHECK(params.num_objects >= 1);
  key_space_ = static_cast<std::uint64_t>(params.num_objects) * 2;

  std::set<std::uint64_t> keys;
  while (keys.size() < params.num_objects) {
    keys.insert(rng.below(key_space_) + 1);
  }
  // Build a perfectly balanced tree from sorted keys and colour it by
  // depth: nodes at the deepest (possibly incomplete) level are red, all
  // others black.  This satisfies every red-black invariant.
  std::vector<std::uint64_t> sorted(keys.begin(), keys.end());
  std::size_t full_depth = 0;
  while ((std::size_t{1} << (full_depth + 1)) - 1 <= sorted.size()) {
    ++full_depth;
  }

  struct Built {
    Node node;
    ObjectId id;
  };
  std::vector<std::pair<ObjectId, Node>> staged;
  std::function<ObjectId(std::size_t, std::size_t, std::size_t, ObjectId)>
      build = [&](std::size_t lo, std::size_t hi, std::size_t depth,
                  ObjectId parent) -> ObjectId {
    if (lo >= hi) return store::kNullObject;
    std::size_t mid = lo + (hi - lo) / 2;
    Node n;
    n.key = sorted[mid];
    n.value = static_cast<std::int64_t>(sorted[mid]);
    n.color = depth >= full_depth ? kRed : kBlack;
    n.parent = parent;
    // Reserve the id first so children can point back to it.
    ObjectId id = cluster.seed_new_object(Bytes{});
    n.left = build(lo, mid, depth + 1, id);
    n.right = build(mid + 1, hi, depth + 1, id);
    staged.emplace_back(id, n);
    return id;
  };
  ObjectId root = build(0, sorted.size(), 0, store::kNullObject);
  if (root != store::kNullObject) {
    // Root must be black; if it landed on the red level (tiny trees),
    // recolour.
    for (auto& [id, n] : staged) {
      if (id == root) n.color = kBlack;
      cluster.seed_object(id, enc_node(n));
    }
  }
  root_holder_ = cluster.seed_new_object(enc_holder(root));
}

sim::Task<void> RbTreeApp::run_op(Txn& ct, ObjectId root_holder, OpKind kind,
                                  std::uint64_t key, std::int64_t value,
                                  sim::Tick compute) {
  TreeCache cache{ct, root_holder};
  co_await cache.load_root();

  // Descend to the key or its would-be parent.
  ObjectId parent = store::kNullObject;
  ObjectId cur = cache.root;
  bool found = false;
  while (cur != store::kNullObject) {
    Node* n = co_await cache.get(cur);
    if (n->key == key) {
      found = true;
      break;
    }
    parent = cur;
    cur = key < n->key ? n->left : n->right;
  }
  co_await ct.compute(compute);

  switch (kind) {
    case OpKind::kGet:
      break;
    case OpKind::kRemove:
      if (found) {
        Node& n = cache.at(cur);
        if (!n.deleted) {
          n.deleted = true;
          cache.mark(cur);
        }
      }
      break;
    case OpKind::kInsert: {
      if (found) {
        Node& n = cache.at(cur);
        n.value = value;
        n.deleted = false;
        cache.mark(cur);
        break;
      }
      Node fresh;
      fresh.key = key;
      fresh.value = value;
      fresh.color = kRed;
      fresh.parent = parent;
      ObjectId fresh_id = cache.add_fresh(fresh);
      if (parent == store::kNullObject) {
        cache.set_root(fresh_id);
      } else {
        Node& p = cache.at(parent);
        if (key < p.key) {
          p.left = fresh_id;
        } else {
          p.right = fresh_id;
        }
        cache.mark(parent);
      }
      co_await insert_fixup(cache, fresh_id);
      break;
    }
  }
  co_await cache.flush();
}

TxnBody RbTreeApp::make_txn(const WorkloadParams& params, Rng& rng) {
  struct Op {
    OpKind kind;
    std::uint64_t key;
    std::int64_t value;
  };
  std::vector<Op> plan;
  plan.reserve(params.nested_calls);
  for (std::uint32_t i = 0; i < params.nested_calls; ++i) {
    Op op;
    if (rng.chance(params.read_ratio)) {
      op.kind = OpKind::kGet;
    } else {
      op.kind = rng.chance(0.5) ? OpKind::kInsert : OpKind::kRemove;
    }
    op.key = rng.below(key_space_) + 1;
    op.value = rng.range(0, 1 << 20);
    plan.push_back(op);
  }
  const ObjectId holder = root_holder_;
  const sim::Tick compute = params.op_compute;

  return [plan = std::move(plan), holder, compute](Txn& t) -> sim::Task<void> {
    for (const Op& op : plan) {
      // The [&] lambda coroutine is safe here: nested() takes the closure by
      // value and is co_awaited within the same full expression, so the closure
      // and the by-reference captures (locals of this suspended coroutine
      // frame) both outlive the child.  qrdtm-lint: allow(coro-ref-capture)
      co_await t.nested([&](Txn& ct) -> sim::Task<void> {
        co_await run_op(ct, holder, op.kind, op.key, op.value, compute);
      });
    }
  };
}

TxnBody RbTreeApp::make_op(OpKind kind, std::uint64_t key,
                           std::int64_t value) {
  const ObjectId holder = root_holder_;
  return [holder, kind, key, value](Txn& t) -> sim::Task<void> {
    // Safe for the same reason as above.  qrdtm-lint: allow(coro-ref-capture)
    co_await t.nested([&](Txn& ct) -> sim::Task<void> {
      co_await run_op(ct, holder, kind, key, value, /*compute=*/0);
    });
  };
}

TxnBody RbTreeApp::make_lookup(std::uint64_t key, std::int64_t* value,
                               bool* found) {
  const ObjectId holder = root_holder_;
  return [holder, key, value, found](Txn& t) -> sim::Task<void> {
    *found = false;
    ObjectId cur = dec_holder(co_await t.read(holder));
    while (cur != store::kNullObject) {
      Node n = dec_node(co_await t.read(cur));
      if (n.key == key) {
        if (!n.deleted) {
          *found = true;
          *value = n.value;
        }
        break;
      }
      cur = key < n.key ? n.left : n.right;
    }
  };
}

TxnBody RbTreeApp::make_checker(bool* ok) {
  const ObjectId holder = root_holder_;
  return [holder, ok](Txn& t) -> sim::Task<void> {
    *ok = true;
    // Pull the whole tree into memory, then verify: BST ordering, parent
    // pointers, root blackness, no red-red edges, equal black heights.
    std::map<ObjectId, Node> tree;
    ObjectId root = dec_holder(co_await t.read(holder));
    std::vector<ObjectId> stack;
    if (root != store::kNullObject) stack.push_back(root);
    while (!stack.empty()) {
      ObjectId id = stack.back();
      stack.pop_back();
      if (tree.contains(id) || tree.size() > 1000000) {
        *ok = false;  // cycle
        co_return;
      }
      Node n = dec_node(co_await t.read(id));
      tree[id] = n;
      if (n.left != store::kNullObject) stack.push_back(n.left);
      if (n.right != store::kNullObject) stack.push_back(n.right);
    }
    if (root == store::kNullObject) co_return;
    if (tree.at(root).color != kBlack) *ok = false;
    if (tree.at(root).parent != store::kNullObject) *ok = false;

    // Iterative post-order computing black heights.
    std::function<int(ObjectId, std::uint64_t, std::uint64_t)> check =
        [&](ObjectId id, std::uint64_t lo, std::uint64_t hi) -> int {
      if (id == store::kNullObject) return 1;  // nil is black
      const Node& n = tree.at(id);
      if ((lo != 0 && n.key <= lo) || (hi != 0 && n.key >= hi)) *ok = false;
      if (n.color == kRed) {
        if (n.left != store::kNullObject &&
            tree.at(n.left).color == kRed) {
          *ok = false;
        }
        if (n.right != store::kNullObject &&
            tree.at(n.right).color == kRed) {
          *ok = false;
        }
      }
      if (n.left != store::kNullObject && tree.at(n.left).parent != id) {
        *ok = false;
      }
      if (n.right != store::kNullObject && tree.at(n.right).parent != id) {
        *ok = false;
      }
      int lh = check(n.left, lo, n.key);
      int rh = check(n.right, n.key, hi);
      if (lh != rh) *ok = false;
      return lh + (n.color == kBlack ? 1 : 0);
    };
    (void)check(root, 0, 0);
  };
}

}  // namespace qrdtm::apps
