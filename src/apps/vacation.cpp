#include "apps/vacation.h"

#include <algorithm>
#include <array>

#include "common/check.h"
#include "common/serde.h"

namespace qrdtm::apps {

namespace {

struct Resource {
  std::uint32_t total = 0;
  std::uint32_t avail = 0;
  std::int64_t price = 0;
};

Bytes enc_resource(const Resource& r) {
  Writer w;
  w.u32(r.total);
  w.u32(r.avail);
  w.i64(r.price);
  return std::move(w).take();
}

Resource dec_resource(const Bytes& b) {
  Reader r(b);
  Resource res;
  res.total = r.u32();
  res.avail = r.u32();
  res.price = r.i64();
  return res;
}

struct Reservation {
  std::uint8_t table = 0;
  std::uint32_t index = 0;
};

Bytes enc_customer(const std::vector<Reservation>& rs) {
  Writer w;
  encode_vec(w, rs, [](Writer& w2, const Reservation& r) {
    w2.u8(r.table);
    w2.u32(r.index);
  });
  return std::move(w).take();
}

std::vector<Reservation> dec_customer(const Bytes& b) {
  Reader r(b);
  return decode_vec<Reservation>(r, [](Reader& r2) {
    Reservation res;
    res.table = r2.u8();
    res.index = r2.u32();
    return res;
  });
}

enum class OpKind : std::uint8_t { kQuery, kReserve, kCancel };

}  // namespace

void VacationApp::setup(Cluster& cluster, const WorkloadParams& params,
                        Rng& rng) {
  QRDTM_CHECK(params.num_objects >= kCandidates);
  per_table_ = params.num_objects;
  tables_.assign(kTables, {});
  for (std::uint32_t t = 0; t < kTables; ++t) {
    tables_[t].reserve(per_table_);
    for (std::uint32_t i = 0; i < per_table_; ++i) {
      Resource r;
      r.total = static_cast<std::uint32_t>(rng.range(5, 10));
      r.avail = r.total;
      r.price = rng.range(50, 500);
      tables_[t].push_back(cluster.seed_new_object(enc_resource(r)));
    }
  }
  customers_.clear();
  customers_.reserve(params.num_objects);
  for (std::uint32_t i = 0; i < params.num_objects; ++i) {
    customers_.push_back(cluster.seed_new_object(enc_customer({})));
  }
}

TxnBody VacationApp::make_txn(const WorkloadParams& params, Rng& rng) {
  struct Op {
    OpKind kind;
    std::uint8_t table;
    std::uint32_t customer;
    std::array<std::uint32_t, kCandidates> candidates;
  };
  std::vector<Op> plan;
  plan.reserve(params.nested_calls);
  const std::uint32_t customer =
      static_cast<std::uint32_t>(rng.below(customers_.size()));
  for (std::uint32_t i = 0; i < params.nested_calls; ++i) {
    Op op;
    op.customer = customer;  // one itinerary per root transaction
    op.table = static_cast<std::uint8_t>(i % kTables);
    if (rng.chance(params.read_ratio)) {
      op.kind = OpKind::kQuery;
    } else {
      op.kind = rng.chance(0.8) ? OpKind::kReserve : OpKind::kCancel;
    }
    for (auto& cand : op.candidates) {
      cand = static_cast<std::uint32_t>(rng.below(per_table_));
    }
    plan.push_back(op);
  }
  const auto tables = tables_;  // shared table ids (cheap copies of vectors)
  const auto customers = customers_;
  const sim::Tick compute = params.op_compute;

  return [plan = std::move(plan), tables, customers,
          compute](Txn& t) -> sim::Task<void> {
    for (const Op& op : plan) {
      // The [&] lambda coroutine is safe here: nested() takes the closure by
      // value and is co_awaited within the same full expression, so the closure
      // and the by-reference captures (locals of this suspended coroutine
      // frame) both outlive the child.  qrdtm-lint: allow(coro-ref-capture)
      co_await t.nested([&](Txn& ct) -> sim::Task<void> {
        const auto& table = tables[op.table];
        switch (op.kind) {
          case OpKind::kQuery: {
            for (std::uint32_t idx : op.candidates) {
              (void)dec_resource(co_await ct.read(table[idx]));
            }
            co_await ct.compute(compute);
            break;
          }
          case OpKind::kReserve: {
            // Query candidates, pick the cheapest available.
            std::int64_t best_price = 0;
            std::uint32_t best_idx = 0;
            bool have = false;
            for (std::uint32_t idx : op.candidates) {
              Resource r = dec_resource(co_await ct.read(table[idx]));
              if (r.avail > 0 && (!have || r.price < best_price)) {
                have = true;
                best_price = r.price;
                best_idx = idx;
              }
            }
            co_await ct.compute(compute);
            if (!have) break;  // sold out: no write
            Resource r =
                dec_resource(co_await ct.read_for_write(table[best_idx]));
            if (r.avail == 0) break;  // raced within our own data-set
            r.avail -= 1;
            ct.write(table[best_idx], enc_resource(r));
            auto res = dec_customer(
                co_await ct.read_for_write(customers[op.customer]));
            res.push_back(Reservation{op.table, best_idx});
            ct.write(customers[op.customer], enc_customer(res));
            break;
          }
          case OpKind::kCancel: {
            auto res = dec_customer(
                co_await ct.read_for_write(customers[op.customer]));
            co_await ct.compute(compute);
            // Cancel the most recent reservation in this table, if any.
            auto it = std::find_if(
                res.rbegin(), res.rend(),
                [&](const Reservation& r) { return r.table == op.table; });
            if (it == res.rend()) break;
            const std::uint32_t idx = it->index;
            res.erase(std::next(it).base());
            ct.write(customers[op.customer], enc_customer(res));
            Resource r = dec_resource(co_await ct.read_for_write(table[idx]));
            r.avail += 1;
            ct.write(table[idx], enc_resource(r));
            break;
          }
        }
      });
    }
  };
}

TxnBody VacationApp::make_checker(bool* ok) {
  const auto tables = tables_;
  const auto customers = customers_;
  return [tables, customers, ok](Txn& t) -> sim::Task<void> {
    *ok = true;
    // Count reservations per resource across all customers.
    std::vector<std::vector<std::uint32_t>> reserved(tables.size());
    for (std::size_t tb = 0; tb < tables.size(); ++tb) {
      reserved[tb].assign(tables[tb].size(), 0);
    }
    for (ObjectId cust : customers) {
      for (const Reservation& r : dec_customer(co_await t.read(cust))) {
        if (r.table >= tables.size() || r.index >= reserved[r.table].size()) {
          *ok = false;
          co_return;
        }
        ++reserved[r.table][r.index];
      }
    }
    for (std::size_t tb = 0; tb < tables.size(); ++tb) {
      for (std::size_t i = 0; i < tables[tb].size(); ++i) {
        Resource r = dec_resource(co_await t.read(tables[tb][i]));
        if (r.avail > r.total) *ok = false;
        if (r.total - r.avail != reserved[tb][i]) *ok = false;
      }
    }
  };
}

}  // namespace qrdtm::apps
