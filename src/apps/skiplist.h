// Distributed SkipList (SList) micro-benchmark (paper §VI-C).
//
// Every tower (node) is one DTM object holding its key, value, height, and
// per-level successor ids; a sentinel head object holds the top-level entry
// pointers.  A search reads every node on the search path, so transactions
// get long read-sets -- the paper singles SList out as the benchmark with
// the longest transactions and the largest closed-nesting gains (+101 %).
//
// Tower heights are a deterministic function of the key (p = 1/2), keeping
// retried/replayed bodies deterministic without carrying RNG state.
#pragma once

#include "apps/app.h"

namespace qrdtm::apps {

class SkipListApp final : public App {
 public:
  std::string name() const override { return "slist"; }
  void setup(Cluster& cluster, const WorkloadParams& params,
             Rng& rng) override;
  TxnBody make_txn(const WorkloadParams& params, Rng& rng) override;
  TxnBody make_checker(bool* ok) override;

  static constexpr std::uint32_t kMaxLevel = 12;
  static std::uint32_t height_of(std::uint64_t key);

  enum class OpKind { kGet, kInsert, kRemove };
  static sim::Task<void> run_op(Txn& ct, ObjectId head, OpKind kind,
                                std::uint64_t key, std::int64_t value,
                                sim::Tick compute);

  /// Single-operation transaction bodies (tests and examples).
  TxnBody make_op(OpKind kind, std::uint64_t key, std::int64_t value);
  TxnBody make_lookup(std::uint64_t key, std::int64_t* value, bool* found);

  std::uint64_t key_space() const { return key_space_; }
  ObjectId head() const { return head_; }

 private:
  std::uint64_t key_space_ = 0;
  ObjectId head_ = store::kNullObject;
};

}  // namespace qrdtm::apps
