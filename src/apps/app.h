// Benchmark application interface.
//
// Each app is a distributed data structure (or STAMP-style application)
// built purely on the public DTM API: objects are serde blobs, navigation is
// by stored object ids, and every data-structure operation is wrapped in
// Txn::nested so it becomes one closed-nested transaction under QR-CN
// (paper §VI-C: "each CT is an operation on [the] data structure") while
// flattening transparently under flat QR and QR-CHK.
//
// Bodies produced by make_txn draw all their randomness *up front* (op
// kinds, keys, amounts), so a retried or replayed body re-executes
// deterministically given the values it reads.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/cluster.h"

namespace qrdtm::apps {

using core::Bytes;
using core::Cluster;
using core::ObjectId;
using core::Txn;
using core::TxnBody;

struct WorkloadParams {
  /// Fraction of data-structure operations that are read-only (paper Fig. 5
  /// sweeps this 0..1).
  double read_ratio = 0.2;
  /// Operations (closed-nested calls) per root transaction (Fig. 6 sweeps
  /// 1..5).
  std::uint32_t nested_calls = 3;
  /// Population size: accounts / keys / resources (Fig. 7 sweeps this).
  std::uint32_t num_objects = 64;
  /// Application compute charged per operation.
  sim::Tick op_compute = sim::usec(200);
};

class App {
 public:
  virtual ~App() = default;

  virtual std::string name() const = 0;

  /// Seed the initial data structure into every replica.  Must be called
  /// once, before any transactions run.
  virtual void setup(Cluster& cluster, const WorkloadParams& params,
                     Rng& rng) = 0;

  /// Produce one root-transaction body: `params.nested_calls` operations,
  /// each a closed-nested call.
  virtual TxnBody make_txn(const WorkloadParams& params, Rng& rng) = 0;

  /// Produce a read-only body that checks the structure's integrity
  /// invariants and writes the verdict to *ok (run it after the workload,
  /// with contention quiesced).
  virtual TxnBody make_checker(bool* ok) = 0;
};

/// Factory over the registered benchmark apps.
std::unique_ptr<App> make_app(const std::string& name);

/// Names accepted by make_app, in the paper's reporting order.
std::vector<std::string> app_names();

// --- small shared encoding helpers (serde payload schemas) ---

Bytes enc_i64(std::int64_t v);
std::int64_t dec_i64(const Bytes& b);

}  // namespace qrdtm::apps
