// Distributed (unbalanced) Binary Search Tree micro-benchmark.
//
// Used by the paper's failure experiment (Fig. 10).  Every tree node is one
// DTM object; a root-holder object anchors the tree.  Deletion is lazy (a
// tombstone flag) -- the standard TM-benchmark formulation that keeps
// structural writes to insert-only, as physical BST deletion would serialise
// whole-subtree rewrites.
#pragma once

#include "apps/app.h"

namespace qrdtm::apps {

class BstApp final : public App {
 public:
  std::string name() const override { return "bst"; }
  void setup(Cluster& cluster, const WorkloadParams& params,
             Rng& rng) override;
  TxnBody make_txn(const WorkloadParams& params, Rng& rng) override;
  TxnBody make_checker(bool* ok) override;

  enum class OpKind { kGet, kInsert, kRemove };
  static sim::Task<void> run_op(Txn& ct, ObjectId root_holder, OpKind kind,
                                std::uint64_t key, std::int64_t value,
                                sim::Tick compute);

  /// Single-operation transaction bodies (tests and examples).
  TxnBody make_op(OpKind kind, std::uint64_t key, std::int64_t value);
  TxnBody make_lookup(std::uint64_t key, std::int64_t* value, bool* found);

  std::uint64_t key_space() const { return key_space_; }
  ObjectId root_holder() const { return root_holder_; }

 private:
  std::uint64_t key_space_ = 0;
  ObjectId root_holder_ = store::kNullObject;
};

}  // namespace qrdtm::apps
