// Distributed Red-Black Tree micro-benchmark (paper §VI-C).
//
// Every tree node is one DTM object {key, value, color, left, right,
// parent, deleted}; a root-holder object anchors the tree.  Insertion is
// the full CLRS algorithm -- recolouring and rotations write every touched
// node, which concentrates write contention near the tree's upper levels.
// Deletion is lazy (tombstone), the standard TM-benchmark formulation.
//
// Operation-local reads/writes go through a node cache so each object is
// fetched at most once per operation and written exactly once at the end.
#pragma once

#include "apps/app.h"

namespace qrdtm::apps {

class RbTreeApp final : public App {
 public:
  std::string name() const override { return "rbtree"; }
  void setup(Cluster& cluster, const WorkloadParams& params,
             Rng& rng) override;
  TxnBody make_txn(const WorkloadParams& params, Rng& rng) override;
  TxnBody make_checker(bool* ok) override;

  enum class OpKind { kGet, kInsert, kRemove };
  static sim::Task<void> run_op(Txn& ct, ObjectId root_holder, OpKind kind,
                                std::uint64_t key, std::int64_t value,
                                sim::Tick compute);

  /// Single-operation transaction bodies (tests and examples).
  TxnBody make_op(OpKind kind, std::uint64_t key, std::int64_t value);
  TxnBody make_lookup(std::uint64_t key, std::int64_t* value, bool* found);

  std::uint64_t key_space() const { return key_space_; }
  ObjectId root_holder() const { return root_holder_; }

 private:
  std::uint64_t key_space_ = 0;
  ObjectId root_holder_ = store::kNullObject;
};

}  // namespace qrdtm::apps
