#include "apps/bst.h"

#include <functional>
#include <set>

#include "common/check.h"
#include "common/serde.h"

namespace qrdtm::apps {

namespace {

struct Node {
  std::uint64_t key = 0;
  std::int64_t value = 0;
  ObjectId left = store::kNullObject;
  ObjectId right = store::kNullObject;
  bool deleted = false;
};

Bytes enc_node(const Node& n) {
  Writer w;
  w.u64(n.key);
  w.i64(n.value);
  w.u64(n.left);
  w.u64(n.right);
  w.boolean(n.deleted);
  return std::move(w).take();
}

Node dec_node(const Bytes& b) {
  Reader r(b);
  Node n;
  n.key = r.u64();
  n.value = r.i64();
  n.left = r.u64();
  n.right = r.u64();
  n.deleted = r.boolean();
  return n;
}

Bytes enc_holder(ObjectId root) {
  Writer w;
  w.u64(root);
  return std::move(w).take();
}

ObjectId dec_holder(const Bytes& b) {
  Reader r(b);
  return r.u64();
}

}  // namespace

void BstApp::setup(Cluster& cluster, const WorkloadParams& params, Rng& rng) {
  QRDTM_CHECK(params.num_objects >= 1);
  key_space_ = static_cast<std::uint64_t>(params.num_objects) * 2;

  std::set<std::uint64_t> keys;
  while (keys.size() < params.num_objects) {
    keys.insert(rng.below(key_space_) + 1);
  }
  // Build a balanced tree from the sorted keys (recursive midpoint) so the
  // seeded structure starts with log-depth paths.
  std::vector<std::uint64_t> sorted(keys.begin(), keys.end());
  std::function<ObjectId(std::size_t, std::size_t)> build =
      [&](std::size_t lo, std::size_t hi) -> ObjectId {
    if (lo >= hi) return store::kNullObject;
    std::size_t mid = lo + (hi - lo) / 2;
    Node n;
    n.key = sorted[mid];
    n.value = static_cast<std::int64_t>(sorted[mid]);
    n.left = build(lo, mid);
    n.right = build(mid + 1, hi);
    return cluster.seed_new_object(enc_node(n));
  };
  ObjectId root = build(0, sorted.size());
  root_holder_ = cluster.seed_new_object(enc_holder(root));
}

sim::Task<void> BstApp::run_op(Txn& ct, ObjectId root_holder, OpKind kind,
                               std::uint64_t key, std::int64_t value,
                               sim::Tick compute) {
  ObjectId root = dec_holder(co_await ct.read(root_holder));

  // Walk to the key (or its would-be parent).
  ObjectId parent = store::kNullObject;
  Node parent_node{};
  ObjectId cur = root;
  Node cur_node{};
  bool found = false;
  while (cur != store::kNullObject) {
    cur_node = dec_node(co_await ct.read(cur));
    if (cur_node.key == key) {
      found = true;
      break;
    }
    parent = cur;
    parent_node = cur_node;
    cur = key < cur_node.key ? cur_node.left : cur_node.right;
  }
  co_await ct.compute(compute);

  switch (kind) {
    case OpKind::kGet:
      break;
    case OpKind::kInsert:
      if (found) {
        (void)co_await ct.read_for_write(cur);
        cur_node.value = value;
        cur_node.deleted = false;
        ct.write(cur, enc_node(cur_node));
      } else {
        Node fresh;
        fresh.key = key;
        fresh.value = value;
        ObjectId fresh_id = ct.create(enc_node(fresh));
        if (parent == store::kNullObject) {
          (void)co_await ct.read_for_write(root_holder);
          ct.write(root_holder, enc_holder(fresh_id));
        } else {
          (void)co_await ct.read_for_write(parent);
          if (key < parent_node.key) {
            parent_node.left = fresh_id;
          } else {
            parent_node.right = fresh_id;
          }
          ct.write(parent, enc_node(parent_node));
        }
      }
      break;
    case OpKind::kRemove:
      if (found && !cur_node.deleted) {
        (void)co_await ct.read_for_write(cur);
        cur_node.deleted = true;
        ct.write(cur, enc_node(cur_node));
      }
      break;
  }
}

TxnBody BstApp::make_txn(const WorkloadParams& params, Rng& rng) {
  struct Op {
    OpKind kind;
    std::uint64_t key;
    std::int64_t value;
  };
  std::vector<Op> plan;
  plan.reserve(params.nested_calls);
  for (std::uint32_t i = 0; i < params.nested_calls; ++i) {
    Op op;
    if (rng.chance(params.read_ratio)) {
      op.kind = OpKind::kGet;
    } else {
      op.kind = rng.chance(0.5) ? OpKind::kInsert : OpKind::kRemove;
    }
    op.key = rng.below(key_space_) + 1;
    op.value = rng.range(0, 1 << 20);
    plan.push_back(op);
  }
  const ObjectId holder = root_holder_;
  const sim::Tick compute = params.op_compute;

  return [plan = std::move(plan), holder, compute](Txn& t) -> sim::Task<void> {
    for (const Op& op : plan) {
      // The [&] lambda coroutine is safe here: nested() takes the closure by
      // value and is co_awaited within the same full expression, so the closure
      // and the by-reference captures (locals of this suspended coroutine
      // frame) both outlive the child.  qrdtm-lint: allow(coro-ref-capture)
      co_await t.nested([&](Txn& ct) -> sim::Task<void> {
        co_await run_op(ct, holder, op.kind, op.key, op.value, compute);
      });
    }
  };
}

TxnBody BstApp::make_op(OpKind kind, std::uint64_t key, std::int64_t value) {
  const ObjectId holder = root_holder_;
  return [holder, kind, key, value](Txn& t) -> sim::Task<void> {
    // Safe for the same reason as above.  qrdtm-lint: allow(coro-ref-capture)
    co_await t.nested([&](Txn& ct) -> sim::Task<void> {
      co_await run_op(ct, holder, kind, key, value, /*compute=*/0);
    });
  };
}

TxnBody BstApp::make_lookup(std::uint64_t key, std::int64_t* value,
                            bool* found) {
  const ObjectId holder = root_holder_;
  return [holder, key, value, found](Txn& t) -> sim::Task<void> {
    *found = false;
    ObjectId cur = dec_holder(co_await t.read(holder));
    while (cur != store::kNullObject) {
      Node n = dec_node(co_await t.read(cur));
      if (n.key == key) {
        if (!n.deleted) {
          *found = true;
          *value = n.value;
        }
        break;
      }
      cur = key < n.key ? n.left : n.right;
    }
  };
}

TxnBody BstApp::make_checker(bool* ok) {
  const ObjectId holder = root_holder_;
  return [holder, ok](Txn& t) -> sim::Task<void> {
    *ok = true;
    // Iterative bounded DFS verifying the search-tree property.
    struct Frame {
      ObjectId id;
      std::uint64_t lo, hi;  // exclusive bounds; 0 = unbounded
    };
    std::vector<Frame> stack;
    ObjectId root = dec_holder(co_await t.read(holder));
    if (root != store::kNullObject) stack.push_back({root, 0, 0});
    std::set<std::uint64_t> seen;
    std::size_t steps = 0;
    while (!stack.empty()) {
      Frame f = stack.back();
      stack.pop_back();
      if (++steps > 1000000) {
        *ok = false;
        break;
      }
      Node n = dec_node(co_await t.read(f.id));
      if ((f.lo != 0 && n.key <= f.lo) || (f.hi != 0 && n.key >= f.hi)) {
        *ok = false;
      }
      if (!seen.insert(n.key).second) *ok = false;
      if (n.left != store::kNullObject) stack.push_back({n.left, f.lo, n.key});
      if (n.right != store::kNullObject) {
        stack.push_back({n.right, n.key, f.hi});
      }
    }
  };
}

}  // namespace qrdtm::apps
