// Vacation macro-benchmark: a travel-reservation system after STAMP's
// `vacation` (paper §VI-B/C), rebuilt from scratch on the DTM API.
//
// State: three resource tables (cars, rooms, flights) of `num_objects`
// resources each -- a resource object is {total, avail, price} -- plus one
// customer object per customer holding its reservation list.
//
// Operations (one per closed-nested call, matching the paper: "each of the
// reservations for car, hotel and flight forms a CT"):
//   * reserve -- query a few candidate resources of one table, pick the
//     cheapest with availability, decrement it, append to the customer;
//   * cancel  -- drop the customer's most recent reservation in the table
//     and return the unit;
//   * query   -- read-only price/availability check of candidates.
// Invariant: for every resource, total - avail equals the number of
// reservations of it across all customers.
#pragma once

#include "apps/app.h"

namespace qrdtm::apps {

class VacationApp final : public App {
 public:
  std::string name() const override { return "vacation"; }
  void setup(Cluster& cluster, const WorkloadParams& params,
             Rng& rng) override;
  TxnBody make_txn(const WorkloadParams& params, Rng& rng) override;
  TxnBody make_checker(bool* ok) override;

  static constexpr std::uint32_t kTables = 3;  // car, room, flight
  static constexpr std::uint32_t kCandidates = 2;

 private:
  std::uint32_t per_table_ = 0;
  std::vector<std::vector<ObjectId>> tables_;  // [table][index] -> resource
  std::vector<ObjectId> customers_;
};

}  // namespace qrdtm::apps
