#include "apps/app.h"

#include "apps/bank.h"
#include "apps/bst.h"
#include "apps/hashmap.h"
#include "apps/rbtree.h"
#include "apps/skiplist.h"
#include "apps/vacation.h"
#include "common/check.h"
#include "common/serde.h"

namespace qrdtm::apps {

Bytes enc_i64(std::int64_t v) {
  Writer w;
  w.i64(v);
  return std::move(w).take();
}

std::int64_t dec_i64(const Bytes& b) {
  Reader r(b);
  return r.i64();
}

std::unique_ptr<App> make_app(const std::string& name) {
  if (name == "bank") return std::make_unique<BankApp>();
  if (name == "hashmap") return std::make_unique<HashmapApp>();
  if (name == "slist") return std::make_unique<SkipListApp>();
  if (name == "rbtree") return std::make_unique<RbTreeApp>();
  if (name == "bst") return std::make_unique<BstApp>();
  if (name == "vacation") return std::make_unique<VacationApp>();
  QRDTM_CHECK_MSG(false, "unknown app: " + name);
  return nullptr;
}

std::vector<std::string> app_names() {
  // The paper's reporting order (Fig. 5-8); bst is Fig. 10 only.
  return {"bank", "hashmap", "slist", "rbtree", "vacation", "bst"};
}

}  // namespace qrdtm::apps
