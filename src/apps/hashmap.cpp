#include "apps/hashmap.h"

#include <set>

#include "common/check.h"
#include "common/serde.h"

namespace qrdtm::apps {

namespace {

// Bucket head payload: {first_entry_id}.
Bytes enc_head(ObjectId first) {
  Writer w;
  w.u64(first);
  return std::move(w).take();
}
ObjectId dec_head(const Bytes& b) {
  Reader r(b);
  return r.u64();
}

// Entry payload: {key, value, next_entry_id}.
struct Entry {
  std::uint64_t key;
  std::int64_t value;
  ObjectId next;
};
Bytes enc_entry(const Entry& e) {
  Writer w;
  w.u64(e.key);
  w.i64(e.value);
  w.u64(e.next);
  return std::move(w).take();
}
Entry dec_entry(const Bytes& b) {
  Reader r(b);
  Entry e;
  e.key = r.u64();
  e.value = r.i64();
  e.next = r.u64();
  return e;
}

std::uint32_t bucket_of(std::uint64_t key, std::uint32_t num_buckets) {
  // Cheap integer mix so sequential keys spread.
  std::uint64_t x = key * 0x9e3779b97f4a7c15ULL;
  return static_cast<std::uint32_t>((x >> 33) % num_buckets);
}

}  // namespace

void HashmapApp::setup(Cluster& cluster, const WorkloadParams& params,
                       Rng& rng) {
  QRDTM_CHECK(params.num_objects >= 1);
  key_space_ = static_cast<std::uint64_t>(params.num_objects) * 2;
  buckets_.clear();

  // Choose the initial key population, then build the chains directly in
  // the seeded stores (setup bypasses the protocol).
  std::set<std::uint64_t> keys;
  while (keys.size() < params.num_objects) {
    keys.insert(rng.below(key_space_) + 1);
  }
  std::vector<std::vector<std::uint64_t>> chains(num_buckets_);
  for (std::uint64_t k : keys) {
    chains[bucket_of(k, num_buckets_)].push_back(k);
  }

  for (std::uint32_t b = 0; b < num_buckets_; ++b) {
    ObjectId next = store::kNullObject;
    for (std::uint64_t k : chains[b]) {
      next = cluster.seed_new_object(
          enc_entry(Entry{k, static_cast<std::int64_t>(k), next}));
    }
    buckets_.push_back(cluster.seed_new_object(enc_head(next)));
  }
}

namespace {
/// Shared implementation: walk, (optionally) record prior state, mutate.
sim::Task<void> run_op_impl(Txn& ct, const std::vector<ObjectId>& buckets,
                            std::uint32_t num_buckets, HashmapApp::OpKind kind,
                            std::uint64_t key, std::int64_t value,
                            sim::Tick compute, HashmapApp::Undo* undo) {
  using OpKind = HashmapApp::OpKind;
  const ObjectId head = buckets[bucket_of(key, num_buckets)];
  ObjectId first = dec_head(co_await ct.read(head));

  // Walk the chain, tracking the predecessor for unlinking.
  ObjectId prev = store::kNullObject;
  ObjectId cur = first;
  Entry cur_entry{};
  bool found = false;
  while (cur != store::kNullObject) {
    cur_entry = dec_entry(co_await ct.read(cur));
    if (cur_entry.key == key) {
      found = true;
      break;
    }
    prev = cur;
    cur = cur_entry.next;
  }
  co_await ct.compute(compute);

  if (undo != nullptr) {
    undo->mutated = kind != OpKind::kGet;
    undo->existed = found;
    undo->old_value = found ? cur_entry.value : 0;
  }

  switch (kind) {
    case OpKind::kGet:
      break;  // value (if any) already read
    case OpKind::kInsert:
      if (found) {
        (void)co_await ct.read_for_write(cur);  // local upgrade
        ct.write(cur, enc_entry(Entry{key, value, cur_entry.next}));
      } else {
        ObjectId fresh = ct.create(enc_entry(Entry{key, value, first}));
        (void)co_await ct.read_for_write(head);
        ct.write(head, enc_head(fresh));
      }
      break;
    case OpKind::kRemove:
      if (found) {
        if (prev == store::kNullObject) {
          (void)co_await ct.read_for_write(head);
          ct.write(head, enc_head(cur_entry.next));
        } else {
          Entry prev_entry = dec_entry(co_await ct.read_for_write(prev));
          prev_entry.next = cur_entry.next;
          ct.write(prev, enc_entry(prev_entry));
        }
      }
      break;
  }
}
}  // namespace

sim::Task<void> HashmapApp::run_op(Txn& ct,
                                   const std::vector<ObjectId>& buckets,
                                   std::uint32_t num_buckets, OpKind kind,
                                   std::uint64_t key, std::int64_t value,
                                   sim::Tick compute) {
  co_await run_op_impl(ct, buckets, num_buckets, kind, key, value, compute,
                       nullptr);
}

sim::Task<void> HashmapApp::run_op_recording(
    Txn& ct, const std::vector<ObjectId>& buckets, std::uint32_t num_buckets,
    OpKind kind, std::uint64_t key, std::int64_t value, sim::Tick compute,
    Undo* undo) {
  co_await run_op_impl(ct, buckets, num_buckets, kind, key, value, compute,
                       undo);
}

TxnBody HashmapApp::make_txn_open(const WorkloadParams& params, Rng& rng) {
  struct Op {
    OpKind kind;
    std::uint64_t key;
    std::int64_t value;
  };
  std::vector<Op> plan;
  plan.reserve(params.nested_calls);
  for (std::uint32_t i = 0; i < params.nested_calls; ++i) {
    Op op;
    if (rng.chance(params.read_ratio)) {
      op.kind = OpKind::kGet;
    } else {
      op.kind = rng.chance(0.5) ? OpKind::kInsert : OpKind::kRemove;
    }
    op.key = rng.below(key_space_) + 1;
    op.value = rng.range(0, 1 << 20);
    plan.push_back(op);
  }
  const std::vector<ObjectId> buckets = buckets_;
  const std::uint32_t nb = num_buckets_;
  const sim::Tick compute = params.op_compute;

  return [plan = std::move(plan), buckets, nb, compute](Txn& t)
             -> sim::Task<void> {
    for (const Op& op : plan) {
      auto undo = std::make_shared<Undo>();
      core::OpenOp open;
      open.locks = {op.key};  // semantic entity: the key
      // Capture by VALUE: the compensation is stored in the root's open
      // log and may run after this body coroutine's frame is gone.
      open.body = [undo, buckets, nb, op, compute](Txn& ot)
          -> sim::Task<void> {
        co_await run_op_impl(ot, buckets, nb, op.kind, op.key, op.value,
                             compute, undo.get());
      };
      if (op.kind != OpKind::kGet) {
        // Restore the recorded prior state of the key.  Safe because the
        // abstract lock shuts out every other root until this one settles.
        open.compensation = [undo, buckets, nb, key = op.key](Txn& comp)
            -> sim::Task<void> {
          if (!undo->mutated) co_return;
          if (undo->existed) {
            co_await run_op_impl(comp, buckets, nb, OpKind::kInsert, key,
                                 undo->old_value, 0, nullptr);
          } else {
            co_await run_op_impl(comp, buckets, nb, OpKind::kRemove, key, 0,
                                 0, nullptr);
          }
        };
      }
      co_await t.open_nested(std::move(open));
    }
  };
}

TxnBody HashmapApp::make_txn(const WorkloadParams& params, Rng& rng) {
  struct Op {
    OpKind kind;
    std::uint64_t key;
    std::int64_t value;
  };
  std::vector<Op> plan;
  plan.reserve(params.nested_calls);
  for (std::uint32_t i = 0; i < params.nested_calls; ++i) {
    Op op;
    if (rng.chance(params.read_ratio)) {
      op.kind = OpKind::kGet;
    } else {
      op.kind = rng.chance(0.5) ? OpKind::kInsert : OpKind::kRemove;
    }
    op.key = rng.below(key_space_) + 1;
    op.value = rng.range(0, 1 << 20);
    plan.push_back(op);
  }
  const std::vector<ObjectId>& buckets = buckets_;
  const std::uint32_t nb = num_buckets_;
  const sim::Tick compute = params.op_compute;

  return [plan = std::move(plan), buckets, nb, compute](Txn& t)
             -> sim::Task<void> {
    for (const Op& op : plan) {
      // The [&] lambda coroutine is safe here: nested() takes the closure by
      // value and is co_awaited within the same full expression, so the closure
      // and the by-reference captures (locals of this suspended coroutine
      // frame) both outlive the child.  qrdtm-lint: allow(coro-ref-capture)
      co_await t.nested([&](Txn& ct) -> sim::Task<void> {
        co_await run_op(ct, buckets, nb, op.kind, op.key, op.value, compute);
      });
    }
  };
}

TxnBody HashmapApp::make_op(OpKind kind, std::uint64_t key,
                            std::int64_t value) {
  const std::vector<ObjectId> buckets = buckets_;
  const std::uint32_t nb = num_buckets_;
  return [buckets, nb, kind, key, value](Txn& t) -> sim::Task<void> {
    // Safe for the same reason as above.  qrdtm-lint: allow(coro-ref-capture)
    co_await t.nested([&](Txn& ct) -> sim::Task<void> {
      co_await run_op(ct, buckets, nb, kind, key, value, /*compute=*/0);
    });
  };
}

TxnBody HashmapApp::make_lookup(std::uint64_t key, std::int64_t* value,
                                bool* found) {
  const std::vector<ObjectId> buckets = buckets_;
  const std::uint32_t nb = num_buckets_;
  return [buckets, nb, key, value, found](Txn& t) -> sim::Task<void> {
    *found = false;
    ObjectId cur = dec_head(co_await t.read(buckets[bucket_of(key, nb)]));
    while (cur != store::kNullObject) {
      Entry e = dec_entry(co_await t.read(cur));
      if (e.key == key) {
        *found = true;
        *value = e.value;
        break;
      }
      cur = e.next;
    }
  };
}

TxnBody HashmapApp::make_checker(bool* ok) {
  const std::vector<ObjectId> buckets = buckets_;
  const std::uint32_t nb = num_buckets_;
  return [buckets, nb, ok](Txn& t) -> sim::Task<void> {
    *ok = true;
    std::set<std::uint64_t> seen;
    for (std::uint32_t b = 0; b < buckets.size(); ++b) {
      ObjectId cur = dec_head(co_await t.read(buckets[b]));
      std::size_t steps = 0;
      while (cur != store::kNullObject) {
        Entry e = dec_entry(co_await t.read(cur));
        if (bucket_of(e.key, nb) != b) *ok = false;      // key in right chain
        if (!seen.insert(e.key).second) *ok = false;     // no duplicates
        if (++steps > 1000000) {
          *ok = false;  // cycle
          break;
        }
        cur = e.next;
      }
    }
  };
}

}  // namespace qrdtm::apps
