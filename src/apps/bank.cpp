#include "apps/bank.h"

#include "common/check.h"

namespace qrdtm::apps {

void BankApp::setup(Cluster& cluster, const WorkloadParams& params, Rng&) {
  QRDTM_CHECK(params.num_objects >= 2);
  accounts_.clear();
  accounts_.reserve(params.num_objects);
  for (std::uint32_t i = 0; i < params.num_objects; ++i) {
    accounts_.push_back(cluster.seed_new_object(enc_i64(kInitialBalance)));
  }
}

TxnBody BankApp::make_txn(const WorkloadParams& params, Rng& rng) {
  struct Op {
    bool is_read;
    ObjectId a, b;
    std::int64_t amount;
  };
  // Draw the whole plan up front: bodies must be deterministic on retry.
  std::vector<Op> plan;
  plan.reserve(params.nested_calls);
  for (std::uint32_t i = 0; i < params.nested_calls; ++i) {
    Op op;
    op.is_read = rng.chance(params.read_ratio);
    std::uint64_t ai = rng.below(accounts_.size());
    std::uint64_t bi = rng.below(accounts_.size() - 1);
    if (bi >= ai) ++bi;  // distinct accounts
    op.a = accounts_[ai];
    op.b = accounts_[bi];
    op.amount = rng.range(1, 10);
    plan.push_back(op);
  }
  const sim::Tick compute = params.op_compute;

  return [plan = std::move(plan), compute](Txn& t) -> sim::Task<void> {
    for (const Op& op : plan) {
      // The [&] lambda coroutine is safe here: nested() takes the closure by
      // value and is co_awaited within the same full expression, so the closure
      // and the by-reference captures (locals of this suspended coroutine
      // frame) both outlive the child.  qrdtm-lint: allow(coro-ref-capture)
      co_await t.nested([&op, compute](Txn& ct) -> sim::Task<void> {
        if (op.is_read) {
          std::int64_t total = dec_i64(co_await ct.read(op.a)) +
                               dec_i64(co_await ct.read(op.b));
          (void)total;
          co_await ct.compute(compute);
        } else {
          std::int64_t from = dec_i64(co_await ct.read_for_write(op.a));
          std::int64_t to = dec_i64(co_await ct.read_for_write(op.b));
          co_await ct.compute(compute);
          ct.write(op.a, enc_i64(from - op.amount));
          ct.write(op.b, enc_i64(to + op.amount));
        }
      });
    }
  };
}

TxnBody BankApp::make_checker(bool* ok) {
  const std::vector<ObjectId> accounts = accounts_;
  return [accounts, ok](Txn& t) -> sim::Task<void> {
    std::int64_t total = 0;
    for (ObjectId a : accounts) {
      total += dec_i64(co_await t.read(a));
    }
    *ok = (total == static_cast<std::int64_t>(accounts.size()) *
                        BankApp::kInitialBalance);
  };
}

}  // namespace qrdtm::apps
