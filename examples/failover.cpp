// Fault-tolerance demo (paper §VI-D): a 28-node cluster with the
// failure-aware quorum policy keeps committing bank transfers while nodes
// fail-stop one by one; balances stay conserved throughout.
//
// Failures here are SILENT -- nothing tells the quorum policy a node died.
// The timeout-based failure detector discovers each death from consecutive
// RPC timeouts and reconfigures the quorums around it.
//
//   $ ./build/examples/failover
#include <cstdio>

#include "apps/bank.h"
#include "core/cluster.h"

using namespace qrdtm;
using core::Cluster;
using core::ClusterConfig;
using core::Txn;

int main() {
  ClusterConfig cfg;
  cfg.num_nodes = 28;
  cfg.quorum = core::QuorumKind::kFlatFailureAware;
  cfg.runtime.mode = core::NestingMode::kClosed;
  cfg.runtime.rpc_timeout = sim::msec(200);
  cfg.failure_detection_threshold = 3;
  cfg.seed = 99;
  Cluster cluster(cfg);

  apps::BankApp bank;
  apps::WorkloadParams params;
  params.num_objects = 32;
  params.read_ratio = 0.2;
  Rng setup_rng(99);
  bank.setup(cluster, params, setup_rng);

  // Twelve clients on low-numbered (surviving) nodes.
  for (net::NodeId n = 0; n < 12; ++n) {
    cluster.spawn_loop_client(
        n, [&](Rng& rng) { return bank.make_txn(params, rng); });
  }

  // Fail one node every 4 simulated seconds, killing six in total, and
  // sample throughput between failures.
  std::printf("t(s)  killed  suspected  commits-so-far\n");
  std::uint64_t last_commits = 0;
  for (int f = 0; f <= 6; ++f) {
    cluster.advance_for(sim::sec(4));
    std::uint64_t commits = cluster.metrics().commits;
    std::printf("%4.0f %7d %10zu %15llu  (+%llu)\n",
                sim::to_seconds(cluster.duration()), f,
                cluster.suspected_nodes(),
                static_cast<unsigned long long>(commits),
                static_cast<unsigned long long>(commits - last_commits));
    last_commits = commits;
    if (f < 6) {
      cluster.kill_node(static_cast<net::NodeId>(27 - f),
                        /*notify_provider=*/false);  // silent fail-stop
    }
  }
  cluster.simulator().request_stop();
  cluster.run_to_completion();

  bool ok = false;
  cluster.spawn_client(0, bank.make_checker(&ok));
  cluster.run_to_completion();
  std::printf("\nafter 6 fail-stops: %llu total commits, balances %s\n",
              static_cast<unsigned long long>(cluster.metrics().commits),
              ok ? "conserved" : "CORRUPTED");
  return ok ? 0 : 1;
}
