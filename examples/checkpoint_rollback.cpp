// Checkpointing demo (QR-CHK, paper §IV): a long transaction reads a chain
// of objects, a conflicting writer invalidates one in the middle, and the
// transaction rolls back to the checkpoint holding the last valid prefix
// instead of restarting from scratch.
//
// Prints the checkpoint count, the rollback target, and the remote-read
// savings versus a flat restart.
#include <cstdio>
#include <vector>

#include "common/serde.h"
#include "core/cluster.h"

using namespace qrdtm;
using core::Cluster;
using core::ClusterConfig;
using core::ObjectId;
using core::Txn;

namespace {

Bytes enc_i64(std::int64_t v) {
  Writer w;
  w.i64(v);
  return std::move(w).take();
}

std::int64_t dec_i64(const Bytes& b) {
  Reader r(b);
  return r.i64();
}

struct RunStats {
  std::uint64_t remote_reads;
  std::uint64_t full_aborts;
  std::uint64_t partial_rollbacks;
  std::int64_t total;
};

RunStats run(core::NestingMode mode) {
  ClusterConfig cfg;
  cfg.num_nodes = 13;
  cfg.runtime.mode = mode;
  cfg.runtime.chk_threshold = 2;  // checkpoint every 2 objects
  cfg.runtime.chk_create_cost = 0;
  cfg.runtime.chk_create_cost_per_obj = 0;
  cfg.runtime.chk_restore_cost = 0;
  cfg.seed = 12;
  Cluster cluster(cfg);

  constexpr int kChain = 10;
  std::vector<ObjectId> chain;
  for (int i = 0; i < kChain; ++i) {
    chain.push_back(cluster.seed_new_object(enc_i64(i)));
  }

  std::int64_t total = 0;
  std::uint64_t checkpoints = 0;
  cluster.spawn_client(1, [&, chain](Txn& t) -> sim::Task<void> {
    total = 0;
    for (ObjectId o : chain) {
      total += dec_i64(co_await t.read(o));
      co_await t.compute(sim::msec(40));  // per-object processing
    }
    checkpoints = t.checkpoints_taken();
  });

  // A conflicting writer bumps object #7 while the reader is around
  // object #8-9: under QR-CHK the reader rolls back to the checkpoint that
  // still holds objects 0..6; under flat it restarts entirely.
  cluster.simulator().schedule_at(sim::msec(560), [&cluster, &chain] {
    for (net::NodeId n = 0; n < cluster.num_nodes(); ++n) {
      cluster.server(n).store().apply(chain[7], 2, enc_i64(700));
    }
  });

  cluster.run_to_completion();
  return RunStats{cluster.metrics().remote_reads,
                  cluster.metrics().root_aborts,
                  cluster.metrics().partial_rollbacks, total};
}

}  // namespace

int main() {
  std::printf(
      "QR-CHK demo: 10-object chain scan, conflicting write on object #7\n\n");
  RunStats flat = run(core::NestingMode::kFlat);
  RunStats chk = run(core::NestingMode::kCheckpoint);

  std::printf(
      "flat       : %llu remote reads, %llu full aborts (restart rereads "
      "everything)\n",
      static_cast<unsigned long long>(flat.remote_reads),
      static_cast<unsigned long long>(flat.full_aborts));
  std::printf(
      "checkpoint : %llu remote reads, %llu partial rollbacks, %llu full "
      "aborts\n",
      static_cast<unsigned long long>(chk.remote_reads),
      static_cast<unsigned long long>(chk.partial_rollbacks),
      static_cast<unsigned long long>(chk.full_aborts));
  std::printf(
      "\nthe rollback kept the validated prefix: only the invalidated suffix "
      "was re-read\n(flat saw the stale #7 and was aborted by commit-time "
      "validation).\n");
  std::printf("totals observed: flat=%lld chk=%lld (both must include the "
              "fresh value 700)\n",
              static_cast<long long>(flat.total),
              static_cast<long long>(chk.total));

  const std::int64_t expected = 0 + 1 + 2 + 3 + 4 + 5 + 6 + 700 + 8 + 9;
  return (flat.total == expected && chk.total == expected &&
          chk.remote_reads < flat.remote_reads && chk.partial_rollbacks >= 1)
             ? 0
             : 1;
}
