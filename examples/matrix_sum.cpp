// The paper's motivating example (Fig. 1 / Fig. 2): summing three matrices
// m1 + m2 + m3 while a conflicting transaction modifies m3 mid-flight.
//
//   * Flat nesting: the conflict aborts the WHOLE transaction; the retry
//     re-fetches m1 and m2 although they never changed.
//   * Closed nesting: only the inner transaction (which reads m3) retries;
//     m1 and m2 stay merged in the parent -- fewer remote calls.
//
// The example prints the remote-read counts for both modes so the saving is
// visible, exactly as the paper argues in §I-A.
#include <cstdio>
#include <numeric>
#include <vector>

#include "common/serde.h"
#include "core/cluster.h"

using namespace qrdtm;
using core::Cluster;
using core::ClusterConfig;
using core::ObjectId;
using core::Txn;

namespace {

// A "matrix" object: a vector of i64 cells.
Bytes enc_matrix(const std::vector<std::int64_t>& cells) {
  Writer w;
  encode_vec(w, cells, [](Writer& w2, std::int64_t v) { w2.i64(v); });
  return std::move(w).take();
}

std::vector<std::int64_t> dec_matrix(const Bytes& b) {
  Reader r(b);
  return decode_vec<std::int64_t>(r, [](Reader& r2) { return r2.i64(); });
}

std::vector<std::int64_t> add(const std::vector<std::int64_t>& x,
                              const std::vector<std::int64_t>& y) {
  std::vector<std::int64_t> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] + y[i];
  return out;
}

struct RunStats {
  std::uint64_t remote_reads;
  std::int64_t checksum;
  double seconds;
};

RunStats run(core::NestingMode mode) {
  ClusterConfig cfg;
  cfg.num_nodes = 13;
  cfg.runtime.mode = mode;
  cfg.seed = 7;
  Cluster cluster(cfg);

  const std::vector<std::int64_t> m1_cells(16, 1);
  const std::vector<std::int64_t> m2_cells(16, 2);
  const std::vector<std::int64_t> m3_cells(16, 4);
  ObjectId m1 = cluster.seed_new_object(enc_matrix(m1_cells));
  ObjectId m2 = cluster.seed_new_object(enc_matrix(m2_cells));
  ObjectId m3 = cluster.seed_new_object(enc_matrix(m3_cells));
  ObjectId result = cluster.seed_new_object(enc_matrix({}));

  // T_parent / T_closed from paper Fig. 2: parent adds m1+m2 (slow compute),
  // the closed-nested transaction adds the intermediate and m3.
  cluster.spawn_client(1, [=](Txn& t) -> sim::Task<void> {
    auto a = dec_matrix(co_await t.read(m1));
    auto b = dec_matrix(co_await t.read(m2));
    co_await t.compute(sim::msec(120));  // add(m1, m2)
    auto intm = add(a, b);
    co_await t.nested([&, m3, result](Txn& ct) -> sim::Task<void> {
      auto c = dec_matrix(co_await ct.read(m3));
      co_await ct.compute(sim::msec(120));  // add(intm, m3)
      auto sum = add(intm, c);
      (void)co_await ct.read_for_write(result);
      ct.write(result, enc_matrix(sum));
    });
  });

  // The conflicting transaction T_c commits a new m3 after T_closed has
  // read it but before it finishes (delivered as a committed write on every
  // replica), exactly the paper's scenario.
  cluster.simulator().schedule_at(sim::msec(250), [&cluster, m3] {
    std::vector<std::int64_t> bumped(16, 40);
    for (net::NodeId n = 0; n < cluster.num_nodes(); ++n) {
      cluster.server(n).store().apply(m3, 2, enc_matrix(bumped));
    }
  });

  cluster.run_to_completion();

  std::int64_t checksum = 0;
  cluster.spawn_client(0, [&](Txn& t) -> sim::Task<void> {
    auto cells = dec_matrix(co_await t.read(result));
    checksum = std::accumulate(cells.begin(), cells.end(), std::int64_t{0});
  });
  cluster.run_to_completion();

  return RunStats{cluster.metrics().remote_reads, checksum,
                  sim::to_seconds(cluster.duration())};
}

}  // namespace

int main() {
  std::printf("paper Fig. 1/2: m1+m2+m3 with a concurrent writer on m3\n\n");
  RunStats flat = run(core::NestingMode::kFlat);
  RunStats closed = run(core::NestingMode::kClosed);

  std::printf("flat nesting   : %llu remote reads, result checksum %lld\n",
              static_cast<unsigned long long>(flat.remote_reads),
              static_cast<long long>(flat.checksum));
  std::printf("closed nesting : %llu remote reads, result checksum %lld\n",
              static_cast<unsigned long long>(closed.remote_reads),
              static_cast<long long>(closed.checksum));
  std::printf(
      "\nclosed nesting saved %lld remote reads: the retry re-read only m3,\n"
      "not the unchanged m1 and m2 (paper §I-A).\n",
      static_cast<long long>(flat.remote_reads) -
          static_cast<long long>(closed.remote_reads));
  // Both must compute 1+2+40 = 43 per cell, 16 cells.
  return (flat.checksum == 43 * 16 && closed.checksum == 43 * 16 &&
          closed.remote_reads < flat.remote_reads)
             ? 0
             : 1;
}
