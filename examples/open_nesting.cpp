// Open nesting (QR-ON) walkthrough: early global commits, abstract locks,
// and compensation.
//
// A travel booking: the root reserves a flight and a hotel as open-nested
// operations (each visible to the world the moment it completes), then
// tries to charge the customer's card.  The charge conflicts and the root
// aborts -- the compensations cancel the two reservations, and the retry
// rebooks everything consistently.
//
//   $ ./build/examples/open_nesting
#include <cstdio>

#include "common/serde.h"
#include "core/cluster.h"

using namespace qrdtm;
using core::Cluster;
using core::ClusterConfig;
using core::ObjectId;
using core::OpenOp;
using core::Txn;

namespace {

Bytes enc_i64(std::int64_t v) {
  Writer w;
  w.i64(v);
  return std::move(w).take();
}

std::int64_t dec_i64(const Bytes& b) {
  Reader r(b);
  return r.i64();
}

core::TxnBody adjust(ObjectId obj, std::int64_t delta) {
  return [obj, delta](Txn& t) -> sim::Task<void> {
    std::int64_t v = dec_i64(co_await t.read_for_write(obj));
    t.write(obj, enc_i64(v + delta));
  };
}

}  // namespace

int main() {
  ClusterConfig cfg;
  cfg.num_nodes = 13;
  cfg.seed = 4242;
  Cluster cluster(cfg);

  ObjectId flight_seats = cluster.seed_new_object(enc_i64(10));
  ObjectId hotel_rooms = cluster.seed_new_object(enc_i64(10));
  ObjectId card_balance = cluster.seed_new_object(enc_i64(1000));

  std::int64_t seats_seen_mid_booking = -1;
  int attempts = 0;

  cluster.spawn_client(1, [&](Txn& t) -> sim::Task<void> {
    ++attempts;
    // Reserve the flight seat: commits globally NOW, lock "flight" held
    // until the whole booking settles.
    OpenOp reserve_flight;
    reserve_flight.locks = {1001};
    reserve_flight.body = adjust(flight_seats, -1);
    reserve_flight.compensation = adjust(flight_seats, +1);
    co_await t.open_nested(std::move(reserve_flight));

    OpenOp reserve_hotel;
    reserve_hotel.locks = {1002};
    reserve_hotel.body = adjust(hotel_rooms, -1);
    reserve_hotel.compensation = adjust(hotel_rooms, +1);
    co_await t.open_nested(std::move(reserve_hotel));

    // Charge the card directly (memory-level work of the root).
    std::int64_t bal = dec_i64(co_await t.read_for_write(card_balance));
    t.write(card_balance, enc_i64(bal - 300));
    if (attempts == 1) {
      co_await t.compute(sim::msec(400));  // the card processor dawdles...
    }
  });

  // While the first attempt dawdles: another client observes the seat
  // already gone (open nesting!), and a saboteur invalidates the card read.
  cluster.simulator().schedule_at(sim::msec(450), [&] {
    cluster.spawn_client(5, [&](Txn& t) -> sim::Task<void> {
      seats_seen_mid_booking = dec_i64(co_await t.read(flight_seats));
    });
    core::Version v = cluster.server(0).store().version_of(card_balance);
    for (net::NodeId n = 0; n < cluster.num_nodes(); ++n) {
      cluster.server(n).store().apply(card_balance, v + 1, enc_i64(1000));
    }
  });
  cluster.run_to_completion();

  std::int64_t seats = 0, rooms = 0, balance = 0;
  cluster.spawn_client(0, [&](Txn& t) -> sim::Task<void> {
    seats = dec_i64(co_await t.read(flight_seats));
    rooms = dec_i64(co_await t.read(hotel_rooms));
    balance = dec_i64(co_await t.read(card_balance));
  });
  cluster.run_to_completion();

  const auto& m = cluster.metrics();
  std::printf("booking attempts          : %d\n", attempts);
  std::printf("seats seen mid-booking    : %lld  (reservation visible early)\n",
              static_cast<long long>(seats_seen_mid_booking));
  std::printf("compensations run         : %llu (flight + hotel undone once)\n",
              static_cast<unsigned long long>(m.compensations_run));
  std::printf("final seats/rooms/balance : %lld / %lld / %lld\n",
              static_cast<long long>(seats), static_cast<long long>(rooms),
              static_cast<long long>(balance));
  const bool ok = attempts == 2 && seats == 9 && rooms == 9 &&
                  balance == 700 && m.compensations_run == 2;
  std::printf("%s\n", ok ? "consistent: booked exactly once"
                         : "UNEXPECTED FINAL STATE");
  return ok ? 0 : 1;
}
