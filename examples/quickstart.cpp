// Quickstart: a 13-node fault-tolerant DTM cluster running bank transfers
// under closed nesting.
//
//   $ ./build/examples/quickstart
//
// Walks through the whole public API: building a Cluster, seeding
// replicated objects, running transactions (with a closed-nested scope per
// transfer), and reading the metrics.
#include <cstdio>

#include "common/serde.h"
#include "core/cluster.h"

using namespace qrdtm;
using core::Cluster;
using core::ClusterConfig;
using core::ObjectId;
using core::Txn;

namespace {

Bytes enc_i64(std::int64_t v) {
  Writer w;
  w.i64(v);
  return std::move(w).take();
}

std::int64_t dec_i64(const Bytes& b) {
  Reader r(b);
  return r.i64();
}

}  // namespace

int main() {
  // 1. Configure a cluster: 13 nodes in a ternary tree (paper Fig. 3),
  //    closed nesting (QR-CN), ~30 ms simulated quorum round trips.
  ClusterConfig cfg;
  cfg.num_nodes = 13;
  cfg.runtime.mode = core::NestingMode::kClosed;
  cfg.seed = 2026;
  Cluster cluster(cfg);

  // 2. Seed two replicated account objects on every node.
  ObjectId alice = cluster.seed_new_object(enc_i64(100));
  ObjectId bob = cluster.seed_new_object(enc_i64(100));

  // 3. Run ten transfer transactions from different nodes, lightly
  //    staggered (two hot accounts shared by everyone is maximum
  //    contention).  Each transfer is one closed-nested scope: under
  //    contention it can retry alone, without restarting its enclosing
  //    transaction.
  for (int i = 0; i < 10; ++i) {
    cluster.simulator().schedule_at(sim::msec(60) * i, [&cluster, i, alice,
                                                       bob] {
      cluster.spawn_client(
          static_cast<net::NodeId>(i % cluster.num_nodes()),
          [alice, bob](Txn& t) -> sim::Task<void> {
            co_await t.nested([&](Txn& transfer) -> sim::Task<void> {
              std::int64_t a =
                  dec_i64(co_await transfer.read_for_write(alice));
              std::int64_t b = dec_i64(co_await transfer.read_for_write(bob));
              transfer.write(alice, enc_i64(a - 5));
              transfer.write(bob, enc_i64(b + 5));
            });
          });
    });
  }
  cluster.run_to_completion();

  // 4. Read the final balances through a read-only transaction (commits
  //    locally under QR-CN: zero commit messages).
  std::int64_t a = 0, b = 0;
  cluster.spawn_client(0, [&](Txn& t) -> sim::Task<void> {
    a = dec_i64(co_await t.read(alice));
    b = dec_i64(co_await t.read(bob));
  });
  cluster.run_to_completion();

  const core::Metrics& m = cluster.metrics();
  std::printf("final balances: alice=%lld bob=%lld (conserved: %s)\n",
              static_cast<long long>(a), static_cast<long long>(b),
              a + b == 200 ? "yes" : "NO");
  std::printf("commits=%llu root-aborts=%llu ct-retries=%llu\n",
              static_cast<unsigned long long>(m.commits),
              static_cast<unsigned long long>(m.root_aborts),
              static_cast<unsigned long long>(m.ct_aborts));
  std::printf("messages: read=%llu commit=%llu, simulated time=%.2f s\n",
              static_cast<unsigned long long>(m.read_messages),
              static_cast<unsigned long long>(m.commit_messages),
              sim::to_seconds(cluster.duration()));
  return a + b == 200 ? 0 : 1;
}
