// qrdtm_fuzz -- chaos fuzz harness over recorded histories.
//
// Sweeps seed x protocol x nesting-mode x app x fault-schedule combinations.
// Every combo runs a full deterministic simulation with a HistoryRecorder
// attached, subjects it to a seed-derived fault schedule (fail-stops,
// kill/rejoin churn, partition windows, message-drop bursts, latency
// spikes), and then feeds the recorded history
// to check_history(): 1-copy serializability for the QR family and TFA,
// snapshot-read validity for DecentSTM.  An application-level invariant
// check (run through the protocol after the chaos quiesces) and a
// replica-vs-certified-final-state comparison back the history checker up.
//
// On a violation the driver shrinks the failing combo to the smallest
// transactions-per-client count that still fails, writes the recorded
// history next to the binary, and prints a one-line repro command.
//
//   $ qrdtm_fuzz                          # full sweep (~288 combos)
//   $ qrdtm_fuzz --seeds 2                # quick look
//   $ qrdtm_fuzz --repro qr:closed:bank:7:2 --txns 3   # replay one combo
//   $ qrdtm_fuzz --break-validation       # prove the checker catches a
//                                         # protocol bug (exit 0 iff caught)
//   $ qrdtm_fuzz --sched-base 4 --schedules 1   # torn-checkpoint flavor
//   $ qrdtm_fuzz --sched-base 5 --schedules 1   # orphan-2pc flavor
//   $ qrdtm_fuzz --break-recovery         # prove the checker catches the
//                                         # Greengage torn-checkpoint bug
//   $ qrdtm_fuzz --break-termination      # prove the checker catches a
//                                         # skipped 2PC decision record
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/app.h"
#include "baselines/decent.h"
#include "baselines/tfa.h"
#include "core/chaos.h"
#include "core/cluster.h"
#include "core/faultpoint.h"
#include "core/history.h"

using namespace qrdtm;

namespace {

constexpr std::uint32_t kNumNodes = 13;
constexpr std::uint32_t kClients = 4;       // client processes on nodes 0..3
constexpr std::uint32_t kMaxAttempts = 50;  // per-transaction retry budget
constexpr std::uint32_t kBankAccounts = 12;
constexpr std::int64_t kBankTotal =
    static_cast<std::int64_t>(kBankAccounts) * 1000;

struct ComboSpec {
  std::string protocol;  // "qr" | "tfa" | "decent"
  core::NestingMode mode = core::NestingMode::kFlat;  // qr only
  std::string app = "bank";                           // qr only
  std::uint64_t seed = 1;
  std::uint32_t sched = 0;  // fault-schedule flavor (0 = no faults)
  std::uint32_t txns_per_client = 6;
  std::uint32_t num_objects = kBankAccounts;
  bool break_validation = false;
  /// QR only: > 0 runs the cluster on sharded quorum cohorts (partial
  /// replication) with this many shards, majority inner quorums of 7 over
  /// the 13 nodes -- no single cohort root, so churn schedules' kills
  /// cannot wedge a whole cohort.
  std::uint32_t shards = 0;
};

struct ComboResult {
  bool violation = false;
  std::string report;
  std::size_t committed = 0;
  core::HistoryRecorder recorder;
  /// qrdtm-trace spans for the same run (QR combos only); dumped next to
  /// the history counterexample on failure so a violation can be replayed
  /// visually in Perfetto.
  core::TraceRecorder tracer;
};

const char* mode_name(core::NestingMode m) {
  switch (m) {
    case core::NestingMode::kFlat:
      return "flat";
    case core::NestingMode::kClosed:
      return "closed";
    case core::NestingMode::kCheckpoint:
      return "checkpoint";
    case core::NestingMode::kQueued:
      return "queued";
  }
  return "?";
}

std::string combo_name(const ComboSpec& c) {
  std::string s = c.protocol;
  s += ':';
  s += c.protocol == "qr" ? mode_name(c.mode) : "-";
  s += ':';
  s += c.protocol == "qr" ? c.app : "bank";
  s += ':';
  s += std::to_string(c.seed);
  s += ':';
  s += std::to_string(c.sched);
  return s;
}

// Fault-schedule flavors, derived deterministically from (seed, sched):
//   0 -- control, no faults;
//   1 -- message-drop bursts + one latency spike;
//   2 -- the above plus (QR only) one leaf fail-stop;
//   3 -- churn: flavor-1 network faults, plus one partition window for
//        every protocol, plus (QR only) up to two fail-stops each paired
//        with a catch-up recovery;
//   4 -- torn-checkpoint: flavor-3 churn plus (QR only) commit-log
//        checkpoint cuts scattered over the horizon, so cuts race
//        in-flight 2PC prepares and recoveries replay across cut
//        boundaries;
//   5 -- orphan-2pc: flavor-4 faults plus (QR only) coordinator crashes
//        steered into the vote->confirm window (fp::kDecisionBeforeLog /
//        fp::kConfirmPartial armed kPanic on client nodes), leaving
//        prepared protections in-doubt until the cooperative termination
//        protocol or the restarted coordinator's decision re-drive
//        resolves them.
// TFA is single-copy and DecentSTM requires full replica-group votes, so
// neither tolerates kills by design -- for them flavors 2-5 keep the
// network faults but never kill (and have no commit log to cut).
core::FaultSchedule make_schedule(const ComboSpec& c) {
  if (c.sched == 0) return {};
  core::ChaosOptions opts;
  opts.horizon = sim::sec(3);
  opts.drop_bursts = 2;
  opts.drop_prob = 0.10;
  opts.burst_len = sim::msec(400);
  opts.latency_spikes = 1;
  opts.spike_extra = sim::msec(300);
  opts.spike_len = sim::msec(500);
  // Spike server-side nodes only; clients live on 0..3.
  for (std::uint32_t n = kClients; n < kNumNodes; ++n) {
    opts.spike_candidates.push_back(static_cast<net::NodeId>(n));
  }
  if (c.sched >= 2 && c.protocol == "qr") {
    opts.max_kills = 1;
    // Tree-13 leaves: losing one never loses a whole quorum level.
    for (std::uint32_t n = 4; n < kNumNodes; ++n) {
      opts.kill_candidates.push_back(static_cast<net::NodeId>(n));
    }
  }
  if (c.sched >= 3) {
    if (c.protocol == "qr") {
      // Recovery makes kills transient, so churn can afford two victims
      // where the stay-dead flavor uses one.
      opts.max_kills = 2;
      opts.recover_after = sim::msec(700);
      opts.recover_jitter = sim::msec(200);
    }
    opts.partition_windows = 1;
    opts.partition_len = sim::msec(400);
    opts.partition_max_side = 3;
    // Partition server-side nodes only, like spikes.
    for (std::uint32_t n = kClients; n < kNumNodes; ++n) {
      opts.partition_candidates.push_back(static_cast<net::NodeId>(n));
    }
  }
  if (c.sched >= 4 && c.protocol == "qr") {
    // Cuts on every node (empty candidates = all): write quorums include
    // client-side replicas too, and a cut racing a prepare is interesting
    // wherever the prepare lands.
    opts.checkpoint_cuts = 6;
  }
  if (c.sched >= 5 && c.protocol == "qr") {
    // Orphan-2PC: crash coordinators (= client nodes 0..3) exactly inside
    // their vote->confirm window via steered fault points, then restart
    // them.  The in-doubt prepares left on the write quorum must be
    // resolved by termination rounds or the recovered coordinator's
    // decision re-drive -- never by guessing.
    opts.orphan_windows = 2;
    for (std::uint32_t n = 0; n < kClients; ++n) {
      opts.orphan_candidates.push_back(static_cast<net::NodeId>(n));
    }
    opts.orphan_recover_after = sim::msec(600);
    opts.orphan_recover_jitter = sim::msec(200);
  }
  return core::FaultSchedule::generate(c.seed * 1000003 + c.sched, kNumNodes,
                                       opts);
}

// ------------------------------------------------------------------ QR ---

sim::Task<void> qr_client(core::Cluster* cl, net::NodeId node, apps::App* app,
                          apps::WorkloadParams params, Rng rng,
                          std::uint32_t txns, std::uint32_t* gave_up) {
  for (std::uint32_t i = 0; i < txns; ++i) {
    core::TxnBody body = app->make_txn(params, rng);
    const bool ok = co_await cl->runtime(node).run_transaction_bounded(
        std::move(body), kMaxAttempts);
    if (!ok) ++*gave_up;
  }
}

sim::Task<void> qr_checker(core::Cluster* cl, apps::App* app, bool* ok,
                           bool* committed) {
  *committed = co_await cl->runtime(0).run_transaction_bounded(
      app->make_checker(ok), 100);
}

ComboResult run_qr(const ComboSpec& c) {
  core::ClusterConfig cfg;
  cfg.num_nodes = kNumNodes;
  cfg.seed = c.seed;
  cfg.runtime.mode = c.mode;
  cfg.test_skip_commit_validation = c.break_validation;
  if (c.shards > 0) {
    cfg.quorum = core::QuorumKind::kSharded;
    cfg.num_shards = c.shards;
    cfg.cohort_size = 7;
    cfg.sharded_majority_inner = true;
  }

  core::Cluster cluster(cfg);
  ComboResult out;
  cluster.set_history_recorder(&out.recorder);
  cluster.set_trace_recorder(&out.tracer);

  std::unique_ptr<apps::App> app = apps::make_app(c.app);
  apps::WorkloadParams params;
  params.num_objects = c.num_objects;
  params.nested_calls = 2;
  params.read_ratio = 0.3;
  params.op_compute = sim::usec(100);
  Rng setup_rng(c.seed * 7919 + 17);
  app->setup(cluster, params, setup_rng);

  const core::FaultSchedule sched = make_schedule(c);
  sched.arm(cluster, &out.recorder);

  std::uint32_t gave_up = 0;
  for (std::uint32_t n = 0; n < kClients; ++n) {
    cluster.simulator().spawn(
        qr_client(&cluster, static_cast<net::NodeId>(n), app.get(), params,
                  Rng(c.seed).split(100 + n), c.txns_per_client, &gave_up));
  }
  cluster.run_to_completion();

  // Quiesce chaos leftovers so the integrity check runs on a calm cluster.
  cluster.network().set_drop_probability(0.0);
  cluster.network().clear_partition();
  for (std::uint32_t n = 0; n < kNumNodes; ++n) {
    cluster.network().set_node_slowdown(static_cast<net::NodeId>(n), 0);
  }

  bool invariant_ok = false;
  bool checker_committed = false;
  cluster.simulator().spawn(
      qr_checker(&cluster, app.get(), &invariant_ok, &checker_committed));
  cluster.run_to_completion();

  const core::CheckResult cr =
      core::check_history(out.recorder, core::CheckLevel::kSerializable);
  out.committed = cr.committed;
  if (!cr.ok) {
    out.violation = true;
    out.report = cr.report;
    return out;
  }
  if (!checker_committed) {
    out.violation = true;
    out.report = "app integrity checker could not commit after chaos cleared";
    return out;
  }
  if (!invariant_ok) {
    out.violation = true;
    out.report = "app integrity invariant violated (protocol-level read)";
    return out;
  }
  if (!c.break_validation) {
    // The certified 1-copy final state must be reachable from the live
    // replicas: for every object some live node holds exactly the final
    // version and bytes (commit confirms are reliable one-ways).
    for (const auto& [id, fin] : cr.final_state) {
      core::Version best = 0;
      const store::ReplicaEntry* best_entry = nullptr;
      for (std::uint32_t n = 0; n < kNumNodes; ++n) {
        if (!cluster.network().alive(static_cast<net::NodeId>(n))) continue;
        const store::ReplicaEntry* e =
            cluster.server(static_cast<net::NodeId>(n)).store().find(id);
        if (e != nullptr && e->version > best) {
          best = e->version;
          best_entry = e;
        }
      }
      if (best != fin.version ||
          (best_entry != nullptr && best_entry->data != fin.data)) {
        out.violation = true;
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "VIOLATION (replica divergence): o=%llu newest live "
                      "replica has v=%llu, certified final state is v=%llu",
                      static_cast<unsigned long long>(id),
                      static_cast<unsigned long long>(best),
                      static_cast<unsigned long long>(fin.version));
        out.report = buf;
        return out;
      }
    }
  }
  return out;
}

// ------------------------------------------------------- baseline bank ---

struct BankOp {
  bool audit = false;
  core::ObjectId a = 1, b = 2, c = 3;
  std::int64_t amount = 0;
};

// Accounts are ids 1..kBankAccounts (both baselines allocate sequentially).
BankOp draw_bank_op(Rng& rng) {
  BankOp op;
  op.audit = rng.chance(0.3);
  op.a = 1 + rng.below(kBankAccounts);
  do {
    op.b = 1 + rng.below(kBankAccounts);
  } while (op.b == op.a);
  op.c = 1 + rng.below(kBankAccounts);
  op.amount = 1 + static_cast<std::int64_t>(rng.below(50));
  return op;
}

sim::Task<void> tfa_client(baselines::TfaCluster* cl, net::NodeId node,
                           Rng rng, std::uint32_t txns,
                           std::uint32_t* gave_up) {
  for (std::uint32_t i = 0; i < txns; ++i) {
    const BankOp op = draw_bank_op(rng);
    baselines::TfaBody body = [op](baselines::TfaTxn& t) -> sim::Task<void> {
      if (op.audit) {
        co_await t.read(op.a);
        co_await t.read(op.b);
        co_await t.read(op.c);
        co_return;
      }
      const core::Bytes da = co_await t.read_for_write(op.a);
      const core::Bytes db = co_await t.read_for_write(op.b);
      t.write(op.a, apps::enc_i64(apps::dec_i64(da) - op.amount));
      t.write(op.b, apps::enc_i64(apps::dec_i64(db) + op.amount));
    };
    const bool ok = co_await cl->run_transaction_bounded(node, std::move(body),
                                                         kMaxAttempts);
    if (!ok) ++*gave_up;
  }
}

sim::Task<void> tfa_checker(baselines::TfaCluster* cl, bool* ok,
                            bool* committed) {
  // One single-read transaction per account.  The state is frozen once the
  // workload drains, so the piecewise sum is atomic in effect -- and a
  // whole-sum transaction could stall on a home-node lock orphaned by a
  // dropped lock response (its forwarding revalidation re-checks locks;
  // the lock lease sheds the orphan eventually, but only after
  // TfaConfig::lock_lease of wall-clock the checker would burn in
  // retries).  A single-read transaction forwards before its first
  // read-set entry exists, so it always commits.
  std::int64_t sum = 0;
  bool all_committed = true;
  for (core::ObjectId id = 1; id <= kBankAccounts; ++id) {
    std::int64_t value = 0;
    // `value` is read back right after the directly co_awaited bounded run
    // below returns, so the by-reference capture cannot dangle.
    baselines::TfaBody body =
        // qrdtm-lint: allow(coro-ref-capture)
        [&value, id](baselines::TfaTxn& t) -> sim::Task<void> {
      value = apps::dec_i64(co_await t.read(id));
    };
    const bool c = co_await cl->run_transaction_bounded(0, std::move(body), 100);
    all_committed = all_committed && c;
    sum += value;
  }
  *committed = all_committed;
  *ok = sum == kBankTotal;
}

ComboResult run_tfa(const ComboSpec& c) {
  baselines::TfaConfig cfg;
  cfg.num_nodes = kNumNodes;
  cfg.seed = c.seed;
  baselines::TfaCluster cluster(cfg);
  ComboResult out;
  cluster.set_history_recorder(&out.recorder);
  for (std::uint32_t i = 0; i < kBankAccounts; ++i) {
    cluster.seed_new_object(apps::enc_i64(1000));
  }

  const core::FaultSchedule sched = make_schedule(c);
  sched.arm(cluster.simulator(), cluster.network(), nullptr, &out.recorder);

  std::uint32_t gave_up = 0;
  for (std::uint32_t n = 0; n < kClients; ++n) {
    cluster.simulator().spawn(tfa_client(&cluster,
                                         static_cast<net::NodeId>(n),
                                         Rng(c.seed).split(200 + n),
                                         c.txns_per_client, &gave_up));
  }
  cluster.run_to_completion();

  cluster.network().set_drop_probability(0.0);
  cluster.network().clear_partition();
  for (std::uint32_t n = 0; n < kNumNodes; ++n) {
    cluster.network().set_node_slowdown(static_cast<net::NodeId>(n), 0);
  }
  bool invariant_ok = false;
  bool checker_committed = false;
  cluster.simulator().spawn(
      tfa_checker(&cluster, &invariant_ok, &checker_committed));
  cluster.run_to_completion();

  const core::CheckResult cr =
      core::check_history(out.recorder, core::CheckLevel::kSerializable);
  out.committed = cr.committed;
  if (!cr.ok) {
    out.violation = true;
    out.report = cr.report;
  } else if (!checker_committed) {
    out.violation = true;
    out.report = "bank sum checker could not commit after chaos cleared";
  } else if (!invariant_ok) {
    out.violation = true;
    out.report = "bank balance sum diverged from the seeded total";
  }
  return out;
}

sim::Task<void> decent_client(baselines::DecentCluster* cl, net::NodeId node,
                              Rng rng, std::uint32_t txns,
                              std::uint32_t* gave_up) {
  for (std::uint32_t i = 0; i < txns; ++i) {
    const BankOp op = draw_bank_op(rng);
    baselines::DecentBody body =
        [op](baselines::DecentTxn& t) -> sim::Task<void> {
      if (op.audit) {
        co_await t.read(op.a);
        co_await t.read(op.b);
        co_await t.read(op.c);
        co_return;
      }
      const core::Bytes da = co_await t.read_for_write(op.a);
      const core::Bytes db = co_await t.read_for_write(op.b);
      t.write(op.a, apps::enc_i64(apps::dec_i64(da) - op.amount));
      t.write(op.b, apps::enc_i64(apps::dec_i64(db) + op.amount));
    };
    const bool ok = co_await cl->run_transaction_bounded(node, std::move(body),
                                                         kMaxAttempts);
    if (!ok) ++*gave_up;
  }
}

sim::Task<void> decent_checker(baselines::DecentCluster* cl, bool* ok,
                               bool* committed) {
  baselines::DecentBody body = [ok](baselines::DecentTxn& t) -> sim::Task<void> {
    std::int64_t sum = 0;
    for (core::ObjectId id = 1; id <= kBankAccounts; ++id) {
      sum += apps::dec_i64(co_await t.read(id));
    }
    *ok = sum == kBankTotal;
  };
  *committed = co_await cl->run_transaction_bounded(0, std::move(body), 100);
}

ComboResult run_decent(const ComboSpec& c) {
  baselines::DecentConfig cfg;
  cfg.num_nodes = kNumNodes;
  cfg.seed = c.seed;
  baselines::DecentCluster cluster(cfg);
  ComboResult out;
  cluster.set_history_recorder(&out.recorder);
  for (std::uint32_t i = 0; i < kBankAccounts; ++i) {
    cluster.seed_new_object(apps::enc_i64(1000));
  }

  const core::FaultSchedule sched = make_schedule(c);
  sched.arm(cluster.simulator(), cluster.network(), nullptr, &out.recorder);

  std::uint32_t gave_up = 0;
  for (std::uint32_t n = 0; n < kClients; ++n) {
    cluster.simulator().spawn(decent_client(&cluster,
                                            static_cast<net::NodeId>(n),
                                            Rng(c.seed).split(300 + n),
                                            c.txns_per_client, &gave_up));
  }
  cluster.run_to_completion();

  cluster.network().set_drop_probability(0.0);
  cluster.network().clear_partition();
  for (std::uint32_t n = 0; n < kNumNodes; ++n) {
    cluster.network().set_node_slowdown(static_cast<net::NodeId>(n), 0);
  }
  bool invariant_ok = false;
  bool checker_committed = false;
  cluster.simulator().spawn(
      decent_checker(&cluster, &invariant_ok, &checker_committed));
  cluster.run_to_completion();

  // DecentSTM provides snapshot isolation: write skew is legal, lost
  // updates and phantom versions are not.
  const core::CheckResult cr =
      core::check_history(out.recorder, core::CheckLevel::kSnapshotReads);
  out.committed = cr.committed;
  if (!cr.ok) {
    out.violation = true;
    out.report = cr.report;
  } else if (!checker_committed) {
    out.violation = true;
    out.report = "bank sum checker could not commit after chaos cleared";
  } else if (!invariant_ok) {
    out.violation = true;
    out.report = "bank balance sum diverged from the seeded total";
  }
  return out;
}

ComboResult run_combo(const ComboSpec& c) {
  if (c.protocol == "qr") return run_qr(c);
  if (c.protocol == "tfa") return run_tfa(c);
  if (c.protocol == "decent") return run_decent(c);
  std::fprintf(stderr, "unknown protocol %s\n", c.protocol.c_str());
  std::exit(2);
}

// --------------------------------------------- broken-recovery canary ---

sim::Task<void> torn_txn(core::Cluster* cl, core::ObjectId obj,
                         bool* committed) {
  core::TxnBody body = [obj](core::Txn& t) -> sim::Task<void> {
    const core::Bytes b = co_await t.read_for_write(obj);
    t.write(obj, apps::enc_i64(apps::dec_i64(b) + 1));
  };
  *committed = co_await cl->runtime(0).run_transaction_bounded(std::move(body),
                                                               kMaxAttempts);
}

/// Steered Greengage checkpoint_dtx_info race: park a coordinator between
/// its votes and its confirm, cut a checkpoint on every replica inside that
/// window, resume, then crash-and-restart every replica one at a time.  In
/// the control run the cut carries the in-flight prepare forward, replay
/// matches the later confirm against it, and the committed version survives
/// every restart.  With `broken` the cut drops the carry (fp::kChkCutCarry
/// kSkip) and recovery trusts local replay alone (fp::kRecoverySkipSync
/// kSkip), so the commit silently vanishes from every replica -- the
/// replica-divergence check against the certified final state must say so.
/// Returns true iff a violation was reported (into *report).
bool run_torn_recovery(std::uint64_t seed, bool broken, std::string* report) {
  core::ClusterConfig cfg;
  cfg.num_nodes = 7;
  cfg.quorum = core::QuorumKind::kMajority;
  cfg.seed = seed;
  core::Cluster cluster(cfg);
  core::HistoryRecorder recorder;
  cluster.set_history_recorder(&recorder);
  const core::ObjectId obj = cluster.seed_new_object(apps::enc_i64(0));
  FaultPointRegistry& faults = cluster.fault_points();

  // Phase 1: park the coordinator in the vote->confirm window.  The write
  // quorum has protected and durably prepared the write-set; the confirm
  // does not exist yet.
  faults.arm(fp::kCommitBeforeConfirm, FaultAction::kSuspend, /*node=*/0);
  bool committed = false;
  cluster.simulator().spawn(torn_txn(&cluster, obj, &committed));
  cluster.run_to_completion();
  if (faults.suspended(fp::kCommitBeforeConfirm) != 1) {
    *report = "torn-recovery staging failed: coordinator never parked";
    return false;
  }

  // Phase 2: cut a checkpoint on every replica while the prepare is in
  // flight.  Broken mode reproduces the Greengage bug: the cut forgets the
  // prepared-but-unconfirmed transaction.
  if (broken) {
    faults.arm(fp::kChkCutCarry, FaultAction::kSkip, FaultPointRegistry::kAnyNode,
               FaultPointRegistry::kUnlimited);
  }
  for (std::uint32_t n = 0; n < cfg.num_nodes; ++n) {
    cluster.cut_checkpoint(static_cast<net::NodeId>(n));
  }
  faults.disarm(fp::kChkCutCarry);

  // Phase 3: release the confirm; the transaction commits for real.
  faults.resume(fp::kCommitBeforeConfirm);
  cluster.run_to_completion();
  if (!committed) {
    *report = "torn-recovery staging failed: steered transaction aborted";
    return false;
  }

  // Phase 4: crash and restart every replica, one at a time so read quorums
  // stay available for the control run's anti-entropy pull.  Broken mode
  // re-admits each node on its (torn) local replay alone.
  for (std::uint32_t n = 0; n < cfg.num_nodes; ++n) {
    const net::NodeId node = static_cast<net::NodeId>(n);
    if (broken) {
      faults.arm(fp::kRecoverySkipSync, FaultAction::kSkip, node);
    }
    cluster.kill_node(node);
    cluster.recover_node(node);
    cluster.run_to_completion();
  }

  // Verdict: the certified final state must be reachable from the live
  // replicas (same check run_qr applies after chaos).
  const core::CheckResult cr =
      core::check_history(recorder, core::CheckLevel::kSerializable);
  if (!cr.ok) {
    *report = cr.report;
    return true;
  }
  for (const auto& [id, fin] : cr.final_state) {
    core::Version best = 0;
    for (std::uint32_t n = 0; n < cfg.num_nodes; ++n) {
      const store::ReplicaEntry* e =
          cluster.server(static_cast<net::NodeId>(n)).store().find(id);
      if (e != nullptr && e->version > best) best = e->version;
    }
    if (best != fin.version) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "VIOLATION (replica divergence): o=%llu newest live "
                    "replica has v=%llu, certified final state is v=%llu",
                    static_cast<unsigned long long>(id),
                    static_cast<unsigned long long>(best),
                    static_cast<unsigned long long>(fin.version));
      *report = buf;
      return true;
    }
  }
  *report = "no violation";
  return false;
}

/// --break-termination canary: crash a coordinator on its FIRST confirm
/// send (fp::kConfirmPartial kPanic, delay 0), so the client's commit is
/// acknowledged but no write-quorum member ever hears the outcome.  In the
/// control run the decision record is durable before the crash: the
/// restarted coordinator replays it and re-drives the confirms, every
/// replica applies, and the certified final state is reachable.  With
/// `broken` the decision record is skipped (fp::kDecisionBeforeLog kSkip --
/// the bug the decision-before-confirm ordering exists to prevent), so the
/// restart finds nothing to re-drive, the acknowledged commit never reaches
/// a single replica, and the replica-divergence check must say so.
/// Returns true iff a violation was reported (into *report).
bool run_orphan_termination(std::uint64_t seed, bool broken,
                            std::string* report) {
  core::ClusterConfig cfg;
  cfg.num_nodes = 7;
  cfg.quorum = core::QuorumKind::kMajority;
  cfg.seed = seed;
  core::Cluster cluster(cfg);
  core::HistoryRecorder recorder;
  cluster.set_history_recorder(&recorder);
  const core::ObjectId obj = cluster.seed_new_object(apps::enc_i64(0));
  FaultPointRegistry& faults = cluster.fault_points();

  if (broken) {
    faults.arm(fp::kDecisionBeforeLog, FaultAction::kSkip, /*node=*/0);
  }
  faults.arm(fp::kConfirmPartial, FaultAction::kPanic, /*node=*/0,
             /*uses=*/1, /*delay_fires=*/0);
  bool committed = false;
  cluster.simulator().spawn(torn_txn(&cluster, obj, &committed));
  cluster.run_to_completion();
  if (!committed) {
    *report = "orphan-2pc staging failed: steered commit was not acked";
    return false;
  }

  // Restart the coordinator: replay + decision re-drive (control) vs an
  // empty decision log (broken).
  cluster.recover_node(0);
  cluster.run_to_completion();

  const core::CheckResult cr =
      core::check_history(recorder, core::CheckLevel::kSerializable);
  if (!cr.ok) {
    *report = cr.report;
    return true;
  }
  for (const auto& [id, fin] : cr.final_state) {
    core::Version best = 0;
    for (std::uint32_t n = 0; n < cfg.num_nodes; ++n) {
      const store::ReplicaEntry* e =
          cluster.server(static_cast<net::NodeId>(n)).store().find(id);
      if (e != nullptr && e->version > best) best = e->version;
    }
    if (best != fin.version) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "VIOLATION (replica divergence): o=%llu newest live "
                    "replica has v=%llu, certified final state is v=%llu",
                    static_cast<unsigned long long>(id),
                    static_cast<unsigned long long>(best),
                    static_cast<unsigned long long>(fin.version));
      *report = buf;
      return true;
    }
  }
  *report = "no violation";
  return false;
}

// --------------------------------------------------------------- driver ---

struct Options {
  std::uint32_t seeds = 12;
  std::uint64_t seed_base = 1;
  std::uint32_t schedules = 3;
  std::uint32_t sched_base = 0;
  std::uint32_t txns = 6;
  std::string trace_dir = ".";
  std::vector<std::string> protocols = {"qr", "tfa", "decent"};
  std::vector<core::NestingMode> modes = {core::NestingMode::kFlat,
                                          core::NestingMode::kClosed,
                                          core::NestingMode::kCheckpoint,
                                          core::NestingMode::kQueued};
  std::vector<std::string> apps = {"bank", "vacation"};
  bool break_validation = false;
  bool break_recovery = false;
  bool break_termination = false;
  std::uint32_t shards = 0;  // qr only: sharded cohorts with N shards
  std::string repro;  // proto:mode:app:seed:sched
};

void usage() {
  std::printf(
      "usage: qrdtm_fuzz [options]\n"
      "  --seeds N           seeds per combo class (default 12)\n"
      "  --seed-base N       first seed (default 1)\n"
      "  --schedules N       number of fault-schedule flavors swept,\n"
      "                      sched-base..sched-base+N-1 (default 3)\n"
      "  --sched-base N      first fault-schedule flavor (default 0;\n"
      "                      3 = kill/rejoin churn + partitions,\n"
      "                      4 = churn + torn checkpoint cuts)\n"
      "  --txns N            transactions per client (default 6)\n"
      "  --protocols CSV     subset of qr,tfa,decent\n"
      "  --modes CSV         subset of flat,closed,checkpoint,queued "
      "(qr only)\n"
      "  --apps CSV          subset of bank,vacation (qr only)\n"
      "  --shards N          qr only: run on sharded quorum cohorts\n"
      "                      (N shards, majority cohorts of 7; default 0 =\n"
      "                      full replication)\n"
      "  --trace-dir DIR     where counterexample traces are written\n"
      "  --repro SPEC        run one combo: proto:mode:app:seed:sched\n"
      "  --break-validation  disable replica commit validation and require\n"
      "                      the checker to catch the bug under both the\n"
      "                      per-transaction (flat) and batched (queued)\n"
      "                      commit paths; exit 0 iff it catches both\n"
      "  --break-recovery    steer the Greengage torn-checkpoint race with\n"
      "                      the carry and the anti-entropy pull disabled;\n"
      "                      the control run must certify and the broken\n"
      "                      run must be caught; exit 0 iff both hold\n"
      "  --break-termination steer a coordinator crash into the confirm\n"
      "                      broadcast with the decision record skipped, so\n"
      "                      an acknowledged commit reaches no replica; the\n"
      "                      control run (decision logged + re-driven) must\n"
      "                      certify and the broken run must be caught;\n"
      "                      exit 0 iff both hold\n");
}

std::vector<std::string> split_csv(const std::string& s, char sep = ',') {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

bool parse_mode(const std::string& s, core::NestingMode& out) {
  if (s == "flat") {
    out = core::NestingMode::kFlat;
  } else if (s == "closed") {
    out = core::NestingMode::kClosed;
  } else if (s == "checkpoint" || s == "chk") {
    out = core::NestingMode::kCheckpoint;
  } else if (s == "queued") {
    out = core::NestingMode::kQueued;
  } else {
    return false;
  }
  return true;
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") return false;
    if (flag == "--break-validation") {
      opt.break_validation = true;
      continue;
    }
    if (flag == "--break-recovery") {
      opt.break_recovery = true;
      continue;
    }
    if (flag == "--break-termination") {
      opt.break_termination = true;
      continue;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", flag.c_str());
      return false;
    }
    const std::string val = argv[++i];
    if (flag == "--seeds") {
      opt.seeds = static_cast<std::uint32_t>(std::atoi(val.c_str()));
    } else if (flag == "--seed-base") {
      opt.seed_base = static_cast<std::uint64_t>(std::atoll(val.c_str()));
    } else if (flag == "--schedules") {
      opt.schedules = static_cast<std::uint32_t>(std::atoi(val.c_str()));
    } else if (flag == "--sched-base") {
      opt.sched_base = static_cast<std::uint32_t>(std::atoi(val.c_str()));
    } else if (flag == "--txns") {
      opt.txns = static_cast<std::uint32_t>(std::atoi(val.c_str()));
    } else if (flag == "--shards") {
      opt.shards = static_cast<std::uint32_t>(std::atoi(val.c_str()));
    } else if (flag == "--trace-dir") {
      opt.trace_dir = val;
    } else if (flag == "--protocols") {
      opt.protocols = split_csv(val);
    } else if (flag == "--apps") {
      opt.apps = split_csv(val);
    } else if (flag == "--modes") {
      opt.modes.clear();
      for (const std::string& m : split_csv(val)) {
        core::NestingMode mode;
        if (!parse_mode(m, mode)) {
          std::fprintf(stderr, "unknown mode %s\n", m.c_str());
          return false;
        }
        opt.modes.push_back(mode);
      }
    } else if (flag == "--repro") {
      opt.repro = val;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

/// Shrink a failing combo to the smallest txns-per-client that still fails,
/// write its trace, and print the repro line.  Returns the shrunk result.
ComboResult report_failure(ComboSpec spec, ComboResult res,
                           const Options& opt) {
  std::printf("FAIL %s txns=%u\n", combo_name(spec).c_str(),
              spec.txns_per_client);
  for (std::uint32_t t = spec.txns_per_client / 2; t >= 1; t /= 2) {
    ComboSpec smaller = spec;
    smaller.txns_per_client = t;
    ComboResult r = run_combo(smaller);
    if (!r.violation) break;
    spec = smaller;
    res = std::move(r);
    std::printf("  shrunk to txns=%u\n", t);
    if (t == 1) break;
  }
  std::string base = opt.trace_dir + "/fuzz_counterexample_";
  for (char ch : combo_name(spec)) base += ch == ':' ? '_' : ch;
  std::string trace = base + ".txt";
  if (!res.recorder.dump_to_file(trace)) trace = "<trace write failed>";
  std::printf("%s\n", res.report.c_str());
  std::printf("  combo:  %s (%zu committed txns)\n", combo_name(spec).c_str(),
              res.committed);
  std::printf("  trace:  %s\n", trace.c_str());
  if (!res.tracer.empty()) {
    // QR combos also carry a qrdtm-trace of the failing run; dump it in
    // Chrome trace-event format for Perfetto.
    std::string spans = base + ".trace.json";
    if (res.tracer.write_chrome_trace(spans)) {
      std::printf("  spans:  %s (load at ui.perfetto.dev)\n", spans.c_str());
    }
  }
  std::printf("  repro:  qrdtm_fuzz --repro %s --txns %u%s\n",
              combo_name(spec).c_str(), spec.txns_per_client,
              spec.break_validation ? " --break-validation" : "");
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage();
    return 2;
  }

  std::vector<ComboSpec> combos;
  auto push_seeds = [&](ComboSpec base) {
    for (std::uint32_t s = 0; s < opt.seeds; ++s) {
      for (std::uint32_t f = 0; f < opt.schedules; ++f) {
        ComboSpec c = base;
        c.seed = opt.seed_base + s;
        c.sched = opt.sched_base + f;
        combos.push_back(c);
      }
    }
  };

  if (!opt.repro.empty()) {
    const std::vector<std::string> parts = split_csv(opt.repro, ':');
    if (parts.size() != 5) {
      std::fprintf(stderr, "bad --repro spec %s\n", opt.repro.c_str());
      return 2;
    }
    ComboSpec c;
    c.protocol = parts[0];
    if (c.protocol == "qr" && !parse_mode(parts[1], c.mode)) {
      std::fprintf(stderr, "bad mode %s\n", parts[1].c_str());
      return 2;
    }
    if (c.protocol == "qr") c.app = parts[2];
    c.seed = static_cast<std::uint64_t>(std::atoll(parts[3].c_str()));
    c.sched = static_cast<std::uint32_t>(std::atoi(parts[4].c_str()));
    c.txns_per_client = opt.txns;
    c.break_validation = opt.break_validation;
    c.shards = opt.shards;
    if (c.break_validation) c.num_objects = 4;
    combos.push_back(c);
  } else if (opt.break_recovery) {
    // Steered canary for the torn-checkpoint race.  The control run proves
    // the detection pipeline has no false positive on the healthy protocol;
    // the broken run proves it has teeth: with the carry and the
    // anti-entropy pull disabled the committed transaction vanishes from
    // every replica, and the divergence check must say so.
    bool control_ok = true;
    std::string report;
    for (std::uint32_t s = 0; s < (opt.seeds < 2 ? opt.seeds : 2); ++s) {
      if (run_torn_recovery(opt.seed_base + s, /*broken=*/false, &report)) {
        std::printf("fuzz: ERROR -- control torn-recovery run seed=%llu "
                    "reported a violation:\n  %s\n",
                    static_cast<unsigned long long>(opt.seed_base + s),
                    report.c_str());
        control_ok = false;
      }
    }
    bool caught = false;
    std::uint64_t caught_seed = 0;
    const std::uint32_t seeds = opt.seeds < 4 ? opt.seeds : 4;
    for (std::uint32_t s = 0; s < seeds && !caught; ++s) {
      if (run_torn_recovery(opt.seed_base + s, /*broken=*/true, &report)) {
        caught = true;
        caught_seed = opt.seed_base + s;
      }
    }
    if (caught) {
      std::printf("fuzz: checker caught the torn-checkpoint recovery bug "
                  "(seed=%llu)\n  %s\n",
                  static_cast<unsigned long long>(caught_seed),
                  report.c_str());
    } else {
      std::printf("fuzz: ERROR -- recovery broken but no violation detected "
                  "(%s)\n",
                  report.c_str());
    }
    return control_ok && caught ? 0 : 1;
  } else if (opt.break_termination) {
    // Steered canary for the decision-before-confirm ordering.  Control:
    // crash after the decision record, the restart re-drives the confirms,
    // the acked commit survives.  Broken: same crash with the decision
    // record skipped -- the acked commit reaches no replica and the
    // divergence check must catch it.
    bool control_ok = true;
    std::string report;
    for (std::uint32_t s = 0; s < (opt.seeds < 2 ? opt.seeds : 2); ++s) {
      if (run_orphan_termination(opt.seed_base + s, /*broken=*/false,
                                 &report)) {
        std::printf("fuzz: ERROR -- control orphan-termination run seed=%llu "
                    "reported a violation:\n  %s\n",
                    static_cast<unsigned long long>(opt.seed_base + s),
                    report.c_str());
        control_ok = false;
      }
    }
    bool caught = false;
    std::uint64_t caught_seed = 0;
    const std::uint32_t seeds = opt.seeds < 4 ? opt.seeds : 4;
    for (std::uint32_t s = 0; s < seeds && !caught; ++s) {
      if (run_orphan_termination(opt.seed_base + s, /*broken=*/true,
                                 &report)) {
        caught = true;
        caught_seed = opt.seed_base + s;
      }
    }
    if (caught) {
      std::printf("fuzz: checker caught the skipped-decision-record bug "
                  "(seed=%llu)\n  %s\n",
                  static_cast<unsigned long long>(caught_seed),
                  report.c_str());
    } else {
      std::printf("fuzz: ERROR -- termination broken but no violation "
                  "detected (%s)\n",
                  report.c_str());
    }
    return control_ok && caught ? 0 : 1;
  } else if (opt.break_validation) {
    // Focused detection run: high contention, no chaos needed -- the
    // protocol itself is broken, the checker must see it.  The bug is
    // injected into both commit paths (per-transaction flat votes and
    // batched queued votes); it must be caught under each, since a checker
    // blind to one path would silently certify its broken histories.
    bool all_caught = true;
    for (core::NestingMode mode :
         {core::NestingMode::kFlat, core::NestingMode::kQueued}) {
      ComboSpec base;
      base.protocol = "qr";
      base.mode = mode;
      base.app = "bank";
      base.txns_per_client = opt.txns > 6 ? opt.txns : 8;
      base.num_objects = 4;
      base.break_validation = true;
      bool caught = false;
      const std::uint32_t seeds = opt.seeds < 4 ? opt.seeds : 4;
      std::size_t mode_ran = 0;
      for (std::uint32_t s = 0; s < seeds && !caught; ++s) {
        ComboSpec c = base;
        c.seed = opt.seed_base + s;
        ComboResult res = run_combo(c);
        ++mode_ran;
        if (res.violation) {
          report_failure(c, std::move(res), opt);
          caught = true;  // one caught counterexample per path suffices
        }
      }
      std::printf("fuzz: checker %s the injected validation bug under %s "
                  "(%zu combos)\n",
                  caught ? "caught" : "MISSED", mode_name(mode), mode_ran);
      all_caught = all_caught && caught;
    }
    return all_caught ? 0 : 1;
  } else {
    for (const std::string& proto : opt.protocols) {
      if (proto == "qr") {
        for (core::NestingMode mode : opt.modes) {
          for (const std::string& app : opt.apps) {
            ComboSpec base;
            base.protocol = "qr";
            base.mode = mode;
            base.app = app;
            base.txns_per_client = opt.txns;
            base.shards = opt.shards;
            push_seeds(base);
          }
        }
      } else {
        ComboSpec base;
        base.protocol = proto;
        base.txns_per_client = opt.txns;
        push_seeds(base);
      }
    }
  }

  std::size_t ran = 0, violations = 0, committed = 0;
  for (const ComboSpec& c : combos) {
    ComboResult res = run_combo(c);
    ++ran;
    committed += res.committed;
    if (res.violation) {
      ++violations;
      report_failure(c, std::move(res), opt);
      if (opt.break_validation) break;  // one caught counterexample suffices
    }
  }

  if (opt.break_validation) {
    if (violations > 0) {
      std::printf(
          "fuzz: checker caught the injected validation bug (%zu combos)\n",
          ran);
      return 0;
    }
    std::printf(
        "fuzz: ERROR -- validation disabled but no violation detected in "
        "%zu combos\n",
        ran);
    return 1;
  }
  std::printf("fuzz: %zu combos, %zu committed txns checked, %zu violations\n",
              ran, committed, violations);
  return violations == 0 ? 0 : 1;
}
