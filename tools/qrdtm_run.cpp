// qrdtm_run -- command-line experiment runner.
//
// Runs one deterministic simulation point with every knob on the command
// line and prints the full metric breakdown; the quickest way to explore
// the design space beyond the fixed paper figures.
//
//   $ qrdtm_run --app slist --mode closed --nodes 13 --clients 8
//               --reads 0.2 --calls 3 --objects 128 --seconds 60 --seed 1
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/harness.h"

using namespace qrdtm;
using namespace qrdtm::bench;

namespace {

void usage() {
  std::printf(
      "usage: qrdtm_run [options]\n"
      "  --app NAME        bank|hashmap|slist|rbtree|bst|vacation "
      "(default bank)\n"
      "  --mode MODE       flat|closed|checkpoint|queued (default flat)\n"
      "  --nodes N         cluster size (default 13)\n"
      "  --clients N       closed-loop clients (default 8)\n"
      "  --reads F         read ratio 0..1 (default 0.2)\n"
      "  --calls N         nested calls per transaction (default 3)\n"
      "  --objects N       app population (default: per-app)\n"
      "  --seconds S       simulated duration (default 60)\n"
      "  --seed N          deterministic seed (default 1)\n"
      "  --quorum KIND     tree|majority|flat-failure|sharded (default "
      "tree)\n"
      "  --read-level N    tree read level (default 1)\n"
      "  --shards N        sharded quorum: cohort count (default 16)\n"
      "  --cohort-size N   sharded quorum: replicas per cohort (default "
      "13)\n"
      "  --failures N      fail-stops before the run (default 0)\n"
      "  --chk-threshold N objects per checkpoint (default 1)\n"
      "  --batch-window MS queued-mode batch formation window (default 10)\n"
      "  --batch-max N     queued-mode max transactions per batch "
      "(default 32)\n"
      "  --client-nodes N  co-locate clients on the first N nodes\n"
      "                    (default 0 = spread round-robin over all nodes)\n"
      "  --bench-json PATH write machine-readable perf results (JSON)\n"
      "  --metrics-json PATH write per-node + aggregate latency histograms\n"
      "                    (p50/p90/p99 of commit latency, read RTT,\n"
      "                    backoff waits, retry gaps) as JSON\n"
      "  --trace-json PATH record a full qrdtm-trace and write it in Chrome\n"
      "                    trace-event format (open at ui.perfetto.dev)\n");
}

bool parse(int argc, char** argv, ExperimentConfig& cfg,
           std::string& bench_json, std::string& metrics_json,
           std::string& trace_json) {
  cfg.params.num_objects = 0;  // sentinel: fill from default_objects
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") return false;
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", flag.c_str());
      return false;
    }
    std::string val = argv[++i];
    if (flag == "--app") {
      cfg.app = val;
    } else if (flag == "--mode") {
      if (val == "flat") {
        cfg.mode = core::NestingMode::kFlat;
      } else if (val == "closed") {
        cfg.mode = core::NestingMode::kClosed;
      } else if (val == "checkpoint" || val == "chk") {
        cfg.mode = core::NestingMode::kCheckpoint;
      } else if (val == "queued") {
        cfg.mode = core::NestingMode::kQueued;
      } else {
        std::fprintf(stderr, "unknown mode %s\n", val.c_str());
        return false;
      }
    } else if (flag == "--nodes") {
      cfg.num_nodes = static_cast<std::uint32_t>(std::atoi(val.c_str()));
    } else if (flag == "--clients") {
      cfg.clients = static_cast<std::uint32_t>(std::atoi(val.c_str()));
    } else if (flag == "--reads") {
      cfg.params.read_ratio = std::atof(val.c_str());
    } else if (flag == "--calls") {
      cfg.params.nested_calls =
          static_cast<std::uint32_t>(std::atoi(val.c_str()));
    } else if (flag == "--objects") {
      cfg.params.num_objects =
          static_cast<std::uint32_t>(std::atoi(val.c_str()));
    } else if (flag == "--seconds") {
      cfg.duration = sim::sec(std::atof(val.c_str()));
    } else if (flag == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(val.c_str()));
    } else if (flag == "--quorum") {
      if (val == "tree") {
        cfg.quorum = core::QuorumKind::kTree;
      } else if (val == "majority") {
        cfg.quorum = core::QuorumKind::kMajority;
      } else if (val == "flat-failure") {
        cfg.quorum = core::QuorumKind::kFlatFailureAware;
      } else if (val == "sharded") {
        cfg.quorum = core::QuorumKind::kSharded;
      } else {
        std::fprintf(stderr, "unknown quorum %s\n", val.c_str());
        return false;
      }
    } else if (flag == "--read-level") {
      cfg.tree_read_level =
          static_cast<std::uint32_t>(std::atoi(val.c_str()));
    } else if (flag == "--shards") {
      cfg.num_shards = static_cast<std::uint32_t>(std::atoi(val.c_str()));
    } else if (flag == "--cohort-size") {
      cfg.cohort_size = static_cast<std::uint32_t>(std::atoi(val.c_str()));
    } else if (flag == "--failures") {
      cfg.failures = static_cast<std::uint32_t>(std::atoi(val.c_str()));
    } else if (flag == "--chk-threshold") {
      cfg.chk_threshold = static_cast<std::uint32_t>(std::atoi(val.c_str()));
    } else if (flag == "--batch-window") {
      cfg.batch_window = sim::msec(std::atof(val.c_str()));
    } else if (flag == "--batch-max") {
      cfg.batch_max_txns = static_cast<std::uint32_t>(std::atoi(val.c_str()));
    } else if (flag == "--client-nodes") {
      cfg.client_nodes = static_cast<std::uint32_t>(std::atoi(val.c_str()));
    } else if (flag == "--bench-json") {
      bench_json = val;
    } else if (flag == "--metrics-json") {
      metrics_json = val;
    } else if (flag == "--trace-json") {
      trace_json = val;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  if (cfg.params.num_objects == 0) {
    cfg.params.num_objects = default_objects(cfg.app);
  }
  return true;
}

}  // namespace

// Emit the point's perf numbers as JSON for CI artifacts / regression
// tracking (tools-free to parse, schema kept flat on purpose).
bool write_bench_json(const std::string& path, const ExperimentConfig& cfg,
                      const ExperimentResult& r) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n"
               "  \"app\": \"%s\",\n"
               "  \"mode\": \"%s\",\n"
               "  \"nodes\": %u,\n"
               "  \"clients\": %u,\n"
               "  \"seed\": %llu,\n"
               "  \"sim_seconds\": %.6f,\n"
               "  \"wall_seconds\": %.6f,\n"
               "  \"events_executed\": %llu,\n"
               "  \"events_per_sec\": %.1f,\n"
               "  \"commits\": %llu,\n"
               "  \"throughput_txn_per_sec\": %.2f,\n"
               "  \"messages\": %llu,\n"
               "  \"invariants_ok\": %s\n"
               "}\n",
               cfg.app.c_str(), core::to_string(cfg.mode), cfg.num_nodes,
               cfg.clients, static_cast<unsigned long long>(cfg.seed),
               sim::to_seconds(cfg.duration), r.wall_seconds,
               static_cast<unsigned long long>(r.events_executed),
               r.events_per_sec(),
               static_cast<unsigned long long>(r.commits), r.throughput,
               static_cast<unsigned long long>(r.total_messages()),
               r.invariants_ok ? "true" : "false");
  std::fclose(f);
  return true;
}

namespace {

void write_histogram_json(std::FILE* f, const char* name,
                          const core::LatencyHistogram& h,
                          const char* indent, bool last) {
  std::fprintf(f,
               "%s\"%s\": {\"count\": %llu, \"mean_ms\": %.3f, "
               "\"min_ms\": %.3f, \"p50_ms\": %.3f, \"p90_ms\": %.3f, "
               "\"p99_ms\": %.3f, \"max_ms\": %.3f}%s\n",
               indent, name, static_cast<unsigned long long>(h.count()),
               h.mean() / 1e6, sim::to_seconds(h.min()) * 1e3,
               sim::to_seconds(h.percentile(50)) * 1e3,
               sim::to_seconds(h.percentile(90)) * 1e3,
               sim::to_seconds(h.percentile(99)) * 1e3,
               sim::to_seconds(h.max()) * 1e3, last ? "" : ",");
}

// batch_size holds raw transaction counts, not ticks: emit the values
// unscaled instead of pretending they are durations.
void write_count_histogram_json(std::FILE* f, const char* name,
                                const core::LatencyHistogram& h,
                                const char* indent, bool last) {
  std::fprintf(f,
               "%s\"%s\": {\"count\": %llu, \"mean\": %.3f, "
               "\"min\": %llu, \"p50\": %llu, \"p90\": %llu, "
               "\"p99\": %llu, \"max\": %llu}%s\n",
               indent, name, static_cast<unsigned long long>(h.count()),
               h.mean(), static_cast<unsigned long long>(h.min()),
               static_cast<unsigned long long>(h.percentile(50)),
               static_cast<unsigned long long>(h.percentile(90)),
               static_cast<unsigned long long>(h.percentile(99)),
               static_cast<unsigned long long>(h.max()), last ? "" : ",");
}

void write_latency_json(std::FILE* f, const core::LatencyMetrics& m,
                        const char* indent) {
  write_histogram_json(f, "commit_latency", m.commit_latency, indent, false);
  write_histogram_json(f, "read_rtt", m.read_rtt, indent, false);
  write_histogram_json(f, "backoff_wait", m.backoff_wait, indent, false);
  write_histogram_json(f, "retry_gap", m.retry_gap, indent, false);
  write_histogram_json(f, "batch_wait", m.batch_wait, indent, false);
  write_count_histogram_json(f, "batch_size", m.batch_size, indent, true);
}

/// Latency snapshot: aggregate (cluster-merged) and per-node histograms for
/// the four tracked distributions, percentiles in milliseconds.
bool write_metrics_json(const std::string& path, const ExperimentResult& r) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f,
               "{\n  \"protocol\": \"qr\",\n"
               "  \"batches_committed\": %llu,\n"
               "  \"speculation_rollbacks\": %llu,\n"
               "  \"batch_read_hits\": %llu,\n"
               "  \"aggregate\": {\n",
               static_cast<unsigned long long>(r.batches),
               static_cast<unsigned long long>(r.speculation_rollbacks),
               static_cast<unsigned long long>(r.batch_read_hits));
  write_latency_json(f, r.latency, "    ");
  std::fprintf(f, "  },\n  \"nodes\": [\n");
  for (std::size_t n = 0; n < r.node_latency.size(); ++n) {
    std::fprintf(f, "    {\n      \"node\": %zu,\n", n);
    write_latency_json(f, r.node_latency[n], "      ");
    std::fprintf(f, "    }%s\n", n + 1 < r.node_latency.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentConfig cfg;
  cfg.duration = sim::sec(60);
  std::string bench_json;
  std::string metrics_json;
  std::string trace_json;
  if (!parse(argc, argv, cfg, bench_json, metrics_json, trace_json)) {
    usage();
    return 2;
  }
  core::TraceRecorder tracer;
  if (!trace_json.empty()) cfg.trace = &tracer;
  if (!metrics_json.empty()) cfg.collect_per_node_latency = true;

  std::printf("app=%s mode=%s nodes=%u clients=%u reads=%.2f calls=%u "
              "objects=%u seed=%llu\n",
              cfg.app.c_str(), core::to_string(cfg.mode), cfg.num_nodes,
              cfg.clients, cfg.params.read_ratio, cfg.params.nested_calls,
              cfg.params.num_objects,
              static_cast<unsigned long long>(cfg.seed));

  ExperimentResult r = run_experiment(cfg);

  std::printf("throughput        %10.2f txn/s\n", r.throughput);
  std::printf("commits           %10llu\n",
              static_cast<unsigned long long>(r.commits));
  std::printf("root aborts       %10llu\n",
              static_cast<unsigned long long>(r.root_aborts));
  std::printf("ct retries        %10llu\n",
              static_cast<unsigned long long>(r.ct_aborts));
  std::printf("partial rollbacks %10llu\n",
              static_cast<unsigned long long>(r.partial_rollbacks));
  std::printf("checkpoints       %10llu\n",
              static_cast<unsigned long long>(r.checkpoints));
  std::printf("vote aborts       %10llu\n",
              static_cast<unsigned long long>(r.vote_aborts));
  std::printf("batches committed %10llu\n",
              static_cast<unsigned long long>(r.batches));
  std::printf("spec. rollbacks   %10llu\n",
              static_cast<unsigned long long>(r.speculation_rollbacks));
  std::printf("batch read hits   %10llu\n",
              static_cast<unsigned long long>(r.batch_read_hits));
  std::printf("rqv failures      %10llu\n",
              static_cast<unsigned long long>(r.validation_failures));
  std::printf("read messages     %10llu\n",
              static_cast<unsigned long long>(r.read_messages));
  std::printf("commit messages   %10llu\n",
              static_cast<unsigned long long>(r.commit_messages));
  // With zero commits the abort ratio is undefined (NaN): print "n/a".
  std::printf("aborts/commit     %10s\n", fmt(r.abort_rate(), 10, 2).c_str());
  std::printf("commit p50        %10.1f ms\n",
              sim::to_seconds(r.latency.commit_latency.percentile(50)) * 1e3);
  std::printf("commit p99        %10.1f ms\n",
              sim::to_seconds(r.latency.commit_latency.percentile(99)) * 1e3);
  std::printf("read rtt p50      %10.1f ms\n",
              sim::to_seconds(r.latency.read_rtt.percentile(50)) * 1e3);
  std::printf("read rtt p99      %10.1f ms\n",
              sim::to_seconds(r.latency.read_rtt.percentile(99)) * 1e3);
  std::printf("msgs/commit       %10.1f\n", r.messages_per_commit());
  std::printf("invariants        %10s\n", r.invariants_ok ? "OK" : "VIOLATED");
  std::printf("wall clock        %10.3f s\n", r.wall_seconds);
  std::printf("events executed   %10llu\n",
              static_cast<unsigned long long>(r.events_executed));
  std::printf("events/sec        %10.0f\n", r.events_per_sec());

  if (!bench_json.empty() && !write_bench_json(bench_json, cfg, r)) {
    return 2;
  }
  if (!metrics_json.empty() && !write_metrics_json(metrics_json, r)) {
    return 2;
  }
  if (!trace_json.empty()) {
    if (!tracer.write_chrome_trace(trace_json)) {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_json.c_str());
      return 2;
    }
    std::printf("trace: %zu spans, %zu instants -> %s (load at "
                "ui.perfetto.dev)\n",
                tracer.spans().size(), tracer.instants().size(),
                trace_json.c_str());
  }
  return r.invariants_ok ? 0 : 1;
}
