#include "symbols.h"

#include <cstdlib>
#include <string_view>

#include "tokwalk.h"

namespace qrdtm::lint {

namespace {

bool is_unordered_name(std::string_view s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset";
}

int builtin_width(std::string_view type) {
  if (type == "uint8_t" || type == "int8_t" || type == "char") return 1;
  if (type == "uint16_t" || type == "int16_t") return 2;
  if (type == "uint32_t" || type == "int32_t") return 4;
  if (type == "uint64_t" || type == "int64_t") return 8;
  return 0;
}

bool is_keyword(std::string_view s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "return" || s == "co_return" || s == "co_await" ||
         s == "sizeof" || s == "catch" || s == "do" || s == "else";
}

CodecOp::Kind writer_op(std::string_view s, bool* found) {
  *found = true;
  if (s == "u8") return CodecOp::kU8;
  if (s == "u16") return CodecOp::kU16;
  if (s == "u32") return CodecOp::kU32;
  if (s == "u64") return CodecOp::kU64;
  if (s == "i64") return CodecOp::kI64;
  if (s == "f64") return CodecOp::kF64;
  if (s == "boolean") return CodecOp::kBool;
  if (s == "blob") return CodecOp::kBlob;
  if (s == "str") return CodecOp::kStr;
  if (s == "raw") return CodecOp::kRaw;
  *found = false;
  return CodecOp::kU8;
}

/// Identifiers in the token range, in order (casts and std:: qualifiers are
/// included; field attribution filters against the struct's field list).
std::vector<std::string> idents_in(const std::vector<Token>& t, std::size_t b,
                                   std::size_t e) {
  std::vector<std::string> out;
  for (std::size_t k = b; k < e && k < t.size(); ++k) {
    if (t[k].kind == Tok::kIdent) out.emplace_back(t[k].text);
  }
  return out;
}

/// Split a call's argument range (just inside the parens) into top-level
/// argument sub-ranges.
std::vector<std::pair<std::size_t, std::size_t>> split_args(
    const std::vector<Token>& t, std::size_t b, std::size_t e) {
  std::vector<std::pair<std::size_t, std::size_t>> args;
  int depth = 0;
  std::size_t start = b;
  for (std::size_t k = b; k < e; ++k) {
    if (t[k].kind != Tok::kPunct) continue;
    std::string_view s = t[k].text;
    if (s == "(" || s == "[" || s == "{") ++depth;
    else if (s == ")" || s == "]" || s == "}") --depth;
    else if (s == "<") {
      std::size_t past = skip_angles(t, k);
      if (past != npos && past <= e) k = past - 1;  // skip template args
    } else if (s == "," && depth == 0) {
      args.emplace_back(start, k);
      start = k + 1;
    }
  }
  if (start < e) args.emplace_back(start, e);
  return args;
}

/// Parse a lambda element codec `[](Writer& w2, const T& e) { ... }` (or the
/// Reader flavor).  Returns the ops; `elem_type` receives the second
/// parameter's type for encoders.
void parse_codec_ops(const std::vector<Token>& t, std::size_t b, std::size_t e,
                     const std::string& var, bool encode,
                     std::vector<CodecOp>* ops);

bool parse_lambda_codec(const std::vector<Token>& t, std::size_t b,
                        std::size_t e, bool encode,
                        std::vector<CodecOp>* ops) {
  if (b >= e || !is_punct(t[b], "[")) return false;
  std::size_t cap_end = skip_balanced(t, b);
  if (cap_end == npos || cap_end >= e || !is_punct(t[cap_end], "(")) {
    return false;
  }
  std::size_t params_end = skip_balanced(t, cap_end);
  if (params_end == npos) return false;
  // Stream variable: identifier following "Writer &" / "Reader &".
  std::string var;
  for (std::size_t k = cap_end + 1; k + 2 < params_end; ++k) {
    if (is_ident(t[k], encode ? "Writer" : "Reader") &&
        is_punct(t[k + 1], "&") && t[k + 2].kind == Tok::kIdent) {
      var = std::string(t[k + 2].text);
      break;
    }
  }
  if (var.empty()) return false;
  // Body: first '{' after the parameter list (skips -> trailing returns).
  std::size_t body = params_end;
  while (body < e && !is_punct(t[body], "{")) ++body;
  if (body >= e) return false;
  std::size_t body_end = skip_balanced(t, body);
  if (body_end == npos || body_end > e + 1) return false;
  parse_codec_ops(t, body + 1, body_end - 1, var, encode, ops);
  return true;
}

/// Extract the ordered codec ops from a body range given the Writer/Reader
/// variable name.  Handles primitive ops, encode_vec/decode_vec (named
/// helper or inline lambda element codec), and free-encoder delegation.
void parse_codec_ops(const std::vector<Token>& t, std::size_t b, std::size_t e,
                     const std::string& var, bool encode,
                     std::vector<CodecOp>* ops) {
  for (std::size_t k = b; k < e; ++k) {
    if (t[k].kind != Tok::kIdent) continue;

    // <var>.op(args) -- primitive codec call on the stream variable.
    if (is_ident(t[k], var) && k + 3 < e && is_punct(t[k + 1], ".") &&
        t[k + 2].kind == Tok::kIdent && is_punct(t[k + 3], "(")) {
      std::string_view opname = t[k + 2].text;
      std::size_t close = skip_balanced(t, k + 3);
      if (close == npos || close > e) continue;
      bool found = false;
      CodecOp::Kind kind = writer_op(opname, &found);
      if (found) {
        CodecOp op;
        op.kind = kind;
        op.line = t[k].line;
        op.arg_idents = idents_in(t, k + 4, close - 1);
        ops->push_back(std::move(op));
      }
      // reserve()/size()/bytes()/expect_done()/... are not codec ops.
      k = close - 1;
      continue;
    }

    // encode_vec(w, field, elem) / decode_vec<T>(r, elem).
    if (is_ident(t[k], encode ? "encode_vec" : "decode_vec")) {
      std::size_t j = k + 1;
      std::string tmpl_type;
      if (j < e && is_punct(t[j], "<")) {
        std::size_t past = skip_angles(t, j);
        if (past != npos) {
          // Element type: last identifier in the template argument.
          auto ids = idents_in(t, j + 1, past - 1);
          if (!ids.empty()) tmpl_type = ids.back();
          j = past;
        }
      }
      if (j >= e || !is_punct(t[j], "(")) continue;
      std::size_t close = skip_balanced(t, j);
      if (close == npos || close > e) continue;
      auto args = split_args(t, j + 1, close - 1);
      CodecOp op;
      op.kind = CodecOp::kVec;
      op.line = t[k].line;
      op.elem = tmpl_type;  // decode: remember T for field resolution
      if (args.size() >= 2 && encode) {
        op.arg_idents = idents_in(t, args[1].first, args[1].second);
      }
      const std::size_t elem_arg = encode ? 2 : 1;
      if (args.size() > elem_arg) {
        auto [ab, ae] = args[elem_arg];
        if (ae - ab == 1 && t[ab].kind == Tok::kIdent) {
          op.elem = std::string(t[ab].text);  // named helper codec
        } else {
          parse_lambda_codec(t, ab, ae, encode, &op.elem_ops);
          if (!tmpl_type.empty()) op.elem = "";  // inline lambda wins
        }
      }
      ops->push_back(std::move(op));
      k = close - 1;
      continue;
    }

    // Free-encoder delegation: fname(w, ...) with the stream variable as
    // the first argument (e.g. ReadRequest::encode_into forwarding to
    // encode_read_request).  Only free calls count.
    if (encode && k + 1 < e && is_punct(t[k + 1], "(") &&
        !is_keyword(t[k].text) &&
        (k == b || (!is_punct(t[k - 1], ".") && !is_punct(t[k - 1], "->") &&
                    !is_punct(t[k - 1], "::")))) {
      std::size_t close = skip_balanced(t, k + 1);
      if (close == npos || close > e) continue;
      auto args = split_args(t, k + 2, close - 1);
      if (!args.empty() && args[0].second - args[0].first == 1 &&
          is_ident(t[args[0].first], var)) {
        CodecOp op;
        op.kind = CodecOp::kCall;
        op.line = t[k].line;
        op.elem = std::string(t[k].text);
        ops->push_back(std::move(op));
        k = close - 1;
        continue;
      }
    }

    // Decode-side delegation: helper(r) calls (e.g. decode_batch_write(r))
    // appear as vector element codecs only in this tree, which the kVec
    // case covers; a direct `x = helper(r)` splice is matched here.
    if (!encode && k + 1 < e && is_punct(t[k + 1], "(") &&
        !is_keyword(t[k].text) && t[k].text != "Reader" &&
        (k == b || (!is_punct(t[k - 1], ".") && !is_punct(t[k - 1], "->") &&
                    !is_punct(t[k - 1], "::")))) {
      std::size_t close = skip_balanced(t, k + 1);
      if (close == npos || close > e) continue;
      auto args = split_args(t, k + 2, close - 1);
      if (args.size() == 1 && args[0].second - args[0].first == 1 &&
          is_ident(t[args[0].first], var)) {
        CodecOp op;
        op.kind = CodecOp::kCall;
        op.line = t[k].line;
        op.elem = std::string(t[k].text);
        ops->push_back(std::move(op));
        k = close - 1;
        continue;
      }
    }
  }
}

/// Attribute decode ops to fields: for each op in a decode body, the field
/// is the last identifier on the left of the enclosing statement's `=`.
void attribute_decode_fields(const std::vector<Token>& t, std::size_t b,
                             std::size_t e, std::vector<CodecOp>* ops) {
  // Build statement spans and their lhs idents, then match ops by line.
  std::size_t stmt_start = b;
  std::size_t opi = 0;
  for (std::size_t k = b; k < e && opi < ops->size(); ++k) {
    const bool stmt_end = t[k].kind == Tok::kPunct &&
                          (t[k].text == ";" || t[k].text == "{" ||
                           t[k].text == "}");
    if (!stmt_end) continue;
    // lhs: tokens up to the first top-level '=' in [stmt_start, k).
    std::string field;
    int depth = 0;
    for (std::size_t j = stmt_start; j < k; ++j) {
      if (t[j].kind == Tok::kPunct) {
        std::string_view s = t[j].text;
        if (s == "(" || s == "[") ++depth;
        else if (s == ")" || s == "]") --depth;
        else if (s == "=" && depth == 0) {
          for (std::size_t m = stmt_start; m < j; ++m) {
            if (t[m].kind == Tok::kIdent) field = std::string(t[m].text);
          }
          break;
        }
      }
    }
    // Every op whose token line lies inside this statement gets the lhs.
    while (opi < ops->size() && !field.empty() &&
           (*ops)[opi].line >= t[stmt_start].line &&
           (*ops)[opi].line <= t[k].line) {
      (*ops)[opi].arg_idents.push_back(field);
      ++opi;
    }
    while (opi < ops->size() && (*ops)[opi].line <= t[k].line) ++opi;
    stmt_start = k + 1;
  }
}

/// Parse one struct definition starting at the 'struct' keyword.
void parse_struct(const std::string& file, const std::vector<Token>& t,
                  std::size_t i, SymbolTable* table) {
  if (i + 2 >= t.size() || t[i + 1].kind != Tok::kIdent) return;
  WireStruct ws;
  ws.name = std::string(t[i + 1].text);
  ws.file = file;
  ws.line = t[i + 1].line;
  std::size_t brace = i + 2;
  while (brace < t.size() && !is_punct(t[brace], "{")) {
    if (is_punct(t[brace], ";")) return;  // forward declaration
    ++brace;
  }
  if (brace >= t.size()) return;
  std::size_t body_end = skip_balanced(t, brace);
  if (body_end == npos) return;

  std::size_t k = brace + 1;
  const std::size_t e = body_end - 1;
  while (k < e) {
    std::size_t stmt_start = k;
    bool fn_decl = false;
    std::string fn_name;
    std::size_t eq = npos;
    while (k < e) {
      const Token& tk = t[k];
      if (tk.kind == Tok::kPunct) {
        std::string_view s = tk.text;
        if (s == "(") {
          if (!fn_decl && k > stmt_start && t[k - 1].kind == Tok::kIdent) {
            fn_decl = true;
            fn_name = std::string(t[k - 1].text);
          }
          std::size_t past = skip_balanced(t, k);
          if (past == npos || past > e) { k = e; break; }
          k = past;
          continue;
        }
        if (s == "<") {
          std::size_t past = skip_angles(t, k);
          if (past != npos && past <= e) { k = past; continue; }
        }
        if (s == "{") {  // inline member body or braced init: ends statement
          std::size_t past = skip_balanced(t, k);
          k = past == npos || past > e ? e : past;
          break;
        }
        if (s == "=" && eq == npos) eq = k;
        if (s == ";") { break; }
      }
      ++k;
    }
    const std::size_t stmt_end = k;
    if (k < e && is_punct(t[k], ";")) ++k;

    if (fn_decl) {
      if (fn_name == "encode" || fn_name == "encode_into") {
        ws.declares_encode = true;
      } else if (fn_name == "decode") {
        ws.declares_decode = true;
      }
      continue;
    }
    // Field: `<type tokens> name [= init]`.
    const std::size_t decl_end = eq == npos ? stmt_end : eq;
    std::vector<std::pair<std::string, std::size_t>> ids;
    bool is_vector = false;
    std::string vec_elem;
    for (std::size_t j = stmt_start; j < decl_end; ++j) {
      if (t[j].kind != Tok::kIdent) continue;
      std::string_view s = t[j].text;
      if (s == "std" || s == "const" || s == "mutable" || s == "public" ||
          s == "private" || s == "protected") {
        continue;
      }
      if (s == "using" || s == "static" || s == "friend" || s == "typedef" ||
          s == "enum" || s == "struct" || s == "class") {
        ids.clear();
        break;
      }
      if (s == "vector" && j + 1 < decl_end && is_punct(t[j + 1], "<")) {
        is_vector = true;
        std::size_t past = skip_angles(t, j + 1);
        if (past != npos) {
          auto elems = idents_in(t, j + 2, past - 1);
          // Drop std:: qualifiers; keep the principal element type.
          for (const std::string& id : elems) {
            if (id != "std") { vec_elem = id; break; }
          }
          ids.emplace_back("vector", t[j].line);
          j = past - 1;
        }
        continue;
      }
      ids.emplace_back(std::string(s), t[j].line);
    }
    if (ids.size() < 2) continue;
    WireField f;
    f.name = ids.back().first;
    f.type = is_vector ? "vector" : ids[ids.size() - 2].first;
    f.elem = vec_elem;
    f.line = static_cast<int>(ids.back().second);
    ws.fields.push_back(std::move(f));
  }
  if (!ws.fields.empty() || ws.declares_encode || ws.declares_decode) {
    table->structs.emplace(ws.name, std::move(ws));
  }
}

}  // namespace

void collect_symbols(const std::string& file, const LexResult& lexed,
                     SymbolTable* table) {
  const auto& t = lexed.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    std::string_view name = t[i].text;

    // ---- legacy det/coro symbols -------------------------------------
    // `using Alias = std::unordered_map<...>;` and integer-alias widths.
    if (name == "using" && i + 4 < t.size() && t[i + 1].kind == Tok::kIdent &&
        is_punct(t[i + 2], "=")) {
      std::size_t j = i + 3;
      if (is_ident(t[j], "std") && is_punct(t[j + 1], "::")) j += 2;
      if (j < t.size() && is_unordered_name(t[j].text)) {
        table->unordered_aliases.insert(std::string(t[i + 1].text));
      }
      if (j < t.size() && t[j].kind == Tok::kIdent) {
        int w = builtin_width(t[j].text);
        if (w == 0) {  // alias of an alias collected earlier
          auto it = table->type_widths.find(std::string(t[j].text));
          if (it != table->type_widths.end()) w = it->second;
        }
        if (w > 0) table->type_widths[std::string(t[i + 1].text)] = w;
      }
      continue;
    }

    // `enum class X : std::uint8_t {` -- underlying width.
    if (name == "enum" && i + 1 < t.size() && is_ident(t[i + 1], "class") &&
        i + 2 < t.size() && t[i + 2].kind == Tok::kIdent) {
      std::size_t j = i + 3;
      if (j < t.size() && is_punct(t[j], ":")) {
        ++j;
        if (j + 1 < t.size() && is_ident(t[j], "std") &&
            is_punct(t[j + 1], "::")) {
          j += 2;
        }
        if (j < t.size() && t[j].kind == Tok::kIdent) {
          int w = builtin_width(t[j].text);
          if (w > 0) table->type_widths[std::string(t[i + 2].text)] = w;
        }
      }
      continue;
    }

    // `std::unordered_map<...> name` -- also accessor declarations like
    // `const std::unordered_map<...>& entries() const`, whose name lets the
    // det rule flag range-fors over `obj.entries()`.
    if (is_unordered_name(name) && i + 1 < t.size() &&
        is_punct(t[i + 1], "<")) {
      std::size_t past = skip_angles(t, i + 1);
      if (past == npos) continue;
      while (past < t.size() &&
             (is_punct(t[past], "&") || is_punct(t[past], "*") ||
              is_ident(t[past], "const"))) {
        ++past;
      }
      if (past < t.size() && t[past].kind == Tok::kIdent) {
        table->unordered_vars.insert(std::string(t[past].text));
      }
      continue;
    }

    // `Alias name` for a previously seen unordered alias.
    if (table->unordered_aliases.count(std::string(name)) &&
        i + 1 < t.size() && t[i + 1].kind == Tok::kIdent) {
      table->unordered_vars.insert(std::string(t[i + 1].text));
      continue;
    }

    // `sim::Task<...> name(params)` with a reference parameter.
    if (name == "Task" && i + 1 < t.size() && is_punct(t[i + 1], "<")) {
      std::size_t past = skip_angles(t, i + 1);
      if (past == npos || past >= t.size()) continue;
      std::size_t name_at = past;
      if (t[name_at].kind == Tok::kIdent && name_at + 1 < t.size() &&
          is_punct(t[name_at + 1], "::")) {
        name_at += 2;
      }
      if (name_at + 1 >= t.size() || t[name_at].kind != Tok::kIdent ||
          !is_punct(t[name_at + 1], "(")) {
        continue;
      }
      std::size_t close = skip_balanced(t, name_at + 1);
      if (close == npos) continue;
      bool ref_param = false;
      int depth = 0;
      for (std::size_t k = name_at + 1; k < close - 1; ++k) {
        if (t[k].kind != Tok::kPunct) continue;
        if (t[k].text == "(" || t[k].text == "<" || t[k].text == "[") ++depth;
        else if (t[k].text == ")" || t[k].text == ">" || t[k].text == "]") --depth;
        else if (t[k].text == "&" && depth == 1) ref_param = true;
      }
      if (ref_param) {
        table->ref_param_task_fns.insert(std::string(t[name_at].text));
      }
      continue;
    }

    // ---- wire index --------------------------------------------------
    if (name == "struct") {
      parse_struct(file, t, i, table);
      continue;
    }

    // `constexpr <...>MsgKind kFoo = 0xNNNN;`
    if (name == "MsgKind" && i + 3 < t.size() &&
        t[i + 1].kind == Tok::kIdent && is_punct(t[i + 2], "=") &&
        t[i + 3].kind == Tok::kNumber) {
      MsgTag tag;
      tag.name = std::string(t[i + 1].text);
      tag.file = file;
      tag.line = t[i + 1].line;
      tag.value = std::strtol(std::string(t[i + 3].text).c_str(), nullptr, 0);
      table->msg_tags.push_back(std::move(tag));
      continue;
    }

    // `register_service(msg::kFoo, ...)` -- the dispatch table.
    if (name == "register_service" && i + 1 < t.size() &&
        is_punct(t[i + 1], "(")) {
      std::size_t close = skip_balanced(t, i + 1);
      if (close == npos) continue;
      auto args = split_args(t, i + 2, close - 1);
      if (!args.empty()) {
        auto ids = idents_in(t, args[0].first, args[0].second);
        if (!ids.empty()) table->registered_tags.insert(ids.back());
      }
      continue;
    }

    // ---- codec bodies ------------------------------------------------
    // Function definition with a Writer& or Reader& parameter, or a member
    // `X::decode(const Bytes&)`.
    if (i + 1 < t.size() && is_punct(t[i + 1], "(") && !is_keyword(name)) {
      std::size_t close = skip_balanced(t, i + 1);
      if (close == npos) continue;
      // Definition: a '{' follows the parameter list (possibly after
      // const / noexcept / trailing-return tokens).
      std::size_t body = close;
      bool is_def = false;
      for (std::size_t guard = 0; body < t.size() && guard < 12;
           ++body, ++guard) {
        if (is_punct(t[body], "{")) { is_def = true; break; }
        if (is_punct(t[body], ";") || is_punct(t[body], "}") ||
            is_punct(t[body], "=") || is_punct(t[body], ",") ||
            is_punct(t[body], ")")) {
          break;
        }
      }
      if (!is_def) continue;
      std::size_t body_end = skip_balanced(t, body);
      if (body_end == npos) continue;

      // Parameter scan.
      std::string writer_var, reader_var;
      std::string second_param_type;
      bool bytes_param = false;
      {
        auto params = split_args(t, i + 2, close - 1);
        for (std::size_t pi = 0; pi < params.size(); ++pi) {
          auto [pb, pe] = params[pi];
          for (std::size_t k = pb; k < pe; ++k) {
            if (t[k].kind != Tok::kIdent) continue;
            if (t[k].text == "Bytes") bytes_param = true;
            if ((t[k].text == "Writer" || t[k].text == "Reader") &&
                k + 2 < pe && is_punct(t[k + 1], "&") &&
                t[k + 2].kind == Tok::kIdent) {
              if (t[k].text == "Writer") {
                writer_var = std::string(t[k + 2].text);
              } else {
                reader_var = std::string(t[k + 2].text);
              }
            }
          }
          if (pi == 1) {
            auto ids = idents_in(t, pb, pe);
            for (const std::string& id : ids) {
              if (id != "std" && id != "const") {
                second_param_type = id;
                break;
              }
            }
          }
        }
      }

      const bool member = i >= 2 && is_punct(t[i - 1], "::") &&
                          t[i - 2].kind == Tok::kIdent;

      if (!writer_var.empty()) {
        CodecBody cb;
        cb.member = member && name == "encode_into";
        cb.name = cb.member ? std::string(t[i - 2].text) : std::string(name);
        cb.file = file;
        cb.line = t[i].line;
        cb.elem_type = second_param_type;
        parse_codec_ops(t, body + 1, body_end - 1, writer_var, true, &cb.ops);
        if (!cb.ops.empty()) table->encoders.emplace(cb.name, std::move(cb));
        i = body_end - 1;
        continue;
      }

      const bool member_decode = member && name == "decode" && bytes_param;
      if (member_decode && reader_var.empty()) {
        // `X X::decode(const Bytes& b) { Reader r(b); ... }`: find the
        // Reader local.
        for (std::size_t k = body + 1; k + 2 < body_end; ++k) {
          if (is_ident(t[k], "Reader") && t[k + 1].kind == Tok::kIdent &&
              is_punct(t[k + 2], "(")) {
            reader_var = std::string(t[k + 1].text);
            break;
          }
        }
      }
      if (!reader_var.empty() && (member_decode || !member)) {
        CodecBody cb;
        cb.member = member_decode;
        cb.name = member_decode ? std::string(t[i - 2].text)
                                : std::string(name);
        cb.file = file;
        cb.line = t[i].line;
        // Free decoder: return type is the identifier before the name.
        if (!member_decode && i > 0 && t[i - 1].kind == Tok::kIdent) {
          cb.elem_type = std::string(t[i - 1].text);
        }
        parse_codec_ops(t, body + 1, body_end - 1, reader_var, false,
                        &cb.ops);
        attribute_decode_fields(t, body + 1, body_end - 1, &cb.ops);
        if (!cb.ops.empty()) table->decoders.emplace(cb.name, std::move(cb));
        i = body_end - 1;
        continue;
      }
    }
  }
}

}  // namespace qrdtm::lint
