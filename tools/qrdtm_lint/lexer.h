// Minimal C++ tokenizer for qrdtm_lint.
//
// This is NOT a compiler front end: it produces a flat stream of
// identifiers, literals and punctuators with line numbers, which is exactly
// enough for the pattern rules in rules.cpp.  It understands the lexical
// constructs that would otherwise produce false matches -- line/block
// comments, string/char literals (including raw strings), and preprocessor
// directives (skipped, with line-continuation handling) -- and it merges
// multi-character punctuators ("::", "->", "<=", ">>", ...) so rules can
// match on single tokens without worrying about maximal munch.
//
// Comments are scanned for suppression directives of the form
//
//     // qrdtm-lint: allow(det-rand, det-thread)
//
// A directive suppresses the named rules on its own line and on the line
// that follows it (so it can trail the offending code or sit just above).
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace qrdtm::lint {

enum class Tok {
  kIdent,  // identifiers and keywords (co_await, new, for, ...)
  kNumber,
  kString,  // string literal (text excludes quotes' content details)
  kChar,
  kPunct,
  kEnd,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string_view text;  // view into the source buffer
  int line = 0;
};

/// Lines on which each rule is suppressed: rule name -> set of line numbers.
using SuppressionMap = std::map<std::string, std::set<int>>;

/// One `qrdtm-lint: allow(...)` directive as written, for the stale-
/// suppression audit (a directive that never suppresses anything is dead
/// weight and hides a fixed -- or mistyped -- rule).
struct Directive {
  int line = 0;                    // line the directive sits on
  std::vector<std::string> rules;  // rule names listed in allow(...)
};

struct LexResult {
  std::vector<Token> tokens;  // terminated by a kEnd token
  SuppressionMap suppressions;
  std::vector<Directive> directives;
};

/// Tokenize `source`.  The returned tokens view into `source`, which must
/// outlive the result.
LexResult lex(std::string_view source);

}  // namespace qrdtm::lint
