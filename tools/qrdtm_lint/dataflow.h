// Intraprocedural buffer-lifecycle dataflow for qrdtm_lint.
//
// Tracks locals that take ownership of a pooled wire buffer:
//
//   Writer w(rpc_.acquire_buffer(hint));      // Writer adopting a buffer
//   Bytes  b = net.pool().acquire(hint);      // raw pooled Bytes
//   Bytes  e = std::move(w).take();           // ownership handoff from Writer
//
// and follows them through a three-point lattice per variable:
//
//   Owned ----release/move----> Released
//     \                          /
//      `---- join of both ---> Maybe        (never diagnosed)
//
// Ownership leaves a variable via `release_buffer(std::move(x))` /
// `.release(std::move(x))` (an explicit pool return) or via any other
// `std::move(x)` (handoff into a call, a return value, or another tracked
// local).  Diagnostics:
//
//   buf-leak               Owned at the end of the declaring scope or at a
//                          return statement.
//   buf-double-release     a pool release of a variable already Released.
//   buf-use-after-release  any other mention of a Released variable.
//
// Control flow: if/else joins branch environments (branches that end in
// return/co_return are excluded, having been leak-checked at the return);
// loop and switch bodies are analyzed once and joined with the incoming
// environment.  Lambda bodies are analyzed as separate functions with a
// fresh environment (a lambda runs later; flow does not continue into it).
// `Maybe` is deliberately silent: the pass only reports what it can prove
// on every path it models.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "lexer.h"

namespace qrdtm::lint {

/// Diagnostic sink: (line, rule, message).  Suppression handling stays with
/// the caller (rules.cpp), which owns the file's SuppressionMap.
using BufferDiagFn =
    std::function<void(int line, const char* rule, std::string msg)>;

/// Run the buffer-lifecycle analysis over one lexed file.
void analyze_buffer_lifecycle(const std::vector<Token>& tokens,
                              const BufferDiagFn& diag);

}  // namespace qrdtm::lint
