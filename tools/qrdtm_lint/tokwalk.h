// Shared token-walking helpers for qrdtm_lint passes.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "lexer.h"

namespace qrdtm::lint {

inline constexpr std::size_t npos = static_cast<std::size_t>(-1);

inline bool is_punct(const Token& t, std::string_view s) {
  return t.kind == Tok::kPunct && t.text == s;
}
inline bool is_ident(const Token& t, std::string_view s) {
  return t.kind == Tok::kIdent && t.text == s;
}

/// `i` points at '<'.  Returns the index just past the matching '>', or npos
/// if this '<' does not open a (plausible) template argument list.  ">>"
/// closes two levels; angles inside parentheses are ignored.
inline std::size_t skip_angles(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  int parens = 0;
  for (std::size_t k = i; k < t.size(); ++k) {
    const Token& tk = t[k];
    if (tk.kind == Tok::kEnd) return npos;
    if (tk.kind != Tok::kPunct) continue;
    if (tk.text == "(" || tk.text == "[") {
      ++parens;
    } else if (tk.text == ")" || tk.text == "]") {
      if (--parens < 0) return npos;
    } else if (parens == 0) {
      if (tk.text == "<") {
        ++depth;
      } else if (tk.text == ">") {
        if (--depth == 0) return k + 1;
      } else if (tk.text == ">>") {
        depth -= 2;
        if (depth <= 0) return k + 1;
      } else if (tk.text == ";" || tk.text == "{" || tk.text == "}") {
        return npos;  // statement boundary: was a comparison, not a template
      }
    }
  }
  return npos;
}

/// `i` points at an opener ("(", "[" or "{").  Returns the index just past
/// the matching closer, or npos.
inline std::size_t skip_balanced(const std::vector<Token>& t, std::size_t i) {
  std::string_view open = t[i].text;
  std::string_view close = open == "(" ? ")" : open == "[" ? "]" : "}";
  int depth = 0;
  for (std::size_t k = i; k < t.size(); ++k) {
    if (t[k].kind != Tok::kPunct) continue;
    if (t[k].text == open) ++depth;
    if (t[k].text == close && --depth == 0) return k + 1;
  }
  return npos;
}

}  // namespace qrdtm::lint
