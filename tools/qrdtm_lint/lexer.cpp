#include "lexer.h"

#include <cctype>
#include <cstddef>

namespace qrdtm::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parse "qrdtm-lint: allow(det-rand, det-thread)" directives out of a
/// comment and record the named rules as suppressed on `line` and
/// `line + 1`.  Items that are not plausible rule names (placeholders like
/// "..." or "<rule>" in prose that merely documents the syntax) are
/// ignored.
bool plausible_rule_name(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-') {
      return false;
    }
  }
  return true;
}

void scan_directive(std::string_view comment, int line, LexResult* out) {
  constexpr std::string_view kKey = "qrdtm-lint:";
  std::size_t at = comment.find(kKey);
  if (at == std::string_view::npos) return;
  std::size_t p = at + kKey.size();
  while (p < comment.size() && std::isspace(static_cast<unsigned char>(comment[p]))) ++p;
  constexpr std::string_view kAllow = "allow(";
  if (comment.compare(p, kAllow.size(), kAllow) != 0) return;
  p += kAllow.size();
  std::size_t close = comment.find(')', p);
  if (close == std::string_view::npos) return;
  std::string_view list = comment.substr(p, close - p);
  Directive dir;
  dir.line = line;
  // Split on commas, trim whitespace.
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    std::string_view item = list.substr(
        start, comma == std::string_view::npos ? list.size() - start
                                               : comma - start);
    while (!item.empty() && std::isspace(static_cast<unsigned char>(item.front())))
      item.remove_prefix(1);
    while (!item.empty() && std::isspace(static_cast<unsigned char>(item.back())))
      item.remove_suffix(1);
    if (plausible_rule_name(item)) {
      auto& lines = out->suppressions[std::string(item)];
      lines.insert(line);
      lines.insert(line + 1);
      dir.rules.emplace_back(item);
    }
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  if (!dir.rules.empty()) out->directives.push_back(dir);
}

// Two- and three-character punctuators, longest first so maximal munch
// applies.  Keeping "<=" ">=" "<<" ">>" etc. fused means the template-depth
// scanners in rules.cpp only see bare '<' / '>' where the source really has
// an angle bracket (">>" still closes two templates; rules handle that).
constexpr std::string_view kPuncts3[] = {"<<=", ">>=", "<=>", "...", "->*"};
constexpr std::string_view kPuncts2[] = {
    "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
};

}  // namespace

LexResult lex(std::string_view src) {
  LexResult out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto at_line_start = [&](std::size_t pos) {
    while (pos > 0) {
      char c = src[pos - 1];
      if (c == '\n') return true;
      if (c != ' ' && c != '\t') return false;
      --pos;
    }
    return true;
  };

  while (i < n) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Preprocessor directive: skip to end of line, honouring backslash
    // continuations (nothing in a directive participates in the rules).
    if (c == '#' && at_line_start(i)) {
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      scan_directive(src.substr(start, i - start), line, &out);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t start = i;
      int start_line = line;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = i + 1 < n ? i + 2 : n;
      scan_directive(src.substr(start, i - start), start_line, &out);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t start = i;
      std::size_t p = i + 2;
      std::size_t dstart = p;
      while (p < n && src[p] != '(') ++p;
      std::string_view delim = src.substr(dstart, p - dstart);
      std::string close;
      close.reserve(delim.size() + 2);
      close += ')';
      close += delim;
      close += '"';
      std::size_t end = src.find(close, p);
      end = end == std::string_view::npos ? n : end + close.size();
      for (std::size_t k = i; k < end; ++k)
        if (src[k] == '\n') ++line;
      out.tokens.push_back({Tok::kString, src.substr(start, end - start),
                            line});
      i = end;
      continue;
    }
    // String / char literal (with escape handling).
    if (c == '"' || c == '\'') {
      std::size_t start = i;
      int start_line = line;
      ++i;
      while (i < n && src[i] != c) {
        if (src[i] == '\\' && i + 1 < n) {
          ++i;
        } else if (src[i] == '\n') {
          ++line;  // ill-formed, but keep line counts sane
        }
        ++i;
      }
      if (i < n) ++i;
      out.tokens.push_back({c == '"' ? Tok::kString : Tok::kChar,
                            src.substr(start, i - start), start_line});
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      std::size_t start = i;
      while (i < n && ident_char(src[i])) ++i;
      out.tokens.push_back({Tok::kIdent, src.substr(start, i - start), line});
      continue;
    }
    // Number (we do not need precise pp-number semantics; digits, dots,
    // exponent signs and ' separators are enough).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t start = i;
      while (i < n && (ident_char(src[i]) || src[i] == '.' || src[i] == '\'' ||
                       ((src[i] == '+' || src[i] == '-') && i > start &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                         src[i - 1] == 'p' || src[i - 1] == 'P')))) {
        ++i;
      }
      out.tokens.push_back({Tok::kNumber, src.substr(start, i - start), line});
      continue;
    }
    // Punctuator: fuse multi-char forms.
    std::size_t len = 1;
    for (std::string_view p3 : kPuncts3) {
      if (src.compare(i, p3.size(), p3) == 0) {
        len = 3;
        break;
      }
    }
    if (len == 1) {
      for (std::string_view p2 : kPuncts2) {
        if (src.compare(i, p2.size(), p2) == 0) {
          len = 2;
          break;
        }
      }
    }
    out.tokens.push_back({Tok::kPunct, src.substr(i, len), line});
    i += len;
  }
  out.tokens.push_back({Tok::kEnd, {}, line});
  return out;
}

}  // namespace qrdtm::lint
