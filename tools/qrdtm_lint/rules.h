// Rule engine for qrdtm_lint.
//
// Three rule families (see DESIGN.md "Determinism & safety rules"):
//
//   det  -- determinism: protocol/simulation code must derive every observable
//           from the seeded Rng streams and simulated time, never from the
//           host environment.  Bans wall clocks, libc/std randomness, native
//           threading primitives, pointer-keyed containers, and iteration
//           over std::unordered_* containers (hash iteration order is not
//           specified and may vary across libstdc++ versions / ASLR).
//   coro -- coroutine lifetime: a lambda coroutine's captures live in the
//           closure object, NOT in the coroutine frame; if the closure (or a
//           by-reference captured local) dies while the coroutine is
//           suspended, resumption reads freed memory.  Likewise a temporary
//           bound to a reference parameter of a sim::Task<>-returning
//           function dies at the end of the full expression, which a
//           suspended coroutine outlives unless the call is directly
//           co_awaited.
//   hot  -- hot-path hygiene: the event kernel, RPC layer and transaction
//           scopes are zero-allocation in steady state (PR 1); std::function
//           construction, naked new and make_shared on those paths would
//           silently reintroduce per-event allocations.
//
// Every diagnostic carries a rule name and is suppressible in source with
// `// qrdtm-lint: allow(<rule>)` on the same or the preceding line.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace qrdtm::lint {

enum Family : unsigned {
  kDet = 1u << 0,
  kCoro = 1u << 1,
  kHot = 1u << 2,
};

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Cross-file context shared by all files in one directory group: names of
/// variables/aliases with std::unordered_* types, and names of
/// sim::Task<>-returning functions that take reference parameters.
/// Grouping by directory keeps e.g. `writeset_` in src/baselines (a
/// std::map) from colliding with `writeset_` in src/core (unordered).
struct SymbolTable {
  std::set<std::string> unordered_vars;
  std::set<std::string> unordered_aliases;
  std::set<std::string> ref_param_task_fns;
};

/// Pass 1: harvest symbols from one lexed file into `table`.
void collect_symbols(const LexResult& lexed, SymbolTable* table);

/// Pass 2: run the rule families selected by `families` (bitwise-or of
/// Family) over one lexed file, appending unsuppressed diagnostics.
void run_rules(const std::string& file, const LexResult& lexed,
               const SymbolTable& table, unsigned families,
               std::vector<Diagnostic>* out);

/// All rule names, for --list-rules and directive validation.
const std::vector<std::string>& all_rule_names();

}  // namespace qrdtm::lint
