// Rule engine for qrdtm_lint.
//
// Six rule families (see DESIGN.md §5 and §14):
//
//   det   -- determinism: protocol/simulation code must derive every
//            observable from the seeded Rng streams and simulated time,
//            never from the host environment.
//   coro  -- coroutine lifetime: closure captures and temporaries bound to
//            reference parameters die before a suspended coroutine resumes.
//   hot   -- hot-path hygiene: no per-event allocation on the kernel/RPC/
//            txn paths.
//   codec -- wire-codec symmetry (group-level): encode and decode bodies of
//            each wire message must agree in op count, order, field
//            attribution and width, and every message tag must be
//            registered exactly once in a dispatch table.
//   buffer-- pooled-buffer lifecycle (flow-aware, see dataflow.h): no leak,
//            double release, or use-after-release of acquired wire buffers.
//   epoch -- epoch/lease discipline: no raw Message construction outside
//            the transport (bypassing dst_epoch stamping), no protection/
//            lock acquisition without a lease timestamp.
//
// Every diagnostic carries a rule name and is suppressible in source with
// `// qrdtm-lint: allow(<rule>)` on the same or the preceding line.
// Suppressions that fire are recorded in UsedSuppressions so the stale-
// suppression audit (`--stale-suppressions`) can flag allow() directives
// that no longer suppress anything.
#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lexer.h"
#include "symbols.h"

namespace qrdtm::lint {

enum Family : unsigned {
  kDet = 1u << 0,
  kCoro = 1u << 1,
  kHot = 1u << 2,
  kCodec = 1u << 3,
  kBuffer = 1u << 4,
  kEpoch = 1u << 5,
};

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// (line, rule) pairs whose suppression directive actually absorbed a
/// diagnostic in this run; keyed per file by the caller.
using UsedSuppressions = std::set<std::pair<int, std::string>>;

/// Pass 2: run the per-file rule families selected by `families` (bitwise-or
/// of Family) over one lexed file, appending unsuppressed diagnostics.
/// When `used` is non-null, suppressed diagnostics record their (line, rule)
/// there instead.
void run_rules(const std::string& file, const LexResult& lexed,
               const SymbolTable& table, unsigned families,
               std::vector<Diagnostic>* out,
               UsedSuppressions* used = nullptr);

/// One file participating in a directory group, for the group-level pass.
struct GroupFile {
  std::string path;
  const LexResult* lexed = nullptr;
  unsigned families = 0;
};

/// Pass 3: group-level rules (codec symmetry, tag registration) over one
/// directory group's symbol table.  Diagnostics anchor to the file the
/// offending struct/codec/tag lives in and respect that file's suppressions
/// (and family selection: a diagnostic is only emitted when its anchor file
/// has the codec family enabled).
void run_group_rules(const std::vector<GroupFile>& files,
                     const SymbolTable& table, std::vector<Diagnostic>* out,
                     std::map<std::string, UsedSuppressions>* used = nullptr);

/// All rule names, for --list-rules and directive validation.
const std::vector<std::string>& all_rule_names();

/// The Family bit a rule belongs to, or 0 for an unknown rule name.
unsigned family_of_rule(const std::string& rule);

}  // namespace qrdtm::lint
