// Symbol index for qrdtm_lint (pass 1 of the multi-pass analyzer).
//
// collect_symbols() harvests, per directory group, everything the flow-aware
// rule families need to reason ACROSS files:
//
//   * the legacy det/coro symbols (unordered containers, Task<> functions
//     with reference parameters),
//   * wire message structs and their field lists (name, declared type),
//   * encode/decode bodies reduced to *codec-op sequences* -- the ordered
//     list of Writer/Reader primitive calls (u8/u16/u32/u64/i64/f64/
//     boolean/blob/str/raw) plus vector codecs with their element codec
//     inlined (named helper or lambda),
//   * message-kind constants (`constexpr net::MsgKind kFoo = 0x0101;`) and
//     the dispatch-table registrations (`register_service(msg::kFoo, ...)`),
//   * integer type aliases and `enum class X : uintN_t` underlying widths,
//     so codec ops can be checked against declared field widths.
//
// Grouping stays per-directory (a struct declared in wire.h is matched with
// codec bodies in wire.cpp and registrations in qr_server.cpp, all under
// src/core/) so unrelated subsystems never alias each other's names.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace qrdtm::lint {

/// One primitive serde operation inside an encode or decode body.
struct CodecOp {
  enum Kind {
    kU8,
    kU16,
    kU32,
    kU64,
    kI64,
    kF64,
    kBool,
    kBlob,
    kStr,
    kRaw,   // length-prefix-free append; has no self-describing decode
    kVec,   // encode_vec / decode_vec with an element codec
    kCall,  // delegation to a named free encoder/decoder (spliced at check)
  };
  Kind kind = kU8;
  int line = 0;
  /// Identifiers appearing in the operand expression (field attribution is
  /// resolved against the struct's field list at rule time).
  std::vector<std::string> arg_idents;
  /// kVec: the named element codec, empty when the element codec is an
  /// inline lambda.  kCall: the delegated-to function name.
  std::string elem;
  /// kVec with an inline lambda element codec: its ops.
  std::vector<CodecOp> elem_ops;
};

/// One encode or decode body, reduced to its codec-op sequence.
struct CodecBody {
  std::string name;  // struct name (member codec) or free-function name
  std::string file;
  int line = 0;
  bool member = false;
  /// Free element codecs: the element struct type (2nd parameter of an
  /// encoder, return type of a decoder) when it could be determined.
  std::string elem_type;
  std::vector<CodecOp> ops;
};

struct WireField {
  std::string name;
  std::string type;  // last type identifier ("uint32_t", "Bytes", "vector"...)
  std::string elem;  // vector element type, when type == "vector"
  int line = 0;
};

struct WireStruct {
  std::string name;
  std::string file;
  int line = 0;
  std::vector<WireField> fields;
  bool declares_encode = false;  // has encode_into / encode member decl
  bool declares_decode = false;  // has static decode member decl
};

/// A `constexpr <...>MsgKind kFoo = 0xNNNN;` definition.
struct MsgTag {
  std::string name;
  std::string file;
  int line = 0;
  long value = -1;
};

/// Cross-file context shared by all files in one directory group.
struct SymbolTable {
  // Legacy det/coro symbols.
  std::set<std::string> unordered_vars;
  std::set<std::string> unordered_aliases;
  std::set<std::string> ref_param_task_fns;

  // Wire codec index.
  std::map<std::string, WireStruct> structs;
  std::map<std::string, CodecBody> encoders;  // struct name or helper name
  std::map<std::string, CodecBody> decoders;
  std::vector<MsgTag> msg_tags;
  std::set<std::string> registered_tags;  // names seen in register_service()

  // Declared widths: `using X = std::uintN_t` and `enum class X : uintN_t`.
  std::map<std::string, int> type_widths;
};

/// Pass 1: harvest symbols from one lexed file into `table`.
void collect_symbols(const std::string& file, const LexResult& lexed,
                     SymbolTable* table);

}  // namespace qrdtm::lint
