// qrdtm_lint -- in-tree determinism / coroutine-safety / hot-path analyzer.
//
// Usage:
//   qrdtm_lint [options] <file-or-dir>...
//
// Options:
//   --rules det,coro,hot   Force the listed rule families onto every input
//                          file (used by the fixture self-tests).  Without
//                          it, families are selected per file from its path:
//                            det : src/{sim,core,quorum,net,store,apps,
//                                  baselines} (bench/ and tools/ exempt)
//                            coro: every file
//                            hot : src/sim, src/net, src/core/txn.*
//   --list-rules           Print every rule name and exit.
//   -q                     Only print the summary line.
//
// Exit status: 0 = no diagnostics, 1 = diagnostics found, 2 = usage/IO
// error.  Diagnostics are suppressible in source with
// `// qrdtm-lint: allow(<rule>)` on the same or the preceding line.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.h"
#include "rules.h"

namespace fs = std::filesystem;
using namespace qrdtm::lint;

namespace {

bool has_source_ext(const fs::path& p) {
  std::string e = p.extension().string();
  return e == ".h" || e == ".hpp" || e == ".hh" || e == ".cpp" ||
         e == ".cc" || e == ".cxx";
}

bool contains_dir(const std::string& path, const char* dir) {
  // Match `dir` as a whole path component ("/sim/" or leading "sim/").
  std::string needle = std::string("/") + dir + "/";
  std::string hay = "/" + path;
  return hay.find(needle) != std::string::npos;
}

unsigned families_for(const fs::path& file) {
  std::string p = file.generic_string();
  unsigned fam = kCoro;
  const bool exempt = contains_dir(p, "bench") || contains_dir(p, "tools") ||
                      contains_dir(p, "tests") || contains_dir(p, "examples");
  if (!exempt) {
    for (const char* d :
         {"sim", "core", "quorum", "net", "store", "apps", "baselines"}) {
      if (contains_dir(p, d)) {
        fam |= kDet;
        break;
      }
    }
    const std::string stem = file.filename().string();
    if (contains_dir(p, "sim") || contains_dir(p, "net") ||
        (contains_dir(p, "core") && stem.rfind("txn.", 0) == 0)) {
      fam |= kHot;
    }
  }
  return fam;
}

struct FileEntry {
  fs::path path;
  std::string source;
  LexResult lexed;
  unsigned families = 0;
};

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> inputs;
  unsigned forced_families = 0;
  bool quiet = false;

  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg == "--list-rules") {
      for (const std::string& r : all_rule_names()) std::puts(r.c_str());
      return 0;
    }
    if (arg == "-q") {
      quiet = true;
      continue;
    }
    if (arg == "--rules") {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "qrdtm_lint: --rules needs an argument\n");
        return 2;
      }
      std::stringstream ss(argv[++a]);
      std::string item;
      while (std::getline(ss, item, ',')) {
        if (item == "det") forced_families |= kDet;
        else if (item == "coro") forced_families |= kCoro;
        else if (item == "hot") forced_families |= kHot;
        else {
          std::fprintf(stderr, "qrdtm_lint: unknown rule family '%s'\n",
                       item.c_str());
          return 2;
        }
      }
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "qrdtm_lint: unknown option '%s'\n", arg.c_str());
      return 2;
    }
    inputs.emplace_back(arg);
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: qrdtm_lint [--rules det,coro,hot] [--list-rules] "
                 "[-q] <file-or-dir>...\n");
    return 2;
  }

  // Gather files.
  std::vector<fs::path> files;
  for (const fs::path& in : inputs) {
    std::error_code ec;
    if (fs::is_directory(in, ec)) {
      for (auto it = fs::recursive_directory_iterator(in, ec);
           it != fs::recursive_directory_iterator(); ++it) {
        const fs::path& p = it->path();
        std::string name = p.filename().string();
        if (it->is_directory() &&
            (name.rfind("build", 0) == 0 || name == ".git")) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && has_source_ext(p)) files.push_back(p);
      }
    } else if (fs::is_regular_file(in, ec)) {
      files.push_back(in);
    } else {
      std::fprintf(stderr, "qrdtm_lint: cannot read '%s'\n",
                   in.string().c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  // Lex everything, grouping by parent directory so cross-file symbols
  // (e.g. an unordered member declared in foo.h, iterated in foo.cpp) are
  // visible without leaking names across unrelated subsystems.
  std::vector<FileEntry> entries;
  std::map<std::string, SymbolTable> tables;
  for (const fs::path& f : files) {
    std::ifstream ifs(f, std::ios::binary);
    if (!ifs) {
      std::fprintf(stderr, "qrdtm_lint: cannot open '%s'\n",
                   f.string().c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << ifs.rdbuf();
    FileEntry e;
    e.path = f;
    e.source = std::move(buf).str();
    e.lexed = lex(e.source);
    e.families = forced_families ? forced_families : families_for(f);
    collect_symbols(e.lexed, &tables[f.parent_path().generic_string()]);
    entries.push_back(std::move(e));
  }

  std::vector<Diagnostic> diags;
  for (const FileEntry& e : entries) {
    run_rules(e.path.generic_string(), e.lexed,
              tables[e.path.parent_path().generic_string()], e.families,
              &diags);
  }

  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return a.file != b.file ? a.file < b.file : a.line < b.line;
            });
  if (!quiet) {
    for (const Diagnostic& d : diags) {
      std::fprintf(stderr, "%s:%d: error: [%s] %s\n", d.file.c_str(), d.line,
                   d.rule.c_str(), d.message.c_str());
    }
  }
  std::fprintf(stderr, "qrdtm_lint: %zu file(s), %zu diagnostic(s)\n",
               entries.size(), diags.size());
  return diags.empty() ? 0 : 1;
}
