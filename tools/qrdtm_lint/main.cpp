// qrdtm_lint -- in-tree protocol-invariant analyzer.
//
// Usage:
//   qrdtm_lint [options] <file-or-dir>...
//
// Options:
//   --families det,coro,hot,codec,buffer,epoch
//                          Force the listed rule families onto every input
//                          file (used by the fixture self-tests; --rules is
//                          an accepted alias).  Without it, families are
//                          selected per file from its path:
//                            det   : src/{sim,core,quorum,net,store,apps,
//                                    baselines} (bench/ and tools/ exempt:
//                                    the harness legitimately reads wall
//                                    clocks)
//                            coro  : every file
//                            hot   : src/sim, src/net, src/core/txn.*
//                            codec : src dirs above plus bench/ and tools/
//                            buffer: likewise
//                            epoch : likewise (tests/ stay exempt: they
//                                    build raw Messages to probe the
//                                    transport itself)
//   --sarif <path>         Also write diagnostics as SARIF 2.1.0 to <path>.
//   --stale-suppressions   Audit `qrdtm-lint: allow(...)` directives instead
//                          of reporting diagnostics: exit 1 when a directive
//                          names an unknown rule or no longer suppresses
//                          anything its family would emit on that file.
//   --list-rules           Print every rule name and exit.
//   -q                     Only print the summary line.
//
// Exit status: 0 = no diagnostics, 1 = diagnostics found, 2 = usage/IO
// error.  Diagnostics are suppressible in source with
// `// qrdtm-lint: allow(<rule>)` on the same or the preceding line.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lexer.h"
#include "rules.h"
#include "symbols.h"

namespace fs = std::filesystem;
using namespace qrdtm::lint;

namespace {

bool has_source_ext(const fs::path& p) {
  std::string e = p.extension().string();
  return e == ".h" || e == ".hpp" || e == ".hh" || e == ".cpp" ||
         e == ".cc" || e == ".cxx";
}

bool contains_dir(const std::string& path, const char* dir) {
  // Match `dir` as a whole path component ("/sim/" or leading "sim/").
  std::string needle = std::string("/") + dir + "/";
  std::string hay = "/" + path;
  return hay.find(needle) != std::string::npos;
}

unsigned families_for(const fs::path& file) {
  std::string p = file.generic_string();
  unsigned fam = kCoro;
  const bool test_like =
      contains_dir(p, "tests") || contains_dir(p, "examples");
  const bool bench_tools = contains_dir(p, "bench") || contains_dir(p, "tools");
  bool src_dir = false;
  if (!test_like && !bench_tools) {
    for (const char* d :
         {"sim", "core", "quorum", "net", "store", "apps", "baselines"}) {
      if (contains_dir(p, d)) {
        src_dir = true;
        break;
      }
    }
  }
  if (src_dir) {
    fam |= kDet;
    const std::string stem = file.filename().string();
    if (contains_dir(p, "sim") || contains_dir(p, "net") ||
        (contains_dir(p, "core") && stem.rfind("txn.", 0) == 0)) {
      fam |= kHot;
    }
  }
  // The protocol-invariant families run everywhere except tests/examples:
  // bench/ and tools/ ship their own codecs and buffer handling (the fuzzer
  // drives the wire codecs directly) and must obey the same invariants.
  if (src_dir || bench_tools) {
    fam |= kCodec | kBuffer | kEpoch;
  }
  return fam;
}

struct FileEntry {
  fs::path path;
  std::string source;
  LexResult lexed;
  unsigned families = 0;
};

void json_escape(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

bool write_sarif(const std::string& path,
                 const std::vector<Diagnostic>& diags) {
  std::string j;
  j += "{\n";
  j += "  \"$schema\": "
       "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  j += "  \"version\": \"2.1.0\",\n";
  j += "  \"runs\": [{\n";
  j += "    \"tool\": {\"driver\": {\"name\": \"qrdtm_lint\", "
       "\"rules\": [";
  std::set<std::string> rule_ids;
  for (const Diagnostic& d : diags) rule_ids.insert(d.rule);
  bool first = true;
  for (const std::string& r : rule_ids) {
    if (!first) j += ", ";
    first = false;
    j += "{\"id\": \"";
    json_escape(r, &j);
    j += "\"}";
  }
  j += "]}},\n";
  j += "    \"results\": [";
  first = true;
  for (const Diagnostic& d : diags) {
    if (!first) j += ",";
    first = false;
    j += "\n      {\"ruleId\": \"";
    json_escape(d.rule, &j);
    j += "\", \"level\": \"error\", \"message\": {\"text\": \"";
    json_escape(d.message, &j);
    j += "\"}, \"locations\": [{\"physicalLocation\": "
         "{\"artifactLocation\": {\"uri\": \"";
    json_escape(d.file, &j);
    j += "\"}, \"region\": {\"startLine\": " + std::to_string(d.line) +
         "}}}]}";
  }
  j += "\n    ]\n  }]\n}\n";
  std::ofstream ofs(path, std::ios::binary);
  if (!ofs) return false;
  ofs << j;
  return ofs.good();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> inputs;
  unsigned forced_families = 0;
  bool quiet = false;
  bool stale_mode = false;
  std::string sarif_path;

  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg == "--list-rules") {
      for (const std::string& r : all_rule_names()) std::puts(r.c_str());
      return 0;
    }
    if (arg == "-q") {
      quiet = true;
      continue;
    }
    if (arg == "--stale-suppressions") {
      stale_mode = true;
      continue;
    }
    if (arg == "--sarif") {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "qrdtm_lint: --sarif needs a path\n");
        return 2;
      }
      sarif_path = argv[++a];
      continue;
    }
    if (arg == "--families" || arg == "--rules") {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "qrdtm_lint: %s needs an argument\n",
                     arg.c_str());
        return 2;
      }
      std::stringstream ss(argv[++a]);
      std::string item;
      while (std::getline(ss, item, ',')) {
        if (item == "det") forced_families |= kDet;
        else if (item == "coro") forced_families |= kCoro;
        else if (item == "hot") forced_families |= kHot;
        else if (item == "codec") forced_families |= kCodec;
        else if (item == "buffer") forced_families |= kBuffer;
        else if (item == "epoch") forced_families |= kEpoch;
        else if (item == "all") {
          forced_families |= kDet | kCoro | kHot | kCodec | kBuffer | kEpoch;
        } else {
          std::fprintf(stderr, "qrdtm_lint: unknown rule family '%s'\n",
                       item.c_str());
          return 2;
        }
      }
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "qrdtm_lint: unknown option '%s'\n", arg.c_str());
      return 2;
    }
    inputs.emplace_back(arg);
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: qrdtm_lint [--families det,coro,hot,codec,buffer,"
                 "epoch] [--sarif <path>] [--stale-suppressions] "
                 "[--list-rules] [-q] <file-or-dir>...\n");
    return 2;
  }

  // Gather files.
  std::vector<fs::path> files;
  for (const fs::path& in : inputs) {
    std::error_code ec;
    if (fs::is_directory(in, ec)) {
      for (auto it = fs::recursive_directory_iterator(in, ec);
           it != fs::recursive_directory_iterator(); ++it) {
        const fs::path& p = it->path();
        std::string name = p.filename().string();
        if (it->is_directory() &&
            (name.rfind("build", 0) == 0 || name == ".git")) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && has_source_ext(p)) files.push_back(p);
      }
    } else if (fs::is_regular_file(in, ec)) {
      files.push_back(in);
    } else {
      std::fprintf(stderr, "qrdtm_lint: cannot read '%s'\n",
                   in.string().c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  // Pass 1: lex everything and harvest symbols, grouping by parent
  // directory so cross-file context (wire structs declared in wire.h,
  // codec bodies in wire.cpp, registrations in qr_server.cpp) is visible
  // without leaking names across unrelated subsystems.
  std::vector<FileEntry> entries;
  std::map<std::string, SymbolTable> tables;
  for (const fs::path& f : files) {
    std::ifstream ifs(f, std::ios::binary);
    if (!ifs) {
      std::fprintf(stderr, "qrdtm_lint: cannot open '%s'\n",
                   f.string().c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << ifs.rdbuf();
    FileEntry e;
    e.path = f;
    e.source = std::move(buf).str();
    e.lexed = lex(e.source);
    e.families = forced_families ? forced_families : families_for(f);
    collect_symbols(f.generic_string(), e.lexed,
                    &tables[f.parent_path().generic_string()]);
    entries.push_back(std::move(e));
  }

  // Pass 2: per-file rules.  Pass 3: group-level rules per directory.
  std::vector<Diagnostic> diags;
  std::map<std::string, UsedSuppressions> used;
  std::map<std::string, std::vector<GroupFile>> groups;
  for (const FileEntry& e : entries) {
    const std::string file = e.path.generic_string();
    const std::string dir = e.path.parent_path().generic_string();
    run_rules(file, e.lexed, tables[dir], e.families, &diags, &used[file]);
    groups[dir].push_back(GroupFile{file, &e.lexed, e.families});
  }
  for (const auto& [dir, group] : groups) {
    run_group_rules(group, tables[dir], &diags, &used);
  }

  if (stale_mode) {
    // Audit directives instead of reporting diagnostics: a directive is
    // stale when it names an unknown rule, or when its rule's family ran on
    // the file and the directive absorbed nothing.
    const auto& known = all_rule_names();
    std::size_t stale = 0;
    for (const FileEntry& e : entries) {
      const std::string file = e.path.generic_string();
      const UsedSuppressions& u = used[file];
      for (const Directive& d : e.lexed.directives) {
        for (const std::string& rule : d.rules) {
          if (std::find(known.begin(), known.end(), rule) == known.end()) {
            std::fprintf(stderr,
                         "%s:%d: stale: allow(%s) names an unknown rule\n",
                         file.c_str(), d.line, rule.c_str());
            ++stale;
            continue;
          }
          unsigned fam = family_of_rule(rule);
          if (!(e.families & fam)) continue;  // family inactive: can't judge
          if (!u.count({d.line, rule}) && !u.count({d.line + 1, rule})) {
            std::fprintf(stderr,
                         "%s:%d: stale: allow(%s) no longer suppresses "
                         "anything; remove it (or fix the rule name)\n",
                         file.c_str(), d.line, rule.c_str());
            ++stale;
          }
        }
      }
    }
    std::fprintf(stderr,
                 "qrdtm_lint: %zu file(s), %zu stale suppression(s)\n",
                 entries.size(), stale);
    return stale == 0 ? 0 : 1;
  }

  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return a.file != b.file ? a.file < b.file : a.line < b.line;
            });
  if (!quiet) {
    for (const Diagnostic& d : diags) {
      std::fprintf(stderr, "%s:%d: error: [%s] %s\n", d.file.c_str(), d.line,
                   d.rule.c_str(), d.message.c_str());
    }
  }
  if (!sarif_path.empty() && !write_sarif(sarif_path, diags)) {
    std::fprintf(stderr, "qrdtm_lint: cannot write SARIF to '%s'\n",
                 sarif_path.c_str());
    return 2;
  }
  std::fprintf(stderr, "qrdtm_lint: %zu file(s), %zu diagnostic(s)\n",
               entries.size(), diags.size());
  return diags.empty() ? 0 : 1;
}
