#include "rules.h"

#include <array>
#include <cstddef>
#include <string_view>

namespace qrdtm::lint {

namespace {

constexpr std::size_t npos = static_cast<std::size_t>(-1);

bool is_punct(const Token& t, std::string_view s) {
  return t.kind == Tok::kPunct && t.text == s;
}
bool is_ident(const Token& t, std::string_view s) {
  return t.kind == Tok::kIdent && t.text == s;
}

/// `i` points at '<'.  Returns the index just past the matching '>', or npos
/// if this '<' does not open a (plausible) template argument list.  ">>"
/// closes two levels; angles inside parentheses are ignored.
std::size_t skip_angles(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  int parens = 0;
  for (std::size_t k = i; k < t.size(); ++k) {
    const Token& tk = t[k];
    if (tk.kind == Tok::kEnd) return npos;
    if (tk.kind != Tok::kPunct) continue;
    if (tk.text == "(" || tk.text == "[") {
      ++parens;
    } else if (tk.text == ")" || tk.text == "]") {
      if (--parens < 0) return npos;
    } else if (parens == 0) {
      if (tk.text == "<") {
        ++depth;
      } else if (tk.text == ">") {
        if (--depth == 0) return k + 1;
      } else if (tk.text == ">>") {
        depth -= 2;
        if (depth <= 0) return k + 1;
      } else if (tk.text == ";" || tk.text == "{" || tk.text == "}") {
        return npos;  // statement boundary: was a comparison, not a template
      }
    }
  }
  return npos;
}

/// `i` points at an opener ("(", "[" or "{").  Returns the index just past
/// the matching closer, or npos.
std::size_t skip_balanced(const std::vector<Token>& t, std::size_t i) {
  std::string_view open = t[i].text;
  std::string_view close = open == "(" ? ")" : open == "[" ? "]" : "}";
  int depth = 0;
  for (std::size_t k = i; k < t.size(); ++k) {
    if (t[k].kind != Tok::kPunct) continue;
    if (t[k].text == open) ++depth;
    if (t[k].text == close && --depth == 0) return k + 1;
  }
  return npos;
}

struct Ctx {
  const std::string& file;
  const std::vector<Token>& t;
  const SuppressionMap& sup;
  const SymbolTable& table;
  std::vector<Diagnostic>* out;

  void diag(int line, const char* rule, std::string msg) const {
    if (auto it = sup.find(rule); it != sup.end() && it->second.count(line)) {
      return;
    }
    out->push_back(Diagnostic{file, line, rule, std::move(msg)});
  }
};

// ---------------------------------------------------------------------------
// Family: det
// ---------------------------------------------------------------------------

constexpr std::string_view kRandStd[] = {
    "random_device", "mt19937",      "mt19937_64",
    "minstd_rand",   "minstd_rand0", "default_random_engine",
    "ranlux24",      "ranlux48",     "knuth_b",
};
constexpr std::string_view kRandCalls[] = {"rand",    "srand",   "rand_r",
                                           "drand48", "lrand48", "mrand48",
                                           "random",  "srandom"};
constexpr std::string_view kClockIdents[] = {"system_clock", "steady_clock",
                                             "high_resolution_clock"};
constexpr std::string_view kClockCalls[] = {"time", "clock", "gettimeofday",
                                            "clock_gettime", "timespec_get",
                                            "ftime"};
constexpr std::string_view kThreadStd[] = {
    "thread",         "jthread",
    "mutex",          "timed_mutex",
    "recursive_mutex", "recursive_timed_mutex",
    "shared_mutex",   "shared_timed_mutex",
    "condition_variable", "condition_variable_any",
    "async",          "barrier",
    "latch",          "counting_semaphore",
    "binary_semaphore", "atomic",
    "atomic_flag",    "atomic_ref",
};

template <class Range>
bool in(std::string_view needle, const Range& range) {
  for (std::string_view s : range) {
    if (s == needle) return true;
  }
  return false;
}

/// True when t[i] looks like a *call* of a global/libc function: the
/// identifier is followed by '(' and is not a member access, a
/// qualified name from a non-std namespace, or a declaration
/// (`Tick time(...)`).
bool is_free_call(const std::vector<Token>& t, std::size_t i) {
  if (i + 1 >= t.size() || !is_punct(t[i + 1], "(")) return false;
  if (i == 0) return true;
  const Token& prev = t[i - 1];
  if (is_punct(prev, ".") || is_punct(prev, "->")) return false;
  if (is_punct(prev, "::")) {
    // std::time( / ::time( count; qrdtm::sim::time( would not.
    return i >= 2 ? is_ident(t[i - 2], "std") : true;
  }
  // `Tick time(...)` (a declaration) or `foo time(...)`: preceded by an
  // identifier or a type-ish token -- not a call.
  if (prev.kind == Tok::kIdent) return false;
  if (is_punct(prev, ">") || is_punct(prev, "*") || is_punct(prev, "&")) {
    return false;
  }
  return true;
}

void check_det(const Ctx& c) {
  const auto& t = c.t;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    std::string_view name = t[i].text;
    const bool std_qualified =
        i >= 2 && is_punct(t[i - 1], "::") && is_ident(t[i - 2], "std");

    if (std_qualified && in(name, kRandStd)) {
      c.diag(t[i].line, "det-rand",
             "std::" + std::string(name) +
                 " is host randomness; use a seeded qrdtm::Rng stream");
      continue;
    }
    if (in(name, kRandCalls) && is_free_call(t, i)) {
      c.diag(t[i].line, "det-rand",
             std::string(name) +
                 "() is host randomness; use a seeded qrdtm::Rng stream");
      continue;
    }
    if (in(name, kClockIdents)) {
      c.diag(t[i].line, "det-wall-clock",
             "std::chrono::" + std::string(name) +
                 " reads the host clock; use sim::Simulator::now()");
      continue;
    }
    if (in(name, kClockCalls) && is_free_call(t, i)) {
      c.diag(t[i].line, "det-wall-clock",
             std::string(name) +
                 "() reads the host clock; use sim::Simulator::now()");
      continue;
    }
    if (std_qualified && in(name, kThreadStd)) {
      c.diag(t[i].line, "det-thread",
             "std::" + std::string(name) +
                 " introduces host scheduling nondeterminism; the kernel is "
                 "single-threaded (parallelise across Simulators)");
      continue;
    }
    if (is_ident(t[i], "thread_local")) {
      c.diag(t[i].line, "det-thread",
             "thread_local state in protocol code hides cross-run variation; "
             "scope state to the Simulator instead");
      continue;
    }

    // Pointer-keyed associative containers: iteration order (ordered) or
    // hash placement (unordered) then depends on allocation addresses.
    static constexpr std::string_view kAssoc[] = {
        "map",           "set",           "multimap",          "multiset",
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    if (in(name, kAssoc) && i + 1 < t.size() && is_punct(t[i + 1], "<")) {
      // Examine the first template argument for a top-level '*'.
      int depth = 0;
      bool ptr = false;
      for (std::size_t k = i + 1; k < t.size(); ++k) {
        if (t[k].kind != Tok::kPunct) continue;
        if (t[k].text == "<") ++depth;
        else if (t[k].text == ">" || t[k].text == ">>") break;
        else if (t[k].text == "," && depth == 1) break;
        else if (t[k].text == "*" && depth == 1) ptr = true;
        else if (t[k].text == ";" || t[k].text == "{") break;
      }
      if (ptr) {
        c.diag(t[i].line, "det-pointer-key",
               "container keyed on a pointer: ordering/placement depends on "
               "allocation addresses, which vary across runs; key on a "
               "stable id instead");
      }
    }

    // Range-for over a std::unordered_* variable (bare identifier or
    // this->identifier only; member-access chains are not resolvable at
    // token level and are left to review).
    if (name == "for" && i + 1 < t.size() && is_punct(t[i + 1], "(")) {
      std::size_t close = skip_balanced(t, i + 1);
      if (close == npos) continue;
      std::size_t colon = npos;
      int depth = 0;
      for (std::size_t k = i + 1; k < close - 1; ++k) {
        if (t[k].kind != Tok::kPunct) continue;
        if (t[k].text == "(" || t[k].text == "[" || t[k].text == "{") ++depth;
        else if (t[k].text == ")" || t[k].text == "]" || t[k].text == "}") --depth;
        else if (t[k].text == ":" && depth == 1) {
          colon = k;
          break;
        }
      }
      if (colon == npos) continue;
      // Sequence expression tokens: (colon, close-1).
      std::size_t b = colon + 1;
      std::size_t e = close - 1;  // index of ')'
      std::string_view seq_name;
      if (e - b == 1 && t[b].kind == Tok::kIdent) {
        seq_name = t[b].text;
      } else if (e - b == 3 && is_ident(t[b], "this") &&
                 is_punct(t[b + 1], "->") && t[b + 2].kind == Tok::kIdent) {
        seq_name = t[b + 2].text;
      }
      if (!seq_name.empty() &&
          c.table.unordered_vars.count(std::string(seq_name))) {
        c.diag(t[i].line, "det-unordered-iter",
               "iterating std::unordered_* container '" +
                   std::string(seq_name) +
                   "': hash iteration order is unspecified and breaks "
                   "deterministic replay; use a sorted view or an order-"
                   "independent reduction");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Family: coro
// ---------------------------------------------------------------------------

struct Lambda {
  std::size_t intro;      // index of '['
  std::size_t body_open;  // index of '{'
  std::size_t body_close; // index just past '}'
  bool ref_capture = false;
  bool default_copy = false;  // [=] -- captures `this` implicitly
  bool has_coro_kw = false;   // co_await / co_return / co_yield in own body
};

bool lambda_intro_at(const std::vector<Token>& t, std::size_t i) {
  if (!is_punct(t[i], "[")) return false;
  // Attribute [[...]]?
  if (i + 1 < t.size() && is_punct(t[i + 1], "[")) return false;
  if (i == 0) return true;
  const Token& prev = t[i - 1];
  // Subscript or array declarator when preceded by a value-ish token.
  if (prev.kind == Tok::kIdent || prev.kind == Tok::kNumber ||
      prev.kind == Tok::kString) {
    return false;
  }
  if (is_punct(prev, "]") || is_punct(prev, ")")) return false;
  if (is_punct(prev, "[")) return false;  // second bracket of [[attr]]
  return true;
}

void collect_lambdas(const std::vector<Token>& t, std::vector<Lambda>* out) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!lambda_intro_at(t, i)) continue;
    std::size_t cap_end = skip_balanced(t, i);  // past ']'
    if (cap_end == npos) continue;
    Lambda lam;
    lam.intro = i;
    // Parse the capture list.
    for (std::size_t k = i + 1; k + 1 < cap_end; ++k) {
      if (is_punct(t[k], "&")) {
        // default '&' or '&name' -- both capture by reference.
        lam.ref_capture = true;
      } else if (is_punct(t[k], "=") && is_punct(t[k - 1], "[") &&
                 (is_punct(t[k + 1], ",") || is_punct(t[k + 1], "]"))) {
        lam.default_copy = true;
      }
    }
    // Find the body '{': skip optional template-parameter list, parameter
    // list, and specifiers / trailing return type.
    std::size_t k = cap_end;
    if (k < t.size() && is_punct(t[k], "<")) {
      std::size_t past = skip_angles(t, k);
      if (past != npos) k = past;
    }
    if (k < t.size() && is_punct(t[k], "(")) {
      std::size_t past = skip_balanced(t, k);
      if (past == npos) continue;
      k = past;
    }
    bool found = false;
    for (std::size_t guard = 0; k < t.size() && guard < 64; ++k, ++guard) {
      if (is_punct(t[k], "{")) {
        found = true;
        break;
      }
      if (is_punct(t[k], "(")) {  // noexcept(...) etc.
        std::size_t past = skip_balanced(t, k);
        if (past == npos) break;
        k = past - 1;
        continue;
      }
      if (is_punct(t[k], ";") || is_punct(t[k], "}")) break;
    }
    if (!found) continue;  // not a lambda after all (e.g. a weird subscript)
    lam.body_open = k;
    lam.body_close = skip_balanced(t, k);
    if (lam.body_close == npos) continue;
    out->push_back(lam);
  }
}

void check_coro_captures(const Ctx& c) {
  std::vector<Lambda> lambdas;
  collect_lambdas(c.t, &lambdas);
  // Attribute each coroutine keyword to the innermost enclosing lambda.
  for (std::size_t i = 0; i < c.t.size(); ++i) {
    const Token& tk = c.t[i];
    if (tk.kind != Tok::kIdent) continue;
    if (tk.text != "co_await" && tk.text != "co_return" &&
        tk.text != "co_yield") {
      continue;
    }
    Lambda* innermost = nullptr;
    for (Lambda& lam : lambdas) {
      if (i > lam.body_open && i < lam.body_close &&
          (!innermost ||
           lam.body_close - lam.body_open <
               innermost->body_close - innermost->body_open)) {
        innermost = &lam;
      }
    }
    if (innermost) innermost->has_coro_kw = true;
  }
  for (const Lambda& lam : lambdas) {
    if (!lam.has_coro_kw) continue;
    if (lam.ref_capture) {
      c.diag(c.t[lam.intro].line, "coro-ref-capture",
             "lambda coroutine captures by reference: captures live in the "
             "closure object, not the coroutine frame; if the closure or a "
             "captured local dies while the coroutine is suspended, "
             "resumption reads freed memory");
    } else if (lam.default_copy) {
      c.diag(c.t[lam.intro].line, "coro-ref-capture",
             "lambda coroutine with [=] captures `this` implicitly; name the "
             "captures explicitly (the closure may outlive *this)");
    }
  }
}

void check_coro_temp_ref(const Ctx& c) {
  const auto& t = c.t;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || !is_punct(t[i + 1], "(")) continue;
    if (!c.table.ref_param_task_fns.count(std::string(t[i].text))) continue;
    // Skip the declaration itself (`sim::Task<void> name(...)`: preceded by
    // '>') and member-qualified declarations (`Task<void> Cls::name(`).
    if (i > 0 && (is_punct(t[i - 1], ">") || is_punct(t[i - 1], ">>"))) {
      continue;
    }
    if (i >= 2 && is_punct(t[i - 1], "::") && i >= 3 &&
        is_punct(t[i - 3], ">")) {
      continue;
    }
    // Directly co_awaited calls keep their temporaries alive for the whole
    // await -- safe.
    std::size_t before = i;
    if (before >= 2 && is_punct(t[before - 1], "::")) before -= 2;
    if (before >= 2 && (is_punct(t[before - 1], ".") ||
                        is_punct(t[before - 1], "->"))) {
      before -= 2;  // obj.method( -- look before the object expression
    }
    if (before > 0 && is_ident(t[before - 1], "co_await")) continue;
    // Scan top-level arguments for an obvious temporary: a literal, or a
    // braced construction `Name{...}`.
    std::size_t close = skip_balanced(t, i + 1);
    if (close == npos) continue;
    int depth = 1;  // inside the call's parentheses
    bool arg_begin = true;
    for (std::size_t k = i + 2; k < close - 1; ++k) {
      const Token& tk = t[k];
      if (depth == 1 && is_punct(tk, ",")) {
        arg_begin = true;
        continue;
      }
      if (arg_begin && depth == 1) {
        arg_begin = false;
        // Examine the first token of this argument.
        if (tk.kind == Tok::kNumber || tk.kind == Tok::kString) {
          // Only a *sole* literal argument is unambiguous (part of a larger
          // expression could be anything).
          const bool sole = k + 1 >= close - 1 || is_punct(t[k + 1], ",");
          if (sole) {
            c.diag(t[i].line, "coro-temp-ref",
                   "temporary bound to a reference parameter of sim::Task-"
                   "returning '" + std::string(t[i].text) +
                       "': the temporary dies at the end of the full "
                       "expression, before the suspended coroutine resumes; "
                       "pass a named object or co_await the call directly");
            break;
          }
        } else if (tk.kind == Tok::kIdent && k + 1 < close - 1 &&
                   is_punct(t[k + 1], "{")) {
          c.diag(t[i].line, "coro-temp-ref",
                 "temporary '" + std::string(tk.text) +
                     "{...}' bound to a reference parameter of sim::Task-"
                     "returning '" + std::string(t[i].text) +
                     "': it dies at the end of the full expression, before "
                     "the suspended coroutine resumes; pass a named object "
                     "or co_await the call directly");
          break;
        }
      }
      if (tk.kind == Tok::kPunct) {
        if (tk.text == "(" || tk.text == "[" || tk.text == "{") ++depth;
        else if (tk.text == ")" || tk.text == "]" || tk.text == "}") --depth;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Family: hot
// ---------------------------------------------------------------------------

void check_hot(const Ctx& c) {
  const auto& t = c.t;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    std::string_view name = t[i].text;
    if (name == "function" && i >= 2 && is_punct(t[i - 1], "::") &&
        is_ident(t[i - 2], "std")) {
      c.diag(t[i].line, "hot-std-function",
             "std::function on a hot path: type-erased targets beyond the "
             "SBO threshold heap-allocate per construction; use a template "
             "parameter, function pointer, or the pooled inline-callable "
             "slots");
      continue;
    }
    if (name == "new") {
      if (i > 0 && is_ident(t[i - 1], "operator")) continue;
      // Placement form `new (addr) T` / `::new (addr) T` is pool machinery,
      // not an allocation.
      if (i + 1 < t.size() && is_punct(t[i + 1], "(")) continue;
      c.diag(t[i].line, "hot-naked-new",
             "naked new on a hot path: allocate from a pool (BufferPool, "
             "event slots, PoolAllocator) or use an owning container "
             "constructed off the hot path");
      continue;
    }
    if (name == "make_shared") {
      c.diag(t[i].line, "hot-make-shared",
             "make_shared on a hot path allocates and atomically "
             "refcounts per call; prefer a pooled or stack-owned object");
      continue;
    }
    if (name == "Percentiles") {
      c.diag(t[i].line, "hot-sorted-percentile",
             "Percentiles on a hot path: it buffers every sample and sorts "
             "on query (O(n log n), allocating); use the fixed-bucket "
             "LatencyHistogram (core/trace.h), which records in O(1) with "
             "no allocation");
      continue;
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Symbol collection (pass 1)
// ---------------------------------------------------------------------------

void collect_symbols(const LexResult& lexed, SymbolTable* table) {
  const auto& t = lexed.tokens;
  auto is_unordered_name = [](std::string_view s) {
    return s == "unordered_map" || s == "unordered_set" ||
           s == "unordered_multimap" || s == "unordered_multiset";
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;

    // `using Alias = std::unordered_map<...>;`
    if (t[i].text == "using" && i + 4 < t.size() &&
        t[i + 1].kind == Tok::kIdent && is_punct(t[i + 2], "=")) {
      std::size_t j = i + 3;
      if (is_ident(t[j], "std") && is_punct(t[j + 1], "::")) j += 2;
      if (j < t.size() && is_unordered_name(t[j].text)) {
        table->unordered_aliases.insert(std::string(t[i + 1].text));
      }
      continue;
    }

    // `std::unordered_map<...> name` (declaration of a variable, member or
    // function returning an unordered container).
    if (is_unordered_name(t[i].text) && i + 1 < t.size() &&
        is_punct(t[i + 1], "<")) {
      std::size_t past = skip_angles(t, i + 1);
      if (past != npos && past < t.size() && t[past].kind == Tok::kIdent) {
        table->unordered_vars.insert(std::string(t[past].text));
      }
      continue;
    }

    // `Alias name` for a previously seen unordered alias.
    if (table->unordered_aliases.count(std::string(t[i].text)) &&
        i + 1 < t.size() && t[i + 1].kind == Tok::kIdent) {
      table->unordered_vars.insert(std::string(t[i + 1].text));
      continue;
    }

    // `sim::Task<...> name(params)` with a reference parameter.
    if (t[i].text == "Task" && i + 1 < t.size() && is_punct(t[i + 1], "<")) {
      std::size_t past = skip_angles(t, i + 1);
      if (past == npos || past >= t.size()) continue;
      std::size_t name_at = past;
      // Allow `Task<...> Cls::name(`.
      if (t[name_at].kind == Tok::kIdent && name_at + 1 < t.size() &&
          is_punct(t[name_at + 1], "::")) {
        name_at += 2;
      }
      if (name_at + 1 >= t.size() || t[name_at].kind != Tok::kIdent ||
          !is_punct(t[name_at + 1], "(")) {
        continue;
      }
      std::size_t close = skip_balanced(t, name_at + 1);
      if (close == npos) continue;
      bool ref_param = false;
      int depth = 0;
      for (std::size_t k = name_at + 1; k < close - 1; ++k) {
        if (t[k].kind != Tok::kPunct) continue;
        if (t[k].text == "(" || t[k].text == "<" || t[k].text == "[") ++depth;
        else if (t[k].text == ")" || t[k].text == ">" || t[k].text == "]") --depth;
        else if (t[k].text == "&" && depth == 1) ref_param = true;
      }
      if (ref_param) {
        table->ref_param_task_fns.insert(std::string(t[name_at].text));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

void run_rules(const std::string& file, const LexResult& lexed,
               const SymbolTable& table, unsigned families,
               std::vector<Diagnostic>* out) {
  Ctx c{file, lexed.tokens, lexed.suppressions, table, out};
  if (families & kDet) check_det(c);
  if (families & kCoro) {
    check_coro_captures(c);
    check_coro_temp_ref(c);
  }
  if (families & kHot) check_hot(c);
}

const std::vector<std::string>& all_rule_names() {
  static const std::vector<std::string> kNames = {
      "det-rand",        "det-wall-clock",     "det-thread",
      "det-unordered-iter", "det-pointer-key",
      "coro-ref-capture", "coro-temp-ref",
      "hot-std-function", "hot-naked-new",     "hot-make-shared",
      "hot-sorted-percentile",
  };
  return kNames;
}

}  // namespace qrdtm::lint
