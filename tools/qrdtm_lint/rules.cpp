#include "rules.h"

#include <array>
#include <cstddef>
#include <string_view>

#include "dataflow.h"
#include "tokwalk.h"

namespace qrdtm::lint {

namespace {

struct Ctx {
  const std::string& file;
  const std::vector<Token>& t;
  const SuppressionMap& sup;
  const SymbolTable& table;
  std::vector<Diagnostic>* out;
  UsedSuppressions* used = nullptr;

  void diag(int line, const char* rule, std::string msg) const {
    if (auto it = sup.find(rule); it != sup.end() && it->second.count(line)) {
      if (used) used->insert({line, rule});
      return;
    }
    out->push_back(Diagnostic{file, line, rule, std::move(msg)});
  }
};

bool path_contains_dir(const std::string& path, const char* dir) {
  std::string needle = std::string("/") + dir + "/";
  std::string hay = "/" + path;
  return hay.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------------------
// Family: det
// ---------------------------------------------------------------------------

constexpr std::string_view kRandStd[] = {
    "random_device", "mt19937",      "mt19937_64",
    "minstd_rand",   "minstd_rand0", "default_random_engine",
    "ranlux24",      "ranlux48",     "knuth_b",
};
constexpr std::string_view kRandCalls[] = {"rand",    "srand",   "rand_r",
                                           "drand48", "lrand48", "mrand48",
                                           "random",  "srandom"};
constexpr std::string_view kClockIdents[] = {"system_clock", "steady_clock",
                                             "high_resolution_clock"};
constexpr std::string_view kClockCalls[] = {"time", "clock", "gettimeofday",
                                            "clock_gettime", "timespec_get",
                                            "ftime"};
constexpr std::string_view kThreadStd[] = {
    "thread",         "jthread",
    "mutex",          "timed_mutex",
    "recursive_mutex", "recursive_timed_mutex",
    "shared_mutex",   "shared_timed_mutex",
    "condition_variable", "condition_variable_any",
    "async",          "barrier",
    "latch",          "counting_semaphore",
    "binary_semaphore", "atomic",
    "atomic_flag",    "atomic_ref",
};

template <class Range>
bool in(std::string_view needle, const Range& range) {
  for (std::string_view s : range) {
    if (s == needle) return true;
  }
  return false;
}

/// True when t[i] looks like a *call* of a global/libc function: the
/// identifier is followed by '(' and is not a member access, a
/// qualified name from a non-std namespace, or a declaration
/// (`Tick time(...)`).
bool is_free_call(const std::vector<Token>& t, std::size_t i) {
  if (i + 1 >= t.size() || !is_punct(t[i + 1], "(")) return false;
  if (i == 0) return true;
  const Token& prev = t[i - 1];
  if (is_punct(prev, ".") || is_punct(prev, "->")) return false;
  if (is_punct(prev, "::")) {
    // std::time( / ::time( count; qrdtm::sim::time( would not.
    return i >= 2 ? is_ident(t[i - 2], "std") : true;
  }
  // `Tick time(...)` (a declaration) or `foo time(...)`: preceded by an
  // identifier or a type-ish token -- not a call.
  if (prev.kind == Tok::kIdent) return false;
  if (is_punct(prev, ">") || is_punct(prev, "*") || is_punct(prev, "&")) {
    return false;
  }
  return true;
}

void check_det(const Ctx& c) {
  const auto& t = c.t;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    std::string_view name = t[i].text;
    const bool std_qualified =
        i >= 2 && is_punct(t[i - 1], "::") && is_ident(t[i - 2], "std");

    if (std_qualified && in(name, kRandStd)) {
      c.diag(t[i].line, "det-rand",
             "std::" + std::string(name) +
                 " is host randomness; use a seeded qrdtm::Rng stream");
      continue;
    }
    if (in(name, kRandCalls) && is_free_call(t, i)) {
      c.diag(t[i].line, "det-rand",
             std::string(name) +
                 "() is host randomness; use a seeded qrdtm::Rng stream");
      continue;
    }
    if (in(name, kClockIdents)) {
      c.diag(t[i].line, "det-wall-clock",
             "std::chrono::" + std::string(name) +
                 " reads the host clock; use sim::Simulator::now()");
      continue;
    }
    if (in(name, kClockCalls) && is_free_call(t, i)) {
      c.diag(t[i].line, "det-wall-clock",
             std::string(name) +
                 "() reads the host clock; use sim::Simulator::now()");
      continue;
    }
    if (std_qualified && in(name, kThreadStd)) {
      c.diag(t[i].line, "det-thread",
             "std::" + std::string(name) +
                 " introduces host scheduling nondeterminism; the kernel is "
                 "single-threaded (parallelise across Simulators)");
      continue;
    }
    if (is_ident(t[i], "thread_local")) {
      c.diag(t[i].line, "det-thread",
             "thread_local state in protocol code hides cross-run variation; "
             "scope state to the Simulator instead");
      continue;
    }

    // Pointer-keyed associative containers: iteration order (ordered) or
    // hash placement (unordered) then depends on allocation addresses.
    static constexpr std::string_view kAssoc[] = {
        "map",           "set",           "multimap",          "multiset",
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    if (in(name, kAssoc) && i + 1 < t.size() && is_punct(t[i + 1], "<")) {
      // Examine the first template argument for a top-level '*'.
      int depth = 0;
      bool ptr = false;
      for (std::size_t k = i + 1; k < t.size(); ++k) {
        if (t[k].kind != Tok::kPunct) continue;
        if (t[k].text == "<") ++depth;
        else if (t[k].text == ">" || t[k].text == ">>") break;
        else if (t[k].text == "," && depth == 1) break;
        else if (t[k].text == "*" && depth == 1) ptr = true;
        else if (t[k].text == ";" || t[k].text == "{") break;
      }
      if (ptr) {
        c.diag(t[i].line, "det-pointer-key",
               "container keyed on a pointer: ordering/placement depends on "
               "allocation addresses, which vary across runs; key on a "
               "stable id instead");
      }
    }

    // Range-for over a std::unordered_* variable (bare identifier or
    // this->identifier only; member-access chains are not resolvable at
    // token level and are left to review).
    if (name == "for" && i + 1 < t.size() && is_punct(t[i + 1], "(")) {
      std::size_t close = skip_balanced(t, i + 1);
      if (close == npos) continue;
      std::size_t colon = npos;
      int depth = 0;
      for (std::size_t k = i + 1; k < close - 1; ++k) {
        if (t[k].kind != Tok::kPunct) continue;
        if (t[k].text == "(" || t[k].text == "[" || t[k].text == "{") ++depth;
        else if (t[k].text == ")" || t[k].text == "]" || t[k].text == "}") --depth;
        else if (t[k].text == ":" && depth == 1) {
          colon = k;
          break;
        }
      }
      if (colon == npos) continue;
      // Sequence expression tokens: (colon, close-1).
      std::size_t b = colon + 1;
      std::size_t e = close - 1;  // index of ')'
      std::string_view seq_name;
      if (e - b == 1 && t[b].kind == Tok::kIdent) {
        seq_name = t[b].text;
      } else if (e - b == 3 && t[b].kind == Tok::kIdent &&
                 (is_punct(t[b + 1], "->") || is_punct(t[b + 1], ".")) &&
                 t[b + 2].kind == Tok::kIdent) {
        // `this->member`, `obj.member_` or `ptr->member_`.  Without types,
        // one-level chains resolve the member name against the group's
        // symbol table; to keep wire-struct field names (no underscore by
        // convention) from aliasing class members, non-this chains only
        // match the trailing-underscore member convention.
        if (is_ident(t[b], "this") || t[b + 2].text.back() == '_') {
          seq_name = t[b + 2].text;
        }
      } else if (e - b == 5 && t[b].kind == Tok::kIdent &&
                 (is_punct(t[b + 1], "->") || is_punct(t[b + 1], ".")) &&
                 t[b + 2].kind == Tok::kIdent && is_punct(t[b + 3], "(") &&
                 is_punct(t[b + 4], ")")) {
        // `obj.accessor()` returning an unordered container (harvested from
        // the accessor's declaration by collect_symbols).
        seq_name = t[b + 2].text;
      }
      if (!seq_name.empty() &&
          c.table.unordered_vars.count(std::string(seq_name))) {
        c.diag(t[i].line, "det-unordered-iter",
               "iterating std::unordered_* container '" +
                   std::string(seq_name) +
                   "': hash iteration order is unspecified and breaks "
                   "deterministic replay; use a sorted view or an order-"
                   "independent reduction");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Family: coro
// ---------------------------------------------------------------------------

struct Lambda {
  std::size_t intro;      // index of '['
  std::size_t body_open;  // index of '{'
  std::size_t body_close; // index just past '}'
  bool ref_capture = false;
  bool default_copy = false;  // [=] -- captures `this` implicitly
  bool has_coro_kw = false;   // co_await / co_return / co_yield in own body
};

bool lambda_intro_at(const std::vector<Token>& t, std::size_t i) {
  if (!is_punct(t[i], "[")) return false;
  // Attribute [[...]]?
  if (i + 1 < t.size() && is_punct(t[i + 1], "[")) return false;
  if (i == 0) return true;
  const Token& prev = t[i - 1];
  // `return [...]` / `co_return [...]` hand a lambda back, not a subscript.
  if (is_ident(prev, "return") || is_ident(prev, "co_return") ||
      is_ident(prev, "co_yield")) {
    return true;
  }
  // Subscript or array declarator when preceded by a value-ish token.
  if (prev.kind == Tok::kIdent || prev.kind == Tok::kNumber ||
      prev.kind == Tok::kString) {
    return false;
  }
  if (is_punct(prev, "]") || is_punct(prev, ")")) return false;
  if (is_punct(prev, "[")) return false;  // second bracket of [[attr]]
  return true;
}

void collect_lambdas(const std::vector<Token>& t, std::vector<Lambda>* out) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!lambda_intro_at(t, i)) continue;
    std::size_t cap_end = skip_balanced(t, i);  // past ']'
    if (cap_end == npos) continue;
    Lambda lam;
    lam.intro = i;
    // Parse the capture list.
    for (std::size_t k = i + 1; k + 1 < cap_end; ++k) {
      if (is_punct(t[k], "&")) {
        // default '&' or '&name' -- both capture by reference.
        lam.ref_capture = true;
      } else if (is_punct(t[k], "=") && is_punct(t[k - 1], "[") &&
                 (is_punct(t[k + 1], ",") || is_punct(t[k + 1], "]"))) {
        lam.default_copy = true;
      }
    }
    // Find the body '{': skip optional template-parameter list, parameter
    // list, and specifiers / trailing return type.
    std::size_t k = cap_end;
    if (k < t.size() && is_punct(t[k], "<")) {
      std::size_t past = skip_angles(t, k);
      if (past != npos) k = past;
    }
    if (k < t.size() && is_punct(t[k], "(")) {
      std::size_t past = skip_balanced(t, k);
      if (past == npos) continue;
      k = past;
    }
    bool found = false;
    for (std::size_t guard = 0; k < t.size() && guard < 64; ++k, ++guard) {
      if (is_punct(t[k], "{")) {
        found = true;
        break;
      }
      if (is_punct(t[k], "(")) {  // noexcept(...) etc.
        std::size_t past = skip_balanced(t, k);
        if (past == npos) break;
        k = past - 1;
        continue;
      }
      if (is_punct(t[k], ";") || is_punct(t[k], "}")) break;
    }
    if (!found) continue;  // not a lambda after all (e.g. a weird subscript)
    lam.body_open = k;
    lam.body_close = skip_balanced(t, k);
    if (lam.body_close == npos) continue;
    out->push_back(lam);
  }
}

void check_coro_captures(const Ctx& c) {
  std::vector<Lambda> lambdas;
  collect_lambdas(c.t, &lambdas);
  // Attribute each coroutine keyword to the innermost enclosing lambda.
  for (std::size_t i = 0; i < c.t.size(); ++i) {
    const Token& tk = c.t[i];
    if (tk.kind != Tok::kIdent) continue;
    if (tk.text != "co_await" && tk.text != "co_return" &&
        tk.text != "co_yield") {
      continue;
    }
    Lambda* innermost = nullptr;
    for (Lambda& lam : lambdas) {
      if (i > lam.body_open && i < lam.body_close &&
          (!innermost ||
           lam.body_close - lam.body_open <
               innermost->body_close - innermost->body_open)) {
        innermost = &lam;
      }
    }
    if (innermost) innermost->has_coro_kw = true;
  }
  for (const Lambda& lam : lambdas) {
    if (!lam.has_coro_kw) continue;
    if (lam.ref_capture) {
      c.diag(c.t[lam.intro].line, "coro-ref-capture",
             "lambda coroutine captures by reference: captures live in the "
             "closure object, not the coroutine frame; if the closure or a "
             "captured local dies while the coroutine is suspended, "
             "resumption reads freed memory");
    } else if (lam.default_copy) {
      c.diag(c.t[lam.intro].line, "coro-ref-capture",
             "lambda coroutine with [=] captures `this` implicitly; name the "
             "captures explicitly (the closure may outlive *this)");
    }
  }
}

void check_coro_temp_ref(const Ctx& c) {
  const auto& t = c.t;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent || !is_punct(t[i + 1], "(")) continue;
    if (!c.table.ref_param_task_fns.count(std::string(t[i].text))) continue;
    // Skip the declaration itself (`sim::Task<void> name(...)`: preceded by
    // '>') and member-qualified declarations (`Task<void> Cls::name(`).
    if (i > 0 && (is_punct(t[i - 1], ">") || is_punct(t[i - 1], ">>"))) {
      continue;
    }
    if (i >= 2 && is_punct(t[i - 1], "::") && i >= 3 &&
        is_punct(t[i - 3], ">")) {
      continue;
    }
    // Directly co_awaited calls keep their temporaries alive for the whole
    // await -- safe.
    std::size_t before = i;
    if (before >= 2 && is_punct(t[before - 1], "::")) before -= 2;
    if (before >= 2 && (is_punct(t[before - 1], ".") ||
                        is_punct(t[before - 1], "->"))) {
      before -= 2;  // obj.method( -- look before the object expression
    }
    if (before > 0 && is_ident(t[before - 1], "co_await")) continue;
    // Scan top-level arguments for an obvious temporary: a literal, or a
    // braced construction `Name{...}`.
    std::size_t close = skip_balanced(t, i + 1);
    if (close == npos) continue;
    int depth = 1;  // inside the call's parentheses
    bool arg_begin = true;
    for (std::size_t k = i + 2; k < close - 1; ++k) {
      const Token& tk = t[k];
      if (depth == 1 && is_punct(tk, ",")) {
        arg_begin = true;
        continue;
      }
      if (arg_begin && depth == 1) {
        arg_begin = false;
        // Examine the first token of this argument.
        if (tk.kind == Tok::kNumber || tk.kind == Tok::kString) {
          // Only a *sole* literal argument is unambiguous (part of a larger
          // expression could be anything).
          const bool sole = k + 1 >= close - 1 || is_punct(t[k + 1], ",");
          if (sole) {
            c.diag(t[i].line, "coro-temp-ref",
                   "temporary bound to a reference parameter of sim::Task-"
                   "returning '" + std::string(t[i].text) +
                       "': the temporary dies at the end of the full "
                       "expression, before the suspended coroutine resumes; "
                       "pass a named object or co_await the call directly");
            break;
          }
        } else if (tk.kind == Tok::kIdent && k + 1 < close - 1 &&
                   is_punct(t[k + 1], "{")) {
          c.diag(t[i].line, "coro-temp-ref",
                 "temporary '" + std::string(tk.text) +
                     "{...}' bound to a reference parameter of sim::Task-"
                     "returning '" + std::string(t[i].text) +
                     "': it dies at the end of the full expression, before "
                     "the suspended coroutine resumes; pass a named object "
                     "or co_await the call directly");
          break;
        }
      }
      if (tk.kind == Tok::kPunct) {
        if (tk.text == "(" || tk.text == "[" || tk.text == "{") ++depth;
        else if (tk.text == ")" || tk.text == "]" || tk.text == "}") --depth;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Family: hot
// ---------------------------------------------------------------------------

void check_hot(const Ctx& c) {
  const auto& t = c.t;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    std::string_view name = t[i].text;
    if (name == "function" && i >= 2 && is_punct(t[i - 1], "::") &&
        is_ident(t[i - 2], "std")) {
      c.diag(t[i].line, "hot-std-function",
             "std::function on a hot path: type-erased targets beyond the "
             "SBO threshold heap-allocate per construction; use a template "
             "parameter, function pointer, or the pooled inline-callable "
             "slots");
      continue;
    }
    if (name == "new") {
      if (i > 0 && is_ident(t[i - 1], "operator")) continue;
      // Placement form `new (addr) T` / `::new (addr) T` is pool machinery,
      // not an allocation.
      if (i + 1 < t.size() && is_punct(t[i + 1], "(")) continue;
      c.diag(t[i].line, "hot-naked-new",
             "naked new on a hot path: allocate from a pool (BufferPool, "
             "event slots, PoolAllocator) or use an owning container "
             "constructed off the hot path");
      continue;
    }
    if (name == "make_shared") {
      c.diag(t[i].line, "hot-make-shared",
             "make_shared on a hot path allocates and atomically "
             "refcounts per call; prefer a pooled or stack-owned object");
      continue;
    }
    if (name == "Percentiles") {
      c.diag(t[i].line, "hot-sorted-percentile",
             "Percentiles on a hot path: it buffers every sample and sorts "
             "on query (O(n log n), allocating); use the fixed-bucket "
             "LatencyHistogram (core/trace.h), which records in O(1) with "
             "no allocation");
      continue;
    }
  }
}

// ---------------------------------------------------------------------------
// Family: buffer (flow-aware; see dataflow.h)
// ---------------------------------------------------------------------------

void check_buffer(const Ctx& c) {
  analyze_buffer_lifecycle(
      c.t, [&c](int line, const char* rule, std::string msg) {
        c.diag(line, rule, std::move(msg));
      });
}

// ---------------------------------------------------------------------------
// Family: epoch (epoch stamping and lease discipline)
// ---------------------------------------------------------------------------

void check_epoch(const Ctx& c) {
  const auto& t = c.t;
  // The transport itself (src/net/) is the one place allowed to build raw
  // Message envelopes: Network::send is the epoch-stamping helper and
  // RpcEndpoint::call/notify/multicast are its only sanctioned callers.
  const bool transport = path_contains_dir(c.file, "net");
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    std::string_view name = t[i].text;

    if (!transport && name == "Message" &&
        !(i > 0 && (is_ident(t[i - 1], "struct") ||
                    is_ident(t[i - 1], "class")))) {
      // `Message{...}` construction or a local `Message m;` -- both bypass
      // RpcEndpoint and therefore Network::send's dst_epoch stamping.
      const bool braced = i + 1 < t.size() && is_punct(t[i + 1], "{");
      const bool local_decl = i + 2 < t.size() &&
                              t[i + 1].kind == Tok::kIdent &&
                              is_punct(t[i + 2], ";");
      if (braced || local_decl) {
        c.diag(t[i].line, "epoch-raw-send",
               "raw net::Message construction outside the transport: sends "
               "must go through RpcEndpoint::call/notify/multicast so "
               "Network::send stamps dst_epoch (liveness-epoch fencing, "
               "PR 5); only src/net/ may build envelopes directly");
        continue;
      }
    }

    // Protection acquired without a lease timestamp.  After PR 7,
    // ReplicaStore::protect requires the current tick; this catches the
    // pattern coming back (e.g. a wrapper defaulting it again).
    if (name == "protect" && i > 0 &&
        (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->")) &&
        i + 1 < t.size() && is_punct(t[i + 1], "(")) {
      std::size_t close = skip_balanced(t, i + 1);
      if (close == npos) continue;
      int depth = 0;
      int args = 0;
      bool any = false;
      for (std::size_t k = i + 2; k < close - 1; ++k) {
        any = true;
        if (t[k].kind != Tok::kPunct) continue;
        std::string_view s = t[k].text;
        if (s == "(" || s == "[" || s == "{" || s == "<") ++depth;
        else if (s == ")" || s == "]" || s == "}" || s == ">") --depth;
        else if (s == "," && depth == 0) ++args;
      }
      if (any) args += 1;
      if (args > 0 && args < 3) {
        c.diag(t[i].line, "lease-unleased-lock",
               "protect() called without a lease timestamp: an object "
               "protection that is not stamped with the current tick can "
               "never be shed by the orphan-lock lease (PR 5) and wedges "
               "the object if the owner dies; pass sim.now()");
      }
      continue;
    }

    // Lock acquisition without a lease stamp.  Baseline lock tables pair
    // `locked_by = txn` with `locked_at = now()` so shed_stale_lock can
    // break orphaned locks; an unstamped acquisition is immortal.
    if (name == "locked_by" && i + 1 < t.size() && is_punct(t[i + 1], "=")) {
      // Releases (`locked_by = 0`) need no lease.
      if (i + 2 < t.size() && t[i + 2].kind == Tok::kNumber &&
          t[i + 2].text == "0") {
        continue;
      }
      bool stamped = false;
      const std::size_t limit = i + 80 < t.size() ? i + 80 : t.size();
      for (std::size_t k = i + 2; k + 1 < limit; ++k) {
        if (is_ident(t[k], "locked_at") && is_punct(t[k + 1], "=")) {
          stamped = true;
          break;
        }
      }
      if (!stamped) {
        c.diag(t[i].line, "lease-unleased-lock",
               "lock acquisition sets locked_by without stamping locked_at: "
               "shed_stale_lock cannot lease-break an unstamped lock, so a "
               "crashed owner wedges the object forever; set locked_at = "
               "now() alongside");
      }
      continue;
    }
  }
}

// ---------------------------------------------------------------------------
// Group-level family: codec (wire symmetry and tag registration)
// ---------------------------------------------------------------------------

int op_width(CodecOp::Kind k) {
  switch (k) {
    case CodecOp::kU8: return 1;
    case CodecOp::kU16: return 2;
    case CodecOp::kU32: return 4;
    case CodecOp::kU64: return 8;
    case CodecOp::kI64: return 8;
    default: return 0;
  }
}

const char* op_name(CodecOp::Kind k) {
  switch (k) {
    case CodecOp::kU8: return "u8";
    case CodecOp::kU16: return "u16";
    case CodecOp::kU32: return "u32";
    case CodecOp::kU64: return "u64";
    case CodecOp::kI64: return "i64";
    case CodecOp::kF64: return "f64";
    case CodecOp::kBool: return "boolean";
    case CodecOp::kBlob: return "blob";
    case CodecOp::kStr: return "str";
    case CodecOp::kRaw: return "raw";
    case CodecOp::kVec: return "vec";
    case CodecOp::kCall: return "call";
  }
  return "?";
}

int width_of_type(const SymbolTable& table, const std::string& type) {
  if (type == "uint8_t" || type == "int8_t" || type == "char") return 1;
  if (type == "uint16_t" || type == "int16_t") return 2;
  if (type == "uint32_t" || type == "int32_t") return 4;
  if (type == "uint64_t" || type == "int64_t") return 8;
  auto it = table.type_widths.find(type);
  return it != table.type_widths.end() ? it->second : 0;
}

/// Splice kCall delegations so the whole op sequence of a codec is linear.
void flatten_ops(const std::vector<CodecOp>& ops, const SymbolTable& table,
                 bool encode, int depth, std::vector<const CodecOp*>* out) {
  for (const CodecOp& op : ops) {
    if (op.kind == CodecOp::kCall && depth < 4) {
      const auto& bodies = encode ? table.encoders : table.decoders;
      auto it = bodies.find(op.elem);
      if (it != bodies.end()) {
        flatten_ops(it->second.ops, table, encode, depth + 1, out);
        continue;
      }
    }
    out->push_back(&op);
  }
}

/// Resolve a kVec op's element codec to an op sequence (named helper body
/// or inline lambda ops).  Null when unresolvable.
const std::vector<CodecOp>* vec_elem_ops(const CodecOp& op,
                                         const SymbolTable& table,
                                         bool encode) {
  if (!op.elem.empty()) {
    const auto& bodies = encode ? table.encoders : table.decoders;
    auto it = bodies.find(op.elem);
    if (it != bodies.end()) return &it->second.ops;
    return nullptr;
  }
  return op.elem_ops.empty() ? nullptr : &op.elem_ops;
}

struct GroupCtx {
  const std::vector<GroupFile>& files;
  const SymbolTable& table;
  std::vector<Diagnostic>* out;
  std::map<std::string, UsedSuppressions>* used;

  const GroupFile* find(const std::string& path) const {
    for (const GroupFile& f : files) {
      if (f.path == path) return &f;
    }
    return nullptr;
  }

  /// Emit a diagnostic anchored in `file`, honouring that file's suppression
  /// map and codec-family selection.
  void diag(const std::string& file, int line, const char* rule,
            std::string msg) const {
    const GroupFile* gf = find(file);
    if (!gf || !(gf->families & kCodec)) return;
    const SuppressionMap& sup = gf->lexed->suppressions;
    if (auto it = sup.find(rule); it != sup.end() && it->second.count(line)) {
      if (used) (*used)[file].insert({line, rule});
      return;
    }
    out->push_back(Diagnostic{file, line, rule, std::move(msg)});
  }
};

/// The struct field an op's operand refers to: the last identifier among the
/// op's argument idents that names a field of `ws`.
std::string field_of(const CodecOp& op, const WireStruct& ws) {
  std::string found;
  for (const std::string& id : op.arg_idents) {
    for (const WireField& f : ws.fields) {
      if (f.name == id) {
        found = id;
        break;
      }
    }
  }
  return found;
}

const WireField* field_by_name(const WireStruct& ws, const std::string& n) {
  for (const WireField& f : ws.fields) {
    if (f.name == n) return &f;
  }
  return nullptr;
}

/// Compare a kVec pair's element codecs structurally (op count + kinds,
/// recursing into nested vectors).  Reports into `mismatch` on divergence.
bool compare_elem_ops(const GroupCtx& g, const std::vector<CodecOp>& eops,
                      const std::vector<CodecOp>& dops, int depth) {
  if (depth > 4) return true;
  std::vector<const CodecOp*> ef, df;
  flatten_ops(eops, g.table, true, depth, &ef);
  flatten_ops(dops, g.table, false, depth, &df);
  if (ef.size() != df.size()) return false;
  for (std::size_t i = 0; i < ef.size(); ++i) {
    if (ef[i]->kind != df[i]->kind) return false;
    if (ef[i]->kind == CodecOp::kVec) {
      const auto* ee = vec_elem_ops(*ef[i], g.table, true);
      const auto* de = vec_elem_ops(*df[i], g.table, false);
      if (ee && de && !compare_elem_ops(g, *ee, *de, depth + 1)) return false;
    }
  }
  return true;
}

void check_codec_struct(const GroupCtx& g, const WireStruct& ws,
                        const CodecBody& enc, const CodecBody& dec) {
  std::vector<const CodecOp*> ef, df;
  flatten_ops(enc.ops, g.table, true, 0, &ef);
  flatten_ops(dec.ops, g.table, false, 0, &df);

  if (ef.size() != df.size()) {
    g.diag(enc.file, enc.line, "wire-codec-asymmetry",
           "wire struct '" + ws.name + "': encode writes " +
               std::to_string(ef.size()) + " op(s) but decode (line " +
               std::to_string(dec.line) + ") reads " +
               std::to_string(df.size()) +
               "; a peer decoding this message desynchronises the stream");
    return;
  }

  std::set<std::string> enc_cover, dec_cover;
  for (std::size_t i = 0; i < ef.size(); ++i) {
    const CodecOp& e = *ef[i];
    const CodecOp& d = *df[i];
    std::string fe = field_of(e, ws);
    std::string fd = field_of(d, ws);
    if (!fe.empty()) enc_cover.insert(fe);
    if (!fd.empty()) dec_cover.insert(fd);

    if (e.kind != d.kind) {
      g.diag(enc.file, e.line, "wire-codec-asymmetry",
             "wire struct '" + ws.name + "': op #" + std::to_string(i + 1) +
                 " encodes as '" + op_name(e.kind) +
                 (fe.empty() ? std::string() : "' (field '" + fe + "')") +
                 "' but decodes (line " + std::to_string(d.line) + ") as '" +
                 op_name(d.kind) + "'; the byte stream desynchronises");
      continue;
    }
    if (e.kind == CodecOp::kVec) {
      const auto* ee = vec_elem_ops(e, g.table, true);
      const auto* de = vec_elem_ops(d, g.table, false);
      if (ee && de && !compare_elem_ops(g, *ee, *de, 1)) {
        g.diag(enc.file, e.line, "wire-codec-asymmetry",
               "wire struct '" + ws.name + "': vector op #" +
                   std::to_string(i + 1) +
                   " uses element codecs that disagree between encode and "
                   "decode (line " + std::to_string(d.line) + ")");
      }
    }
    if (!fe.empty() && !fd.empty() && fe != fd) {
      g.diag(enc.file, e.line, "wire-codec-asymmetry",
             "wire struct '" + ws.name + "': op #" + std::to_string(i + 1) +
                 " encodes field '" + fe + "' but decode (line " +
                 std::to_string(d.line) + ") fills field '" + fd +
                 "'; fields are swapped or reordered");
      continue;
    }
    const int ow = op_width(e.kind);
    const std::string fname = !fe.empty() ? fe : fd;
    if (ow > 0 && !fname.empty()) {
      const WireField* wf = field_by_name(ws, fname);
      const int fw = wf ? width_of_type(g.table, wf->type) : 0;
      if (fw > 0 && fw != ow) {
        g.diag(enc.file, e.line, "wire-width-mismatch",
               "wire struct '" + ws.name + "': field '" + fname +
                   "' is declared " + wf->type + " (" + std::to_string(fw) +
                   " byte(s)) but coded with '" + op_name(e.kind) + "' (" +
                   std::to_string(ow) +
                   " byte(s)); values truncate silently on the wire");
      }
    }
  }

  for (const WireField& f : ws.fields) {
    const bool in_enc = enc_cover.count(f.name) != 0;
    const bool in_dec = dec_cover.count(f.name) != 0;
    if (!in_enc && !in_dec) {
      g.diag(ws.file, f.line, "wire-field-uncoded",
             "field '" + f.name + "' of wire struct '" + ws.name +
                 "' is neither written by encode nor read by decode; it "
                 "silently resets to its default across the wire");
    } else if (!in_enc) {
      g.diag(ws.file, f.line, "wire-field-uncoded",
             "field '" + f.name + "' of wire struct '" + ws.name +
                 "' is read by decode but never written by encode");
    } else if (!in_dec) {
      g.diag(ws.file, f.line, "wire-field-uncoded",
             "field '" + f.name + "' of wire struct '" + ws.name +
                 "' is written by encode but never read by decode");
    }
  }
}

void check_group_codecs(const GroupCtx& g) {
  for (const auto& [name, ws] : g.table.structs) {
    auto ei = g.table.encoders.find(name);
    auto di = g.table.decoders.find(name);
    if (ei == g.table.encoders.end() || di == g.table.decoders.end()) {
      continue;  // codec bodies not in this group (or header-only view)
    }
    check_codec_struct(g, ws, ei->second, di->second);
  }

  // Message tags: unique values, and every tag registered in a dispatch
  // table somewhere in the group (only judged when the group has one).
  std::map<long, const MsgTag*> by_value;
  for (const MsgTag& tag : g.table.msg_tags) {
    auto [it, inserted] = by_value.emplace(tag.value, &tag);
    if (!inserted && it->second->name != tag.name) {
      g.diag(tag.file, tag.line, "wire-tag-duplicate",
             "message tag '" + tag.name + "' reuses value " +
                 std::to_string(tag.value) + " already taken by '" +
                 it->second->name + "' (" + it->second->file + ":" +
                 std::to_string(it->second->line) +
                 "); the dispatch table can only route one of them");
    }
  }
  if (!g.table.registered_tags.empty()) {
    for (const MsgTag& tag : g.table.msg_tags) {
      if (!g.table.registered_tags.count(tag.name)) {
        g.diag(tag.file, tag.line, "wire-tag-unregistered",
               "message tag '" + tag.name +
                   "' is never registered in a dispatch table "
                   "(register_service); messages with this kind are dead "
                   "letters at every server");
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

void run_rules(const std::string& file, const LexResult& lexed,
               const SymbolTable& table, unsigned families,
               std::vector<Diagnostic>* out, UsedSuppressions* used) {
  Ctx c{file, lexed.tokens, lexed.suppressions, table, out, used};
  if (families & kDet) check_det(c);
  if (families & kCoro) {
    check_coro_captures(c);
    check_coro_temp_ref(c);
  }
  if (families & kHot) check_hot(c);
  if (families & kBuffer) check_buffer(c);
  if (families & kEpoch) check_epoch(c);
}

void run_group_rules(const std::vector<GroupFile>& files,
                     const SymbolTable& table, std::vector<Diagnostic>* out,
                     std::map<std::string, UsedSuppressions>* used) {
  bool any_codec = false;
  for (const GroupFile& f : files) {
    if (f.families & kCodec) any_codec = true;
  }
  if (!any_codec) return;
  GroupCtx g{files, table, out, used};
  check_group_codecs(g);
}

const std::vector<std::string>& all_rule_names() {
  static const std::vector<std::string> kNames = {
      "det-rand",        "det-wall-clock",     "det-thread",
      "det-unordered-iter", "det-pointer-key",
      "coro-ref-capture", "coro-temp-ref",
      "hot-std-function", "hot-naked-new",     "hot-make-shared",
      "hot-sorted-percentile",
      "wire-codec-asymmetry", "wire-field-uncoded", "wire-width-mismatch",
      "wire-tag-unregistered", "wire-tag-duplicate",
      "buf-leak", "buf-double-release", "buf-use-after-release",
      "epoch-raw-send", "lease-unleased-lock",
  };
  return kNames;
}

unsigned family_of_rule(const std::string& rule) {
  if (rule.rfind("det-", 0) == 0) return kDet;
  if (rule.rfind("coro-", 0) == 0) return kCoro;
  if (rule.rfind("hot-", 0) == 0) return kHot;
  if (rule.rfind("wire-", 0) == 0) return kCodec;
  if (rule.rfind("buf-", 0) == 0) return kBuffer;
  if (rule.rfind("epoch-", 0) == 0 || rule.rfind("lease-", 0) == 0) {
    return kEpoch;
  }
  return 0;
}

}  // namespace qrdtm::lint
