#include "dataflow.h"

#include <map>
#include <set>
#include <string>

#include "tokwalk.h"

namespace qrdtm::lint {

namespace {

enum class BufState { kOwned, kReleased, kMaybe };

struct VarInfo {
  BufState st = BufState::kOwned;
  int acquire_line = 0;
};

using Env = std::map<std::string, VarInfo>;

BufState join_state(BufState a, BufState b) {
  return a == b ? a : BufState::kMaybe;
}

/// Join `other` into `env`: variables present in both keep their state if it
/// agrees and become Maybe otherwise; variables present in only one side are
/// dropped (they were declared inside a branch and already scope-checked).
void join_env(Env* env, const Env& other) {
  for (auto it = env->begin(); it != env->end();) {
    auto jt = other.find(it->first);
    if (jt == other.end()) {
      it = env->erase(it);
      continue;
    }
    it->second.st = join_state(it->second.st, jt->second.st);
    ++it;
  }
}

bool is_tracked_type(std::string_view s) {
  return s == "Bytes" || s == "Writer" || s == "auto";
}

struct Analyzer {
  const std::vector<Token>& t;
  const BufferDiagFn& diag;

  // ---- events -----------------------------------------------------------

  void release_event(Env* env, const std::string& name, int line) {
    auto it = env->find(name);
    if (it == env->end()) return;
    if (it->second.st == BufState::kReleased) {
      diag(line, "buf-double-release",
           "pooled buffer '" + name +
               "' is released again here; the pool free-list would hold it "
               "twice and hand it to two owners");
    }
    it->second.st = BufState::kReleased;
  }

  void move_event(Env* env, const std::string& name, int line) {
    auto it = env->find(name);
    if (it == env->end()) return;
    if (it->second.st == BufState::kReleased) {
      diag(line, "buf-use-after-release",
           "pooled buffer '" + name +
               "' is moved from after its ownership was already released");
    }
    it->second.st = BufState::kReleased;
  }

  void use_event(Env* env, const std::string& name, int line) {
    auto it = env->find(name);
    if (it == env->end()) return;
    if (it->second.st == BufState::kReleased) {
      diag(line, "buf-use-after-release",
           "pooled buffer '" + name +
               "' is used after its ownership was released or moved away");
      env->erase(it);  // one report per variable; avoid cascades
    }
  }

  void leak_check_scope(Env* env, const std::set<std::string>& locals) {
    for (const std::string& name : locals) {
      auto it = env->find(name);
      if (it == env->end()) continue;
      if (it->second.st == BufState::kOwned) {
        diag(it->second.acquire_line, "buf-leak",
             "pooled buffer '" + name +
                 "' acquired here is still owned when it goes out of scope "
                 "on some path; release_buffer it or move it out");
      }
      env->erase(it);
    }
  }

  void leak_check_return(Env* env, int line) {
    for (auto& [name, info] : *env) {
      if (info.st == BufState::kOwned) {
        diag(line, "buf-leak",
             "return while pooled buffer '" + name + "' (acquired at line " +
                 std::to_string(info.acquire_line) +
                 ") is still owned; release_buffer it or move it out");
        info.st = BufState::kReleased;  // reported; path terminates
      }
    }
  }

  // ---- expression scan --------------------------------------------------

  /// True when t[i] opens a lambda introducer '[' (not a subscript or
  /// attribute).
  bool lambda_intro_at(std::size_t i) const {
    if (!is_punct(t[i], "[")) return false;
    if (i + 1 < t.size() && is_punct(t[i + 1], "[")) return false;
    if (i == 0) return true;
    const Token& prev = t[i - 1];
    if (is_ident(prev, "return") || is_ident(prev, "co_return") ||
        is_ident(prev, "co_yield")) {
      return true;
    }
    if (prev.kind == Tok::kIdent || prev.kind == Tok::kNumber ||
        prev.kind == Tok::kString) {
      return false;
    }
    if (is_punct(prev, "]") || is_punct(prev, ")") || is_punct(prev, "[")) {
      return false;
    }
    return true;
  }

  /// Lambda body: returns index just past the body's '}', or npos.  Bodies
  /// are analyzed with a fresh environment (deferred execution).
  std::size_t handle_lambda(std::size_t i) {
    std::size_t cap_end = skip_balanced(t, i);
    if (cap_end == npos) return npos;
    std::size_t k = cap_end;
    if (k < t.size() && is_punct(t[k], "<")) {
      std::size_t past = skip_angles(t, k);
      if (past != npos) k = past;
    }
    if (k < t.size() && is_punct(t[k], "(")) {
      std::size_t past = skip_balanced(t, k);
      if (past == npos) return npos;
      k = past;
    }
    for (std::size_t guard = 0; k < t.size() && guard < 32; ++k, ++guard) {
      if (is_punct(t[k], "{")) {
        std::size_t close = skip_balanced(t, k);
        if (close == npos) return npos;
        Env fresh;
        std::set<std::string> locals;
        analyze_block(k + 1, close - 1, &fresh, &locals);
        return close;
      }
      if (is_punct(t[k], "(")) {  // noexcept(...) / trailing-return call
        std::size_t past = skip_balanced(t, k);
        if (past == npos) return npos;
        k = past - 1;
        continue;
      }
      if (is_punct(t[k], ";") || is_punct(t[k], "}") || is_punct(t[k], ","))
        break;
    }
    return npos;
  }

  /// Scan an expression range for ownership events.  Sets *saw_acquire when
  /// a pool-acquire call appears and *saw_take when ownership is taken out
  /// of a tracked Writer via `std::move(w).take()`.
  void scan_expr(std::size_t b, std::size_t e, Env* env, bool* saw_acquire,
                 bool* saw_take) {
    for (std::size_t k = b; k < e; ++k) {
      const Token& tk = t[k];
      if (tk.kind == Tok::kPunct) {
        if (lambda_intro_at(k)) {
          std::size_t past = handle_lambda(k);
          if (past != npos && past <= e) {
            k = past - 1;
            continue;
          }
        }
        continue;
      }
      if (tk.kind != Tok::kIdent) continue;
      std::string_view name = tk.text;

      // Pool acquire: `acquire_buffer(` anywhere, or member `.acquire(`.
      if (name == "acquire_buffer" && k + 1 < e && is_punct(t[k + 1], "(")) {
        if (saw_acquire) *saw_acquire = true;
        continue;
      }
      if (name == "acquire" && k + 1 < e && is_punct(t[k + 1], "(") &&
          k > b &&
          (is_punct(t[k - 1], ".") || is_punct(t[k - 1], "->"))) {
        if (saw_acquire) *saw_acquire = true;
        continue;
      }

      // Pool release: release_buffer(...) / .release(...): every
      // `std::move(x)` among the arguments is an explicit pool return.
      if ((name == "release_buffer" ||
           (name == "release" && k > b &&
            (is_punct(t[k - 1], ".") || is_punct(t[k - 1], "->")))) &&
          k + 1 < e && is_punct(t[k + 1], "(")) {
        std::size_t close = skip_balanced(t, k + 1);
        if (close == npos || close > e) continue;
        std::size_t j = k + 2;
        bool any = false;
        while (j + 4 < close) {
          if (is_ident(t[j], "std") && is_punct(t[j + 1], "::") &&
              is_ident(t[j + 2], "move") && is_punct(t[j + 3], "(") &&
              t[j + 4].kind == Tok::kIdent && j + 5 < close &&
              is_punct(t[j + 5], ")")) {
            release_event(env, std::string(t[j + 4].text), t[j + 4].line);
            any = true;
            j += 6;
            continue;
          }
          ++j;
        }
        if (any) {
          k = close - 1;  // arguments fully handled
          continue;
        }
        continue;  // release of something untracked; keep scanning inside
      }

      // Ownership handoff: std::move(x) outside a pool release.
      if (name == "std" && k + 4 < e && is_punct(t[k + 1], "::") &&
          is_ident(t[k + 2], "move") && is_punct(t[k + 3], "(") &&
          t[k + 4].kind == Tok::kIdent && k + 5 < e &&
          is_punct(t[k + 5], ")")) {
        std::string var(t[k + 4].text);
        if (env->count(var)) {
          move_event(env, var, t[k + 4].line);
          if (saw_take && k + 7 < e && is_punct(t[k + 6], ".") &&
              is_ident(t[k + 7], "take")) {
            *saw_take = true;
          }
          k += 5;
          continue;
        }
        continue;
      }

      // Plain mention of a tracked variable.
      if (env->count(std::string(name))) {
        use_event(env, std::string(name), tk.line);
      }
    }
  }

  // ---- statements and blocks -------------------------------------------

  /// Find the end of a plain statement starting at `k`: the index of its
  /// top-level ';', or of a top-level '{' (function/class body).
  std::size_t statement_end(std::size_t k, std::size_t e,
                            bool* at_brace) const {
    int depth = 0;
    *at_brace = false;
    for (std::size_t j = k; j < e; ++j) {
      if (t[j].kind != Tok::kPunct) continue;
      std::string_view s = t[j].text;
      if (s == "(" || s == "[") {
        ++depth;
      } else if (s == ")" || s == "]") {
        --depth;
      } else if (s == "{") {
        if (depth == 0) {
          *at_brace = true;
          return j;
        }
        ++depth;
      } else if (s == "}") {
        --depth;
      } else if (s == ";" && depth == 0) {
        return j;
      }
    }
    return e;
  }

  /// Analyze one branch arm: a braced block or a single statement.
  /// Returns the index just past the arm; sets *terminated when the arm
  /// definitely exits (return/co_return as its final top-level statement).
  std::size_t analyze_branch(std::size_t k, std::size_t e, Env* env,
                             bool* terminated) {
    *terminated = false;
    if (k >= e) return k;
    if (is_punct(t[k], "{")) {
      std::size_t close = skip_balanced(t, k);
      if (close == npos || close > e + 1) return e;
      std::set<std::string> locals;
      *terminated = analyze_block(k + 1, close - 1, env, &locals);
      return close;
    }
    std::set<std::string> locals;
    std::size_t next = analyze_statement(k, e, env, &locals, terminated);
    leak_check_scope(env, locals);
    return next;
  }

  /// Analyze one statement starting at `k`.  Returns the index just past
  /// it.  `locals` collects variables declared at this block level;
  /// *terminated is set for return/co_return.
  std::size_t analyze_statement(std::size_t k, std::size_t e, Env* env,
                                std::set<std::string>* locals,
                                bool* terminated) {
    *terminated = false;
    const Token& first = t[k];

    if (is_punct(first, ";")) return k + 1;

    if (is_punct(first, "{")) {  // bare nested scope
      std::size_t close = skip_balanced(t, k);
      if (close == npos || close > e + 1) return e;
      std::set<std::string> inner;
      analyze_block(k + 1, close - 1, env, &inner);
      return close;
    }

    if (first.kind == Tok::kIdent) {
      std::string_view kw = first.text;

      if (kw == "if") {
        std::size_t p = k + 1;
        if (p < e && is_ident(t[p], "constexpr")) ++p;
        if (p >= e || !is_punct(t[p], "(")) return skip_statement(k, e);
        std::size_t close = skip_balanced(t, p);
        if (close == npos || close > e) return e;
        scan_expr(p + 1, close - 1, env, nullptr, nullptr);
        Env then_env = *env;
        bool then_term = false;
        std::size_t after = analyze_branch(close, e, &then_env, &then_term);
        if (after < e && is_ident(t[after], "else")) {
          Env else_env = *env;
          bool else_term = false;
          after = analyze_branch(after + 1, e, &else_env, &else_term);
          join_env(&then_env, else_env);
          *env = std::move(then_env);
          *terminated = then_term && else_term;
        } else {
          join_env(env, then_env);  // fallthrough path keeps the incoming env
        }
        return after;
      }

      if (kw == "for" || kw == "while") {
        if (k + 1 >= e || !is_punct(t[k + 1], "(")) {
          return skip_statement(k, e);
        }
        std::size_t close = skip_balanced(t, k + 1);
        if (close == npos || close > e) return e;
        scan_expr(k + 2, close - 1, env, nullptr, nullptr);
        Env body_env = *env;
        bool term = false;
        std::size_t after = analyze_branch(close, e, &body_env, &term);
        join_env(env, body_env);  // body may run zero times
        return after;
      }

      if (kw == "do") {
        Env body_env = *env;
        bool term = false;
        std::size_t after = analyze_branch(k + 1, e, &body_env, &term);
        join_env(env, body_env);
        // Trailing `while (...);`
        if (after < e && is_ident(t[after], "while") && after + 1 < e &&
            is_punct(t[after + 1], "(")) {
          std::size_t wclose = skip_balanced(t, after + 1);
          if (wclose != npos && wclose <= e) {
            scan_expr(after + 2, wclose - 1, env, nullptr, nullptr);
            after = wclose;
            if (after < e && is_punct(t[after], ";")) ++after;
          }
        }
        return after;
      }

      if (kw == "switch") {
        if (k + 1 >= e || !is_punct(t[k + 1], "(")) {
          return skip_statement(k, e);
        }
        std::size_t close = skip_balanced(t, k + 1);
        if (close == npos || close > e) return e;
        scan_expr(k + 2, close - 1, env, nullptr, nullptr);
        Env body_env = *env;
        bool term = false;
        std::size_t after = analyze_branch(close, e, &body_env, &term);
        join_env(env, body_env);
        return after;
      }

      if (kw == "return" || kw == "co_return") {
        bool at_brace = false;
        std::size_t end = statement_end(k + 1, e, &at_brace);
        scan_expr(k + 1, end, env, nullptr, nullptr);
        leak_check_return(env, first.line);
        *terminated = true;
        return end < e && is_punct(t[end], ";") ? end + 1 : end;
      }

      // Tracked declaration: `Bytes x = init;` / `Writer w(init);` /
      // `auto b = init;`.
      if (is_tracked_type(kw) && k + 2 < e && t[k + 1].kind == Tok::kIdent &&
          (is_punct(t[k + 2], "=") || is_punct(t[k + 2], "(") ||
           is_punct(t[k + 2], "{"))) {
        std::string name(t[k + 1].text);
        bool at_brace = false;
        std::size_t end = statement_end(k + 2, e, &at_brace);
        if (!at_brace) {  // a brace here would be a function body, not init
          bool saw_acquire = false;
          bool saw_take = false;
          std::size_t ib = k + 2 + (is_punct(t[k + 2], "=") ? 1 : 0);
          scan_expr(ib, end, env, &saw_acquire, &saw_take);
          const bool tracked =
              saw_acquire || (saw_take && kw == "Bytes");
          if (tracked) {
            (*env)[name] = VarInfo{BufState::kOwned, first.line};
            locals->insert(name);
          }
          return end < e ? end + 1 : end;
        }
      }
    }

    // Plain statement (expression, declaration of untracked type, or a
    // definition whose body is a top-level '{').
    bool at_brace = false;
    std::size_t end = statement_end(k, e, &at_brace);
    bool saw_acquire = false;
    scan_expr(k, end, env, &saw_acquire, nullptr);
    if (at_brace) {
      std::size_t close = skip_balanced(t, end);
      if (close == npos || close > e + 1) return e;
      // Function/class/namespace body: analyze with the current (outer)
      // environment -- empty at file scope, which is the common case.
      std::set<std::string> inner;
      analyze_block(end + 1, close - 1, env, &inner);
      if (close < e && is_punct(t[close], ";")) ++close;
      return close;
    }
    return end < e && is_punct(t[end], ";") ? end + 1 : end;
  }

  std::size_t skip_statement(std::size_t k, std::size_t e) const {
    bool at_brace = false;
    std::size_t end = statement_end(k, e, &at_brace);
    if (at_brace) {
      std::size_t close = skip_balanced(t, end);
      return close == npos || close > e ? e : close;
    }
    return end < e ? end + 1 : end;
  }

  /// Analyze a statement sequence.  Returns true when the block definitely
  /// terminates (a top-level return/co_return was seen).
  bool analyze_block(std::size_t b, std::size_t e, Env* env,
                     std::set<std::string>* locals) {
    bool terminated = false;
    std::size_t k = b;
    while (k < e && t[k].kind != Tok::kEnd) {
      bool stmt_term = false;
      std::size_t next = analyze_statement(k, e, env, locals, &stmt_term);
      terminated = terminated || stmt_term;
      if (next <= k) ++next;  // forward progress guard
      k = next;
    }
    leak_check_scope(env, *locals);
    return terminated;
  }
};

}  // namespace

void analyze_buffer_lifecycle(const std::vector<Token>& tokens,
                              const BufferDiagFn& diag) {
  Analyzer a{tokens, diag};
  Env env;
  std::set<std::string> locals;
  a.analyze_block(0, tokens.size(), &env, &locals);
}

}  // namespace qrdtm::lint
