// Fault-tolerance tests: fail-stop nodes before and during workloads and
// check the cluster keeps committing with invariants intact (paper §VI-D).
#include <gtest/gtest.h>

#include "apps/bank.h"
#include "common/serde.h"
#include "core/cluster.h"

namespace qrdtm::core {
namespace {

Bytes enc_i64(std::int64_t v) {
  Writer w;
  w.i64(v);
  return std::move(w).take();
}

std::int64_t dec_i64(const Bytes& b) {
  Reader r(b);
  return r.i64();
}

TEST(Failures, TreeQuorumSurvivesLeafDeath) {
  ClusterConfig cfg;
  cfg.num_nodes = 13;
  cfg.seed = 3;
  Cluster c(cfg);
  ObjectId obj = c.seed_new_object(enc_i64(0));

  // Kill three leaves (none of which block level-1 read quorums or the
  // rooted write majority).
  c.kill_node(10);
  c.kill_node(11);
  c.kill_node(12);

  for (int i = 0; i < 5; ++i) {
    c.spawn_client(static_cast<net::NodeId>(i), [obj](Txn& t) -> sim::Task<void> {
      std::int64_t v = dec_i64(co_await t.read_for_write(obj));
      t.write(obj, enc_i64(v + 1));
    });
  }
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commits, 5u);

  std::int64_t final_v = 0;
  c.spawn_client(0, [&, obj](Txn& t) -> sim::Task<void> {
    final_v = dec_i64(co_await t.read(obj));
  });
  c.run_to_completion();
  EXPECT_EQ(final_v, 5);
}

TEST(Failures, ReadsSurviveInternalNodeDeath) {
  // Killing n1 forces the read quorum to substitute its children.
  ClusterConfig cfg;
  cfg.num_nodes = 13;
  cfg.seed = 4;
  Cluster c(cfg);
  ObjectId obj = c.seed_new_object(enc_i64(7));
  c.kill_node(1);

  std::int64_t seen = 0;
  c.spawn_client(5, [&, obj](Txn& t) -> sim::Task<void> {
    seen = dec_i64(co_await t.read(obj));
  });
  c.run_to_completion();
  EXPECT_EQ(seen, 7);
}

TEST(Failures, MidRunFailureDoesNotLoseCommittedState) {
  // Writes committed while a (future-dead) node was alive must stay
  // readable after it dies: the write quorum replicated them.
  ClusterConfig cfg;
  cfg.num_nodes = 13;
  cfg.seed = 5;
  Cluster c(cfg);
  ObjectId obj = c.seed_new_object(enc_i64(100));

  c.spawn_client(2, [obj](Txn& t) -> sim::Task<void> {
    (void)co_await t.read_for_write(obj);
    t.write(obj, enc_i64(200));
  });
  c.run_to_completion();

  // Now kill two members; a fresh reader must still see 200.
  c.kill_node(12);
  c.kill_node(9);
  std::int64_t seen = 0;
  c.spawn_client(4, [&, obj](Txn& t) -> sim::Task<void> {
    seen = dec_i64(co_await t.read(obj));
  });
  c.run_to_completion();
  EXPECT_EQ(seen, 200);
}

TEST(Failures, FlatFailureAwareWorkloadSurvivesEightDeaths) {
  ClusterConfig cfg;
  cfg.num_nodes = 28;
  cfg.quorum = QuorumKind::kFlatFailureAware;
  cfg.seed = 6;
  Cluster c(cfg);
  apps::BankApp bank;
  apps::WorkloadParams params;
  params.num_objects = 32;
  params.read_ratio = 0.2;
  Rng setup_rng(9);
  bank.setup(c, params, setup_rng);

  for (net::NodeId f = 27; f >= 20; --f) {
    c.kill_node(f);
  }
  for (net::NodeId n = 0; n < 12; ++n) {
    c.spawn_loop_client(n, [&](Rng& rng) { return bank.make_txn(params, rng); });
  }
  c.run_for(sim::sec(10));
  c.run_to_completion();
  EXPECT_GT(c.metrics().commits, 20u);

  bool ok = false;
  c.spawn_client(0, bank.make_checker(&ok));
  c.run_to_completion();
  EXPECT_TRUE(ok) << "balance conservation violated under failures";
}

TEST(Failures, KillDuringWorkloadIsSurvivable) {
  // Nodes die while transactions are in flight; in-flight requests to dead
  // members time out, quorums reconfigure, and the workload finishes with
  // conserved balances.
  ClusterConfig cfg;
  cfg.num_nodes = 28;
  cfg.quorum = QuorumKind::kFlatFailureAware;
  cfg.seed = 7;
  cfg.runtime.rpc_timeout = sim::msec(150);
  Cluster c(cfg);
  apps::BankApp bank;
  apps::WorkloadParams params;
  params.num_objects = 32;
  params.read_ratio = 0.2;
  Rng setup_rng(10);
  bank.setup(c, params, setup_rng);

  for (net::NodeId n = 0; n < 10; ++n) {
    c.spawn_loop_client(n, [&](Rng& rng) { return bank.make_txn(params, rng); });
  }
  // Staggered mid-run deaths.
  for (int i = 0; i < 4; ++i) {
    c.simulator().schedule_at(sim::sec(2 + i), [&c, i] {
      c.kill_node(static_cast<net::NodeId>(27 - i));
    });
  }
  c.run_for(sim::sec(12));
  c.run_to_completion();
  EXPECT_GT(c.metrics().commits, 20u);

  bool ok = false;
  c.spawn_client(0, bank.make_checker(&ok));
  c.run_to_completion();
  EXPECT_TRUE(ok);
}

TEST(Failures, WholeReadQuorumDeadAbortsInsteadOfHanging) {
  // With the tree provider, killing every level-1 node and every leaf that
  // could substitute leaves no read quorum formable: the transaction must
  // surface an error (QuorumUnavailable), not deadlock the simulation.
  ClusterConfig cfg;
  cfg.num_nodes = 4;  // root + 3 children: read level 1 = 2 of {1,2,3}
  cfg.seed = 8;
  Cluster c(cfg);
  ObjectId obj = c.seed_new_object(enc_i64(1));
  c.kill_node(1);
  c.kill_node(2);
  c.kill_node(3);

  bool threw = false;
  c.spawn_client(0, [&, obj](Txn& t) -> sim::Task<void> {
    try {
      (void)co_await t.read(obj);
    } catch (const quorum::QuorumUnavailable&) {
      threw = true;
    }
  });
  c.run_to_completion();
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace qrdtm::core
