// Unit tests for the hand-rolled wire format (common/serde.h).
#include "common/serde.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"

namespace qrdtm {
namespace {

TEST(Serde, RoundTripsFixedWidthIntegers) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.boolean(true);
  w.boolean(false);

  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(Serde, RoundTripsExtremeValues) {
  Writer w;
  w.u64(0);
  w.u64(std::numeric_limits<std::uint64_t>::max());
  w.i64(std::numeric_limits<std::int64_t>::min());
  w.i64(std::numeric_limits<std::int64_t>::max());
  Reader r(w.bytes());
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_EQ(r.u64(), std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(r.i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(r.i64(), std::numeric_limits<std::int64_t>::max());
}

TEST(Serde, RoundTripsDoubles) {
  const double values[] = {0.0, -0.0, 1.5, -3.25e300, 1e-300,
                           std::numeric_limits<double>::infinity()};
  Writer w;
  for (double v : values) w.f64(v);
  Reader r(w.bytes());
  for (double v : values) EXPECT_EQ(r.f64(), v);
}

TEST(Serde, RoundTripsStringsAndBlobs) {
  Writer w;
  w.str("");
  w.str("hello quorum");
  w.blob(Bytes{});
  w.blob(Bytes{0x00, 0xFF, 0x10});
  Reader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "hello quorum");
  EXPECT_EQ(r.blob(), Bytes{});
  EXPECT_EQ(r.blob(), (Bytes{0x00, 0xFF, 0x10}));
  EXPECT_TRUE(r.done());
}

TEST(Serde, VectorHelperRoundTrips) {
  std::vector<std::uint64_t> v = {1, 2, 3, 1ull << 60};
  Writer w;
  encode_vec(w, v, [](Writer& w2, std::uint64_t x) { w2.u64(x); });
  Reader r(w.bytes());
  auto got =
      decode_vec<std::uint64_t>(r, [](Reader& r2) { return r2.u64(); });
  EXPECT_EQ(got, v);
}

TEST(Serde, UnderflowThrows) {
  Writer w;
  w.u16(7);
  Reader r(w.bytes());
  EXPECT_EQ(r.u16(), 7);
  EXPECT_THROW(r.u8(), SerdeError);
}

TEST(Serde, TruncatedStringThrows) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow; none do
  Reader r(w.bytes());
  EXPECT_THROW(r.str(), SerdeError);
}

TEST(Serde, CorruptVectorCountThrows) {
  Writer w;
  w.u32(0xFFFFFFFFu);
  Reader r(w.bytes());
  EXPECT_THROW(
      (decode_vec<std::uint8_t>(r, [](Reader& r2) { return r2.u8(); })),
      SerdeError);
}

TEST(Serde, ExpectDoneCatchesTrailingGarbage) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 1);
  EXPECT_THROW(r.expect_done(), SerdeError);
}

// Property: random sequences of typed writes decode back identically.
TEST(SerdeProperty, RandomRoundTrips) {
  Rng rng(1234);
  for (int iter = 0; iter < 200; ++iter) {
    Writer w;
    std::vector<std::uint64_t> expected;
    std::vector<int> kinds;
    int n = static_cast<int>(rng.below(20)) + 1;
    for (int i = 0; i < n; ++i) {
      int kind = static_cast<int>(rng.below(4));
      std::uint64_t v = rng.next();
      kinds.push_back(kind);
      switch (kind) {
        case 0:
          w.u8(static_cast<std::uint8_t>(v));
          expected.push_back(static_cast<std::uint8_t>(v));
          break;
        case 1:
          w.u16(static_cast<std::uint16_t>(v));
          expected.push_back(static_cast<std::uint16_t>(v));
          break;
        case 2:
          w.u32(static_cast<std::uint32_t>(v));
          expected.push_back(static_cast<std::uint32_t>(v));
          break;
        default:
          w.u64(v);
          expected.push_back(v);
          break;
      }
    }
    Reader r(w.bytes());
    for (int i = 0; i < n; ++i) {
      std::uint64_t got = 0;
      switch (kinds[i]) {
        case 0:
          got = r.u8();
          break;
        case 1:
          got = r.u16();
          break;
        case 2:
          got = r.u32();
          break;
        default:
          got = r.u64();
          break;
      }
      ASSERT_EQ(got, expected[i]) << "iter " << iter << " field " << i;
    }
    EXPECT_TRUE(r.done());
  }
}

}  // namespace
}  // namespace qrdtm
