// Benchmark-application tests: reference-model checks for every data
// structure plus (app x nesting-mode) workload integrity sweeps.
#include <gtest/gtest.h>

#include <map>

#include "apps/app.h"
#include "apps/bank.h"
#include "apps/bst.h"
#include "apps/hashmap.h"
#include "apps/rbtree.h"
#include "apps/skiplist.h"
#include "apps/vacation.h"

namespace qrdtm::apps {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::NestingMode;

ClusterConfig app_cfg(NestingMode mode) {
  ClusterConfig cfg;
  cfg.num_nodes = 13;
  cfg.runtime.mode = mode;
  cfg.seed = 2024;
  return cfg;
}

// ---------------------------------------------------------------- reference

// Drives a key-value structure with a random op sequence mirrored into a
// std::map, then checks lookups and invariants.  `Ops` adapts the app.
template <class AppT>
void reference_model_test(NestingMode mode, std::uint32_t initial) {
  Cluster c(app_cfg(mode));
  AppT app;
  WorkloadParams params;
  params.num_objects = initial;
  Rng setup_rng(99);
  app.setup(c, params, setup_rng);

  // Rebuild the reference from the seeded structure via lookups.
  std::map<std::uint64_t, std::int64_t> ref;
  for (std::uint64_t k = 1; k <= app.key_space() + 1; ++k) {
    std::int64_t v = 0;
    bool found = false;
    c.spawn_client(0, app.make_lookup(k, &v, &found));
    c.run_to_completion();
    if (found) ref[k] = v;
  }
  EXPECT_EQ(ref.size(), initial);

  Rng rng(7);
  for (int i = 0; i < 120; ++i) {
    std::uint64_t key = rng.below(app.key_space()) + 1;
    std::int64_t value = rng.range(0, 1000);
    int kind = static_cast<int>(rng.below(3));
    if (kind == 0) {  // insert/update
      c.spawn_client(1, app.make_op(AppT::OpKind::kInsert, key, value));
      c.run_to_completion();
      ref[key] = value;
    } else if (kind == 1) {  // remove
      c.spawn_client(2, app.make_op(AppT::OpKind::kRemove, key, 0));
      c.run_to_completion();
      ref.erase(key);
    } else {  // lookup
      std::int64_t v = 0;
      bool found = false;
      c.spawn_client(3, app.make_lookup(key, &v, &found));
      c.run_to_completion();
      ASSERT_EQ(found, ref.contains(key)) << "key " << key << " iter " << i;
      if (found) {
        ASSERT_EQ(v, ref.at(key));
      }
    }
  }

  // Full content equality plus structural invariants.
  for (const auto& [k, v] : ref) {
    std::int64_t got = 0;
    bool found = false;
    c.spawn_client(4, app.make_lookup(k, &got, &found));
    c.run_to_completion();
    ASSERT_TRUE(found) << "key " << k;
    ASSERT_EQ(got, v);
  }
  bool ok = false;
  c.spawn_client(0, app.make_checker(&ok));
  c.run_to_completion();
  EXPECT_TRUE(ok);
}

TEST(HashmapRef, MatchesStdMapFlat) {
  reference_model_test<HashmapApp>(NestingMode::kFlat, 24);
}
TEST(HashmapRef, MatchesStdMapClosed) {
  reference_model_test<HashmapApp>(NestingMode::kClosed, 24);
}
TEST(HashmapRef, MatchesStdMapCheckpoint) {
  reference_model_test<HashmapApp>(NestingMode::kCheckpoint, 24);
}
TEST(SkipListRef, MatchesStdMapFlat) {
  reference_model_test<SkipListApp>(NestingMode::kFlat, 24);
}
TEST(SkipListRef, MatchesStdMapClosed) {
  reference_model_test<SkipListApp>(NestingMode::kClosed, 24);
}
TEST(SkipListRef, MatchesStdMapCheckpoint) {
  reference_model_test<SkipListApp>(NestingMode::kCheckpoint, 24);
}
TEST(BstRef, MatchesStdMapFlat) {
  reference_model_test<BstApp>(NestingMode::kFlat, 24);
}
TEST(BstRef, MatchesStdMapCheckpoint) {
  reference_model_test<BstApp>(NestingMode::kCheckpoint, 24);
}
TEST(RbTreeRef, MatchesStdMapFlat) {
  reference_model_test<RbTreeApp>(NestingMode::kFlat, 24);
}
TEST(RbTreeRef, MatchesStdMapClosed) {
  reference_model_test<RbTreeApp>(NestingMode::kClosed, 24);
}
TEST(RbTreeRef, MatchesStdMapCheckpoint) {
  reference_model_test<RbTreeApp>(NestingMode::kCheckpoint, 24);
}

TEST(RbTreeRef, ManyInsertsKeepRedBlackInvariants) {
  // Grow the tree well past its seeded size; the checker verifies root
  // blackness, no red-red edges, and equal black heights after every batch.
  Cluster c(app_cfg(NestingMode::kFlat));
  RbTreeApp app;
  WorkloadParams params;
  params.num_objects = 4;
  Rng setup_rng(5);
  app.setup(c, params, setup_rng);
  Rng rng(6);
  for (int batch = 0; batch < 6; ++batch) {
    for (int i = 0; i < 20; ++i) {
      std::uint64_t key = rng.below(10000) + 1;
      c.spawn_client(1, app.make_op(RbTreeApp::OpKind::kInsert, key,
                                    static_cast<std::int64_t>(key)));
      c.run_to_completion();
    }
    bool ok = false;
    c.spawn_client(0, app.make_checker(&ok));
    c.run_to_completion();
    ASSERT_TRUE(ok) << "batch " << batch;
  }
}

// ----------------------------------------------------- concurrent sweeps

struct SweepParam {
  const char* app;
  NestingMode mode;
};

class AppModeSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AppModeSweep, ConcurrentWorkloadPreservesInvariants) {
  const auto& [app_name, mode] = GetParam();
  ClusterConfig cfg = app_cfg(mode);
  Cluster c(cfg);
  auto app = make_app(app_name);
  WorkloadParams params;
  params.num_objects = 32;
  params.nested_calls = 3;
  params.read_ratio = 0.2;  // write-heavy: maximum contention
  Rng setup_rng(17);
  app->setup(c, params, setup_rng);

  for (net::NodeId n = 0; n < 8; ++n) {
    c.spawn_loop_client(n, [&app, &params](Rng& rng) {
      return app->make_txn(params, rng);
    });
  }
  c.run_for(sim::sec(30));
  c.run_to_completion();  // drain in-flight transactions

  EXPECT_GT(c.metrics().commits, 50u) << "workload barely ran";

  bool ok = false;
  c.spawn_client(0, app->make_checker(&ok));
  c.run_to_completion();
  EXPECT_TRUE(ok) << app_name << " integrity violated under "
                  << core::to_string(mode);
}

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  return std::string(info.param.app) + "_" +
         core::to_string(info.param.mode);
}

INSTANTIATE_TEST_SUITE_P(
    AllAppsAllModes, AppModeSweep,
    ::testing::Values(
        SweepParam{"bank", NestingMode::kFlat},
        SweepParam{"bank", NestingMode::kClosed},
        SweepParam{"bank", NestingMode::kCheckpoint},
        SweepParam{"hashmap", NestingMode::kFlat},
        SweepParam{"hashmap", NestingMode::kClosed},
        SweepParam{"hashmap", NestingMode::kCheckpoint},
        SweepParam{"slist", NestingMode::kFlat},
        SweepParam{"slist", NestingMode::kClosed},
        SweepParam{"slist", NestingMode::kCheckpoint},
        SweepParam{"rbtree", NestingMode::kFlat},
        SweepParam{"rbtree", NestingMode::kClosed},
        SweepParam{"rbtree", NestingMode::kCheckpoint},
        SweepParam{"bst", NestingMode::kFlat},
        SweepParam{"bst", NestingMode::kClosed},
        SweepParam{"bst", NestingMode::kCheckpoint},
        SweepParam{"vacation", NestingMode::kFlat},
        SweepParam{"vacation", NestingMode::kClosed},
        SweepParam{"vacation", NestingMode::kCheckpoint}),
    sweep_name);

TEST(AppFactory, KnowsAllApps) {
  for (const auto& name : app_names()) {
    auto app = make_app(name);
    ASSERT_NE(app, nullptr);
    EXPECT_EQ(app->name(), name);
  }
  EXPECT_THROW(make_app("nope"), InvariantError);
}

}  // namespace
}  // namespace qrdtm::apps
