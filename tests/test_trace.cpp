// Unit tests for qrdtm-trace (core/trace.h): histogram bucket boundaries,
// percentile accessors, merge semantics, Chrome trace-event export, and the
// determinism contract (same seed => identical histograms; tracing on =>
// identical protocol outcomes).
#include "core/trace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/harness.h"
#include "core/metrics.h"

namespace qrdtm::core {
namespace {

// ---------------------------------------------------------------------------
// Bucket boundaries.

TEST(LatencyHistogramBuckets, SmallValuesAreExact) {
  // Below 2^kSubBits every value gets its own bucket, and the first octave
  // keeps unit-width buckets, so indices are the identity through 2^(kSubBits+1).
  for (sim::Tick v = 0; v < 2 * LatencyHistogram::kSub; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_index(v), v);
    EXPECT_EQ(LatencyHistogram::bucket_upper(
                  LatencyHistogram::bucket_index(v)),
              v);
  }
}

TEST(LatencyHistogramBuckets, OctaveEdgesAreContinuous) {
  // At every power of two, v-1 must be the inclusive upper edge of its
  // bucket and v must start the next one -- no gap, no overlap.
  for (std::uint32_t o = LatencyHistogram::kSubBits + 1; o < 52; ++o) {
    const sim::Tick v = sim::Tick{1} << o;
    const std::uint32_t below = LatencyHistogram::bucket_index(v - 1);
    const std::uint32_t at = LatencyHistogram::bucket_index(v);
    EXPECT_EQ(at, below + 1) << "octave " << o;
    EXPECT_EQ(LatencyHistogram::bucket_upper(below), v - 1) << "octave " << o;
  }
}

TEST(LatencyHistogramBuckets, IndexIsMonotoneAndUpperBounds) {
  std::uint32_t prev = 0;
  for (sim::Tick v = 1; v < (sim::Tick{1} << 40); v = v * 3 + 1) {
    const std::uint32_t idx = LatencyHistogram::bucket_index(v);
    EXPECT_GE(idx, prev);
    EXPECT_GE(LatencyHistogram::bucket_upper(idx), v);
    if (idx > 0) {
      EXPECT_LT(LatencyHistogram::bucket_upper(idx - 1), v);
    }
    prev = idx;
  }
}

TEST(LatencyHistogramBuckets, RelativeErrorBounded) {
  // Sub-bucket width is 2^(o-kSubBits) inside octave o, so the edge
  // reported for any value v >= kSub overshoots by at most v / kSub.
  for (sim::Tick v = LatencyHistogram::kSub; v < (sim::Tick{1} << 40);
       v = v * 5 + 3) {
    const sim::Tick upper =
        LatencyHistogram::bucket_upper(LatencyHistogram::bucket_index(v));
    EXPECT_LE(upper - v, v / LatencyHistogram::kSub) << "v=" << v;
  }
}

// ---------------------------------------------------------------------------
// Percentile accessors.

TEST(LatencyHistogramPercentile, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_EQ(h.percentile(99), 0u);
}

TEST(LatencyHistogramPercentile, NearestRankOnExactBuckets) {
  // Values 1..10 all land in exact unit buckets, so nearest-rank answers
  // are exact: rank(p) = floor(p/100 * 10 + 0.5).
  LatencyHistogram h;
  for (sim::Tick v = 1; v <= 10; ++v) h.record(v);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.percentile(0), 1u);    // clamps to min
  EXPECT_EQ(h.percentile(10), 1u);   // rank 1
  EXPECT_EQ(h.percentile(50), 5u);   // rank 5
  EXPECT_EQ(h.percentile(90), 9u);   // rank 9
  EXPECT_EQ(h.percentile(100), 10u); // clamps to max
  EXPECT_DOUBLE_EQ(h.mean(), 5.5);
}

TEST(LatencyHistogramPercentile, ClampsToObservedExtremes) {
  // A single sample: every percentile reports exactly it, even though its
  // bucket edge overshoots the raw value.
  LatencyHistogram h;
  const sim::Tick v = sim::msec(17) + 123;
  h.record(v);
  EXPECT_EQ(h.percentile(1), v);
  EXPECT_EQ(h.percentile(50), v);
  EXPECT_EQ(h.percentile(99), v);
  EXPECT_EQ(h.min(), v);
  EXPECT_EQ(h.max(), v);
}

TEST(LatencyHistogramPercentile, ErrorWithinSubBucketBound) {
  // Log-spaced samples: reported percentiles stay within the advertised
  // 1/kSub relative error of the true nearest-rank sample.
  std::vector<sim::Tick> vals;
  LatencyHistogram h;
  for (sim::Tick v = 100; v < 100'000'000; v = v * 21 / 20 + 1) {
    vals.push_back(v);
    h.record(v);
  }
  for (double p : {50.0, 90.0, 99.0}) {
    std::uint64_t rank = static_cast<std::uint64_t>(
        (p / 100.0) * static_cast<double>(vals.size()) + 0.5);
    if (rank < 1) rank = 1;
    const sim::Tick exact = vals[rank - 1];  // vals is recorded sorted
    const sim::Tick got = h.percentile(p);
    EXPECT_GE(got, exact);
    EXPECT_LE(got - exact, exact / LatencyHistogram::kSub) << "p=" << p;
  }
}

TEST(LatencyHistogram, MergeEqualsRecordingEverything) {
  LatencyHistogram a, b, all;
  for (sim::Tick v : {1u, 2u, 3u, 700u, 41u}) {
    a.record(v);
    all.record(v);
  }
  for (sim::Tick v : {5u, 1'000'000u}) {
    b.record(v);
    all.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a, all);
  EXPECT_EQ(a.count(), 7u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 1'000'000u);

  LatencyHistogram empty;
  a.merge(empty);  // merging empty is a no-op
  EXPECT_EQ(a, all);
}

// ---------------------------------------------------------------------------
// Metrics NaN contract (satellite: abort_rate with zero commits).

TEST(MetricsAbortRate, ZeroCommitsIsNaN) {
  Metrics m;
  m.root_aborts = 7;
  EXPECT_TRUE(std::isnan(m.abort_rate()));
  m.commits = 2;
  EXPECT_DOUBLE_EQ(m.abort_rate(), 3.5);
}

TEST(MetricsAbortRate, ExperimentResultZeroCommitsIsNaN) {
  bench::ExperimentResult r;
  r.root_aborts = 4;
  EXPECT_TRUE(std::isnan(r.abort_rate()));
  EXPECT_NE(bench::fmt(r.abort_rate(), 8, 2).find("n/a"), std::string::npos);
  r.commits = 8;
  EXPECT_DOUBLE_EQ(r.abort_rate(), 0.5);
}

// ---------------------------------------------------------------------------
// Chrome trace-event export.

TEST(TraceRecorder, ChromeJsonSchema) {
  TraceRecorder rec;
  rec.span(TraceKind::kTxn, /*node=*/2, /*txn=*/7, /*start=*/1000,
           /*end=*/5000, /*a0=*/3);
  rec.span(TraceKind::kCommit2pc, 2, 7, 2000, 4500, 5, 0);
  rec.instant(TraceKind::kServerRead, /*node=*/1, /*txn=*/7, /*at=*/1500, 0);
  const std::string json = rec.chrome_trace_json();

  // Top-level trace-event envelope.
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\"}"), std::string::npos);
  // Process metadata for both nodes.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"node 1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"node 2\""), std::string::npos);
  // Complete events carry pid=node, tid=txn, microsecond timestamps
  // (1000 ns == 1.000 us) and named args.
  EXPECT_NE(json.find("\"name\":\"txn\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\",\"pid\":2,\"tid\":7"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1.000,\"dur\":4.000"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"attempts\":3}"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"commit_2pc\""), std::string::npos);
  EXPECT_NE(json.find("\"writeset\":5"), std::string::npos);
  // Instant event.
  EXPECT_NE(json.find("\"name\":\"server_read\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Braces balance (cheap well-formedness proxy; Perfetto is the real
  // consumer and is exercised manually per README).
  long depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceRecorder, WriteRoundTrip) {
  TraceRecorder rec;
  rec.span(TraceKind::kReadFetch, 0, 1, 10, 20, 4, 2);
  const std::string path = ::testing::TempDir() + "qrdtm_trace_rt.json";
  ASSERT_TRUE(rec.write_chrome_trace(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), rec.chrome_trace_json());

  TraceRecorder empty_rec;
  EXPECT_TRUE(empty_rec.empty());
  rec.clear();
  EXPECT_TRUE(rec.empty());
}

// ---------------------------------------------------------------------------
// Determinism: same seed => identical histograms; tracing must not perturb
// the simulation.

bench::ExperimentConfig small_config() {
  bench::ExperimentConfig cfg;
  cfg.app = "bank";
  cfg.mode = NestingMode::kClosed;
  cfg.params.read_ratio = 0.2;
  cfg.params.nested_calls = 3;
  cfg.params.num_objects = 16;
  cfg.num_nodes = 5;
  cfg.clients = 4;
  cfg.seed = 11;
  cfg.duration = sim::sec(1);
  return cfg;
}

TEST(TraceDeterminism, SameSeedSameHistograms) {
  bench::ExperimentConfig cfg = small_config();
  bench::ExperimentResult a = bench::run_experiment(cfg);
  bench::ExperimentResult b = bench::run_experiment(cfg);
  ASSERT_GT(a.commits, 0u);
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_TRUE(a.latency == b.latency);
  EXPECT_EQ(a.latency.commit_latency.count(), a.commits);
  EXPECT_GT(a.latency.read_rtt.count(), 0u);
}

TEST(TraceDeterminism, TracingOnDoesNotPerturbTheRun) {
  bench::ExperimentConfig cfg = small_config();
  bench::ExperimentResult off = bench::run_experiment(cfg);

  TraceRecorder rec;
  cfg.trace = &rec;
  bench::ExperimentResult on = bench::run_experiment(cfg);

  // Identical outcomes and identical latency distributions: the recorder
  // only observes.
  EXPECT_EQ(on.commits, off.commits);
  EXPECT_EQ(on.root_aborts, off.root_aborts);
  EXPECT_EQ(on.read_messages, off.read_messages);
  EXPECT_EQ(on.commit_messages, off.commit_messages);
  EXPECT_TRUE(on.latency == off.latency);

  // And the trace itself is substantive: at least one kTxn span per commit
  // counted at the cutoff (the quiesce after the measurement window lets
  // in-flight transactions and the invariant checker commit too), ordered
  // sanely.
  ASSERT_FALSE(rec.empty());
  std::uint64_t txn_spans = 0;
  for (const TraceSpan& s : rec.spans()) {
    EXPECT_LE(s.start, s.end);
    if (s.kind == TraceKind::kTxn) ++txn_spans;
  }
  EXPECT_GE(txn_spans, on.commits);
  EXPECT_FALSE(rec.instants().empty());
}

}  // namespace
}  // namespace qrdtm::core
