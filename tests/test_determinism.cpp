// Determinism golden test: a fixed seed must produce byte-identical
// commit/abort/message counts on every run and across kernel refactors.
//
// The golden values below were recorded from the pre-optimization kernel
// (std::priority_queue of std::function events, per-read data-set rebuild).
// Any hot-path change (event pool, buffer pool, incremental Rqv data-set
// cache) must leave every number untouched: the optimizations may not
// perturb event ordering, validation outcomes, or message counts.
//
// If a test here fails after an intentional *semantic* change (new protocol
// behaviour, different RNG draws), re-record the goldens and explain the
// delta in the PR; if it fails after a perf refactor, the refactor is wrong.
#include <gtest/gtest.h>

#include <cstdio>

#include "bench/harness.h"

namespace qrdtm::bench {
namespace {

struct Golden {
  const char* app;
  core::NestingMode mode;
  std::uint64_t commits;
  std::uint64_t root_aborts;
  std::uint64_t ct_aborts;
  std::uint64_t partial_rollbacks;
  std::uint64_t read_messages;
  std::uint64_t commit_messages;
  // QR-Q only (0 for the per-transaction modes).
  std::uint64_t speculation_rollbacks = 0;
  std::uint64_t batches = 0;
};

ExperimentConfig config_for(const char* app, core::NestingMode mode) {
  ExperimentConfig cfg;
  cfg.app = app;
  cfg.mode = mode;
  cfg.params.read_ratio = 0.2;
  cfg.params.nested_calls = 3;
  cfg.params.num_objects = default_objects(app);
  cfg.num_nodes = 13;
  cfg.clients = 8;
  cfg.seed = 42;
  cfg.duration = sim::sec(5);
  // QR-Q batches only form with several clients per node: co-locate so the
  // goldens pin the interesting (multi-member batch) code path.
  if (mode == core::NestingMode::kQueued) cfg.client_nodes = 2;
  return cfg;
}

// Recorded from the seed kernel (commit 4af34f7) at the configs above,
// re-recorded after the backoff-cap clamp fix (core/backoff.h): waits that
// previously overshot backoff_cap by up to 50 % are now clamped, which
// shifts retry timing (the RNG draw count per backoff is unchanged).
constexpr Golden kGolden[] = {
    {"bank", core::NestingMode::kFlat, 42, 122, 0, 0, 1996, 2303},
    {"bank", core::NestingMode::kClosed, 45, 129, 40, 0, 2154, 1652},
    {"bank", core::NestingMode::kCheckpoint, 59, 57, 0, 54, 1544, 1428},
    {"slist", core::NestingMode::kFlat, 23, 33, 0, 0, 2486, 784},
    {"slist", core::NestingMode::kClosed, 26, 30, 27, 0, 2562, 322},
    {"slist", core::NestingMode::kCheckpoint, 18, 1, 0, 43, 1774, 266},
    // QR-Q rows recorded when the mode landed (batch planner, seeded batch
    // order, batched 2PC): the trailing columns pin the batch round counts.
    {"bank", core::NestingMode::kQueued, 40, 0, 0, 0, 590, 308, 11, 10},
    {"slist", core::NestingMode::kQueued, 20, 0, 0, 0, 640, 126, 4, 5},
};

class DeterminismGolden : public ::testing::TestWithParam<Golden> {};

TEST_P(DeterminismGolden, MatchesGoldenAndRepeats) {
  const Golden& g = GetParam();
  ExperimentConfig cfg = config_for(g.app, g.mode);
  ExperimentResult a = run_experiment(cfg);
  ExperimentResult b = run_experiment(cfg);

  // Print in golden-row form so re-recording is copy-paste.
  std::printf("GOLDEN {\"%s\", core::NestingMode::%s, %llu, %llu, %llu, "
              "%llu, %llu, %llu, %llu, %llu},\n",
              g.app,
              g.mode == core::NestingMode::kFlat         ? "kFlat"
              : g.mode == core::NestingMode::kClosed     ? "kClosed"
              : g.mode == core::NestingMode::kCheckpoint ? "kCheckpoint"
                                                         : "kQueued",
              static_cast<unsigned long long>(a.commits),
              static_cast<unsigned long long>(a.root_aborts),
              static_cast<unsigned long long>(a.ct_aborts),
              static_cast<unsigned long long>(a.partial_rollbacks),
              static_cast<unsigned long long>(a.read_messages),
              static_cast<unsigned long long>(a.commit_messages),
              static_cast<unsigned long long>(a.speculation_rollbacks),
              static_cast<unsigned long long>(a.batches));

  // Same seed => identical counts across two runs in this build.
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.root_aborts, b.root_aborts);
  EXPECT_EQ(a.ct_aborts, b.ct_aborts);
  EXPECT_EQ(a.partial_rollbacks, b.partial_rollbacks);
  EXPECT_EQ(a.read_messages, b.read_messages);
  EXPECT_EQ(a.commit_messages, b.commit_messages);
  EXPECT_EQ(a.speculation_rollbacks, b.speculation_rollbacks);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_TRUE(a.invariants_ok);

  // ... and identical to the checked-in pre-refactor kernel.
  EXPECT_EQ(a.commits, g.commits);
  EXPECT_EQ(a.root_aborts, g.root_aborts);
  EXPECT_EQ(a.ct_aborts, g.ct_aborts);
  EXPECT_EQ(a.partial_rollbacks, g.partial_rollbacks);
  EXPECT_EQ(a.read_messages, g.read_messages);
  EXPECT_EQ(a.commit_messages, g.commit_messages);
  EXPECT_EQ(a.speculation_rollbacks, g.speculation_rollbacks);
  EXPECT_EQ(a.batches, g.batches);
}

INSTANTIATE_TEST_SUITE_P(AllModes, DeterminismGolden,
                         ::testing::ValuesIn(kGolden),
                         [](const auto& info) {
                           std::string name = info.param.app;
                           name += "_";
                           name += core::to_string(info.param.mode);
                           return name;
                         });

}  // namespace
}  // namespace qrdtm::bench
