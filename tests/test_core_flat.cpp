// Integration tests of the flat QR protocol on a simulated cluster.
#include <gtest/gtest.h>

#include "common/serde.h"
#include "core/cluster.h"

namespace qrdtm::core {
namespace {

Bytes enc_i64(std::int64_t v) {
  Writer w;
  w.i64(v);
  return std::move(w).take();
}

std::int64_t dec_i64(const Bytes& b) {
  Reader r(b);
  return r.i64();
}

ClusterConfig small_cfg(NestingMode mode = NestingMode::kFlat) {
  ClusterConfig cfg;
  cfg.num_nodes = 13;
  cfg.runtime.mode = mode;
  cfg.seed = 42;
  return cfg;
}

TEST(QrFlat, SingleTransactionCommitsAndIsVisibleEverywhereViaQuorum) {
  Cluster c(small_cfg());
  ObjectId obj = c.seed_new_object(enc_i64(10));

  c.spawn_client(1, [obj](Txn& t) -> sim::Task<void> {
    std::int64_t v = dec_i64(co_await t.read_for_write(obj));
    t.write(obj, enc_i64(v + 5));
  });
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commits, 1u);
  EXPECT_EQ(c.metrics().root_aborts, 0u);

  // Every later reader, from any node, sees 15 (1-copy equivalence).
  for (net::NodeId n = 0; n < c.num_nodes(); ++n) {
    std::int64_t seen = -1;
    c.spawn_client(n, [obj, &seen](Txn& t) -> sim::Task<void> {
      seen = dec_i64(co_await t.read(obj));
    });
    c.run_to_completion();
    EXPECT_EQ(seen, 15) << "node " << n;
  }
}

TEST(QrFlat, CommitUpdatesOnlyWriteQuorumReplicas) {
  Cluster c(small_cfg());
  ObjectId obj = c.seed_new_object(enc_i64(0));
  c.spawn_client(0, [obj](Txn& t) -> sim::Task<void> {
    (void)co_await t.read_for_write(obj);
    t.write(obj, enc_i64(1));
  });
  c.run_to_completion();

  auto wq = c.quorums().write_quorum(0);
  std::size_t fresh = 0, stale = 0;
  for (net::NodeId n = 0; n < c.num_nodes(); ++n) {
    Version v = c.server(n).store().version_of(obj);
    if (v == 2) {
      ++fresh;
      EXPECT_TRUE(std::find(wq.begin(), wq.end(), n) != wq.end());
    } else {
      EXPECT_EQ(v, 1u);
      ++stale;
    }
  }
  EXPECT_EQ(fresh, wq.size());
  EXPECT_EQ(stale, c.num_nodes() - wq.size());
}

TEST(QrFlat, ConflictingIncrementsAllApply) {
  // N concurrent increments of one counter must serialise to +N despite
  // conflicts (some transactions abort and retry).
  Cluster c(small_cfg());
  ObjectId obj = c.seed_new_object(enc_i64(0));
  constexpr int kClients = 8;
  for (int i = 0; i < kClients; ++i) {
    c.spawn_client(static_cast<net::NodeId>(i), [obj](Txn& t) -> sim::Task<void> {
      std::int64_t v = dec_i64(co_await t.read_for_write(obj));
      t.write(obj, enc_i64(v + 1));
    });
  }
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commits, static_cast<std::uint64_t>(kClients));

  std::int64_t final_value = -1;
  c.spawn_client(5, [obj, &final_value](Txn& t) -> sim::Task<void> {
    final_value = dec_i64(co_await t.read(obj));
  });
  c.run_to_completion();
  EXPECT_EQ(final_value, kClients);
}

TEST(QrFlat, TransfersConserveTotalBalance) {
  Cluster c(small_cfg());
  constexpr int kAccounts = 6;
  constexpr std::int64_t kInitial = 100;
  std::vector<ObjectId> accts;
  for (int i = 0; i < kAccounts; ++i) {
    accts.push_back(c.seed_new_object(enc_i64(kInitial)));
  }
  // 20 transfers moving amount 7 between rotating account pairs.
  for (int i = 0; i < 20; ++i) {
    ObjectId from = accts[i % kAccounts];
    ObjectId to = accts[(i + 3) % kAccounts];
    if (from == to) continue;
    c.spawn_client(static_cast<net::NodeId>(i % c.num_nodes()),
                   [from, to](Txn& t) -> sim::Task<void> {
                     std::int64_t f = dec_i64(co_await t.read_for_write(from));
                     std::int64_t g = dec_i64(co_await t.read_for_write(to));
                     t.write(from, enc_i64(f - 7));
                     t.write(to, enc_i64(g + 7));
                   });
  }
  c.run_to_completion();

  std::int64_t total = 0;
  c.spawn_client(0, [&accts, &total](Txn& t) -> sim::Task<void> {
    for (ObjectId a : accts) total += dec_i64(co_await t.read(a));
  });
  c.run_to_completion();
  EXPECT_EQ(total, kAccounts * kInitial);
}

TEST(QrFlat, ReadOnlyTransactionStillSends2pc) {
  // Flat QR has no Rqv: even read-only transactions validate via commit
  // request (QR-CN removes this; see test_core_cn).
  Cluster c(small_cfg());
  ObjectId obj = c.seed_new_object(enc_i64(1));
  c.spawn_client(0, [obj](Txn& t) -> sim::Task<void> {
    (void)co_await t.read(obj);
  });
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commit_requests, 1u);
  EXPECT_EQ(c.metrics().local_commits, 0u);
}

TEST(QrFlat, CreateMakesObjectVisibleAfterCommit) {
  Cluster c(small_cfg());
  ObjectId created = store::kNullObject;
  c.spawn_client(2, [&created](Txn& t) -> sim::Task<void> {
    created = t.create(enc_i64(77));
    co_return;
  });
  c.run_to_completion();
  ASSERT_NE(created, store::kNullObject);

  std::int64_t seen = 0;
  c.spawn_client(9, [created, &seen](Txn& t) -> sim::Task<void> {
    seen = dec_i64(co_await t.read(created));
  });
  c.run_to_completion();
  EXPECT_EQ(seen, 77);
}

TEST(QrFlat, WriteWithoutAcquireIsRejected) {
  Cluster c(small_cfg());
  ObjectId obj = c.seed_new_object(enc_i64(0));
  bool threw = false;
  c.spawn_client(0, [obj, &threw](Txn& t) -> sim::Task<void> {
    try {
      t.write(obj, enc_i64(1));
    } catch (const InvariantError&) {
      threw = true;
    }
    co_return;
  });
  c.run_to_completion();
  EXPECT_TRUE(threw);
}

TEST(QrFlat, ReadYourOwnWrites) {
  Cluster c(small_cfg());
  ObjectId obj = c.seed_new_object(enc_i64(1));
  std::int64_t reread = 0;
  c.spawn_client(0, [obj, &reread](Txn& t) -> sim::Task<void> {
    (void)co_await t.read_for_write(obj);
    t.write(obj, enc_i64(99));
    reread = dec_i64(co_await t.read(obj));  // local hit on own write-set
  });
  c.run_to_completion();
  EXPECT_EQ(reread, 99);
  EXPECT_EQ(c.metrics().local_read_hits, 1u);
}

TEST(QrFlat, MessageAccountingMatchesQuorumSizes) {
  Cluster c(small_cfg());
  ObjectId obj = c.seed_new_object(enc_i64(0));
  c.spawn_client(0, [obj](Txn& t) -> sim::Task<void> {
    (void)co_await t.read_for_write(obj);
    t.write(obj, enc_i64(1));
  });
  c.run_to_completion();
  auto rq = c.quorums().read_quorum(0);
  auto wq = c.quorums().write_quorum(0);
  EXPECT_EQ(c.metrics().read_messages, rq.size());
  // One commit request + one confirm, each to the whole write quorum.
  EXPECT_EQ(c.metrics().commit_messages, 2 * wq.size());
}

TEST(QrFlat, DeterministicAcrossRuns) {
  auto run = []() {
    Cluster c(small_cfg());
    ObjectId obj = c.seed_new_object(enc_i64(0));
    for (int i = 0; i < 6; ++i) {
      c.spawn_client(static_cast<net::NodeId>(i), [obj](Txn& t) -> sim::Task<void> {
        std::int64_t v = dec_i64(co_await t.read_for_write(obj));
        t.write(obj, enc_i64(v + 1));
      });
    }
    c.run_to_completion();
    return std::tuple{c.metrics().commits, c.metrics().root_aborts,
                      c.metrics().read_messages, c.duration()};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace qrdtm::core
