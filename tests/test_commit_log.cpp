// CommitLog unit tests: record round-trips, torn-tail truncation, replay
// idempotence, the Greengage carry regression at the log level, and the
// cluster-level equivalence of delta recovery (durable log + version-bounded
// pull) with the legacy full pull.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "core/cluster.h"
#include "store/commit_log.h"
#include "store/replica_store.h"

namespace qrdtm::store {
namespace {

Bytes bytes_of(std::initializer_list<std::uint8_t> v) { return Bytes(v); }

TEST(CommitLog, AppendReplayRoundTrip) {
  CommitLog log;
  log.append_apply(1, 1, bytes_of({10}), /*epoch=*/0);
  log.append_apply(2, 1, bytes_of({20}), 0);

  // Committed 2PC: prepare then confirm(commit) -> base+steps installed.
  log.append_prepare(77, {LoggedWrite{1, 1, 1, bytes_of({11})}}, 0);
  log.append_confirm(77, /*commit=*/true, 0);

  // Aborted 2PC: prepare then confirm(abort) -> nothing installed.
  log.append_prepare(88, {LoggedWrite{2, 1, 1, bytes_of({99})}}, 0);
  log.append_confirm(88, /*commit=*/false, 0);

  EXPECT_EQ(log.tail_records(), 6u);
  EXPECT_EQ(log.high_version(), 2u);
  EXPECT_EQ(log.in_flight(), 0u);

  ReplicaStore store;
  const std::size_t applied = log.replay_into(store);
  EXPECT_EQ(applied, 3u);  // two seeds + one committed write
  ASSERT_NE(store.find(1), nullptr);
  EXPECT_EQ(store.find(1)->version, 2u);
  EXPECT_EQ(store.find(1)->data, bytes_of({11}));
  ASSERT_NE(store.find(2), nullptr);
  EXPECT_EQ(store.find(2)->version, 1u);
  EXPECT_EQ(store.find(2)->data, bytes_of({20}));
}

TEST(CommitLog, BatchStepsReplayAtBasePlusSteps) {
  CommitLog log;
  log.append_apply(5, 3, bytes_of({1}), 0);
  // A QR-Q batch entry commits at base + queue depth, not base + 1.
  log.append_prepare(7, {LoggedWrite{5, 3, 4, bytes_of({2})}}, 0);
  log.append_confirm(7, true, 0);

  ReplicaStore store;
  log.replay_into(store);
  EXPECT_EQ(store.version_of(5), 7u);
}

TEST(CommitLog, TornTailDropsOnlyThePartialLastRecord) {
  CommitLog log;
  log.append_apply(1, 1, bytes_of({10}), 0);
  log.append_apply(2, 1, bytes_of({20}), 0);
  log.append_apply(3, 1, bytes_of({30}), 0);

  // A crash mid-flush tears the last record; the length prefix makes the
  // damage detectable and replay must keep everything before it.
  log.truncate_tail_for_test(3);

  ReplicaStore store;
  const std::size_t applied = log.replay_into(store);
  EXPECT_EQ(applied, 2u);
  EXPECT_EQ(store.version_of(1), 1u);
  EXPECT_EQ(store.version_of(2), 1u);
  EXPECT_EQ(store.version_of(3), 0u) << "torn record must not be misparsed";
}

TEST(CommitLog, ReplayIsIdempotent) {
  CommitLog log;
  log.append_apply(1, 1, bytes_of({10}), 0);
  log.append_prepare(5, {LoggedWrite{1, 1, 1, bytes_of({11})}}, 0);
  log.append_confirm(5, true, 0);

  ReplicaStore store;
  log.replay_into(store);
  // Replay goes through ReplicaStore::apply (strictly-newer), so a second
  // pass over the same bytes changes nothing.
  log.replay_into(store);
  EXPECT_EQ(store.num_objects(), 1u);
  EXPECT_EQ(store.version_of(1), 2u);
  EXPECT_EQ(store.find(1)->data, bytes_of({11}));
}

TEST(CommitLog, CutCarriesInFlightPreparesAcrossTheBoundary) {
  // The Greengage checkpoint_dtx_info regression, at the log level: a
  // transaction prepared before the cut and confirmed after it survives
  // replay only because the cut carried the prepare (the confirm record
  // deliberately has no writeset).
  CommitLog log;
  ReplicaStore live;
  live.seed(1, bytes_of({10}), 1);
  log.append_apply(1, 1, bytes_of({10}), 0);
  log.append_prepare(9, {LoggedWrite{1, 1, 1, bytes_of({11})}}, 0);
  EXPECT_EQ(log.in_flight(), 1u);

  log.cut(live, /*epoch=*/0, /*carry_in_flight=*/true);
  EXPECT_EQ(log.tail_records(), 0u);
  log.append_confirm(9, true, 0);

  ReplicaStore store;
  log.replay_into(store);
  EXPECT_EQ(store.version_of(1), 2u);
  EXPECT_EQ(store.find(1)->data, bytes_of({11}));
}

TEST(CommitLog, SkippedCarryLosesThePostCutConfirm) {
  CommitLog log;
  ReplicaStore live;
  live.seed(1, bytes_of({10}), 1);
  log.append_prepare(9, {LoggedWrite{1, 1, 1, bytes_of({11})}}, 0);

  log.cut(live, 0, /*carry_in_flight=*/false);  // the Greengage bug
  log.append_confirm(9, true, 0);

  ReplicaStore store;
  log.replay_into(store);
  EXPECT_EQ(store.version_of(1), 1u)
      << "without the carry the confirm resolves against nothing";
}

TEST(CommitLog, CrossEpochConfirmIsIgnored) {
  // A prepare from incarnation e can only be confirmed in incarnation e:
  // the network drops cross-epoch traffic, so a mismatched pair in the log
  // is a stale record, never a commit.
  CommitLog log;
  log.append_apply(1, 1, bytes_of({10}), 0);
  log.append_prepare(9, {LoggedWrite{1, 1, 1, bytes_of({11})}}, /*epoch=*/1);
  log.append_confirm(9, true, /*epoch=*/2);

  ReplicaStore store;
  log.replay_into(store);
  EXPECT_EQ(store.version_of(1), 1u);
}

TEST(CommitLog, InDoubtPrepareIsDroppedAtReplay) {
  CommitLog log;
  log.append_apply(1, 1, bytes_of({10}), 0);
  log.append_prepare(9, {LoggedWrite{1, 1, 1, bytes_of({11})}}, 0);

  ReplicaStore store;
  log.replay_into(store);
  EXPECT_EQ(store.version_of(1), 1u)
      << "a prepare with no confirm is in-doubt: the delta pull decides";
  EXPECT_FALSE(store.protected_against(1, 0))
      << "replay must not resurrect protections";
}

TEST(CommitLog, CutBoundsTheDurableFootprint) {
  CommitLog log;
  ReplicaStore live;
  for (ObjectId id = 1; id <= 8; ++id) {
    live.seed(id, bytes_of({1}), 1);
    log.append_apply(id, 1, bytes_of({1}), 0);
  }
  const std::size_t before = log.size_bytes();
  log.cut(live, 0);
  // The image replaces the tail; appending the same data again only grows
  // the tail, it does not duplicate the image.
  EXPECT_EQ(log.cuts(), 1u);
  EXPECT_EQ(log.tail_records(), 0u);
  EXPECT_GT(log.size_bytes(), 0u);
  EXPECT_LE(log.size_bytes(), before + 64);
}

}  // namespace
}  // namespace qrdtm::store

namespace qrdtm::core {
namespace {

TxnBody bump_body(ObjectId id) {
  return [id](Txn& t) -> sim::Task<void> {
    Bytes b = co_await t.read_for_write(id);
    b[0] += 1;
    t.write(id, b);
  };
}

sim::Task<void> run_bounded(Cluster* c, net::NodeId node, TxnBody body,
                            bool* committed) {
  *committed = co_await c->runtime(node).run_transaction_bounded(
      std::move(body), 50);
}

struct RecoveredState {
  std::map<ObjectId, std::pair<Version, Bytes>> objects;
  Metrics metrics;
};

// One seeded workload, parameterized only by the durability regime: seed a
// couple dozen objects, commit some writes, kill node 7, commit more writes
// it misses, recover it.  Returns node 7's store plus the run's metrics.
RecoveredState run_recovery_workload(bool durable_log) {
  ClusterConfig cfg;
  cfg.quorum = QuorumKind::kFlatFailureAware;
  cfg.seed = 42;
  cfg.durable_log = durable_log;
  Cluster c(cfg);

  std::vector<ObjectId> objs;
  for (int i = 0; i < 24; ++i) objs.push_back(c.seed_new_object(Bytes{1}));

  // Writes node 7 sees (and, under durable logging, replays after the
  // crash).
  for (int i = 0; i < 6; ++i) {
    bool committed = false;
    c.simulator().spawn(run_bounded(&c, 0, bump_body(objs[i]), &committed));
    c.run_to_completion();
    EXPECT_TRUE(committed);
  }

  c.kill_node(7);

  // Writes node 7 misses: exactly these are the recovery delta.
  for (int i = 0; i < 3; ++i) {
    bool committed = false;
    c.simulator().spawn(run_bounded(&c, 1, bump_body(objs[i]), &committed));
    c.run_to_completion();
    EXPECT_TRUE(committed);
  }

  c.recover_node(7);
  c.run_to_completion();
  EXPECT_FALSE(c.server(7).syncing());
  EXPECT_EQ(c.metrics().node_recoveries, 1u);

  RecoveredState out;
  out.metrics = c.metrics();
  for (ObjectId id : objs) {
    const store::ReplicaEntry* e = c.server(7).store().find(id);
    if (e == nullptr) {  // ASSERT_* needs a void function; fail by hand
      ADD_FAILURE() << "object " << id << " missing after recovery";
      continue;
    }
    out.objects[id] = {e->version, e->data};
  }
  return out;
}

// Acceptance (ISSUE 8): the delta recovery must land node 7 in a store
// byte-identical to what the legacy full pull produces, while transferring
// far fewer objects over the wire.
TEST(CommitLogCluster, DeltaRecoveryMatchesFullPull) {
  const RecoveredState delta = run_recovery_workload(/*durable_log=*/true);
  const RecoveredState full = run_recovery_workload(/*durable_log=*/false);

  // Same recovered bytes: version AND data for every object.
  ASSERT_EQ(delta.objects.size(), full.objects.size());
  for (const auto& [id, vf] : full.objects) {
    const auto it = delta.objects.find(id);
    ASSERT_NE(it, delta.objects.end());
    EXPECT_EQ(it->second.first, vf.first) << "version mismatch on " << id;
    EXPECT_EQ(it->second.second, vf.second) << "data mismatch on " << id;
  }

  // The regimes route their transfer through different counters.
  EXPECT_EQ(delta.metrics.recovery_full_objects, 0u);
  EXPECT_EQ(full.metrics.recovery_delta_objects, 0u);
  EXPECT_GT(delta.metrics.recovery_delta_objects, 0u)
      << "node 7 missed three commits; the delta cannot be empty";
  EXPECT_GT(full.metrics.recovery_full_objects, 0u);

  // The whole point: the version-bounded pull ships a small fraction of
  // the store (3 changed objects out of 24 seeded, per answering peer).
  EXPECT_LT(delta.metrics.recovery_delta_objects * 4,
            full.metrics.recovery_full_objects);

  // Replay did real work before the pull, and the post-sync cut persisted
  // the pulled delta.
  EXPECT_GT(delta.metrics.log_replay_applies, 0u);
  EXPECT_GE(delta.metrics.checkpoint_cuts, 1u);
  EXPECT_EQ(full.metrics.log_replay_applies, 0u);
}

// An equal-version object must not ship at all: recover a node that missed
// nothing and assert the delta is empty (the PR-5 full pull re-sent every
// object here).
TEST(CommitLogCluster, NoMissedCommitsMeansEmptyDelta) {
  ClusterConfig cfg;
  cfg.quorum = QuorumKind::kFlatFailureAware;
  cfg.seed = 43;
  Cluster c(cfg);
  for (int i = 0; i < 16; ++i) c.seed_new_object(Bytes{1});

  c.kill_node(7);
  c.recover_node(7);
  c.run_to_completion();
  EXPECT_FALSE(c.server(7).syncing());
  EXPECT_EQ(c.metrics().recovery_delta_objects, 0u)
      << "replay already restored every seed; peers must ship nothing";
  EXPECT_GT(c.metrics().log_replay_applies, 0u);
}

// Regression: nothing ever cut a checkpoint automatically, so a replica's
// durable tail grew for as long as the workload ran -- footprint
// O(commits), not O(store).  runtime.log_max_tail_bytes (on by default)
// forces a cut on the first append past the bound.
TEST(CommitLogCluster, AutoCutBoundsTailGrowth) {
  struct Footprint {
    std::size_t max_tail = 0;
    std::uint64_t commits = 0;
    std::uint64_t autocuts = 0;
  };
  auto run = [](std::size_t bound) {
    ClusterConfig cfg;
    cfg.num_nodes = 7;
    cfg.quorum = QuorumKind::kMajority;
    cfg.seed = 51;
    cfg.runtime.log_max_tail_bytes = bound;
    Cluster c(cfg);
    std::vector<ObjectId> objs;
    for (int i = 0; i < 4; ++i) {
      objs.push_back(c.seed_new_object(Bytes(32, std::uint8_t{1})));
    }
    for (net::NodeId n : {net::NodeId{0}, net::NodeId{1}, net::NodeId{2}}) {
      c.spawn_loop_client(n, [&objs](Rng& rng) {
        return bump_body(objs[rng.below(objs.size())]);
      });
    }
    c.run_for(sim::sec(5));
    c.run_to_completion();
    Footprint f;
    f.commits = c.metrics().commits;
    f.autocuts = c.metrics().log_autocuts;
    for (std::uint32_t n = 0; n < c.num_nodes(); ++n) {
      f.max_tail = std::max(
          f.max_tail,
          c.server(static_cast<net::NodeId>(n)).commit_log().tail_bytes());
    }
    return f;
  };

  constexpr std::size_t kBound = 4096;
  const Footprint bounded = run(kBound);
  ASSERT_GT(bounded.commits, 50u);
  EXPECT_GT(bounded.autocuts, 0u);
  // The cut fires on the append that crosses the bound, so a quiescent tail
  // sits at most one record past it (plus carried in-flight prepares).
  EXPECT_LE(bounded.max_tail, kBound + 512);

  // Control: the pre-fix behaviour (bound disabled) leaves the same
  // workload's tail far past the bound and never cuts.
  const Footprint unbounded = run(0);
  EXPECT_EQ(unbounded.autocuts, 0u);
  EXPECT_GT(unbounded.max_tail, kBound);
  EXPECT_GT(unbounded.max_tail, bounded.max_tail);
}

}  // namespace
}  // namespace qrdtm::core
