// Node recovery tests: Cluster::recover_node's anti-entropy catch-up,
// quorum re-admission, liveness-epoch message hygiene, and the
// coordinator-liveness lease that un-wedges orphaned 2PC protections.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/chaos.h"
#include "core/cluster.h"
#include "core/history.h"

namespace qrdtm::core {
namespace {

TxnBody bump_body(ObjectId id) {
  return [id](Txn& t) -> sim::Task<void> {
    Bytes b = co_await t.read_for_write(id);
    b[0] += 1;
    t.write(id, b);
  };
}

sim::Task<void> run_bounded(Cluster* c, net::NodeId node, TxnBody body,
                            std::uint32_t attempts, bool* committed) {
  *committed = co_await c->runtime(node).run_transaction_bounded(
      std::move(body), attempts);
}

bool any_protected(Cluster& c, ObjectId obj) {
  for (std::uint32_t n = 0; n < c.num_nodes(); ++n) {
    if (c.server(static_cast<net::NodeId>(n))
            .store()
            .protected_against(obj, 0)) {
      return true;
    }
  }
  return false;
}

std::uint64_t total_lease_breaks(Cluster& c) {
  std::uint64_t total = 0;
  for (std::uint32_t n = 0; n < c.num_nodes(); ++n) {
    total += c.server(static_cast<net::NodeId>(n)).lease_breaks();
  }
  return total;
}

// Acceptance: kill a node, commit a write while it is down, recover it; the
// rejoined replica must serve the latest committed version and the read
// quorum must shrink back to its pre-failure size.
TEST(Recovery, CatchUpServesWritesMadeWhileDown) {
  ClusterConfig cfg;
  cfg.quorum = QuorumKind::kFlatFailureAware;
  cfg.seed = 12;
  Cluster c(cfg);
  const ObjectId obj = c.seed_new_object(Bytes{1});
  const std::size_t rq_before = c.quorums().read_quorum(0).size();
  const std::uint64_t gen0 = c.quorums().generation();

  c.kill_node(7);
  EXPECT_EQ(c.quorums().read_quorum(0).size(), rq_before + 1);

  bool committed = false;
  c.simulator().spawn(run_bounded(&c, 0, bump_body(obj), 50, &committed));
  c.run_to_completion();
  ASSERT_TRUE(committed);
  // The dead node missed the commit: it still holds the seed version.
  EXPECT_EQ(c.server(7).store().version_of(obj), 1u);

  c.recover_node(7);
  EXPECT_TRUE(c.server(7).syncing()) << "catch-up must start in syncing mode";
  c.run_to_completion();

  EXPECT_FALSE(c.server(7).syncing());
  EXPECT_EQ(c.metrics().node_recoveries, 1u);
  const store::ReplicaEntry* e = c.server(7).store().find(obj);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->version, 2u) << "catch-up must install the missed commit";
  EXPECT_EQ(e->data, Bytes{2});
  EXPECT_EQ(c.quorums().read_quorum(0).size(), rq_before)
      << "read quorum must shrink back after re-admission";
  EXPECT_GT(c.quorums().generation(), gen0);

  // The rejoined node now counts toward quorums: a fresh reader (whose
  // round-robin quorum may pick node 7) sees the committed value.
  std::int64_t seen = 0;
  c.spawn_client(3, [&, obj](Txn& t) -> sim::Task<void> {
    seen = (co_await t.read(obj))[0];
  });
  c.run_to_completion();
  EXPECT_EQ(seen, 2);
}

TEST(Recovery, RecoverIsIdempotentAndNoOpOnLiveNodes) {
  ClusterConfig cfg;
  cfg.seed = 19;
  Cluster c(cfg);
  c.seed_new_object(Bytes{1});

  c.recover_node(5);  // alive: nothing to do
  c.run_to_completion();
  EXPECT_EQ(c.metrics().node_recoveries, 0u);
  EXPECT_FALSE(c.server(5).syncing());

  c.kill_node(5);
  c.recover_node(5);
  c.recover_node(5);  // second call: node already alive again
  c.run_to_completion();
  EXPECT_EQ(c.metrics().node_recoveries, 1u);
}

// Tree-root rejoin: with rooted write quorums the root's death makes writes
// impossible; recovery must restore writability and put the root back in
// every write quorum.
TEST(Recovery, TreeRootRejoins) {
  ClusterConfig cfg;
  cfg.seed = 13;
  Cluster c(cfg);
  const ObjectId obj = c.seed_new_object(Bytes{1});

  c.kill_node(0);
  EXPECT_THROW(c.quorums().write_quorum(1), quorum::QuorumUnavailable);

  c.recover_node(0);
  c.run_to_completion();
  EXPECT_EQ(c.metrics().node_recoveries, 1u);
  const std::vector<net::NodeId> wq = c.quorums().write_quorum(1);
  EXPECT_NE(std::find(wq.begin(), wq.end(), 0u), wq.end());

  bool committed = false;
  c.simulator().spawn(run_bounded(&c, 1, bump_body(obj), 50, &committed));
  c.run_to_completion();
  EXPECT_TRUE(committed);
  EXPECT_EQ(c.server(0).store().version_of(obj), 2u);
}

// Liveness epochs: traffic sent to a node's previous incarnation must be
// dropped at delivery (payloads back to the pool), never replayed into the
// restarted node.
TEST(Recovery, PreCrashMessagesAreNotReplayedAfterRevive) {
  ClusterConfig cfg;
  cfg.seed = 14;
  Cluster c(cfg);
  const ObjectId obj = c.seed_new_object(Bytes{1});

  // Put a read request to a read-quorum member in flight, then kill +
  // recover that member before the request arrives (link latency >> the
  // restart): the delivery-time epoch check must discard it.
  const net::NodeId victim = c.quorums().read_quorum(4).front();
  bool threw = false;
  c.spawn_client(4, [&, obj](Txn& t) -> sim::Task<void> {
    try {
      (void)co_await t.read(obj);
    } catch (const quorum::QuorumUnavailable&) {
      threw = true;
    }
  });
  c.simulator().schedule_at(sim::msec(5), [&c, victim] {
    c.kill_node(victim, /*notify_provider=*/false);
    c.recover_node(victim);
  });
  c.run_to_completion();
  (void)threw;  // the read itself may succeed via other quorum members

  EXPECT_GT(c.network().stats().dropped_stale +
                c.network().stats().dropped_dead,
            0u)
      << "in-flight pre-crash traffic must be dropped by the epoch check";
  EXPECT_FALSE(c.server(victim).syncing());
}

// Acceptance: orphaned-protection cleanup.  A coordinator that dies between
// the vote and the confirm leaves its write-set protected on every voter;
// the protection lease must shed it so a later writer commits.  Without a
// durable log the vote is never *prepared*, so the lease may shed it freely
// -- the prepared case must instead run the termination protocol and is
// covered by test_termination.cpp (DESIGN.md §17).
TEST(Recovery, OrphanedProtectionShedByLease) {
  ClusterConfig cfg;
  cfg.seed = 15;
  cfg.protection_lease = sim::msec(300);
  cfg.durable_log = false;
  Cluster c(cfg);
  const ObjectId obj = c.seed_new_object(Bytes{1});

  // Doomed coordinator on node 4: run until its commit-request votes have
  // protected the object somewhere, then fail-stop it -- its one-way
  // confirms can never be sent.
  bool doomed_committed = false;
  c.simulator().spawn(
      run_bounded(&c, 4, bump_body(obj), 1, &doomed_committed));
  // advance_to only moves the clock when events fire before the deadline,
  // so the poll must track an absolute deadline of its own.
  bool saw_protected = false;
  sim::Tick poll_at = 0;
  for (int i = 0; i < 4000 && !saw_protected; ++i) {
    poll_at += sim::usec(500);
    c.simulator().advance_to(poll_at);
    saw_protected = any_protected(c, obj);
  }
  ASSERT_TRUE(saw_protected) << "test setup: votes never protected the object";
  c.kill_node(4);

  // A second writer must get through once the lease expires.
  bool committed = false;
  c.simulator().spawn(run_bounded(&c, 0, bump_body(obj), 50, &committed));
  c.run_to_completion();

  EXPECT_TRUE(committed) << "object stayed wedged behind an orphaned 2PC "
                            "protection";
  EXPECT_GT(total_lease_breaks(c), 0u);
  // Shedding is lazy (checked on access), so replicas outside the second
  // writer's quorum may still carry the stale flag; what matters is that
  // the new value committed and is readable everywhere it was written.
  std::int64_t seen = 0;
  c.spawn_client(2, [&, obj](Txn& t) -> sim::Task<void> {
    seen = (co_await t.read(obj))[0];
  });
  c.run_to_completion();
  EXPECT_EQ(seen, 2);
}

// End-to-end churn: kill two replicas mid-workload (one internal tree node,
// one leaf), restart them, and require (a) a serializable history, (b) the
// recovered replicas caught up, and (c) the read quorum back at its
// pre-failure size.
TEST(Recovery, EndToEndChurnStaysSerializable) {
  ClusterConfig cfg;
  cfg.num_nodes = 13;
  cfg.seed = 11;
  Cluster c(cfg);
  HistoryRecorder rec;
  c.set_history_recorder(&rec);
  std::vector<ObjectId> objs;
  for (int i = 0; i < 8; ++i) objs.push_back(c.seed_new_object(Bytes{1}));
  const std::size_t rq_before = c.quorums().read_quorum(0).size();

  // Clients on nodes that never die.
  for (net::NodeId n : {net::NodeId{0}, net::NodeId{2}, net::NodeId{3}}) {
    c.spawn_loop_client(n, [&objs](Rng& rng) {
      const ObjectId id = objs[rng.below(objs.size())];
      return bump_body(id);
    });
  }
  c.simulator().schedule_at(sim::sec(2), [&c] { c.kill_node(1); });
  c.simulator().schedule_at(sim::msec(2500), [&c] { c.kill_node(10); });
  c.simulator().schedule_at(sim::sec(4), [&c] { c.recover_node(1); });
  c.simulator().schedule_at(sim::msec(4500), [&c] { c.recover_node(10); });
  c.run_for(sim::sec(8));
  c.run_to_completion();

  EXPECT_EQ(c.metrics().node_recoveries, 2u);
  EXPECT_FALSE(c.server(1).syncing());
  EXPECT_FALSE(c.server(10).syncing());
  EXPECT_EQ(c.quorums().read_quorum(0).size(), rq_before);
  EXPECT_GT(c.metrics().commits, 20u);

  const CheckResult r = check_history(rec, CheckLevel::kSerializable);
  EXPECT_TRUE(r.ok) << r.report;
}

// Regression: exhausting every delta-pull attempt used to end the recovery
// coroutine *silently* -- no metric, no further attempts, the node syncing
// (and excluded from quorums) forever.  A churn schedule that starved the
// pull window therefore wedged the node permanently.  Now a starved budget
// counts metrics().recovery_failures and schedules another bounded round,
// so the node still rejoins once the network heals.
TEST(Recovery, StarvedCatchUpCountsFailuresAndRetriesAfterHeal) {
  ClusterConfig cfg;
  cfg.seed = 29;
  // Keep one 32-attempt round short: fast links plus a tight (but still
  // RTT-covering) timeout make a round ~1.3 s simulated.
  cfg.link_latency = sim::msec(1);
  cfg.link_jitter = sim::msec(1);
  cfg.runtime.rpc_timeout = sim::msec(20);
  Cluster c(cfg);
  const ObjectId obj = c.seed_new_object(Bytes{1});

  c.kill_node(7);
  // Isolate node 7: every pull request crosses the cut and is dropped, so
  // all kAttempts delta pulls time out.
  c.network().set_partition({net::NodeId{7}});
  c.recover_node(7);
  // One round = 32 attempts x (timeout + backoff) ~= 1.3 s simulated.
  c.advance_for(sim::sec(2));
  EXPECT_GE(c.metrics().recovery_failures, 1u)
      << "a starved attempt budget must be counted, not silently dropped";
  EXPECT_TRUE(c.server(7).syncing());
  EXPECT_EQ(c.metrics().node_recoveries, 0u);

  // Heal the partition: the scheduled re-attempt round must complete the
  // pull and re-admit the node.  Pre-fix the coroutine was already gone
  // here and the node stayed syncing no matter how long the run continued.
  c.network().clear_partition();
  c.run_to_completion();
  EXPECT_FALSE(c.server(7).syncing());
  EXPECT_EQ(c.metrics().node_recoveries, 1u);
  EXPECT_EQ(c.server(7).store().version_of(obj), 1u);
}

// The same churn driven through a FaultSchedule armed on the Cluster: the
// schedule's recover events must run the full catch-up path.
TEST(Recovery, ArmedChurnScheduleRecoversAndStaysSerializable) {
  ClusterConfig cfg;
  cfg.num_nodes = 13;
  cfg.seed = 23;
  Cluster c(cfg);
  HistoryRecorder rec;
  c.set_history_recorder(&rec);
  std::vector<ObjectId> objs;
  for (int i = 0; i < 6; ++i) objs.push_back(c.seed_new_object(Bytes{1}));

  ChaosOptions opts;
  opts.horizon = sim::sec(6);
  opts.max_kills = 2;
  for (net::NodeId n = 4; n < 13; ++n) opts.kill_candidates.push_back(n);
  opts.recover_after = sim::msec(800);
  opts.recover_jitter = sim::msec(200);
  const FaultSchedule sched = FaultSchedule::generate(77, 13, opts);
  ASSERT_EQ(sched.recovers.size(), sched.kills.size());
  sched.arm(c, &rec);

  for (net::NodeId n : {net::NodeId{0}, net::NodeId{2}}) {
    c.spawn_loop_client(n, [&objs](Rng& rng) {
      return bump_body(objs[rng.below(objs.size())]);
    });
  }
  c.run_for(sim::sec(8));
  c.run_to_completion();

  EXPECT_EQ(c.metrics().node_recoveries, sched.recovers.size());
  for (const auto& r : sched.recovers) {
    EXPECT_FALSE(c.server(r.node).syncing());
    EXPECT_TRUE(c.network().alive(r.node));
  }
  const CheckResult cr = check_history(rec, CheckLevel::kSerializable);
  EXPECT_TRUE(cr.ok) << cr.report;
}

}  // namespace
}  // namespace qrdtm::core
