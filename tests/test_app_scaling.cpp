// Mechanism tests behind Fig. 7's contention claims: growing the key
// population lengthens Hashmap chains and SkipList search paths (bigger
// read-sets -> more overlap -> more contention), while Bank accesses simply
// spread out.
#include <gtest/gtest.h>

#include "apps/bank.h"
#include "apps/hashmap.h"
#include "apps/skiplist.h"

namespace qrdtm::apps {
namespace {

using core::Cluster;
using core::ClusterConfig;

ClusterConfig cfg() {
  ClusterConfig c;
  c.num_nodes = 13;
  c.seed = 77;
  return c;
}

/// Remote reads consumed by `ops` single-op transactions on a freshly
/// seeded app of the given population.
template <class AppT>
std::uint64_t reads_for_population(std::uint32_t population, int ops) {
  Cluster c(cfg());
  AppT app;
  WorkloadParams params;
  params.num_objects = population;
  Rng setup(5);
  app.setup(c, params, setup);
  Rng rng(9);
  for (int i = 0; i < ops; ++i) {
    std::uint64_t key = rng.below(app.key_space()) + 1;
    c.spawn_client(0, app.make_op(AppT::OpKind::kGet, key, 0));
    c.run_to_completion();
  }
  return c.metrics().remote_reads;
}

TEST(AppScaling, HashmapChainsGrowWithPopulation) {
  std::uint64_t small = reads_for_population<HashmapApp>(16, 30);
  std::uint64_t large = reads_for_population<HashmapApp>(160, 30);
  // 8 buckets: ~2-entry chains vs ~20-entry chains.
  EXPECT_GT(large, small * 3);
}

TEST(AppScaling, SkipListPathsGrowWithPopulation) {
  std::uint64_t small = reads_for_population<SkipListApp>(16, 30);
  std::uint64_t large = reads_for_population<SkipListApp>(256, 30);
  // Skip lists are logarithmic: growth is real but modest.
  EXPECT_GT(large, small + 30);
}

TEST(AppScaling, BankReadsAreConstantPerOp) {
  // Bank transfers always touch exactly two accounts regardless of the
  // population: remote reads per op stay flat (this is why Fig. 7 shows
  // bank contention *dropping* with more objects: same footprint, spread
  // wider).
  auto reads_for = [&](std::uint32_t accounts) {
    Cluster c(cfg());
    BankApp app;
    WorkloadParams params;
    params.num_objects = accounts;
    params.nested_calls = 1;
    params.read_ratio = 0.0;
    Rng setup(5);
    app.setup(c, params, setup);
    Rng rng(9);
    for (int i = 0; i < 20; ++i) {
      c.spawn_client(0, app.make_txn(params, rng));
      c.run_to_completion();
    }
    return c.metrics().remote_reads;
  };
  std::uint64_t small = reads_for(8);
  std::uint64_t large = reads_for(256);
  EXPECT_EQ(small, large);
}

}  // namespace
}  // namespace qrdtm::apps
