// Cooperative 2PC termination tests (DESIGN.md §17): fault-point steered
// coordinator crashes in the vote->confirm window, in-doubt resolution by
// peer query, presumed-abort after a coordinator restart, decision-record
// re-drive, and the prepared-vs-protected lease distinction.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/faultpoint.h"
#include "core/history.h"
#include "store/replica_store.h"

namespace qrdtm::core {
namespace {

TxnBody bump_body(ObjectId id) {
  return [id](Txn& t) -> sim::Task<void> {
    Bytes b = co_await t.read_for_write(id);
    b[0] += 1;
    t.write(id, b);
  };
}

sim::Task<void> run_bounded(Cluster* c, net::NodeId node, TxnBody body,
                            std::uint32_t attempts, bool* committed) {
  *committed = co_await c->runtime(node).run_transaction_bounded(
      std::move(body), attempts);
}

std::size_t replicas_at_version(Cluster& c, ObjectId obj, Version v) {
  std::size_t n = 0;
  for (std::uint32_t i = 0; i < c.num_nodes(); ++i) {
    const store::ReplicaEntry* e =
        c.server(static_cast<net::NodeId>(i)).store().find(obj);
    if (e != nullptr && e->version == v) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Satellite regression: the lease may shed a merely-protected entry but must
// refuse a *prepared* one (durable yes-vote) -- only a confirm or a
// termination decision releases those.

TEST(Termination, LeaseShedsProtectedButRefusesPrepared) {
  store::ReplicaStore s;
  s.seed(1, Bytes{1});
  s.seed(2, Bytes{1});

  s.protect(1, 77, /*now=*/1000);
  s.protect(2, 77, /*now=*/1000);
  s.mark_prepared(2, 77);

  const std::uint64_t lease = 500;
  const std::uint64_t later = 2000;  // both leases long expired
  EXPECT_TRUE(s.lease_expired(1, later, lease));
  EXPECT_TRUE(s.lease_expired(2, later, lease));

  EXPECT_TRUE(s.expire_protection(1, later, lease))
      << "a plain protection past its lease must shed";
  EXPECT_FALSE(s.find(1)->is_protected);

  EXPECT_FALSE(s.expire_protection(2, later, lease))
      << "a prepared protection must never shed on a timer";
  EXPECT_TRUE(s.find(2)->is_protected);
  EXPECT_TRUE(s.prepared(2));
  EXPECT_TRUE(s.holds_protection(2, 77));
  EXPECT_FALSE(s.holds_protection(2, 78));

  // A confirm-style release clears both flags; the entry sheds normally
  // afterwards if re-protected without a prepare.
  s.unprotect(2, 77);
  EXPECT_FALSE(s.prepared(2));
  s.protect(2, 99, /*now=*/3000);
  EXPECT_TRUE(s.expire_protection(2, 4000, lease));
}

// ---------------------------------------------------------------------------
// Race (a): the coordinator dies BEFORE logging a decision record.  No
// confirm can ever have left it, so once it restarts (newer liveness epoch,
// empty decision log) a full termination round presumed-aborts the orphan
// and a later writer gets through.

TEST(Termination, CoordinatorDeadBeforeDecisionIsPresumedAborted) {
  ClusterConfig cfg;
  cfg.seed = 21;
  cfg.protection_lease = sim::msec(300);
  Cluster c(cfg);
  HistoryRecorder rec;
  c.set_history_recorder(&rec);
  const ObjectId obj = c.seed_new_object(Bytes{1});

  c.fault_points().arm(fp::kDecisionBeforeLog, FaultAction::kPanic, 4);
  bool doomed = false;
  c.simulator().spawn(run_bounded(&c, 4, bump_body(obj), 1, &doomed));
  c.run_to_completion();
  EXPECT_FALSE(doomed) << "no decision was logged: the commit was never acked";
  ASSERT_FALSE(c.network().alive(4));
  EXPECT_GT(c.fault_points().hits(fp::kDecisionBeforeLog), 0u);

  // The write quorum's voters hold prepared protections for the orphan.
  // Restart the coordinator: its epoch moves past the vote-time epoch and
  // its decision log stays empty, which is exactly the presumed-abort proof.
  c.recover_node(4);
  c.run_to_completion();

  bool committed = false;
  c.simulator().spawn(run_bounded(&c, 0, bump_body(obj), 50, &committed));
  c.run_to_completion();

  EXPECT_TRUE(committed) << "presumed-abort must free the orphaned write-set";
  EXPECT_GT(c.metrics().indoubt_resolved_abort, 0u);
  EXPECT_GT(c.metrics().termination_rounds, 0u);
  EXPECT_EQ(c.metrics().indoubt_resolved_commit, 0u);

  const CheckResult res = check_history(rec, CheckLevel::kSerializable);
  EXPECT_TRUE(res.ok) << res.report;

  std::int64_t seen = 0;
  c.spawn_client(2, [&, obj](Txn& t) -> sim::Task<void> {
    seen = (co_await t.read(obj))[0];
  });
  c.run_to_completion();
  EXPECT_EQ(seen, 2) << "only the second writer's bump may survive";
}

// ---------------------------------------------------------------------------
// Race (b): the coordinator dies AFTER the decision record but before any
// confirm leaves.  The client ack stands (decision durable); the restarted
// coordinator must re-drive the logged confirm so every voter applies.

TEST(Termination, AckedCommitSurvivesCrashBeforeAnyConfirm) {
  ClusterConfig cfg;
  cfg.seed = 22;
  cfg.protection_lease = sim::msec(300);
  Cluster c(cfg);
  HistoryRecorder rec;
  c.set_history_recorder(&rec);
  const ObjectId obj = c.seed_new_object(Bytes{1});

  // delay_fires=0: panic before the FIRST confirm send -- the decision is
  // durable, zero confirms are delivered (a dead sender's sends are cut).
  c.fault_points().arm(fp::kConfirmPartial, FaultAction::kPanic, 4);
  bool doomed = false;
  c.simulator().spawn(run_bounded(&c, 4, bump_body(obj), 1, &doomed));
  c.run_to_completion();
  EXPECT_TRUE(doomed) << "the decision was durable: this commit is acked";
  ASSERT_FALSE(c.network().alive(4));
  EXPECT_EQ(replicas_at_version(c, obj, 2), 0u)
      << "no confirm may have been delivered before the crash";

  // Coordinator failover: replay finds the open decision record and
  // re-drives the confirm broadcast; receivers dedupe, voters apply.
  c.recover_node(4);
  c.run_to_completion();

  EXPECT_GT(replicas_at_version(c, obj, 2), c.num_nodes() / 2)
      << "the re-driven confirm must reach the whole write quorum";
  const CheckResult res = check_history(rec, CheckLevel::kSerializable);
  EXPECT_TRUE(res.ok) << res.report;

  std::int64_t seen = 0;
  c.spawn_client(2, [&, obj](Txn& t) -> sim::Task<void> {
    seen = (co_await t.read(obj))[0];
  });
  c.run_to_completion();
  EXPECT_EQ(seen, 2) << "the acked commit must be readable after failover";
}

// ---------------------------------------------------------------------------
// Race (c): the coordinator dies after confirms reached a strict subset of
// the write quorum and NEVER comes back.  The applied subset is living proof
// of the commit decision; a termination round started by a later conflicting
// writer must propagate it to the prepared holdouts (indoubt_resolved_commit
// > 0), and the acked commit must survive into the serializable order.

TEST(Termination, PartialConfirmResolvedCommitByPeerQuery) {
  ClusterConfig cfg;
  cfg.seed = 23;
  cfg.protection_lease = sim::msec(300);
  Cluster c(cfg);
  HistoryRecorder rec;
  c.set_history_recorder(&rec);
  const ObjectId obj = c.seed_new_object(Bytes{1});

  // delay_fires=1: the first confirm send goes through, the panic lands on
  // the second -- exactly one member applies, the rest stay prepared.
  c.fault_points().arm(fp::kConfirmPartial, FaultAction::kPanic, 4, 1, 1);
  bool doomed = false;
  c.simulator().spawn(run_bounded(&c, 4, bump_body(obj), 1, &doomed));
  c.run_to_completion();
  EXPECT_TRUE(doomed) << "the decision was durable: this commit is acked";
  ASSERT_FALSE(c.network().alive(4));
  ASSERT_EQ(replicas_at_version(c, obj, 2), 1u)
      << "exactly one confirm may land before the crash";

  // The coordinator stays dead.  A later writer collides with the prepared
  // protections; after the lease expires its voters run the termination
  // protocol, find the applied peer, and resolve commit.
  bool committed = false;
  c.simulator().spawn(run_bounded(&c, 0, bump_body(obj), 50, &committed));
  c.run_to_completion();

  EXPECT_TRUE(committed);
  EXPECT_GT(c.metrics().indoubt_resolved_commit, 0u)
      << "the holdouts must learn the commit from the applied peer";
  EXPECT_GT(c.metrics().termination_rounds, 0u);
  EXPECT_GT(c.metrics().confirm_duplicates, 0u)
      << "the resolution retransmit hits the applied peer, which dedupes";
  EXPECT_EQ(c.metrics().indoubt_resolved_abort, 0u)
      << "nothing may presume abort while the decision is discoverable";

  const CheckResult res = check_history(rec, CheckLevel::kSerializable);
  EXPECT_TRUE(res.ok) << res.report;

  // Both bumps survive: the acked in-doubt commit AND the second writer.
  std::int64_t seen = 0;
  c.spawn_client(2, [&, obj](Txn& t) -> sim::Task<void> {
    seen = (co_await t.read(obj))[0];
  });
  c.run_to_completion();
  EXPECT_EQ(seen, 3) << "the acked partial-confirm commit must not be lost";
}

// ---------------------------------------------------------------------------
// Satellite regression: duplicate confirm delivery (at-least-once) is
// counted and dropped, never double-applied.  A recovered coordinator whose
// broadcast partially landed re-drives the SAME confirm to every member;
// the member that already applied it must dedupe on (txn, epoch).

TEST(Termination, RedrivenConfirmIsDedupedNotReapplied) {
  ClusterConfig cfg;
  cfg.seed = 24;
  cfg.protection_lease = sim::msec(300);
  Cluster c(cfg);
  const ObjectId obj = c.seed_new_object(Bytes{1});

  c.fault_points().arm(fp::kConfirmPartial, FaultAction::kPanic, 4, 1, 1);
  bool doomed = false;
  c.simulator().spawn(run_bounded(&c, 4, bump_body(obj), 1, &doomed));
  c.run_to_completion();
  ASSERT_TRUE(doomed);
  ASSERT_EQ(replicas_at_version(c, obj, 2), 1u);

  // Failover re-drive: every member gets the confirm again, including the
  // one that already applied it.
  c.recover_node(4);
  c.run_to_completion();

  EXPECT_GT(replicas_at_version(c, obj, 2), c.num_nodes() / 2);
  EXPECT_GT(c.metrics().confirm_duplicates, 0u)
      << "the already-applied member must count the repeat, not re-apply";
  std::uint64_t dup_servers = 0;
  for (std::uint32_t n = 0; n < c.num_nodes(); ++n) {
    dup_servers += c.server(static_cast<net::NodeId>(n)).confirm_duplicates();
  }
  EXPECT_EQ(dup_servers, c.metrics().confirm_duplicates)
      << "per-server counters must roll up to the cluster metric";

  std::int64_t seen = 0;
  c.spawn_client(2, [&, obj](Txn& t) -> sim::Task<void> {
    seen = (co_await t.read(obj))[0];
  });
  c.run_to_completion();
  EXPECT_EQ(seen, 2) << "dedupe must not double-apply the increment";
}

}  // namespace
}  // namespace qrdtm::core
