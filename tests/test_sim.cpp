// Unit tests for the coroutine DES kernel (sim/).
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "alloc_counter.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace qrdtm::sim {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator s;
  s.schedule_at(10, [&s] {
    EXPECT_THROW(s.schedule_at(5, [] {}), qrdtm::InvariantError);
  });
  s.run();
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int ran = 0;
  s.schedule_at(10, [&] { ++ran; });
  s.schedule_at(20, [&] { ++ran; });
  s.schedule_at(30, [&] { ++ran; });
  s.run_until(20);
  EXPECT_EQ(ran, 2);
  EXPECT_TRUE(s.stopping());
}

TEST(Task, DelayAdvancesSimulatedTime) {
  Simulator s;
  Tick finished = 0;
  s.spawn([](Simulator* sim, Tick* out) -> Task<void> {
    co_await sim->delay(msec(5));
    co_await sim->delay(msec(7));
    *out = sim->now();
  }(&s, &finished));
  s.run();
  EXPECT_EQ(finished, msec(12));
}

Task<int> add_later(Simulator& s, int a, int b) {
  co_await s.delay(100);
  co_return a + b;
}

TEST(Task, ValuePropagatesThroughCoAwait) {
  Simulator s;
  int result = 0;
  s.spawn([](Simulator* sim, int* out) -> Task<void> {
    *out = co_await add_later(*sim, 2, 3);
  }(&s, &result));
  s.run();
  EXPECT_EQ(result, 5);
}

Task<int> deep(Simulator& s, int depth) {
  if (depth == 0) {
    co_await s.delay(1);
    co_return 0;
  }
  int below = co_await deep(s, depth - 1);
  co_return below + 1;
}

TEST(Task, DeepAwaitChainsDontOverflowStack) {
  Simulator s;
  int result = -1;
  s.spawn([](Simulator* sim, int* out) -> Task<void> {
    *out = co_await deep(*sim, 20000);
  }(&s, &result));
  s.run();
  EXPECT_EQ(result, 20000);
}

struct Boom {
  std::string what;
};

Task<void> throws_after_delay(Simulator& s) {
  co_await s.delay(10);
  throw Boom{"bang"};
}

TEST(Task, ExceptionPropagatesToAwaiter) {
  Simulator s;
  std::string caught;
  s.spawn([](Simulator* sim, std::string* out) -> Task<void> {
    try {
      co_await throws_after_delay(*sim);
    } catch (const Boom& b) {
      *out = b.what;
    }
  }(&s, &caught));
  s.run();
  EXPECT_EQ(caught, "bang");
}

TEST(Task, UncaughtExceptionSurfacesFromRun) {
  Simulator s;
  s.spawn(throws_after_delay(s));
  EXPECT_THROW(s.run(), Boom);
}

TEST(Future, AwaitBeforeFulfil) {
  Simulator s;
  Promise<int> p(s);
  int got = 0;
  s.spawn([](Promise<int> pr, int* out) -> Task<void> {
    *out = co_await pr.future();
  }(p, &got));
  s.schedule_at(50, [p]() mutable { p.set(77); });
  s.run();
  EXPECT_EQ(got, 77);
}

TEST(Future, FulfilBeforeAwait) {
  Simulator s;
  Promise<int> p(s);
  p.set(5);
  int got = 0;
  s.spawn([](Promise<int> pr, int* out) -> Task<void> {
    *out = co_await pr.future();
  }(p, &got));
  s.run();
  EXPECT_EQ(got, 5);
}

TEST(Future, TrySetOnlyFirstWins) {
  Simulator s;
  Promise<int> p(s);
  EXPECT_TRUE(p.try_set(1));
  EXPECT_FALSE(p.try_set(2));
  int got = 0;
  s.spawn([](Promise<int> pr, int* out) -> Task<void> {
    *out = co_await pr.future();
  }(p, &got));
  s.run();
  EXPECT_EQ(got, 1);
}

TEST(Future, DoubleSetThrows) {
  Simulator s;
  Promise<int> p(s);
  p.set(1);
  EXPECT_THROW(p.set(2), qrdtm::InvariantError);
}

TEST(Future, ConsumedTwiceThrows) {
  Simulator s;
  Promise<int> p(s);
  p.set(1);
  s.spawn([](Promise<int> pr) -> Task<void> {
    auto fut = pr.future();
    (void)co_await fut;
    bool threw = false;
    try {
      (void)co_await fut;  // one-shot: second consume must be rejected
    } catch (const qrdtm::InvariantError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }(p));
  s.run();
}

TEST(Simulator, AdvanceToDoesNotStop) {
  Simulator s;
  s.schedule_at(10, [] {});
  s.advance_to(20);
  EXPECT_FALSE(s.stopping());
  s.request_stop();
  EXPECT_TRUE(s.stopping());
}

TEST(Mailbox, DeliversInFifoOrder) {
  Simulator s;
  Mailbox<int> mb(s);
  std::vector<int> got;
  s.spawn([](Mailbox<int>* m, std::vector<int>* out) -> Task<void> {
    for (int i = 0; i < 3; ++i) out->push_back(co_await m->recv());
  }(&mb, &got));
  s.schedule_at(10, [&] { mb.push(1); });
  s.schedule_at(10, [&] { mb.push(2); });
  s.schedule_at(20, [&] { mb.push(3); });
  s.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(WaitGroup, WaitsForAll) {
  Simulator s;
  WaitGroup wg(s, 3);
  Tick when = 0;
  s.spawn([](Simulator* sim, WaitGroup* w, Tick* out) -> Task<void> {
    co_await w->wait();
    *out = sim->now();
  }(&s, &wg, &when));
  s.schedule_at(10, [&] { wg.done(); });
  s.schedule_at(20, [&] { wg.done(); });
  s.schedule_at(30, [&] { wg.done(); });
  s.run();
  EXPECT_EQ(when, 30u);
}

TEST(WaitGroup, ZeroCountIsImmediatelyReady) {
  Simulator s;
  WaitGroup wg(s, 0);
  bool done = false;
  s.spawn([](WaitGroup* w, bool* out) -> Task<void> {
    co_await w->wait();
    *out = true;
  }(&wg, &done));
  s.run();
  EXPECT_TRUE(done);
}

// Determinism property: interleaving of many delayed processes is identical
// across runs.
TEST(SimProperty, DeterministicInterleaving) {
  auto trace = []() {
    Simulator s;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      s.spawn([](Simulator* sim, std::vector<int>* out, int id) -> Task<void> {
        co_await sim->delay((id * 37) % 11);
        co_await sim->delay((id * 13) % 7);
        out->push_back(id);
      }(&s, &order, i));
    }
    s.run();
    return order;
  };
  auto a = trace();
  auto b = trace();
  EXPECT_EQ(a, b);
}

// --- allocation regression -------------------------------------------------
// The event kernel recycles event slots and heap storage; once warmed up, a
// schedule/fire cycle and a coroutine delay/resume cycle must not touch the
// allocator at all.

TEST(AllocRegression, SteadyStateScheduleCycleIsAllocationFree) {
  if (!qrdtm::testing::alloc_hook_active()) {
    GTEST_SKIP() << "allocation counting unavailable (sanitizer build intercepts\n operator new, or replacement not linked in)";
  }
  Simulator s;
  std::uint64_t after_warm = 0;
  std::uint64_t after_measure = 0;
  struct Chain {
    Simulator* s;
    int left;
    std::uint64_t* warm;
    std::uint64_t* measure;
    void operator()() {
      if (left == 4096) *warm = qrdtm::testing::alloc_count();
      if (left == 0) {
        *measure = qrdtm::testing::alloc_count();
        return;
      }
      --left;
      s->schedule_after(1, *this);
    }
  };
  s.schedule_after(1, Chain{&s, 8192, &after_warm, &after_measure});
  s.run();
  ASSERT_NE(after_measure, 0u);
  EXPECT_EQ(after_measure, after_warm);
}

TEST(AllocRegression, SteadyStateDelayResumeIsAllocationFree) {
  if (!qrdtm::testing::alloc_hook_active()) {
    GTEST_SKIP() << "allocation counting unavailable (sanitizer build intercepts\n operator new, or replacement not linked in)";
  }
  Simulator s;
  std::uint64_t after_warm = 0;
  std::uint64_t after_measure = 0;
  s.spawn([](Simulator* sim, std::uint64_t* warm,
             std::uint64_t* measure) -> Task<void> {
    for (int i = 0; i < 4096; ++i) co_await sim->delay(1);
    *warm = qrdtm::testing::alloc_count();
    for (int i = 0; i < 4096; ++i) co_await sim->delay(1);
    *measure = qrdtm::testing::alloc_count();
  }(&s, &after_warm, &after_measure));
  s.run();
  ASSERT_NE(after_measure, 0u);
  EXPECT_EQ(after_measure, after_warm);
}

}  // namespace
}  // namespace qrdtm::sim
