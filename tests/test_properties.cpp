// System-level property tests:
//   * determinism: identical seeds give identical traces for every mode,
//   * opacity: every committed read-only transaction observed a consistent
//     snapshot (paper §V: transactions observing inconsistent state never
//     commit),
//   * serialisability: concurrent read-modify-write histories are
//     equivalent to some serial order (counter totals).
#include <gtest/gtest.h>

#include <tuple>

#include "apps/bank.h"
#include "common/serde.h"
#include "core/cluster.h"

namespace qrdtm::core {
namespace {

Bytes enc_i64(std::int64_t v) {
  Writer w;
  w.i64(v);
  return std::move(w).take();
}

std::int64_t dec_i64(const Bytes& b) {
  Reader r(b);
  return r.i64();
}

class ModeProperty : public ::testing::TestWithParam<NestingMode> {};

TEST_P(ModeProperty, IdenticalSeedsGiveIdenticalRuns) {
  auto run = [&](std::uint64_t seed) {
    ClusterConfig cfg;
    cfg.num_nodes = 13;
    cfg.seed = seed;
    cfg.runtime.mode = GetParam();
    Cluster c(cfg);
    apps::BankApp bank;
    apps::WorkloadParams params;
    params.num_objects = 16;
    params.read_ratio = 0.3;
    Rng setup_rng(seed);
    bank.setup(c, params, setup_rng);
    for (net::NodeId n = 0; n < 6; ++n) {
      c.spawn_loop_client(n,
                          [&](Rng& rng) { return bank.make_txn(params, rng); });
    }
    c.run_for(sim::sec(20));
    const Metrics& m = c.metrics();
    return std::tuple{m.commits,         m.root_aborts,   m.ct_aborts,
                      m.partial_rollbacks, m.read_messages, m.commit_messages,
                      c.simulator().events_executed()};
  };
  EXPECT_EQ(run(17), run(17));
  EXPECT_NE(std::get<0>(run(17)), 0u);
  // Different seeds should (virtually always) differ somewhere.
  EXPECT_NE(run(17), run(18));
}

TEST_P(ModeProperty, CommittedReadOnlySnapshotsAreConsistent) {
  // Writers continuously move money between accounts while auditors read
  // every account in one transaction.  Opacity demands that every
  // *committed* audit saw the exact conserved total.
  ClusterConfig cfg;
  cfg.num_nodes = 13;
  cfg.seed = 23;
  cfg.runtime.mode = GetParam();
  Cluster c(cfg);

  constexpr int kAccounts = 8;
  constexpr std::int64_t kInitial = 100;
  std::vector<ObjectId> accts;
  for (int i = 0; i < kAccounts; ++i) {
    accts.push_back(c.seed_new_object(enc_i64(kInitial)));
  }

  // Four writer loops.
  for (net::NodeId n = 0; n < 4; ++n) {
    c.spawn_loop_client(n, [accts](Rng& rng) -> TxnBody {
      std::size_t a = rng.below(kAccounts);
      std::size_t b = rng.below(kAccounts - 1);
      if (b >= a) ++b;
      std::int64_t amt = rng.range(1, 5);
      return [accts, a, b, amt](Txn& t) -> sim::Task<void> {
        std::int64_t va = dec_i64(co_await t.read_for_write(accts[a]));
        std::int64_t vb = dec_i64(co_await t.read_for_write(accts[b]));
        t.write(accts[a], enc_i64(va - amt));
        t.write(accts[b], enc_i64(vb + amt));
      };
    });
  }
  // Two auditor loops; every committed audit's sum is recorded.
  std::vector<std::int64_t> audits;
  for (net::NodeId n = 4; n < 6; ++n) {
    c.spawn_loop_client(n, [accts, &audits](Rng&) -> TxnBody {
      return [accts, &audits](Txn& t) -> sim::Task<void> {
        std::int64_t sum = 0;
        for (ObjectId a : accts) sum += dec_i64(co_await t.read(a));
        // The body can run and abort many times; only the attempt that
        // commits has its sum kept (record and pop on retry).
        audits.push_back(sum);
      };
    });
  }
  // Popping aborted sums: wrap via commit detection -- simplest is to
  // compare counts afterwards; instead record *all* attempt sums and check
  // only that committed count <= recorded and all *final* states conserve.
  c.run_for(sim::sec(30));
  c.run_to_completion();

  // Strong check: re-run the audit once, quiesced.
  std::int64_t final_sum = 0;
  c.spawn_client(0, [&](Txn& t) -> sim::Task<void> {
    for (ObjectId a : accts) final_sum += dec_i64(co_await t.read(a));
  });
  c.run_to_completion();
  EXPECT_EQ(final_sum, kAccounts * kInitial);

  // Opacity check: under Rqv modes every *attempt* that completed its last
  // read validated the whole read-set, so even attempt-level sums are
  // consistent; under flat, zombie attempts may record torn sums but are
  // aborted -- the committed audits equal the audit-client commit count.
  if (GetParam() != NestingMode::kFlat) {
    for (std::int64_t s : audits) {
      EXPECT_EQ(s, kAccounts * kInitial)
          << "torn snapshot observed under Rqv";
    }
  }
  EXPECT_GE(audits.size(), 1u);
}

TEST_P(ModeProperty, ContendedCounterLinearises) {
  ClusterConfig cfg;
  cfg.num_nodes = 13;
  cfg.seed = 29;
  cfg.runtime.mode = GetParam();
  Cluster c(cfg);
  ObjectId ctr = c.seed_new_object(enc_i64(0));

  constexpr int kClients = 12;
  constexpr int kIncrementsEach = 5;
  for (int i = 0; i < kClients; ++i) {
    auto n = static_cast<net::NodeId>(i % c.num_nodes());
    c.simulator().spawn([](Cluster* cl, net::NodeId node,
                           ObjectId obj) -> sim::Task<void> {
      for (int k = 0; k < kIncrementsEach; ++k) {
        co_await cl->runtime(node).run_transaction(
            [obj](Txn& t) -> sim::Task<void> {
              std::int64_t v = dec_i64(co_await t.read_for_write(obj));
              co_await t.compute(sim::msec(1));
              t.write(obj, enc_i64(v + 1));
            });
      }
    }(&c, n, ctr));
  }
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commits,
            static_cast<std::uint64_t>(kClients * kIncrementsEach));

  std::int64_t final_v = 0;
  c.spawn_client(0, [&, ctr](Txn& t) -> sim::Task<void> {
    final_v = dec_i64(co_await t.read(ctr));
  });
  c.run_to_completion();
  EXPECT_EQ(final_v, kClients * kIncrementsEach);
}

INSTANTIATE_TEST_SUITE_P(AllModes, ModeProperty,
                         ::testing::Values(NestingMode::kFlat,
                                           NestingMode::kClosed,
                                           NestingMode::kCheckpoint),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace qrdtm::core
