// White-box tests of the QR replica server: Rqv validation (Alg. 1 / 4),
// read handling (Alg. 2 remote side), 2PC votes and confirms -- driven by
// crafted wire messages through a minimal two-endpoint network.
#include <gtest/gtest.h>

#include "core/qr_server.h"
#include "net/latency.h"
#include "sim/task.h"

namespace qrdtm::core {
namespace {

struct Rig {
  sim::Simulator sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<net::RpcEndpoint> client_ep;
  std::unique_ptr<net::RpcEndpoint> server_ep;
  std::unique_ptr<QrServer> server;

  Rig() {
    net = std::make_unique<net::Network>(
        sim, std::make_unique<net::UniformLatency>(sim::msec(1)), 1,
        sim::usec(10));
    client_ep = std::make_unique<net::RpcEndpoint>(sim, *net);
    server_ep = std::make_unique<net::RpcEndpoint>(sim, *net);
    server = std::make_unique<QrServer>(*server_ep);
  }

  store::ReplicaStore& store() { return server->store(); }

  /// Synchronously round-trip a request through the simulated network.
  Bytes call(net::MsgKind kind, const Bytes& req) {
    Bytes out;
    bool ok = false;
    sim.spawn([](Rig* rig, net::MsgKind k, Bytes r, Bytes* o,
                 bool* okp) -> sim::Task<void> {
      auto res = co_await rig->client_ep->call(rig->server_ep->id(), k,
                                               std::move(r), sim::sec(1));
      *okp = res.ok;
      *o = std::move(res.payload);
    }(this, kind, req, &out, &ok));
    sim.run();
    QRDTM_CHECK(ok);
    return out;
  }

  ReadResponse read(const ReadRequest& req) {
    return ReadResponse::decode(call(msg::kRead, req.encode()));
  }
  VoteResponse vote(const CommitRequest& req) {
    return VoteResponse::decode(call(msg::kCommitRequest, req.encode()));
  }
  void confirm(const CommitConfirm& c) {
    client_ep->notify(server_ep->id(), msg::kCommitConfirm, c.encode());
    sim.run();
  }
};

ReadRequest basic_read(ObjectId obj, NestingMode mode, TxnId root = 100) {
  ReadRequest req;
  req.root = root;
  req.mode = mode;
  req.object = obj;
  return req;
}

TEST(QrServer, ReadServesCopyAndTracksPotentialReaders) {
  Rig rig;
  rig.store().seed(1, Bytes{0xAA}, 3);
  ReadResponse resp = rig.read(basic_read(1, NestingMode::kFlat));
  EXPECT_EQ(resp.status, ReadStatus::kOk);
  EXPECT_EQ(resp.version, 3u);
  EXPECT_EQ(resp.data, Bytes{0xAA});
  EXPECT_EQ(rig.store().find(1)->pr.count(100), 1u);
  EXPECT_TRUE(rig.store().find(1)->pw.empty());
}

TEST(QrServer, WriteIntentTracksPotentialWriters) {
  Rig rig;
  rig.store().seed(1, Bytes{}, 1);
  ReadRequest req = basic_read(1, NestingMode::kFlat);
  req.for_write = true;
  (void)rig.read(req);
  EXPECT_EQ(rig.store().find(1)->pw.count(100), 1u);
}

TEST(QrServer, UnknownObjectReportsMissing) {
  Rig rig;
  EXPECT_EQ(rig.read(basic_read(42, NestingMode::kFlat)).status,
            ReadStatus::kMissing);
}

TEST(QrServer, FlatReadsSkipValidation) {
  Rig rig;
  rig.store().seed(1, Bytes{}, 5);
  rig.store().seed(2, Bytes{}, 1);
  ReadRequest req = basic_read(2, NestingMode::kFlat);
  // A stale data-set entry would fail Rqv -- but flat mode carries none and
  // must be served regardless.
  req.dataset.push_back(DataSetEntry{1, 2 /* stale */, 100, 0, 0});
  EXPECT_EQ(rig.read(req).status, ReadStatus::kOk);
}

TEST(QrServer, RqvDetectsStaleEntryAndReportsShallowestOwner) {
  Rig rig;
  rig.store().seed(1, Bytes{}, 5);
  rig.store().seed(2, Bytes{}, 7);
  rig.store().seed(3, Bytes{}, 1);
  ReadRequest req = basic_read(3, NestingMode::kClosed);
  req.dataset.push_back(DataSetEntry{1, 4, /*owner=*/201, /*depth=*/1, 0});
  req.dataset.push_back(DataSetEntry{2, 6, /*owner=*/200, /*depth=*/0, 0});
  ReadResponse resp = rig.read(req);
  ASSERT_EQ(resp.status, ReadStatus::kAbort);
  EXPECT_EQ(resp.abort_scope, 200u) << "depth-0 owner is shallowest";
  EXPECT_EQ(resp.abort_depth, 0u);
}

TEST(QrServer, RqvPassesWhenVersionsCurrentOrNewer) {
  Rig rig;
  rig.store().seed(1, Bytes{}, 5);
  ReadRequest req = basic_read(1, NestingMode::kClosed);
  // Equal version: valid.  A version *newer* than the replica's (the
  // replica is stale) is also valid: e.version < local is the only stale
  // case.
  req.dataset.push_back(DataSetEntry{1, 5, 100, 0, 0});
  EXPECT_EQ(rig.read(req).status, ReadStatus::kOk);
  req.dataset[0].version = 9;
  EXPECT_EQ(rig.read(req).status, ReadStatus::kOk);
}

TEST(QrServer, RqvChkReportsMinimumInvalidEpoch) {
  Rig rig;
  rig.store().seed(1, Bytes{}, 5);
  rig.store().seed(2, Bytes{}, 5);
  rig.store().seed(3, Bytes{}, 1);
  ReadRequest req = basic_read(3, NestingMode::kCheckpoint);
  req.dataset.push_back(DataSetEntry{1, 4, 100, 0, /*chk=*/7});
  req.dataset.push_back(DataSetEntry{2, 4, 100, 0, /*chk=*/3});
  ReadResponse resp = rig.read(req);
  ASSERT_EQ(resp.status, ReadStatus::kAbort);
  EXPECT_EQ(resp.abort_chk, 3u);
}

TEST(QrServer, RqvDropsOwnerFromPrPwOnFailure) {
  Rig rig;
  rig.store().seed(1, Bytes{}, 5);
  rig.store().seed(2, Bytes{}, 1);
  (void)rig.read(basic_read(1, NestingMode::kClosed, /*root=*/100));
  EXPECT_EQ(rig.store().find(1)->pr.count(100), 1u);

  // Make entry 1 stale and read object 2 under the same root.
  rig.store().apply(1, 6, Bytes{});
  ReadRequest req = basic_read(2, NestingMode::kClosed, /*root=*/100);
  req.dataset.push_back(DataSetEntry{1, 5, 100, 0, 0});
  ASSERT_EQ(rig.read(req).status, ReadStatus::kAbort);
  EXPECT_EQ(rig.store().find(1)->pr.count(100), 0u)
      << "Alg. 1 line 8: owner dropped from PR/PW";
}

TEST(QrServer, ProtectedObjectAbortsRqvReadersButServesFlat) {
  Rig rig;
  rig.store().seed(1, Bytes{0x01}, 5);
  rig.store().protect(1, /*txn=*/999, /*now=*/1);

  EXPECT_EQ(rig.read(basic_read(1, NestingMode::kFlat)).status,
            ReadStatus::kOk)
      << "flat QR has no read-time detection";
  EXPECT_EQ(rig.read(basic_read(1, NestingMode::kClosed)).status,
            ReadStatus::kAbort);
  EXPECT_EQ(rig.read(basic_read(1, NestingMode::kCheckpoint)).status,
            ReadStatus::kAbort);
  // The protector itself is not blocked by its own protection.
  EXPECT_EQ(rig.read(basic_read(1, NestingMode::kClosed, /*root=*/999)).status,
            ReadStatus::kOk);
}

TEST(QrServer, VoteCommitsAndProtectsWriteSet) {
  Rig rig;
  rig.store().seed(1, Bytes{}, 5);
  CommitRequest req;
  req.txn = 100;
  req.writeset.push_back(CommitWriteEntry{1, 5, Bytes{0x02}});
  EXPECT_TRUE(rig.vote(req).commit);
  EXPECT_TRUE(rig.store().protected_against(1, 12345));
}

TEST(QrServer, VoteRejectsStaleReadSet) {
  Rig rig;
  rig.store().seed(1, Bytes{}, 5);
  CommitRequest req;
  req.txn = 100;
  req.readset.push_back(CommitReadEntry{1, 4});
  EXPECT_FALSE(rig.vote(req).commit);
  EXPECT_FALSE(rig.store().protected_against(1, 12345))
      << "abort vote must not protect anything";
}

TEST(QrServer, VoteRejectsStaleWriteBase) {
  Rig rig;
  rig.store().seed(1, Bytes{}, 5);
  CommitRequest req;
  req.txn = 100;
  req.writeset.push_back(CommitWriteEntry{1, 4, Bytes{}});
  EXPECT_FALSE(rig.vote(req).commit);
}

TEST(QrServer, VoteRejectsCompetingProtection) {
  Rig rig;
  rig.store().seed(1, Bytes{}, 5);
  rig.store().protect(1, 999, /*now=*/1);
  CommitRequest req;
  req.txn = 100;
  req.writeset.push_back(CommitWriteEntry{1, 5, Bytes{}});
  EXPECT_FALSE(rig.vote(req).commit);
}

TEST(QrServer, ConfirmAppliesBasePlusOneAndUnprotects) {
  Rig rig;
  rig.store().seed(1, Bytes{}, 5);
  CommitRequest req;
  req.txn = 100;
  req.writeset.push_back(CommitWriteEntry{1, 5, Bytes{0x09}});
  ASSERT_TRUE(rig.vote(req).commit);

  CommitConfirm c;
  c.txn = 100;
  c.commit = true;
  c.writeset = req.writeset;
  rig.confirm(c);
  EXPECT_EQ(rig.store().version_of(1), 6u);
  EXPECT_EQ(rig.store().find(1)->data, Bytes{0x09});
  EXPECT_FALSE(rig.store().protected_against(1, 12345));
}

TEST(QrServer, AbortConfirmOnlyUnprotects) {
  Rig rig;
  rig.store().seed(1, Bytes{0x01}, 5);
  CommitRequest req;
  req.txn = 100;
  req.writeset.push_back(CommitWriteEntry{1, 5, Bytes{0x09}});
  ASSERT_TRUE(rig.vote(req).commit);

  CommitConfirm c;
  c.txn = 100;
  c.commit = false;
  c.writeset = req.writeset;
  rig.confirm(c);
  EXPECT_EQ(rig.store().version_of(1), 5u);
  EXPECT_EQ(rig.store().find(1)->data, Bytes{0x01});
  EXPECT_FALSE(rig.store().protected_against(1, 12345));
}

TEST(QrServer, StaleConfirmDoesNotRegressVersion) {
  Rig rig;
  rig.store().seed(1, Bytes{}, 9);
  CommitConfirm c;  // from an old committer whose base was 3
  c.txn = 55;
  c.commit = true;
  c.writeset.push_back(CommitWriteEntry{1, 3, Bytes{0x01}});
  rig.confirm(c);
  EXPECT_EQ(rig.store().version_of(1), 9u) << "apply only fast-forwards";
}

TEST(QrServer, ConfirmCreatesFreshObjects) {
  Rig rig;
  CommitConfirm c;
  c.txn = 100;
  c.commit = true;
  c.writeset.push_back(CommitWriteEntry{77, 0, Bytes{0x07}});
  rig.confirm(c);
  EXPECT_EQ(rig.store().version_of(77), 1u);
}

}  // namespace
}  // namespace qrdtm::core
