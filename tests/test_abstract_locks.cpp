// Unit tests for the QR-ON abstract-lock manager (core/abstract_locks.h).
#include <gtest/gtest.h>

#include "common/serde.h"
#include "core/abstract_locks.h"
#include "net/latency.h"
#include "sim/task.h"

namespace qrdtm::core {
namespace {

struct Rig {
  sim::Simulator sim;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<net::RpcEndpoint> client;
  std::unique_ptr<net::RpcEndpoint> server_ep;
  std::unique_ptr<LockManager> locks;

  Rig() {
    net = std::make_unique<net::Network>(
        sim, std::make_unique<net::UniformLatency>(sim::msec(1)), 1,
        sim::usec(10));
    client = std::make_unique<net::RpcEndpoint>(sim, *net);
    server_ep = std::make_unique<net::RpcEndpoint>(sim, *net);
    locks = std::make_unique<LockManager>(*server_ep);
  }

  bool acquire(AbstractLockId lock, TxnId root) {
    Writer w;
    w.u64(lock);
    w.u64(root);
    bool granted = false;
    sim.spawn([](Rig* rig, Bytes req, bool* out) -> sim::Task<void> {
      auto res = co_await rig->client->call(rig->server_ep->id(),
                                            msg::kLockAcquire, std::move(req),
                                            sim::sec(1));
      Reader r(res.payload);
      *out = r.boolean();
    }(this, std::move(w).take(), &granted));
    sim.run();
    return granted;
  }

  void release(AbstractLockId lock, TxnId root) {
    Writer w;
    w.u64(lock);
    w.u64(root);
    client->notify(server_ep->id(), msg::kLockRelease, std::move(w).take());
    sim.run();
  }
};

TEST(AbstractLocks, GrantDenyReleaseCycle) {
  Rig rig;
  EXPECT_TRUE(rig.acquire(5, 100));
  EXPECT_TRUE(rig.locks->is_held(5));
  EXPECT_EQ(rig.locks->holder_of(5), 100u);

  EXPECT_FALSE(rig.acquire(5, 200)) << "competing root must be denied";
  EXPECT_EQ(rig.locks->holder_of(5), 100u);

  rig.release(5, 100);
  EXPECT_FALSE(rig.locks->is_held(5));
  EXPECT_TRUE(rig.acquire(5, 200));
}

TEST(AbstractLocks, ReentrantForSameRoot) {
  Rig rig;
  EXPECT_TRUE(rig.acquire(5, 100));
  EXPECT_TRUE(rig.acquire(5, 100));
  EXPECT_EQ(rig.locks->held_count(), 1u);
}

TEST(AbstractLocks, ForeignReleaseIsIgnored) {
  Rig rig;
  ASSERT_TRUE(rig.acquire(5, 100));
  rig.release(5, 999);  // not the holder
  EXPECT_TRUE(rig.locks->is_held(5));
  EXPECT_EQ(rig.locks->holder_of(5), 100u);
}

TEST(AbstractLocks, IndependentLocksCoexist) {
  Rig rig;
  EXPECT_TRUE(rig.acquire(1, 100));
  EXPECT_TRUE(rig.acquire(2, 200));
  EXPECT_TRUE(rig.acquire(3, 100));
  EXPECT_EQ(rig.locks->held_count(), 3u);
  EXPECT_EQ(rig.locks->holder_of(2), 200u);
}

TEST(AbstractLocks, ReleaseOfUnknownLockIsNoOp) {
  Rig rig;
  rig.release(42, 100);
  EXPECT_EQ(rig.locks->held_count(), 0u);
}

TEST(AbstractLocks, HomePlacementIsStableAndInRange) {
  for (std::uint32_t n : {1u, 4u, 13u, 40u}) {
    for (AbstractLockId lock = 0; lock < 100; ++lock) {
      net::NodeId h1 = lock_home(lock, n);
      net::NodeId h2 = lock_home(lock, n);
      EXPECT_EQ(h1, h2);
      EXPECT_LT(h1, n);
    }
  }
}

}  // namespace
}  // namespace qrdtm::core
