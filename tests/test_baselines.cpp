// Tests for the Fig. 9 comparison baselines: TFA (HyFlow) and DecentSTM.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/decent.h"
#include "baselines/tfa.h"
#include "common/serde.h"

namespace qrdtm::baselines {
namespace {

Bytes enc_i64(std::int64_t v) {
  Writer w;
  w.i64(v);
  return std::move(w).take();
}

std::int64_t dec_i64(const Bytes& b) {
  Reader r(b);
  return r.i64();
}

// ------------------------------------------------------------------- TFA

TEST(Tfa, SingleTransferCommits) {
  TfaCluster c(TfaConfig{});
  ObjectId a = c.seed_new_object(enc_i64(100));
  ObjectId b = c.seed_new_object(enc_i64(100));
  c.spawn_client(0, [a, b](TfaTxn& t) -> sim::Task<void> {
    std::int64_t va = dec_i64(co_await t.read_for_write(a));
    std::int64_t vb = dec_i64(co_await t.read_for_write(b));
    t.write(a, enc_i64(va - 10));
    t.write(b, enc_i64(vb + 10));
  });
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commits, 1u);

  std::int64_t got_a = 0, got_b = 0;
  c.spawn_client(3, [&, a, b](TfaTxn& t) -> sim::Task<void> {
    got_a = dec_i64(co_await t.read(a));
    got_b = dec_i64(co_await t.read(b));
  });
  c.run_to_completion();
  EXPECT_EQ(got_a, 90);
  EXPECT_EQ(got_b, 110);
}

TEST(Tfa, ReadOnlyCommitsWithoutCommitMessages) {
  TfaCluster c(TfaConfig{});
  ObjectId a = c.seed_new_object(enc_i64(1));
  c.spawn_client(0, [a](TfaTxn& t) -> sim::Task<void> {
    (void)co_await t.read(a);
  });
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commits, 1u);
  EXPECT_EQ(c.metrics().commit_messages, 0u);
  EXPECT_EQ(c.metrics().local_commits, 1u);
}

TEST(Tfa, ReadsAreUnicast) {
  TfaCluster c(TfaConfig{});
  ObjectId a = c.seed_new_object(enc_i64(1));
  ObjectId b = c.seed_new_object(enc_i64(2));
  c.spawn_client(0, [a, b](TfaTxn& t) -> sim::Task<void> {
    (void)co_await t.read(a);
    (void)co_await t.read(b);
  });
  c.run_to_completion();
  EXPECT_EQ(c.metrics().read_messages, 2u) << "one unicast per object";
}

TEST(Tfa, ConcurrentIncrementsSerialise) {
  TfaCluster c(TfaConfig{});
  ObjectId ctr = c.seed_new_object(enc_i64(0));
  constexpr int kClients = 10;
  for (int i = 0; i < kClients; ++i) {
    c.spawn_client(static_cast<net::NodeId>(i % c.num_nodes()),
                   [ctr](TfaTxn& t) -> sim::Task<void> {
                     std::int64_t v = dec_i64(co_await t.read_for_write(ctr));
                     t.write(ctr, enc_i64(v + 1));
                   });
  }
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commits, static_cast<std::uint64_t>(kClients));
  std::int64_t final_v = 0;
  c.spawn_client(0, [&, ctr](TfaTxn& t) -> sim::Task<void> {
    final_v = dec_i64(co_await t.read(ctr));
  });
  c.run_to_completion();
  EXPECT_EQ(final_v, kClients);
}

TEST(Tfa, TransfersConserveBalance) {
  TfaCluster c(TfaConfig{});
  constexpr int kAccounts = 8;
  std::vector<ObjectId> accts;
  for (int i = 0; i < kAccounts; ++i) {
    accts.push_back(c.seed_new_object(enc_i64(100)));
  }
  for (int i = 0; i < 30; ++i) {
    ObjectId from = accts[i % kAccounts];
    ObjectId to = accts[(i + 3) % kAccounts];
    c.spawn_client(static_cast<net::NodeId>(i % c.num_nodes()),
                   [from, to](TfaTxn& t) -> sim::Task<void> {
                     std::int64_t f = dec_i64(co_await t.read_for_write(from));
                     std::int64_t g = dec_i64(co_await t.read_for_write(to));
                     t.write(from, enc_i64(f - 5));
                     t.write(to, enc_i64(g + 5));
                   });
  }
  c.run_to_completion();
  std::int64_t total = 0;
  c.spawn_client(0, [&](TfaTxn& t) -> sim::Task<void> {
    for (ObjectId a : accts) total += dec_i64(co_await t.read(a));
  });
  c.run_to_completion();
  EXPECT_EQ(total, kAccounts * 100);
}

// ------------------------------------------------------------- DecentSTM

DecentConfig fast_decent() {
  DecentConfig cfg;
  cfg.snapshot_compute = 0;  // isolate protocol logic in unit tests
  return cfg;
}

TEST(Decent, SingleTransferCommits) {
  DecentCluster c(fast_decent());
  ObjectId a = c.seed_new_object(enc_i64(100));
  ObjectId b = c.seed_new_object(enc_i64(100));
  c.spawn_client(0, [a, b](DecentTxn& t) -> sim::Task<void> {
    std::int64_t va = dec_i64(co_await t.read_for_write(a));
    std::int64_t vb = dec_i64(co_await t.read_for_write(b));
    t.write(a, enc_i64(va - 10));
    t.write(b, enc_i64(vb + 10));
  });
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commits, 1u);

  std::int64_t got_a = 0, got_b = 0;
  c.spawn_client(5, [&, a, b](DecentTxn& t) -> sim::Task<void> {
    got_a = dec_i64(co_await t.read(a));
    got_b = dec_i64(co_await t.read(b));
  });
  c.run_to_completion();
  EXPECT_EQ(got_a, 90);
  EXPECT_EQ(got_b, 110);
}

TEST(Decent, ReadOnlySnapshotIsConsistentAndFree) {
  DecentCluster c(fast_decent());
  ObjectId a = c.seed_new_object(enc_i64(1));
  ObjectId b = c.seed_new_object(enc_i64(2));
  std::uint64_t snapshot = 0;
  c.spawn_client(0, [&, a, b](DecentTxn& t) -> sim::Task<void> {
    (void)co_await t.read(a);
    (void)co_await t.read(b);
    snapshot = t.snapshot_ts();
  });
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commit_messages, 0u);
  EXPECT_EQ(c.metrics().local_commits, 1u);
  EXPECT_EQ(snapshot, 1u) << "first read pins the seeded version";
}

TEST(Decent, OldVersionsServeLaggingSnapshots) {
  // A reader that pinned its window before an update must still be served
  // the *old* version from the history.
  DecentCluster c(fast_decent());
  ObjectId a = c.seed_new_object(enc_i64(10));
  ObjectId b = c.seed_new_object(enc_i64(20));

  std::int64_t reader_a = 0, reader_b = 0;
  c.spawn_client(0, [&, a, b](DecentTxn& t) -> sim::Task<void> {
    reader_a = dec_i64(co_await t.read(a));  // pins window at version 1
    co_await c.simulator().delay(sim::msec(200));
    reader_b = dec_i64(co_await t.read(b));
  });
  // Writer bumps b mid-way through the reader.
  c.simulator().schedule_at(sim::msec(50), [&c, b] {
    c.spawn_client(1, [b](DecentTxn& t) -> sim::Task<void> {
      std::int64_t v = dec_i64(co_await t.read_for_write(b));
      t.write(b, enc_i64(v + 100));
    });
  });
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commits, 2u);
  EXPECT_EQ(reader_a, 10);
  // The reader's window was pinned below the writer's timestamp; the
  // history must serve the old value 20, not 120.
  EXPECT_EQ(reader_b, 20);
}

TEST(Decent, FirstCommitterWinsOnWriteWriteConflict) {
  DecentCluster c(fast_decent());
  ObjectId a = c.seed_new_object(enc_i64(0));
  constexpr int kClients = 6;
  for (int i = 0; i < kClients; ++i) {
    c.spawn_client(static_cast<net::NodeId>(i % c.num_nodes()),
                   [a](DecentTxn& t) -> sim::Task<void> {
                     std::int64_t v = dec_i64(co_await t.read_for_write(a));
                     t.write(a, enc_i64(v + 1));
                   });
  }
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commits, static_cast<std::uint64_t>(kClients));
  std::int64_t final_v = 0;
  c.spawn_client(0, [&, a](DecentTxn& t) -> sim::Task<void> {
    final_v = dec_i64(co_await t.read(a));
  });
  c.run_to_completion();
  EXPECT_EQ(final_v, kClients);
}

TEST(Decent, CommitBroadcastsToAllReplicas) {
  DecentConfig cfg = fast_decent();
  cfg.replication = 3;
  DecentCluster c(cfg);
  ObjectId a = c.seed_new_object(enc_i64(0));
  c.spawn_client(0, [a](DecentTxn& t) -> sim::Task<void> {
    std::int64_t v = dec_i64(co_await t.read_for_write(a));
    t.write(a, enc_i64(v + 1));
  });
  c.run_to_completion();
  // Vote + apply, each to all three replicas of the one written object.
  EXPECT_EQ(c.metrics().commit_messages, 6u);
}

// ------------------------------------------------- orphaned-lock leases
//
// Both baselines grant an exclusive lock during 2PC and release it with a
// later message from the coordinator.  If the coordinator fail-stops in
// between, that release never arrives; the lock lease must shed the orphan
// so the object becomes writable again.

sim::Task<void> tfa_bounded(TfaCluster* c, net::NodeId node, TfaBody body,
                            std::uint32_t attempts, bool* committed) {
  *committed =
      co_await c->run_transaction_bounded(node, std::move(body), attempts);
}

TEST(Tfa, OrphanedLockShedByLeaseUnwedgesObject) {
  TfaConfig cfg;
  cfg.lock_lease = sim::msec(200);
  TfaCluster c(cfg);
  const ObjectId obj = c.seed_new_object(enc_i64(0));
  // Doomed coordinator on a node that is NOT the object's home, so its
  // writeback has to cross the (soon dead) network link.
  const net::NodeId doomed =
      c.home_of(obj) == 0 ? net::NodeId{1} : net::NodeId{0};
  TfaBody bump = [obj](TfaTxn& t) -> sim::Task<void> {
    std::int64_t v = dec_i64(co_await t.read_for_write(obj));
    t.write(obj, enc_i64(v + 1));
  };

  bool doomed_committed = false;
  c.simulator().spawn(tfa_bounded(&c, doomed, bump, 1, &doomed_committed));
  // Run until the home has granted the lock, then fail-stop the coordinator
  // before its writeback is sent: the lock is now orphaned.
  bool locked = false;
  sim::Tick poll_at = 0;
  for (int i = 0; i < 1000 && !locked; ++i) {
    poll_at += sim::usec(250);
    c.simulator().advance_to(poll_at);
    locked = c.object_locked(obj);
  }
  ASSERT_TRUE(locked) << "test setup: the lock was never granted";
  c.network().kill(doomed);

  bool committed = false;
  const net::NodeId writer =
      c.home_of(obj) == 2 ? net::NodeId{3} : net::NodeId{2};
  c.simulator().spawn(tfa_bounded(&c, writer, bump, 50, &committed));
  c.run_to_completion();

  EXPECT_TRUE(committed) << "object stayed wedged behind the orphaned lock";
  EXPECT_GT(c.lock_lease_breaks(), 0u);
  EXPECT_FALSE(doomed_committed);
  std::int64_t final_v = -1;
  c.spawn_client(4, [&, obj](TfaTxn& t) -> sim::Task<void> {
    final_v = dec_i64(co_await t.read(obj));
  });
  c.run_to_completion();
  EXPECT_EQ(final_v, 1) << "only the second writer's increment commits";
}

sim::Task<void> decent_bounded(DecentCluster* c, net::NodeId node,
                               DecentBody body, std::uint32_t attempts,
                               bool* committed) {
  *committed =
      co_await c->run_transaction_bounded(node, std::move(body), attempts);
}

TEST(Decent, OrphanedLockShedByLeaseUnwedgesObject) {
  DecentConfig cfg = fast_decent();
  cfg.lock_lease = sim::msec(200);
  DecentCluster c(cfg);
  const ObjectId obj = c.seed_new_object(enc_i64(0));
  // Doomed coordinator off the replica set: its commit-apply must cross
  // the network, so killing it after the votes orphans the replica locks.
  const std::vector<net::NodeId> replicas = c.replicas_of(obj);
  net::NodeId doomed = 0;
  while (std::find(replicas.begin(), replicas.end(), doomed) !=
         replicas.end()) {
    ++doomed;
  }
  DecentBody bump = [obj](DecentTxn& t) -> sim::Task<void> {
    std::int64_t v = dec_i64(co_await t.read_for_write(obj));
    t.write(obj, enc_i64(v + 1));
  };

  bool doomed_committed = false;
  c.simulator().spawn(decent_bounded(&c, doomed, bump, 1, &doomed_committed));
  bool locked = false;
  sim::Tick poll_at = 0;
  for (int i = 0; i < 1000 && !locked; ++i) {
    poll_at += sim::msec(1);
    c.simulator().advance_to(poll_at);
    locked = c.object_locked(obj);
  }
  ASSERT_TRUE(locked) << "test setup: no replica ever voted the lock";
  c.network().kill(doomed);

  bool committed = false;
  const net::NodeId writer = doomed == 0 ? net::NodeId{1} : net::NodeId{0};
  c.simulator().spawn(decent_bounded(&c, writer, bump, 50, &committed));
  c.run_to_completion();

  EXPECT_TRUE(committed) << "object stayed wedged behind the orphaned lock";
  EXPECT_GT(c.lock_lease_breaks(), 0u);
  EXPECT_FALSE(doomed_committed);
  std::int64_t final_v = -1;
  c.spawn_client(writer, [&, obj](DecentTxn& t) -> sim::Task<void> {
    final_v = dec_i64(co_await t.read(obj));
  });
  c.run_to_completion();
  EXPECT_EQ(final_v, 1) << "only the second writer's increment commits";
}

}  // namespace
}  // namespace qrdtm::baselines
