// Wire-format tests for the QR protocol messages: round trips, and fuzzing
// the decoders with random/truncated bytes (a replica must reject corrupt
// input with SerdeError, never crash or accept garbage silently).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/wire.h"

namespace qrdtm::core {
namespace {

ReadRequest sample_read_request(Rng& rng) {
  ReadRequest req;
  req.root = rng.next();
  req.mode = static_cast<NestingMode>(rng.below(3));
  req.object = rng.next();
  req.for_write = rng.chance(0.5);
  int n = static_cast<int>(rng.below(8));
  for (int i = 0; i < n; ++i) {
    req.dataset.push_back(DataSetEntry{rng.next(), rng.next(), rng.next(),
                                       static_cast<std::uint32_t>(rng.next()),
                                       rng.next()});
  }
  return req;
}

TEST(Wire, ReadRequestRoundTrip) {
  Rng rng(1);
  for (int iter = 0; iter < 100; ++iter) {
    ReadRequest req = sample_read_request(rng);
    ReadRequest got = ReadRequest::decode(req.encode());
    EXPECT_EQ(got.root, req.root);
    EXPECT_EQ(got.mode, req.mode);
    EXPECT_EQ(got.object, req.object);
    EXPECT_EQ(got.for_write, req.for_write);
    ASSERT_EQ(got.dataset.size(), req.dataset.size());
    for (std::size_t i = 0; i < req.dataset.size(); ++i) {
      EXPECT_EQ(got.dataset[i].id, req.dataset[i].id);
      EXPECT_EQ(got.dataset[i].version, req.dataset[i].version);
      EXPECT_EQ(got.dataset[i].owner, req.dataset[i].owner);
      EXPECT_EQ(got.dataset[i].owner_depth, req.dataset[i].owner_depth);
      EXPECT_EQ(got.dataset[i].owner_chk, req.dataset[i].owner_chk);
    }
  }
}

TEST(Wire, ReadResponseRoundTrip) {
  ReadResponse resp;
  resp.status = ReadStatus::kAbort;
  resp.version = 17;
  resp.data = Bytes{1, 2, 3};
  resp.abort_scope = 42;
  resp.abort_depth = 2;
  resp.abort_chk = 9;
  ReadResponse got = ReadResponse::decode(resp.encode());
  EXPECT_EQ(got.status, resp.status);
  EXPECT_EQ(got.version, resp.version);
  EXPECT_EQ(got.data, resp.data);
  EXPECT_EQ(got.abort_scope, resp.abort_scope);
  EXPECT_EQ(got.abort_depth, resp.abort_depth);
  EXPECT_EQ(got.abort_chk, resp.abort_chk);
}

TEST(Wire, CommitMessagesRoundTrip) {
  CommitRequest req;
  req.txn = 7;
  req.readset = {{1, 2}, {3, 4}};
  req.writeset.push_back(CommitWriteEntry{5, 6, Bytes{9, 9}});
  CommitRequest got = CommitRequest::decode(req.encode());
  EXPECT_EQ(got.txn, 7u);
  ASSERT_EQ(got.readset.size(), 2u);
  EXPECT_EQ(got.readset[1].id, 3u);
  ASSERT_EQ(got.writeset.size(), 1u);
  EXPECT_EQ(got.writeset[0].data, (Bytes{9, 9}));

  CommitConfirm confirm;
  confirm.txn = 8;
  confirm.commit = true;
  confirm.writeset = req.writeset;
  CommitConfirm cgot = CommitConfirm::decode(confirm.encode());
  EXPECT_EQ(cgot.txn, 8u);
  EXPECT_TRUE(cgot.commit);
  ASSERT_EQ(cgot.writeset.size(), 1u);

  VoteResponse vote{true};
  EXPECT_TRUE(VoteResponse::decode(vote.encode()).commit);
}

// Fuzz: truncations of valid messages must throw SerdeError, never crash.
TEST(WireFuzz, TruncatedMessagesThrow) {
  Rng rng(2);
  for (int iter = 0; iter < 50; ++iter) {
    Bytes full = sample_read_request(rng).encode();
    for (std::size_t len = 0; len < full.size(); ++len) {
      Bytes cut(full.begin(), full.begin() + len);
      EXPECT_THROW(ReadRequest::decode(cut), SerdeError)
          << "len " << len << "/" << full.size();
    }
  }
}

// Fuzz: random byte strings either decode (structurally-valid garbage) or
// throw SerdeError; nothing else.
TEST(WireFuzz, RandomBytesNeverCrash) {
  Rng rng(3);
  int decoded = 0, rejected = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    Bytes junk(rng.below(64), 0);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    try {
      (void)ReadRequest::decode(junk);
      ++decoded;
    } catch (const SerdeError&) {
      ++rejected;
    }
    try {
      (void)CommitRequest::decode(junk);
      ++decoded;
    } catch (const SerdeError&) {
      ++rejected;
    }
    try {
      (void)ReadResponse::decode(junk);
      ++decoded;
    } catch (const SerdeError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0);
  (void)decoded;  // structurally-valid garbage is acceptable
}

// Fuzz: bit flips in valid messages must not crash the decoder.
TEST(WireFuzz, BitFlipsNeverCrash) {
  Rng rng(4);
  for (int iter = 0; iter < 300; ++iter) {
    Bytes wire = sample_read_request(rng).encode();
    std::size_t pos = rng.below(wire.size());
    wire[pos] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    try {
      (void)ReadRequest::decode(wire);
    } catch (const SerdeError&) {
      // rejected: fine
    }
  }
}

}  // namespace
}  // namespace qrdtm::core
