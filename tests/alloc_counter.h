// Global allocation counter for zero-allocation regression tests.
//
// Including this header replaces the program-wide (unaligned) operator
// new/delete with counting versions, so a test can assert that a hot path
// performs no heap allocations in steady state.  Include it in exactly ONE
// translation unit per test binary (the replacements have external linkage).
//
// Over-aligned allocations (alignas > __STDCPP_DEFAULT_NEW_ALIGNMENT__) go
// through the aligned overloads, which are deliberately not replaced; none
// of the hot paths under test use them.
//
// Under AddressSanitizer the replacement is compiled out entirely: ASan
// interposes operator new/delete itself (for poisoning and leak tracking),
// so a malloc-based replacement would both fight the interceptor and make
// the counts meaningless.  alloc_hook_active() then reports false and the
// AllocRegression tests skip.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#if defined(__SANITIZE_ADDRESS__)
#define QRDTM_ALLOC_COUNTER_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define QRDTM_ALLOC_COUNTER_DISABLED 1
#endif
#endif
#ifndef QRDTM_ALLOC_COUNTER_DISABLED
#define QRDTM_ALLOC_COUNTER_DISABLED 0
#endif

namespace qrdtm::testing {
namespace detail {
inline std::uint64_t g_allocs = 0;
inline void* volatile g_sink = nullptr;  // defeats new/delete pair elision
}  // namespace detail

/// Number of operator-new calls since program start.
inline std::uint64_t alloc_count() { return detail::g_allocs; }

/// True when the replacement operator new is actually linked in (tests skip
/// rather than fail on toolchains where the replacement is not effective,
/// and always under ASan, where the replacement is compiled out).
inline bool alloc_hook_active() {
#if QRDTM_ALLOC_COUNTER_DISABLED
  return false;
#else
  const std::uint64_t before = detail::g_allocs;
  int* p = new int(42);
  detail::g_sink = p;
  delete p;
  return detail::g_allocs != before;
#endif
}

}  // namespace qrdtm::testing

#if !QRDTM_ALLOC_COUNTER_DISABLED

// GCC flags free() inside replacement deletes as a new/free mismatch when it
// inlines them next to a visible operator new; the pairing is fine (all the
// replacements below allocate with malloc).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t n) {
  ++qrdtm::testing::detail::g_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) {
  ++qrdtm::testing::detail::g_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

#endif  // !QRDTM_ALLOC_COUNTER_DISABLED
