// Integration tests of QR-CN: closed nesting with Rqv incremental
// validation (paper §III).
//
// Conflicts are injected by applying a committed write to *every* replica at
// a chosen simulated time (equivalent to an external transaction whose write
// quorum is the full node set), which makes the conflict visible to any read
// quorum deterministically.
#include <gtest/gtest.h>

#include <set>

#include "common/serde.h"
#include "core/cluster.h"

namespace qrdtm::core {
namespace {

Bytes enc_i64(std::int64_t v) {
  Writer w;
  w.i64(v);
  return std::move(w).take();
}

std::int64_t dec_i64(const Bytes& b) {
  Reader r(b);
  return r.i64();
}

ClusterConfig cn_cfg() {
  ClusterConfig cfg;
  cfg.num_nodes = 13;
  cfg.runtime.mode = NestingMode::kClosed;
  cfg.seed = 7;
  return cfg;
}

/// Commits `value` to `obj` on every replica at simulated time `at`,
/// bumping the version by one.
void bump_everywhere(Cluster& c, sim::Tick at, ObjectId obj,
                     std::int64_t value) {
  c.simulator().schedule_at(at, [&c, obj, value] {
    Version v = c.server(0).store().version_of(obj);
    for (net::NodeId n = 0; n < c.num_nodes(); ++n) {
      c.server(n).store().apply(obj, v + 1, enc_i64(value));
    }
  });
}

TEST(QrCn, CtCommitMergesIntoParentAndRootCommits) {
  Cluster c(cn_cfg());
  ObjectId m1 = c.seed_new_object(enc_i64(1));
  ObjectId m2 = c.seed_new_object(enc_i64(2));
  ObjectId m3 = c.seed_new_object(enc_i64(4));
  ObjectId out = c.seed_new_object(enc_i64(0));

  // The paper's matrix-sum example (Fig. 2): parent adds m1+m2, the CT adds
  // the intermediate and m3, the root writes the result.
  c.spawn_client(1, [=](Txn& t) -> sim::Task<void> {
    std::int64_t a = dec_i64(co_await t.read(m1));
    std::int64_t b = dec_i64(co_await t.read(m2));
    std::int64_t intm = a + b;
    std::int64_t result = 0;
    co_await t.nested([&, m3](Txn& ct) -> sim::Task<void> {
      std::int64_t d = dec_i64(co_await ct.read(m3));
      result = intm + d;
      (void)co_await ct.read_for_write(out);
      ct.write(out, enc_i64(result));
    });
  });
  c.run_to_completion();

  EXPECT_EQ(c.metrics().commits, 1u);
  EXPECT_EQ(c.metrics().ct_aborts, 0u);
  EXPECT_EQ(c.metrics().root_aborts, 0u);

  std::int64_t seen = 0;
  c.spawn_client(5, [out, &seen](Txn& t) -> sim::Task<void> {
    seen = dec_i64(co_await t.read(out));
  });
  c.run_to_completion();
  EXPECT_EQ(seen, 7);
}

TEST(QrCn, ReadOnlyRootCommitsLocallyWithZeroCommitMessages) {
  Cluster c(cn_cfg());
  ObjectId obj = c.seed_new_object(enc_i64(5));
  c.spawn_client(0, [obj](Txn& t) -> sim::Task<void> {
    (void)co_await t.read(obj);
  });
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commits, 1u);
  EXPECT_EQ(c.metrics().local_commits, 1u);
  EXPECT_EQ(c.metrics().commit_requests, 0u);
  EXPECT_EQ(c.metrics().commit_messages, 0u);
}

TEST(QrCn, ConflictOnCtOwnedObjectRetriesOnlyTheCt) {
  Cluster c(cn_cfg());
  ObjectId x = c.seed_new_object(enc_i64(10));
  ObjectId y = c.seed_new_object(enc_i64(20));

  std::int64_t seen_x = 0;
  c.spawn_client(1, [&, x, y](Txn& t) -> sim::Task<void> {
    co_await t.nested([&, x, y](Txn& ct) -> sim::Task<void> {
      seen_x = dec_i64(co_await ct.read(x));
      co_await ct.compute(sim::msec(200));
      (void)co_await ct.read(y);  // Rqv validates {x} here
    });
  });
  // Bump x while the CT is inside its compute window.
  bump_everywhere(c, sim::msec(100), x, 11);
  c.run_to_completion();

  EXPECT_EQ(c.metrics().commits, 1u);
  EXPECT_EQ(c.metrics().ct_aborts, 1u);
  EXPECT_EQ(c.metrics().root_aborts, 0u);
  EXPECT_EQ(seen_x, 11) << "retried CT must observe the new value";
}

TEST(QrCn, ConflictOnParentOwnedObjectAbortsRoot) {
  Cluster c(cn_cfg());
  ObjectId p = c.seed_new_object(enc_i64(1));
  ObjectId y = c.seed_new_object(enc_i64(2));

  std::int64_t seen_p = 0;
  c.spawn_client(1, [&, p, y](Txn& t) -> sim::Task<void> {
    seen_p = dec_i64(co_await t.read(p));  // owned by the root
    co_await t.compute(sim::msec(200));
    co_await t.nested([&, y](Txn& ct) -> sim::Task<void> {
      (void)co_await ct.read(y);  // Rqv validates {p}: invalid -> abortClosed=root
    });
  });
  bump_everywhere(c, sim::msec(100), p, 99);
  c.run_to_completion();

  EXPECT_EQ(c.metrics().commits, 1u);
  EXPECT_EQ(c.metrics().root_aborts, 1u);
  EXPECT_EQ(c.metrics().ct_aborts, 0u);
  EXPECT_EQ(seen_p, 99) << "root retry must observe the new value";
}

TEST(QrCn, MergedObjectsBecomeParentOwned) {
  // After a CT commits, a conflict on an object it read must abort the
  // *parent* (the CT no longer exists to retry).
  Cluster c(cn_cfg());
  ObjectId x = c.seed_new_object(enc_i64(1));
  ObjectId z = c.seed_new_object(enc_i64(2));

  c.spawn_client(1, [&, x, z](Txn& t) -> sim::Task<void> {
    co_await t.nested([x](Txn& ct) -> sim::Task<void> {
      (void)co_await ct.read(x);
    });  // merges: x now owned by the root
    co_await t.compute(sim::msec(200));
    (void)co_await t.read(z);  // Rqv validates {x}
  });
  bump_everywhere(c, sim::msec(150), x, 3);
  c.run_to_completion();

  EXPECT_EQ(c.metrics().commits, 1u);
  EXPECT_EQ(c.metrics().root_aborts, 1u);
  EXPECT_EQ(c.metrics().ct_aborts, 0u);
}

TEST(QrCn, CheckParentServesLocallyWithNoMessages) {
  Cluster c(cn_cfg());
  ObjectId x = c.seed_new_object(enc_i64(42));
  std::uint64_t reads_before = 0;
  std::int64_t inner = 0;
  c.spawn_client(0, [&, x](Txn& t) -> sim::Task<void> {
    (void)co_await t.read(x);
    reads_before = t.runtime().metrics().remote_reads;
    co_await t.nested([&, x](Txn& ct) -> sim::Task<void> {
      inner = dec_i64(co_await ct.read(x));  // checkParent: local
    });
  });
  c.run_to_completion();
  EXPECT_EQ(inner, 42);
  EXPECT_EQ(c.metrics().remote_reads, reads_before);
  EXPECT_GE(c.metrics().local_read_hits, 1u);
}

TEST(QrCn, CtCommitSendsNoMessages) {
  Cluster c(cn_cfg());
  ObjectId x = c.seed_new_object(enc_i64(1));
  std::uint64_t msgs_at_ct_end = 0, msgs_after_merge = 0;
  c.spawn_client(0, [&, x](Txn& t) -> sim::Task<void> {
    co_await t.nested([&, x](Txn& ct) -> sim::Task<void> {
      (void)co_await ct.read(x);
      msgs_at_ct_end = ct.runtime().metrics().total_messages();
    });
    msgs_after_merge = t.runtime().metrics().total_messages();
  });
  c.run_to_completion();
  EXPECT_EQ(msgs_at_ct_end, msgs_after_merge)
      << "commitCT must be purely local (paper Alg. 3)";
}

TEST(QrCn, DeepNestingAbortsInnermostOwner) {
  // Grandchild conflict on an object the *child* owns: abortClosed is the
  // child; the child retries (re-running the grandchild), the root stays.
  Cluster c(cn_cfg());
  ObjectId a = c.seed_new_object(enc_i64(1));
  ObjectId b = c.seed_new_object(enc_i64(2));

  int child_runs = 0, grandchild_runs = 0;
  c.spawn_client(1, [&, a, b](Txn& t) -> sim::Task<void> {
    co_await t.nested([&, a, b](Txn& child) -> sim::Task<void> {
      ++child_runs;
      (void)co_await child.read(a);  // owned by child
      co_await child.compute(sim::msec(200));
      co_await child.nested([&, b](Txn& gc) -> sim::Task<void> {
        ++grandchild_runs;
        (void)co_await gc.read(b);  // validates {a}: invalid -> abort child
      });
    });
  });
  bump_everywhere(c, sim::msec(100), a, 5);
  c.run_to_completion();

  EXPECT_EQ(c.metrics().commits, 1u);
  EXPECT_EQ(c.metrics().root_aborts, 0u);
  EXPECT_EQ(c.metrics().ct_aborts, 1u);
  EXPECT_EQ(child_runs, 2);
  EXPECT_EQ(grandchild_runs, 2);
}

TEST(QrCn, NestedWritesCommitThroughRoot) {
  // Writes made inside CTs merge upward and reach the replicas exactly once
  // at root commit.
  Cluster c(cn_cfg());
  ObjectId x = c.seed_new_object(enc_i64(0));
  ObjectId y = c.seed_new_object(enc_i64(0));
  c.spawn_client(2, [=](Txn& t) -> sim::Task<void> {
    co_await t.nested([x](Txn& ct) -> sim::Task<void> {
      (void)co_await ct.read_for_write(x);
      ct.write(x, enc_i64(1));
    });
    co_await t.nested([y](Txn& ct) -> sim::Task<void> {
      (void)co_await ct.read_for_write(y);
      ct.write(y, enc_i64(2));
    });
  });
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commits, 1u);
  EXPECT_EQ(c.metrics().commit_requests, 1u);

  std::int64_t sx = -1, sy = -1;
  c.spawn_client(8, [&, x, y](Txn& t) -> sim::Task<void> {
    sx = dec_i64(co_await t.read(x));
    sy = dec_i64(co_await t.read(y));
  });
  c.run_to_completion();
  EXPECT_EQ(sx, 1);
  EXPECT_EQ(sy, 2);
}

TEST(QrCn, AbortedCtDiscardsItsWritesAndRetriesFresh) {
  Cluster c(cn_cfg());
  ObjectId x = c.seed_new_object(enc_i64(1));
  ObjectId y = c.seed_new_object(enc_i64(0));
  ObjectId z = c.seed_new_object(enc_i64(0));

  int attempts = 0;
  c.spawn_client(1, [&, x, y, z](Txn& t) -> sim::Task<void> {
    co_await t.nested([&, x, y, z](Txn& ct) -> sim::Task<void> {
      ++attempts;
      std::int64_t v = dec_i64(co_await ct.read(x));
      (void)co_await ct.read_for_write(y);
      ct.write(y, enc_i64(v * 100));
      co_await ct.compute(sim::msec(200));
      (void)co_await ct.read(z);  // remote: Rqv sees the bumped x
    });
  });
  bump_everywhere(c, sim::msec(100), x, 2);
  c.run_to_completion();

  EXPECT_EQ(c.metrics().ct_aborts, 1u);
  EXPECT_EQ(attempts, 2);
  // The committed write of y derives from the *fresh* x value (2): the
  // aborted attempt's buffered write (100) was discarded.
  std::int64_t fy = 0;
  c.spawn_client(3, [&, y](Txn& t) -> sim::Task<void> {
    fy = dec_i64(co_await t.read(y));
  });
  c.run_to_completion();
  EXPECT_EQ(fy, 200);
}

TEST(QrCn, FlatModeFlattensNestedScopes) {
  ClusterConfig cfg = cn_cfg();
  cfg.runtime.mode = NestingMode::kFlat;
  Cluster c(cfg);
  ObjectId x = c.seed_new_object(enc_i64(1));
  ObjectId y = c.seed_new_object(enc_i64(2));

  c.spawn_client(1, [&, x, y](Txn& t) -> sim::Task<void> {
    (void)co_await t.read(x);
    co_await t.compute(sim::msec(200));
    co_await t.nested([y](Txn& inner) -> sim::Task<void> {
      (void)co_await inner.read(y);
    });
    (void)co_await t.read_for_write(y);
    t.write(y, enc_i64(3));
  });
  bump_everywhere(c, sim::msec(100), x, 9);
  c.run_to_completion();

  // Flat nesting: the conflict on x surfaces at commit and aborts the whole
  // transaction; there are no CT aborts by definition.
  EXPECT_EQ(c.metrics().commits, 1u);
  EXPECT_EQ(c.metrics().ct_aborts, 0u);
  EXPECT_GE(c.metrics().root_aborts, 1u);
}

TEST(QrCn, ConcurrentNestedIncrementsSerialise) {
  Cluster c(cn_cfg());
  ObjectId ctr = c.seed_new_object(enc_i64(0));
  constexpr int kClients = 10;
  for (int i = 0; i < kClients; ++i) {
    c.spawn_client(static_cast<net::NodeId>(i % c.num_nodes()),
                   [ctr](Txn& t) -> sim::Task<void> {
                     co_await t.nested([ctr](Txn& ct) -> sim::Task<void> {
                       std::int64_t v =
                           dec_i64(co_await ct.read_for_write(ctr));
                       ct.write(ctr, enc_i64(v + 1));
                     });
                   });
  }
  c.run_to_completion();
  EXPECT_EQ(c.metrics().commits, static_cast<std::uint64_t>(kClients));
  std::int64_t final_v = 0;
  c.spawn_client(0, [&, ctr](Txn& t) -> sim::Task<void> {
    final_v = dec_i64(co_await t.read(ctr));
  });
  c.run_to_completion();
  EXPECT_EQ(final_v, kClients);
}

// DESIGN §8: when a CT upgrades (read_for_write) an object its ancestor
// already holds, the merge must not leave two data-set entries for the same
// object -- duplicate entries inflate every later Rqv message and make the
// replica validate the same object twice.
TEST(QrCn, CtUpgradeOfAncestorObjectLeavesUniqueDatasetEntries) {
  Cluster c(cn_cfg());
  ObjectId a = c.seed_new_object(enc_i64(1));
  ObjectId b = c.seed_new_object(enc_i64(2));

  std::vector<ObjectId> dataset_ids;
  c.spawn_client(1, [&, a, b](Txn& t) -> sim::Task<void> {
    // Root acquires `a` for writing; the grandchild CT re-reads it (served
    // from the ancestor write-set) and upgrades it again, then merges up
    // through two levels.
    (void)co_await t.read_for_write(a);
    co_await t.nested([&, a, b](Txn& mid) -> sim::Task<void> {
      (void)co_await mid.read(b);
      co_await mid.nested([&, a](Txn& ct) -> sim::Task<void> {
        std::int64_t v = dec_i64(co_await ct.read_for_write(a));
        ct.write(a, enc_i64(v + 10));
      });
    });
    for (const DataSetEntry& e : t.dataset_entries()) {
      dataset_ids.push_back(e.id);
    }
  });
  c.run_to_completion();

  ASSERT_EQ(c.metrics().commits, 1u);
  std::set<ObjectId> unique(dataset_ids.begin(), dataset_ids.end());
  EXPECT_EQ(unique.size(), dataset_ids.size())
      << "merged data-set must hold each object at most once";
  EXPECT_EQ(unique.count(a), 1u);
  EXPECT_EQ(unique.count(b), 1u);

  std::int64_t final_a = 0;
  c.spawn_client(5, [&, a](Txn& t) -> sim::Task<void> {
    final_a = dec_i64(co_await t.read(a));
  });
  c.run_to_completion();
  EXPECT_EQ(final_a, 11);
}

}  // namespace
}  // namespace qrdtm::core
