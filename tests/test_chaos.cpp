// FaultSchedule generation/replayability, the Network chaos hooks, and
// quorum-memoisation invalidation under fail-stops (Fig. 10 policy).
#include <gtest/gtest.h>

#include <set>

#include "core/chaos.h"
#include "core/cluster.h"
#include "core/history.h"

using namespace qrdtm;
using core::ChaosOptions;
using core::FaultSchedule;

namespace {

ChaosOptions busy_options() {
  ChaosOptions opts;
  opts.horizon = sim::sec(10);
  opts.max_kills = 3;
  for (net::NodeId n = 4; n < 13; ++n) opts.kill_candidates.push_back(n);
  opts.drop_bursts = 5;
  opts.drop_prob = 0.2;
  opts.burst_len = sim::sec(2);  // deliberately above the per-slice cap
  opts.latency_spikes = 4;
  opts.spike_extra = sim::msec(300);
  opts.spike_len = sim::msec(500);
  return opts;
}

TEST(FaultSchedule, SameSeedSameSchedule) {
  const ChaosOptions opts = busy_options();
  const FaultSchedule a = FaultSchedule::generate(42, 13, opts);
  const FaultSchedule b = FaultSchedule::generate(42, 13, opts);
  ASSERT_EQ(a.kills.size(), b.kills.size());
  for (std::size_t i = 0; i < a.kills.size(); ++i) {
    EXPECT_EQ(a.kills[i].at, b.kills[i].at);
    EXPECT_EQ(a.kills[i].node, b.kills[i].node);
  }
  ASSERT_EQ(a.bursts.size(), b.bursts.size());
  for (std::size_t i = 0; i < a.bursts.size(); ++i) {
    EXPECT_EQ(a.bursts[i].at, b.bursts[i].at);
    EXPECT_EQ(a.bursts[i].len, b.bursts[i].len);
  }
  ASSERT_EQ(a.spikes.size(), b.spikes.size());
  for (std::size_t i = 0; i < a.spikes.size(); ++i) {
    EXPECT_EQ(a.spikes[i].at, b.spikes[i].at);
    EXPECT_EQ(a.spikes[i].node, b.spikes[i].node);
  }
  EXPECT_FALSE(a.empty());
  EXPECT_FALSE(a.describe().empty());
}

TEST(FaultSchedule, KillsAreDistinctCandidatesInsideTheWindow) {
  const ChaosOptions opts = busy_options();
  const FaultSchedule s = FaultSchedule::generate(7, 13, opts);
  EXPECT_EQ(s.kills.size(), 3u);
  std::set<net::NodeId> victims;
  for (const auto& k : s.kills) {
    victims.insert(k.node);
    EXPECT_GE(k.node, 4u);
    EXPECT_LT(k.node, 13u);
    EXPECT_GE(k.at, opts.horizon / 5);
    EXPECT_LE(k.at, opts.horizon * 4 / 5);
  }
  EXPECT_EQ(victims.size(), s.kills.size()) << "kill victims must be distinct";
}

TEST(FaultSchedule, BurstsNeverOverlap) {
  const FaultSchedule s = FaultSchedule::generate(99, 13, busy_options());
  ASSERT_EQ(s.bursts.size(), 5u);
  for (std::size_t i = 1; i < s.bursts.size(); ++i) {
    EXPECT_LE(s.bursts[i - 1].at + s.bursts[i - 1].len, s.bursts[i].at)
        << "bursts " << i - 1 << " and " << i << " overlap";
  }
}

TEST(FaultSchedule, AtMostOneSpikePerNode) {
  const FaultSchedule s = FaultSchedule::generate(123, 13, busy_options());
  EXPECT_FALSE(s.spikes.empty());
  std::set<net::NodeId> spiked;
  for (const auto& sp : s.spikes) {
    EXPECT_TRUE(spiked.insert(sp.node).second)
        << "node " << sp.node << " spiked twice";
  }
}

core::TxnBody bump_body(core::ObjectId id) {
  return [id](core::Txn& t) -> sim::Task<void> {
    core::Bytes b = co_await t.read_for_write(id);
    b[0] += 1;
    t.write(id, b);
  };
}

TEST(FaultSchedule, RecoversPairKillsAndLandAfterThem) {
  ChaosOptions opts = busy_options();
  opts.recover_after = sim::msec(600);
  opts.recover_jitter = sim::msec(150);
  const FaultSchedule s = FaultSchedule::generate(7, 13, opts);
  ASSERT_FALSE(s.kills.empty());
  ASSERT_EQ(s.recovers.size(), s.kills.size());
  std::set<net::NodeId> killed;
  for (const auto& k : s.kills) killed.insert(k.node);
  for (std::size_t i = 0; i < s.recovers.size(); ++i) {
    EXPECT_TRUE(killed.contains(s.recovers[i].node))
        << "recover " << i << " targets a node that was never killed";
    // Each recover must land strictly after its node's kill, within
    // recover_after + recover_jitter.
    sim::Tick kill_at = 0;
    for (const auto& k : s.kills) {
      if (k.node == s.recovers[i].node) kill_at = k.at;
    }
    EXPECT_GT(s.recovers[i].at, kill_at);
    EXPECT_LE(s.recovers[i].at,
              kill_at + opts.recover_after + opts.recover_jitter);
  }
}

TEST(FaultSchedule, PartitionSidesRespectCandidatesAndWindows) {
  ChaosOptions opts = busy_options();
  opts.partition_windows = 3;
  opts.partition_len = sim::msec(300);
  opts.partition_max_side = 2;
  for (net::NodeId n = 4; n < 13; ++n) opts.partition_candidates.push_back(n);
  const FaultSchedule s = FaultSchedule::generate(9, 13, opts);
  ASSERT_EQ(s.partitions.size(), 3u);
  for (const auto& p : s.partitions) {
    EXPECT_GE(p.side.size(), 1u);
    EXPECT_LE(p.side.size(), 2u);
    for (net::NodeId n : p.side) {
      EXPECT_GE(n, 4u);
      EXPECT_LT(n, 13u);
    }
    EXPECT_LE(p.at + p.len, opts.horizon);
  }
  // Windows must not overlap (disarm of one cannot clobber the next).
  for (std::size_t i = 1; i < s.partitions.size(); ++i) {
    EXPECT_GE(s.partitions[i].at,
              s.partitions[i - 1].at + s.partitions[i - 1].len);
  }
}

TEST(FaultSchedule, LegacyOptionsProduceNoChurnOrPartitions) {
  // Pre-churn options (no recover_after, no partition_windows) must yield
  // schedules identical in shape to the old generator: replayability of
  // published fuzz seeds depends on it.
  const FaultSchedule s = FaultSchedule::generate(42, 13, busy_options());
  EXPECT_TRUE(s.recovers.empty());
  EXPECT_TRUE(s.partitions.empty());
}

TEST(NetworkChaos, DropsAreCountedAndRequestsRecoverByRetry) {
  core::ClusterConfig cfg;
  cfg.seed = 5;
  core::Cluster cluster(cfg);
  const core::ObjectId id = cluster.seed_new_object(core::Bytes{1});

  cluster.network().set_drop_probability(0.5);
  EXPECT_DOUBLE_EQ(cluster.network().drop_probability(), 0.5);
  cluster.spawn_client(0, bump_body(id));
  // Let the client fight the lossy window, then clear it and drain.
  cluster.advance_for(sim::sec(5));
  cluster.network().set_drop_probability(0.0);
  cluster.run_to_completion();

  EXPECT_EQ(cluster.metrics().commits, 1u);
  EXPECT_GT(cluster.network().stats().dropped_chaos, 0u);
  // The committed write reached the write quorum: requests/responses are
  // droppable, commit confirms (one-way) are not.
  core::Version best = 0;
  for (std::uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    best = std::max(best, cluster.server(n).store().version_of(id));
  }
  EXPECT_EQ(best, 2u);
}

TEST(NetworkChaos, NodeSlowdownStretchesTransactionLatency) {
  auto run_once = [](sim::Tick slowdown) {
    core::ClusterConfig cfg;
    cfg.seed = 6;
    core::Cluster cluster(cfg);
    const core::ObjectId id = cluster.seed_new_object(core::Bytes{1});
    if (slowdown > 0) {
      for (std::uint32_t n = 0; n < cluster.num_nodes(); ++n) {
        cluster.network().set_node_slowdown(n, slowdown);
      }
    }
    cluster.spawn_client(0, bump_body(id));
    cluster.run_to_completion();
    EXPECT_EQ(cluster.metrics().commits, 1u);
    return cluster.duration();
  };
  const sim::Tick fast = run_once(0);
  const sim::Tick slow = run_once(sim::msec(50));
  // Every message gains sender + receiver slowdown: >= 100 ms per RTT.
  EXPECT_GT(slow, fast + sim::msec(100));
}

TEST(NetworkChaos, ArmedScheduleEmitsFaultEventsAndRunStaysCorrect) {
  core::ClusterConfig cfg;
  cfg.seed = 21;
  core::Cluster cluster(cfg);
  core::HistoryRecorder rec;
  cluster.set_history_recorder(&rec);
  const core::ObjectId id = cluster.seed_new_object(core::Bytes{1});

  ChaosOptions opts;
  opts.horizon = sim::sec(2);
  opts.drop_bursts = 1;
  opts.drop_prob = 0.3;
  opts.burst_len = sim::msec(300);
  opts.latency_spikes = 1;
  opts.spike_candidates = {5};
  opts.spike_extra = sim::msec(100);
  opts.spike_len = sim::msec(300);
  const FaultSchedule sched = FaultSchedule::generate(3, 13, opts);
  sched.arm(cluster, &rec);

  for (net::NodeId n = 0; n < 3; ++n) cluster.spawn_client(n, bump_body(id));
  cluster.run_to_completion();

  EXPECT_EQ(cluster.metrics().commits, 3u);
  std::size_t faults = 0;
  for (const auto& e : rec.events()) {
    if (e.kind == core::HistoryEvent::Kind::kFault) ++faults;
  }
  EXPECT_EQ(faults, 4u);  // burst on/off + spike on/off
  // Chaos state must be fully disarmed by the schedule's own events.
  EXPECT_DOUBLE_EQ(cluster.network().drop_probability(), 0.0);
  EXPECT_EQ(cluster.network().node_slowdown(5), 0u);
  const core::CheckResult r =
      core::check_history(rec, core::CheckLevel::kSerializable);
  EXPECT_TRUE(r.ok) << r.report;
  EXPECT_EQ(r.final_state.at(id).version, 4u);
}

// Satellite: quorum memoisation invalidation (Fig. 10 policy).  Killing a
// node mid-run must bump the provider generation, and the next read must go
// through a re-derived, grown read quorum rather than the memoised one.
TEST(NetworkChaos, KillInvalidatesMemoisedQuorumsAndGrowsReadQuorum) {
  core::ClusterConfig cfg;
  cfg.seed = 9;
  cfg.quorum = core::QuorumKind::kFlatFailureAware;
  core::Cluster cluster(cfg);
  const core::ObjectId id = cluster.seed_new_object(core::Bytes{1});

  // Warm the runtime's memoised quorum caches with one committed txn.
  cluster.spawn_client(0, bump_body(id));
  cluster.run_to_completion();
  ASSERT_EQ(cluster.metrics().commits, 1u);
  const std::uint64_t gen0 = cluster.quorums().generation();
  ASSERT_EQ(cluster.quorums().read_quorum(0).size(), 1u);
  const std::uint64_t reads0 = cluster.metrics().read_messages;

  cluster.kill_node(5);

  EXPECT_GT(cluster.quorums().generation(), gen0);
  const std::vector<net::NodeId> rq = cluster.quorums().read_quorum(0);
  EXPECT_EQ(rq.size(), 2u) << "one failure -> read quorum grows to f+1";
  for (net::NodeId n : rq) EXPECT_NE(n, 5u);

  cluster.spawn_client(1, bump_body(id));
  cluster.run_to_completion();
  EXPECT_EQ(cluster.metrics().commits, 2u);
  // The grown quorum was actually used: the read multicast fanned out to
  // both members (a stale memoised quorum would have sent one message).
  EXPECT_GE(cluster.metrics().read_messages - reads0, 2u);
}

}  // namespace
